// Package deepnjpeg is the public API of the DeepN-JPEG reproduction: a
// deep-neural-network-favorable JPEG compression framework (Liu et al.,
// DAC 2018). Instead of the human-visual-system quantization table that
// ships with JPEG, DeepN-JPEG derives a table from the statistics of the
// dataset itself — per-band DCT coefficient standard deviations mapped
// through a piece-wise linear function — preserving the frequency content
// DNN classifiers rely on while compressing ~3.5× harder than
// quality-matched JPEG.
//
// Typical use:
//
//	codec, err := deepnjpeg.Calibrate(trainImages, deepnjpeg.CalibrateConfig{})
//	data, err := codec.Encode(img)       // DeepN-JPEG compressed (real JFIF)
//	img2, err := deepnjpeg.Decode(data)  // decodable by any JPEG decoder
//
// The emitted streams are standard baseline JFIF: any JPEG decoder
// (including Go's image/jpeg) reads them.
//
// # Batch throughput
//
// The paper motivates DeepN-JPEG with the image volume of IoT and
// data-center DNN systems, where the codec is an inner-loop primitive
// invoked millions of times. For that regime the package offers a
// concurrent batch API — Codec.EncodeBatch, Codec.EncodeGrayBatch and
// DecodeBatch — that fans items across a worker pool with
// order-preserving results, per-item error collection and context
// cancellation:
//
//	streams, err := codec.EncodeBatch(ctx, imgs, deepnjpeg.BatchOptions{})
//	imgs2, err := deepnjpeg.DecodeBatch(ctx, streams, deepnjpeg.BatchOptions{})
//
// A Codec is safe for concurrent use: the hot path draws its scratch
// (color planes, coefficient grids, entropy buffers) from sync.Pools, so
// steady-state encodes allocate little and workers never contend on
// shared mutable state. Calibration itself can likewise fan the
// frequency-statistics pass across workers via CalibrateConfig.Workers,
// with results independent of goroutine scheduling.
//
// # Block-transform engines
//
// The 8×8 DCT at the heart of every encode and decode is pluggable.
// CalibrateConfig.Transform and DecodeOptions.Transform select between
// the naive separable transform (the default) and the Arai–Agui–Nakajima
// fast transform (TransformAAN), which roughly halves block-transform
// cost. The AAN scale factors are folded into the quantization tables
// (libjpeg's scaled-table trick): the codec runs only the raw
// butterflies per block and quantizes through fused divisors built once
// per calibrated codec, so the hot loop is a single multiply or divide
// per coefficient with no descale pass. The engines produce
// byte-identical encoded streams — their floating-point differences,
// including the folding itself, are absorbed by the tie-snapping
// quantizer — so the fast path is safe to enable wherever throughput
// matters:
//
//	codec, err := deepnjpeg.Calibrate(imgs, labels,
//	    deepnjpeg.CalibrateConfig{Transform: deepnjpeg.TransformAAN})
//
// Decode-side buffers are reusable too: DecodeInto fills a caller-owned
// image and DecodeBatchInto a caller-owned slice of them, making the
// steady-state decode loop allocation-free on top of the pooled decoder
// state every decode already shares; the batch APIs additionally keep
// one decoded working set per pool worker for the life of a batch.
//
// # Archive requantization
//
// Requantize, RequantizeBatch and their RequantizeJPEG counterparts
// re-target existing baseline JPEG streams onto new tables entirely in
// the coefficient domain — dequantize with the coded table, requantize
// with the new one — skipping the IDCT→pixels→DCT round trip and its
// second generation loss. This is how a storage system retrofits
// DeepN-JPEG tables onto an archive of already-compressed images. Any
// legal baseline sampling layout transcodes (4:4:4, 4:2:2, 4:2:0,
// 4:4:0, 4:1:1, …), and the source's APPn/COM segments — EXIF, ICC
// profiles, comments — pass through byte-identical unless
// RequantizeOptions.StripMetadata opts out.
//
// # Calibration profiles
//
// Calibration is the expensive step — a statistics pass over the whole
// training set — and its product is worth managing like any model
// artifact. SaveProfile persists a calibrated Codec as a named,
// versioned, CRC-protected profile file (including the quantization
// tables, the fitted mapping, and the per-band statistics they came
// from); LoadProfile and NewCodecFromProfile restore it, producing
// streams byte-identical to the original codec:
//
//	err  = codec.SaveProfile("profiles/imagenet@1.dnp",
//	    deepnjpeg.ProfileMeta{Name: "imagenet", Version: 1})
//	p, _ := deepnjpeg.LoadProfile("profiles/imagenet@1.dnp")
//	codec2, _ := deepnjpeg.NewCodecFromProfile(p)
//
// A directory of profiles becomes a serving registry: ServerOptions.
// ProfileDir loads it, DefaultProfile selects the table set the server
// boots with (no startup calibration), tenants pin their own default via
// TenantLimits.Profile, and any request may select one with ?profile=
// name or name@version. The `deepn-jpeg calibrate` and `deepn-jpeg
// profiles` subcommands write, list, inspect and verify profile files
// from the command line.
//
// # Serving over HTTP
//
// NewServer wraps a calibrated Codec in a multi-tenant HTTP service
// (POST /v1/encode, /v1/decode, /v1/requantize, multipart /v1/batch,
// GET /healthz and /metrics) that dispatches through the same pooled
// hot paths as the batch API, with per-API-key concurrency limits and
// request accounting:
//
//	srv, err := deepnjpeg.NewServer(codec, deepnjpeg.ServerOptions{})
//	go srv.ListenAndServe(":8080")
//	...
//	err = srv.Shutdown(ctx) // graceful: drains in-flight requests
//
// The same service is reachable from the command line as
// `deepn-jpeg serve`; see the README for endpoint and curl details.
package deepnjpeg

import (
	"bytes"
	"context"
	"crypto/ed25519"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dct"
	"repro/internal/imgutil"
	"repro/internal/jpegcodec"
	"repro/internal/pipeline"
	"repro/internal/plm"
	"repro/internal/profile"
	"repro/internal/qtable"
	"repro/internal/server"
)

// Image is an interleaved 8-bit RGB image.
type Image = imgutil.RGB

// Gray is a single-plane 8-bit grayscale image.
type Gray = imgutil.Gray

// QuantTable is a 64-entry JPEG quantization table in row-major order.
type QuantTable = qtable.Table

// Transform selects the 8×8 block-transform engine the codec runs. Both
// engines compute the same orthonormal DCT; they differ in operation
// count, and their floating-point differences are absorbed by
// quantization, so encoded streams are byte-identical across engines
// (see the transform equivalence tests).
type Transform = dct.Transform

const (
	// TransformNaive is the separable row–column DCT, the compatibility
	// default.
	TransformNaive = dct.TransformNaive
	// TransformAAN is the Arai–Agui–Nakajima fast DCT, roughly halving
	// block-transform cost on both the encode and decode path.
	TransformAAN = dct.TransformAAN
)

// Subsampling selects the chroma layout of color encodes. The decoder
// side accepts any legal baseline factor combination regardless of this
// option.
type Subsampling = jpegcodec.Subsampling

const (
	// Sub420 halves chroma both ways (2×2 luma factors), the default.
	Sub420 = jpegcodec.Sub420
	// Sub444 keeps chroma at full resolution.
	Sub444 = jpegcodec.Sub444
	// Sub422 halves chroma horizontally only.
	Sub422 = jpegcodec.Sub422
	// Sub440 halves chroma vertically only.
	Sub440 = jpegcodec.Sub440
	// Sub411 quarters chroma horizontally.
	Sub411 = jpegcodec.Sub411
)

// ParseSubsampling maps the conventional ratio notation ("444", "422",
// "420", "440", "411") onto a Subsampling value, as the CLI and server
// surfaces do.
func ParseSubsampling(v string) (Subsampling, error) { return jpegcodec.ParseSubsampling(v) }

// NewImage allocates a zeroed color image.
func NewImage(w, h int) *Image { return imgutil.NewRGB(w, h) }

// NewGray allocates a zeroed grayscale image.
func NewGray(w, h int) *Gray { return imgutil.NewGray(w, h) }

// CalibrateConfig tunes the calibration flow. The zero value follows the
// paper: every image sampled, magnitude-based band segmentation, anchors
// from the published sensitivity sweeps.
type CalibrateConfig struct {
	// SampleEvery keeps every k-th image per class (Algorithm 1); ≤1 keeps
	// all.
	SampleEvery int
	// Chroma additionally calibrates a chroma table from Cb/Cr statistics.
	Chroma bool
	// UsePaperParams applies the published ImageNet PLM constants instead
	// of fitting to this dataset.
	UsePaperParams bool
	// Workers fans the frequency-statistics accumulation across a worker
	// pool; ≤ 1 keeps the single-threaded path. A given worker count is
	// deterministic regardless of goroutine scheduling; across different
	// worker counts the merged statistics agree with the sequential pass
	// up to floating-point rounding, which the test suite checks yields
	// identical quantization tables.
	Workers int
	// Transform selects the block-transform engine the calibrated codec
	// encodes with; TransformAAN is the fast path. Calibration statistics
	// themselves always use the naive engine, so the derived tables are
	// bit-identical across engine choices.
	Transform Transform
}

// Codec is a calibrated DeepN-JPEG encoder/decoder.
type Codec struct {
	fw *core.Framework
}

// Calibrate runs the DeepN-JPEG design flow on a labeled image set:
// frequency component analysis, band segmentation by δ magnitude, and
// piece-wise linear mapping to a quantization table. labels[i] is the
// class of images[i]; classes drive the stratified sampling.
func Calibrate(images []*Image, labels []int, cfg CalibrateConfig) (*Codec, error) {
	if len(images) == 0 {
		return nil, fmt.Errorf("deepnjpeg: no images")
	}
	if len(images) != len(labels) {
		return nil, fmt.Errorf("deepnjpeg: %d images but %d labels", len(images), len(labels))
	}
	ds := &dataset.Dataset{Images: images, Labels: labels, Size: images[0].W}
	fw, err := core.Calibrate(ds, core.CalibrateOptions{
		SampleEvery:    cfg.SampleEvery,
		Chroma:         cfg.Chroma,
		UsePaperParams: cfg.UsePaperParams,
		Workers:        cfg.Workers,
		Transform:      cfg.Transform,
	})
	if err != nil {
		return nil, err
	}
	return &Codec{fw: fw}, nil
}

// LumaTable returns the calibrated luminance quantization table.
func (c *Codec) LumaTable() QuantTable { return c.fw.LumaTable }

// ChromaTable returns the chrominance quantization table (calibrated when
// CalibrateConfig.Chroma was set, Annex-K/QF-95 otherwise).
func (c *Codec) ChromaTable() QuantTable { return c.fw.ChromaTable }

// BandSigma returns the measured standard deviation δ(i,j) of the DCT
// band at natural index n (v*8+u), the statistic the table derives from.
func (c *Codec) BandSigma(n int) float64 { return c.fw.Stats.Std[n] }

// PLMParams returns the fitted piece-wise linear mapping parameters.
func (c *Codec) PLMParams() plm.Params { return c.fw.Params }

// Encode compresses a color image with the calibrated tables (4:2:0).
func (c *Codec) Encode(img *Image) ([]byte, error) {
	return c.fw.Scheme().EncodeRGB(img)
}

// EncodeGray compresses a grayscale image with the calibrated luma table.
func (c *Codec) EncodeGray(img *Gray) ([]byte, error) {
	return c.fw.Scheme().EncodeGray(img)
}

// EncodeOptions tunes the stream-shaping knobs of EncodeWith and
// EncodeGrayWith beyond the calibrated defaults of Encode.
type EncodeOptions struct {
	// RestartInterval inserts RSTn markers every n MCUs when > 0 (valid
	// range [0, 65535] — the DRI payload is 16-bit). Restart segments
	// bound error propagation in the stream and are the unit of
	// single-image parallel entropy coding on both the encode and decode
	// side.
	RestartInterval int
	// ShardWorkers controls restart-interval sharded entropy coding:
	// 0 selects auto (parallel across GOMAXPROCS on large frames), 1 or
	// any negative value forces the sequential path, values ≥ 2 force
	// that many workers. The stream is byte-identical either way; the
	// knob only trades latency against cores. Ignored without a restart
	// interval.
	ShardWorkers int
	// OptimizeHuffman derives per-image Huffman tables (two-pass encode),
	// matching libjpeg's -optimize flag.
	OptimizeHuffman bool
	// Subsampling selects the chroma layout (Sub420 by default); ignored
	// by the grayscale encoders.
	Subsampling Subsampling
}

// EncodeWith is Encode with explicit stream-shaping options — restart
// intervals, sharded entropy coding, Huffman optimization — on top of
// the calibrated tables.
func (c *Codec) EncodeWith(img *Image, opts EncodeOptions) ([]byte, error) {
	s := c.fw.Scheme()
	s.Opts.RestartInterval = opts.RestartInterval
	s.Opts.ShardWorkers = opts.ShardWorkers
	s.Opts.OptimizeHuffman = opts.OptimizeHuffman
	s.Opts.Subsampling = opts.Subsampling
	return s.EncodeRGB(img)
}

// EncodeGrayWith is EncodeGray with explicit stream-shaping options.
func (c *Codec) EncodeGrayWith(img *Gray, opts EncodeOptions) ([]byte, error) {
	s := c.fw.Scheme()
	s.Opts.RestartInterval = opts.RestartInterval
	s.Opts.ShardWorkers = opts.ShardWorkers
	s.Opts.OptimizeHuffman = opts.OptimizeHuffman
	return s.EncodeGray(img)
}

// BatchOptions configures the concurrent batch API.
type BatchOptions struct {
	// Workers is the worker-pool size; ≤ 0 selects runtime.GOMAXPROCS.
	// The pool never exceeds the number of items.
	Workers int
}

// BatchError aggregates the per-item failures of a batch call. Use
// errors.As to recover it from a batch API error and inspect which
// indices failed; all other items completed normally.
type BatchError = pipeline.BatchError

// ItemError is one entry of a BatchError.
type ItemError = pipeline.ItemError

// EncodeBatch compresses a batch of color images concurrently with the
// calibrated tables. streams[i] corresponds to imgs[i] regardless of
// scheduling. Items that fail leave a nil entry and are reported through
// a *BatchError; canceling ctx stops unstarted items and the returned
// error then matches ctx.Err. The Codec is safe for concurrent use, so
// one Codec can serve many in-flight batches.
func (c *Codec) EncodeBatch(ctx context.Context, imgs []*Image, opts BatchOptions) ([][]byte, error) {
	scheme := c.fw.Scheme()
	return pipeline.Map(ctx, len(imgs), opts.Workers, func(_ context.Context, i int) ([]byte, error) {
		return scheme.EncodeRGB(imgs[i])
	})
}

// EncodeGrayBatch compresses a batch of grayscale images concurrently
// with the calibrated luma table, under the same contract as EncodeBatch.
func (c *Codec) EncodeGrayBatch(ctx context.Context, imgs []*Gray, opts BatchOptions) ([][]byte, error) {
	scheme := c.fw.Scheme()
	return pipeline.Map(ctx, len(imgs), opts.Workers, func(_ context.Context, i int) ([]byte, error) {
		return scheme.EncodeGray(imgs[i])
	})
}

// DecodeOptions configures the decode-side APIs.
type DecodeOptions struct {
	// Transform selects the inverse block-transform engine used for
	// pixel reconstruction; TransformAAN is the fast path. Engines agree
	// within one grey level (they differ only in IDCT rounding).
	Transform Transform
	// MaxPixels rejects streams whose declared width×height exceeds it
	// (0 = unlimited). Set it when decoding untrusted bytes: the decoder
	// sizes its working set from the header, so a tiny hostile stream can
	// otherwise demand gigabytes.
	MaxPixels int
	// ShardWorkers controls restart-interval sharded decoding: streams
	// that carry a restart interval split into independently decodable
	// segments, which fan out across a worker pool. 0 selects auto
	// (parallel across GOMAXPROCS on large frames), 1 or any negative
	// value forces the sequential path, values ≥ 2 force that many
	// workers. Accepted streams and decoded pixels are identical either
	// way.
	ShardWorkers int
}

// DecodeBatch decodes a batch of baseline JFIF/JPEG streams concurrently
// under the same contract as EncodeBatch: out[i] decodes streams[i],
// failed items stay nil and surface through a *BatchError. Each pool
// worker holds one Decoded working set for the whole batch, so only the
// output images themselves are allocated per item.
func DecodeBatch(ctx context.Context, streams [][]byte, opts BatchOptions) ([]*Image, error) {
	return DecodeBatchInto(ctx, streams, nil, opts, DecodeOptions{})
}

// DecodeBatchInto is DecodeBatch with explicit decode options and
// optional output reuse: when dst is non-nil it must have one entry per
// stream (entries may be nil), item i decodes into dst[i]'s buffers, and
// dst itself is returned. A transcode loop that keeps its dst slice
// across batches therefore stops paying per-image output allocations.
// Items that fail decode leave their dst entry untouched and surface
// through a *BatchError, as in DecodeBatch.
func DecodeBatchInto(ctx context.Context, streams [][]byte, dst []*Image, opts BatchOptions, dopts DecodeOptions) ([]*Image, error) {
	if dst == nil {
		dst = make([]*Image, len(streams))
	} else if len(dst) != len(streams) {
		return nil, fmt.Errorf("deepnjpeg: %d reuse buffers for %d streams", len(dst), len(streams))
	}
	jopts := jpegcodec.DecodeOptions{Transform: dopts.Transform, MaxPixels: dopts.MaxPixels, ShardWorkers: dopts.ShardWorkers}
	// One Decoded and one reader per pool worker, checked out for the
	// whole batch: items share their worker's parse state and planes
	// instead of cycling them through the pool per stream.
	nw := pipeline.Workers(opts.Workers, len(streams))
	decs := make([]*jpegcodec.Decoded, nw)
	rds := make([]*bytes.Reader, nw)
	for w := range decs {
		decs[w] = decodedPool.Get().(*jpegcodec.Decoded)
		rds[w] = new(bytes.Reader)
	}
	defer func() {
		for _, d := range decs {
			decodedPool.Put(d)
		}
	}()
	err := pipeline.RunWorker(ctx, len(streams), opts.Workers, func(_ context.Context, w, i int) error {
		rds[w].Reset(streams[i])
		if err := jpegcodec.DecodeInto(rds[w], decs[w], &jopts); err != nil {
			return err
		}
		dst[i] = decs[w].RGBInto(dst[i])
		return nil
	})
	return dst, err
}

// decodedPool recycles the intermediate Decoded working sets behind
// Decode/DecodeInto/DecodeGray: only the final image escapes to the
// caller, so planes, coefficient grids and table maps are reused across
// calls (and across workers — each concurrent decode checks out its own).
var decodedPool = sync.Pool{New: func() any { return new(jpegcodec.Decoded) }}

// Decode parses any baseline or progressive JFIF/JPEG stream into a
// color image.
func Decode(data []byte) (*Image, error) {
	return DecodeInto(nil, data, DecodeOptions{})
}

// DecodeInto is Decode with explicit options, reusing dst's pixel buffer
// when its capacity suffices. A nil dst allocates a fresh image; the
// decoded image is returned either way. On error dst is unchanged.
func DecodeInto(dst *Image, data []byte, opts DecodeOptions) (*Image, error) {
	dec := decodedPool.Get().(*jpegcodec.Decoded)
	defer decodedPool.Put(dec)
	jopts := jpegcodec.DecodeOptions{Transform: opts.Transform, MaxPixels: opts.MaxPixels, ShardWorkers: opts.ShardWorkers}
	if err := jpegcodec.DecodeInto(bytes.NewReader(data), dec, &jopts); err != nil {
		return nil, err
	}
	return dec.RGBInto(dst), nil
}

// DecodeGray parses a baseline or progressive JFIF/JPEG stream and
// returns its luma plane.
func DecodeGray(data []byte) (*Gray, error) {
	dec := decodedPool.Get().(*jpegcodec.Decoded)
	defer decodedPool.Put(dec)
	if err := jpegcodec.DecodeInto(bytes.NewReader(data), dec, nil); err != nil {
		return nil, err
	}
	return dec.Gray(), nil
}

// StreamInfo is the marker-structure report of Inspect: every segment
// in stream order, the parsed frame header, and each scan's
// spectral-selection and successive-approximation parameters.
type StreamInfo = jpegcodec.StreamInfo

// UnsupportedFormatError reports a JPEG coding process this codec does
// not decode (arithmetic coding, lossless, hierarchical). Inspect still
// walks such streams; Decode returns this error, and the HTTP server
// maps it to a 415 unsupported_format response.
type UnsupportedFormatError = jpegcodec.UnsupportedFormatError

// Inspect walks a JPEG stream's marker structure without decoding
// entropy data. It tolerates coding processes Decode rejects, which is
// when a structure dump is most useful; on a truncated stream it
// returns the readable prefix alongside the error.
func Inspect(data []byte) (*StreamInfo, error) {
	return jpegcodec.Inspect(bytes.NewReader(data))
}

// EncodeJPEG compresses with the standard Annex-K tables at a quality
// factor (the baseline DeepN-JPEG is compared against).
func EncodeJPEG(img *Image, qf int) ([]byte, error) {
	luma, chroma, err := stdTables(qf)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	opts := jpegcodec.Options{LumaTable: luma, ChromaTable: chroma}
	if err := jpegcodec.EncodeRGB(&buf, img, &opts); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// stdTables scales the Annex-K reference tables to a quality factor.
func stdTables(qf int) (luma, chroma QuantTable, err error) {
	if luma, err = qtable.Scale(qtable.StdLuminance, qf); err != nil {
		return luma, chroma, err
	}
	chroma, err = qtable.Scale(qtable.StdChrominance, qf)
	return luma, chroma, err
}

// RequantizeOptions configures the coefficient-domain requantization
// APIs. The zero value emits standard Huffman tables and applies no
// frame-size limit.
type RequantizeOptions struct {
	// OptimizeHuffman derives per-stream Huffman tables (two-pass),
	// matching libjpeg's -optimize flag.
	OptimizeHuffman bool
	// MaxPixels rejects source frames larger than this (0 = unlimited),
	// as in DecodeOptions.MaxPixels.
	MaxPixels int
	// RestartInterval controls the output stream's restart interval:
	// 0 preserves the source stream's interval (transcoding is
	// structure-preserving by default), a negative value strips restart
	// markers, and a positive value ≤ 65535 sets a new interval.
	RestartInterval int
	// ShardWorkers controls restart-interval sharded entropy coding of
	// the output, as in EncodeOptions.ShardWorkers.
	ShardWorkers int
	// StripMetadata drops the source stream's APPn/COM segments (EXIF,
	// ICC profiles, comments) instead of passing them through
	// byte-identical, which is the default.
	StripMetadata bool
}

// Requantize re-targets an existing baseline JPEG stream onto the codec's
// calibrated tables entirely in the coefficient domain: coefficients are
// dequantized with the table they were coded with and requantized with
// the calibrated one, skipping the IDCT→pixels→DCT round trip and its
// second generation loss. This is how a storage system retrofits
// DeepN-JPEG tables onto an archive of already-compressed JPEGs.
func (c *Codec) Requantize(src []byte, opts RequantizeOptions) ([]byte, error) {
	dec := decodedPool.Get().(*jpegcodec.Decoded)
	defer decodedPool.Put(dec)
	return requantizeInto(dec, src, c.fw.LumaTable, c.fw.ChromaTable, opts)
}

// RequantizeBatch requantizes a batch of JPEG streams onto the codec's
// calibrated tables concurrently, under the batch contract of
// EncodeBatch: out[i] requantizes streams[i], failed items stay nil and
// surface through a *BatchError. Each pool worker reuses one decoded
// working set for the whole batch.
func (c *Codec) RequantizeBatch(ctx context.Context, streams [][]byte, bopts BatchOptions, opts RequantizeOptions) ([][]byte, error) {
	return requantizeBatch(ctx, streams, c.fw.LumaTable, c.fw.ChromaTable, bopts, opts)
}

// RequantizeJPEG is Requantize onto the standard Annex-K tables scaled to
// a quality factor — coefficient-domain re-targeting of an existing JPEG
// without a calibrated codec.
func RequantizeJPEG(src []byte, qf int, opts RequantizeOptions) ([]byte, error) {
	luma, chroma, err := stdTables(qf)
	if err != nil {
		return nil, err
	}
	dec := decodedPool.Get().(*jpegcodec.Decoded)
	defer decodedPool.Put(dec)
	return requantizeInto(dec, src, luma, chroma, opts)
}

// RequantizeJPEGBatch is RequantizeBatch onto the standard Annex-K tables
// scaled to a quality factor.
func RequantizeJPEGBatch(ctx context.Context, streams [][]byte, qf int, bopts BatchOptions, opts RequantizeOptions) ([][]byte, error) {
	luma, chroma, err := stdTables(qf)
	if err != nil {
		return nil, err
	}
	return requantizeBatch(ctx, streams, luma, chroma, bopts, opts)
}

// requantizeInto decodes src into dec and re-encodes its coefficients
// under the given tables. dec's buffers are reused across calls.
func requantizeInto(dec *jpegcodec.Decoded, src []byte, luma, chroma QuantTable, opts RequantizeOptions) ([]byte, error) {
	dopts := jpegcodec.DecodeOptions{MaxPixels: opts.MaxPixels}
	if err := jpegcodec.DecodeInto(bytes.NewReader(src), dec, &dopts); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	jopts := jpegcodec.Options{
		OptimizeHuffman: opts.OptimizeHuffman,
		RestartInterval: opts.RestartInterval,
		ShardWorkers:    opts.ShardWorkers,
		StripMetadata:   opts.StripMetadata,
	}
	if err := jpegcodec.Requantize(&buf, dec, luma, chroma, &jopts); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// requantizeBatch fans requantizeInto across the worker pool with one
// Decoded working set per worker.
func requantizeBatch(ctx context.Context, streams [][]byte, luma, chroma QuantTable, bopts BatchOptions, opts RequantizeOptions) ([][]byte, error) {
	nw := pipeline.Workers(bopts.Workers, len(streams))
	decs := make([]*jpegcodec.Decoded, nw)
	for w := range decs {
		decs[w] = decodedPool.Get().(*jpegcodec.Decoded)
	}
	defer func() {
		for _, d := range decs {
			decodedPool.Put(d)
		}
	}()
	return pipeline.MapWorker(ctx, len(streams), bopts.Workers, func(_ context.Context, w, i int) ([]byte, error) {
		return requantizeInto(decs[w], streams[i], luma, chroma, opts)
	})
}

// Profile is a persisted calibration artifact: named, versioned,
// CRC-protected, carrying the quantization tables plus the statistics
// and mapping parameters that produced them. See repro/internal/profile
// for the on-disk format.
type Profile = profile.Profile

// ProfileMeta names a calibration being saved as a profile.
type ProfileMeta struct {
	// Name identifies the calibration (typically the dataset or task):
	// 1..64 characters of [a-z0-9._-], starting with a letter or digit.
	Name string
	// Version distinguishes successive calibrations under one name
	// (≥ 1); registries resolve a bare name to its highest version.
	Version uint32
	// Comment is free-form provenance.
	Comment string
	// CreatedUnix stamps the profile; 0 means time.Now.
	CreatedUnix int64
}

// Profile captures the codec's calibration as a persistable profile.
func (c *Codec) Profile(meta ProfileMeta) (*Profile, error) {
	if meta.CreatedUnix == 0 {
		meta.CreatedUnix = time.Now().Unix()
	}
	return profile.FromFramework(c.fw, profile.Meta{
		Name:        meta.Name,
		Version:     meta.Version,
		Comment:     meta.Comment,
		CreatedUnix: meta.CreatedUnix,
	})
}

// SaveProfile persists the codec's calibration to path (conventionally
// <name>@<version>.dnp) with an atomic write, so profile directories
// being served never expose a torn file.
func (c *Codec) SaveProfile(path string, meta ProfileMeta) error {
	p, err := c.Profile(meta)
	if err != nil {
		return err
	}
	return p.Write(path)
}

// LoadProfile reads and verifies one profile file (magic, structure,
// CRC).
func LoadProfile(path string) (*Profile, error) { return profile.Read(path) }

// NewCodecFromProfile restores the codec a profile was saved from. The
// restored codec produces streams byte-identical to the original — the
// property that makes profiles safe substitutes for boot-time
// calibration.
func NewCodecFromProfile(p *Profile) (*Codec, error) {
	fw, err := p.Framework()
	if err != nil {
		return nil, err
	}
	return &Codec{fw: fw}, nil
}

// TenantLimits configures one API key of a Server.
type TenantLimits = server.TenantConfig

// ServerOptions configures NewServer. The zero value serves open access
// (no API keys) with conservative body/dimension/concurrency limits.
type ServerOptions struct {
	// MaxBodyBytes caps request bodies (default 32 MiB → 413 beyond).
	MaxBodyBytes int64
	// MaxPixels caps the declared dimensions of any image the server
	// parses or decodes (default 1<<24), rejecting allocation bombs
	// before a buffer is sized from a hostile header.
	MaxPixels int
	// BatchWorkers sizes the worker pool of one /v1/batch request;
	// ≤ 0 selects GOMAXPROCS.
	BatchWorkers int
	// MaxBatchItems caps the part count of a /v1/batch request
	// (default 256).
	MaxBatchItems int
	// Tenants maps API keys to per-tenant limits; empty serves open
	// access through a single anonymous tenant.
	Tenants map[string]TenantLimits
	// MaxInFlight is the per-tenant concurrent-request cap used when a
	// tenant doesn't set its own (default 16). Requests beyond the cap
	// answer 429 immediately instead of queueing.
	MaxInFlight int
	// ProfileDir, when set, loads a registry of persisted calibration
	// profiles (*.dnp) that requests select with ?profile=name[@version]
	// and tenants pin via TenantLimits.Profile. POST /admin/profiles/
	// reload rescans it without a restart.
	ProfileDir string
	// DefaultProfile serves the named profile as the default table set
	// instead of the Codec passed to NewServer (which may then be nil).
	// Requires ProfileDir.
	DefaultProfile string
	// ProfileWatch, when positive, polls ProfileDir at this interval and
	// hot-reloads changed profiles automatically. The watcher stops at
	// Shutdown.
	ProfileWatch time.Duration
	// AdminKey, when set, gates the /admin/* endpoints (profile reload)
	// behind its own key, so ordinary codec tenants cannot trigger
	// administrative actions. Empty leaves admin endpoints behind the
	// normal tenant gate only.
	AdminKey string
	// HubOrigin, when set, attaches a profile-hub client to the profile
	// registry: references that miss locally (including DefaultProfile at
	// boot) are pulled from this origin, verified, and materialized into
	// ProfileDir; each ProfileWatch tick syncs newly published profiles.
	// Requires ProfileDir.
	HubOrigin string
	// HubCacheDir is the hub client's local content-addressed cache
	// (default: <ProfileDir>/.hub-cache).
	HubCacheDir string
	// HubTrustedKey, when set, requires the hub index and every pulled
	// profile to verify against this Ed25519 public key.
	HubTrustedKey ed25519.PublicKey
	// HubFetchTimeout bounds one lazy hub fetch (default 30s).
	HubFetchTimeout time.Duration
}

// Server is the HTTP front end of a calibrated Codec: POST /v1/encode,
// /v1/decode and /v1/requantize move single images, POST /v1/batch moves
// many through the concurrent batch pipeline, and GET /healthz and
// /metrics expose liveness and expvar-style accounting. Every request
// dispatches through the same pooled codec hot paths as the Go batch
// API; per-tenant concurrency gates keep one caller from starving the
// rest. See the package README for the wire format and curl examples.
type Server struct {
	s *server.Server
}

// NewServer builds the HTTP service around the codec's calibrated
// tables. The Codec stays usable (and safe) for direct calls while the
// server runs. c may be nil when ServerOptions.DefaultProfile names the
// profile to serve instead — the profile-backed server needs no boot-time
// calibration at all.
func NewServer(c *Codec, opts ServerOptions) (*Server, error) {
	var fw *core.Framework
	if c != nil {
		fw = c.fw
	}
	s, err := server.New(server.Options{
		Framework:       fw,
		MaxBodyBytes:    opts.MaxBodyBytes,
		MaxPixels:       opts.MaxPixels,
		BatchWorkers:    opts.BatchWorkers,
		MaxBatchItems:   opts.MaxBatchItems,
		Tenants:         opts.Tenants,
		MaxInFlight:     opts.MaxInFlight,
		ProfileDir:      opts.ProfileDir,
		DefaultProfile:  opts.DefaultProfile,
		ProfileWatch:    opts.ProfileWatch,
		AdminKey:        opts.AdminKey,
		HubOrigin:       opts.HubOrigin,
		HubCacheDir:     opts.HubCacheDir,
		HubTrustedKey:   opts.HubTrustedKey,
		HubFetchTimeout: opts.HubFetchTimeout,
	})
	if err != nil {
		return nil, err
	}
	return &Server{s: s}, nil
}

// ServingProfile describes the default table set a Server is serving.
// Name is empty when the server runs on an in-memory Codec rather than
// a persisted profile.
type ServingProfile struct {
	Name         string
	Version      uint32
	Transform    Transform
	SampledCount int
}

// ServingProfile reports what the server's default requests run
// against right now; after a hot reload it reflects the freshly
// resolved profile.
func (s *Server) ServingProfile() ServingProfile {
	name, version, transform, sampled := s.s.ServingProfile()
	return ServingProfile{Name: name, Version: version, Transform: transform, SampledCount: sampled}
}

// Handler returns the route table for mounting under an external
// http.Server (httptest, custom TLS, a shared mux).
func (s *Server) Handler() http.Handler { return s.s.Handler() }

// Serve accepts connections on l until Shutdown; it returns
// http.ErrServerClosed after a clean shutdown, like net/http.
func (s *Server) Serve(l net.Listener) error { return s.s.Serve(l) }

// ListenAndServe binds addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error { return s.s.ListenAndServe(addr) }

// Shutdown gracefully stops Serve/ListenAndServe: the listener closes
// immediately and in-flight requests run to completion (or until ctx
// expires).
func (s *Server) Shutdown(ctx context.Context) error { return s.s.Shutdown(ctx) }

// PSNR computes peak signal-to-noise between two equal-size images.
func PSNR(a, b *Image) (float64, error) {
	return imgutil.PSNR(a.Pix, b.Pix)
}

// CompressionRatio is reference size ÷ compressed size, the paper's CR.
func CompressionRatio(referenceBytes, compressedBytes int) float64 {
	return core.CompressionRatio(int64(referenceBytes), int64(compressedBytes))
}
