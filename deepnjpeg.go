// Package deepnjpeg is the public API of the DeepN-JPEG reproduction: a
// deep-neural-network-favorable JPEG compression framework (Liu et al.,
// DAC 2018). Instead of the human-visual-system quantization table that
// ships with JPEG, DeepN-JPEG derives a table from the statistics of the
// dataset itself — per-band DCT coefficient standard deviations mapped
// through a piece-wise linear function — preserving the frequency content
// DNN classifiers rely on while compressing ~3.5× harder than
// quality-matched JPEG.
//
// Typical use:
//
//	codec, err := deepnjpeg.Calibrate(trainImages, deepnjpeg.CalibrateConfig{})
//	data, err := codec.Encode(img)       // DeepN-JPEG compressed (real JFIF)
//	img2, err := deepnjpeg.Decode(data)  // decodable by any JPEG decoder
//
// The emitted streams are standard baseline JFIF: any JPEG decoder
// (including Go's image/jpeg) reads them.
package deepnjpeg

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/imgutil"
	"repro/internal/jpegcodec"
	"repro/internal/plm"
	"repro/internal/qtable"
)

// Image is an interleaved 8-bit RGB image.
type Image = imgutil.RGB

// Gray is a single-plane 8-bit grayscale image.
type Gray = imgutil.Gray

// QuantTable is a 64-entry JPEG quantization table in row-major order.
type QuantTable = qtable.Table

// NewImage allocates a zeroed color image.
func NewImage(w, h int) *Image { return imgutil.NewRGB(w, h) }

// NewGray allocates a zeroed grayscale image.
func NewGray(w, h int) *Gray { return imgutil.NewGray(w, h) }

// CalibrateConfig tunes the calibration flow. The zero value follows the
// paper: every image sampled, magnitude-based band segmentation, anchors
// from the published sensitivity sweeps.
type CalibrateConfig struct {
	// SampleEvery keeps every k-th image per class (Algorithm 1); ≤1 keeps
	// all.
	SampleEvery int
	// Chroma additionally calibrates a chroma table from Cb/Cr statistics.
	Chroma bool
	// UsePaperParams applies the published ImageNet PLM constants instead
	// of fitting to this dataset.
	UsePaperParams bool
}

// Codec is a calibrated DeepN-JPEG encoder/decoder.
type Codec struct {
	fw *core.Framework
}

// Calibrate runs the DeepN-JPEG design flow on a labeled image set:
// frequency component analysis, band segmentation by δ magnitude, and
// piece-wise linear mapping to a quantization table. labels[i] is the
// class of images[i]; classes drive the stratified sampling.
func Calibrate(images []*Image, labels []int, cfg CalibrateConfig) (*Codec, error) {
	if len(images) == 0 {
		return nil, fmt.Errorf("deepnjpeg: no images")
	}
	if len(images) != len(labels) {
		return nil, fmt.Errorf("deepnjpeg: %d images but %d labels", len(images), len(labels))
	}
	ds := &dataset.Dataset{Images: images, Labels: labels, Size: images[0].W}
	fw, err := core.Calibrate(ds, core.CalibrateOptions{
		SampleEvery:    cfg.SampleEvery,
		Chroma:         cfg.Chroma,
		UsePaperParams: cfg.UsePaperParams,
	})
	if err != nil {
		return nil, err
	}
	return &Codec{fw: fw}, nil
}

// LumaTable returns the calibrated luminance quantization table.
func (c *Codec) LumaTable() QuantTable { return c.fw.LumaTable }

// ChromaTable returns the chrominance quantization table (calibrated when
// CalibrateConfig.Chroma was set, Annex-K/QF-95 otherwise).
func (c *Codec) ChromaTable() QuantTable { return c.fw.ChromaTable }

// BandSigma returns the measured standard deviation δ(i,j) of the DCT
// band at natural index n (v*8+u), the statistic the table derives from.
func (c *Codec) BandSigma(n int) float64 { return c.fw.Stats.Std[n] }

// PLMParams returns the fitted piece-wise linear mapping parameters.
func (c *Codec) PLMParams() plm.Params { return c.fw.Params }

// Encode compresses a color image with the calibrated tables (4:2:0).
func (c *Codec) Encode(img *Image) ([]byte, error) {
	return c.fw.Scheme().EncodeRGB(img)
}

// EncodeGray compresses a grayscale image with the calibrated luma table.
func (c *Codec) EncodeGray(img *Gray) ([]byte, error) {
	return c.fw.Scheme().EncodeGray(img)
}

// Decode parses any baseline JFIF/JPEG stream into a color image.
func Decode(data []byte) (*Image, error) {
	dec, err := jpegcodec.Decode(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	return dec.RGB(), nil
}

// DecodeGray parses a baseline JFIF/JPEG stream and returns its luma
// plane.
func DecodeGray(data []byte) (*Gray, error) {
	dec, err := jpegcodec.Decode(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	return dec.Gray(), nil
}

// EncodeJPEG compresses with the standard Annex-K tables at a quality
// factor (the baseline DeepN-JPEG is compared against).
func EncodeJPEG(img *Image, qf int) ([]byte, error) {
	luma, err := qtable.Scale(qtable.StdLuminance, qf)
	if err != nil {
		return nil, err
	}
	chroma, err := qtable.Scale(qtable.StdChrominance, qf)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	opts := jpegcodec.Options{LumaTable: luma, ChromaTable: chroma}
	if err := jpegcodec.EncodeRGB(&buf, img, &opts); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// PSNR computes peak signal-to-noise between two equal-size images.
func PSNR(a, b *Image) (float64, error) {
	return imgutil.PSNR(a.Pix, b.Pix)
}

// CompressionRatio is reference size ÷ compressed size, the paper's CR.
func CompressionRatio(referenceBytes, compressedBytes int) float64 {
	return core.CompressionRatio(int64(referenceBytes), int64(compressedBytes))
}
