package deepnjpeg

// Interop golden tests: every stream this framework emits must be plain
// baseline JFIF that the Go standard library decodes, and conversely
// stdlib-encoded JPEGs must decode through deepnjpeg.Decode. Fidelity is
// bounded with PSNR against the source image; agreement between the two
// decoders on the same stream is bounded much tighter (they differ only
// in IDCT rounding and color-conversion arithmetic).

import (
	"bytes"
	"image"
	"image/jpeg"
	"testing"

	"repro/internal/imgutil"
)

// stdlibToRGB flattens any stdlib-decoded image to our representation.
func stdlibToRGB(t *testing.T, img image.Image) *Image {
	t.Helper()
	out := NewImage(img.Bounds().Dx(), img.Bounds().Dy())
	for y := 0; y < out.H; y++ {
		for x := 0; x < out.W; x++ {
			r, g, b, _ := img.At(img.Bounds().Min.X+x, img.Bounds().Min.Y+y).RGBA()
			i := 3 * (y*out.W + x)
			out.Pix[i], out.Pix[i+1], out.Pix[i+2] = uint8(r>>8), uint8(g>>8), uint8(b>>8)
		}
	}
	return out
}

func psnrOrDie(t *testing.T, a, b *Image) float64 {
	t.Helper()
	v, err := PSNR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestStdlibDecodesEveryEncodePath(t *testing.T) {
	images, labels := calibrationSet(t)
	codec, err := Calibrate(images, labels, CalibrateConfig{Chroma: true})
	if err != nil {
		t.Fatal(err)
	}
	src := images[0]

	cases := []struct {
		name        string
		encode      func() ([]byte, error)
		minFidelity float64 // dB vs source
	}{
		{"Codec.Encode", func() ([]byte, error) { return codec.Encode(src) }, 15},
		{"EncodeJPEG-qf85", func() ([]byte, error) { return EncodeJPEG(src, 85) }, 22},
		{"EncodeJPEG-qf100", func() ([]byte, error) { return EncodeJPEG(src, 100) }, 30},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data, err := tc.encode()
			if err != nil {
				t.Fatal(err)
			}
			stdImg, err := jpeg.Decode(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("stdlib cannot decode the stream: %v", err)
			}
			if stdImg.Bounds().Dx() != src.W || stdImg.Bounds().Dy() != src.H {
				t.Fatalf("stdlib decoded %dx%d, want %dx%d",
					stdImg.Bounds().Dx(), stdImg.Bounds().Dy(), src.W, src.H)
			}
			std := stdlibToRGB(t, stdImg)
			if got := psnrOrDie(t, src, std); got < tc.minFidelity {
				t.Fatalf("stdlib round-trip PSNR %.1f dB < %.1f dB", got, tc.minFidelity)
			}
			// Both decoders read the same stream: they must agree closely.
			ours, err := Decode(data)
			if err != nil {
				t.Fatal(err)
			}
			if got := psnrOrDie(t, ours, std); got < 30 {
				t.Fatalf("our decoder and stdlib disagree: %.1f dB", got)
			}
		})
	}
}

// TestSubsamplingMatrixInterop drives the full chroma matrix through
// the public encode API: every layout must emit plain baseline JFIF
// that stdlib decodes at the right geometry, and the two decoders must
// agree closely on the same stream — the property the 4:2:2-family
// upsampling bug silently broke.
func TestSubsamplingMatrixInterop(t *testing.T) {
	images, labels := calibrationSet(t)
	codec, err := Calibrate(images, labels, CalibrateConfig{Chroma: true})
	if err != nil {
		t.Fatal(err)
	}
	src := images[0]
	for _, sub := range []Subsampling{Sub444, Sub420, Sub422, Sub440, Sub411} {
		t.Run(sub.String(), func(t *testing.T) {
			data, err := codec.EncodeWith(src, EncodeOptions{Subsampling: sub})
			if err != nil {
				t.Fatal(err)
			}
			stdImg, err := jpeg.Decode(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("stdlib cannot decode the %v stream: %v", sub, err)
			}
			if stdImg.Bounds().Dx() != src.W || stdImg.Bounds().Dy() != src.H {
				t.Fatalf("stdlib decoded %dx%d, want %dx%d",
					stdImg.Bounds().Dx(), stdImg.Bounds().Dy(), src.W, src.H)
			}
			ours, err := Decode(data)
			if err != nil {
				t.Fatal(err)
			}
			if got := psnrOrDie(t, ours, stdlibToRGB(t, stdImg)); got < 30 {
				t.Fatalf("our decoder and stdlib disagree on the %v stream: %.1f dB", sub, got)
			}
			// The layout must survive coefficient-domain requantization.
			requant, err := codec.Requantize(data, RequantizeOptions{})
			if err != nil {
				t.Fatalf("requantize of the %v stream: %v", sub, err)
			}
			if _, err := jpeg.Decode(bytes.NewReader(requant)); err != nil {
				t.Fatalf("stdlib rejects the requantized %v stream: %v", sub, err)
			}
		})
	}
}

func TestStdlibDecodesGrayStream(t *testing.T) {
	images, labels := calibrationSet(t)
	codec, err := Calibrate(images, labels, CalibrateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	g := toGray(images[0])
	data, err := codec.EncodeGray(g)
	if err != nil {
		t.Fatal(err)
	}
	stdImg, err := jpeg.Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("stdlib cannot decode the grayscale stream: %v", err)
	}
	if _, ok := stdImg.(*image.Gray); !ok {
		t.Fatalf("stdlib decoded %T, want *image.Gray", stdImg)
	}
	if stdImg.Bounds().Dx() != g.W || stdImg.Bounds().Dy() != g.H {
		t.Fatalf("stdlib decoded %dx%d, want %dx%d", stdImg.Bounds().Dx(), stdImg.Bounds().Dy(), g.W, g.H)
	}
	ours, err := DecodeGray(data)
	if err != nil {
		t.Fatal(err)
	}
	var worst int
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			sr, _, _, _ := stdImg.At(x, y).RGBA()
			d := int(uint8(sr>>8)) - int(ours.At(x, y))
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
	}
	// Same stream, same quantized coefficients: only IDCT rounding differs.
	if worst > 2 {
		t.Fatalf("decoders disagree by up to %d grey levels on the same stream", worst)
	}
}

func TestDecodeStdlibEncodedStreams(t *testing.T) {
	images, _ := calibrationSet(t)
	src := images[0]

	for _, ratio := range []struct {
		name    string
		quality int
		minDB   float64
	}{
		{"q90", 90, 22},
		{"q60", 60, 18},
	} {
		t.Run(ratio.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := jpeg.Encode(&buf, src.ToImage(), &jpeg.Options{Quality: ratio.quality}); err != nil {
				t.Fatal(err)
			}
			back, err := Decode(buf.Bytes())
			if err != nil {
				t.Fatalf("cannot decode a stdlib-encoded JPEG: %v", err)
			}
			if back.W != src.W || back.H != src.H {
				t.Fatalf("decoded %dx%d, want %dx%d", back.W, back.H, src.W, src.H)
			}
			if got := psnrOrDie(t, src, back); got < ratio.minDB {
				t.Fatalf("round-trip PSNR %.1f dB < %.1f dB", got, ratio.minDB)
			}
			// Cross-check against the stdlib's own reading of its stream.
			stdImg, err := jpeg.Decode(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if got := psnrOrDie(t, back, stdlibToRGB(t, stdImg)); got < 30 {
				t.Fatalf("our decoder disagrees with stdlib on its own stream: %.1f dB", got)
			}
		})
	}

	t.Run("gray", func(t *testing.T) {
		g := toGray(src)
		gray := image.NewGray(image.Rect(0, 0, g.W, g.H))
		copy(gray.Pix, g.Pix) // stride == width for a fresh image.Gray
		var buf bytes.Buffer
		if err := jpeg.Encode(&buf, gray, &jpeg.Options{Quality: 90}); err != nil {
			t.Fatal(err)
		}
		back, err := DecodeGray(buf.Bytes())
		if err != nil {
			t.Fatalf("cannot decode a stdlib-encoded grayscale JPEG: %v", err)
		}
		if back.W != g.W || back.H != g.H {
			t.Fatalf("decoded %dx%d, want %dx%d", back.W, back.H, g.W, g.H)
		}
		v, err := imgutil.PSNR(g.Pix, back.Pix)
		if err != nil {
			t.Fatal(err)
		}
		if v < 22 {
			t.Fatalf("gray round-trip PSNR %.1f dB", v)
		}
	})
}
