package deepnjpeg

// Concurrency tests for the batch API. Everything here is meant to run
// under -race: one calibrated Codec is shared across goroutines and
// batches, which is exactly the deployment shape the batch pipeline
// exists for.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

func batchCodec(t *testing.T) (*Codec, []*Image) {
	t.Helper()
	images, labels := calibrationSet(t)
	codec, err := Calibrate(images, labels, CalibrateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return codec, images
}

func TestEncodeBatchMatchesSequential(t *testing.T) {
	codec, images := batchCodec(t)
	want := make([][]byte, len(images))
	for i, im := range images {
		data, err := codec.Encode(im)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = data
	}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			got, err := codec.EncodeBatch(context.Background(), images, BatchOptions{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("got %d streams, want %d", len(got), len(want))
			}
			for i := range got {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("stream %d differs from sequential encode", i)
				}
			}
		})
	}
}

func TestEncodeGrayBatchMatchesSequential(t *testing.T) {
	codec, images := batchCodec(t)
	grays := make([]*Gray, len(images))
	for i, im := range images {
		grays[i] = toGray(im)
	}
	want := make([][]byte, len(grays))
	for i, g := range grays {
		data, err := codec.EncodeGray(g)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = data
	}
	got, err := codec.EncodeGrayBatch(context.Background(), grays, BatchOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("gray stream %d differs from sequential encode", i)
		}
	}
}

func toGray(im *Image) *Gray {
	g := NewGray(im.W, im.H)
	for i := 0; i < im.W*im.H; i++ {
		g.Pix[i] = im.Pix[3*i]
	}
	return g
}

func TestDecodeBatchMatchesSequential(t *testing.T) {
	codec, images := batchCodec(t)
	streams, err := codec.EncodeBatch(context.Background(), images, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeBatch(context.Background(), streams, BatchOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range decoded {
		want, err := Decode(streams[i])
		if err != nil {
			t.Fatal(err)
		}
		if d.W != want.W || d.H != want.H || !bytes.Equal(d.Pix, want.Pix) {
			t.Fatalf("batch-decoded image %d differs from sequential decode", i)
		}
	}
}

func TestEncodeBatchPerItemErrors(t *testing.T) {
	codec, images := batchCodec(t)
	batch := append([]*Image{}, images[:4]...)
	batch[2] = NewImage(0, 0) // empty image: encoder rejects it
	out, err := codec.EncodeBatch(context.Background(), batch, BatchOptions{Workers: 2})
	if err == nil {
		t.Fatal("expected a batch error")
	}
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("error %T does not unwrap to *BatchError", err)
	}
	if len(be.Items) != 1 || be.Items[0].Index != 2 {
		t.Fatalf("unexpected failed items %v", be.Items)
	}
	for i, data := range out {
		if i == 2 {
			if data != nil {
				t.Fatal("failed item produced output")
			}
			continue
		}
		if len(data) == 0 {
			t.Fatalf("healthy item %d produced no output", i)
		}
		if _, err := Decode(data); err != nil {
			t.Fatalf("healthy item %d stream corrupt: %v", i, err)
		}
	}
}

func TestDecodeBatchPerItemErrors(t *testing.T) {
	codec, images := batchCodec(t)
	streams, err := codec.EncodeBatch(context.Background(), images[:3], BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	streams[1] = []byte("definitely not a jpeg")
	out, err := DecodeBatch(context.Background(), streams, BatchOptions{Workers: 3})
	var be *BatchError
	if !errors.As(err, &be) || len(be.Items) != 1 || be.Items[0].Index != 1 {
		t.Fatalf("err = %v, want BatchError for item 1", err)
	}
	if out[0] == nil || out[2] == nil || out[1] != nil {
		t.Fatal("batch output does not isolate the corrupt item")
	}
}

// TestSharedCodecAcrossGoroutines hammers one Codec from many
// goroutines mixing single-image and batch calls — the -race payload.
func TestSharedCodecAcrossGoroutines(t *testing.T) {
	codec, images := batchCodec(t)
	ref, err := codec.Encode(images[0])
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%2 == 0 {
				out, err := codec.EncodeBatch(context.Background(), images, BatchOptions{Workers: 2})
				if err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(out[0], ref) {
					t.Error("concurrent batch encode diverged")
				}
				return
			}
			for k := 0; k < 4; k++ {
				data, err := codec.Encode(images[0])
				if err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(data, ref) {
					t.Error("concurrent encode diverged")
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestEncodeBatchCancelBeforeStart(t *testing.T) {
	codec, images := batchCodec(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := codec.EncodeBatch(ctx, images, BatchOptions{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, data := range out {
		if data != nil {
			t.Fatalf("item %d ran under a pre-canceled context", i)
		}
	}
}

// TestEncodeBatchCancelMidBatch cancels while a slow single-worker batch
// is in flight: the call must return promptly with a context error and
// the tail of the batch must be unprocessed.
func TestEncodeBatchCancelMidBatch(t *testing.T) {
	codec, images := batchCodec(t)
	// A batch big enough that one worker cannot finish before the cancel.
	big := make([]*Image, 0, 2048)
	for len(big) < cap(big) {
		big = append(big, images[len(big)%len(images)])
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	out, err := codec.EncodeBatch(ctx, big, BatchOptions{Workers: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	done := 0
	for _, data := range out {
		if data != nil {
			done++
		}
	}
	if done == len(big) {
		t.Fatal("entire batch completed despite cancellation")
	}
}
