package deepnjpeg

// End-to-end acceptance of the persistent-calibration subsystem: a
// profile written from a calibrated Codec must restore to a codec whose
// streams are byte-identical to the original's (both transform engines,
// encode and requantize), and a server booted from a profile directory
// must answer without any calibration having run.

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
)

func TestProfileRoundTripByteIdentical(t *testing.T) {
	images, labels := calibrationSet(t)
	for _, tf := range []Transform{TransformNaive, TransformAAN} {
		codec, err := Calibrate(images, labels, CalibrateConfig{Chroma: true, Transform: tf})
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "set@7.dnp")
		if err := codec.SaveProfile(path, ProfileMeta{Name: "set", Version: 7, Comment: "round trip"}); err != nil {
			t.Fatal(err)
		}
		p, err := LoadProfile(path)
		if err != nil {
			t.Fatal(err)
		}
		if p.Ref() != "set@7" || p.Transform != tf || p.CreatedUnix == 0 {
			t.Fatalf("transform %v: loaded profile %+v", tf, p)
		}
		restored, err := NewCodecFromProfile(p)
		if err != nil {
			t.Fatal(err)
		}
		if restored.LumaTable() != codec.LumaTable() || restored.ChromaTable() != codec.ChromaTable() {
			t.Fatalf("transform %v: restored tables differ", tf)
		}
		for i, img := range images[:4] {
			want, err := codec.Encode(img)
			if err != nil {
				t.Fatal(err)
			}
			got, err := restored.Encode(img)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("transform %v: image %d: restored codec stream differs", tf, i)
			}
		}
		// Requantization shares the tables too.
		src, err := EncodeJPEG(images[0], 90)
		if err != nil {
			t.Fatal(err)
		}
		want, err := codec.Requantize(src, RequantizeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := restored.Requantize(src, RequantizeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("transform %v: restored requantize stream differs", tf)
		}
	}
}

func TestServerBootsFromProfileWithoutCodec(t *testing.T) {
	images, labels := calibrationSet(t)
	codec, err := Calibrate(images, labels, CalibrateConfig{Chroma: true})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := codec.SaveProfile(filepath.Join(dir, "boot@1.dnp"), ProfileMeta{Name: "boot", Version: 1}); err != nil {
		t.Fatal(err)
	}
	// nil Codec: the profile is the only table source — serve without
	// any boot-time calibration.
	srv, err := NewServer(nil, ServerOptions{ProfileDir: dir, DefaultProfile: "boot"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	src, err := EncodeJPEG(images[0], 90)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/requantize?optimize=false", "image/jpeg", bytes.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request answered %d", resp.StatusCode)
	}
	var got bytes.Buffer
	if _, err := got.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	want, err := codec.Requantize(src, RequantizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("profile-booted server stream differs from the calibrated codec")
	}
}
