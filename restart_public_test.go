package deepnjpeg

// Public-API coverage for restart intervals and single-image sharded
// entropy coding: EncodeWith/EncodeGrayWith stream shaping, the
// DecodeOptions.ShardWorkers knob, and the restart semantics of
// Requantize (inherit by default, strip on negative, replace on
// positive). The byte-level matrix lives in internal/jpegcodec; this
// file pins the exported surface.

import (
	"bytes"
	"image/jpeg"
	"testing"
)

// driValue walks the marker segments before SOS and returns the DRI
// restart interval, or 0 when the stream declares none.
func driValue(t *testing.T, stream []byte) int {
	t.Helper()
	if len(stream) < 4 || stream[0] != 0xFF || stream[1] != 0xD8 {
		t.Fatalf("not a JPEG stream: % X", stream[:min(4, len(stream))])
	}
	i := 2
	for i+4 <= len(stream) {
		if stream[i] != 0xFF {
			t.Fatalf("expected marker at offset %d, found %#02x", i, stream[i])
		}
		m := stream[i+1]
		if m == 0xDA { // SOS: entropy data follows, no DRI seen
			return 0
		}
		ln := int(stream[i+2])<<8 | int(stream[i+3])
		if m == 0xDD {
			return int(stream[i+4])<<8 | int(stream[i+5])
		}
		i += 2 + ln
	}
	t.Fatal("no SOS marker in stream")
	return 0
}

func pixelsEqual(t *testing.T, want, got *Image, label string) {
	t.Helper()
	if want.W != got.W || want.H != got.H {
		t.Fatalf("%s: geometry %dx%d vs %dx%d", label, want.W, want.H, got.W, got.H)
	}
	if !bytes.Equal(want.Pix, got.Pix) {
		t.Fatalf("%s: pixel data differs", label)
	}
}

func TestEncodeWithRestartInterval(t *testing.T) {
	images, labels := calibrationSet(t)
	codec, err := Calibrate(images, labels, CalibrateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	img := images[0]

	plain, err := codec.Encode(img)
	if err != nil {
		t.Fatal(err)
	}
	restarted, err := codec.EncodeWith(img, EncodeOptions{RestartInterval: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := driValue(t, restarted); got != 2 {
		t.Fatalf("DRI = %d, want 2", got)
	}
	if got := driValue(t, plain); got != 0 {
		t.Fatalf("default encode carries DRI %d, want none", got)
	}

	// Restart markers change the stream structure, not the image.
	wantImg, err := Decode(plain)
	if err != nil {
		t.Fatal(err)
	}
	gotImg, err := Decode(restarted)
	if err != nil {
		t.Fatal(err)
	}
	pixelsEqual(t, wantImg, gotImg, "restart-vs-plain")

	// The restarted stream is still standard JFIF.
	if _, err := jpeg.Decode(bytes.NewReader(restarted)); err != nil {
		t.Fatalf("stdlib cannot decode restarted stream: %v", err)
	}

	// Sharded encoding is byte-identical to sequential, RGB and gray.
	sharded, err := codec.EncodeWith(img, EncodeOptions{RestartInterval: 2, ShardWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(restarted, sharded) {
		t.Fatal("sharded encode differs from sequential")
	}
	gray := img.ToGray()
	graySeq, err := codec.EncodeGrayWith(gray, EncodeOptions{RestartInterval: 2, ShardWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	grayShard, err := codec.EncodeGrayWith(gray, EncodeOptions{RestartInterval: 2, ShardWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := driValue(t, graySeq); got != 2 {
		t.Fatalf("gray DRI = %d, want 2", got)
	}
	if !bytes.Equal(graySeq, grayShard) {
		t.Fatal("sharded gray encode differs from sequential")
	}

	// The 16-bit DRI bound is enforced at the public surface.
	if _, err := codec.EncodeWith(img, EncodeOptions{RestartInterval: 65536}); err == nil {
		t.Fatal("RestartInterval 65536 accepted")
	}
}

func TestDecodeOptionsShardWorkers(t *testing.T) {
	images, labels := calibrationSet(t)
	codec, err := Calibrate(images, labels, CalibrateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := codec.EncodeWith(images[0], EncodeOptions{RestartInterval: 1})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := DecodeInto(nil, stream, DecodeOptions{ShardWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	shard, err := DecodeInto(nil, stream, DecodeOptions{ShardWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	pixelsEqual(t, seq, shard, "sharded-vs-sequential decode")
}

func TestRequantizeRestartSemantics(t *testing.T) {
	images, labels := calibrationSet(t)
	codec, err := Calibrate(images, labels, CalibrateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	src, err := codec.EncodeWith(images[0], EncodeOptions{RestartInterval: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Default: transcoding preserves the source's restart structure.
	inherited, err := codec.Requantize(src, RequantizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := driValue(t, inherited); got != 2 {
		t.Fatalf("inherited DRI = %d, want 2", got)
	}

	// A positive value replaces the interval, a negative one strips it.
	replaced, err := codec.Requantize(src, RequantizeOptions{RestartInterval: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := driValue(t, replaced); got != 3 {
		t.Fatalf("replaced DRI = %d, want 3", got)
	}
	stripped, err := codec.Requantize(src, RequantizeOptions{RestartInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got := driValue(t, stripped); got != 0 {
		t.Fatalf("stripped stream carries DRI %d", got)
	}

	// Out-of-range replacement intervals are rejected.
	if _, err := codec.Requantize(src, RequantizeOptions{RestartInterval: 65536}); err == nil {
		t.Fatal("RestartInterval 65536 accepted by Requantize")
	}

	// Sharded requantize output is byte-identical to sequential.
	shard, err := codec.Requantize(src, RequantizeOptions{ShardWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(inherited, shard) {
		t.Fatal("sharded requantize differs from sequential")
	}
}
