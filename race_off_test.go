//go:build !race

package deepnjpeg

// raceEnabled reports whether the race detector is compiled in; alloc
// assertions are skipped under -race because instrumentation adds
// allocations the production binary never makes.
const raceEnabled = false
