// Command deepn-train trains one of the mini model-zoo architectures on
// SynthNet and reports accuracy, parameter count and per-inference MACs —
// the numbers the paper uses to position AlexNet (724M MACs) against
// GoogLeNet (1.43G MACs):
//
//	deepn-train -model mini-resnet10 -epochs 10 -save model.gob
//	deepn-train -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/nn/models"
)

func main() {
	model := flag.String("model", "minicnn", "architecture to train")
	list := flag.Bool("list", false, "list available architectures")
	classes := flag.Int("classes", 8, "SynthNet classes")
	perClass := flag.Int("per-class", 80, "training images per class")
	testPerClass := flag.Int("test-per-class", 40, "test images per class")
	size := flag.Int("size", 32, "image size")
	color := flag.Bool("color", false, "train on RGB instead of luma")
	epochs := flag.Int("epochs", 8, "training epochs")
	batch := flag.Int("batch", 32, "batch size")
	lr := flag.Float64("lr", 0.04, "learning rate")
	seed := flag.Int64("seed", 11, "random seed")
	save := flag.String("save", "", "write trained weights (gob) to this path")
	flag.Parse()

	if *list {
		fmt.Println("available models:", strings.Join(models.Names(), ", "))
		return
	}

	cfg := dataset.Config{
		Classes: *classes, Size: *size,
		TrainPerClass: *perClass, TestPerClass: *testPerClass,
		Color: *color, NoiseStd: 5, Seed: *seed,
	}
	train, test, err := dataset.Generate(cfg)
	if err != nil {
		fail(err)
	}
	channels := 1
	if *color {
		channels = 3
	}
	m, err := models.Build(*model, models.Config{Channels: channels, Size: *size, Classes: *classes, Seed: *seed})
	if err != nil {
		fail(err)
	}
	inShape := []int{channels, *size, *size}
	fmt.Printf("%s: %d parameters, %.1fM MACs/inference\n",
		*model, models.ParamCount(m), float64(m.MACs(inShape))/1e6)

	trainT := train.Tensors(*color)
	testT := test.Tensors(*color)
	t0 := time.Now()
	m.Train(trainT, nn.TrainConfig{
		Epochs: *epochs, BatchSize: *batch, LR: *lr, Momentum: 0.9,
		Seed: *seed, Log: os.Stdout,
	})
	fmt.Printf("trained %d images × %d epochs in %.1fs\n", train.Len(), *epochs, time.Since(t0).Seconds())
	fmt.Printf("train accuracy %.1f%%  test accuracy %.1f%%\n",
		100*m.Accuracy(trainT), 100*m.Accuracy(testT))

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := m.Save(f); err != nil {
			fail(err)
		}
		fmt.Printf("weights saved to %s\n", *save)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "deepn-train:", err)
	os.Exit(1)
}
