// Command deepn-jpeg is the CLI front end of the DeepN-JPEG codec:
//
//	deepn-jpeg calibrate  [-in imgdir/] [-out p.dnp -name imagenet -pversion 1]
//	                      [-chroma] [-workers N] [-fast-dct]     # calibrate, optionally persist a profile
//	deepn-jpeg profiles   list|show|verify [-dir profiles/] [-in p.dnp]  # manage persisted profiles
//	deepn-jpeg profiles   push|pull|sign [-origin URL] [-key k|-pub k.pub]  # hub lifecycle
//	deepn-jpeg profiles   diff a.dnp b.dnp                          # compare calibrations (exit 1 on difference)
//	deepn-jpeg profiles   gc -dir profiles/ [-max-bytes N] [-max-versions N] [-dry-run]
//	deepn-jpeg hub        serve -dir profiles/ [-addr :9701] [-key k] [-push-key s]
//	deepn-jpeg hub        keygen [-out hub-signing.key]             # Ed25519 signing key pair
//	deepn-jpeg encode     -in img.(ppm|pgm|png|jpg) -out out.jpg
//	                      [-qf 85 | -deepn] [-subsampling 420|444|422|440|411] [-optimize] [-fast-dct]
//	deepn-jpeg encode     -in dir/ -out dir/ [-workers N] ...       # batch-encode a directory
//	deepn-jpeg decode     -in img.jpg -out out.(ppm|pgm|png) [-fast-dct]
//	deepn-jpeg decode     -in dir/ -out dir/ [-format png] [-workers N]  # batch-decode a directory
//	deepn-jpeg requantize -in img.jpg -out out.jpg [-qf 60 | -deepn]
//	                      [-strip-metadata]                       # alias: transcode
//	deepn-jpeg requantize -in dir/ -out dir/ [-workers N] ...      # batch-requantize a directory
//	deepn-jpeg inspect    -in img.jpg                               # markers, scan parameters, tables
//	deepn-jpeg serve      -addr :8080 [-profile-dir profiles/ -profile name]
//	                      [-hub-origin URL -hub-pub k.pub]          # pull profiles from a hub
//	                      [-api-keys k1:4,k2] [-workers N]         # HTTP codec service
//
// calibrate runs the DeepN-JPEG design flow on an image directory (-in;
// sub-directories are classes, a flat directory is one class, images load
// in parallel through the batch pipeline) or, without -in, on the
// built-in SynthNet generator so the tool works without external data;
// encode -deepn calibrates on the fly the same way. With -out the
// calibration persists as a named, versioned profile file that `profiles
// list|show|verify` manages and `serve -profile` boots from — skipping
// startup calibration entirely.
//
// When -in names a directory, encode, decode and requantize process every
// supported image in it onto -out (a directory) through the concurrent
// batch pipeline; -workers sizes the pool (0 = GOMAXPROCS). -fast-dct
// switches the block transform to the AAN fast engine: encoded streams
// are byte-identical to the naive engine, just produced faster.
//
// serve exposes the codec over HTTP (POST /v1/encode, /v1/decode,
// /v1/requantize, multipart /v1/batch, POST /admin/profiles/reload, GET
// /healthz, /metrics) with per-tenant concurrency limits; -profile-dir
// serves a profile registry with per-request (?profile=name) and
// per-tenant selection plus hot reload. See the README for endpoint
// details and curl examples.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"image/png"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	deepnjpeg "repro"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/imgutil"
	"repro/internal/jpegcodec"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/profilehub"
	"repro/internal/qtable"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "calibrate":
		err = runCalibrate(os.Args[2:])
	case "encode":
		err = runEncode(os.Args[2:])
	case "decode":
		err = runDecode(os.Args[2:])
	case "requantize", "transcode":
		err = runRequantize(os.Args[2:])
	case "inspect":
		err = runInspect(os.Args[2:])
	case "profiles":
		err = runProfiles(os.Args[2:])
	case "hub":
		err = runHub(os.Args[2:])
	case "serve":
		err = runServe(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "deepn-jpeg:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: deepn-jpeg <calibrate|profiles|hub|encode|decode|requantize|inspect|serve> [flags]")
}

// runRequantize re-targets existing JPEGs in the coefficient domain — no
// second IDCT/DCT generation loss — either to a plain QF table or to a
// DeepN-JPEG table calibrated on SynthNet. (Also reachable as the legacy
// "transcode" subcommand.) A directory input batch-requantizes through
// the concurrent pipeline.
func runRequantize(args []string) error {
	fs := flag.NewFlagSet("requantize", flag.ExitOnError)
	in := fs.String("in", "", "input JPEG or directory")
	out := fs.String("out", "", "output JPEG or directory")
	qf := fs.Int("qf", 60, "target quality factor (standard tables)")
	deepn := fs.Bool("deepn", false, "retarget to a DeepN-JPEG table calibrated on SynthNet")
	optimize := fs.Bool("optimize", true, "optimized Huffman tables")
	workers := fs.Int("workers", 0, "worker-pool size for directory requantization (0 = GOMAXPROCS)")
	restart := fs.Int("restart", 0, "output restart interval: 0 = preserve the source's, -1 = strip, n = set n MCUs")
	shard := fs.Int("shard", 0, "restart-segment workers within one image: 0 = auto, 1 = off, n = force n")
	stripMeta := fs.Bool("strip-metadata", false, "drop APPn/COM segments (EXIF, ICC, comments) instead of passing them through")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("requantize needs -in and -out")
	}
	// Both table choices go through the public requantize API — the same
	// code path (and pooled decoder scratch) the HTTP server dispatches
	// to — so the CLI only decides which tables and does the file IO.
	ropts := deepnjpeg.RequantizeOptions{
		OptimizeHuffman: *optimize,
		RestartInterval: *restart,
		ShardWorkers:    *shard,
		StripMetadata:   *stripMeta,
	}
	var requant func(src []byte) ([]byte, error)
	if *deepn {
		codec, err := synthNetCodec(deepnjpeg.CalibrateConfig{})
		if err != nil {
			return err
		}
		requant = func(src []byte) ([]byte, error) { return codec.Requantize(src, ropts) }
	} else {
		target := *qf
		requant = func(src []byte) ([]byte, error) { return deepnjpeg.RequantizeJPEG(src, target, ropts) }
	}
	if st, err := os.Stat(*in); err == nil && st.IsDir() {
		return requantizeDir(*in, *out, *workers, requant)
	}
	src, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	n, err := requantizeStream(src, *out, requant)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d → %d bytes (%.2f×), coefficient-domain requantization\n",
		*out, len(src), n, float64(len(src))/float64(n))
	return nil
}

// synthNetCodec calibrates a codec on the built-in SynthNet generator,
// the stand-in dataset that keeps the tool usable without external data.
func synthNetCodec(cfg deepnjpeg.CalibrateConfig) (*deepnjpeg.Codec, error) {
	train, _, err := dataset.Generate(dataset.Quick())
	if err != nil {
		return nil, err
	}
	return deepnjpeg.Calibrate(train.Images, train.Labels, cfg)
}

// requantizeStream requantizes one in-memory JPEG onto outPath and
// returns the output size.
func requantizeStream(src []byte, outPath string, requant func([]byte) ([]byte, error)) (int, error) {
	out, err := requant(src)
	if err != nil {
		return 0, err
	}
	if err := os.WriteFile(outPath, out, 0o644); err != nil {
		return 0, err
	}
	return len(out), nil
}

// requantizeDir batch-requantizes every JPEG in inDir onto outDir through
// the concurrent pipeline, with the same output-collision detection and
// partial-failure reporting as encodeDir.
func requantizeDir(inDir, outDir string, workers int, requant func([]byte) ([]byte, error)) error {
	inputs, err := listInputs(inDir, ".jpg", ".jpeg")
	if err != nil {
		return err
	}
	if len(inputs) == 0 {
		return fmt.Errorf("no JPEGs (jpg/jpeg) in %s", inDir)
	}
	if err := checkOutputCollisions(inputs, ".jpg"); err != nil {
		return err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	var inBytes, outBytes, okCount atomic.Int64
	start := time.Now()
	err = pipeline.Run(context.Background(), len(inputs), workers, func(_ context.Context, i int) error {
		src, err := os.ReadFile(filepath.Join(inDir, inputs[i]))
		if err != nil {
			return err
		}
		name := strings.TrimSuffix(inputs[i], filepath.Ext(inputs[i])) + ".jpg"
		n, err := requantizeStream(src, filepath.Join(outDir, name), requant)
		if err != nil {
			return err
		}
		inBytes.Add(int64(len(src)))
		outBytes.Add(int64(n))
		okCount.Add(1)
		return nil
	})
	elapsed := time.Since(start)
	ok := okCount.Load()
	fmt.Printf("%s: requantized %d/%d JPEGs from %s (workers=%d) in %v (%.1f MB → %.1f MB, %.1f images/s)\n",
		outDir, ok, len(inputs), inDir, pipeline.Workers(workers, len(inputs)), elapsed.Round(time.Millisecond),
		float64(inBytes.Load())/1e6, float64(outBytes.Load())/1e6,
		float64(ok)/elapsed.Seconds())
	return err
}

// listInputs returns the sorted base names in dir whose extension matches
// one of exts (case-insensitive).
func listInputs(dir string, exts ...string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var inputs []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		ext := strings.ToLower(filepath.Ext(e.Name()))
		for _, want := range exts {
			if ext == want {
				inputs = append(inputs, e.Name())
				break
			}
		}
	}
	sort.Strings(inputs)
	return inputs, nil
}

// checkOutputCollisions rejects batches in which two distinct inputs map
// to the same output name: a collision would make one worker's output
// clobber another's (or, when -in and -out are the same directory,
// overwrite an input another worker has yet to read).
func checkOutputCollisions(inputs []string, outExt string) error {
	outNames := make(map[string]string, len(inputs))
	for _, in := range inputs {
		name := strings.TrimSuffix(in, filepath.Ext(in)) + outExt
		if prev, dup := outNames[name]; dup {
			return fmt.Errorf("inputs %s and %s both map to output %s", prev, in, name)
		}
		outNames[name] = in
	}
	return nil
}

func runCalibrate(args []string) error {
	fs := flag.NewFlagSet("calibrate", flag.ExitOnError)
	in := fs.String("in", "", "image directory to calibrate on (sub-directories are classes); empty = SynthNet")
	out := fs.String("out", "", "write the calibration as a profile file (.dnp)")
	name := fs.String("name", "default", "profile name recorded in -out")
	pversion := fs.Uint("pversion", 1, "profile version recorded in -out (≥ 1)")
	comment := fs.String("comment", "", "free-form provenance recorded in -out")
	classes := fs.Int("classes", 8, "SynthNet classes (ignored with -in)")
	perClass := fs.Int("per-class", 40, "SynthNet images per class (ignored with -in)")
	size := fs.Int("size", 32, "SynthNet image size (ignored with -in)")
	seed := fs.Int64("seed", 1, "SynthNet generator seed (ignored with -in)")
	sampleEvery := fs.Int("sample-every", 0, "keep every k-th image per class (Algorithm 1); ≤1 keeps all")
	chroma := fs.Bool("chroma", false, "also calibrate a chroma table")
	workers := fs.Int("workers", 0, "image-load and statistics-pass worker count (0 = GOMAXPROCS)")
	fastDCT := fs.Bool("fast-dct", false, "record the AAN fast DCT engine in the calibration")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pversion == 0 || *pversion > math.MaxUint32 {
		return fmt.Errorf("-pversion %d out of range [1, %d]", *pversion, uint64(math.MaxUint32))
	}
	if *workers <= 0 {
		// The pipeline maps 0 to GOMAXPROCS on its own, but the
		// statistics pass treats ≤1 as sequential — resolve here so the
		// flag's "0 = GOMAXPROCS" promise covers both stages.
		*workers = runtime.GOMAXPROCS(0)
	}
	cfg := deepnjpeg.CalibrateConfig{Chroma: *chroma, Workers: *workers, SampleEvery: *sampleEvery}
	if *fastDCT {
		cfg.Transform = deepnjpeg.TransformAAN
	}
	var (
		codec    *deepnjpeg.Codec
		nClasses int
		source   string
		err      error
	)
	start := time.Now()
	if *in != "" {
		images, labels, err := loadImageDir(*in, *workers)
		if err != nil {
			return err
		}
		nClasses = countClasses(labels)
		source = *in
		codec, err = deepnjpeg.Calibrate(images, labels, cfg)
		if err != nil {
			return err
		}
	} else {
		dcfg := dataset.Config{Classes: *classes, Size: *size, TrainPerClass: *perClass, TestPerClass: 1, Seed: *seed, NoiseStd: 5, Color: *chroma}
		train, _, gerr := dataset.Generate(dcfg)
		if gerr != nil {
			return gerr
		}
		nClasses = *classes
		source = "SynthNet"
		codec, err = deepnjpeg.Calibrate(train.Images, train.Labels, cfg)
		if err != nil {
			return err
		}
	}
	elapsed := time.Since(start)

	p := codec.PLMParams()
	fmt.Printf("calibrated on %s (%d classes) in %v\n", source, nClasses, elapsed.Round(time.Millisecond))
	fmt.Printf("PLM: a=%.1f b=%.1f c=%.1f k1=%.3f k2=%.3f k3=%.3f T1=%.2f T2=%.2f Qmin=%.0f\n",
		p.A, p.B, p.C, p.K1, p.K2, p.K3, p.T1, p.T2, p.QMin)
	fmt.Println("\nluminance table:")
	fmt.Print(codec.LumaTable().String())
	if *chroma {
		fmt.Println("\nchrominance table:")
		fmt.Print(codec.ChromaTable().String())
	}
	if *out != "" {
		meta := deepnjpeg.ProfileMeta{Name: *name, Version: uint32(*pversion), Comment: *comment}
		if err := codec.SaveProfile(*out, meta); err != nil {
			return err
		}
		st, err := os.Stat(*out)
		if err != nil {
			return err
		}
		fmt.Printf("\nprofile %s@%d written to %s (%d bytes)\n", *name, *pversion, *out, st.Size())
	}
	return nil
}

// loadImageDir reads a calibration set from disk, in parallel through
// the batch pipeline. Sub-directories become classes (ImageNet layout)
// and images directly in dir form one more class of their own, so a
// mixed layout loses nothing — labels only drive Algorithm 1's
// stratified sampling, so unlabeled corpora still work.
func loadImageDir(dir string, workers int) ([]*imgutil.RGB, []int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var paths []string
	var labels []int
	class := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		names, err := listInputs(filepath.Join(dir, e.Name()), ".ppm", ".pgm", ".png", ".jpg", ".jpeg")
		if err != nil {
			return nil, nil, err
		}
		if len(names) == 0 {
			continue
		}
		for _, n := range names {
			paths = append(paths, filepath.Join(dir, e.Name(), n))
			labels = append(labels, class)
		}
		class++
	}
	rootNames, err := listInputs(dir, ".ppm", ".pgm", ".png", ".jpg", ".jpeg")
	if err != nil {
		return nil, nil, err
	}
	for _, n := range rootNames {
		paths = append(paths, filepath.Join(dir, n))
		labels = append(labels, class)
	}
	if len(paths) == 0 {
		return nil, nil, fmt.Errorf("no calibration images (ppm/pgm/png/jpg) under %s", dir)
	}
	images, err := pipeline.Map(context.Background(), len(paths), workers,
		func(_ context.Context, i int) (*imgutil.RGB, error) {
			return loadImage(paths[i])
		})
	if err != nil {
		return nil, nil, err
	}
	return images, labels, nil
}

func countClasses(labels []int) int {
	seen := map[int]bool{}
	for _, l := range labels {
		seen[l] = true
	}
	return len(seen)
}

// runProfiles manages persisted calibration profiles: list a directory,
// show one profile's metadata and tables, verify integrity (CRC,
// canonical re-encode, restorability).
func runProfiles(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: deepn-jpeg profiles <list|show|verify> [flags]")
	}
	sub, rest := args[0], args[1:]
	// The hub-facing lifecycle verbs live in hub.go with their own flag
	// sets.
	switch sub {
	case "push":
		return runProfilesPush(rest)
	case "pull":
		return runProfilesPull(rest)
	case "sign":
		return runProfilesSign(rest)
	case "diff":
		return runProfilesDiff(rest)
	case "gc":
		return runProfilesGC(rest)
	}
	fs := flag.NewFlagSet("profiles "+sub, flag.ExitOnError)
	dir := fs.String("dir", "", "profile directory")
	in := fs.String("in", "", "single profile file")
	switch sub {
	case "list":
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if *dir == "" {
			return fmt.Errorf("profiles list needs -dir")
		}
		// An unreadable directory is a hard error (a typo must not read
		// as "empty registry"); individual corrupt files are warnings —
		// the healthy remainder still lists.
		if st, err := os.Stat(*dir); err != nil {
			return err
		} else if !st.IsDir() {
			return fmt.Errorf("%s is not a directory", *dir)
		}
		reg, err := profile.OpenRegistry(*dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "deepn-jpeg: warning:", err)
		}
		ps := reg.List()
		if len(ps) == 0 {
			fmt.Printf("no profiles in %s\n", *dir)
			return nil
		}
		fmt.Printf("%-24s %-7s %-8s %-7s %-20s %s\n", "PROFILE", "SAMPLED", "TRANSFORM", "CHROMA", "CREATED", "COMMENT")
		for _, p := range ps {
			fmt.Printf("%-24s %-7d %-8s %-7v %-20s %s\n", p.Ref(), p.SampledCount, p.Transform,
				p.ChromaCalibrated, time.Unix(p.CreatedUnix, 0).UTC().Format("2006-01-02 15:04:05"), p.Comment)
		}
		return nil
	case "show":
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if *in == "" {
			return fmt.Errorf("profiles show needs -in")
		}
		p, err := profile.Read(*in)
		if err != nil {
			return err
		}
		fmt.Printf("%s: profile %s\n", *in, p.Ref())
		fmt.Printf("created:    %s\n", time.Unix(p.CreatedUnix, 0).UTC().Format(time.RFC3339))
		fmt.Printf("transform:  %s\n", p.Transform)
		fmt.Printf("sampled:    %d images (%d blocks)\n", p.SampledCount, p.LumaStats.Blocks)
		fmt.Printf("chroma:     calibrated=%v\n", p.ChromaCalibrated)
		if p.Comment != "" {
			fmt.Printf("comment:    %s\n", p.Comment)
		}
		fmt.Printf("PLM: a=%.1f b=%.1f c=%.1f k1=%.3f k2=%.3f k3=%.3f T1=%.2f T2=%.2f Qmin=%.0f\n",
			p.Params.A, p.Params.B, p.Params.C, p.Params.K1, p.Params.K2, p.Params.K3,
			p.Params.T1, p.Params.T2, p.Params.QMin)
		fmt.Println("\nluminance table:")
		fmt.Print(p.Luma.String())
		fmt.Println("\nchrominance table:")
		fmt.Print(p.Chroma.String())
		return nil
	case "verify":
		if err := fs.Parse(rest); err != nil {
			return err
		}
		var files []string
		switch {
		case *in != "":
			files = []string{*in}
		case *dir != "":
			names, err := listInputs(*dir, profile.Ext)
			if err != nil {
				return err
			}
			for _, n := range names {
				files = append(files, filepath.Join(*dir, n))
			}
		default:
			return fmt.Errorf("profiles verify needs -in or -dir")
		}
		if len(files) == 0 {
			return fmt.Errorf("no profile files (%s) to verify", profile.Ext)
		}
		bad := 0
		for _, f := range files {
			if err := verifyProfileFile(f); err != nil {
				bad++
				fmt.Printf("%-40s FAIL: %v\n", f, err)
				continue
			}
			fmt.Printf("%-40s OK\n", f)
		}
		if bad > 0 {
			return fmt.Errorf("%d of %d profile(s) failed verification", bad, len(files))
		}
		return nil
	default:
		return fmt.Errorf("unknown profiles subcommand %q (want list, show, verify, push, pull, sign, diff or gc)", sub)
	}
}

// verifyProfileFile runs the full integrity check on one profile file:
// decode (magic, structure, CRC), canonical re-encode byte-identity, and
// codec restorability.
func verifyProfileFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	p, err := profile.Decode(data)
	if err != nil {
		return err
	}
	again, err := p.Encode()
	if err != nil {
		return fmt.Errorf("re-encode: %w", err)
	}
	if !bytes.Equal(data, again) {
		return fmt.Errorf("re-encode is not byte-identical (non-canonical file)")
	}
	if _, err := deepnjpeg.NewCodecFromProfile(p); err != nil {
		return fmt.Errorf("restore: %w", err)
	}
	return nil
}

// loadImage reads PPM/PGM/PNG/JPEG by extension.
func loadImage(path string) (*imgutil.RGB, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	switch strings.ToLower(filepath.Ext(path)) {
	case ".ppm":
		return imgutil.ReadPPM(bytes.NewReader(data))
	case ".pgm":
		g, err := imgutil.ReadPGM(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		return g.ToRGB(), nil
	case ".png":
		img, err := png.Decode(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		return imgutil.FromImage(img), nil
	case ".jpg", ".jpeg":
		return deepnjpeg.Decode(data)
	default:
		return nil, fmt.Errorf("unsupported input format %q", filepath.Ext(path))
	}
}

// saveImage writes PPM/PGM/PNG by extension.
func saveImage(path string, im *imgutil.RGB) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch strings.ToLower(filepath.Ext(path)) {
	case ".ppm":
		return imgutil.WritePPM(f, im)
	case ".pgm":
		return imgutil.WritePGM(f, im.ToGray())
	case ".png":
		return png.Encode(f, im.ToImage())
	default:
		return fmt.Errorf("unsupported output format %q", filepath.Ext(path))
	}
}

func runEncode(args []string) error {
	fs := flag.NewFlagSet("encode", flag.ExitOnError)
	in := fs.String("in", "", "input image (ppm/pgm/png/jpg)")
	out := fs.String("out", "", "output JPEG path")
	qf := fs.Int("qf", 85, "JPEG quality factor (standard tables)")
	deepn := fs.Bool("deepn", false, "use a DeepN-JPEG table calibrated on SynthNet")
	sub := fs.String("subsampling", "420", "chroma subsampling: 420, 444, 422, 440 or 411")
	optimize := fs.Bool("optimize", false, "optimized Huffman tables")
	workers := fs.Int("workers", 0, "worker-pool size for directory encoding (0 = GOMAXPROCS)")
	fastDCT := fs.Bool("fast-dct", false, "use the AAN fast DCT engine (identical output, faster)")
	restart := fs.Int("restart", 0, "insert RSTn markers every n MCUs (0 = none; enables single-image parallel coding)")
	shard := fs.Int("shard", 0, "restart-segment workers within one image: 0 = auto, 1 = off, n = force n")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("encode needs -in and -out")
	}
	opts := jpegcodec.Options{OptimizeHuffman: *optimize, RestartInterval: *restart, ShardWorkers: *shard}
	if *fastDCT {
		opts.Transform = deepnjpeg.TransformAAN
	}
	var err error
	if opts.Subsampling, err = jpegcodec.ParseSubsampling(*sub); err != nil {
		return fmt.Errorf("bad -subsampling %q", *sub)
	}
	if *deepn {
		cfg := dataset.Quick()
		train, _, err := dataset.Generate(cfg)
		if err != nil {
			return err
		}
		fw, err := core.Calibrate(train, core.CalibrateOptions{})
		if err != nil {
			return err
		}
		opts.LumaTable = fw.LumaTable
		opts.ChromaTable = fw.ChromaTable
	} else {
		if opts.LumaTable, err = qtable.Scale(qtable.StdLuminance, *qf); err != nil {
			return err
		}
		if opts.ChromaTable, err = qtable.Scale(qtable.StdChrominance, *qf); err != nil {
			return err
		}
	}
	if st, err := os.Stat(*in); err == nil && st.IsDir() {
		return encodeDir(*in, *out, *workers, opts)
	}
	img, err := loadImage(*in)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := jpegcodec.EncodeRGB(&buf, img, &opts); err != nil {
		return err
	}
	if err := os.WriteFile(*out, buf.Bytes(), 0o644); err != nil {
		return err
	}
	back, err := deepnjpeg.Decode(buf.Bytes())
	if err != nil {
		return err
	}
	psnr, err := deepnjpeg.PSNR(img, back)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %dx%d → %d bytes (%.2f bpp), PSNR %.2f dB\n",
		*out, img.W, img.H, buf.Len(), 8*float64(buf.Len())/float64(img.W*img.H), psnr)
	return nil
}

// encodeDir batch-encodes every supported image in inDir onto outDir
// through the concurrent pipeline. Output files keep their base name
// with a .jpg extension; failures are reported per item at the end
// without aborting the rest of the batch.
func encodeDir(inDir, outDir string, workers int, opts jpegcodec.Options) error {
	inputs, err := listInputs(inDir, ".ppm", ".pgm", ".png", ".jpg", ".jpeg")
	if err != nil {
		return err
	}
	if len(inputs) == 0 {
		return fmt.Errorf("no encodable images (ppm/pgm/png/jpg) in %s", inDir)
	}
	if err := checkOutputCollisions(inputs, ".jpg"); err != nil {
		return err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	var inBytes, outBytes, okCount atomic.Int64
	start := time.Now()
	err = pipeline.Run(context.Background(), len(inputs), workers, func(_ context.Context, i int) error {
		img, err := loadImage(filepath.Join(inDir, inputs[i]))
		if err != nil {
			return err
		}
		var buf bytes.Buffer
		o := opts
		if err := jpegcodec.EncodeRGB(&buf, img, &o); err != nil {
			return err
		}
		name := strings.TrimSuffix(inputs[i], filepath.Ext(inputs[i])) + ".jpg"
		if err := os.WriteFile(filepath.Join(outDir, name), buf.Bytes(), 0o644); err != nil {
			return err
		}
		inBytes.Add(int64(3 * img.W * img.H))
		outBytes.Add(int64(buf.Len()))
		okCount.Add(1)
		return nil
	})
	elapsed := time.Since(start)
	ok := okCount.Load()
	fmt.Printf("%s: encoded %d/%d images from %s (workers=%d) in %v (%.1f MB raw → %.1f MB jpeg, %.1f images/s)\n",
		outDir, ok, len(inputs), inDir, pipeline.Workers(workers, len(inputs)), elapsed.Round(time.Millisecond),
		float64(inBytes.Load())/1e6, float64(outBytes.Load())/1e6,
		float64(ok)/elapsed.Seconds())
	return err
}

func runDecode(args []string) error {
	fs := flag.NewFlagSet("decode", flag.ExitOnError)
	in := fs.String("in", "", "input JPEG or directory")
	out := fs.String("out", "", "output image (ppm/pgm/png) or directory")
	format := fs.String("format", "png", "output format for directory decoding: png, ppm or pgm")
	workers := fs.Int("workers", 0, "worker-pool size for directory decoding (0 = GOMAXPROCS)")
	fastDCT := fs.Bool("fast-dct", false, "use the AAN fast IDCT engine for reconstruction")
	shard := fs.Int("shard", 0, "restart-segment workers within one image: 0 = auto, 1 = off, n = force n")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("decode needs -in and -out")
	}
	opts := deepnjpeg.DecodeOptions{ShardWorkers: *shard}
	if *fastDCT {
		opts.Transform = deepnjpeg.TransformAAN
	}
	if st, err := os.Stat(*in); err == nil && st.IsDir() {
		return decodeDir(*in, *out, *format, *workers, opts)
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	img, err := deepnjpeg.DecodeInto(nil, data, opts)
	if err != nil {
		return err
	}
	if err := saveImage(*out, img); err != nil {
		return err
	}
	fmt.Printf("%s: %dx%d\n", *out, img.W, img.H)
	return nil
}

// decodeDir batch-decodes every JPEG in inDir onto outDir through the
// concurrent pipeline, with the same output-collision detection and
// partial-failure reporting as encodeDir.
func decodeDir(inDir, outDir, format string, workers int, opts deepnjpeg.DecodeOptions) error {
	switch format {
	case "png", "ppm", "pgm":
	default:
		return fmt.Errorf("bad -format %q (want png, ppm or pgm)", format)
	}
	outExt := "." + format
	inputs, err := listInputs(inDir, ".jpg", ".jpeg")
	if err != nil {
		return err
	}
	if len(inputs) == 0 {
		return fmt.Errorf("no JPEGs (jpg/jpeg) in %s", inDir)
	}
	if err := checkOutputCollisions(inputs, outExt); err != nil {
		return err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	var pixels, okCount atomic.Int64
	start := time.Now()
	err = pipeline.Run(context.Background(), len(inputs), workers, func(_ context.Context, i int) error {
		data, err := os.ReadFile(filepath.Join(inDir, inputs[i]))
		if err != nil {
			return err
		}
		img, err := deepnjpeg.DecodeInto(nil, data, opts)
		if err != nil {
			return err
		}
		name := strings.TrimSuffix(inputs[i], filepath.Ext(inputs[i])) + outExt
		if err := saveImage(filepath.Join(outDir, name), img); err != nil {
			return err
		}
		pixels.Add(int64(img.W * img.H))
		okCount.Add(1)
		return nil
	})
	elapsed := time.Since(start)
	ok := okCount.Load()
	fmt.Printf("%s: decoded %d/%d JPEGs from %s (workers=%d) in %v (%.1f MP, %.1f images/s)\n",
		outDir, ok, len(inputs), inDir, pipeline.Workers(workers, len(inputs)), elapsed.Round(time.Millisecond),
		float64(pixels.Load())/1e6, float64(ok)/elapsed.Seconds())
	return err
}

func runInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	in := fs.String("in", "", "input JPEG")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("inspect needs -in")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	// The marker walk is decode-free, so it reports structure even for
	// streams the decoder rejects (arithmetic coding, lossless, …).
	info, ierr := jpegcodec.Inspect(bytes.NewReader(data))
	for _, seg := range info.Segments {
		fmt.Printf("%8d  %-40s", seg.Offset, seg.Name)
		if seg.Length >= 0 {
			fmt.Printf(" %6d bytes", seg.Length)
		}
		if seg.Detail != "" {
			fmt.Printf("  %s", seg.Detail)
		}
		fmt.Println()
	}
	if ierr != nil {
		return ierr
	}
	if info.Frame != nil && !info.Frame.Supported {
		fmt.Printf("\ncoding process not supported by this decoder (%s); marker structure only\n", info.Frame.Name)
		return nil
	}
	dec, err := jpegcodec.Decode(bytes.NewReader(data))
	if err != nil {
		return err
	}
	fmt.Printf("\n%s: %dx%d, %d component(s), %v", *in, dec.W, dec.H, dec.Components, dec.Sampling)
	if dec.Progressive {
		fmt.Printf(", progressive (%d scans)", len(info.Scans))
	}
	if dec.RestartInterval > 0 {
		fmt.Printf(", restart interval %d", dec.RestartInterval)
	}
	fmt.Println()
	for id, tbl := range dec.QuantTables {
		fmt.Printf("\nquantization table %d (mean step %.1f):\n%s", id, tbl.Mean(), tbl.String())
	}
	return nil
}

// parseTenants parses the -api-keys flag: comma-separated key[:limit]
// entries, e.g. "edge-fleet:8,dashboard:2,backfill".
func parseTenants(spec string, defaultLimit int) (map[string]deepnjpeg.TenantLimits, error) {
	if spec == "" {
		return nil, nil
	}
	tenants := make(map[string]deepnjpeg.TenantLimits)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		key, limitStr, hasLimit := strings.Cut(entry, ":")
		if key == "" {
			return nil, fmt.Errorf("empty API key in -api-keys entry %q", entry)
		}
		limit := defaultLimit
		if hasLimit {
			n, err := strconv.Atoi(limitStr)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("bad in-flight limit in -api-keys entry %q", entry)
			}
			limit = n
		}
		if _, dup := tenants[key]; dup {
			return nil, fmt.Errorf("duplicate API key %q in -api-keys", key)
		}
		tenants[key] = deepnjpeg.TenantLimits{MaxInFlight: limit}
	}
	return tenants, nil
}

// runServe serves the codec over HTTP until SIGINT/SIGTERM, then drains
// in-flight requests before exiting. With -profile the default table set
// loads from a persisted profile — no startup calibration at all;
// without it the server calibrates on SynthNet at boot (the historical
// behavior, and the slow path -profile exists to avoid).
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	chroma := fs.Bool("chroma", false, "also calibrate a chroma table (SynthNet boot only)")
	fastDCT := fs.Bool("fast-dct", false, "use the AAN fast DCT engine (SynthNet boot only)")
	workers := fs.Int("workers", 0, "per-request batch worker-pool size (0 = GOMAXPROCS)")
	maxBody := fs.Int64("max-body", 32<<20, "request body cap in bytes (413 beyond)")
	maxPixels := fs.Int("max-pixels", 1<<24, "declared image dimension cap in pixels")
	maxBatch := fs.Int("max-batch-items", 256, "part-count cap of one /v1/batch request")
	maxInFlight := fs.Int("max-in-flight", 16, "per-tenant concurrent request cap (429 beyond)")
	apiKeys := fs.String("api-keys", "", "comma-separated key[:limit] tenants (empty = open access)")
	profileDir := fs.String("profile-dir", "", "directory of calibration profiles (*.dnp) to serve")
	profileRef := fs.String("profile", "", "default profile (name or name@version) from -profile-dir; skips startup calibration")
	profileWatch := fs.Duration("profile-watch", 0, "poll -profile-dir at this interval and hot-reload changes (0 = off)")
	adminKey := fs.String("admin-key", "", "API key required by /admin endpoints (empty = any tenant)")
	hubOrigin := fs.String("hub-origin", "", "profile hub origin URL; missing profiles (including -profile at boot) pull from it")
	hubCache := fs.String("hub-cache", "", "hub client cache directory (default: <profile-dir>/.hub-cache)")
	hubPub := fs.String("hub-pub", "", "trusted Ed25519 public key file; require signed hub indexes and profiles")
	drain := fs.Duration("drain", 15*time.Second, "graceful-shutdown drain timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tenants, err := parseTenants(*apiKeys, *maxInFlight)
	if err != nil {
		return err
	}
	if *profileRef != "" && *profileDir == "" {
		return fmt.Errorf("-profile requires -profile-dir")
	}
	if *hubOrigin != "" {
		if *profileDir == "" {
			return fmt.Errorf("-hub-origin requires -profile-dir")
		}
		// A hub-backed fleet node may legitimately start with nothing
		// local at all — the directory only has to exist.
		if err := os.MkdirAll(*profileDir, 0o755); err != nil {
			return err
		}
	}
	opts := deepnjpeg.ServerOptions{
		MaxBodyBytes:   *maxBody,
		MaxPixels:      *maxPixels,
		BatchWorkers:   *workers,
		MaxBatchItems:  *maxBatch,
		Tenants:        tenants,
		MaxInFlight:    *maxInFlight,
		ProfileDir:     *profileDir,
		DefaultProfile: *profileRef,
		ProfileWatch:   *profileWatch,
		AdminKey:       *adminKey,
		HubOrigin:      *hubOrigin,
		HubCacheDir:    *hubCache,
	}
	if *hubPub != "" {
		if opts.HubTrustedKey, err = profilehub.ReadPublicKeyFile(*hubPub); err != nil {
			return err
		}
	}
	var codec *deepnjpeg.Codec
	startLoad := time.Now()
	if *profileRef == "" {
		// No profile: calibrate on SynthNet at boot, as before.
		cfg := deepnjpeg.CalibrateConfig{Chroma: *chroma}
		if *fastDCT {
			cfg.Transform = deepnjpeg.TransformAAN
		}
		if codec, err = synthNetCodec(cfg); err != nil {
			return err
		}
	}
	srv, err := deepnjpeg.NewServer(codec, opts)
	if err != nil {
		return err
	}
	if *profileRef != "" {
		// Report what actually resolved (a bare name picks the highest
		// version) and how fast the profile path boots compared to a
		// calibration pass.
		sp := srv.ServingProfile()
		fmt.Printf("deepn-jpeg serve: profile %s@%d (transform %s, %d-image calibration) loaded in %v — startup calibration skipped\n",
			sp.Name, sp.Version, sp.Transform, sp.SampledCount, time.Since(startLoad).Round(time.Millisecond))
	} else {
		fmt.Printf("deepn-jpeg serve: SynthNet calibration in %v (persist it with `deepn-jpeg calibrate -out` and boot with -profile to skip this)\n",
			time.Since(startLoad).Round(time.Millisecond))
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	access := "open access"
	if len(tenants) > 0 {
		access = fmt.Sprintf("%d tenant(s)", len(tenants))
	}
	fmt.Printf("deepn-jpeg serve: listening on %s (%s, batch workers=%d)\n",
		l.Addr(), access, pipeline.Workers(*workers, -1))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "deepn-jpeg serve: draining in-flight requests")
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()
	if err := srv.Serve(l); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	// Serve only returns ErrServerClosed once Shutdown has been called,
	// so the drain goroutine is active: block until it finishes draining
	// (or times out) before letting the process exit.
	signal.Stop(sig)
	return <-done
}
