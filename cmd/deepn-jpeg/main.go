// Command deepn-jpeg is the CLI front end of the DeepN-JPEG codec:
//
//	deepn-jpeg calibrate  -classes 8 -per-class 40 [-chroma] [-workers N]  # print calibrated tables
//	deepn-jpeg encode     -in img.(ppm|pgm|png|jpg) -out out.jpg
//	                      [-qf 85 | -deepn] [-subsampling 420|444] [-optimize] [-fast-dct]
//	deepn-jpeg encode     -in dir/ -out dir/ [-workers N] ...       # batch-encode a directory
//	deepn-jpeg decode     -in img.jpg -out out.(ppm|pgm|png) [-fast-dct]
//	deepn-jpeg decode     -in dir/ -out dir/ [-format png] [-workers N]  # batch-decode a directory
//	deepn-jpeg requantize -in img.jpg -out out.jpg [-qf 60 | -deepn]     # alias: transcode
//	deepn-jpeg requantize -in dir/ -out dir/ [-workers N] ...      # batch-requantize a directory
//	deepn-jpeg inspect    -in img.jpg                               # tables + metadata
//	deepn-jpeg serve      -addr :8080 [-api-keys k1:4,k2] [-workers N]   # HTTP codec service
//
// Calibration runs on the built-in SynthNet generator so the tool works
// without external data; encode -deepn calibrates on the fly the same way.
// When -in names a directory, encode, decode and requantize process every
// supported image in it onto -out (a directory) through the concurrent
// batch pipeline; -workers sizes the pool (0 = GOMAXPROCS). -fast-dct
// switches the block transform to the AAN fast engine: encoded streams
// are byte-identical to the naive engine, just produced faster.
//
// serve exposes the codec over HTTP (POST /v1/encode, /v1/decode,
// /v1/requantize, multipart /v1/batch, GET /healthz, /metrics) with
// per-tenant concurrency limits; see the README for endpoint details and
// curl examples.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"image/png"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	deepnjpeg "repro"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/imgutil"
	"repro/internal/jpegcodec"
	"repro/internal/pipeline"
	"repro/internal/qtable"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "calibrate":
		err = runCalibrate(os.Args[2:])
	case "encode":
		err = runEncode(os.Args[2:])
	case "decode":
		err = runDecode(os.Args[2:])
	case "requantize", "transcode":
		err = runRequantize(os.Args[2:])
	case "inspect":
		err = runInspect(os.Args[2:])
	case "serve":
		err = runServe(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "deepn-jpeg:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: deepn-jpeg <calibrate|encode|decode|requantize|inspect|serve> [flags]")
}

// runRequantize re-targets existing JPEGs in the coefficient domain — no
// second IDCT/DCT generation loss — either to a plain QF table or to a
// DeepN-JPEG table calibrated on SynthNet. (Also reachable as the legacy
// "transcode" subcommand.) A directory input batch-requantizes through
// the concurrent pipeline.
func runRequantize(args []string) error {
	fs := flag.NewFlagSet("requantize", flag.ExitOnError)
	in := fs.String("in", "", "input JPEG or directory")
	out := fs.String("out", "", "output JPEG or directory")
	qf := fs.Int("qf", 60, "target quality factor (standard tables)")
	deepn := fs.Bool("deepn", false, "retarget to a DeepN-JPEG table calibrated on SynthNet")
	optimize := fs.Bool("optimize", true, "optimized Huffman tables")
	workers := fs.Int("workers", 0, "worker-pool size for directory requantization (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("requantize needs -in and -out")
	}
	// Both table choices go through the public requantize API — the same
	// code path (and pooled decoder scratch) the HTTP server dispatches
	// to — so the CLI only decides which tables and does the file IO.
	ropts := deepnjpeg.RequantizeOptions{OptimizeHuffman: *optimize}
	var requant func(src []byte) ([]byte, error)
	if *deepn {
		codec, err := synthNetCodec(deepnjpeg.CalibrateConfig{})
		if err != nil {
			return err
		}
		requant = func(src []byte) ([]byte, error) { return codec.Requantize(src, ropts) }
	} else {
		target := *qf
		requant = func(src []byte) ([]byte, error) { return deepnjpeg.RequantizeJPEG(src, target, ropts) }
	}
	if st, err := os.Stat(*in); err == nil && st.IsDir() {
		return requantizeDir(*in, *out, *workers, requant)
	}
	src, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	n, err := requantizeStream(src, *out, requant)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d → %d bytes (%.2f×), coefficient-domain requantization\n",
		*out, len(src), n, float64(len(src))/float64(n))
	return nil
}

// synthNetCodec calibrates a codec on the built-in SynthNet generator,
// the stand-in dataset that keeps the tool usable without external data.
func synthNetCodec(cfg deepnjpeg.CalibrateConfig) (*deepnjpeg.Codec, error) {
	train, _, err := dataset.Generate(dataset.Quick())
	if err != nil {
		return nil, err
	}
	return deepnjpeg.Calibrate(train.Images, train.Labels, cfg)
}

// requantizeStream requantizes one in-memory JPEG onto outPath and
// returns the output size.
func requantizeStream(src []byte, outPath string, requant func([]byte) ([]byte, error)) (int, error) {
	out, err := requant(src)
	if err != nil {
		return 0, err
	}
	if err := os.WriteFile(outPath, out, 0o644); err != nil {
		return 0, err
	}
	return len(out), nil
}

// requantizeDir batch-requantizes every JPEG in inDir onto outDir through
// the concurrent pipeline, with the same output-collision detection and
// partial-failure reporting as encodeDir.
func requantizeDir(inDir, outDir string, workers int, requant func([]byte) ([]byte, error)) error {
	inputs, err := listInputs(inDir, ".jpg", ".jpeg")
	if err != nil {
		return err
	}
	if len(inputs) == 0 {
		return fmt.Errorf("no JPEGs (jpg/jpeg) in %s", inDir)
	}
	if err := checkOutputCollisions(inputs, ".jpg"); err != nil {
		return err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	var inBytes, outBytes, okCount atomic.Int64
	start := time.Now()
	err = pipeline.Run(context.Background(), len(inputs), workers, func(_ context.Context, i int) error {
		src, err := os.ReadFile(filepath.Join(inDir, inputs[i]))
		if err != nil {
			return err
		}
		name := strings.TrimSuffix(inputs[i], filepath.Ext(inputs[i])) + ".jpg"
		n, err := requantizeStream(src, filepath.Join(outDir, name), requant)
		if err != nil {
			return err
		}
		inBytes.Add(int64(len(src)))
		outBytes.Add(int64(n))
		okCount.Add(1)
		return nil
	})
	elapsed := time.Since(start)
	ok := okCount.Load()
	fmt.Printf("%s: requantized %d/%d JPEGs from %s (workers=%d) in %v (%.1f MB → %.1f MB, %.1f images/s)\n",
		outDir, ok, len(inputs), inDir, pipeline.Workers(workers, len(inputs)), elapsed.Round(time.Millisecond),
		float64(inBytes.Load())/1e6, float64(outBytes.Load())/1e6,
		float64(ok)/elapsed.Seconds())
	return err
}

// listInputs returns the sorted base names in dir whose extension matches
// one of exts (case-insensitive).
func listInputs(dir string, exts ...string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var inputs []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		ext := strings.ToLower(filepath.Ext(e.Name()))
		for _, want := range exts {
			if ext == want {
				inputs = append(inputs, e.Name())
				break
			}
		}
	}
	sort.Strings(inputs)
	return inputs, nil
}

// checkOutputCollisions rejects batches in which two distinct inputs map
// to the same output name: a collision would make one worker's output
// clobber another's (or, when -in and -out are the same directory,
// overwrite an input another worker has yet to read).
func checkOutputCollisions(inputs []string, outExt string) error {
	outNames := make(map[string]string, len(inputs))
	for _, in := range inputs {
		name := strings.TrimSuffix(in, filepath.Ext(in)) + outExt
		if prev, dup := outNames[name]; dup {
			return fmt.Errorf("inputs %s and %s both map to output %s", prev, in, name)
		}
		outNames[name] = in
	}
	return nil
}

func runCalibrate(args []string) error {
	fs := flag.NewFlagSet("calibrate", flag.ExitOnError)
	classes := fs.Int("classes", 8, "SynthNet classes")
	perClass := fs.Int("per-class", 40, "images per class")
	size := fs.Int("size", 32, "image size")
	seed := fs.Int64("seed", 1, "generator seed")
	chroma := fs.Bool("chroma", false, "also calibrate a chroma table")
	workers := fs.Int("workers", 1, "statistics-pass worker count (1 = sequential)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := dataset.Config{Classes: *classes, Size: *size, TrainPerClass: *perClass, TestPerClass: 1, Seed: *seed, NoiseStd: 5, Color: *chroma}
	train, _, err := dataset.Generate(cfg)
	if err != nil {
		return err
	}
	fw, err := core.Calibrate(train, core.CalibrateOptions{Chroma: *chroma, Workers: *workers})
	if err != nil {
		return err
	}
	fmt.Printf("calibrated on %d images (%d classes)\n", fw.SampledCount, *classes)
	fmt.Printf("PLM: a=%.1f b=%.1f c=%.1f k1=%.3f k2=%.3f k3=%.3f T1=%.2f T2=%.2f Qmin=%.0f\n",
		fw.Params.A, fw.Params.B, fw.Params.C, fw.Params.K1, fw.Params.K2, fw.Params.K3,
		fw.Params.T1, fw.Params.T2, fw.Params.QMin)
	fmt.Println("\nluminance table:")
	fmt.Print(fw.LumaTable.String())
	if *chroma {
		fmt.Println("\nchrominance table:")
		fmt.Print(fw.ChromaTable.String())
	}
	return nil
}

// loadImage reads PPM/PGM/PNG/JPEG by extension.
func loadImage(path string) (*imgutil.RGB, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	switch strings.ToLower(filepath.Ext(path)) {
	case ".ppm":
		return imgutil.ReadPPM(bytes.NewReader(data))
	case ".pgm":
		g, err := imgutil.ReadPGM(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		return g.ToRGB(), nil
	case ".png":
		img, err := png.Decode(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		return imgutil.FromImage(img), nil
	case ".jpg", ".jpeg":
		return deepnjpeg.Decode(data)
	default:
		return nil, fmt.Errorf("unsupported input format %q", filepath.Ext(path))
	}
}

// saveImage writes PPM/PGM/PNG by extension.
func saveImage(path string, im *imgutil.RGB) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch strings.ToLower(filepath.Ext(path)) {
	case ".ppm":
		return imgutil.WritePPM(f, im)
	case ".pgm":
		return imgutil.WritePGM(f, im.ToGray())
	case ".png":
		return png.Encode(f, im.ToImage())
	default:
		return fmt.Errorf("unsupported output format %q", filepath.Ext(path))
	}
}

func runEncode(args []string) error {
	fs := flag.NewFlagSet("encode", flag.ExitOnError)
	in := fs.String("in", "", "input image (ppm/pgm/png/jpg)")
	out := fs.String("out", "", "output JPEG path")
	qf := fs.Int("qf", 85, "JPEG quality factor (standard tables)")
	deepn := fs.Bool("deepn", false, "use a DeepN-JPEG table calibrated on SynthNet")
	sub := fs.String("subsampling", "420", "chroma subsampling: 420 or 444")
	optimize := fs.Bool("optimize", false, "optimized Huffman tables")
	workers := fs.Int("workers", 0, "worker-pool size for directory encoding (0 = GOMAXPROCS)")
	fastDCT := fs.Bool("fast-dct", false, "use the AAN fast DCT engine (identical output, faster)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("encode needs -in and -out")
	}
	opts := jpegcodec.Options{OptimizeHuffman: *optimize}
	if *fastDCT {
		opts.Transform = deepnjpeg.TransformAAN
	}
	var err error
	switch *sub {
	case "420":
		opts.Subsampling = jpegcodec.Sub420
	case "444":
		opts.Subsampling = jpegcodec.Sub444
	default:
		return fmt.Errorf("bad -subsampling %q", *sub)
	}
	if *deepn {
		cfg := dataset.Quick()
		train, _, err := dataset.Generate(cfg)
		if err != nil {
			return err
		}
		fw, err := core.Calibrate(train, core.CalibrateOptions{})
		if err != nil {
			return err
		}
		opts.LumaTable = fw.LumaTable
		opts.ChromaTable = fw.ChromaTable
	} else {
		if opts.LumaTable, err = qtable.Scale(qtable.StdLuminance, *qf); err != nil {
			return err
		}
		if opts.ChromaTable, err = qtable.Scale(qtable.StdChrominance, *qf); err != nil {
			return err
		}
	}
	if st, err := os.Stat(*in); err == nil && st.IsDir() {
		return encodeDir(*in, *out, *workers, opts)
	}
	img, err := loadImage(*in)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := jpegcodec.EncodeRGB(&buf, img, &opts); err != nil {
		return err
	}
	if err := os.WriteFile(*out, buf.Bytes(), 0o644); err != nil {
		return err
	}
	back, err := deepnjpeg.Decode(buf.Bytes())
	if err != nil {
		return err
	}
	psnr, err := deepnjpeg.PSNR(img, back)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %dx%d → %d bytes (%.2f bpp), PSNR %.2f dB\n",
		*out, img.W, img.H, buf.Len(), 8*float64(buf.Len())/float64(img.W*img.H), psnr)
	return nil
}

// encodeDir batch-encodes every supported image in inDir onto outDir
// through the concurrent pipeline. Output files keep their base name
// with a .jpg extension; failures are reported per item at the end
// without aborting the rest of the batch.
func encodeDir(inDir, outDir string, workers int, opts jpegcodec.Options) error {
	inputs, err := listInputs(inDir, ".ppm", ".pgm", ".png", ".jpg", ".jpeg")
	if err != nil {
		return err
	}
	if len(inputs) == 0 {
		return fmt.Errorf("no encodable images (ppm/pgm/png/jpg) in %s", inDir)
	}
	if err := checkOutputCollisions(inputs, ".jpg"); err != nil {
		return err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	var inBytes, outBytes, okCount atomic.Int64
	start := time.Now()
	err = pipeline.Run(context.Background(), len(inputs), workers, func(_ context.Context, i int) error {
		img, err := loadImage(filepath.Join(inDir, inputs[i]))
		if err != nil {
			return err
		}
		var buf bytes.Buffer
		o := opts
		if err := jpegcodec.EncodeRGB(&buf, img, &o); err != nil {
			return err
		}
		name := strings.TrimSuffix(inputs[i], filepath.Ext(inputs[i])) + ".jpg"
		if err := os.WriteFile(filepath.Join(outDir, name), buf.Bytes(), 0o644); err != nil {
			return err
		}
		inBytes.Add(int64(3 * img.W * img.H))
		outBytes.Add(int64(buf.Len()))
		okCount.Add(1)
		return nil
	})
	elapsed := time.Since(start)
	ok := okCount.Load()
	fmt.Printf("%s: encoded %d/%d images from %s (workers=%d) in %v (%.1f MB raw → %.1f MB jpeg, %.1f images/s)\n",
		outDir, ok, len(inputs), inDir, pipeline.Workers(workers, len(inputs)), elapsed.Round(time.Millisecond),
		float64(inBytes.Load())/1e6, float64(outBytes.Load())/1e6,
		float64(ok)/elapsed.Seconds())
	return err
}

func runDecode(args []string) error {
	fs := flag.NewFlagSet("decode", flag.ExitOnError)
	in := fs.String("in", "", "input JPEG or directory")
	out := fs.String("out", "", "output image (ppm/pgm/png) or directory")
	format := fs.String("format", "png", "output format for directory decoding: png, ppm or pgm")
	workers := fs.Int("workers", 0, "worker-pool size for directory decoding (0 = GOMAXPROCS)")
	fastDCT := fs.Bool("fast-dct", false, "use the AAN fast IDCT engine for reconstruction")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("decode needs -in and -out")
	}
	opts := deepnjpeg.DecodeOptions{}
	if *fastDCT {
		opts.Transform = deepnjpeg.TransformAAN
	}
	if st, err := os.Stat(*in); err == nil && st.IsDir() {
		return decodeDir(*in, *out, *format, *workers, opts)
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	img, err := deepnjpeg.DecodeInto(nil, data, opts)
	if err != nil {
		return err
	}
	if err := saveImage(*out, img); err != nil {
		return err
	}
	fmt.Printf("%s: %dx%d\n", *out, img.W, img.H)
	return nil
}

// decodeDir batch-decodes every JPEG in inDir onto outDir through the
// concurrent pipeline, with the same output-collision detection and
// partial-failure reporting as encodeDir.
func decodeDir(inDir, outDir, format string, workers int, opts deepnjpeg.DecodeOptions) error {
	switch format {
	case "png", "ppm", "pgm":
	default:
		return fmt.Errorf("bad -format %q (want png, ppm or pgm)", format)
	}
	outExt := "." + format
	inputs, err := listInputs(inDir, ".jpg", ".jpeg")
	if err != nil {
		return err
	}
	if len(inputs) == 0 {
		return fmt.Errorf("no JPEGs (jpg/jpeg) in %s", inDir)
	}
	if err := checkOutputCollisions(inputs, outExt); err != nil {
		return err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	var pixels, okCount atomic.Int64
	start := time.Now()
	err = pipeline.Run(context.Background(), len(inputs), workers, func(_ context.Context, i int) error {
		data, err := os.ReadFile(filepath.Join(inDir, inputs[i]))
		if err != nil {
			return err
		}
		img, err := deepnjpeg.DecodeInto(nil, data, opts)
		if err != nil {
			return err
		}
		name := strings.TrimSuffix(inputs[i], filepath.Ext(inputs[i])) + outExt
		if err := saveImage(filepath.Join(outDir, name), img); err != nil {
			return err
		}
		pixels.Add(int64(img.W * img.H))
		okCount.Add(1)
		return nil
	})
	elapsed := time.Since(start)
	ok := okCount.Load()
	fmt.Printf("%s: decoded %d/%d JPEGs from %s (workers=%d) in %v (%.1f MP, %.1f images/s)\n",
		outDir, ok, len(inputs), inDir, pipeline.Workers(workers, len(inputs)), elapsed.Round(time.Millisecond),
		float64(pixels.Load())/1e6, float64(ok)/elapsed.Seconds())
	return err
}

func runInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	in := fs.String("in", "", "input JPEG")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("inspect needs -in")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	dec, err := jpegcodec.Decode(f)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %dx%d, %d component(s), %v", *in, dec.W, dec.H, dec.Components, dec.Sampling)
	if dec.RestartInterval > 0 {
		fmt.Printf(", restart interval %d", dec.RestartInterval)
	}
	fmt.Println()
	for id, tbl := range dec.QuantTables {
		fmt.Printf("\nquantization table %d (mean step %.1f):\n%s", id, tbl.Mean(), tbl.String())
	}
	return nil
}

// parseTenants parses the -api-keys flag: comma-separated key[:limit]
// entries, e.g. "edge-fleet:8,dashboard:2,backfill".
func parseTenants(spec string, defaultLimit int) (map[string]deepnjpeg.TenantLimits, error) {
	if spec == "" {
		return nil, nil
	}
	tenants := make(map[string]deepnjpeg.TenantLimits)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		key, limitStr, hasLimit := strings.Cut(entry, ":")
		if key == "" {
			return nil, fmt.Errorf("empty API key in -api-keys entry %q", entry)
		}
		limit := defaultLimit
		if hasLimit {
			n, err := strconv.Atoi(limitStr)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("bad in-flight limit in -api-keys entry %q", entry)
			}
			limit = n
		}
		if _, dup := tenants[key]; dup {
			return nil, fmt.Errorf("duplicate API key %q in -api-keys", key)
		}
		tenants[key] = deepnjpeg.TenantLimits{MaxInFlight: limit}
	}
	return tenants, nil
}

// runServe calibrates a codec on SynthNet and serves it over HTTP until
// SIGINT/SIGTERM, then drains in-flight requests before exiting.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	chroma := fs.Bool("chroma", false, "also calibrate a chroma table")
	fastDCT := fs.Bool("fast-dct", false, "use the AAN fast DCT engine")
	workers := fs.Int("workers", 0, "per-request batch worker-pool size (0 = GOMAXPROCS)")
	maxBody := fs.Int64("max-body", 32<<20, "request body cap in bytes (413 beyond)")
	maxPixels := fs.Int("max-pixels", 1<<24, "declared image dimension cap in pixels")
	maxBatch := fs.Int("max-batch-items", 256, "part-count cap of one /v1/batch request")
	maxInFlight := fs.Int("max-in-flight", 16, "per-tenant concurrent request cap (429 beyond)")
	apiKeys := fs.String("api-keys", "", "comma-separated key[:limit] tenants (empty = open access)")
	drain := fs.Duration("drain", 15*time.Second, "graceful-shutdown drain timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tenants, err := parseTenants(*apiKeys, *maxInFlight)
	if err != nil {
		return err
	}
	cfg := deepnjpeg.CalibrateConfig{Chroma: *chroma}
	if *fastDCT {
		cfg.Transform = deepnjpeg.TransformAAN
	}
	codec, err := synthNetCodec(cfg)
	if err != nil {
		return err
	}
	srv, err := deepnjpeg.NewServer(codec, deepnjpeg.ServerOptions{
		MaxBodyBytes:  *maxBody,
		MaxPixels:     *maxPixels,
		BatchWorkers:  *workers,
		MaxBatchItems: *maxBatch,
		Tenants:       tenants,
		MaxInFlight:   *maxInFlight,
	})
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	access := "open access"
	if len(tenants) > 0 {
		access = fmt.Sprintf("%d tenant(s)", len(tenants))
	}
	fmt.Printf("deepn-jpeg serve: listening on %s (%s, batch workers=%d)\n",
		l.Addr(), access, pipeline.Workers(*workers, -1))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "deepn-jpeg serve: draining in-flight requests")
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()
	if err := srv.Serve(l); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	// Serve only returns ErrServerClosed once Shutdown has been called,
	// so the drain goroutine is active: block until it finishes draining
	// (or times out) before letting the process exit.
	signal.Stop(sig)
	return <-done
}
