// Hub-facing subcommands: `deepn-jpeg hub serve|keygen` runs the origin
// side of profile distribution, and the profiles push/pull/sign/diff/gc
// verbs cover the lifecycle around it — publish a calibration, fetch it
// on a fleet node, sign and verify artifacts offline, compare two
// calibrations, and bound local stores.
package main

import (
	"bytes"
	"context"
	"crypto/ed25519"
	"encoding/base64"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/profile"
	"repro/internal/profilehub"
)

func runHub(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: deepn-jpeg hub <serve|keygen> [flags]")
	}
	switch sub, rest := args[0], args[1:]; sub {
	case "serve":
		return runHubServe(rest)
	case "keygen":
		return runHubKeygen(rest)
	default:
		return fmt.Errorf("unknown hub subcommand %q (want serve or keygen)", sub)
	}
}

// runHubServe publishes a profile directory over the hub wire protocol
// until SIGINT/SIGTERM. One process with a directory of .dnp files is a
// complete origin: signed index, content-addressed blobs, push intake.
func runHubServe(args []string) error {
	fs := flag.NewFlagSet("hub serve", flag.ExitOnError)
	addr := fs.String("addr", ":9701", "listen address")
	dir := fs.String("dir", "", "profile directory to publish")
	keyFile := fs.String("key", "", "Ed25519 private key file; signs the index and unsigned profiles")
	pushKey := fs.String("push-key", "", "require this X-Hub-Push-Key on POST /hub/v1/push (empty = open push)")
	drain := fs.Duration("drain", 5*time.Second, "graceful-shutdown drain timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("hub serve needs -dir")
	}
	opts := profilehub.OriginOptions{Dir: *dir, PushKey: *pushKey}
	signing := "unsigned"
	if *keyFile != "" {
		priv, err := profilehub.ReadPrivateKeyFile(*keyFile)
		if err != nil {
			return err
		}
		opts.SigningKey = priv
		signing = "signing as key " + profile.KeyID(priv.Public().(ed25519.PublicKey))
	}
	origin, err := profilehub.NewOrigin(opts)
	if err != nil {
		return err
	}
	ix, err := origin.Index()
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("deepn-jpeg hub serve: publishing %d profile(s) from %s on %s (%s)\n",
		len(ix.Profiles), *dir, l.Addr(), signing)
	srv := &http.Server{Handler: origin, ReadHeaderTimeout: 10 * time.Second}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		<-sig
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()
	if err := srv.Serve(l); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	signal.Stop(sig)
	return <-done
}

// runHubKeygen writes a fresh Ed25519 key pair: <out> holds the private
// seed (0600) and <out>.pub the public key the fleet distributes.
func runHubKeygen(args []string) error {
	fs := flag.NewFlagSet("hub keygen", flag.ExitOnError)
	out := fs.String("out", "hub-signing.key", "private key output path; the public key lands at <out>.pub")
	if err := fs.Parse(args); err != nil {
		return err
	}
	pub, priv, err := profilehub.GenerateKey()
	if err != nil {
		return err
	}
	if err := profilehub.WritePrivateKeyFile(*out, priv); err != nil {
		return err
	}
	if err := profilehub.WritePublicKeyFile(*out+".pub", pub); err != nil {
		return err
	}
	fmt.Printf("key %s written: private %s (keep secret), public %s\n", profile.KeyID(pub), *out, *out+".pub")
	return nil
}

// runProfilesPush publishes one profile file to a hub origin, optionally
// signing it locally first so the origin never needs the private key.
func runProfilesPush(args []string) error {
	fs := flag.NewFlagSet("profiles push", flag.ExitOnError)
	in := fs.String("in", "", "profile file (.dnp) to publish")
	origin := fs.String("origin", "", "hub origin base URL")
	pushKey := fs.String("push-key", "", "X-Hub-Push-Key credential")
	keyFile := fs.String("key", "", "Ed25519 private key file; attaches an offline signature to the push")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *origin == "" {
		return fmt.Errorf("profiles push needs -in and -origin")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	p, err := profile.Decode(data)
	if err != nil {
		return fmt.Errorf("%s: %w", *in, err)
	}
	req, err := http.NewRequest(http.MethodPost, *origin+profilehub.PushPath, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if *pushKey != "" {
		req.Header.Set("X-Hub-Push-Key", *pushKey)
	}
	if *keyFile != "" {
		priv, err := profilehub.ReadPrivateKeyFile(*keyFile)
		if err != nil {
			return err
		}
		rec := profile.Sign(priv, p.Ref(), data)
		req.Header.Set("X-Hub-Sig", base64.StdEncoding.EncodeToString(rec.Sig))
		req.Header.Set("X-Hub-Sig-Key-Id", rec.KeyID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	switch resp.StatusCode {
	case http.StatusCreated:
		fmt.Printf("pushed %s (%d bytes, sha256 %s) to %s\n", p.Ref(), len(data), profile.BlobSHA256(data), *origin)
	case http.StatusOK:
		fmt.Printf("%s already published at %s (identical bytes)\n", p.Ref(), *origin)
	default:
		return fmt.Errorf("push rejected: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	return nil
}

// runProfilesPull fetches one profile from a hub origin through the
// verified local cache and writes it under its canonical file name.
func runProfilesPull(args []string) error {
	fs := flag.NewFlagSet("profiles pull", flag.ExitOnError)
	ref := fs.String("ref", "", "profile to pull: name or name@version")
	origin := fs.String("origin", "", "hub origin base URL")
	outDir := fs.String("dir", ".", "directory to write the pulled profile into")
	cacheDir := fs.String("cache", "", "hub cache directory (default: user cache dir)")
	pubFile := fs.String("pub", "", "trusted Ed25519 public key file; require valid signatures")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *ref == "" || *origin == "" {
		return fmt.Errorf("profiles pull needs -ref and -origin")
	}
	name, version, _, err := profile.ParseRef(*ref)
	if err != nil {
		return err
	}
	copts := profilehub.ClientOptions{Origin: *origin, CacheDir: *cacheDir}
	if copts.CacheDir == "" {
		copts.CacheDir = defaultHubCacheDir()
	}
	if *pubFile != "" {
		if copts.TrustedKey, err = profilehub.ReadPublicKeyFile(*pubFile); err != nil {
			return err
		}
	}
	client, err := profilehub.NewClient(copts)
	if err != nil {
		return err
	}
	data, entry, err := client.Pull(context.Background(), name, version)
	if err != nil {
		return err
	}
	path := filepath.Join(*outDir, entry.Ref()+profile.Ext)
	if err := profile.WriteFileAtomic(path, data); err != nil {
		return err
	}
	st := client.Stats()
	how := "fetched from origin"
	if st.BlobCacheHits > 0 {
		how = "served from local cache"
	}
	fmt.Printf("pulled %s (%d bytes, sha256 %s, %s) → %s\n", entry.Ref(), len(data), entry.SHA256, how, path)
	return nil
}

// defaultHubCacheDir places the CLI's pull cache under the per-user
// cache root.
func defaultHubCacheDir() string {
	if d, err := os.UserCacheDir(); err == nil {
		return filepath.Join(d, "deepn-jpeg", "hub")
	}
	return filepath.Join(os.TempDir(), "deepn-jpeg-hub")
}

// runProfilesSign writes (or, with -pub, verifies) the detached .sig
// sidecar of a profile file.
func runProfilesSign(args []string) error {
	fs := flag.NewFlagSet("profiles sign", flag.ExitOnError)
	in := fs.String("in", "", "profile file (.dnp)")
	keyFile := fs.String("key", "", "Ed25519 private key file (sign mode)")
	pubFile := fs.String("pub", "", "Ed25519 public key file (verify mode)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("profiles sign needs -in")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	p, err := profile.Decode(data)
	if err != nil {
		return fmt.Errorf("%s: %w", *in, err)
	}
	sigPath := *in + profile.SigExt
	switch {
	case *keyFile != "":
		priv, err := profilehub.ReadPrivateKeyFile(*keyFile)
		if err != nil {
			return err
		}
		rec := profile.Sign(priv, p.Ref(), data)
		if err := rec.WriteFile(sigPath); err != nil {
			return err
		}
		fmt.Printf("signed %s as key %s → %s\n", p.Ref(), rec.KeyID, sigPath)
		return nil
	case *pubFile != "":
		pub, err := profilehub.ReadPublicKeyFile(*pubFile)
		if err != nil {
			return err
		}
		rec, err := profile.ReadSignature(sigPath)
		if err != nil {
			return err
		}
		if err := rec.Verify(pub, p.Ref(), data); err != nil {
			return err
		}
		fmt.Printf("%s: signature by key %s verifies for %s\n", sigPath, rec.KeyID, p.Ref())
		return nil
	default:
		return fmt.Errorf("profiles sign needs -key (to sign) or -pub (to verify)")
	}
}

// runProfilesDiff compares two profiles' calibration content and exits
// non-zero when they differ, so scripts can gate rollouts on it.
func runProfilesDiff(args []string) error {
	fs := flag.NewFlagSet("profiles diff", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: deepn-jpeg profiles diff <a.dnp> <b.dnp>")
	}
	aPath, bPath := fs.Arg(0), fs.Arg(1)
	a, err := profile.Read(aPath)
	if err != nil {
		return err
	}
	b, err := profile.Read(bPath)
	if err != nil {
		return err
	}
	d := profile.Compare(a, b)
	if d.Identical() {
		fmt.Printf("%s (%s) and %s (%s): identical calibration content\n", aPath, a.Ref(), bPath, b.Ref())
		return nil
	}
	fmt.Print(d.String())
	return fmt.Errorf("%s and %s differ", aPath, bPath)
}

// runProfilesGC applies a retention policy to a profile directory.
func runProfilesGC(args []string) error {
	fs := flag.NewFlagSet("profiles gc", flag.ExitOnError)
	dir := fs.String("dir", "", "profile directory to collect")
	maxBytes := fs.Int64("max-bytes", 0, "byte budget for retained profiles (0 = unbounded)")
	maxVersions := fs.Int("max-versions", 0, "versions to keep per name (0 = unbounded)")
	dryRun := fs.Bool("dry-run", false, "report what would be removed without deleting")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("profiles gc needs -dir")
	}
	if *maxBytes == 0 && *maxVersions == 0 {
		return fmt.Errorf("profiles gc needs -max-bytes and/or -max-versions")
	}
	res, err := profile.GCDir(*dir, profile.GCPolicy{MaxBytes: *maxBytes, MaxVersionsPerName: *maxVersions}, *dryRun)
	if err != nil {
		return err
	}
	verb := "removed"
	if *dryRun {
		verb = "would remove"
	}
	for _, path := range res.Removed {
		fmt.Printf("%s %s\n", verb, path)
	}
	fmt.Printf("%s: %d file(s) %s, %d bytes retained\n", *dir, len(res.Removed), verb, res.RetainedBytes)
	if res.OverBudget {
		return fmt.Errorf("still over -max-bytes: every name's newest version is retained unconditionally")
	}
	return nil
}
