// Command deepn-experiments regenerates the figures of the DeepN-JPEG
// paper's evaluation on the SynthNet substrate:
//
//	deepn-experiments -fig 7                 # one figure, quick profile
//	deepn-experiments -fig all -profile paper
//
// Available figures: 2a 2b 3 5 6 7 8 9 latency. The quick profile runs
// each figure in seconds; the paper profile retrains a model per scheme
// and takes minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to reproduce (2a 2b 3 5 6 7 8 9 latency all)")
	profile := flag.String("profile", "quick", "workload profile: quick or paper")
	flag.Parse()

	var p experiments.Profile
	switch *profile {
	case "quick":
		p = experiments.Quick()
	case "paper":
		p = experiments.PaperProfile()
	default:
		fmt.Fprintf(os.Stderr, "deepn-experiments: unknown profile %q\n", *profile)
		os.Exit(2)
	}

	start := time.Now()
	fmt.Printf("profile %s: %d classes × %d train / %d test images (%dx%d, color=%v), model %s\n",
		p.Name, p.Data.Classes, p.Data.TrainPerClass, p.Data.TestPerClass,
		p.Data.Size, p.Data.Size, p.Data.Color, p.Model)
	ctx, err := experiments.NewContext(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "deepn-experiments:", err)
		os.Exit(1)
	}
	fmt.Printf("calibrated DeepN-JPEG on %d images (T1=%.2f T2=%.2f, δmax=%.1f)\n\n",
		ctx.Framework.SampledCount, ctx.Framework.Params.T1, ctx.Framework.Params.T2,
		ctx.Framework.Stats.MaxStd())

	figures := []string{*fig}
	if *fig == "all" {
		figures = experiments.Figures()
	}
	for _, f := range figures {
		t0 := time.Now()
		tbl, err := experiments.Run(f, ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "deepn-experiments: figure %s: %v\n", f, err)
			os.Exit(1)
		}
		if err := tbl.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "deepn-experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("(%.1fs)\n\n", time.Since(t0).Seconds())
	}
	fmt.Printf("total %.1fs\n", time.Since(start).Seconds())
}
