package deepnjpeg

// Public-API smoke test for the HTTP server wrapper: the acceptance bar
// is that a stream served over the wire is byte-identical to what the
// same Codec produces in-process. The full endpoint/error/load matrix
// lives in internal/server.

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/imgutil"
)

func TestServerEncodeMatchesCodecEncode(t *testing.T) {
	codec, images := batchCodec(t)
	srv, err := NewServer(codec, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	img := images[0]
	var ppm bytes.Buffer
	if err := imgutil.WritePPM(&ppm, img); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/encode", "image/x-portable-pixmap", &ppm)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	want, err := codec.Encode(img)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("served stream (%d bytes) is not byte-identical to Codec.Encode (%d bytes)",
			len(got), len(want))
	}
	// And the served requantize path must match Codec.Requantize.
	resp, err = http.Post(ts.URL+"/v1/requantize", "image/jpeg", bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	gotRq, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("requantize status %d: %s", resp.StatusCode, gotRq)
	}
	wantRq, err := codec.Requantize(want, RequantizeOptions{OptimizeHuffman: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotRq, wantRq) {
		t.Fatal("served requantize differs from Codec.Requantize")
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}
