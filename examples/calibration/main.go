// Calibration walkthrough: runs each stage of the DeepN-JPEG design flow
// (Fig. 4 of the paper) separately and prints what it produces — per-band
// coefficient statistics, the magnitude-based LF/MF/HF segmentation with
// its T1/T2 thresholds, the fitted piece-wise linear mapping, and the
// final quantization table next to the Annex-K default.
//
//	go run ./examples/calibration
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/dataset"
	"repro/internal/freqstat"
	"repro/internal/plm"
	"repro/internal/qtable"
)

func main() {
	cfg := dataset.Quick()
	train, _, err := dataset.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Stage 1 (Algorithm 1): stratified sampling + block DCT statistics.
	idx := freqstat.StratifiedIndices(train.Labels, 2) // every 2nd image per class
	acc := freqstat.NewAccumulator()
	for _, i := range idx {
		acc.AddRGBLuma(train.Images[i])
	}
	stats, err := acc.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sampled %d of %d images → %d blocks analyzed\n\n", len(idx), train.Len(), acc.Blocks())

	// Top bands by δ: the importance ranking that replaces "low frequency
	// first".
	type band struct {
		n     int
		sigma float64
	}
	var bands []band
	for n := 0; n < 64; n++ {
		bands = append(bands, band{n, stats.Std[n]})
	}
	sort.Slice(bands, func(a, b int) bool { return bands[a].sigma > bands[b].sigma })
	fmt.Println("ten most important bands by δ (u,v = horizontal, vertical frequency):")
	for _, b := range bands[:10] {
		fmt.Printf("  band (u=%d, v=%d)  δ = %7.2f\n", b.n%8, b.n/8, b.sigma)
	}

	// Stage 2: magnitude-based segmentation.
	seg := freqstat.SegmentByMagnitude(stats)
	fmt.Printf("\nsegmentation thresholds: T1 = %.2f (HF/MF), T2 = %.2f (MF/LF), δmax = %.2f\n",
		seg.T1, seg.T2, stats.MaxStd())

	// Stage 3: fit the piece-wise linear mapping.
	params, err := plm.Fit(plm.PaperAnchors(), seg.T1, seg.T2, stats.MaxStd())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PLM fit: a=%.1f b=%.1f c=%.1f k1=%.3f k2=%.3f k3=%.3f\n",
		params.A, params.B, params.C, params.K1, params.K2, params.K3)

	// Stage 4: the table.
	tbl, err := params.Table(stats)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDeepN-JPEG table (mean step %.1f):\n%s", tbl.Mean(), tbl.String())
	fmt.Printf("\nJPEG Annex-K luminance table (mean step %.1f):\n%s", qtable.StdLuminance.Mean(), qtable.StdLuminance.String())
	fmt.Println("\nNote how DeepN-JPEG assigns fine steps to the bands ranked above —")
	fmt.Println("wherever they fall in the spectrum — and crushes everything else.")
}
