// Edge-sensor simulation: an IoT camera produces images continuously and
// must offload them for cloud DNN inference (the paper's motivating
// scenario). This example compares the per-image and per-day uplink
// latency and radio energy of shipping Original (QF-100), JPEG QF-50 and
// DeepN-JPEG streams over 3G, LTE and Wi-Fi, plus the break-even against
// running the DNN on-device.
//
//	go run ./examples/edge-sensor
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/nn/models"
)

func main() {
	cfg := dataset.Quick()
	cfg.Color = true
	cfg.TrainPerClass, cfg.TestPerClass = 40, 20
	train, test, err := dataset.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fw, err := core.Calibrate(train, core.CalibrateOptions{Chroma: true})
	if err != nil {
		log.Fatal(err)
	}

	schemes := []core.Scheme{
		core.SchemeOriginal(),
		core.SchemeJPEG(50),
		fw.Scheme(),
	}
	n := int64(test.Len())
	fmt.Printf("sensor batch: %d images, %dx%d RGB\n\n", n, test.Size, test.Size)
	fmt.Printf("%-12s %10s  %22s  %22s\n", "scheme", "B/image", "latency/img (3G LTE WiFi)", "mJ/img (3G LTE WiFi)")
	perImage := map[string]int64{}
	for _, s := range schemes {
		size, err := core.CompressedSize(test, s, false)
		if err != nil {
			log.Fatal(err)
		}
		b := size / n
		perImage[s.Name] = b
		fmt.Printf("%-12s %10d  %6.0f %6.0f %6.0f ms  %8.1f %6.1f %6.1f\n",
			s.Name, b,
			energy.ThreeG.TransferLatency(b).Seconds()*1000,
			energy.LTE.TransferLatency(b).Seconds()*1000,
			energy.WiFi.TransferLatency(b).Seconds()*1000,
			energy.ThreeG.TransferEnergy(b)*1000,
			energy.LTE.TransferEnergy(b)*1000,
			energy.WiFi.TransferEnergy(b)*1000,
		)
	}

	// A day of sensing at one frame per second over 3G.
	const framesPerDay = 86_400
	fmt.Printf("\n1 fps for a day over 3G:\n")
	for _, s := range schemes {
		joules := energy.ThreeG.TransferEnergy(perImage[s.Name] * framesPerDay)
		fmt.Printf("  %-12s %8.0f J (%.1f Wh)\n", s.Name, joules, joules/3600)
	}

	// Compare against on-device inference (mini-resnet10 as the edge DNN).
	m, err := models.Build("mini-resnet10", models.Config{Channels: 3, Size: test.Size, Classes: cfg.Classes, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	macs := m.MACs([]int{3, test.Size, test.Size})
	compute := energy.DefaultCompute().Energy(macs)
	fmt.Printf("\non-device inference (mini-resnet10, %.1fM MACs): %.3f mJ/frame\n", float64(macs)/1e6, compute*1000)
	deepnTransfer := energy.ThreeG.TransferEnergy(perImage["deepn-jpeg"])
	origTransfer := energy.ThreeG.TransferEnergy(perImage["original"])
	fmt.Printf("offload vs compute over 3G: original %.1f×, deepn-jpeg %.1f× the inference energy\n",
		origTransfer/compute, deepnTransfer/compute)
	fmt.Println("\nDeepN-JPEG moves the offload/compute trade-off decisively toward offloading.")
}
