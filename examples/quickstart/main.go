// Quickstart: calibrate DeepN-JPEG on a labeled image set, compress one
// image with it, and compare against standard JPEG at QF 100 and QF 50 —
// sizes, compression ratios and PSNR. Also demonstrates the AAN fast-DCT
// engine: same bytes out, roughly half the block-transform cost.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"

	deepnjpeg "repro"
	"repro/internal/dataset"
)

func main() {
	// Generate a small labeled dataset (stand-in for your own corpus).
	cfg := dataset.Quick()
	cfg.Color = true
	train, test, err := dataset.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Calibrate: frequency analysis → band ranking → quantization table.
	// Transform selects the block-transform engine; the AAN fast DCT
	// encodes identically to the naive default, just faster.
	codec, err := deepnjpeg.Calibrate(train.Images, train.Labels, deepnjpeg.CalibrateConfig{
		Chroma:    true,
		Transform: deepnjpeg.TransformAAN,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("calibrated luminance quantization table:")
	fmt.Print(codec.LumaTable().String())

	// Compress one held-out image three ways.
	img := test.Images[0]
	deepn, err := codec.Encode(img)
	if err != nil {
		log.Fatal(err)
	}
	qf100, err := deepnjpeg.EncodeJPEG(img, 100)
	if err != nil {
		log.Fatal(err)
	}
	qf50, err := deepnjpeg.EncodeJPEG(img, 50)
	if err != nil {
		log.Fatal(err)
	}

	report := func(name string, data []byte) {
		back, err := deepnjpeg.Decode(data)
		if err != nil {
			log.Fatal(err)
		}
		psnr, err := deepnjpeg.PSNR(img, back)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %6d bytes  CR %.2f×  PSNR %.1f dB\n",
			name, len(data), deepnjpeg.CompressionRatio(len(qf100), len(data)), psnr)
	}
	fmt.Printf("\nimage %dx%d, CR measured against JPEG QF=100:\n", img.W, img.H)
	report("jpeg-qf100", qf100)
	report("jpeg-qf50", qf50)
	report("deepn-jpeg", deepn)

	// The engine choice never shows in the bytes: re-calibrating with the
	// naive transform yields the exact same stream.
	naiveCodec, err := deepnjpeg.Calibrate(train.Images, train.Labels, deepnjpeg.CalibrateConfig{Chroma: true})
	if err != nil {
		log.Fatal(err)
	}
	naive, err := naiveCodec.Encode(img)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfast-DCT stream identical to naive-DCT stream: %v\n", bytes.Equal(deepn, naive))
	fmt.Println("\nDeepN-JPEG compresses hardest while preserving the DCT bands")
	fmt.Println("the dataset's discriminative features live in (see examples/robustness).")
}
