// Robustness sweep: trains a CNN on original-quality images and measures
// its accuracy when the test set is compressed by JPEG at several quality
// factors, by the paper's RM-HF and SAME-Q baselines, and by DeepN-JPEG —
// a compact version of the paper's Fig. 7 story showing accuracy versus
// compression ratio per scheme.
//
//	go run ./examples/robustness
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/nn/models"
)

func main() {
	cfg := dataset.Quick()
	train, test, err := dataset.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fw, err := core.Calibrate(train, core.CalibrateOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Train once on original-quality data.
	m, err := models.Build("minicnn", models.Config{Channels: 1, Size: cfg.Size, Classes: cfg.Classes, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training minicnn on %d original images...\n", train.Len())
	m.Train(train.Tensors(false), nn.TrainConfig{Epochs: 6, BatchSize: 32, LR: 0.04, Momentum: 0.9, Seed: 11})
	baseAcc := m.Accuracy(test.Tensors(false))
	fmt.Printf("accuracy on uncompressed test set: %.1f%%\n\n", 100*baseAcc)

	origBytes, err := core.CompressedSize(test, core.SchemeOriginal(), true)
	if err != nil {
		log.Fatal(err)
	}

	schemes := []core.Scheme{
		core.SchemeOriginal(),
		core.SchemeJPEG(80),
		core.SchemeJPEG(50),
		core.SchemeJPEG(20),
		core.SchemeRMHF(6),
		core.SchemeSameQ(8),
		fw.Scheme(),
	}
	fmt.Printf("%-12s %6s %10s %10s\n", "scheme", "CR", "accuracy", "Δ vs orig")
	for _, s := range schemes {
		res, err := core.Transcode(test, s, true)
		if err != nil {
			log.Fatal(err)
		}
		acc := m.Accuracy(res.Dataset.Tensors(false))
		cr := core.CompressionRatio(origBytes, res.TotalBytes)
		fmt.Printf("%-12s %6.2f %9.1f%% %+9.1f%%\n", s.Name, cr, 100*acc, 100*(acc-baseAcc))
	}
	fmt.Println("\nDeepN-JPEG holds accuracy at the highest compression ratio;")
	fmt.Println("HVS-oriented schemes trade accuracy away as CR grows.")
}
