// Server example: run the DeepN-JPEG codec as a multi-tenant HTTP
// service and drive it as a client — single-image encode, a multipart
// batch, coefficient-domain requantization, and the accounting
// endpoints. Everything happens in-process on a loopback port, so the
// example is self-contained; point the same client code at a
// `deepn-jpeg serve` process to use it for real.
//
//	go run ./examples/server
package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"mime"
	"mime/multipart"
	"net"
	"net/http"
	"time"

	deepnjpeg "repro"
	"repro/internal/dataset"
	"repro/internal/imgutil"
)

func main() {
	// Calibrate a codec on a stand-in dataset (use your own corpus in
	// production) and wrap it in the HTTP service with two tenants.
	cfg := dataset.Quick()
	cfg.Color = true
	train, _, err := dataset.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	codec, err := deepnjpeg.Calibrate(train.Images, train.Labels, deepnjpeg.CalibrateConfig{
		Chroma:    true,
		Transform: deepnjpeg.TransformAAN,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := deepnjpeg.NewServer(codec, deepnjpeg.ServerOptions{
		Tenants: map[string]deepnjpeg.TenantLimits{
			"edge-key":      {Name: "edge-fleet", MaxInFlight: 8},
			"dashboard-key": {Name: "dashboard", MaxInFlight: 2},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(l)
	base := "http://" + l.Addr().String()
	fmt.Printf("serving on %s\n\n", base)

	client := &http.Client{Timeout: 30 * time.Second}
	auth := func(req *http.Request) *http.Request {
		req.Header.Set("X-API-Key", "edge-key")
		return req
	}

	// 1. Single-image encode: POST raw pixels (PPM here; PNG works too),
	//    receive a DeepN-JPEG stream any JPEG decoder reads.
	img := train.Images[0]
	var ppm bytes.Buffer
	if err := imgutil.WritePPM(&ppm, img); err != nil {
		log.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPost, base+"/v1/encode", bytes.NewReader(ppm.Bytes()))
	resp, err := client.Do(auth(req))
	if err != nil {
		log.Fatal(err)
	}
	stream, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("POST /v1/encode            %s  %d px → %d bytes (calibrated tables)\n",
		resp.Status, img.W*img.H, len(stream))

	// 2. Requantize the archive copy onto harsher standard tables —
	//    coefficient domain, no second generation loss.
	req, _ = http.NewRequest(http.MethodPost, base+"/v1/requantize?quality=50", bytes.NewReader(stream))
	resp, err = client.Do(auth(req))
	if err != nil {
		log.Fatal(err)
	}
	requantized, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("POST /v1/requantize?quality=50  %s  %d → %d bytes\n",
		resp.Status, len(stream), len(requantized))

	// 3. Batch encode: one multipart request, order-preserving multipart
	//    response, items fanned across the server's worker pool.
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	const batch = 8
	for i := 0; i < batch; i++ {
		part, _ := mw.CreateFormFile("items", fmt.Sprintf("img-%d.ppm", i))
		var buf bytes.Buffer
		if err := imgutil.WritePPM(&buf, train.Images[i]); err != nil {
			log.Fatal(err)
		}
		part.Write(buf.Bytes())
	}
	mw.Close()
	req, _ = http.NewRequest(http.MethodPost, base+"/v1/batch?op=encode", &body)
	req.Header.Set("Content-Type", mw.FormDataContentType())
	resp, err = client.Do(auth(req))
	if err != nil {
		log.Fatal(err)
	}
	respBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	_, params, _ := mime.ParseMediaType(resp.Header.Get("Content-Type"))
	mr := multipart.NewReader(bytes.NewReader(respBody), params["boundary"])
	total := 0
	for {
		p, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		data, _ := io.ReadAll(p)
		total += len(data)
	}
	fmt.Printf("POST /v1/batch?op=encode   %s  %d items → %d bytes total (failed: %s)\n",
		resp.Status, batch, total, resp.Header.Get("X-Batch-Failed"))

	// 4. Accounting: /metrics exposes global and per-tenant counters.
	resp, err = client.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("\nGET /metrics\n%s\n", metrics)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("server drained and stopped")
}
