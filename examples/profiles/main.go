// Profiles example: the full lifecycle of a persistent calibration
// profile — calibrate once, save it as a named versioned artifact,
// restore it into a byte-identical codec, and boot an HTTP server from
// a profile directory with no startup calibration at all. Everything
// happens in a temp directory on a loopback port, so the example is
// self-contained.
//
//	go run ./examples/profiles
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	deepnjpeg "repro"
	"repro/internal/dataset"
)

func main() {
	// 1. Calibrate — the expensive step you want to pay exactly once.
	cfg := dataset.Quick()
	cfg.Color = true
	train, _, err := dataset.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	codec, err := deepnjpeg.Calibrate(train.Images, train.Labels, deepnjpeg.CalibrateConfig{
		Chroma:    true,
		Transform: deepnjpeg.TransformAAN,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated in %v\n", time.Since(start).Round(time.Millisecond))

	// 2. Persist it as a named, versioned artifact.
	dir, err := os.MkdirTemp("", "deepn-profiles-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "synthnet@1.dnp")
	if err := codec.SaveProfile(path, deepnjpeg.ProfileMeta{
		Name: "synthnet", Version: 1, Comment: "example calibration",
	}); err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(path)
	fmt.Printf("profile saved to %s (%d bytes)\n", path, st.Size())

	// 3. Restore — the loaded codec is byte-identical to the original.
	p, err := deepnjpeg.LoadProfile(path)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	restored, err := deepnjpeg.NewCodecFromProfile(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profile %s (transform %s) restored in %v\n", p.Ref(), p.Transform, time.Since(start))
	a, err := codec.Encode(train.Images[0])
	if err != nil {
		log.Fatal(err)
	}
	b, err := restored.Encode(train.Images[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored codec streams byte-identical: %v (%d bytes)\n", bytes.Equal(a, b), len(a))

	// 4. Serve straight from the profile directory: nil Codec, no
	// boot-time calibration — the profile is the table source, requests
	// can pick any profile in the directory with ?profile=.
	srv, err := deepnjpeg.NewServer(nil, deepnjpeg.ServerOptions{
		ProfileDir:     dir,
		DefaultProfile: "synthnet",
	})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		log.Fatal(err)
	}
	health, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("healthz: %s", health)

	// Hot reload after dropping a new profile version into the directory.
	if err := codec.SaveProfile(filepath.Join(dir, "synthnet@2.dnp"), deepnjpeg.ProfileMeta{
		Name: "synthnet", Version: 2, Comment: "recalibrated",
	}); err != nil {
		log.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/admin/profiles/reload", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	reload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("reload: %s", reload)
}
