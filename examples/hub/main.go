// Hub example: distributing calibration profiles to a serving fleet.
//
// One origin publishes a signed profile directory over HTTP; two
// servers boot with completely empty profile directories, lazily pull
// the default profile from the origin on first resolve, and serve
// byte-identical encodes. A new version pushed to the origin reaches
// both servers on their next watch tick, and killing the origin
// afterwards is a non-event — the fleet keeps serving from local files
// and the hub cache. Everything runs on loopback in temp directories.
//
//	go run ./examples/hub
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	deepnjpeg "repro"
	"repro/internal/dataset"
	"repro/internal/imgutil"
	"repro/internal/profilehub"
)

func main() {
	// 1. Calibrate once and publish the result as fleet@1 in the
	// origin's directory.
	cfg := dataset.Quick()
	cfg.Color = true
	train, _, err := dataset.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	codec, err := deepnjpeg.Calibrate(train.Images, train.Labels, deepnjpeg.CalibrateConfig{Chroma: true})
	if err != nil {
		log.Fatal(err)
	}
	originDir, err := os.MkdirTemp("", "deepn-hub-origin-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(originDir)
	if err := codec.SaveProfile(filepath.Join(originDir, "fleet@1.dnp"), deepnjpeg.ProfileMeta{
		Name: "fleet", Version: 1, Comment: "initial calibration",
	}); err != nil {
		log.Fatal(err)
	}

	// 2. Start a signed origin. In production this is
	// `deepn-jpeg hub serve -dir ... -key ...` on a box; here it is the
	// same handler on a loopback listener, with a kill switch so the
	// example can demonstrate an outage.
	pub, priv, err := profilehub.GenerateKey()
	if err != nil {
		log.Fatal(err)
	}
	origin, err := profilehub.NewOrigin(profilehub.OriginOptions{Dir: originDir, SigningKey: priv})
	if err != nil {
		log.Fatal(err)
	}
	var down atomic.Bool
	hub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			if conn, _, err := w.(http.Hijacker).Hijack(); err == nil {
				conn.Close()
			}
			return
		}
		origin.ServeHTTP(w, r)
	}))
	defer hub.Close()
	fmt.Printf("origin serving %s at %s\n", originDir, hub.URL)

	// 3. Boot a two-server fleet from EMPTY profile directories. The
	// default profile misses locally at startup, so each server pulls
	// the signed fleet@1 from the origin before it answers its first
	// request. The trust key makes an unsigned or tampered origin a
	// boot failure, not a silent downgrade.
	fleet := make([]*httptest.Server, 2)
	for i := range fleet {
		dir, err := os.MkdirTemp("", "deepn-hub-node-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		srv, err := deepnjpeg.NewServer(nil, deepnjpeg.ServerOptions{
			ProfileDir:     dir,
			DefaultProfile: "fleet",
			ProfileWatch:   50 * time.Millisecond,
			HubOrigin:      hub.URL,
			HubTrustedKey:  pub,
		})
		if err != nil {
			log.Fatal(err)
		}
		fleet[i] = httptest.NewServer(srv.Handler())
		defer fleet[i].Close()
		fmt.Printf("node %d booted from empty %s, serving %s\n", i, dir, serving(fleet[i].URL))
	}

	// 4. Both nodes encode byte-identically: same profile, same tables.
	var ppm bytes.Buffer
	if err := imgutil.WritePPM(&ppm, train.Images[0]); err != nil {
		log.Fatal(err)
	}
	body := ppm.Bytes()
	a, b := encode(fleet[0].URL, body), encode(fleet[1].URL, body)
	fmt.Printf("fleet@1 encode: node0=%d bytes, node1=%d bytes, identical=%v\n",
		len(a), len(b), bytes.Equal(a, b))

	// 5. Push fleet@2 (here: the same calibration under a new version;
	// in production, a fresh calibration run). Both nodes pick it up on
	// their next watch tick without restarting.
	v2 := filepath.Join(originDir, "push-me.dnp")
	if err := codec.SaveProfile(v2, deepnjpeg.ProfileMeta{Name: "fleet", Version: 2, Comment: "recalibrated"}); err != nil {
		log.Fatal(err)
	}
	blob, err := os.ReadFile(v2)
	if err != nil {
		log.Fatal(err)
	}
	os.Remove(v2) // pushed over the wire, not scanned from disk
	resp, err := http.Post(hub.URL+profilehub.PushPath, "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("pushed fleet@2: HTTP %d\n", resp.StatusCode)
	for i, node := range fleet {
		for serving(node.URL) != "fleet@2" {
			time.Sleep(20 * time.Millisecond)
		}
		fmt.Printf("node %d now serving %s\n", i, serving(node.URL))
	}

	// 6. Kill the origin. Profiles are ordinary local files by now and
	// the hub client degrades to its cached index, so the fleet keeps
	// answering.
	down.Store(true)
	a, b = encode(fleet[0].URL, body), encode(fleet[1].URL, body)
	fmt.Printf("origin down: encodes still identical=%v — outage is a non-event\n", bytes.Equal(a, b))
}

func encode(base string, body []byte) []byte {
	resp, err := http.Post(base+"/v1/encode", "image/x-portable-pixmap", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		log.Fatalf("encode: %d %s", resp.StatusCode, data)
	}
	return data
}

func serving(base string) string {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Profile struct {
			Name    string `json:"name"`
			Version uint32 `json:"version"`
		} `json:"profile"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		log.Fatal(err)
	}
	return fmt.Sprintf("%s@%d", doc.Profile.Name, doc.Profile.Version)
}
