package deepnjpeg

// This file is the benchmark harness required by the reproduction: one
// benchmark per figure of the paper's evaluation (each regenerates the
// figure's rows via internal/experiments and reports its headline numbers
// as custom metrics), plus ablation benchmarks for the design choices
// DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Figure benchmarks share one experiment context; the first iteration
// pays for training, later ones hit the context's memoization, so -benchtime
// does not retrain.

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/annealing"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/imgutil"
	"repro/internal/jpegcodec"
	"repro/internal/plm"
	"repro/internal/qtable"
)

var (
	benchOnce sync.Once
	benchCtx  *experiments.Context
	benchErr  error
)

// benchProfile mirrors the experiments test profile: small enough that a
// full figure sweep stays in benchmark territory.
func benchProfile() experiments.Profile {
	p := experiments.Quick()
	p.Data.Classes = 4
	p.Data.TrainPerClass = 24
	p.Data.TestPerClass = 10
	p.Train.Epochs = 3
	p.ZooModels = []string{"minicnn"}
	return p
}

func contextForBench(b *testing.B) *experiments.Context {
	b.Helper()
	benchOnce.Do(func() {
		benchCtx, benchErr = experiments.NewContext(benchProfile())
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchCtx
}

// cell parses a numeric table cell ("3.50" or "92.5%").
func cell(b *testing.B, s string) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		b.Fatalf("parsing %q: %v", s, err)
	}
	return v
}

func runFigure(b *testing.B, fig string) *experiments.Table {
	b.Helper()
	ctx := contextForBench(b)
	var tbl *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = experiments.Run(fig, ctx)
		if err != nil {
			b.Fatal(err)
		}
	}
	return tbl
}

// BenchmarkFig2aAccuracyVsCR regenerates Fig. 2a and reports the CASE-1
// accuracy drop from QF 100 to QF 20 (the paper measures ~9% on ImageNet).
func BenchmarkFig2aAccuracyVsCR(b *testing.B) {
	tbl := runFigure(b, "2a")
	drop := cell(b, tbl.Rows[0][2]) - cell(b, tbl.Rows[2][2])
	b.ReportMetric(drop, "case1-drop-pct")
	b.ReportMetric(cell(b, tbl.Rows[2][1]), "cr-at-qf20")
}

// BenchmarkFig2bAccuracyVsEpoch regenerates the per-epoch CASE-2 curves
// and reports the final-epoch gap between QF 100 and QF 20 training.
func BenchmarkFig2bAccuracyVsEpoch(b *testing.B) {
	tbl := runFigure(b, "2b")
	last := tbl.Rows[len(tbl.Rows)-1]
	b.ReportMetric(cell(b, last[1])-cell(b, last[3]), "final-epoch-gap-pct")
}

// BenchmarkFig3FeatureDegradation regenerates the junco/robin flip demo
// and reports the fraction of HF-class predictions flipped by removing
// the top-6 high-frequency components.
func BenchmarkFig3FeatureDegradation(b *testing.B) {
	tbl := runFigure(b, "3")
	// Row 1 is "predictions flipped  N (P%)".
	val := tbl.Rows[1][1]
	open := strings.Index(val, "(")
	pct := cell(b, strings.TrimSuffix(val[open+1:], "%)"))
	b.ReportMetric(pct, "hf-flip-pct")
}

// BenchmarkFig5BandSensitivity regenerates the band sweeps and reports
// the HF-band normalized accuracy at the largest probed step for both
// segmentations (magnitude-based should not be below position-based).
func BenchmarkFig5BandSensitivity(b *testing.B) {
	tbl := runFigure(b, "5")
	last := tbl.Rows[len(tbl.Rows)-1] // HF, Q=80
	b.ReportMetric(cell(b, last[2]), "hf-q80-magnitude")
	b.ReportMetric(cell(b, last[3]), "hf-q80-position")
}

// BenchmarkFig6K3Sweep regenerates the k3 trade-off and reports the CR
// spread between k3=1 and k3=5.
func BenchmarkFig6K3Sweep(b *testing.B) {
	tbl := runFigure(b, "6")
	b.ReportMetric(cell(b, tbl.Rows[0][1]), "cr-k3-1")
	b.ReportMetric(cell(b, tbl.Rows[4][1]), "cr-k3-5")
}

// BenchmarkFig7SchemesComparison regenerates the headline comparison and
// reports DeepN-JPEG's CR and accuracy delta versus original.
func BenchmarkFig7SchemesComparison(b *testing.B) {
	tbl := runFigure(b, "7")
	byName := map[string][]string{}
	for _, row := range tbl.Rows {
		byName[row[0]] = row
	}
	b.ReportMetric(cell(b, byName["deepn-jpeg"][1]), "deepn-cr")
	b.ReportMetric(cell(b, byName["deepn-jpeg"][2])-cell(b, byName["original"][2]), "deepn-acc-delta-pct")
}

// BenchmarkFig8ModelZoo regenerates the generality study and reports the
// worst accuracy gap between DeepN-JPEG and original across models.
func BenchmarkFig8ModelZoo(b *testing.B) {
	tbl := runFigure(b, "8")
	worst := 0.0
	for _, row := range tbl.Rows[1:] { // skip the CR row
		gap := cell(b, row[1]) - cell(b, row[2]) // original − deepn
		if gap > worst {
			worst = gap
		}
	}
	b.ReportMetric(worst, "worst-deepn-gap-pct")
}

// BenchmarkFig9PowerConsumption regenerates the offloading-power figure
// and reports DeepN-JPEG's normalized power (paper: ≈0.3).
func BenchmarkFig9PowerConsumption(b *testing.B) {
	tbl := runFigure(b, "9")
	for _, row := range tbl.Rows {
		if row[0] == "deepn-jpeg" {
			b.ReportMetric(cell(b, row[2]), "deepn-norm-power")
		}
	}
}

// BenchmarkIntroLatency regenerates the motivating latency numbers and
// reports the 3G upload time of the 152 KB reference image (paper: 870 ms).
func BenchmarkIntroLatency(b *testing.B) {
	tbl := runFigure(b, "latency")
	ref := tbl.Rows[0][2] // "870 ms"
	b.ReportMetric(cell(b, strings.TrimSuffix(ref, " ms")), "ref-3g-ms")
}

// --- ablation benchmarks (design-choice isolation) ---

// ablationData builds a small calibration corpus once per call; these
// benches measure codec-level effects only (no training).
func ablationData(b *testing.B) *dataset.Dataset {
	b.Helper()
	cfg := dataset.Quick()
	cfg.TrainPerClass, cfg.TestPerClass = 16, 1
	train, _, err := dataset.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return train
}

// BenchmarkAblationSegmentation compares the CR of tables calibrated with
// magnitude-based versus position-based band segmentation — the Fig. 5
// design choice.
func BenchmarkAblationSegmentation(b *testing.B) {
	ds := ablationData(b)
	var crMag, crPos float64
	for i := 0; i < b.N; i++ {
		orig, err := core.CompressedSize(ds, core.SchemeOriginal(), true)
		if err != nil {
			b.Fatal(err)
		}
		for _, positional := range []bool{false, true} {
			fw, err := core.Calibrate(ds, core.CalibrateOptions{PositionBased: positional})
			if err != nil {
				b.Fatal(err)
			}
			size, err := core.CompressedSize(ds, fw.Scheme(), true)
			if err != nil {
				b.Fatal(err)
			}
			if positional {
				crPos = core.CompressionRatio(orig, size)
			} else {
				crMag = core.CompressionRatio(orig, size)
			}
		}
	}
	b.ReportMetric(crMag, "cr-magnitude")
	b.ReportMetric(crPos, "cr-position")
}

// BenchmarkAblationPaperParams compares fitting the PLM to this dataset
// against applying the published ImageNet constants unchanged.
func BenchmarkAblationPaperParams(b *testing.B) {
	ds := ablationData(b)
	var crFit, crPaper float64
	for i := 0; i < b.N; i++ {
		orig, err := core.CompressedSize(ds, core.SchemeOriginal(), true)
		if err != nil {
			b.Fatal(err)
		}
		for _, usePaper := range []bool{false, true} {
			fw, err := core.Calibrate(ds, core.CalibrateOptions{UsePaperParams: usePaper})
			if err != nil {
				b.Fatal(err)
			}
			size, err := core.CompressedSize(ds, fw.Scheme(), true)
			if err != nil {
				b.Fatal(err)
			}
			if usePaper {
				crPaper = core.CompressionRatio(orig, size)
			} else {
				crFit = core.CompressionRatio(orig, size)
			}
		}
	}
	b.ReportMetric(crFit, "cr-fitted")
	b.ReportMetric(crPaper, "cr-paper-constants")
}

// BenchmarkAblationHuffman isolates the entropy stage: bytes with
// standard Annex-K Huffman tables versus per-image optimized tables.
func BenchmarkAblationHuffman(b *testing.B) {
	ds := ablationData(b)
	img := ds.Images[0]
	var stdBytes, optBytes int
	for i := 0; i < b.N; i++ {
		var bufStd, bufOpt bytes.Buffer
		if err := jpegcodec.EncodeRGB(&bufStd, img, &jpegcodec.Options{}); err != nil {
			b.Fatal(err)
		}
		if err := jpegcodec.EncodeRGB(&bufOpt, img, &jpegcodec.Options{OptimizeHuffman: true}); err != nil {
			b.Fatal(err)
		}
		stdBytes, optBytes = bufStd.Len(), bufOpt.Len()
	}
	b.ReportMetric(float64(stdBytes), "bytes-std-huffman")
	b.ReportMetric(float64(optBytes), "bytes-opt-huffman")
}

// BenchmarkAblationSubsampling isolates chroma subsampling: 4:2:0 vs
// 4:4:4 stream size at the same table.
func BenchmarkAblationSubsampling(b *testing.B) {
	cfg := dataset.Quick()
	cfg.Color = true
	cfg.TrainPerClass, cfg.TestPerClass = 4, 1
	train, _, err := dataset.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	img := train.Images[0]
	var b420, b444 int
	for i := 0; i < b.N; i++ {
		var buf420, buf444 bytes.Buffer
		if err := jpegcodec.EncodeRGB(&buf420, img, &jpegcodec.Options{Subsampling: jpegcodec.Sub420}); err != nil {
			b.Fatal(err)
		}
		if err := jpegcodec.EncodeRGB(&buf444, img, &jpegcodec.Options{Subsampling: jpegcodec.Sub444}); err != nil {
			b.Fatal(err)
		}
		b420, b444 = buf420.Len(), buf444.Len()
	}
	b.ReportMetric(float64(b420), "bytes-420")
	b.ReportMetric(float64(b444), "bytes-444")
}

// BenchmarkAblationQmin sweeps the LF protection floor Qmin — the clamp
// the paper sets to 5 after the Fig. 5 LF sweep — and reports the CR at
// each floor.
func BenchmarkAblationQmin(b *testing.B) {
	ds := ablationData(b)
	qmins := []float64{1, 5, 10}
	crs := make([]float64, len(qmins))
	for i := 0; i < b.N; i++ {
		orig, err := core.CompressedSize(ds, core.SchemeOriginal(), true)
		if err != nil {
			b.Fatal(err)
		}
		fw, err := core.Calibrate(ds, core.CalibrateOptions{})
		if err != nil {
			b.Fatal(err)
		}
		for qi, qmin := range qmins {
			params := fw.Params
			params.QMin = qmin
			tbl, err := params.Table(fw.Stats)
			if err != nil {
				b.Fatal(err)
			}
			s := core.Scheme{Name: "deepn-qmin", Opts: jpegcodec.Options{LumaTable: tbl, ChromaTable: fw.ChromaTable}}
			size, err := core.CompressedSize(ds, s, true)
			if err != nil {
				b.Fatal(err)
			}
			crs[qi] = core.CompressionRatio(orig, size)
		}
	}
	for qi, qmin := range qmins {
		b.ReportMetric(crs[qi], "cr-qmin-"+strconv.Itoa(int(qmin)))
	}
}

// BenchmarkAblationAnnealingVsPLM quantifies the paper's "intractable
// optimization" claim: a simulated-annealing table search (the cited
// alternative [23]) needs thousands of objective evaluations to approach
// the rate–distortion cost the one-shot calibrated PLM table achieves.
// Reported metrics are the annealer's objective on its own best table and
// on the PLM table, plus the evaluation count.
func BenchmarkAblationAnnealingVsPLM(b *testing.B) {
	ds := ablationData(b)
	var grays []*imgutil.Gray
	for _, im := range ds.Images {
		grays = append(grays, im.ToGray())
	}
	obj := &annealing.Objective{Blocks: annealing.CollectBlocks(grays, 4), Lambda: 0.01}
	fw, err := core.Calibrate(ds, core.CalibrateOptions{})
	if err != nil {
		b.Fatal(err)
	}
	cfg := annealing.DefaultConfig()
	cfg.Iterations = 2000
	var res annealing.Result
	for i := 0; i < b.N; i++ {
		res, err = annealing.Optimize(obj, qtable.Uniform(16), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Cost, "annealed-cost")
	b.ReportMetric(obj.Cost(fw.LumaTable), "plm-cost")
	b.ReportMetric(float64(res.Evaluations), "evaluations")
}

// BenchmarkEncodeBatch compares the one-image-at-a-time loop against the
// worker-pool batch API on the same calibrated codec and image set. On
// ≥4-core hardware the GOMAXPROCS variant should beat sequential by
// roughly the core count, since every worker draws its own pooled
// scratch and never contends.
func BenchmarkEncodeBatch(b *testing.B) {
	ds := ablationData(b)
	codec, err := Calibrate(ds.Images, ds.Labels, CalibrateConfig{})
	if err != nil {
		b.Fatal(err)
	}
	// Replicate the corpus so a batch outweighs the pool's spin-up cost.
	var batch []*Image
	for len(batch) < 256 {
		batch = append(batch, ds.Images[len(batch)%len(ds.Images)])
	}
	var rawBytes int64
	for _, im := range batch {
		rawBytes += int64(len(im.Pix))
	}

	b.Run("sequential", func(b *testing.B) {
		b.SetBytes(rawBytes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, im := range batch {
				if _, err := codec.Encode(im); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.SetBytes(rawBytes)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := codec.EncodeBatch(context.Background(), batch, BatchOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecodeBatch measures the decode side of the pipeline at
// GOMAXPROCS against the sequential loop.
func BenchmarkDecodeBatch(b *testing.B) {
	ds := ablationData(b)
	codec, err := Calibrate(ds.Images, ds.Labels, CalibrateConfig{})
	if err != nil {
		b.Fatal(err)
	}
	var batch []*Image
	for len(batch) < 128 {
		batch = append(batch, ds.Images[len(batch)%len(ds.Images)])
	}
	streams, err := codec.EncodeBatch(context.Background(), batch, BatchOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, s := range streams {
				if _, err := Decode(s); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run(fmt.Sprintf("workers-%d", runtime.GOMAXPROCS(0)), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := DecodeBatch(context.Background(), streams, BatchOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCalibrateParallel compares the single-threaded statistics
// pass against the per-worker partial accumulators (identical output by
// TestParallelCalibrateMatchesSequential).
func BenchmarkCalibrateParallel(b *testing.B) {
	cfg := dataset.Quick()
	cfg.TrainPerClass, cfg.TestPerClass = 64, 1
	ds, _, err := dataset.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Calibrate(ds, core.CalibrateOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCalibration measures the cost of the full design flow itself
// (Algorithm 1 + segmentation + PLM fit + table emission).
func BenchmarkCalibration(b *testing.B) {
	ds := ablationData(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Calibrate(ds, core.CalibrateOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeepNEncodeThroughput measures single-image encode throughput
// with a calibrated table.
func BenchmarkDeepNEncodeThroughput(b *testing.B) {
	ds := ablationData(b)
	fw, err := core.Calibrate(ds, core.CalibrateOptions{})
	if err != nil {
		b.Fatal(err)
	}
	scheme := fw.Scheme()
	img := ds.Images[0]
	b.SetBytes(int64(len(img.Pix)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scheme.EncodeRGB(img); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPLMFit measures the parameter-fitting step in isolation.
func BenchmarkPLMFit(b *testing.B) {
	ds := ablationData(b)
	fw, err := core.Calibrate(ds, core.CalibrateOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plm.Fit(plm.PaperAnchors(), fw.Params.T1, fw.Params.T2, fw.Stats.MaxStd()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQFScaling measures the baseline table-scaling path for
// comparison with calibration cost.
func BenchmarkQFScaling(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := qtable.Scale(qtable.StdLuminance, 1+i%100); err != nil {
			b.Fatal(err)
		}
	}
}
