package deepnjpeg

// Table-driven edge-case tests for the codec: degenerate and awkward
// geometries (1×1, non-multiple-of-8/16 dimensions, extreme aspect
// ratios) across both subsamplings, cross-checked against the stdlib
// decoder, plus flat single-color inputs where quantization error is
// near zero by construction.

import (
	"bytes"
	"fmt"
	"image/jpeg"
	"testing"

	"repro/internal/imgutil"
	"repro/internal/jpegcodec"
)

// gradientImage renders a deterministic chroma-varying pattern so every
// block carries signal.
func gradientImage(w, h int) *Image {
	im := NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			im.Set(x, y, uint8((x*7+y*3)%256), uint8((x*2+y*11)%256), uint8((x*5+255-y)%256))
		}
	}
	return im
}

func flatImage(w, h int, r, g, b uint8) *Image {
	im := NewImage(w, h)
	for i := 0; i < w*h; i++ {
		im.Pix[3*i], im.Pix[3*i+1], im.Pix[3*i+2] = r, g, b
	}
	return im
}

func TestEncodeDecodeEdgeGeometries(t *testing.T) {
	sizes := []struct{ w, h int }{
		{1, 1},
		{7, 5},     // smaller than one block
		{8, 8},     // exactly one block
		{9, 17},    // one sample past the block grid in both axes
		{16, 16},   // exactly one 4:2:0 MCU
		{17, 9},    // one past an MCU
		{31, 33},   // non-multiple of both 8 and 16
		{16384, 8}, // 16k-wide strip, 1 block tall
		{8, 2048},  // tall strip
	}
	subs := []jpegcodec.Subsampling{jpegcodec.Sub420, jpegcodec.Sub444}
	for _, sz := range sizes {
		for _, sub := range subs {
			t.Run(fmt.Sprintf("%dx%d-%v", sz.w, sz.h, sub), func(t *testing.T) {
				src := gradientImage(sz.w, sz.h)
				var buf bytes.Buffer
				opts := jpegcodec.Options{Subsampling: sub}
				if err := jpegcodec.EncodeRGB(&buf, src, &opts); err != nil {
					t.Fatal(err)
				}
				back, err := Decode(buf.Bytes())
				if err != nil {
					t.Fatal(err)
				}
				if back.W != sz.w || back.H != sz.h {
					t.Fatalf("decoded %dx%d, want %dx%d", back.W, back.H, sz.w, sz.h)
				}
				// Stdlib must agree on geometry and closely on content.
				stdImg, err := jpeg.Decode(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatalf("stdlib rejects the stream: %v", err)
				}
				if stdImg.Bounds().Dx() != sz.w || stdImg.Bounds().Dy() != sz.h {
					t.Fatalf("stdlib decoded %dx%d, want %dx%d",
						stdImg.Bounds().Dx(), stdImg.Bounds().Dy(), sz.w, sz.h)
				}
				if got := psnrOrDie(t, back, stdlibToRGB(t, stdImg)); got < 30 {
					t.Fatalf("our decoder and stdlib disagree: %.1f dB", got)
				}
				// Fidelity: Annex-K QF50 defaults on a dense gradient; the
				// 1×1 case is DC-only and nearly exact.
				min := 15.0
				if sz.w*sz.h == 1 {
					min = 25
				}
				if got := psnrOrDie(t, src, back); got < min {
					t.Fatalf("round-trip PSNR %.1f dB < %.1f dB", got, min)
				}
			})
		}
	}
}

func TestEncodeDecodeFlatColors(t *testing.T) {
	colors := []struct {
		name    string
		r, g, b uint8
	}{
		{"black", 0, 0, 0},
		{"white", 255, 255, 255},
		{"mid-grey", 128, 128, 128},
		{"saturated-red", 255, 0, 0},
	}
	for _, c := range colors {
		for _, sz := range []struct{ w, h int }{{16, 16}, {13, 21}} {
			t.Run(fmt.Sprintf("%s-%dx%d", c.name, sz.w, sz.h), func(t *testing.T) {
				src := flatImage(sz.w, sz.h, c.r, c.g, c.b)
				var buf bytes.Buffer
				if err := jpegcodec.EncodeRGB(&buf, src, &jpegcodec.Options{}); err != nil {
					t.Fatal(err)
				}
				back, err := Decode(buf.Bytes())
				if err != nil {
					t.Fatal(err)
				}
				// A flat field has only DC energy; everything survives
				// quantization up to rounding.
				if got := psnrOrDie(t, src, back); got < 35 {
					t.Fatalf("flat %s round-trip PSNR %.1f dB", c.name, got)
				}
			})
		}
	}
}

func TestEncodeRejectsDegenerateGeometry(t *testing.T) {
	var buf bytes.Buffer
	if err := jpegcodec.EncodeRGB(&buf, NewImage(0, 0), &jpegcodec.Options{}); err == nil {
		t.Fatal("0x0 image accepted")
	}
	if err := jpegcodec.EncodeGray(&buf, NewGray(0, 5), &jpegcodec.Options{}); err == nil {
		t.Fatal("0-width gray image accepted")
	}
	big := &imgutil.RGB{W: 70000, H: 1, Pix: make([]uint8, 3*70000)}
	if err := jpegcodec.EncodeRGB(&buf, big, &jpegcodec.Options{}); err == nil {
		t.Fatal("image wider than the 65535 JFIF limit accepted")
	}
}

func TestGrayEdgeGeometries(t *testing.T) {
	for _, sz := range []struct{ w, h int }{{1, 1}, {7, 5}, {9, 17}, {4096, 8}} {
		t.Run(fmt.Sprintf("%dx%d", sz.w, sz.h), func(t *testing.T) {
			src := toGray(gradientImage(sz.w, sz.h))
			var buf bytes.Buffer
			if err := jpegcodec.EncodeGray(&buf, src, &jpegcodec.Options{}); err != nil {
				t.Fatal(err)
			}
			back, err := DecodeGray(buf.Bytes())
			if err != nil {
				t.Fatal(err)
			}
			if back.W != sz.w || back.H != sz.h {
				t.Fatalf("decoded %dx%d, want %dx%d", back.W, back.H, sz.w, sz.h)
			}
			v, err := imgutil.PSNR(src.Pix, back.Pix)
			if err != nil {
				t.Fatal(err)
			}
			if v < 15 {
				t.Fatalf("gray round-trip PSNR %.1f dB", v)
			}
		})
	}
}
