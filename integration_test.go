package deepnjpeg

// End-to-end integration tests: the full DeepN-JPEG story exercised
// through the public facade plus the internal training substrate — the
// closed loop the paper's evaluation rests on.

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/jpegcodec"
	"repro/internal/nn"
	"repro/internal/nn/models"
	"repro/internal/qtable"
)

// TestEndToEndStory verifies the central claim on a small instance:
// a classifier trained on original data keeps (nearly) its accuracy on
// DeepN-JPEG-compressed inputs at a compression ratio where plain JPEG
// already degrades.
func TestEndToEndStory(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short mode")
	}
	cfg := dataset.Quick()
	cfg.TrainPerClass, cfg.TestPerClass = 40, 20
	train, test, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := core.Calibrate(train, core.CalibrateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := models.Build("minicnn", models.Config{Channels: 1, Size: cfg.Size, Classes: cfg.Classes, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	m.Train(train.Tensors(false), nn.TrainConfig{Epochs: 5, BatchSize: 32, LR: 0.04, Momentum: 0.9, Seed: 11})

	accOn := func(s core.Scheme) (float64, float64) {
		res, err := core.Transcode(test, s, true)
		if err != nil {
			t.Fatal(err)
		}
		origBytes, err := core.CompressedSize(test, core.SchemeOriginal(), true)
		if err != nil {
			t.Fatal(err)
		}
		return m.Accuracy(res.Dataset.Tensors(false)), core.CompressionRatio(origBytes, res.TotalBytes)
	}

	accOrig, _ := accOn(core.SchemeOriginal())
	accDeepN, crDeepN := accOn(fw.Scheme())
	accQ20, crQ20 := accOn(core.SchemeJPEG(20))

	if accOrig < 0.8 {
		t.Fatalf("baseline accuracy %.2f too low for a meaningful comparison", accOrig)
	}
	// DeepN-JPEG: near-original accuracy at substantial CR.
	if accDeepN < accOrig-0.05 {
		t.Fatalf("DeepN accuracy %.2f fell more than 5pp below original %.2f", accDeepN, accOrig)
	}
	if crDeepN < 2 {
		t.Fatalf("DeepN CR %.2f < 2", crDeepN)
	}
	// Aggressive JPEG: comparable CR but worse accuracy than DeepN.
	if accQ20 >= accDeepN {
		t.Fatalf("JPEG QF20 accuracy %.2f (CR %.2f) not below DeepN %.2f (CR %.2f) — the paper's contrast is missing",
			accQ20, crQ20, accDeepN, crDeepN)
	}
}

// TestFacadeStreamsAreJPEGCompatible round-trips a facade-encoded stream
// through the internal decoder and checks every structural property a
// third-party JPEG tool would rely on.
func TestFacadeStreamsAreJPEGCompatible(t *testing.T) {
	cfg := dataset.Quick()
	cfg.TrainPerClass, cfg.TestPerClass = 6, 1
	cfg.Color = true
	train, _, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	codec, err := Calibrate(train.Images, train.Labels, CalibrateConfig{Chroma: true})
	if err != nil {
		t.Fatal(err)
	}
	data, err := codec.Encode(train.Images[0])
	if err != nil {
		t.Fatal(err)
	}
	dec, err := jpegcodec.Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Components != 3 || dec.Sampling != jpegcodec.Sub420 {
		t.Fatalf("unexpected stream structure: %d components, %v", dec.Components, dec.Sampling)
	}
	if dec.QuantTables[0] != codec.LumaTable() {
		t.Fatal("luma DQT does not match the calibrated table")
	}
	if dec.QuantTables[1] != codec.ChromaTable() {
		t.Fatal("chroma DQT does not match the calibrated table")
	}
}

// TestRequantizeArchiveToDeepN exercises the archive-retrofit path: a
// stock JPEG is requantized to a calibrated table in the coefficient
// domain and shrinks without structural damage.
func TestRequantizeArchiveToDeepN(t *testing.T) {
	cfg := dataset.Quick()
	cfg.TrainPerClass, cfg.TestPerClass = 8, 2
	train, test, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := core.Calibrate(train, core.CalibrateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// "Archive" image: stock JPEG at QF 95.
	archive, err := EncodeJPEG(test.Images[0], 95)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := jpegcodec.Decode(bytes.NewReader(archive))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := jpegcodec.Requantize(&out, dec, fw.LumaTable, fw.ChromaTable, &jpegcodec.Options{OptimizeHuffman: true}); err != nil {
		t.Fatal(err)
	}
	if out.Len() >= len(archive) {
		t.Fatalf("requantized archive grew: %d → %d bytes", len(archive), out.Len())
	}
	back, err := Decode(out.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	psnr, err := PSNR(test.Images[0], back)
	if err != nil {
		t.Fatal(err)
	}
	if psnr < 22 {
		t.Fatalf("retrofit PSNR %.1f dB", psnr)
	}
}

// TestTableFamiliesAreWellFormed sanity-checks every table family the
// evaluation uses through one validator.
func TestTableFamiliesAreWellFormed(t *testing.T) {
	cfg := dataset.Quick()
	cfg.TrainPerClass, cfg.TestPerClass = 4, 1
	train, _, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := core.Calibrate(train, core.CalibrateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tables := map[string]qtable.Table{
		"annex-k-luma":   qtable.StdLuminance,
		"annex-k-chroma": qtable.StdChrominance,
		"qf20":           qtable.MustScale(qtable.StdLuminance, 20),
		"qf100":          qtable.MustScale(qtable.StdLuminance, 100),
		"same-q":         qtable.Uniform(8),
		"deepn":          fw.LumaTable,
	}
	for name, tbl := range tables {
		if err := tbl.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
