#!/bin/sh
# Full pre-merge gate: vet, build, and the complete test suite under the
# race detector. Equivalent to `make check` for environments without make.
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...
