#!/bin/sh
# Full pre-merge gate: gofmt, vet, build, the complete test suite under
# the race detector, and a short native-fuzz smoke of the decoder and
# requantizer. Equivalent to `make check` for environments without make.
set -eux

cd "$(dirname "$0")/.."

# Assignment first so a failing gofmt itself (missing binary, parse
# error) aborts under set -e instead of vacuously passing the gate.
unformatted=$(gofmt -l .)
test -z "$unformatted"
go vet ./...
go build ./...
# 32-bit cross-compile gate (catches int-overflow bugs like the PNG
# width*height pixel-cap bypass).
GOARCH=386 go build ./...
GOARCH=386 go vet ./...
go test -race ./...
go test -run '^$' -fuzz '^FuzzDecode$' -fuzztime 5s ./internal/jpegcodec
go test -run '^$' -fuzz '^FuzzDecodeSharded$' -fuzztime 5s ./internal/jpegcodec
go test -run '^$' -fuzz '^FuzzRequantize$' -fuzztime 5s ./internal/jpegcodec
go test -run '^$' -fuzz '^FuzzDecodeProgressive$' -fuzztime 5s ./internal/jpegcodec
go test -run '^$' -fuzz '^FuzzProfileDecode$' -fuzztime 5s ./internal/profile
go test -run '^$' -fuzz '^FuzzParseIndex$' -fuzztime 5s ./internal/profilehub
