// Command bench2json converts `go test -bench` text output on stdin
// into a stable JSON document on stdout, so benchmark results can be
// checked in per PR (BENCH_<pr>.json) and diffed across the repository's
// history — the perf trajectory of the codec.
//
// Usage:
//
//	go test -run XXX -bench . -benchmem ./... | go run ./scripts/bench2json
//
// Each benchmark line ("BenchmarkX-8  100  123 ns/op  45 B/op  2
// allocs/op  678 MB/s") becomes one entry with every value/unit pair
// preserved under metrics; non-benchmark lines are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type document struct {
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	Benchmarks []result `json:"benchmarks"`
}

func main() {
	doc := document{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: []result{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			doc.Benchmarks = append(doc.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}

// parseLine recognizes one benchmark result line: the name, the
// iteration count, then value/unit pairs.
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	if len(r.Metrics) == 0 {
		return result{}, false
	}
	return r, true
}
