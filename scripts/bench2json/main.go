// Command bench2json converts `go test -bench` text output on stdin
// into a stable JSON document on stdout, so benchmark results can be
// checked in per PR (BENCH_<pr>.json) and diffed across the repository's
// history — the perf trajectory of the codec.
//
// Usage:
//
//	go test -run XXX -bench . -benchmem ./... | go run ./scripts/bench2json
//
// Each benchmark line ("BenchmarkX-8  100  123 ns/op  45 B/op  2
// allocs/op  678 MB/s") becomes one entry with every value/unit pair
// preserved under metrics; non-benchmark lines are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// host records the machine shape the numbers were taken on. Bench JSONs
// are diffed across the repository's history, and a throughput delta is
// only meaningful between runs on comparable hosts — a 1-CPU CI runner
// and an 8-core workstation produce legitimately different MB/s for the
// same code, and GOAMD64 changes which instructions the compiler may
// emit.
type host struct {
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GOAMD64    string `json:"goamd64,omitempty"` // amd64 only; "v1" when unset
}

type document struct {
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	Host       host     `json:"host"`
	Benchmarks []result `json:"benchmarks"`
}

// hostInfo captures the current machine. GOAMD64 is read from the
// environment: the toolchain has no runtime query for it, and the
// environment variable is how both `go build` and CI select the level.
func hostInfo() host {
	h := host{
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if runtime.GOARCH == "amd64" {
		h.GOAMD64 = os.Getenv("GOAMD64")
		if h.GOAMD64 == "" {
			h.GOAMD64 = "v1"
		}
	}
	return h
}

func main() {
	doc := document{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Host:       hostInfo(),
		Benchmarks: []result{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			doc.Benchmarks = append(doc.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}

// parseLine recognizes one benchmark result line: the name, the
// iteration count, then value/unit pairs.
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	if len(r.Metrics) == 0 {
		return result{}, false
	}
	return r, true
}
