package deepnjpeg

import (
	"bytes"
	"image/jpeg"
	"testing"

	"repro/internal/dataset"
)

func calibrationSet(t *testing.T) ([]*Image, []int) {
	t.Helper()
	cfg := dataset.Quick()
	cfg.TrainPerClass, cfg.TestPerClass = 8, 1
	train, _, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return train.Images, train.Labels
}

func TestCalibrateAndEncode(t *testing.T) {
	images, labels := calibrationSet(t)
	codec, err := Calibrate(images, labels, CalibrateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := codec.LumaTable().Validate(); err != nil {
		t.Fatal(err)
	}
	data, err := codec.Encode(images[0])
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.W != images[0].W || back.H != images[0].H {
		t.Fatalf("decoded %dx%d", back.W, back.H)
	}
	// The stream is standard JFIF: stdlib must decode it too.
	if _, err := jpeg.Decode(bytes.NewReader(data)); err != nil {
		t.Fatalf("stdlib cannot decode DeepN-JPEG stream: %v", err)
	}
}

func TestCalibrateInputValidation(t *testing.T) {
	if _, err := Calibrate(nil, nil, CalibrateConfig{}); err == nil {
		t.Fatal("empty input accepted")
	}
	images, labels := calibrationSet(t)
	if _, err := Calibrate(images, labels[:1], CalibrateConfig{}); err == nil {
		t.Fatal("mismatched labels accepted")
	}
}

func TestDeepNSmallerThanBaselineJPEG(t *testing.T) {
	images, labels := calibrationSet(t)
	codec, err := Calibrate(images, labels, CalibrateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var deepTotal, origTotal int
	for _, im := range images[:10] {
		d, err := codec.Encode(im)
		if err != nil {
			t.Fatal(err)
		}
		o, err := EncodeJPEG(im, 100)
		if err != nil {
			t.Fatal(err)
		}
		deepTotal += len(d)
		origTotal += len(o)
	}
	if cr := CompressionRatio(origTotal, deepTotal); cr < 1.5 {
		t.Fatalf("facade CR %.2f < 1.5", cr)
	}
}

func TestGrayPath(t *testing.T) {
	images, labels := calibrationSet(t)
	codec, err := Calibrate(images, labels, CalibrateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	g := images[0].ToGray()
	data, err := codec.EncodeGray(g)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeGray(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.W != g.W || back.H != g.H {
		t.Fatalf("gray decode %dx%d", back.W, back.H)
	}
}

func TestBandSigmaAndParamsExposed(t *testing.T) {
	images, labels := calibrationSet(t)
	codec, err := Calibrate(images, labels, CalibrateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if codec.BandSigma(0) <= 0 {
		t.Fatal("DC σ must be positive on varied data")
	}
	if err := codec.PLMParams().Validate(); err != nil {
		t.Fatal(err)
	}
	if codec.ChromaTable().Validate() != nil {
		t.Fatal("chroma table invalid")
	}
}

func TestPSNRHelper(t *testing.T) {
	a := NewImage(4, 4)
	b := NewImage(4, 4)
	b.Pix[0] = 255
	v, err := PSNR(a, b)
	if err != nil || v <= 0 {
		t.Fatalf("PSNR %v, %v", v, err)
	}
}

func TestEncodeJPEGRejectsBadQF(t *testing.T) {
	if _, err := EncodeJPEG(NewImage(8, 8), 0); err == nil {
		t.Fatal("QF 0 accepted")
	}
}
