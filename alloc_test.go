package deepnjpeg

// Allocation-regression bounds for the batch decode path, the public
// sibling of the bounds in internal/jpegcodec/alloc_test.go. With
// per-worker Decoded/Image reuse inside DecodeBatchInto, a steady-state
// batch that reuses its dst slice pays only the fixed pipeline overhead
// (worker goroutines, the per-call scratch slices) — nothing per item.
// The bounds are deliberately ~2–4× observed so they catch a lost reuse
// path, not allocator noise.

import (
	"context"
	"testing"
)

func allocBatch(t *testing.T, n int) ([][]byte, *Codec) {
	t.Helper()
	codec, images := batchCodec(t)
	streams := make([][]byte, n)
	for i := range streams {
		data, err := codec.Encode(images[i%len(images)])
		if err != nil {
			t.Fatal(err)
		}
		streams[i] = data
	}
	return streams, codec
}

func TestDecodeBatchIntoAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under -race")
	}
	const items = 16
	streams, _ := allocBatch(t, items)
	ctx := context.Background()
	opts := BatchOptions{Workers: 4}
	dst := make([]*Image, len(streams))
	decode := func() {
		if _, err := DecodeBatchInto(ctx, streams, dst, opts, DecodeOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		decode() // warm dst, the decoded pool and the codec scratch pools
	}
	allocs := testing.AllocsPerRun(50, decode)
	t.Logf("steady-state DecodeBatchInto(%d items, 4 workers): %.1f allocs/op", items, allocs)
	// Fixed per-call overhead only: out/err plumbing, 4 goroutines, the
	// per-worker scratch slices. Anything O(items) means the per-worker
	// reuse regressed (16 items × ~4 output allocs would blow this).
	if allocs > 48 {
		t.Fatalf("steady-state DecodeBatchInto makes %.1f allocs/op, want ≤ 48 (per-worker reuse regressed)", allocs)
	}
}

// TestDecodeBatchAllocsPerItem bounds the convenience path: fresh output
// images are the only per-item cost left.
func TestDecodeBatchAllocsPerItem(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under -race")
	}
	const items = 16
	streams, _ := allocBatch(t, items)
	ctx := context.Background()
	opts := BatchOptions{Workers: 4}
	decode := func() {
		if _, err := DecodeBatch(ctx, streams, opts); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		decode()
	}
	allocs := testing.AllocsPerRun(30, decode)
	perItem := allocs / items
	t.Logf("DecodeBatch: %.1f allocs/op, %.2f per item", allocs, perItem)
	// Each item may allocate its escaping output (struct + pixel buffer)
	// and nothing else beyond the fixed call overhead.
	if perItem > 6 {
		t.Fatalf("DecodeBatch makes %.2f allocs per item, want ≤ 6 (output-only)", perItem)
	}
}

func TestRequantizeBatchAllocsBounded(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under -race")
	}
	const items = 16
	streams, codec := allocBatch(t, items)
	ctx := context.Background()
	bopts := BatchOptions{Workers: 4}
	ropts := RequantizeOptions{}
	requantize := func() {
		if _, err := codec.RequantizeBatch(ctx, streams, bopts, ropts); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		requantize()
	}
	allocs := testing.AllocsPerRun(30, requantize)
	perItem := allocs / items
	t.Logf("RequantizeBatch: %.1f allocs/op, %.2f per item", allocs, perItem)
	// Per item this is an entropy re-encode: the escaping output stream
	// plus the encoder tail's small working set — the same ~40-alloc
	// steady state the EncodeRGB bound in internal/jpegcodec pins. The
	// decode side is fully reused per worker, so anything near
	// O(image-size) (hundreds) means the pooling regressed.
	if perItem > 64 {
		t.Fatalf("RequantizeBatch makes %.2f allocs per item, want ≤ 64 (worker reuse regressed)", perItem)
	}
}
