package deepnjpeg

// Public-surface tests for the pluggable block-transform engine and the
// decode reuse APIs: the fast engine must be invisible in the emitted
// bytes (the interop golden images encode identically under both), and
// the Into-variants must reproduce their allocating counterparts
// exactly.

import (
	"bytes"
	"context"
	"image/jpeg"
	"testing"
)

// transformCodecs calibrates one codec per engine on the same corpus;
// the calibrated tables must be bit-identical because statistics always
// run on the naive engine.
func transformCodecs(t *testing.T) (naive, aan *Codec, images []*Image) {
	t.Helper()
	images, labels := calibrationSet(t)
	var err error
	naive, err = Calibrate(images, labels, CalibrateConfig{Chroma: true})
	if err != nil {
		t.Fatal(err)
	}
	aan, err = Calibrate(images, labels, CalibrateConfig{Chroma: true, Transform: TransformAAN})
	if err != nil {
		t.Fatal(err)
	}
	return naive, aan, images
}

func TestTransformEnginesShareCalibratedTables(t *testing.T) {
	naive, aan, _ := transformCodecs(t)
	if naive.LumaTable() != aan.LumaTable() {
		t.Fatal("luma tables differ across engines; calibration must be engine-independent")
	}
	if naive.ChromaTable() != aan.ChromaTable() {
		t.Fatal("chroma tables differ across engines; calibration must be engine-independent")
	}
}

// TestTransformEquivalenceOnInteropImages is the golden-image half of
// the engine-equivalence property: every stream the interop suite
// validates against the stdlib decoder must come out byte-identical
// under the AAN engine, for both color and grayscale encodes. With the
// AAN scale factors folded into the quantization tables, this corpus is
// also what pins that the fused one-pass hot loop cannot be told apart
// from the two-pass formulation by a single emitted byte — and that the
// fast path's output remains plain baseline JFIF to the stdlib decoder.
func TestTransformEquivalenceOnInteropImages(t *testing.T) {
	naive, aan, images := transformCodecs(t)
	for i, img := range images {
		a, err := naive.Encode(img)
		if err != nil {
			t.Fatal(err)
		}
		b, err := aan.Encode(img)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("image %d: color streams differ across engines (%d vs %d bytes)", i, len(a), len(b))
		}
		if _, err := jpeg.Decode(bytes.NewReader(b)); err != nil {
			t.Fatalf("image %d: stdlib cannot decode the fused-table AAN stream: %v", i, err)
		}
		g := toGray(img)
		ga, err := naive.EncodeGray(g)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := aan.EncodeGray(g)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ga, gb) {
			t.Fatalf("image %d: gray streams differ across engines (%d vs %d bytes)", i, len(ga), len(gb))
		}
	}
}

func TestDecodeIntoMatchesDecode(t *testing.T) {
	naive, _, images := transformCodecs(t)
	stream, err := naive.Encode(images[0])
	if err != nil {
		t.Fatal(err)
	}
	want, err := Decode(stream)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh (nil dst), reused, and fast-engine decodes of the same stream.
	got, err := DecodeInto(nil, stream, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Pix, want.Pix) {
		t.Fatal("DecodeInto(nil) diverges from Decode")
	}
	reuse := NewImage(1, 1) // deliberately too small; must grow
	got2, err := DecodeInto(reuse, stream, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got2 != reuse {
		t.Fatal("DecodeInto must return the reuse buffer it filled")
	}
	if !bytes.Equal(got2.Pix, want.Pix) {
		t.Fatal("DecodeInto(reuse) diverges from Decode")
	}
	fast, err := DecodeInto(nil, stream, DecodeOptions{Transform: TransformAAN})
	if err != nil {
		t.Fatal(err)
	}
	worst := 0
	for i := range want.Pix {
		d := int(want.Pix[i]) - int(fast.Pix[i])
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	// Same quantized coefficients; only IDCT rounding may differ.
	if worst > 1 {
		t.Fatalf("AAN decode differs from naive by up to %d levels", worst)
	}
}

func TestDecodeBatchIntoMatchesDecodeBatch(t *testing.T) {
	naive, _, images := transformCodecs(t)
	streams, err := naive.EncodeBatch(context.Background(), images, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := DecodeBatch(context.Background(), streams, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// nil dst allocates, non-nil dst is reused and returned.
	got, err := DecodeBatchInto(context.Background(), streams, nil, BatchOptions{}, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]*Image, len(streams))
	for i := range dst {
		dst[i] = NewImage(1, 1)
	}
	reused, err := DecodeBatchInto(context.Background(), streams, dst, BatchOptions{Workers: 2}, DecodeOptions{Transform: TransformAAN})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || len(reused) != len(want) {
		t.Fatalf("batch lengths diverge: %d/%d/%d", len(got), len(reused), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i].Pix, want[i].Pix) {
			t.Fatalf("item %d: DecodeBatchInto(nil dst) diverges from DecodeBatch", i)
		}
		if reused[i] != dst[i] {
			t.Fatalf("item %d: DecodeBatchInto must fill the provided buffers", i)
		}
		worst := 0
		for j := range want[i].Pix {
			d := int(want[i].Pix[j]) - int(reused[i].Pix[j])
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
		if worst > 1 {
			t.Fatalf("item %d: AAN batch decode differs by up to %d levels", i, worst)
		}
	}
	// Mismatched reuse-slice length is an error, not a silent reallocation.
	if _, err := DecodeBatchInto(context.Background(), streams, dst[:1], BatchOptions{}, DecodeOptions{}); err == nil {
		t.Fatal("short dst slice must be rejected")
	}
}

func TestCalibrateRejectsUnknownTransform(t *testing.T) {
	images, labels := calibrationSet(t)
	if _, err := Calibrate(images, labels, CalibrateConfig{Transform: Transform(9)}); err == nil {
		t.Fatal("unknown transform engine must be rejected at calibration time")
	}
}
