# Developer entry points for the DeepN-JPEG reproduction.
#
#   make check   # vet + build + full test suite under the race detector
#   make test    # plain test run (what tier-1 verification executes)
#   make bench   # codec/pipeline benchmarks with allocation reporting

GO ?= go

.PHONY: check vet build test race bench

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run XXX -bench 'EncodeBatch|DecodeBatch|CalibrateParallel|DeepNEncodeThroughput' -benchmem ./
