# Developer entry points for the DeepN-JPEG reproduction.
#
#   make check   # gofmt gate + vet + build + full test suite under the race detector
#   make test    # plain test run (what tier-1 verification executes)
#   make bench   # DCT/codec/pipeline benchmarks with allocation reporting

GO ?= go
GOFMT ?= gofmt

.PHONY: check fmt vet build test race bench

check: fmt vet build race

fmt:
	@out="$$($(GOFMT) -l .)" || exit 1; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run XXX -bench 'Transform|ForwardAAN|InverseAAN' -benchmem ./internal/dct
	$(GO) test -run XXX -bench 'Transform|DecodePooled|EncodeRGB420|DecodeRGB420' -benchmem ./internal/jpegcodec
	$(GO) test -run XXX -bench 'EncodeBatch|DecodeBatch|CalibrateParallel|DeepNEncodeThroughput' -benchmem ./
