# Developer entry points for the DeepN-JPEG reproduction.
#
#   make check        # gofmt gate + vet + build + race suite + sampling matrix + fuzz smoke
#   make test         # plain test run (what tier-1 verification executes)
#   make test-amd64v3 # build+test under GOAMD64=v3 (AVX2-era codegen)
#   make bench        # DCT/codec/pipeline benchmarks with allocation reporting
#   make bench-txt    # repeated-count text snapshot → $(NEW) (benchstat input)
#   make bench-compare# benchstat $(OLD) $(NEW) — old-vs-new regression diff
#   make bench-json   # full benchmark sweep → BENCH_$(PR).json (perf trajectory)
#   make serve-bench  # requests/sec through the HTTP batch endpoint
#   make fuzz-smoke   # short native-fuzz run of the decode/requantize/profile fuzzers

GO ?= go
GOFMT ?= gofmt
FUZZTIME ?= 5s
# PR tags the benchmark snapshot file (BENCH_$(PR).json); set it to the
# PR number when recording a data point, e.g. `make bench-json PR=4`.
PR ?= dev

.PHONY: check fmt vet build build-386 test test-amd64v3 race sampling progressive hub bench bench-txt bench-compare bench-json serve-bench fuzz-smoke

check: fmt vet build build-386 race sampling progressive hub fuzz-smoke

fmt:
	@out="$$($(GOFMT) -l .)" || exit 1; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# 32-bit cross-compile gate: int is 32 bits under GOARCH=386, so this
# catches the width*height-overflow class of bug (hostile image headers
# can declare ~2^31 per dimension) at compile/vet time on every check.
build-386:
	GOARCH=386 $(GO) build ./...
	GOARCH=386 $(GO) vet ./...

test:
	$(GO) test ./...

# GOAMD64=v3 leg: the batch DCT/quantize kernels are flat float64 loops
# whose lowering changes with the microarchitecture level (v3 unlocks
# AVX/AVX2-era instruction selection). Building AND running the suite at
# v3 pins the bit-identity contract — batch vs per-block, fused vs
# unfused — under the alternate codegen, not just under the default v1.
# Requires an AVX2-capable host (any x86-64-v3 machine; CI runners are).
test-amd64v3:
	GOAMD64=v3 $(GO) build ./...
	GOAMD64=v3 $(GO) test ./...

race:
	$(GO) test -race ./...

# Chroma-sampling matrix gate: runs the table-driven layout suite
# (4:4:4/4:2:0/4:2:2/4:4:0/4:1:1) — stdlib-agreeing decodes, byte-stable
# sharded requantization, metadata passthrough — as its own named leg so
# a sampling regression is attributable at a glance.
sampling:
	$(GO) test -run 'TestSamplingMatrix|TestRGBIntoMatchesStdlibOn422Family|TestSingleComponentFactorsNormalized|TestSOFBaselineBlocksPerMCULimit|Metadata' ./internal/jpegcodec
	$(GO) test -run 'TestSubsamplingMatrixInterop|TestRequantizeMetadataPassthroughPublic' .

# Progressive-JPEG gate: the multi-scan decode path as its own named
# leg — scan-script matrix vs baseline coefficients, stdlib interop
# pins, progressive→baseline requantization, checked-in fixtures, the
# marker-structure inspector, and the server's 415 unsupported_format
# classification — so a progressive regression is attributable at a
# glance.
progressive:
	$(GO) test -run 'TestProgressive|TestInspect|TestRequantizeProgressive' ./internal/jpegcodec
	$(GO) test -run 'TestUnsupportedFormatMatrix' ./internal/server

# Profile-hub gate: the whole distribution loop as its own named leg —
# origin wire protocol, client fault injection (truncation, corruption,
# retries, origin-down fallback, trust-key rejection), registry lazy
# fetch/sync, and the two-server fleet scenario — so a hub regression is
# attributable at a glance. The packages also run inside `race`; this
# leg exists for fast, named feedback.
hub:
	$(GO) test ./internal/profilehub
	$(GO) test -run 'TestRegistryLazyFetch|TestSyncSource|TestWatchSyncs|TestLazyFetchSingleFlight|TestSignature|TestReadSignature|TestGC|TestCompare|TestWriteFileAtomic|TestReadChecksum' ./internal/profile
	$(GO) test -run 'TestFleet|TestServerHub' ./internal/server

# Native-fuzz smoke leg: a few seconds per target over the checked-in
# corpus plus fresh mutations — catches decoder panics before CI does a
# long run. go test only allows one -fuzz pattern per invocation.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime $(FUZZTIME) ./internal/jpegcodec
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeSharded$$' -fuzztime $(FUZZTIME) ./internal/jpegcodec
	$(GO) test -run '^$$' -fuzz '^FuzzRequantize$$' -fuzztime $(FUZZTIME) ./internal/jpegcodec
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeProgressive$$' -fuzztime $(FUZZTIME) ./internal/jpegcodec
	$(GO) test -run '^$$' -fuzz '^FuzzProfileDecode$$' -fuzztime $(FUZZTIME) ./internal/profile
	$(GO) test -run '^$$' -fuzz '^FuzzParseIndex$$' -fuzztime $(FUZZTIME) ./internal/profilehub

bench:
	$(GO) test -run XXX -bench 'Transform|ForwardAAN|InverseAAN|Batch|PerBlockLoop' -benchmem ./internal/dct
	$(GO) test -run XXX -bench 'Transform|DecodePooled|EncodeRGB420|DecodeRGB420|Decode422|Requantize422|DecodeProgressive|RequantizeProgressive' -benchmem ./internal/jpegcodec
	$(GO) test -run XXX -bench 'EncodeBatch|DecodeBatch|CalibrateParallel|DeepNEncodeThroughput' -benchmem ./
	$(GO) test -run XXX -bench 'Index|BlobVerify|PullCacheHit' -benchmem ./internal/profilehub

# bench-txt records a repeated-count text snapshot of the hot-path
# benchmarks — the input format benchstat wants. Record one before a
# change (NEW=bench-old.txt) and one after (the default), then run
# bench-compare. BENCHCOUNT=10 gives benchstat enough samples to report
# a confidence interval instead of a point estimate.
NEW ?= bench-new.txt
OLD ?= bench-old.txt
BENCHCOUNT ?= 10
bench-txt:
	$(GO) test -run XXX -bench 'Transform|Batch|PerBlockLoop' -benchmem -count $(BENCHCOUNT) ./internal/dct ./internal/jpegcodec > $(NEW)
	@echo "wrote $(NEW)"

# bench-compare diffs two bench-txt snapshots with benchstat
# (golang.org/x/perf/cmd/benchstat). The tool is NOT auto-installed —
# this repo adds no dependencies from the build — so the target checks
# for it on PATH and explains itself when absent.
bench-compare:
	@command -v benchstat >/dev/null 2>&1 || { \
		echo "bench-compare: benchstat not on PATH."; \
		echo "  install it once with: go install golang.org/x/perf/cmd/benchstat@latest"; \
		echo "  then: make bench-txt NEW=bench-old.txt   (on the old commit)"; \
		echo "        make bench-txt                     (on the new commit)"; \
		echo "        make bench-compare"; \
		exit 1; }
	benchstat $(OLD) $(NEW)

# bench-json records the full benchmark sweep as a machine-readable
# snapshot (BENCH_$(PR).json) so per-PR performance is diffable across
# the repository's history. The sweep and the conversion run as separate
# commands (no pipe) so a failing benchmark fails the target instead of
# silently producing a truncated snapshot. The second leg re-runs the
# single-image restart-sharding benchmarks under a -cpu 1,4,8 sweep so
# the snapshot captures how sharded encode/decode scales with cores.
bench-json:
	$(GO) test -run XXX -bench . -benchmem ./... > BENCH_$(PR).txt
	$(GO) test -run XXX -bench Sharded -benchmem -cpu 1,4,8 ./internal/jpegcodec >> BENCH_$(PR).txt
	$(GO) run ./scripts/bench2json < BENCH_$(PR).txt > BENCH_$(PR).json
	@rm -f BENCH_$(PR).txt
	@echo "wrote BENCH_$(PR).json"

serve-bench:
	$(GO) test -run XXX -bench 'ServeBatchEncode|ServeEncodeSingle' -benchmem ./internal/server
