# Developer entry points for the DeepN-JPEG reproduction.
#
#   make check       # gofmt gate + vet + build + race suite + fuzz smoke
#   make test        # plain test run (what tier-1 verification executes)
#   make bench       # DCT/codec/pipeline benchmarks with allocation reporting
#   make serve-bench # requests/sec through the HTTP batch endpoint
#   make fuzz-smoke  # short native-fuzz run of FuzzDecode/FuzzRequantize

GO ?= go
GOFMT ?= gofmt
FUZZTIME ?= 5s

.PHONY: check fmt vet build test race bench serve-bench fuzz-smoke

check: fmt vet build race fuzz-smoke

fmt:
	@out="$$($(GOFMT) -l .)" || exit 1; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Native-fuzz smoke leg: a few seconds per target over the checked-in
# corpus plus fresh mutations — catches decoder panics before CI does a
# long run. go test only allows one -fuzz pattern per invocation.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime $(FUZZTIME) ./internal/jpegcodec
	$(GO) test -run '^$$' -fuzz '^FuzzRequantize$$' -fuzztime $(FUZZTIME) ./internal/jpegcodec

bench:
	$(GO) test -run XXX -bench 'Transform|ForwardAAN|InverseAAN' -benchmem ./internal/dct
	$(GO) test -run XXX -bench 'Transform|DecodePooled|EncodeRGB420|DecodeRGB420' -benchmem ./internal/jpegcodec
	$(GO) test -run XXX -bench 'EncodeBatch|DecodeBatch|CalibrateParallel|DeepNEncodeThroughput' -benchmem ./

serve-bench:
	$(GO) test -run XXX -bench 'ServeBatchEncode|ServeEncodeSingle' -benchmem ./internal/server
