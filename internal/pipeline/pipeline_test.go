package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderPreserved(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 0, 99} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 137
			out, err := Map(context.Background(), n, workers, func(_ context.Context, i int) (int, error) {
				return i * i, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(out) != n {
				t.Fatalf("got %d results, want %d", len(out), n)
			}
			for i, v := range out {
				if v != i*i {
					t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
				}
			}
		})
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(context.Background(), 0, 4, func(_ context.Context, i int) (int, error) {
		t.Fatal("fn called for empty batch")
		return 0, nil
	})
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: out=%v err=%v", out, err)
	}
}

func TestMapPerItemErrors(t *testing.T) {
	sentinel := errors.New("boom")
	out, err := Map(context.Background(), 10, 3, func(_ context.Context, i int) (int, error) {
		if i%3 == 0 {
			return 0, fmt.Errorf("i=%d: %w", i, sentinel)
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("error %T does not unwrap to *BatchError", err)
	}
	wantFailed := []int{0, 3, 6, 9}
	if len(be.Items) != len(wantFailed) {
		t.Fatalf("got %d failed items, want %d (%v)", len(be.Items), len(wantFailed), be)
	}
	for k, it := range be.Items {
		if it.Index != wantFailed[k] {
			t.Fatalf("failed item %d has index %d, want %d (items must be sorted)", k, it.Index, wantFailed[k])
		}
	}
	if !errors.Is(err, sentinel) {
		t.Fatal("errors.Is does not reach the wrapped sentinel")
	}
	for i, v := range out {
		want := i
		if i%3 == 0 {
			want = 0 // zero value at failed slots
		}
		if v != want {
			t.Fatalf("out[%d] = %d, want %d", i, v, want)
		}
	}
}

func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	release := make(chan struct{})
	done := make(chan struct{})
	var out []int
	var err error
	go func() {
		defer close(done)
		out, err = Map(ctx, 1000, 4, func(_ context.Context, i int) (int, error) {
			if started.Add(1) == 4 {
				cancel()
			}
			<-release
			return i + 1, nil
		})
	}()
	// Let the first wave of workers claim items, then release them.
	for started.Load() < 4 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Map did not return after cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(out) != 1000 {
		t.Fatalf("got %d results, want full-length slice", len(out))
	}
	// In-flight items completed; nothing new was claimed after cancel.
	if n := started.Load(); n > 8 {
		t.Fatalf("%d items started after cancellation of a 4-worker pool", n)
	}
}

func TestMapCancelBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	_, err := Map(ctx, 50, 4, func(_ context.Context, i int) (int, error) {
		calls.Add(1)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls.Load() != 0 {
		t.Fatalf("%d items ran under a pre-canceled context", calls.Load())
	}
}

func TestMapConcurrencyBounded(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	_, err := Map(context.Background(), 64, workers, func(_ context.Context, i int) (int, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent items, want ≤ %d", p, workers)
	}
}

func TestWorkers(t *testing.T) {
	cases := []struct{ req, items, want int }{
		{0, 100, runtime.GOMAXPROCS(0)},
		{-1, 100, runtime.GOMAXPROCS(0)},
		{4, 100, 4},
		{8, 3, 3},
		{2, 0, 1},
	}
	for _, c := range cases {
		if got := Workers(c.req, c.items); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.req, c.items, got, c.want)
		}
	}
}

func TestRunAggregatesErrors(t *testing.T) {
	var sum atomic.Int64
	err := Run(context.Background(), 20, 5, func(_ context.Context, i int) error {
		if i == 7 || i == 13 {
			return fmt.Errorf("item %d failed", i)
		}
		sum.Add(int64(i))
		return nil
	})
	var be *BatchError
	if !errors.As(err, &be) || len(be.Items) != 2 {
		t.Fatalf("err = %v, want BatchError with 2 items", err)
	}
	want := int64(19*20/2 - 7 - 13)
	if sum.Load() != want {
		t.Fatalf("side effects sum = %d, want %d", sum.Load(), want)
	}
}

// TestMapSharedStateRace exercises the runner under the race detector:
// many concurrent batches sharing one results sink through proper
// synchronization must not trip -race.
func TestMapSharedStateRace(t *testing.T) {
	var wg sync.WaitGroup
	var total atomic.Int64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := Map(context.Background(), 100, 4, func(_ context.Context, i int) (int, error) {
				return 1, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			for _, v := range out {
				total.Add(int64(v))
			}
		}()
	}
	wg.Wait()
	if total.Load() != 400 {
		t.Fatalf("total = %d, want 400", total.Load())
	}
}

// TestMapWorkerSerializesPerWorker pins the contract per-worker state
// reuse relies on: worker indices stay in [0, Workers(...)), and no two
// items ever run concurrently under the same worker index.
func TestMapWorkerSerializesPerWorker(t *testing.T) {
	const n, workers = 200, 4
	var inFlight [workers]atomic.Int64
	out, err := MapWorker(context.Background(), n, workers, func(_ context.Context, w, i int) (int, error) {
		if w < 0 || w >= workers {
			t.Errorf("worker index %d out of range [0,%d)", w, workers)
		}
		if inFlight[w].Add(1) != 1 {
			t.Errorf("two items in flight on worker %d", w)
		}
		time.Sleep(time.Microsecond)
		inFlight[w].Add(-1)
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestRunWorkerAggregatesErrors(t *testing.T) {
	err := RunWorker(context.Background(), 10, 3, func(_ context.Context, w, i int) error {
		if i%4 == 0 {
			return fmt.Errorf("worker %d item %d", w, i)
		}
		return nil
	})
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("error %T is not a *BatchError", err)
	}
	if len(be.Items) != 3 { // items 0, 4, 8
		t.Fatalf("%d failed items, want 3", len(be.Items))
	}
}

func TestBatchErrorMessage(t *testing.T) {
	be := &BatchError{Items: []*ItemError{{Index: 2, Err: errors.New("x")}}}
	if got := be.Error(); got != "pipeline: 1 item failed: item 2: x" {
		t.Fatalf("unexpected message %q", got)
	}
	var many []*ItemError
	for i := 0; i < 8; i++ {
		many = append(many, &ItemError{Index: i, Err: errors.New("x")})
	}
	msg := (&BatchError{Items: many}).Error()
	if want := "… 4 more"; !contains(msg, want) {
		t.Fatalf("message %q does not truncate with %q", msg, want)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
