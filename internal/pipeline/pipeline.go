// Package pipeline provides the concurrent batch runner behind the
// DeepN-JPEG batch APIs: a fixed-size worker pool that maps a function
// over an index range with order-preserving results, per-item error
// collection, and context cancellation. The paper frames the codec as a
// storage-layer primitive invoked millions of times over IoT/data-center
// image volume; this package is what turns the one-image-at-a-time codec
// into a throughput-oriented batch engine without threading concurrency
// concerns through the codec itself.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count request: values ≤ 0 select
// runtime.GOMAXPROCS(0), and the count never exceeds the number of items
// (a pool larger than the batch only spawns idle goroutines).
func Workers(requested, items int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if items >= 0 && w > items {
		w = items
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ItemError records the failure of one batch item.
type ItemError struct {
	Index int
	Err   error
}

func (e *ItemError) Error() string { return fmt.Sprintf("item %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *ItemError) Unwrap() error { return e.Err }

// BatchError aggregates the failures of a batch run, sorted by item
// index. Items absent from the list succeeded (or were never attempted
// because the context was canceled — in that case the error returned by
// Map also matches the context error).
type BatchError struct {
	Items []*ItemError
}

func (e *BatchError) Error() string {
	if len(e.Items) == 1 {
		return "pipeline: 1 item failed: " + e.Items[0].Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "pipeline: %d items failed: ", len(e.Items))
	for i, it := range e.Items {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(it.Error())
		if i == 3 && len(e.Items) > 4 {
			fmt.Fprintf(&b, "; … %d more", len(e.Items)-4)
			break
		}
	}
	return b.String()
}

// Unwrap exposes every per-item error to errors.Is/As.
func (e *BatchError) Unwrap() []error {
	out := make([]error, len(e.Items))
	for i, it := range e.Items {
		out[i] = it
	}
	return out
}

// Map runs fn(ctx, i) for every i in [0, n) on a pool of worker
// goroutines and returns the results in item order: out[i] is fn's value
// for index i regardless of which worker computed it or when.
//
// workers ≤ 0 selects GOMAXPROCS. Map always returns a slice of length n;
// entries whose item failed (or was skipped after cancellation) hold the
// zero value. When items fail the returned error is (or wraps) a
// *BatchError listing them; when ctx is canceled mid-batch the error also
// matches ctx.Err() via errors.Is, workers stop claiming new items, and
// in-flight items run to completion.
func Map[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	return MapWorker(ctx, n, workers, func(ctx context.Context, _, i int) (T, error) {
		return fn(ctx, i)
	})
}

// MapWorker is Map for worker-aware callbacks: fn additionally receives
// the index w ∈ [0, Workers(workers, n)) of the pool goroutine running
// the item. Exactly one item is in flight per w at any time, so callers
// can give each worker its own reusable state — scratch buffers, pooled
// decoders — indexed by w, without any cross-worker synchronization.
// Size such state with Workers(workers, n), the same normalization
// MapWorker applies.
func MapWorker[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, w, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, ctx.Err()
	}
	workers = Workers(workers, n)

	var (
		next  atomic.Int64 // next unclaimed index
		mu    sync.Mutex
		items []*ItemError
		wg    sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				v, err := fn(ctx, w, i)
				if err != nil {
					mu.Lock()
					items = append(items, &ItemError{Index: i, Err: err})
					mu.Unlock()
					continue
				}
				out[i] = v
			}
		}(w)
	}
	wg.Wait()

	var batchErr error
	if len(items) > 0 {
		sort.Slice(items, func(a, b int) bool { return items[a].Index < items[b].Index })
		batchErr = &BatchError{Items: items}
	}
	if err := ctx.Err(); err != nil {
		if batchErr != nil {
			return out, errors.Join(err, batchErr)
		}
		return out, err
	}
	return out, batchErr
}

// Run is Map for side-effecting work: it executes fn(ctx, i) for every i
// in [0, n) on the worker pool and reports the aggregate error under the
// same contract as Map.
func Run(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	_, err := Map(ctx, n, workers, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}

// RunWorker is Run with worker-aware callbacks, under the same per-worker
// serialization guarantee as MapWorker.
func RunWorker(ctx context.Context, n, workers int, fn func(ctx context.Context, w, i int) error) error {
	_, err := MapWorker(ctx, n, workers, func(ctx context.Context, w, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, w, i)
	})
	return err
}
