package bitio

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteBitsBasic(t *testing.T) {
	var buf bytes.Buffer
	w := NewRawWriter(&buf)
	// 0b1010_1010 = 0xAA, written as 4+4 bits.
	if err := w.WriteBits(0b1010, 4); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBits(0b1010, 4); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := buf.Bytes(); len(got) != 1 || got[0] != 0xAA {
		t.Fatalf("got % X, want AA", got)
	}
}

func TestFlushPadsWithOnes(t *testing.T) {
	var buf bytes.Buffer
	w := NewRawWriter(&buf)
	if err := w.WriteBits(0, 3); err != nil { // 000 then pad 11111
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := buf.Bytes(); len(got) != 1 || got[0] != 0x1F {
		t.Fatalf("got % X, want 1F", got)
	}
}

func TestByteStuffing(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteBits(0xFF, 8); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBits(0x12, 8); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	want := []byte{0xFF, 0x00, 0x12}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("got % X, want % X", buf.Bytes(), want)
	}
	if w.BytesWritten() != 3 {
		t.Fatalf("BytesWritten = %d, want 3", w.BytesWritten())
	}
}

func TestReaderUnstuffs(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte{0xFF, 0x00, 0x12}))
	v, err := r.ReadBits(8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xFF {
		t.Fatalf("first byte = %#x, want 0xFF", v)
	}
	v, err = r.ReadBits(8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x12 {
		t.Fatalf("second byte = %#x, want 0x12", v)
	}
}

func TestReaderStopsAtMarker(t *testing.T) {
	// Data byte, then an EOI marker (FF D9).
	r := NewReader(bytes.NewReader([]byte{0xAB, 0xFF, 0xD9}))
	if v, err := r.ReadBits(8); err != nil || v != 0xAB {
		t.Fatalf("ReadBits = %#x, %v", v, err)
	}
	_, err := r.ReadBits(8)
	if !errors.Is(err, ErrMarker) {
		t.Fatalf("err = %v, want ErrMarker", err)
	}
	if r.Marker() != 0xD9 {
		t.Fatalf("Marker = %#x, want 0xD9", r.Marker())
	}
}

func TestReaderSkipsFillBytes(t *testing.T) {
	// FF FF FF D9: run of fill bytes then EOI.
	r := NewReader(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xD9}))
	_, err := r.ReadBits(1)
	if !errors.Is(err, ErrMarker) {
		t.Fatalf("err = %v, want ErrMarker", err)
	}
	if r.Marker() != 0xD9 {
		t.Fatalf("Marker = %#x, want 0xD9", r.Marker())
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewRawReader(bytes.NewReader([]byte{0xA0}))
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBits(1); !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

func TestWriteBitsRejectsWideWrites(t *testing.T) {
	w := NewRawWriter(&bytes.Buffer{})
	if err := w.WriteBits(0, 25); err == nil {
		t.Fatal("expected error for 25-bit write")
	}
	r := NewRawReader(bytes.NewReader(nil))
	if _, err := r.ReadBits(25); err == nil {
		t.Fatal("expected error for 25-bit read")
	}
}

func TestAlign(t *testing.T) {
	r := NewRawReader(bytes.NewReader([]byte{0xF0, 0x0F}))
	if v, _ := r.ReadBits(4); v != 0xF {
		t.Fatalf("got %#x", v)
	}
	r.Align()
	if v, _ := r.ReadBits(8); v != 0x0F {
		t.Fatalf("after Align got %#x, want 0x0F", v)
	}
}

// TestRoundTripRandom writes random bit groups and reads them back,
// exercising stuffing on random data.
func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var widths []uint
		var values []uint32
		total := uint(0)
		for i := 0; i < 200; i++ {
			n := uint(rng.Intn(24) + 1)
			widths = append(widths, n)
			values = append(values, rng.Uint32()&((1<<n)-1))
			total += n
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for i, n := range widths {
			if err := w.WriteBits(values[i], n); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r := NewReader(bytes.NewReader(buf.Bytes()))
		for i, n := range widths {
			v, err := r.ReadBits(n)
			if err != nil {
				t.Fatalf("trial %d read %d: %v", trial, i, err)
			}
			if v != values[i] {
				t.Fatalf("trial %d group %d: got %#x want %#x (width %d)", trial, i, v, values[i], n)
			}
		}
	}
}

// Property: for any byte sequence, writing it through a stuffing writer and
// reading through a stuffing reader is the identity.
func TestPropertyStuffRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, b := range data {
			if err := w.WriteBits(uint32(b), 8); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r := NewReader(bytes.NewReader(buf.Bytes()))
		for _, b := range data {
			v, err := r.ReadBits(8)
			if err != nil || v != uint32(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: stuffed output never contains 0xFF followed by a byte that is
// neither 0x00 nor another 0xFF (i.e. never forges a marker).
func TestPropertyNoForgedMarkers(t *testing.T) {
	f := func(data []byte) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, b := range data {
			if err := w.WriteBits(uint32(b), 8); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		out := buf.Bytes()
		for i := 0; i+1 < len(out); i++ {
			if out[i] == 0xFF && out[i+1] != 0x00 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Pad+Bytes yields exactly the byte sequence Flush would have
// written, including stuffed bytes — the contract the sharded encoder
// relies on when it stitches segment buffers between restart markers.
func TestPropertyPadBytesMatchesFlush(t *testing.T) {
	f := func(data []byte, tail uint8) bool {
		nTail := uint(tail % 8) // 0..7 trailing bits forcing a partial byte
		var buf bytes.Buffer
		flushed := NewWriter(&buf)
		padded := NewWriter(io.Discard)
		for _, b := range data {
			if err := flushed.WriteBits(uint32(b), 8); err != nil {
				return false
			}
			if err := padded.WriteBits(uint32(b), 8); err != nil {
				return false
			}
		}
		if nTail > 0 {
			v := uint32(tail) & ((1 << nTail) - 1)
			if err := flushed.WriteBits(v, nTail); err != nil {
				return false
			}
			if err := padded.WriteBits(v, nTail); err != nil {
				return false
			}
		}
		if err := flushed.Flush(); err != nil {
			return false
		}
		padded.Pad()
		return bytes.Equal(buf.Bytes(), padded.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPadStuffsPaddedByte(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.WriteBits(0x7F, 7); err != nil { // 1111111 + pad 1 → 0xFF
		t.Fatal(err)
	}
	w.Pad()
	if got := w.Bytes(); !bytes.Equal(got, []byte{0xFF, 0x00}) {
		t.Fatalf("got % X, want FF 00", got)
	}
}

func TestPadOnByteBoundaryIsNoop(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.WriteBits(0xAB, 8); err != nil {
		t.Fatal(err)
	}
	w.Pad()
	w.Pad()
	if got := w.Bytes(); !bytes.Equal(got, []byte{0xAB}) {
		t.Fatalf("got % X, want AB", got)
	}
}

func TestResetBytesReadsSlice(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	r.ResetBytes([]byte{0xFF, 0x00, 0x12}) // stuffed 0xFF then 0x12
	if v, err := r.ReadBits(8); err != nil || v != 0xFF {
		t.Fatalf("got %#x, %v; want 0xFF", v, err)
	}
	if v, err := r.ReadBits(8); err != nil || v != 0x12 {
		t.Fatalf("got %#x, %v; want 0x12", v, err)
	}
	if _, err := r.ReadBits(1); err != io.EOF {
		t.Fatalf("got %v, want io.EOF", err)
	}
}

func TestResetBytesClearsPendingMarker(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte{0xFF, 0xD0}))
	if _, err := r.ReadBits(8); !errors.Is(err, ErrMarker) {
		t.Fatalf("got %v, want ErrMarker", err)
	}
	r.ResetBytes([]byte{0x42})
	if v, err := r.ReadBits(8); err != nil || v != 0x42 {
		t.Fatalf("got %#x, %v; want 0x42", v, err)
	}
}

func TestExhausted(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))

	// Not in ResetBytes mode: never exhausted.
	r.Reset(bytes.NewReader(nil))
	if r.Exhausted() {
		t.Fatal("Exhausted true for a non-ResetBytes reader")
	}

	// Fully consumed slice with only padding bits left.
	r.ResetBytes([]byte{0xA5})
	if _, err := r.ReadBits(5); err != nil {
		t.Fatal(err)
	}
	if !r.Exhausted() {
		t.Fatal("Exhausted false with 3 padding bits left")
	}

	// Whole unread byte buffered: not exhausted.
	r.ResetBytes([]byte{0xA5, 0x5A})
	if _, err := r.ReadBits(5); err != nil {
		t.Fatal(err)
	}
	if r.Exhausted() {
		t.Fatal("Exhausted true with a whole unread byte buffered")
	}
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if !r.Exhausted() {
		t.Fatal("Exhausted false after consuming all whole bytes")
	}

	// Unread bytes still in the slice: not exhausted.
	r.ResetBytes([]byte{0x01, 0x02})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if r.Exhausted() {
		t.Fatal("Exhausted true with an unread slice byte")
	}

	// A marker inside the segment keeps it from counting as exhausted.
	r.ResetBytes([]byte{0xFF, 0xD3})
	if _, err := r.ReadBits(8); !errors.Is(err, ErrMarker) {
		t.Fatalf("got %v, want ErrMarker", err)
	}
	if r.Exhausted() {
		t.Fatal("Exhausted true with a pending marker")
	}
}

func BenchmarkWriteBits(b *testing.B) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := w.WriteBits(uint32(i)&0x3FF, 10); err != nil {
			b.Fatal(err)
		}
		if buf.Len() > 1<<20 {
			buf.Reset()
		}
	}
}

func BenchmarkReadBits(b *testing.B) {
	data := make([]byte, 1<<16)
	rng := rand.New(rand.NewSource(1))
	rng.Read(data)
	// Pre-stuff the data so the reader sees a valid stream.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, d := range data {
		w.WriteBits(uint32(d), 8)
	}
	w.Flush()
	stream := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	r := NewReader(bytes.NewReader(stream))
	for i := 0; i < b.N; i++ {
		if _, err := r.ReadBits(10); err != nil {
			r = NewReader(bytes.NewReader(stream))
		}
	}
}
