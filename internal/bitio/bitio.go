// Package bitio provides MSB-first bit-level readers and writers with the
// byte-stuffing semantics required by JPEG entropy-coded segments.
//
// JPEG entropy-coded data is a big-endian bit stream in which any 0xFF byte
// produced by the coder must be followed by a stuffed 0x00 byte so that
// decoders can distinguish data from marker prefixes (ITU-T T.81 §B.1.1.5).
// Writer performs that stuffing transparently; Reader removes it and stops
// cleanly at the first marker it encounters.
package bitio

import (
	"errors"
	"fmt"
	"io"
)

// ErrMarker is returned by Reader when the underlying stream reaches a JPEG
// marker (0xFF followed by a non-zero, non-fill byte) instead of more
// entropy-coded data.
var ErrMarker = errors.New("bitio: encountered JPEG marker in entropy data")

// Writer accumulates bits MSB-first and flushes them to an io.Writer.
// The zero value is not usable; construct with NewWriter.
type Writer struct {
	w     io.Writer
	acc   uint32 // bit accumulator, bits occupy the low `nacc` positions
	nacc  uint   // number of valid bits in acc
	stuff bool   // insert 0x00 after every 0xFF data byte
	buf   []byte // pending output bytes
	n     int64  // total bytes written (including stuffed bytes)
}

// NewWriter returns a Writer that performs JPEG byte stuffing.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, stuff: true, buf: make([]byte, 0, 4096)}
}

// NewRawWriter returns a Writer without byte stuffing, for generic
// MSB-first bit packing outside entropy-coded segments.
func NewRawWriter(w io.Writer) *Writer {
	return &Writer{w: w, stuff: false, buf: make([]byte, 0, 4096)}
}

// Reset discards all buffered state and redirects the Writer to w,
// keeping the allocated output buffer. It lets callers pool Writers
// across encodes; the stuffing mode is preserved.
func (bw *Writer) Reset(w io.Writer) {
	bw.w = w
	bw.acc = 0
	bw.nacc = 0
	bw.buf = bw.buf[:0]
	bw.n = 0
}

// WriteBits appends the low n bits of v to the stream, most significant bit
// first. n must be in [0, 24]; larger writes must be split by the caller.
func (bw *Writer) WriteBits(v uint32, n uint) error {
	if n > 24 {
		return fmt.Errorf("bitio: WriteBits length %d exceeds 24", n)
	}
	if n == 0 {
		return nil
	}
	v &= (1 << n) - 1
	bw.acc = bw.acc<<n | v
	bw.nacc += n
	for bw.nacc >= 8 {
		bw.nacc -= 8
		b := byte(bw.acc >> bw.nacc)
		bw.emit(b)
	}
	return nil
}

func (bw *Writer) emit(b byte) {
	bw.buf = append(bw.buf, b)
	bw.n++
	if bw.stuff && b == 0xFF {
		bw.buf = append(bw.buf, 0x00)
		bw.n++
	}
}

// Pad completes the final partial byte with 1-bits (the JPEG convention,
// which makes padding decode as a fill prefix of a marker) without
// flushing, so a segment encoder can take the finished bytes with Bytes
// and stitch them between restart markers itself.
func (bw *Writer) Pad() {
	if bw.nacc > 0 {
		pad := 8 - bw.nacc
		bw.acc = bw.acc<<pad | ((1 << pad) - 1)
		bw.nacc = 0
		bw.emit(byte(bw.acc))
	}
}

// Bytes returns the pending output bytes accumulated since the last Reset
// or Flush. The slice aliases the Writer's internal buffer and is
// invalidated by the next WriteBits, Pad, Flush or Reset.
func (bw *Writer) Bytes() []byte { return bw.buf }

// Flush pads the final partial byte with 1-bits and writes all pending
// bytes to the underlying writer.
func (bw *Writer) Flush() error {
	bw.Pad()
	if len(bw.buf) > 0 {
		if _, err := bw.w.Write(bw.buf); err != nil {
			return err
		}
		bw.buf = bw.buf[:0]
	}
	return nil
}

// BytesWritten reports the number of bytes emitted so far, including
// stuffed 0x00 bytes but excluding bits still held in the accumulator.
func (bw *Writer) BytesWritten() int64 { return bw.n }

// Reader consumes an MSB-first bit stream, removing JPEG byte stuffing.
// The zero value is not usable; construct with NewReader.
type Reader struct {
	r      io.ByteReader
	acc    uint32
	nacc   uint
	stuff  bool
	marker byte        // pending marker code once ErrMarker has been returned
	sr     sliceReader // built-in source for ResetBytes
}

// sliceReader is the Reader's built-in byte source for ResetBytes: a
// cursor over a caller-owned slice, so segment-bounded reading costs no
// bytes.Reader allocation per segment.
type sliceReader struct {
	b []byte
	i int
}

func (sr *sliceReader) ReadByte() (byte, error) {
	if sr.i >= len(sr.b) {
		return 0, io.EOF
	}
	b := sr.b[sr.i]
	sr.i++
	return b, nil
}

// NewReader returns a Reader that removes JPEG byte stuffing and stops at
// markers.
func NewReader(r io.ByteReader) *Reader {
	return &Reader{r: r, stuff: true}
}

// NewRawReader returns a Reader without stuffing semantics.
func NewRawReader(r io.ByteReader) *Reader {
	return &Reader{r: r, stuff: false}
}

// Reset discards all buffered bits and any pending marker and redirects
// the Reader to r, keeping the stuffing mode. It lets callers pool
// Readers across entropy-coded segments.
func (br *Reader) Reset(r io.ByteReader) {
	br.r = r
	br.acc = 0
	br.nacc = 0
	br.marker = 0
	br.sr = sliceReader{}
}

// ResetBytes is Reset reading from a byte slice through the Reader's
// internal cursor. It is the segment-bounded mode sharded decoding uses:
// one restart segment per ResetBytes, no per-segment allocation, and
// Exhausted reports whether the segment was consumed completely.
func (br *Reader) ResetBytes(b []byte) {
	br.acc = 0
	br.nacc = 0
	br.marker = 0
	br.sr = sliceReader{b: b}
	br.r = &br.sr
}

// Exhausted reports whether a ResetBytes Reader has consumed its whole
// slice with fewer than 8 buffered bits remaining — i.e. nothing is left
// but (at most) the final byte's padding bits. A restart segment that
// finishes its MCU quota while whole bytes remain holds trailing data a
// sequential decoder would trip over at the next marker, so sharded
// decoding uses this as its segment-completeness check. Only meaningful
// after ResetBytes.
func (br *Reader) Exhausted() bool {
	return br.r == &br.sr && br.sr.i == len(br.sr.b) && br.nacc < 8 && br.marker == 0
}

// ReadBits reads n bits (n ≤ 24) MSB-first and returns them in the low bits
// of the result. It returns ErrMarker when a JPEG marker interrupts the
// stream and io.EOF at end of input.
func (br *Reader) ReadBits(n uint) (uint32, error) {
	if n > 24 {
		return 0, fmt.Errorf("bitio: ReadBits length %d exceeds 24", n)
	}
	for br.nacc < n {
		b, err := br.nextByte()
		if err != nil {
			return 0, err
		}
		br.acc = br.acc<<8 | uint32(b)
		br.nacc += 8
	}
	br.nacc -= n
	v := (br.acc >> br.nacc) & ((1 << n) - 1)
	return v, nil
}

// ReadBit reads a single bit.
func (br *Reader) ReadBit() (uint32, error) { return br.ReadBits(1) }

func (br *Reader) nextByte() (byte, error) {
	b, err := br.r.ReadByte()
	if err != nil {
		return 0, err
	}
	if !br.stuff || b != 0xFF {
		return b, nil
	}
	// 0xFF: inspect the next byte to distinguish stuffed data from markers.
	b2, err := br.r.ReadByte()
	if err != nil {
		return 0, err
	}
	switch {
	case b2 == 0x00:
		return 0xFF, nil // stuffed data byte
	case b2 == 0xFF:
		// Fill byte; keep scanning. (T.81 allows runs of 0xFF fill.)
		for b2 == 0xFF {
			b2, err = br.r.ReadByte()
			if err != nil {
				return 0, err
			}
		}
		if b2 == 0x00 {
			return 0xFF, nil
		}
		br.marker = b2
		return 0, ErrMarker
	default:
		br.marker = b2
		return 0, ErrMarker
	}
}

// Marker returns the marker code (the byte following 0xFF) that terminated
// the stream, valid only after ReadBits returned ErrMarker.
func (br *Reader) Marker() byte { return br.marker }

// Align discards buffered bits so that subsequent reads start at the next
// byte boundary.
func (br *Reader) Align() { br.nacc = 0; br.acc = 0 }

// ReadMarker aligns to a byte boundary and consumes the next JPEG marker,
// returning its code. If a previous ReadBits already ran into a marker
// (ErrMarker), that pending marker is returned without consuming input.
func (br *Reader) ReadMarker() (byte, error) {
	br.Align()
	if br.marker != 0 {
		m := br.marker
		br.marker = 0
		return m, nil
	}
	b, err := br.r.ReadByte()
	if err != nil {
		return 0, err
	}
	if b != 0xFF {
		return 0, fmt.Errorf("bitio: expected marker, found byte %#02x", b)
	}
	for b == 0xFF {
		b, err = br.r.ReadByte()
		if err != nil {
			return 0, err
		}
	}
	if b == 0x00 {
		return 0, errors.New("bitio: stuffed byte where marker expected")
	}
	return b, nil
}
