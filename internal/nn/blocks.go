package nn

import (
	"fmt"
	"math/rand"
)

// Parallel runs branches on the same input and concatenates their outputs
// along the channel axis — the structure of a GoogLeNet inception module.
// Every branch must preserve the spatial dimensions.
type Parallel struct {
	name     string
	Branches []Layer
	splits   []int // output channels per branch, recorded at forward
	inShape  []int
}

// NewParallel builds a channel-concatenating branch block.
func NewParallel(name string, branches ...Layer) *Parallel {
	return &Parallel{name: name, Branches: branches}
}

// Name implements Layer.
func (p *Parallel) Name() string { return p.name }

// Params implements Layer.
func (p *Parallel) Params() []*Param {
	var ps []*Param
	for _, b := range p.Branches {
		ps = append(ps, b.Params()...)
	}
	return ps
}

// OutputShape implements Layer.
func (p *Parallel) OutputShape(in []int) ([]int, error) {
	totalC := 0
	var hw [2]int
	for i, b := range p.Branches {
		out, err := b.OutputShape(in)
		if err != nil {
			return nil, err
		}
		if len(out) != 3 {
			return nil, fmt.Errorf("parallel branch %d output %v not CHW", i, out)
		}
		if i == 0 {
			hw = [2]int{out[1], out[2]}
		} else if out[1] != hw[0] || out[2] != hw[1] {
			return nil, fmt.Errorf("parallel branch %d spatial %dx%d mismatches %dx%d", i, out[1], out[2], hw[0], hw[1])
		}
		totalC += out[0]
	}
	return []int{totalC, hw[0], hw[1]}, nil
}

// MACs implements Layer.
func (p *Parallel) MACs(in []int) int64 {
	var total int64
	for _, b := range p.Branches {
		total += b.MACs(in)
	}
	return total
}

// Forward implements Layer.
func (p *Parallel) Forward(x *Tensor, train bool) *Tensor {
	p.inShape = x.Shape
	n := x.Dim(0)
	outs := make([]*Tensor, len(p.Branches))
	p.splits = p.splits[:0]
	totalC, oh, ow := 0, 0, 0
	for i, b := range p.Branches {
		outs[i] = b.Forward(x, train)
		p.splits = append(p.splits, outs[i].Dim(1))
		totalC += outs[i].Dim(1)
		oh, ow = outs[i].Dim(2), outs[i].Dim(3)
	}
	out := NewTensor(n, totalC, oh, ow)
	plane := oh * ow
	for s := 0; s < n; s++ {
		off := 0
		for i, o := range outs {
			c := p.splits[i]
			src := o.Data[s*c*plane : (s+1)*c*plane]
			dst := out.Data[(s*totalC+off)*plane : (s*totalC+off+c)*plane]
			copy(dst, src)
			off += c
		}
	}
	return out
}

// Backward implements Layer.
func (p *Parallel) Backward(dout *Tensor) *Tensor {
	n := dout.Dim(0)
	totalC, oh, ow := dout.Dim(1), dout.Dim(2), dout.Dim(3)
	plane := oh * ow
	dx := NewTensor(p.inShape...)
	off := 0
	for i, b := range p.Branches {
		c := p.splits[i]
		dslice := NewTensor(n, c, oh, ow)
		for s := 0; s < n; s++ {
			src := dout.Data[(s*totalC+off)*plane : (s*totalC+off+c)*plane]
			copy(dslice.Data[s*c*plane:(s+1)*c*plane], src)
		}
		dxi := b.Backward(dslice)
		dx.AddScaled(dxi, 1)
		off += c
	}
	return dx
}

// Residual computes ReLU(body(x) + shortcut(x)) — a ResNet basic block.
// A nil shortcut is the identity; downsampling blocks pass a 1×1
// strided convolution.
type Residual struct {
	name     string
	Body     Layer
	Shortcut Layer // nil = identity
	relu     *ReLU
	lastIn   *Tensor
}

// NewResidual builds a residual block.
func NewResidual(name string, body, shortcut Layer) *Residual {
	return &Residual{name: name, Body: body, Shortcut: shortcut, relu: NewReLU(name + ".relu")}
}

// Name implements Layer.
func (r *Residual) Name() string { return r.name }

// Params implements Layer.
func (r *Residual) Params() []*Param {
	ps := r.Body.Params()
	if r.Shortcut != nil {
		ps = append(ps, r.Shortcut.Params()...)
	}
	return ps
}

// OutputShape implements Layer.
func (r *Residual) OutputShape(in []int) ([]int, error) {
	bodyOut, err := r.Body.OutputShape(in)
	if err != nil {
		return nil, err
	}
	scOut := in
	if r.Shortcut != nil {
		scOut, err = r.Shortcut.OutputShape(in)
		if err != nil {
			return nil, err
		}
	}
	if len(bodyOut) != len(scOut) {
		return nil, fmt.Errorf("residual rank mismatch %v vs %v", bodyOut, scOut)
	}
	for i := range bodyOut {
		if bodyOut[i] != scOut[i] {
			return nil, fmt.Errorf("residual shape mismatch %v vs %v", bodyOut, scOut)
		}
	}
	return bodyOut, nil
}

// MACs implements Layer.
func (r *Residual) MACs(in []int) int64 {
	total := r.Body.MACs(in)
	if r.Shortcut != nil {
		total += r.Shortcut.MACs(in)
	}
	return total
}

// Forward implements Layer.
func (r *Residual) Forward(x *Tensor, train bool) *Tensor {
	r.lastIn = x
	sum := r.Body.Forward(x, train).Clone()
	if r.Shortcut != nil {
		sum.AddScaled(r.Shortcut.Forward(x, train), 1)
	} else {
		sum.AddScaled(x, 1)
	}
	return r.relu.Forward(sum, train)
}

// Backward implements Layer.
func (r *Residual) Backward(dout *Tensor) *Tensor {
	dsum := r.relu.Backward(dout)
	dx := r.Body.Backward(dsum)
	if r.Shortcut != nil {
		dx.AddScaled(r.Shortcut.Backward(dsum), 1)
	} else {
		dx.AddScaled(dsum, 1)
	}
	return dx
}

// ConvBNReLU is the ubiquitous conv → batch-norm → ReLU unit.
func ConvBNReLU(name string, inC, outC, kernel, stride, pad int, rng *rand.Rand) Layer {
	return NewSequential(name,
		NewConv2D(name+".conv", inC, outC, kernel, stride, pad, rng),
		NewBatchNorm2D(name+".bn", outC),
		NewReLU(name+".relu"),
	)
}
