package nn

import (
	"fmt"
	"math"
)

// BatchNorm2D normalizes each channel over the batch and spatial
// dimensions, with learned scale/shift and running statistics for
// inference (Ioffe & Szegedy 2015).
type BatchNorm2D struct {
	name     string
	C        int
	Eps      float64
	Momentum float64 // running-stat update rate

	Gamma, Beta             *Param
	RunningMean, RunningVar *Tensor

	// caches for backward
	lastXHat []float32
	lastStd  []float32 // per channel, batch std
	inShape  []int
}

// NewBatchNorm2D builds a batch-norm layer for c channels.
func NewBatchNorm2D(name string, c int) *BatchNorm2D {
	b := &BatchNorm2D{
		name: name, C: c, Eps: 1e-5, Momentum: 0.1,
		Gamma:       newParam(name+".gamma", c),
		Beta:        newParam(name+".beta", c),
		RunningMean: NewTensor(c),
		RunningVar:  NewTensor(c),
	}
	for i := 0; i < c; i++ {
		b.Gamma.Data.Data[i] = 1
		b.RunningVar.Data[i] = 1
	}
	return b
}

// Name implements Layer.
func (b *BatchNorm2D) Name() string { return b.name }

// Params implements Layer.
func (b *BatchNorm2D) Params() []*Param { return []*Param{b.Gamma, b.Beta} }

// OutputShape implements Layer.
func (b *BatchNorm2D) OutputShape(in []int) ([]int, error) {
	if len(in) != 3 || in[0] != b.C {
		return nil, fmt.Errorf("batchnorm expects %d-channel CHW, got %v", b.C, in)
	}
	return in, nil
}

// MACs implements Layer.
func (b *BatchNorm2D) MACs(in []int) int64 { return 0 }

// Forward implements Layer.
func (b *BatchNorm2D) Forward(x *Tensor, train bool) *Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if c != b.C {
		panic(fmt.Sprintf("%s: %d channels, want %d", b.name, c, b.C))
	}
	b.inShape = x.Shape
	out := NewTensor(x.Shape...)
	plane := h * w
	count := n * plane

	if cap(b.lastXHat) < len(x.Data) {
		b.lastXHat = make([]float32, len(x.Data))
	}
	b.lastXHat = b.lastXHat[:len(x.Data)]
	if cap(b.lastStd) < c {
		b.lastStd = make([]float32, c)
	}
	b.lastStd = b.lastStd[:c]

	for ch := 0; ch < c; ch++ {
		var mean, variance float64
		if train {
			var s float64
			for i := 0; i < n; i++ {
				base := (i*c + ch) * plane
				for j := 0; j < plane; j++ {
					s += float64(x.Data[base+j])
				}
			}
			mean = s / float64(count)
			var v float64
			for i := 0; i < n; i++ {
				base := (i*c + ch) * plane
				for j := 0; j < plane; j++ {
					d := float64(x.Data[base+j]) - mean
					v += d * d
				}
			}
			variance = v / float64(count)
			m := b.Momentum
			b.RunningMean.Data[ch] = float32((1-m)*float64(b.RunningMean.Data[ch]) + m*mean)
			b.RunningVar.Data[ch] = float32((1-m)*float64(b.RunningVar.Data[ch]) + m*variance)
		} else {
			mean = float64(b.RunningMean.Data[ch])
			variance = float64(b.RunningVar.Data[ch])
		}
		std := math.Sqrt(variance + b.Eps)
		b.lastStd[ch] = float32(std)
		g := b.Gamma.Data.Data[ch]
		bt := b.Beta.Data.Data[ch]
		invStd := float32(1 / std)
		m32 := float32(mean)
		for i := 0; i < n; i++ {
			base := (i*c + ch) * plane
			for j := 0; j < plane; j++ {
				xh := (x.Data[base+j] - m32) * invStd
				b.lastXHat[base+j] = xh
				out.Data[base+j] = g*xh + bt
			}
		}
	}
	return out
}

// Backward implements Layer (batch statistics path).
func (b *BatchNorm2D) Backward(dout *Tensor) *Tensor {
	n, c, h, w := b.inShape[0], b.inShape[1], b.inShape[2], b.inShape[3]
	plane := h * w
	count := float32(n * plane)
	dx := NewTensor(b.inShape...)

	for ch := 0; ch < c; ch++ {
		var sumDy, sumDyXh float32
		for i := 0; i < n; i++ {
			base := (i*c + ch) * plane
			for j := 0; j < plane; j++ {
				dy := dout.Data[base+j]
				sumDy += dy
				sumDyXh += dy * b.lastXHat[base+j]
			}
		}
		b.Beta.Grad.Data[ch] += sumDy
		b.Gamma.Grad.Data[ch] += sumDyXh
		g := b.Gamma.Data.Data[ch]
		invStd := 1 / b.lastStd[ch]
		for i := 0; i < n; i++ {
			base := (i*c + ch) * plane
			for j := 0; j < plane; j++ {
				dy := dout.Data[base+j]
				xh := b.lastXHat[base+j]
				dx.Data[base+j] = g * invStd / count * (count*dy - sumDy - xh*sumDyXh)
			}
		}
	}
	return dx
}
