package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestAdamFirstStepIsSignedLR(t *testing.T) {
	// With bias correction, the very first Adam step is ≈ −lr·sign(g).
	p := newParam("w", 2)
	p.Grad.Data[0] = 0.5
	p.Grad.Data[1] = -2
	opt := NewAdam(0.01, 0)
	opt.Step([]*Param{p})
	if math.Abs(float64(p.Data.Data[0])+0.01) > 1e-4 {
		t.Fatalf("w0 = %g, want ≈ −0.01", p.Data.Data[0])
	}
	if math.Abs(float64(p.Data.Data[1])-0.01) > 1e-4 {
		t.Fatalf("w1 = %g, want ≈ +0.01", p.Data.Data[1])
	}
	if p.Grad.Data[0] != 0 {
		t.Fatal("gradient not cleared")
	}
}

func TestAdamWeightDecayPullsTowardZero(t *testing.T) {
	p := newParam("w", 1)
	p.Data.Data[0] = 5
	opt := NewAdam(0.1, 0.1)
	for i := 0; i < 50; i++ {
		opt.Step([]*Param{p}) // zero loss gradient; only decay acts
	}
	if v := float64(p.Data.Data[0]); v >= 5 || v < 0 {
		t.Fatalf("weight %g did not shrink sensibly", v)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize (w−3)² by feeding grad = 2(w−3).
	p := newParam("w", 1)
	opt := NewAdam(0.1, 0)
	for i := 0; i < 500; i++ {
		p.Grad.Data[0] = 2 * (p.Data.Data[0] - 3)
		opt.Step([]*Param{p})
	}
	if math.Abs(float64(p.Data.Data[0])-3) > 0.05 {
		t.Fatalf("w = %g, want ≈ 3", p.Data.Data[0])
	}
}

func TestTrainWithAdamLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	net := NewSequential("tiny",
		NewConv2D("c1", 1, 4, 3, 1, 1, rng),
		NewReLU("r1"),
		NewMaxPool2("p1"),
		NewDense("fc", 4*4*4, 2, rng),
	)
	model := NewModel(net)
	train := makeBlobs(64, 10)
	test := makeBlobs(32, 11)
	losses := model.TrainWith(train, TrainConfig{Epochs: 6, BatchSize: 16, Seed: 12}, NewAdam(0.005, 0))
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("Adam loss did not decrease: %v", losses)
	}
	if acc := model.Accuracy(test); acc < 0.9 {
		t.Fatalf("Adam accuracy %.2f", acc)
	}
}

func TestTrainWithMatchesTrainUnderSGD(t *testing.T) {
	build := func() *Model {
		rng := rand.New(rand.NewSource(31))
		return NewModel(NewDense("fc", 64, 2, rng))
	}
	cfg := TrainConfig{Epochs: 3, BatchSize: 8, LR: 0.05, Momentum: 0.9, Seed: 13}
	a := build()
	lossesA := a.Train(makeBlobs(32, 12), cfg)
	b := build()
	lossesB := b.TrainWith(makeBlobs(32, 12), cfg, NewSGD(cfg.LR, cfg.Momentum, cfg.WeightDecay))
	for i := range lossesA {
		if lossesA[i] != lossesB[i] {
			t.Fatalf("TrainWith(SGD) diverges from Train: %v vs %v", lossesA, lossesB)
		}
	}
}
