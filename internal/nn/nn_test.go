package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTensorBasics(t *testing.T) {
	x := NewTensor(2, 3)
	if x.Len() != 6 || x.Dim(0) != 2 || x.Dim(1) != 3 {
		t.Fatalf("tensor metadata wrong: %+v", x)
	}
	x.Data[5] = 7
	y := x.Clone()
	y.Data[5] = 9
	if x.Data[5] != 7 {
		t.Fatal("Clone aliases data")
	}
	r := x.Reshape(3, 2)
	if r.Dim(0) != 3 || &r.Data[0] != &x.Data[0] {
		t.Fatal("Reshape should alias data with new shape")
	}
	x.Zero()
	if x.Data[5] != 0 {
		t.Fatal("Zero failed")
	}
}

func TestTensorReshapePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTensor(2, 3).Reshape(4)
}

func TestAddScaled(t *testing.T) {
	a := NewTensor(3)
	b := NewTensor(3)
	for i := range b.Data {
		b.Data[i] = float32(i + 1)
	}
	a.AddScaled(b, 2)
	if a.Data[2] != 6 {
		t.Fatalf("AddScaled got %v", a.Data)
	}
}

// matRef is a naive reference matmul for the GEMM tests.
func matRef(a, b []float32, m, k, n int) []float32 {
	c := make([]float32, m*n)
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			for j := 0; j < n; j++ {
				c[i*n+j] += a[i*k+p] * b[p*n+j]
			}
		}
	}
	return c
}

func TestGEMMVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		m, k, n := rng.Intn(17)+1, rng.Intn(17)+1, rng.Intn(17)+1
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		for i := range a {
			a[i] = float32(rng.NormFloat64())
		}
		for i := range b {
			b[i] = float32(rng.NormFloat64())
		}
		want := matRef(a, b, m, k, n)

		got := make([]float32, m*n)
		gemm(a, b, got, m, k, n)
		// Aᵀ stored: at[p*m+i] = a[i*k+p]
		at := make([]float32, k*m)
		for i := 0; i < m; i++ {
			for p := 0; p < k; p++ {
				at[p*m+i] = a[i*k+p]
			}
		}
		gotTN := make([]float32, m*n)
		gemmTN(at, b, gotTN, m, k, n)
		// Bᵀ stored: bt[j*k+p] = b[p*n+j]
		bt := make([]float32, n*k)
		for p := 0; p < k; p++ {
			for j := 0; j < n; j++ {
				bt[j*k+p] = b[p*n+j]
			}
		}
		gotNT := make([]float32, m*n)
		gemmNT(a, bt, gotNT, m, k, n)

		for i := range want {
			for name, g := range map[string][]float32{"gemm": got, "gemmTN": gotTN, "gemmNT": gotNT} {
				if math.Abs(float64(g[i]-want[i])) > 1e-3 {
					t.Fatalf("trial %d %s[%d] = %g, want %g", trial, name, i, g[i], want[i])
				}
			}
		}
	}
}

func TestGEMMParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Big enough to trigger the parallel path.
	m, k, n := 64, 64, 64
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	for i := range a {
		a[i] = float32(rng.NormFloat64())
	}
	for i := range b {
		b[i] = float32(rng.NormFloat64())
	}
	got := make([]float32, m*n)
	gemm(a, b, got, m, k, n)
	want := matRef(a, b, m, k, n)
	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > 1e-2 {
			t.Fatalf("parallel gemm[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestOutputShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	conv := NewConv2D("c", 3, 8, 3, 1, 1, rng)
	shape, err := conv.OutputShape([]int{3, 32, 32})
	if err != nil || shape[0] != 8 || shape[1] != 32 || shape[2] != 32 {
		t.Fatalf("conv shape %v, %v", shape, err)
	}
	strided := NewConv2D("c2", 3, 8, 3, 2, 1, rng)
	shape, err = strided.OutputShape([]int{3, 32, 32})
	if err != nil || shape[1] != 16 {
		t.Fatalf("strided shape %v, %v", shape, err)
	}
	if _, err := conv.OutputShape([]int{4, 32, 32}); err == nil {
		t.Fatal("wrong channel count accepted")
	}
	pool := NewMaxPool2("p")
	shape, err = pool.OutputShape([]int{8, 32, 32})
	if err != nil || shape[1] != 16 {
		t.Fatalf("pool shape %v, %v", shape, err)
	}
	gap := NewGlobalAvgPool("g")
	shape, err = gap.OutputShape([]int{8, 4, 4})
	if err != nil || len(shape) != 1 || shape[0] != 8 {
		t.Fatalf("gap shape %v, %v", shape, err)
	}
	dense := NewDense("d", 128, 10, rng)
	if _, err := dense.OutputShape([]int{100}); err == nil {
		t.Fatal("dense feature mismatch accepted")
	}
}

func TestMACCounting(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	conv := NewConv2D("c", 3, 16, 5, 1, 2, rng)
	// 16 output channels × 32×32 positions × 3·5·5 = 1,228,800.
	if got := conv.MACs([]int{3, 32, 32}); got != 1228800 {
		t.Fatalf("conv MACs = %d", got)
	}
	dense := NewDense("d", 256, 10, rng)
	if got := dense.MACs([]int{256}); got != 2560 {
		t.Fatalf("dense MACs = %d", got)
	}
	seq := NewSequential("s", conv, NewReLU("r"), NewMaxPool2("p"))
	if got := seq.MACs([]int{3, 32, 32}); got != 1228800 {
		t.Fatalf("seq MACs = %d", got)
	}
}

func TestConvKnownValues(t *testing.T) {
	// 1×1 input channel, 3×3 kernel of ones, no padding: output = sum of
	// the 3×3 patch.
	rng := rand.New(rand.NewSource(5))
	conv := NewConv2D("c", 1, 1, 3, 1, 0, rng)
	for i := range conv.W.Data.Data {
		conv.W.Data.Data[i] = 1
	}
	conv.B.Data.Data[0] = 0.5
	x := NewTensor(1, 1, 3, 3)
	for i := range x.Data {
		x.Data[i] = float32(i)
	}
	out := conv.Forward(x, false)
	if out.Len() != 1 {
		t.Fatalf("out shape %v", out.Shape)
	}
	if out.Data[0] != 36.5 { // 0+1+...+8 + bias
		t.Fatalf("conv out = %g, want 36.5", out.Data[0])
	}
}

func TestMaxPoolForwardValues(t *testing.T) {
	x := NewTensor(1, 1, 2, 4)
	copy(x.Data, []float32{1, 5, 3, 2, 4, 0, 9, 8})
	out := NewMaxPool2("p").Forward(x, false)
	if out.Data[0] != 5 || out.Data[1] != 9 {
		t.Fatalf("pool out %v", out.Data)
	}
}

func TestBatchNormNormalizesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	bn := NewBatchNorm2D("bn", 2)
	x := randInput(rng, 8, 2, 4, 4)
	out := bn.Forward(x, true)
	// Per-channel mean ≈ 0, var ≈ 1 after normalization with γ=1, β=0.
	for ch := 0; ch < 2; ch++ {
		var s, s2 float64
		count := 0
		for i := 0; i < 8; i++ {
			base := (i*2 + ch) * 16
			for j := 0; j < 16; j++ {
				v := float64(out.Data[base+j])
				s += v
				s2 += v * v
				count++
			}
		}
		mean := s / float64(count)
		variance := s2/float64(count) - mean*mean
		if math.Abs(mean) > 1e-4 || math.Abs(variance-1) > 1e-2 {
			t.Fatalf("channel %d: mean %g var %g", ch, mean, variance)
		}
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bn := NewBatchNorm2D("bn", 1)
	// Train on shifted data to move the running stats.
	for i := 0; i < 50; i++ {
		x := randInput(rng, 4, 1, 2, 2)
		for j := range x.Data {
			x.Data[j] += 10
		}
		bn.Forward(x, true)
	}
	if math.Abs(float64(bn.RunningMean.Data[0])-10) > 1 {
		t.Fatalf("running mean %g, want ≈10", bn.RunningMean.Data[0])
	}
	// Eval mode: an input at the running mean maps near β = 0.
	x := NewTensor(1, 1, 2, 2)
	for j := range x.Data {
		x.Data[j] = 10
	}
	out := bn.Forward(x, false)
	if math.Abs(float64(out.Data[0])) > 0.5 {
		t.Fatalf("eval output %g, want ≈0", out.Data[0])
	}
}

func TestDropoutTrainEval(t *testing.T) {
	d := NewDropout("drop", 0.5, 42)
	x := NewTensor(1, 1000)
	for i := range x.Data {
		x.Data[i] = 1
	}
	// Eval mode: identity.
	out := d.Forward(x, false)
	for i := range out.Data {
		if out.Data[i] != 1 {
			t.Fatal("eval dropout must be identity")
		}
	}
	// Train mode: roughly half zeroed, survivors scaled by 2.
	out = d.Forward(x, true)
	zeros, twos := 0, 0
	for i := range out.Data {
		switch out.Data[i] {
		case 0:
			zeros++
		case 2:
			twos++
		default:
			t.Fatalf("unexpected dropout value %g", out.Data[i])
		}
	}
	if zeros < 400 || zeros > 600 {
		t.Fatalf("dropout zeroed %d of 1000", zeros)
	}
	if zeros+twos != 1000 {
		t.Fatal("dropout produced unexpected values")
	}
}

func TestSGDMomentumStep(t *testing.T) {
	p := newParam("w", 1)
	p.Data.Data[0] = 1
	p.Grad.Data[0] = 0.5
	opt := NewSGD(0.1, 0.9, 0)
	opt.Step([]*Param{p})
	// v = −0.05; w = 0.95; grad cleared.
	if math.Abs(float64(p.Data.Data[0])-0.95) > 1e-6 || p.Grad.Data[0] != 0 {
		t.Fatalf("after step: w=%g grad=%g", p.Data.Data[0], p.Grad.Data[0])
	}
	p.Grad.Data[0] = 0.5
	opt.Step([]*Param{p})
	// v = 0.9·(−0.05) − 0.05 = −0.095; w = 0.855.
	if math.Abs(float64(p.Data.Data[0])-0.855) > 1e-6 {
		t.Fatalf("after second step: w=%g", p.Data.Data[0])
	}
}

func TestSGDWeightDecayShrinksWeights(t *testing.T) {
	p := newParam("w", 1)
	p.Data.Data[0] = 1
	opt := NewSGD(0.1, 0, 0.5)
	opt.Step([]*Param{p}) // grad 0 + wd → effective grad 0.5 → w = 0.95
	if math.Abs(float64(p.Data.Data[0])-0.95) > 1e-6 {
		t.Fatalf("w = %g", p.Data.Data[0])
	}
}

// makeBlobs builds a linearly separable 2-class dataset rendered as tiny
// "images" so the conv stack has something spatial to learn.
func makeBlobs(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	x := NewTensor(n, 1, 8, 8)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		class := i % 2
		y[i] = class
		for j := 0; j < 64; j++ {
			noise := float32(rng.NormFloat64() * 0.3)
			if class == 0 {
				// Bright top half.
				if j < 32 {
					x.Data[i*64+j] = 1 + noise
				} else {
					x.Data[i*64+j] = noise
				}
			} else {
				// Bright bottom half.
				if j >= 32 {
					x.Data[i*64+j] = 1 + noise
				} else {
					x.Data[i*64+j] = noise
				}
			}
		}
	}
	return &Dataset{X: x, Y: y}
}

func TestTrainingLearnsSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := NewSequential("tiny",
		NewConv2D("c1", 1, 4, 3, 1, 1, rng),
		NewReLU("r1"),
		NewMaxPool2("p1"),
		NewDense("fc", 4*4*4, 2, rng),
	)
	model := NewModel(net)
	train := makeBlobs(64, 1)
	test := makeBlobs(32, 2)
	losses := model.Train(train, TrainConfig{Epochs: 8, BatchSize: 16, LR: 0.05, Seed: 3})
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("loss did not decrease: %v", losses)
	}
	if acc := model.Accuracy(test); acc < 0.95 {
		t.Fatalf("accuracy %.2f on separable data", acc)
	}
}

func TestTrainingDeterministic(t *testing.T) {
	build := func() *Model {
		rng := rand.New(rand.NewSource(9))
		return NewModel(NewSequential("tiny",
			NewConv2D("c1", 1, 2, 3, 1, 1, rng),
			NewReLU("r1"),
			NewDense("fc", 2*8*8, 2, rng),
		))
	}
	run := func() []float64 {
		m := build()
		return m.Train(makeBlobs(32, 4), TrainConfig{Epochs: 3, BatchSize: 8, LR: 0.05, Seed: 5})
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("training not deterministic: %v vs %v", a, b)
		}
	}
}

func TestAfterEpochCallback(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m := NewModel(NewDense("fc", 64, 2, rng))
	var epochs []int
	m.Train(makeBlobs(16, 5), TrainConfig{
		Epochs: 3, BatchSize: 8, Seed: 1,
		AfterEpoch: func(e int, loss float64) { epochs = append(epochs, e) },
	})
	if len(epochs) != 3 || epochs[0] != 1 || epochs[2] != 3 {
		t.Fatalf("callback epochs %v", epochs)
	}
}

func TestPredictMatchesProbabilities(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewModel(NewDense("fc", 64, 3, rng))
	ds := makeBlobs(8, 6)
	pred := m.Predict(ds.X)
	probs := m.Probabilities(ds.X)
	for i, p := range pred {
		row := probs.Data[i*3 : (i+1)*3]
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		if best != p {
			t.Fatalf("sample %d: Predict %d, Probabilities argmax %d", i, p, best)
		}
	}
	// Probabilities sum to 1.
	for i := 0; i < 8; i++ {
		var s float64
		for j := 0; j < 3; j++ {
			s += float64(probs.Data[i*3+j])
		}
		if math.Abs(s-1) > 1e-5 {
			t.Fatalf("sample %d: probs sum %g", i, s)
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	build := func(seed int64) *Model {
		rng := rand.New(rand.NewSource(seed))
		return NewModel(NewSequential("m",
			NewConv2D("c1", 1, 2, 3, 1, 1, rng),
			NewBatchNorm2D("bn1", 2),
			NewReLU("r1"),
			NewDense("fc", 2*8*8, 2, rng),
		))
	}
	src := build(1)
	src.Train(makeBlobs(32, 7), TrainConfig{Epochs: 2, BatchSize: 8, Seed: 2})
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := build(999) // different init, same topology
	if err := dst.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	ds := makeBlobs(16, 8)
	a, b := src.Predict(ds.X), dst.Predict(ds.X)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("loaded model predicts differently")
		}
	}
}

func TestCheckpointRejectsMismatchedModel(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	src := NewModel(NewDense("fc", 64, 2, rng))
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := NewModel(NewDense("other", 64, 2, rng))
	if err := other.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("load into mismatched model succeeded")
	}
}

// Property: softmax cross-entropy of one-hot-perfect logits approaches 0,
// and of uniform logits equals log(C).
func TestPropertyCrossEntropyBounds(t *testing.T) {
	f := func(c8 uint8) bool {
		c := int(c8)%8 + 2
		var loss SoftmaxCrossEntropy
		// Uniform logits.
		logits := NewTensor(1, c)
		got := loss.Forward(logits, []int{0})
		if math.Abs(got-math.Log(float64(c))) > 1e-5 {
			return false
		}
		// Strongly peaked logits on the true class.
		logits.Data[0] = 50
		return loss.Forward(logits, []int{0}) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkConvForward32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	conv := NewConv2D("c", 3, 16, 3, 1, 1, rng)
	x := randInput(rng, 16, 3, 32, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Forward(x, false)
	}
}

func BenchmarkTrainStep(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	net := NewSequential("bench",
		NewConv2D("c1", 1, 8, 3, 1, 1, rng),
		NewReLU("r1"),
		NewMaxPool2("p1"),
		NewDense("fc", 8*4*4, 2, rng),
	)
	m := NewModel(net)
	ds := makeBlobs(32, 1)
	opt := NewSGD(0.05, 0.9, 0)
	params := net.Params()
	idx := make([]int, 32)
	for i := range idx {
		idx[i] = i
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xb, yb := ds.Slice(idx)
		logits := net.Forward(xb, true)
		m.Loss.Forward(logits, yb)
		net.Backward(m.Loss.Backward(yb))
		opt.Step(params)
	}
}
