package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// visitLayers walks a layer graph depth-first, recursing into the
// composite layer types this package defines.
func visitLayers(l Layer, fn func(Layer)) {
	fn(l)
	switch v := l.(type) {
	case *Sequential:
		for _, c := range v.Layers {
			visitLayers(c, fn)
		}
	case *Parallel:
		for _, b := range v.Branches {
			visitLayers(b, fn)
		}
	case *Residual:
		visitLayers(v.Body, fn)
		if v.Shortcut != nil {
			visitLayers(v.Shortcut, fn)
		}
	}
}

// state is the serialized form of a model's tensors.
type state struct {
	Shapes map[string][]int
	Values map[string][]float32
}

// collectState gathers every named tensor: parameters plus batch-norm
// running statistics.
func collectState(net Layer) (*state, error) {
	s := &state{Shapes: map[string][]int{}, Values: map[string][]float32{}}
	var err error
	add := func(name string, t *Tensor) {
		if _, dup := s.Values[name]; dup && err == nil {
			err = fmt.Errorf("nn: duplicate tensor name %q in checkpoint", name)
		}
		s.Shapes[name] = t.Shape
		s.Values[name] = t.Data
	}
	// Composite layers re-expose children's params, so record only tensors
	// owned directly by the leaf layer types.
	visitLayers(net, func(l Layer) {
		switch v := l.(type) {
		case *Conv2D:
			add(v.W.Name, v.W.Data)
			add(v.B.Name, v.B.Data)
		case *Dense:
			add(v.W.Name, v.W.Data)
			add(v.B.Name, v.B.Data)
		case *BatchNorm2D:
			add(v.Gamma.Name, v.Gamma.Data)
			add(v.Beta.Name, v.Beta.Data)
			add(v.name+".running_mean", v.RunningMean)
			add(v.name+".running_var", v.RunningVar)
		}
	})
	return s, err
}

// Save serializes all model tensors with encoding/gob.
func (m *Model) Save(w io.Writer) error {
	s, err := collectState(m.Net)
	if err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(s)
}

// Load restores tensors saved by Save into an identically constructed
// model. Names and shapes must match exactly.
func (m *Model) Load(r io.Reader) error {
	var s state
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return err
	}
	cur, err := collectState(m.Net)
	if err != nil {
		return err
	}
	if len(cur.Values) != len(s.Values) {
		return fmt.Errorf("nn: checkpoint has %d tensors, model has %d", len(s.Values), len(cur.Values))
	}
	for name, dst := range cur.Values {
		src, ok := s.Values[name]
		if !ok {
			return fmt.Errorf("nn: checkpoint missing tensor %q", name)
		}
		if len(src) != len(dst) {
			return fmt.Errorf("nn: tensor %q has %d values, model wants %d", name, len(src), len(dst))
		}
		copy(dst, src)
	}
	return nil
}
