package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// ReLU applies max(0, x) element-wise.
type ReLU struct {
	name string
	mask []bool
}

// NewReLU returns a named rectifier.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name implements Layer.
func (r *ReLU) Name() string { return r.name }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// OutputShape implements Layer.
func (r *ReLU) OutputShape(in []int) ([]int, error) { return in, nil }

// MACs implements Layer.
func (r *ReLU) MACs(in []int) int64 { return 0 }

// Forward implements Layer.
func (r *ReLU) Forward(x *Tensor, train bool) *Tensor {
	out := NewTensor(x.Shape...)
	if cap(r.mask) < len(x.Data) {
		r.mask = make([]bool, len(x.Data))
	}
	r.mask = r.mask[:len(x.Data)]
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
			r.mask[i] = true
		} else {
			r.mask[i] = false
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(dout *Tensor) *Tensor {
	dx := NewTensor(dout.Shape...)
	for i, m := range r.mask {
		if m {
			dx.Data[i] = dout.Data[i]
		}
	}
	return dx
}

// MaxPool2 is a 2×2 max pool with stride 2 (floor semantics for odd
// inputs).
type MaxPool2 struct {
	name    string
	argmax  []int
	inShape []int
}

// NewMaxPool2 returns a named 2×2 max-pooling layer.
func NewMaxPool2(name string) *MaxPool2 { return &MaxPool2{name: name} }

// Name implements Layer.
func (p *MaxPool2) Name() string { return p.name }

// Params implements Layer.
func (p *MaxPool2) Params() []*Param { return nil }

// OutputShape implements Layer.
func (p *MaxPool2) OutputShape(in []int) ([]int, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("maxpool expects CHW, got %v", in)
	}
	if in[1] < 2 || in[2] < 2 {
		return nil, fmt.Errorf("maxpool input %dx%d too small", in[1], in[2])
	}
	return []int{in[0], in[1] / 2, in[2] / 2}, nil
}

// MACs implements Layer.
func (p *MaxPool2) MACs(in []int) int64 { return 0 }

// Forward implements Layer.
func (p *MaxPool2) Forward(x *Tensor, train bool) *Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := h/2, w/2
	out := NewTensor(n, c, oh, ow)
	if cap(p.argmax) < out.Len() {
		p.argmax = make([]int, out.Len())
	}
	p.argmax = p.argmax[:out.Len()]
	p.inShape = x.Shape
	oi := 0
	for i := 0; i < n*c; i++ {
		plane := x.Data[i*h*w : (i+1)*h*w]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				base := (2*oy)*w + 2*ox
				best, bi := plane[base], base
				if v := plane[base+1]; v > best {
					best, bi = v, base+1
				}
				if v := plane[base+w]; v > best {
					best, bi = v, base+w
				}
				if v := plane[base+w+1]; v > best {
					best, bi = v, base+w+1
				}
				out.Data[oi] = best
				p.argmax[oi] = i*h*w + bi
				oi++
			}
		}
	}
	return out
}

// Backward implements Layer.
func (p *MaxPool2) Backward(dout *Tensor) *Tensor {
	dx := NewTensor(p.inShape...)
	for oi, src := range p.argmax {
		dx.Data[src] += dout.Data[oi]
	}
	return dx
}

// GlobalAvgPool reduces each channel plane to its mean: NCHW → NC.
type GlobalAvgPool struct {
	name    string
	inShape []int
}

// NewGlobalAvgPool returns a named global average pooling layer.
func NewGlobalAvgPool(name string) *GlobalAvgPool { return &GlobalAvgPool{name: name} }

// Name implements Layer.
func (p *GlobalAvgPool) Name() string { return p.name }

// Params implements Layer.
func (p *GlobalAvgPool) Params() []*Param { return nil }

// OutputShape implements Layer.
func (p *GlobalAvgPool) OutputShape(in []int) ([]int, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("gap expects CHW, got %v", in)
	}
	return []int{in[0]}, nil
}

// MACs implements Layer.
func (p *GlobalAvgPool) MACs(in []int) int64 { return 0 }

// Forward implements Layer.
func (p *GlobalAvgPool) Forward(x *Tensor, train bool) *Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	p.inShape = x.Shape
	out := NewTensor(n, c)
	inv := 1 / float32(h*w)
	for i := 0; i < n*c; i++ {
		var s float32
		for _, v := range x.Data[i*h*w : (i+1)*h*w] {
			s += v
		}
		out.Data[i] = s * inv
	}
	return out
}

// Backward implements Layer.
func (p *GlobalAvgPool) Backward(dout *Tensor) *Tensor {
	n, c, h, w := p.inShape[0], p.inShape[1], p.inShape[2], p.inShape[3]
	dx := NewTensor(n, c, h, w)
	inv := 1 / float32(h*w)
	for i := 0; i < n*c; i++ {
		g := dout.Data[i] * inv
		plane := dx.Data[i*h*w : (i+1)*h*w]
		for j := range plane {
			plane[j] = g
		}
	}
	return dx
}

// Dense is a fully connected layer. Inputs with more than two dimensions
// are flattened after the batch axis.
type Dense struct {
	name    string
	In, Out int
	W, B    *Param
	lastX   *Tensor // flattened input [N, In]
	inShape []int
}

// NewDense constructs a fully connected layer with He-normal init.
func NewDense(name string, in, out int, rng *rand.Rand) *Dense {
	d := &Dense{
		name: name, In: in, Out: out,
		W: newParam(name+".W", in, out),
		B: newParam(name+".B", out),
	}
	d.W.Data.FillNormal(rng, math.Sqrt(2/float64(in)))
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return d.name }

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// OutputShape implements Layer.
func (d *Dense) OutputShape(in []int) ([]int, error) {
	n := 1
	for _, s := range in {
		n *= s
	}
	if n != d.In {
		return nil, fmt.Errorf("dense expects %d features, got %v (%d)", d.In, in, n)
	}
	return []int{d.Out}, nil
}

// MACs implements Layer.
func (d *Dense) MACs(in []int) int64 { return int64(d.In) * int64(d.Out) }

// Forward implements Layer.
func (d *Dense) Forward(x *Tensor, train bool) *Tensor {
	n := x.Dim(0)
	feat := x.Len() / n
	if feat != d.In {
		panic(fmt.Sprintf("%s: input has %d features, want %d", d.name, feat, d.In))
	}
	d.inShape = x.Shape
	flat := x.Reshape(n, feat)
	d.lastX = flat
	out := NewTensor(n, d.Out)
	gemm(flat.Data, d.W.Data.Data, out.Data, n, d.In, d.Out)
	for i := 0; i < n; i++ {
		row := out.Data[i*d.Out : (i+1)*d.Out]
		for j := range row {
			row[j] += d.B.Data.Data[j]
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(dout *Tensor) *Tensor {
	n := dout.Dim(0)
	// dW += Xᵀ·dY ; dB += column sums; dX = dY·Wᵀ.
	gemmTN(d.lastX.Data, dout.Data, d.W.Grad.Data, d.In, n, d.Out)
	for i := 0; i < n; i++ {
		row := dout.Data[i*d.Out : (i+1)*d.Out]
		for j := range row {
			d.B.Grad.Data[j] += row[j]
		}
	}
	dx := NewTensor(n, d.In)
	gemmNT(dout.Data, d.W.Data.Data, dx.Data, n, d.Out, d.In)
	return dx.Reshape(d.inShape...)
}

// Dropout zeroes activations with probability P during training and
// scales the survivors by 1/(1−P) (inverted dropout).
type Dropout struct {
	name string
	P    float64
	rng  *rand.Rand
	mask []float32
}

// NewDropout builds a dropout layer with its own deterministic stream.
func NewDropout(name string, p float64, seed int64) *Dropout {
	return &Dropout{name: name, P: p, rng: rand.New(rand.NewSource(seed))}
}

// Name implements Layer.
func (d *Dropout) Name() string { return d.name }

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// OutputShape implements Layer.
func (d *Dropout) OutputShape(in []int) ([]int, error) { return in, nil }

// MACs implements Layer.
func (d *Dropout) MACs(in []int) int64 { return 0 }

// Forward implements Layer.
func (d *Dropout) Forward(x *Tensor, train bool) *Tensor {
	if !train || d.P <= 0 {
		d.mask = d.mask[:0]
		return x
	}
	out := NewTensor(x.Shape...)
	if cap(d.mask) < len(x.Data) {
		d.mask = make([]float32, len(x.Data))
	}
	d.mask = d.mask[:len(x.Data)]
	scale := float32(1 / (1 - d.P))
	for i, v := range x.Data {
		if d.rng.Float64() < d.P {
			d.mask[i] = 0
		} else {
			d.mask[i] = scale
			out.Data[i] = v * scale
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(dout *Tensor) *Tensor {
	if len(d.mask) == 0 {
		return dout
	}
	dx := NewTensor(dout.Shape...)
	for i := range dout.Data {
		dx.Data[i] = dout.Data[i] * d.mask[i]
	}
	return dx
}
