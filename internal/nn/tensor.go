// Package nn is a from-scratch CPU neural-network framework — tensors,
// convolutional/pooling/dense/batch-norm layers, softmax cross-entropy,
// and SGD training — built because the paper's evaluation needs trainable
// CNNs and Go has no deep-learning substrate to lean on. It is deliberately
// small: float32 NCHW tensors, im2col convolutions on a hand-rolled GEMM,
// deterministic seeding, and MAC accounting for the energy model.
package nn

import (
	"fmt"
	"math/rand"
)

// Tensor is a dense float32 array with row-major (C-order) layout.
// Convolutional data uses NCHW.
type Tensor struct {
	Shape []int
	Data  []float32
}

// NewTensor allocates a zeroed tensor of the given shape.
func NewTensor(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s <= 0 {
			panic(fmt.Sprintf("nn: non-positive dimension %d in shape %v", s, shape))
		}
		n *= s
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the size of axis i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Reshape returns a view with a new shape of equal volume.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("nn: reshape %v (%d elems) to %v (%d elems)", t.Shape, len(t.Data), shape, n))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := &Tensor{Shape: append([]int(nil), t.Shape...), Data: make([]float32, len(t.Data))}
	copy(out.Data, t.Data)
	return out
}

// Zero clears all elements in place.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// SameShape reports whether two tensors have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// FillNormal initializes elements from N(0, std²) using rng.
func (t *Tensor) FillNormal(rng *rand.Rand, std float64) {
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64() * std)
	}
}

// FillUniform initializes elements from U(−a, a) using rng.
func (t *Tensor) FillUniform(rng *rand.Rand, a float64) {
	for i := range t.Data {
		t.Data[i] = float32((rng.Float64()*2 - 1) * a)
	}
}

// AddScaled computes t += alpha*o element-wise.
func (t *Tensor) AddScaled(o *Tensor, alpha float32) {
	if len(t.Data) != len(o.Data) {
		panic("nn: AddScaled size mismatch")
	}
	for i := range t.Data {
		t.Data[i] += alpha * o.Data[i]
	}
}

// Param is a trainable parameter with its gradient accumulator.
type Param struct {
	Name string
	Data *Tensor
	Grad *Tensor
}

// newParam allocates a parameter and matching zero gradient.
func newParam(name string, shape ...int) *Param {
	return &Param{Name: name, Data: NewTensor(shape...), Grad: NewTensor(shape...)}
}
