package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Conv2D is a 2-D convolution (cross-correlation) with square kernels,
// configurable stride and zero padding, implemented as im2col + GEMM.
type Conv2D struct {
	name           string
	InC, OutC      int
	Kernel, Stride int
	Pad            int
	W, B           *Param
	lastX          *Tensor
	lastCols       []float32 // im2col buffer for the whole batch
	lastOH, lastOW int
}

// NewConv2D constructs a convolution with He-normal weight init.
func NewConv2D(name string, inC, outC, kernel, stride, pad int, rng *rand.Rand) *Conv2D {
	c := &Conv2D{
		name: name, InC: inC, OutC: outC,
		Kernel: kernel, Stride: stride, Pad: pad,
		W: newParam(name+".W", outC, inC, kernel, kernel),
		B: newParam(name+".B", outC),
	}
	fanIn := float64(inC * kernel * kernel)
	c.W.Data.FillNormal(rng, math.Sqrt(2/fanIn))
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }

// OutputShape implements Layer.
func (c *Conv2D) OutputShape(in []int) ([]int, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("conv expects CHW input, got %v", in)
	}
	if in[0] != c.InC {
		return nil, fmt.Errorf("conv expects %d channels, got %d", c.InC, in[0])
	}
	oh := (in[1]+2*c.Pad-c.Kernel)/c.Stride + 1
	ow := (in[2]+2*c.Pad-c.Kernel)/c.Stride + 1
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("conv output %dx%d non-positive", oh, ow)
	}
	return []int{c.OutC, oh, ow}, nil
}

// MACs implements Layer.
func (c *Conv2D) MACs(in []int) int64 {
	out, err := c.OutputShape(in)
	if err != nil {
		return 0
	}
	return int64(out[0]) * int64(out[1]) * int64(out[2]) * int64(c.InC*c.Kernel*c.Kernel)
}

// im2col unrolls input patches into a [inC*K*K, OH*OW] matrix for one
// sample, writing into cols.
func (c *Conv2D) im2col(x []float32, h, w, oh, ow int, cols []float32) {
	k, s, p := c.Kernel, c.Stride, c.Pad
	colW := oh * ow
	for ch := 0; ch < c.InC; ch++ {
		plane := x[ch*h*w : (ch+1)*h*w]
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				row := cols[((ch*k+ky)*k+kx)*colW:]
				idx := 0
				for oy := 0; oy < oh; oy++ {
					sy := oy*s + ky - p
					if sy < 0 || sy >= h {
						for ox := 0; ox < ow; ox++ {
							row[idx] = 0
							idx++
						}
						continue
					}
					base := sy * w
					for ox := 0; ox < ow; ox++ {
						sx := ox*s + kx - p
						if sx < 0 || sx >= w {
							row[idx] = 0
						} else {
							row[idx] = plane[base+sx]
						}
						idx++
					}
				}
			}
		}
	}
}

// col2im scatters gradient columns back to input layout, accumulating
// where patches overlap.
func (c *Conv2D) col2im(cols []float32, h, w, oh, ow int, dx []float32) {
	k, s, p := c.Kernel, c.Stride, c.Pad
	colW := oh * ow
	for ch := 0; ch < c.InC; ch++ {
		plane := dx[ch*h*w : (ch+1)*h*w]
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				row := cols[((ch*k+ky)*k+kx)*colW:]
				idx := 0
				for oy := 0; oy < oh; oy++ {
					sy := oy*s + ky - p
					if sy < 0 || sy >= h {
						idx += ow
						continue
					}
					base := sy * w
					for ox := 0; ox < ow; ox++ {
						sx := ox*s + kx - p
						if sx >= 0 && sx < w {
							plane[base+sx] += row[idx]
						}
						idx++
					}
				}
			}
		}
	}
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *Tensor, train bool) *Tensor {
	n, ch, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if ch != c.InC {
		panic(fmt.Sprintf("%s: input has %d channels, want %d", c.name, ch, c.InC))
	}
	oh := (h+2*c.Pad-c.Kernel)/c.Stride + 1
	ow := (w+2*c.Pad-c.Kernel)/c.Stride + 1
	ckk := c.InC * c.Kernel * c.Kernel
	colW := oh * ow

	out := NewTensor(n, c.OutC, oh, ow)
	if cap(c.lastCols) < n*ckk*colW {
		c.lastCols = make([]float32, n*ckk*colW)
	}
	c.lastCols = c.lastCols[:n*ckk*colW]
	c.lastX = x
	c.lastOH, c.lastOW = oh, ow

	for i := 0; i < n; i++ {
		cols := c.lastCols[i*ckk*colW : (i+1)*ckk*colW]
		c.im2col(x.Data[i*ch*h*w:(i+1)*ch*h*w], h, w, oh, ow, cols)
		dst := out.Data[i*c.OutC*colW : (i+1)*c.OutC*colW]
		gemm(c.W.Data.Data, cols, dst, c.OutC, ckk, colW)
		// Bias per output channel.
		for oc := 0; oc < c.OutC; oc++ {
			b := c.B.Data.Data[oc]
			row := dst[oc*colW : (oc+1)*colW]
			for j := range row {
				row[j] += b
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(dout *Tensor) *Tensor {
	x := c.lastX
	n, ch, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := c.lastOH, c.lastOW
	ckk := c.InC * c.Kernel * c.Kernel
	colW := oh * ow

	dx := NewTensor(n, ch, h, w)
	dcols := make([]float32, ckk*colW)
	for i := 0; i < n; i++ {
		dy := dout.Data[i*c.OutC*colW : (i+1)*c.OutC*colW]
		cols := c.lastCols[i*ckk*colW : (i+1)*ckk*colW]
		// dW += dY · colsᵀ  (OutC×colW · colW×ckk)
		gemmNT(dy, cols, c.W.Grad.Data, c.OutC, colW, ckk)
		// dB += row sums of dY.
		for oc := 0; oc < c.OutC; oc++ {
			var s float32
			row := dy[oc*colW : (oc+1)*colW]
			for _, v := range row {
				s += v
			}
			c.B.Grad.Data[oc] += s
		}
		// dcols = Wᵀ · dY  (ckk×OutC · OutC×colW)
		for j := range dcols {
			dcols[j] = 0
		}
		gemmTN(c.W.Data.Data, dy, dcols, ckk, c.OutC, colW)
		c.col2im(dcols, h, w, oh, ow, dx.Data[i*ch*h*w:(i+1)*ch*h*w])
	}
	return dx
}
