package nn

import "fmt"

// Layer is one differentiable stage of a network. Forward must be called
// before Backward for each step; layers cache whatever activations their
// backward pass needs.
type Layer interface {
	// Name identifies the layer in diagnostics and checkpoints.
	Name() string
	// Forward computes the layer output. train enables training-only
	// behavior (batch-norm batch statistics).
	Forward(x *Tensor, train bool) *Tensor
	// Backward consumes dL/dout and returns dL/din, accumulating parameter
	// gradients.
	Backward(dout *Tensor) *Tensor
	// Params returns the trainable parameters (nil for stateless layers).
	Params() []*Param
	// OutputShape maps an input shape (without batch dimension) to the
	// output shape.
	OutputShape(in []int) ([]int, error)
	// MACs counts multiply-accumulates per sample for the given input
	// shape (without batch dimension), the metric the paper uses to
	// compare model compute (724M for AlexNet vs 1.43G for GoogLeNet).
	MACs(in []int) int64
}

// Sequential chains layers.
type Sequential struct {
	name   string
	Layers []Layer
}

// NewSequential builds a named layer chain.
func NewSequential(name string, layers ...Layer) *Sequential {
	return &Sequential{name: name, Layers: layers}
}

// Name implements Layer.
func (s *Sequential) Name() string { return s.name }

// Forward implements Layer.
func (s *Sequential) Forward(x *Tensor, train bool) *Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward implements Layer.
func (s *Sequential) Backward(dout *Tensor) *Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dout = s.Layers[i].Backward(dout)
	}
	return dout
}

// Params implements Layer.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// OutputShape implements Layer.
func (s *Sequential) OutputShape(in []int) ([]int, error) {
	var err error
	for _, l := range s.Layers {
		in, err = l.OutputShape(in)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", l.Name(), err)
		}
	}
	return in, nil
}

// MACs implements Layer.
func (s *Sequential) MACs(in []int) int64 {
	var total int64
	for _, l := range s.Layers {
		total += l.MACs(in)
		out, err := l.OutputShape(in)
		if err != nil {
			return total
		}
		in = out
	}
	return total
}
