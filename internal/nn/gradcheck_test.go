package nn

import (
	"math"
	"math/rand"
	"testing"
)

// numericalGrad estimates dLoss/dθ for one parameter element by central
// differences, where loss = Σ dout⊙Forward(x).
func numericalGrad(layer Layer, x *Tensor, dout *Tensor, target []float32, idx int) float64 {
	const eps = 1e-2
	orig := target[idx]
	eval := func(v float32) float64 {
		target[idx] = v
		out := layer.Forward(x.Clone(), true)
		var s float64
		for i := range out.Data {
			s += float64(out.Data[i]) * float64(dout.Data[i])
		}
		return s
	}
	plus := eval(orig + eps)
	minus := eval(orig - eps)
	target[idx] = orig
	return (plus - minus) / (2 * eps)
}

// checkLayerGradients verifies both parameter gradients and input
// gradients of a layer against numerical differentiation.
func checkLayerGradients(t *testing.T, layer Layer, x *Tensor, seed int64, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := layer.Forward(x.Clone(), true)
	dout := NewTensor(out.Shape...)
	for i := range dout.Data {
		dout.Data[i] = float32(rng.NormFloat64())
	}
	// Analytic pass. Forward again to ensure caches match the dout pass.
	layer.Forward(x.Clone(), true)
	for _, p := range layer.Params() {
		p.Grad.Zero()
	}
	dx := layer.Backward(dout)

	// Input gradient: compare a sample of elements.
	for trial := 0; trial < 8; trial++ {
		idx := rng.Intn(len(x.Data))
		num := numericalGrad(layer, x, dout, x.Data, idx)
		got := float64(dx.Data[idx])
		if diff := math.Abs(num - got); diff > tol*(1+math.Abs(num)) {
			t.Fatalf("input grad[%d]: analytic %.5f numeric %.5f", idx, got, num)
		}
	}
	// Parameter gradients.
	for _, p := range layer.Params() {
		for trial := 0; trial < 6; trial++ {
			idx := rng.Intn(len(p.Data.Data))
			// Re-run analytic pass because numericalGrad clobbered caches.
			layer.Forward(x.Clone(), true)
			p.Grad.Zero()
			layer.Backward(dout)
			got := float64(p.Grad.Data[idx])
			num := numericalGrad(layer, x, dout, p.Data.Data, idx)
			if diff := math.Abs(num - got); diff > tol*(1+math.Abs(num)) {
				t.Fatalf("%s grad[%d]: analytic %.5f numeric %.5f", p.Name, idx, got, num)
			}
		}
	}
}

func randInput(rng *rand.Rand, shape ...int) *Tensor {
	x := NewTensor(shape...)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	return x
}

func TestConvGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	conv := NewConv2D("c", 2, 3, 3, 1, 1, rng)
	checkLayerGradients(t, conv, randInput(rng, 2, 2, 6, 6), 2, 2e-2)
}

func TestConvStridedGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	conv := NewConv2D("c", 3, 4, 3, 2, 1, rng)
	checkLayerGradients(t, conv, randInput(rng, 2, 3, 8, 8), 4, 2e-2)
}

func TestConv1x1Gradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	conv := NewConv2D("c", 4, 2, 1, 1, 0, rng)
	checkLayerGradients(t, conv, randInput(rng, 2, 4, 5, 5), 6, 2e-2)
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := NewDense("d", 12, 5, rng)
	checkLayerGradients(t, d, randInput(rng, 3, 12), 8, 2e-2)
}

func TestDenseFlattensGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := NewDense("d", 2*3*3, 4, rng)
	checkLayerGradients(t, d, randInput(rng, 2, 2, 3, 3), 10, 2e-2)
}

func TestReLUGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Keep inputs away from the kink to make numeric gradients valid.
	x := randInput(rng, 2, 3, 4, 4)
	for i := range x.Data {
		if math.Abs(float64(x.Data[i])) < 0.05 {
			x.Data[i] = 0.5
		}
	}
	checkLayerGradients(t, NewReLU("r"), x, 12, 2e-2)
}

func TestMaxPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	// Separate values so the argmax is stable under ±eps probing.
	x := NewTensor(2, 2, 4, 4)
	perm := rng.Perm(x.Len())
	for i, p := range perm {
		x.Data[i] = float32(p) * 0.1
	}
	checkLayerGradients(t, NewMaxPool2("p"), x, 14, 2e-2)
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	checkLayerGradients(t, NewGlobalAvgPool("g"), randInput(rng, 2, 3, 4, 4), 16, 2e-2)
}

func TestBatchNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	bn := NewBatchNorm2D("bn", 3)
	// Batch-norm gradients are ill-conditioned for float32 numeric
	// checking; a looser tolerance still catches structural errors.
	checkLayerGradients(t, bn, randInput(rng, 4, 3, 3, 3), 18, 8e-2)
}

func TestSequentialGradients(t *testing.T) {
	// Smooth layers only: ReLU/MaxPool kinks make finite differences
	// unreliable through deep compositions; their gradients are verified
	// individually above, and the full nonlinear stack is validated by the
	// training convergence tests.
	rng := rand.New(rand.NewSource(19))
	seq := NewSequential("s",
		NewConv2D("c1", 1, 2, 3, 1, 1, rng),
		NewConv2D("c2", 2, 3, 3, 2, 1, rng),
		NewDense("d1", 3*3*3, 4, rng),
	)
	x := randInput(rng, 2, 1, 6, 6)
	checkLayerGradients(t, seq, x, 20, 3e-2)
}

func TestParallelGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	par := NewParallel("inc",
		NewConv2D("b1", 2, 2, 1, 1, 0, rng),
		NewConv2D("b3", 2, 3, 3, 1, 1, rng),
	)
	checkLayerGradients(t, par, randInput(rng, 2, 2, 4, 4), 22, 2e-2)
}

func TestResidualIdentityGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	body := NewSequential("b",
		NewConv2D("c1", 2, 2, 3, 1, 1, rng),
	)
	res := NewResidual("res", body, nil)
	checkLayerGradients(t, res, randInput(rng, 2, 2, 4, 4), 24, 3e-2)
}

func TestResidualProjectionGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	body := NewSequential("b",
		NewConv2D("c1", 2, 4, 3, 2, 1, rng),
	)
	sc := NewConv2D("sc", 2, 4, 1, 2, 0, rng)
	res := NewResidual("res", body, sc)
	checkLayerGradients(t, res, randInput(rng, 2, 2, 4, 4), 26, 3e-2)
}

func TestSoftmaxCrossEntropyGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	logits := randInput(rng, 4, 5)
	labels := []int{1, 0, 4, 2}
	var loss SoftmaxCrossEntropy
	base := loss.Forward(logits, labels)
	grad := loss.Backward(labels)
	const eps = 1e-2
	for trial := 0; trial < 10; trial++ {
		idx := rng.Intn(logits.Len())
		orig := logits.Data[idx]
		logits.Data[idx] = orig + eps
		plus := loss.Forward(logits, labels)
		logits.Data[idx] = orig - eps
		minus := loss.Forward(logits, labels)
		logits.Data[idx] = orig
		num := (plus - minus) / (2 * eps)
		got := float64(grad.Data[idx])
		if math.Abs(num-got) > 2e-2*(1+math.Abs(num)) {
			t.Fatalf("logit grad[%d]: analytic %.5f numeric %.5f (base loss %.4f)", idx, got, num, base)
		}
	}
}
