package nn

import "math"

// Adam implements the Adam optimizer (Kingma & Ba 2015) with decoupled
// L2 regularization folded into the gradient, as an alternative to SGD
// for architectures (inception, deep residual stacks) whose loss surfaces
// SGD traverses slowly at small batch sizes.
type Adam struct {
	LR, Beta1, Beta2, Eps, WeightDecay float64

	step int
	m    map[*Param]*Tensor // first-moment estimates
	v    map[*Param]*Tensor // second-moment estimates
}

// NewAdam constructs the optimizer with the canonical β defaults.
func NewAdam(lr, weightDecay float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: weightDecay,
		m: map[*Param]*Tensor{}, v: map[*Param]*Tensor{},
	}
}

// Step applies one bias-corrected update to every parameter and clears
// gradients.
func (o *Adam) Step(params []*Param) {
	o.step++
	c1 := 1 - math.Pow(o.Beta1, float64(o.step))
	c2 := 1 - math.Pow(o.Beta2, float64(o.step))
	b1 := float32(o.Beta1)
	b2 := float32(o.Beta2)
	wd := float32(o.WeightDecay)
	for _, p := range params {
		m := o.m[p]
		v := o.v[p]
		if m == nil {
			m = NewTensor(p.Data.Shape...)
			v = NewTensor(p.Data.Shape...)
			o.m[p], o.v[p] = m, v
		}
		for i := range p.Data.Data {
			g := p.Grad.Data[i] + wd*p.Data.Data[i]
			m.Data[i] = b1*m.Data[i] + (1-b1)*g
			v.Data[i] = b2*v.Data[i] + (1-b2)*g*g
			mHat := float64(m.Data[i]) / c1
			vHat := float64(v.Data[i]) / c2
			p.Data.Data[i] -= float32(o.LR * mHat / (math.Sqrt(vHat) + o.Eps))
			p.Grad.Data[i] = 0
		}
	}
}

// Optimizer abstracts the two update rules so training loops can swap
// them.
type Optimizer interface {
	Step(params []*Param)
}

var (
	_ Optimizer = (*SGD)(nil)
	_ Optimizer = (*Adam)(nil)
)

// TrainWith runs the same loop as Train but with a caller-provided
// optimizer (Train keeps its SGD default for backward compatibility with
// the experiment configs).
func (m *Model) TrainWith(train *Dataset, cfg TrainConfig, opt Optimizer) []float64 {
	cfg = cfg.withDefaults()
	rng := newTrainRNG(cfg.Seed)
	params := m.Net.Params()
	n := train.Len()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	losses := make([]float64, 0, cfg.Epochs)
	for epoch := 1; epoch <= cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		batches := 0
		for start := 0; start < n; start += cfg.BatchSize {
			end := min(start+cfg.BatchSize, n)
			xb, yb := train.Slice(order[start:end])
			logits := m.Net.Forward(xb, true)
			loss := m.Loss.Forward(logits, yb)
			m.Net.Backward(m.Loss.Backward(yb))
			clipGradients(params, cfg.ClipNorm)
			opt.Step(params)
			epochLoss += loss
			batches++
		}
		epochLoss /= float64(batches)
		losses = append(losses, epochLoss)
		if cfg.AfterEpoch != nil {
			cfg.AfterEpoch(epoch, epochLoss)
		}
	}
	return losses
}
