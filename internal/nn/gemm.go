package nn

import (
	"runtime"
	"sync"
)

// gemmParallelThreshold is the FLOP count above which matrix products are
// split across goroutines. Small products are faster single-threaded.
const gemmParallelThreshold = 1 << 18

// gemm computes C += A·B with A [m×k], B [k×n], C [m×n], all row-major.
func gemm(a, b, c []float32, m, k, n int) {
	parallelRows(m, 2*m*k*n, func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			arow := a[i*k : i*k+k]
			crow := c[i*n : i*n+n]
			for p := 0; p < k; p++ {
				av := arow[p]
				if av == 0 {
					continue
				}
				brow := b[p*n : p*n+n]
				for j := range crow {
					crow[j] += av * brow[j]
				}
			}
		}
	})
}

// gemmTN computes C += Aᵀ·B with A [k×m], B [k×n], C [m×n].
func gemmTN(a, b, c []float32, m, k, n int) {
	parallelRows(m, 2*m*k*n, func(i0, i1 int) {
		for p := 0; p < k; p++ {
			arow := a[p*m : p*m+m]
			brow := b[p*n : p*n+n]
			for i := i0; i < i1; i++ {
				av := arow[i]
				if av == 0 {
					continue
				}
				crow := c[i*n : i*n+n]
				for j := range crow {
					crow[j] += av * brow[j]
				}
			}
		}
	})
}

// gemmNT computes C += A·Bᵀ with A [m×k], B [n×k], C [m×n].
func gemmNT(a, b, c []float32, m, k, n int) {
	parallelRows(m, 2*m*k*n, func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			arow := a[i*k : i*k+k]
			crow := c[i*n : i*n+n]
			for j := 0; j < n; j++ {
				brow := b[j*k : j*k+k]
				var s float32
				for p := range arow {
					s += arow[p] * brow[p]
				}
				crow[j] += s
			}
		}
	})
}

// parallelRows splits the row range [0, m) across workers when the job is
// large enough. The fixed partition keeps results deterministic.
func parallelRows(m, flops int, fn func(i0, i1 int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	if flops < gemmParallelThreshold || workers < 2 {
		fn(0, m)
		return
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		i0 := w * chunk
		i1 := min(i0+chunk, m)
		if i0 >= i1 {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(i0, i1)
		}()
	}
	wg.Wait()
}
