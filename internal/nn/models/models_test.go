package models

import (
	"math/rand"
	"testing"

	"repro/internal/nn"
)

func cfg32() Config {
	return Config{Channels: 3, Size: 32, Classes: 8, Seed: 1}
}

func TestAllModelsBuildAndForward(t *testing.T) {
	for _, name := range Names() {
		m, err := Build(name, cfg32())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Shape propagation.
		out, err := m.Net.OutputShape([]int{3, 32, 32})
		if err != nil {
			t.Fatalf("%s: OutputShape: %v", name, err)
		}
		if len(out) != 1 || out[0] != 8 {
			t.Fatalf("%s: output shape %v, want [8]", name, out)
		}
		// A real forward pass agrees with the declared shape.
		x := nn.NewTensor(2, 3, 32, 32)
		rng := rand.New(rand.NewSource(2))
		for i := range x.Data {
			x.Data[i] = float32(rng.NormFloat64())
		}
		logits := m.Net.Forward(x, false)
		if logits.Dim(0) != 2 || logits.Dim(1) != 8 {
			t.Fatalf("%s: logits shape %v", name, logits.Shape)
		}
	}
}

func TestModelsGrayscaleInput(t *testing.T) {
	c := cfg32()
	c.Channels = 1
	for _, name := range Names() {
		m, err := Build(name, c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		x := nn.NewTensor(1, 1, 32, 32)
		logits := m.Net.Forward(x, false)
		if logits.Dim(1) != 8 {
			t.Fatalf("%s: %v", name, logits.Shape)
		}
	}
}

func TestBuildUnknownModel(t *testing.T) {
	if _, err := Build("does-not-exist", cfg32()); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Channels: 2, Size: 32, Classes: 8}, // channels
		{Channels: 3, Size: 30, Classes: 8}, // size not multiple of 8
		{Channels: 3, Size: 32, Classes: 1}, // classes
		{Channels: 3, Size: 0, Classes: 8},  // zero size
	}
	for i, c := range bad {
		if _, err := NewMiniCNN(c); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

// TestMACOrdering mirrors the paper's compute comparison: the GoogLeNet
// family must cost more MACs than AlexNet's mini version here (1.43G vs
// 724M at full scale), and ResNet-18 more than ResNet-10.
func TestMACOrdering(t *testing.T) {
	macs := map[string]int64{}
	for _, name := range Names() {
		m, err := Build(name, cfg32())
		if err != nil {
			t.Fatal(err)
		}
		macs[name] = m.MACs([]int{3, 32, 32})
		if macs[name] <= 0 {
			t.Fatalf("%s: MACs = %d", name, macs[name])
		}
	}
	if macs["mini-googlenet"] <= macs["minicnn"] {
		t.Fatalf("googlenet %d ≤ minicnn %d", macs["mini-googlenet"], macs["minicnn"])
	}
	if macs["mini-resnet18"] <= macs["mini-resnet10"] {
		t.Fatalf("resnet18 %d ≤ resnet10 %d", macs["mini-resnet18"], macs["mini-resnet10"])
	}
}

func TestParamCountPositiveAndDistinct(t *testing.T) {
	counts := map[string]int64{}
	for _, name := range Names() {
		m, err := Build(name, cfg32())
		if err != nil {
			t.Fatal(err)
		}
		counts[name] = ParamCount(m)
		if counts[name] <= 0 {
			t.Fatalf("%s: param count %d", name, counts[name])
		}
	}
	if counts["mini-vgg"] <= counts["minicnn"] {
		t.Fatalf("vgg %d ≤ minicnn %d params", counts["mini-vgg"], counts["minicnn"])
	}
}

func TestModelsDeterministicInit(t *testing.T) {
	a, err := Build("mini-resnet10", cfg32())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build("mini-resnet10", cfg32())
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := a.Net.Params(), b.Net.Params()
	if len(pa) != len(pb) {
		t.Fatal("param lists differ")
	}
	for i := range pa {
		for j := range pa[i].Data.Data {
			if pa[i].Data.Data[j] != pb[i].Data.Data[j] {
				t.Fatalf("param %s differs at %d", pa[i].Name, j)
			}
		}
	}
}

// TestModelsTrainable does one quick sanity fit per architecture on a
// trivially separable two-class problem: loss must drop.
func TestModelsTrainable(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test skipped in -short mode")
	}
	for _, name := range Names() {
		c := Config{Channels: 1, Size: 16, Classes: 2, Seed: 3}
		m, err := Build(name, c)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(4))
		const n = 32
		x := nn.NewTensor(n, 1, 16, 16)
		y := make([]int, n)
		for i := 0; i < n; i++ {
			y[i] = i % 2
			for j := 0; j < 256; j++ {
				v := float32(rng.NormFloat64() * 0.1)
				if y[i] == 1 && j < 128 {
					v += 1
				}
				if y[i] == 0 && j >= 128 {
					v += 1
				}
				x.Data[i*256+j] = v
			}
		}
		ds := &nn.Dataset{X: x, Y: y}
		losses := m.Train(ds, nn.TrainConfig{Epochs: 4, BatchSize: 8, LR: 0.02, Seed: 5})
		if losses[len(losses)-1] >= losses[0] {
			t.Errorf("%s: loss did not decrease: %v", name, losses)
		}
	}
}
