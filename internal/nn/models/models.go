// Package models provides the miniature model zoo used to reproduce the
// paper's evaluation: topology-faithful, CPU-trainable versions of the
// four DNN families evaluated in Fig. 8 (AlexNet, VGG, GoogLeNet with
// inception modules, ResNet with residual blocks), plus a small plain CNN
// for fast parameter sweeps. All models take NCHW inputs with power-of-two
// spatial size (default 32×32) and expose MAC counts for the energy model.
package models

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/nn"
)

// Config describes the input tensor and class count for a model.
type Config struct {
	Channels int // input channels (1 = grayscale, 3 = RGB)
	Size     int // square input size in pixels; must be divisible by 8
	Classes  int
	Seed     int64
}

// validate rejects shapes the fixed topologies cannot map.
func (c Config) validate() error {
	if c.Channels != 1 && c.Channels != 3 {
		return fmt.Errorf("models: channels must be 1 or 3, got %d", c.Channels)
	}
	if c.Size < 8 || c.Size%8 != 0 {
		return fmt.Errorf("models: size must be a positive multiple of 8, got %d", c.Size)
	}
	if c.Classes < 2 {
		return fmt.Errorf("models: need at least 2 classes, got %d", c.Classes)
	}
	return nil
}

// Builder constructs a fresh model for a config.
type Builder func(Config) (*nn.Model, error)

// registry maps model names to builders.
var registry = map[string]Builder{
	"minicnn":        NewMiniCNN,
	"mini-alexnet":   NewMiniAlexNet,
	"mini-vgg":       NewMiniVGG,
	"mini-googlenet": NewMiniGoogLeNet,
	"mini-resnet10":  NewMiniResNet10,
	"mini-resnet18":  NewMiniResNet18,
}

// Names lists available models in sorted order.
func Names() []string {
	var names []string
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Build constructs a model by name.
func Build(name string, cfg Config) (*nn.Model, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("models: unknown model %q (have %v)", name, Names())
	}
	return b(cfg)
}

// NewMiniCNN is a small plain CNN (conv-pool ×2 + classifier) used where
// the paper sweeps many configurations and per-run training cost matters
// (Figs. 2, 5, 6, 7).
func NewMiniCNN(cfg Config) (*nn.Model, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := cfg.Size / 4
	net := nn.NewSequential("minicnn",
		nn.NewConv2D("c1", cfg.Channels, 12, 3, 1, 1, rng),
		nn.NewReLU("r1"),
		nn.NewMaxPool2("p1"),
		nn.NewConv2D("c2", 12, 24, 3, 1, 1, rng),
		nn.NewReLU("r2"),
		nn.NewMaxPool2("p2"),
		nn.NewDense("fc", 24*s*s, cfg.Classes, rng),
	)
	return nn.NewModel(net), nil
}

// NewMiniAlexNet mirrors AlexNet's shape: large early kernels, three conv
// stages, and a wide fully connected head with dropout.
func NewMiniAlexNet(cfg Config) (*nn.Model, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := cfg.Size / 4
	net := nn.NewSequential("mini-alexnet",
		nn.NewConv2D("c1", cfg.Channels, 16, 5, 1, 2, rng),
		nn.NewReLU("r1"),
		nn.NewMaxPool2("p1"),
		nn.NewConv2D("c2", 16, 32, 5, 1, 2, rng),
		nn.NewReLU("r2"),
		nn.NewMaxPool2("p2"),
		nn.NewConv2D("c3", 32, 48, 3, 1, 1, rng),
		nn.NewReLU("r3"),
		nn.NewDense("fc1", 48*s*s, 96, rng),
		nn.NewReLU("r4"),
		nn.NewDropout("drop", 0.3, cfg.Seed+1),
		nn.NewDense("fc2", 96, cfg.Classes, rng),
	)
	return nn.NewModel(net), nil
}

// NewMiniVGG mirrors VGG-16's pattern of stacked 3×3 convolutions with
// batch norm between pooling stages.
func NewMiniVGG(cfg Config) (*nn.Model, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := cfg.Size / 4
	net := nn.NewSequential("mini-vgg",
		nn.ConvBNReLU("b1a", cfg.Channels, 16, 3, 1, 1, rng),
		nn.ConvBNReLU("b1b", 16, 16, 3, 1, 1, rng),
		nn.NewMaxPool2("p1"),
		nn.ConvBNReLU("b2a", 16, 32, 3, 1, 1, rng),
		nn.ConvBNReLU("b2b", 32, 32, 3, 1, 1, rng),
		nn.NewMaxPool2("p2"),
		nn.NewDense("fc1", 32*s*s, 128, rng),
		nn.NewReLU("rf"),
		nn.NewDense("fc2", 128, cfg.Classes, rng),
	)
	return nn.NewModel(net), nil
}

// inception builds a three-branch module (1×1, 1×1→3×3, 1×1→5×5) whose
// outputs concatenate on the channel axis, the core GoogLeNet structure.
func inception(name string, inC, c1, c3reduce, c3, c5reduce, c5 int, rng *rand.Rand) nn.Layer {
	return nn.NewParallel(name,
		nn.ConvBNReLU(name+".b1", inC, c1, 1, 1, 0, rng),
		nn.NewSequential(name+".b3",
			nn.ConvBNReLU(name+".b3r", inC, c3reduce, 1, 1, 0, rng),
			nn.ConvBNReLU(name+".b3c", c3reduce, c3, 3, 1, 1, rng),
		),
		nn.NewSequential(name+".b5",
			nn.ConvBNReLU(name+".b5r", inC, c5reduce, 1, 1, 0, rng),
			nn.ConvBNReLU(name+".b5c", c5reduce, c5, 5, 1, 2, rng),
		),
	)
}

// NewMiniGoogLeNet mirrors GoogLeNet: a convolutional stem, two stacked
// inception modules and a global-average-pooled linear classifier.
func NewMiniGoogLeNet(cfg Config) (*nn.Model, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	net := nn.NewSequential("mini-googlenet",
		nn.ConvBNReLU("stem", cfg.Channels, 16, 3, 1, 1, rng),
		nn.NewMaxPool2("p1"),
		inception("inc1", 16, 8, 8, 16, 4, 8, rng), // out 32
		nn.NewMaxPool2("p2"),
		inception("inc2", 32, 16, 16, 32, 8, 16, rng), // out 64
		nn.NewGlobalAvgPool("gap"),
		nn.NewDense("fc", 64, cfg.Classes, rng),
	)
	return nn.NewModel(net), nil
}

// basicBlock is a ResNet basic block: two 3×3 conv+BN with an identity or
// projection shortcut.
func basicBlock(name string, inC, outC, stride int, rng *rand.Rand) nn.Layer {
	body := nn.NewSequential(name+".body",
		nn.NewConv2D(name+".c1", inC, outC, 3, stride, 1, rng),
		nn.NewBatchNorm2D(name+".bn1", outC),
		nn.NewReLU(name+".r1"),
		nn.NewConv2D(name+".c2", outC, outC, 3, 1, 1, rng),
		nn.NewBatchNorm2D(name+".bn2", outC),
	)
	var shortcut nn.Layer
	if stride != 1 || inC != outC {
		shortcut = nn.NewSequential(name+".sc",
			nn.NewConv2D(name+".scc", inC, outC, 1, stride, 0, rng),
			nn.NewBatchNorm2D(name+".scbn", outC),
		)
	}
	return nn.NewResidual(name, body, shortcut)
}

// newMiniResNet builds a three-stage residual network with the given
// blocks per stage (1 → ResNet-10-like, 2 → ResNet-18-like).
func newMiniResNet(name string, blocksPerStage int, cfg Config) (*nn.Model, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	layers := []nn.Layer{
		nn.ConvBNReLU("stem", cfg.Channels, 16, 3, 1, 1, rng),
	}
	widths := []int{16, 32, 64}
	inC := 16
	for stage, w := range widths {
		for b := 0; b < blocksPerStage; b++ {
			stride := 1
			if b == 0 && stage > 0 {
				stride = 2
			}
			layers = append(layers, basicBlock(fmt.Sprintf("s%db%d", stage+1, b+1), inC, w, stride, rng))
			inC = w
		}
	}
	layers = append(layers,
		nn.NewGlobalAvgPool("gap"),
		nn.NewDense("fc", 64, cfg.Classes, rng),
	)
	return nn.NewModel(nn.NewSequential(name, layers...)), nil
}

// NewMiniResNet10 builds the one-block-per-stage residual network.
func NewMiniResNet10(cfg Config) (*nn.Model, error) {
	return newMiniResNet("mini-resnet10", 1, cfg)
}

// NewMiniResNet18 builds the two-blocks-per-stage residual network.
func NewMiniResNet18(cfg Config) (*nn.Model, error) {
	return newMiniResNet("mini-resnet18", 2, cfg)
}

// ParamCount sums the trainable parameter elements of a model.
func ParamCount(m *nn.Model) int64 {
	var total int64
	for _, p := range m.Net.Params() {
		total += int64(p.Data.Len())
	}
	return total
}
