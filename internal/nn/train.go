package nn

import (
	"fmt"
	"io"
	"math"
	"math/rand"
)

// SoftmaxCrossEntropy couples the softmax activation with the negative
// log-likelihood loss, the standard final stage of a classifier.
type SoftmaxCrossEntropy struct {
	probs *Tensor
}

// Forward returns the mean loss over the batch and caches probabilities.
func (l *SoftmaxCrossEntropy) Forward(logits *Tensor, labels []int) float64 {
	n, c := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("nn: %d labels for batch of %d", len(labels), n))
	}
	l.probs = NewTensor(n, c)
	var loss float64
	for i := 0; i < n; i++ {
		row := logits.Data[i*c : (i+1)*c]
		maxV := row[0]
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - maxV))
			l.probs.Data[i*c+j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := 0; j < c; j++ {
			l.probs.Data[i*c+j] *= inv
		}
		p := float64(l.probs.Data[i*c+labels[i]])
		loss -= math.Log(math.Max(p, 1e-12))
	}
	return loss / float64(n)
}

// Backward returns dL/dlogits for the cached forward pass.
func (l *SoftmaxCrossEntropy) Backward(labels []int) *Tensor {
	n, c := l.probs.Dim(0), l.probs.Dim(1)
	grad := l.probs.Clone()
	inv := float32(1 / float64(n))
	for i := 0; i < n; i++ {
		grad.Data[i*c+labels[i]] -= 1
		for j := 0; j < c; j++ {
			grad.Data[i*c+j] *= inv
		}
	}
	return grad
}

// Probs exposes the cached softmax probabilities.
func (l *SoftmaxCrossEntropy) Probs() *Tensor { return l.probs }

// SGD is stochastic gradient descent with classical momentum and L2
// weight decay.
type SGD struct {
	LR, Momentum, WeightDecay float64
	velocity                  map[*Param]*Tensor
}

// NewSGD constructs the optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay, velocity: map[*Param]*Tensor{}}
}

// Step applies one update to every parameter and clears gradients.
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		v := o.velocity[p]
		if v == nil {
			v = NewTensor(p.Data.Shape...)
			o.velocity[p] = v
		}
		lr := float32(o.LR)
		mu := float32(o.Momentum)
		wd := float32(o.WeightDecay)
		for i := range p.Data.Data {
			g := p.Grad.Data[i] + wd*p.Data.Data[i]
			v.Data[i] = mu*v.Data[i] - lr*g
			p.Data.Data[i] += v.Data[i]
			p.Grad.Data[i] = 0
		}
	}
}

// Dataset pairs input tensors with integer labels for training.
type Dataset struct {
	X *Tensor // [N, C, H, W]
	Y []int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return d.X.Dim(0) }

// Slice copies samples [i0, i1) into a new batch tensor.
func (d *Dataset) Slice(idx []int) (*Tensor, []int) {
	c, h, w := d.X.Dim(1), d.X.Dim(2), d.X.Dim(3)
	sample := c * h * w
	xb := NewTensor(len(idx), c, h, w)
	yb := make([]int, len(idx))
	for i, j := range idx {
		copy(xb.Data[i*sample:(i+1)*sample], d.X.Data[j*sample:(j+1)*sample])
		yb[i] = d.Y[j]
	}
	return xb, yb
}

// TrainConfig controls the training loop.
type TrainConfig struct {
	Epochs      int
	BatchSize   int
	LR          float64
	Momentum    float64
	WeightDecay float64
	// LRDecayEvery halves the learning rate every k epochs when > 0.
	LRDecayEvery int
	// ClipNorm rescales the global gradient L2 norm to this bound when
	// > 0, stabilizing batch-norm-free architectures at higher rates.
	ClipNorm float64
	Seed     int64
	// Log receives one line per epoch when non-nil.
	Log io.Writer
	// AfterEpoch runs after each epoch (e.g. Fig. 2b's per-epoch test
	// accuracy probes). Epoch is 1-based.
	AfterEpoch func(epoch int, trainLoss float64)
}

// withDefaults fills unset fields.
func (c TrainConfig) withDefaults() TrainConfig {
	if c.Epochs == 0 {
		c.Epochs = 10
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
	if c.Momentum == 0 {
		c.Momentum = 0.9
	}
	return c
}

// Model couples a layer graph with its loss for training and inference.
type Model struct {
	Net  Layer
	Loss SoftmaxCrossEntropy
}

// NewModel wraps a network.
func NewModel(net Layer) *Model { return &Model{Net: net} }

// newTrainRNG builds the deterministic shuffling stream for a seed.
func newTrainRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Train runs SGD over train for cfg.Epochs and returns per-epoch mean
// training losses.
func (m *Model) Train(train *Dataset, cfg TrainConfig) []float64 {
	cfg = cfg.withDefaults()
	rng := newTrainRNG(cfg.Seed)
	opt := NewSGD(cfg.LR, cfg.Momentum, cfg.WeightDecay)
	params := m.Net.Params()
	n := train.Len()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	losses := make([]float64, 0, cfg.Epochs)
	for epoch := 1; epoch <= cfg.Epochs; epoch++ {
		if cfg.LRDecayEvery > 0 && epoch > 1 && (epoch-1)%cfg.LRDecayEvery == 0 {
			opt.LR /= 2
		}
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		batches := 0
		for start := 0; start < n; start += cfg.BatchSize {
			end := min(start+cfg.BatchSize, n)
			xb, yb := train.Slice(order[start:end])
			logits := m.Net.Forward(xb, true)
			loss := m.Loss.Forward(logits, yb)
			m.Net.Backward(m.Loss.Backward(yb))
			clipGradients(params, cfg.ClipNorm)
			opt.Step(params)
			epochLoss += loss
			batches++
		}
		epochLoss /= float64(batches)
		losses = append(losses, epochLoss)
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "epoch %2d/%d  loss %.4f\n", epoch, cfg.Epochs, epochLoss)
		}
		if cfg.AfterEpoch != nil {
			cfg.AfterEpoch(epoch, epochLoss)
		}
	}
	return losses
}

// clipGradients rescales all gradients so their global L2 norm does not
// exceed maxNorm (no-op when maxNorm ≤ 0).
func clipGradients(params []*Param, maxNorm float64) {
	if maxNorm <= 0 {
		return
	}
	var sq float64
	for _, p := range params {
		for _, g := range p.Grad.Data {
			sq += float64(g) * float64(g)
		}
	}
	norm := math.Sqrt(sq)
	if norm <= maxNorm {
		return
	}
	scale := float32(maxNorm / norm)
	for _, p := range params {
		for i := range p.Grad.Data {
			p.Grad.Data[i] *= scale
		}
	}
}

// Predict returns the arg-max class for each sample, evaluating in
// inference mode with bounded batch sizes.
func (m *Model) Predict(x *Tensor) []int {
	n := x.Dim(0)
	out := make([]int, n)
	const batch = 64
	c, h, w := x.Dim(1), x.Dim(2), x.Dim(3)
	sample := c * h * w
	for start := 0; start < n; start += batch {
		end := min(start+batch, n)
		xb := &Tensor{Shape: []int{end - start, c, h, w}, Data: x.Data[start*sample : end*sample]}
		logits := m.Net.Forward(xb, false)
		classes := logits.Dim(1)
		for i := 0; i < end-start; i++ {
			row := logits.Data[i*classes : (i+1)*classes]
			best := 0
			for j, v := range row {
				if v > row[best] {
					best = j
				}
			}
			out[start+i] = best
		}
	}
	return out
}

// Probabilities returns softmax class probabilities for each sample.
func (m *Model) Probabilities(x *Tensor) *Tensor {
	logits := m.Net.Forward(x, false)
	var sm SoftmaxCrossEntropy
	labels := make([]int, x.Dim(0)) // dummy labels; loss value unused
	sm.Forward(logits, labels)
	return sm.Probs()
}

// Accuracy evaluates top-1 accuracy on a dataset.
func (m *Model) Accuracy(ds *Dataset) float64 {
	pred := m.Predict(ds.X)
	correct := 0
	for i, p := range pred {
		if p == ds.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred))
}

// MACs reports per-sample multiply-accumulates for an input shape.
func (m *Model) MACs(in []int) int64 { return m.Net.MACs(in) }
