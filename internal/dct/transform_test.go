package dct

import (
	"math/rand"
	"testing"
)

func TestTransformDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		src := randBlock(rng)

		naive, direct := src, src
		TransformNaive.Forward(&naive)
		Forward(&direct)
		if naive != direct {
			t.Fatalf("trial %d: TransformNaive.Forward diverges from Forward", trial)
		}
		TransformNaive.Inverse(&naive)
		Inverse(&direct)
		if naive != direct {
			t.Fatalf("trial %d: TransformNaive.Inverse diverges from Inverse", trial)
		}

		aan, directAAN := src, src
		TransformAAN.Forward(&aan)
		ForwardAAN(&directAAN)
		if aan != directAAN {
			t.Fatalf("trial %d: TransformAAN.Forward diverges from ForwardAAN", trial)
		}
		TransformAAN.Inverse(&aan)
		InverseAAN(&directAAN)
		if aan != directAAN {
			t.Fatalf("trial %d: TransformAAN.Inverse diverges from InverseAAN", trial)
		}
	}
}

func TestTransformRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, xf := range []Transform{TransformNaive, TransformAAN} {
		for trial := 0; trial < 50; trial++ {
			orig := randBlock(rng)
			b := orig
			xf.Forward(&b)
			xf.Inverse(&b)
			if d := maxAbsDiff(&b, &orig); d > 1e-9 {
				t.Fatalf("%v trial %d: round-trip error %g", xf, trial, d)
			}
		}
	}
}

func TestTransformEnginesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		src := randBlock(rng)
		naive, aan := src, src
		TransformNaive.Forward(&naive)
		TransformAAN.Forward(&aan)
		if d := maxAbsDiff(&naive, &aan); d > 1e-9 {
			t.Fatalf("trial %d: forward engines differ by %g", trial, d)
		}
		TransformNaive.Inverse(&naive)
		TransformAAN.Inverse(&aan)
		if d := maxAbsDiff(&naive, &aan); d > 1e-9 {
			t.Fatalf("trial %d: inverse engines differ by %g", trial, d)
		}
	}
}

func TestTransformValidString(t *testing.T) {
	if !TransformNaive.Valid() || !TransformAAN.Valid() {
		t.Fatal("known engines must be valid")
	}
	if Transform(42).Valid() {
		t.Fatal("unknown engine must be invalid")
	}
	if got := TransformNaive.String(); got != "naive" {
		t.Fatalf("TransformNaive.String() = %q", got)
	}
	if got := TransformAAN.String(); got != "aan" {
		t.Fatalf("TransformAAN.String() = %q", got)
	}
	if got := Transform(42).String(); got != "transform(42)" {
		t.Fatalf("Transform(42).String() = %q", got)
	}
}

func TestParseTransform(t *testing.T) {
	cases := []struct {
		in   string
		want Transform
		err  bool
	}{
		{"naive", TransformNaive, false},
		{"", TransformNaive, false},
		{"aan", TransformAAN, false},
		{"fast", TransformAAN, false},
		{"simd", TransformNaive, true},
	}
	for _, tc := range cases {
		got, err := ParseTransform(tc.in)
		if (err != nil) != tc.err {
			t.Fatalf("ParseTransform(%q) error = %v, want err=%v", tc.in, err, tc.err)
		}
		if got != tc.want {
			t.Fatalf("ParseTransform(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func BenchmarkTransformForward(b *testing.B) {
	for _, xf := range []Transform{TransformNaive, TransformAAN} {
		b.Run(xf.String(), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			blk := randBlock(rng)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				work := blk
				xf.Forward(&work)
			}
		})
	}
}

func BenchmarkTransformInverse(b *testing.B) {
	for _, xf := range []Transform{TransformNaive, TransformAAN} {
		b.Run(xf.String(), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			blk := randBlock(rng)
			Forward(&blk)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				work := blk
				xf.Inverse(&work)
			}
		})
	}
}
