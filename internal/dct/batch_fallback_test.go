//go:build !dct_asm

package dct

// Shape pin for the pure-Go batch kernels. The batch entry points are
// deliberately asm-free: flat float64 loops the compiler lowers well on
// every GOARCH/GOAMD64 level, with no build-tagged assembly variant to
// drift out of sync. If a hand-written asm path is ever added behind a
// `dct_asm` build tag, this file keeps testing the fallback — the
// reference the asm must match bit for bit — on every other build, and
// the constants below document the layout contract the asm would have to
// honor.

import (
	"math"
	"math/rand"
	"testing"
	"unsafe"
)

// TestBatchLayoutContract pins the flat-plane memory layout the kernels
// (and any future asm) assume: 64 contiguous float64 per block, block k
// at byte offset 512k, row-major within the block.
func TestBatchLayoutContract(t *testing.T) {
	if BlockSize2 != 64 {
		t.Fatalf("BlockSize2 = %d, want 64", BlockSize2)
	}
	var b Block
	if got := unsafe.Sizeof(b); got != 512 {
		t.Fatalf("Block occupies %d bytes, want 512 (64 contiguous float64)", got)
	}
	p := make([]float64, 3*BlockSize2)
	for k := 0; k < 3; k++ {
		blk := (*Block)(p[k*BlockSize2:])
		if unsafe.Pointer(blk) != unsafe.Pointer(&p[k*BlockSize2]) {
			t.Fatalf("block %d does not alias the plane at offset %d", k, k*BlockSize2)
		}
	}
}

// TestPureGoKernelsMatchStridedReference pins the flat kernels against
// the strided 1-D passes they restructure (fdctAAN1D/idctAAN1D with the
// exact off/stride schedule of the per-block API). A future asm path
// must reproduce these bits; the pure-Go fallback is the oracle.
func TestPureGoKernelsMatchStridedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	for trial := 0; trial < 200; trial++ {
		var flat, ref Block
		for i := range flat {
			flat[i] = float64(rng.Intn(2048) - 1024)
			ref[i] = flat[i]
		}

		fdctAANRowsFlat(&flat)
		for y := 0; y < BlockSize; y++ {
			fdctAAN1D(ref[:], y*BlockSize, 1)
		}
		requireSameBits(t, "forward row pass", &flat, &ref)

		fdctAANColsFlat(&flat)
		for x := 0; x < BlockSize; x++ {
			fdctAAN1D(ref[:], x, BlockSize)
		}
		requireSameBits(t, "forward column pass", &flat, &ref)

		idctAANColsFlat(&flat)
		for x := 0; x < BlockSize; x++ {
			idctAAN1D(ref[:], x, BlockSize)
		}
		requireSameBits(t, "inverse column pass", &flat, &ref)

		idctAANRowsFlat(&flat)
		for y := 0; y < BlockSize; y++ {
			idctAAN1D(ref[:], y*BlockSize, 1)
		}
		requireSameBits(t, "inverse row pass", &flat, &ref)
	}
}

func requireSameBits(t *testing.T, stage string, got, want *Block) {
	t.Helper()
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: element %d = %v flat vs %v strided (bit mismatch)", stage, i, got[i], want[i])
		}
	}
}
