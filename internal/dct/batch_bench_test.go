package dct

// Benchmarks for the batch-of-blocks kernels — the per-core throughput
// numbers behind BENCH_7. Each run reports ns/block (the figure to
// compare against the per-block benchmarks above it) and MB/s over the
// plane bytes. The 128-block run is one luma block row of a 1024-wide
// frame, the codec's gather unit; 16 blocks models a small component
// row. Run with:
//
//	go test ./internal/dct -run XXX -bench Batch -benchmem

import (
	"math/rand"
	"testing"
)

const benchBatchBlocks = 128

func benchPlane(n int) []float64 {
	rng := rand.New(rand.NewSource(3))
	p := make([]float64, n*BlockSize2)
	for i := range p {
		p[i] = float64(rng.Intn(256) - 128)
	}
	return p
}

// runBatchBench times fn over a fresh copy of plane per iteration and
// normalizes to per-block cost.
func runBatchBench(b *testing.B, plane []float64, fn func([]float64)) {
	work := make([]float64, len(plane))
	blocks := len(plane) / BlockSize2
	b.ReportAllocs()
	b.SetBytes(int64(len(plane) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, plane)
		fn(work)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*blocks), "ns/block")
}

func BenchmarkForwardBatch(b *testing.B) {
	for _, tc := range []struct {
		name string
		n    int
		fn   func([]float64)
	}{
		{"aan-raw-16", 16, ForwardAANRawBatch},
		{"aan-raw-128", benchBatchBlocks, ForwardAANRawBatch},
		{"aan-128", benchBatchBlocks, ForwardAANBatch},
		{"naive-128", benchBatchBlocks, ForwardBatch},
	} {
		b.Run(tc.name, func(b *testing.B) {
			runBatchBench(b, benchPlane(tc.n), tc.fn)
		})
	}
}

func BenchmarkInverseBatch(b *testing.B) {
	for _, tc := range []struct {
		name string
		n    int
		fn   func([]float64)
	}{
		{"aan-raw-16", 16, InverseAANRawBatch},
		{"aan-raw-128", benchBatchBlocks, InverseAANRawBatch},
		{"aan-128", benchBatchBlocks, InverseAANBatch},
		{"naive-128", benchBatchBlocks, InverseBatch},
	} {
		b.Run(tc.name, func(b *testing.B) {
			plane := benchPlane(tc.n)
			ForwardAANRawBatch(plane) // coefficient-domain input
			runBatchBench(b, plane, tc.fn)
		})
	}
}

// BenchmarkPerBlockLoop is the baseline the batch kernels replace: the
// same plane transformed through the per-block API one block at a time.
// The delta against BenchmarkForwardBatch/aan-raw-128 is the pure
// restructuring win (no gather or quantizer in either loop).
func BenchmarkPerBlockLoop(b *testing.B) {
	plane := benchPlane(benchBatchBlocks)
	work := make([]float64, len(plane))
	b.ReportAllocs()
	b.SetBytes(int64(len(plane) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, plane)
		for k := 0; k < benchBatchBlocks; k++ {
			ForwardAANRaw((*Block)(work[k*BlockSize2:]))
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*benchBatchBlocks), "ns/block")
}
