// Package dct implements the 8×8 two-dimensional type-II discrete cosine
// transform and its inverse with the orthonormal scaling used by JPEG
// (ITU-T T.81 §A.3.3):
//
//	F(u,v) = ¼·C(u)·C(v)·Σₓ Σ_y f(x,y)·cos((2x+1)uπ/16)·cos((2y+1)vπ/16)
//
// with C(0)=1/√2 and C(k)=1 otherwise. Three implementations are provided:
// a direct O(N⁴) reference used as a test oracle, a separable row–column
// transform (Forward/Inverse), and the Arai–Agui–Nakajima fast transform
// (ForwardAAN/InverseAAN). The codec selects between the latter two
// through the Transform engine enum (TransformNaive, TransformAAN); all
// engines compute the same orthonormal transform and differ only in
// floating-point rounding at the ~1e-12 level.
//
// The AAN transform is natively *scaled*: its butterflies produce the
// orthonormal result times a fixed per-band factor. Codecs that
// quantize anyway never pay to undo that scaling — ForwardAANRaw and
// InverseAANRaw expose the bare butterflies (reached through
// Transform.ForwardScaled/InverseScaled), and AANForwardDescale/
// AANInversePrescale export the factors so quantization tables can fold
// them into their divisors and multipliers (see qtable.Table.FwdScaled
// and InvScaled). That turns the per-block hot loop into exactly one
// multiply or divide per coefficient.
package dct

import "math"

// BlockSize is the linear dimension of a JPEG transform block.
const BlockSize = 8

// Block holds an 8×8 tile in row-major order. Depending on context it
// contains level-shifted samples (spatial domain) or DCT coefficients
// (frequency domain).
type Block [BlockSize * BlockSize]float64

// cosTable[u][x] = cos((2x+1)·u·π/16) scaled by C(u)/2, so that a row pass
// followed by a column pass yields the orthonormal 2-D transform.
var cosTable [BlockSize][BlockSize]float64

// basisTable[u][x] = cos((2x+1)·u·π/16) unscaled, used by the reference
// implementation and by BasisFunction.
var basisTable [BlockSize][BlockSize]float64

func init() {
	for u := 0; u < BlockSize; u++ {
		cu := 1.0
		if u == 0 {
			cu = math.Sqrt2 / 2 // 1/√2
		}
		for x := 0; x < BlockSize; x++ {
			c := math.Cos(float64(2*x+1) * float64(u) * math.Pi / 16)
			basisTable[u][x] = c
			cosTable[u][x] = c * cu / 2
		}
	}
}

// Forward replaces b (spatial samples) with its 2-D DCT coefficients in
// place. b[0] becomes the DC coefficient.
func Forward(b *Block) {
	var tmp Block
	// Row pass: tmp[y][u] = Σₓ b[y][x]·cos[u][x]·C(u)/2
	for y := 0; y < BlockSize; y++ {
		row := b[y*BlockSize : y*BlockSize+BlockSize]
		for u := 0; u < BlockSize; u++ {
			s := 0.0
			ct := &cosTable[u]
			for x := 0; x < BlockSize; x++ {
				s += row[x] * ct[x]
			}
			tmp[y*BlockSize+u] = s
		}
	}
	// Column pass: b[v][u] = Σ_y tmp[y][u]·cos[v][y]·C(v)/2
	for u := 0; u < BlockSize; u++ {
		for v := 0; v < BlockSize; v++ {
			s := 0.0
			ct := &cosTable[v]
			for y := 0; y < BlockSize; y++ {
				s += tmp[y*BlockSize+u] * ct[y]
			}
			b[v*BlockSize+u] = s
		}
	}
}

// Inverse replaces b (DCT coefficients) with spatial samples in place.
func Inverse(b *Block) {
	var tmp Block
	// Column pass: tmp[y][u] = Σ_v b[v][u]·cos[v][y]·C(v)/2
	for u := 0; u < BlockSize; u++ {
		for y := 0; y < BlockSize; y++ {
			s := 0.0
			for v := 0; v < BlockSize; v++ {
				s += b[v*BlockSize+u] * cosTable[v][y]
			}
			tmp[y*BlockSize+u] = s
		}
	}
	// Row pass: b[y][x] = Σ_u tmp[y][u]·cos[u][x]·C(u)/2
	for y := 0; y < BlockSize; y++ {
		for x := 0; x < BlockSize; x++ {
			s := 0.0
			for u := 0; u < BlockSize; u++ {
				s += tmp[y*BlockSize+u] * cosTable[u][x]
			}
			b[y*BlockSize+x] = s
		}
	}
}

// ForwardReference computes the transform by the O(N⁴) textbook definition.
// It is the oracle for Forward in tests.
func ForwardReference(b *Block) {
	var out Block
	for v := 0; v < BlockSize; v++ {
		for u := 0; u < BlockSize; u++ {
			s := 0.0
			for y := 0; y < BlockSize; y++ {
				for x := 0; x < BlockSize; x++ {
					s += b[y*BlockSize+x] * basisTable[u][x] * basisTable[v][y]
				}
			}
			cu, cv := 1.0, 1.0
			if u == 0 {
				cu = math.Sqrt2 / 2
			}
			if v == 0 {
				cv = math.Sqrt2 / 2
			}
			out[v*BlockSize+u] = s * cu * cv / 4
		}
	}
	*b = out
}

// InverseReference computes the inverse transform by the textbook
// definition.
func InverseReference(b *Block) {
	var out Block
	for y := 0; y < BlockSize; y++ {
		for x := 0; x < BlockSize; x++ {
			s := 0.0
			for v := 0; v < BlockSize; v++ {
				for u := 0; u < BlockSize; u++ {
					cu, cv := 1.0, 1.0
					if u == 0 {
						cu = math.Sqrt2 / 2
					}
					if v == 0 {
						cv = math.Sqrt2 / 2
					}
					s += cu * cv * b[v*BlockSize+u] * basisTable[u][x] * basisTable[v][y]
				}
			}
			out[y*BlockSize+x] = s / 4
		}
	}
	*b = out
}

// BasisFunction returns the value of the (u,v) DCT basis at pixel (x,y),
// matching b(i,j) in Eq. 1 of the DeepN-JPEG paper.
func BasisFunction(u, v, x, y int) float64 {
	return basisTable[u][x] * basisTable[v][y]
}

// LevelShift subtracts 128 from unsigned 8-bit samples, mapping them to the
// signed range expected by the forward transform.
func LevelShift(samples []uint8, dst *Block) {
	for i, s := range samples {
		dst[i] = float64(s) - 128
	}
}

// LevelUnshift adds 128, rounds, and clamps spatial samples back to [0,255].
func LevelUnshift(b *Block, dst []uint8) {
	for i := range b {
		v := math.Round(b[i] + 128)
		if v < 0 {
			v = 0
		} else if v > 255 {
			v = 255
		}
		dst[i] = uint8(v)
	}
}
