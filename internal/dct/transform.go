package dct

import "fmt"

// Transform selects a forward/inverse block-transform engine. The codec
// threads a Transform through every 8×8 tile it processes, so one enum
// value switches the whole encode, decode, and requantize pipeline
// between implementations.
//
// All engines compute the same orthonormal 2-D DCT; they differ only in
// operation count and floating-point rounding (bounded by ~1e-12 per
// coefficient, which the codec's quantizer absorbs — see the equivalence
// tests in internal/jpegcodec).
type Transform int

const (
	// TransformNaive is the separable row–column transform
	// (Forward/Inverse), the compatibility default: the zero value keeps
	// every existing call site bit-compatible with the pre-engine codec.
	TransformNaive Transform = iota
	// TransformAAN is the Arai–Agui–Nakajima fast transform
	// (ForwardAAN/InverseAAN): 5 multiplications per 1-D pass instead of
	// 64, roughly halving block-transform cost.
	TransformAAN
)

// Valid reports whether t names a known engine.
func (t Transform) Valid() bool {
	return t == TransformNaive || t == TransformAAN
}

func (t Transform) String() string {
	switch t {
	case TransformNaive:
		return "naive"
	case TransformAAN:
		return "aan"
	default:
		return fmt.Sprintf("transform(%d)", int(t))
	}
}

// ParseTransform maps the CLI/config spellings to an engine.
func ParseTransform(s string) (Transform, error) {
	switch s {
	case "naive", "":
		return TransformNaive, nil
	case "aan", "fast":
		return TransformAAN, nil
	default:
		return TransformNaive, fmt.Errorf("dct: unknown transform %q (want naive or aan)", s)
	}
}

// Forward replaces b (spatial samples) with its 2-D DCT coefficients
// using the selected engine. Unknown engines fall back to the naive
// path; callers that surface the choice validate with Valid first.
func (t Transform) Forward(b *Block) {
	if t == TransformAAN {
		ForwardAAN(b)
		return
	}
	Forward(b)
}

// Inverse replaces b (DCT coefficients) with spatial samples using the
// selected engine.
func (t Transform) Inverse(b *Block) {
	if t == TransformAAN {
		InverseAAN(b)
		return
	}
	Inverse(b)
}

// ForwardScaled runs the forward transform in the engine's native scaled
// basis: TransformAAN runs only the raw butterflies (output divided by
// AANForwardDescale per band), TransformNaive is already orthonormal and
// runs Forward unchanged. Callers must quantize with divisors built for
// the same engine (qtable.Table.FwdScaled), which fold the residual scale
// back in — that pairing is what removes the per-block descale pass.
func (t Transform) ForwardScaled(b *Block) {
	if t == TransformAAN {
		ForwardAANRaw(b)
		return
	}
	Forward(b)
}

// InverseScaled is the inverse counterpart: input must be dequantized
// with multipliers built for the same engine (qtable.Table.InvScaled),
// which pre-apply AANInversePrescale for TransformAAN; TransformNaive
// takes orthonormal coefficients and runs Inverse unchanged.
func (t Transform) InverseScaled(b *Block) {
	if t == TransformAAN {
		InverseAANRaw(b)
		return
	}
	Inverse(b)
}
