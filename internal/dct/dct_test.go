package dct

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randBlock(rng *rand.Rand) Block {
	var b Block
	for i := range b {
		b[i] = rng.Float64()*255 - 128
	}
	return b
}

func maxAbsDiff(a, b *Block) float64 {
	m := 0.0
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}

func TestForwardMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		b := randBlock(rng)
		ref := b
		Forward(&b)
		ForwardReference(&ref)
		if d := maxAbsDiff(&b, &ref); d > 1e-9 {
			t.Fatalf("trial %d: max |fast-ref| = %g", trial, d)
		}
	}
}

func TestInverseMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		b := randBlock(rng)
		ref := b
		Inverse(&b)
		InverseReference(&ref)
		if d := maxAbsDiff(&b, &ref); d > 1e-9 {
			t.Fatalf("trial %d: max |fast-ref| = %g", trial, d)
		}
	}
}

func TestRoundTripIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		orig := randBlock(rng)
		b := orig
		Forward(&b)
		Inverse(&b)
		if d := maxAbsDiff(&b, &orig); d > 1e-9 {
			t.Fatalf("trial %d: round trip error %g", trial, d)
		}
	}
}

// TestDCOfConstantBlock checks that a flat block transforms to a single DC
// coefficient of value 8·v (orthonormal scaling: DC = Σ/8 = 64v/8).
func TestDCOfConstantBlock(t *testing.T) {
	var b Block
	for i := range b {
		b[i] = 100
	}
	Forward(&b)
	if math.Abs(b[0]-800) > 1e-9 {
		t.Fatalf("DC = %g, want 800", b[0])
	}
	for i := 1; i < len(b); i++ {
		if math.Abs(b[i]) > 1e-9 {
			t.Fatalf("AC[%d] = %g, want 0", i, b[i])
		}
	}
}

// TestParseval verifies energy preservation: Σf² == ΣF² for the orthonormal
// transform.
func TestParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		b := randBlock(rng)
		var spatial float64
		for _, v := range b {
			spatial += v * v
		}
		Forward(&b)
		var freq float64
		for _, v := range b {
			freq += v * v
		}
		if math.Abs(spatial-freq) > 1e-6*spatial {
			t.Fatalf("trial %d: spatial energy %g != frequency energy %g", trial, spatial, freq)
		}
	}
}

// TestLinearity: DCT(a·x + b·y) == a·DCT(x) + b·DCT(y).
func TestLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y := randBlock(rng), randBlock(rng)
	const ca, cb = 0.7, -1.3
	var mix Block
	for i := range mix {
		mix[i] = ca*x[i] + cb*y[i]
	}
	Forward(&x)
	Forward(&y)
	Forward(&mix)
	for i := range mix {
		want := ca*x[i] + cb*y[i]
		if math.Abs(mix[i]-want) > 1e-9 {
			t.Fatalf("coef %d: got %g want %g", i, mix[i], want)
		}
	}
}

// TestSingleBasisCoefficient: the spatial rendering of a single unit
// coefficient (obtained via the reference inverse) forward-transforms back
// to exactly that delta, for every one of the 64 bands.
func TestSingleBasisCoefficient(t *testing.T) {
	for u := 0; u < BlockSize; u++ {
		for v := 0; v < BlockSize; v++ {
			var b Block
			b[v*BlockSize+u] = 1
			InverseReference(&b)
			// Sanity: the spatial pattern must be proportional to the
			// (u,v) basis function everywhere.
			scale := b[0] / func() float64 {
				f := BasisFunction(u, v, 0, 0)
				return f
			}()
			for y := 0; y < BlockSize; y++ {
				for x := 0; x < BlockSize; x++ {
					want := scale * BasisFunction(u, v, x, y)
					if math.Abs(b[y*BlockSize+x]-want) > 1e-9 {
						t.Fatalf("basis (%d,%d) not separable at (%d,%d)", u, v, x, y)
					}
				}
			}
			Forward(&b)
			for j := range b {
				want := 0.0
				if j == v*BlockSize+u {
					want = 1.0
				}
				if math.Abs(b[j]-want) > 1e-9 {
					t.Fatalf("basis (%d,%d): coef[%d] = %g, want %g", u, v, j, b[j], want)
				}
			}
		}
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		orig := randBlock(rng)
		b := orig
		Forward(&b)
		Inverse(&b)
		return maxAbsDiff(&b, &orig) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLevelShiftRoundTrip(t *testing.T) {
	samples := make([]uint8, 64)
	rng := rand.New(rand.NewSource(6))
	for i := range samples {
		samples[i] = uint8(rng.Intn(256))
	}
	var b Block
	LevelShift(samples, &b)
	out := make([]uint8, 64)
	LevelUnshift(&b, out)
	for i := range samples {
		if samples[i] != out[i] {
			t.Fatalf("sample %d: %d != %d", i, samples[i], out[i])
		}
	}
}

func TestLevelUnshiftClamps(t *testing.T) {
	var b Block
	b[0] = 500  // 628 after shift, clamps to 255
	b[1] = -500 // -372 after shift, clamps to 0
	out := make([]uint8, 64)
	LevelUnshift(&b, out)
	if out[0] != 255 || out[1] != 0 {
		t.Fatalf("clamping failed: got %d, %d", out[0], out[1])
	}
}

func BenchmarkForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	blk := randBlock(rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		work := blk
		Forward(&work)
	}
}

func BenchmarkInverse(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	blk := randBlock(rng)
	Forward(&blk)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		work := blk
		Inverse(&work)
	}
}
