package dct

// Batch-vs-block identity: the batch kernels restructure the loops, not
// the arithmetic, so their output must be BIT-identical to running the
// per-block API over each 64-float run — not merely close. Bit equality
// is what lets the codec swap whole pipelines between the two forms
// without a single emitted byte changing; these tests are the foundation
// the jpegcodec stream-equivalence suites stand on.

import (
	"math"
	"math/rand"
	"testing"
)

// randPlane draws n blocks of spatial-range samples (level-shifted
// pixels live in [-128, 127]) plus a few adversarial values.
func randPlane(rng *rand.Rand, n int) []float64 {
	p := make([]float64, n*BlockSize2)
	for i := range p {
		switch rng.Intn(16) {
		case 0:
			p[i] = 0
		case 1:
			p[i] = 127
		case 2:
			p[i] = -128
		default:
			p[i] = float64(rng.Intn(256) - 128)
		}
	}
	return p
}

// randCoefPlane draws n blocks of dequantized-coefficient-range values.
func randCoefPlane(rng *rand.Rand, n int) []float64 {
	p := make([]float64, n*BlockSize2)
	for i := range p {
		if rng.Intn(4) == 0 {
			p[i] = float64(rng.Intn(2047)-1023) * (1 + rng.Float64())
		}
	}
	return p
}

// batchPairs enumerates every batch entry point against its per-block
// oracle.
var batchPairs = []struct {
	name   string
	batch  func([]float64)
	block  func(*Block)
	coefIn bool // input is coefficient-domain (inverse direction)
}{
	{"ForwardAANRawBatch", ForwardAANRawBatch, ForwardAANRaw, false},
	{"InverseAANRawBatch", InverseAANRawBatch, InverseAANRaw, true},
	{"ForwardAANBatch", ForwardAANBatch, ForwardAAN, false},
	{"InverseAANBatch", InverseAANBatch, InverseAAN, true},
	{"ForwardBatch", ForwardBatch, Forward, false},
	{"InverseBatch", InverseBatch, Inverse, true},
}

func TestBatchBitIdentityWithPerBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	sizes := []int{1, 2, 3, 7, 16, 33, 128}
	for _, pair := range batchPairs {
		t.Run(pair.name, func(t *testing.T) {
			for _, n := range sizes {
				var plane []float64
				if pair.coefIn {
					plane = randCoefPlane(rng, n)
				} else {
					plane = randPlane(rng, n)
				}
				want := make([]float64, len(plane))
				copy(want, plane)
				for k := 0; k < n; k++ {
					pair.block((*Block)(want[k*BlockSize2:]))
				}
				pair.batch(plane)
				for i := range plane {
					if math.Float64bits(plane[i]) != math.Float64bits(want[i]) {
						t.Fatalf("%d blocks: element %d (block %d band %d) = %v batch vs %v per-block (bit mismatch)",
							n, i, i/BlockSize2, i%BlockSize2, plane[i], want[i])
					}
				}
			}
		})
	}
}

// TestScaledBatchBitIdentity pins the engine-dispatching batch methods
// against their per-block counterparts.
func TestScaledBatchBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for _, xf := range []Transform{TransformNaive, TransformAAN} {
		for _, dir := range []string{"forward", "inverse"} {
			n := 5 + rng.Intn(20)
			var plane []float64
			if dir == "forward" {
				plane = randPlane(rng, n)
			} else {
				plane = randCoefPlane(rng, n)
			}
			want := make([]float64, len(plane))
			copy(want, plane)
			for k := 0; k < n; k++ {
				b := (*Block)(want[k*BlockSize2:])
				if dir == "forward" {
					xf.ForwardScaled(b)
				} else {
					xf.InverseScaled(b)
				}
			}
			if dir == "forward" {
				xf.ForwardScaledBatch(plane)
			} else {
				xf.InverseScaledBatch(plane)
			}
			for i := range plane {
				if math.Float64bits(plane[i]) != math.Float64bits(want[i]) {
					t.Fatalf("%v %s: element %d = %v batch vs %v per-block", xf, dir, i, plane[i], want[i])
				}
			}
		}
	}
}

// TestBatchRoundTrip drives forward-then-inverse through the orthonormal
// batch API and checks the plane reproduces its input.
func TestBatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for _, xf := range []Transform{TransformNaive, TransformAAN} {
		plane := randPlane(rng, 9)
		orig := make([]float64, len(plane))
		copy(orig, plane)
		xf.ForwardBatchOf(plane)
		xf.InverseBatchOf(plane)
		for i := range plane {
			if math.Abs(plane[i]-orig[i]) > 1e-9 {
				t.Fatalf("%v: element %d round-trips to %v, want %v", xf, i, plane[i], orig[i])
			}
		}
	}
}

// TestBatchCrossEngineAgreement checks the two engines' batch forwards
// agree to the same tolerance as their per-block forms.
func TestBatchCrossEngineAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	a := randPlane(rng, 12)
	b := make([]float64, len(a))
	copy(b, a)
	TransformNaive.ForwardBatchOf(a)
	TransformAAN.ForwardBatchOf(b)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("element %d: naive %v vs aan %v", i, a[i], b[i])
		}
	}
}

func TestBlocksRejectsMisalignedPlane(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("a plane whose length is not a multiple of 64 must panic")
		}
	}()
	ForwardAANRawBatch(make([]float64, 65))
}

func TestBlocksEmptyPlane(t *testing.T) {
	// Zero blocks is a valid (empty) run: nothing to transform, no panic.
	ForwardAANRawBatch(nil)
	if got := Blocks(make([]float64, 128)); got != 2 {
		t.Fatalf("Blocks(128 floats) = %d, want 2", got)
	}
}
