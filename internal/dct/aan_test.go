package dct

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestForwardAANMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 200; trial++ {
		b := randBlock(rng)
		ref := b
		ForwardAAN(&b)
		ForwardReference(&ref)
		if d := maxAbsDiff(&b, &ref); d > 1e-9 {
			t.Fatalf("trial %d: max |aan-ref| = %g", trial, d)
		}
	}
}

func TestInverseAANMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		b := randBlock(rng)
		ref := b
		InverseAAN(&b)
		InverseReference(&ref)
		if d := maxAbsDiff(&b, &ref); d > 1e-9 {
			t.Fatalf("trial %d: max |aan-ref| = %g", trial, d)
		}
	}
}

func TestAANRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		orig := randBlock(rng)
		b := orig
		ForwardAAN(&b)
		InverseAAN(&b)
		return maxAbsDiff(&b, &orig) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestAANCrossCompatible: forward with one implementation, inverse with
// the other — both directions must land back on the original samples.
func TestAANCrossCompatible(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	orig := randBlock(rng)
	b := orig
	ForwardAAN(&b)
	Inverse(&b)
	if d := maxAbsDiff(&b, &orig); d > 1e-9 {
		t.Fatalf("AAN forward + separable inverse: %g", d)
	}
	b = orig
	Forward(&b)
	InverseAAN(&b)
	if d := maxAbsDiff(&b, &orig); d > 1e-9 {
		t.Fatalf("separable forward + AAN inverse: %g", d)
	}
}

func TestAANDCOfConstantBlock(t *testing.T) {
	var b Block
	for i := range b {
		b[i] = 100
	}
	ForwardAAN(&b)
	if d := b[0] - 800; d > 1e-9 || d < -1e-9 {
		t.Fatalf("DC = %g, want 800", b[0])
	}
}

func BenchmarkForwardAAN(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	blk := randBlock(rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		work := blk
		ForwardAAN(&work)
	}
}

func BenchmarkInverseAAN(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	blk := randBlock(rng)
	ForwardAAN(&blk)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		work := blk
		InverseAAN(&work)
	}
}
