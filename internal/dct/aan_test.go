package dct

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestForwardAANMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 200; trial++ {
		b := randBlock(rng)
		ref := b
		ForwardAAN(&b)
		ForwardReference(&ref)
		if d := maxAbsDiff(&b, &ref); d > 1e-9 {
			t.Fatalf("trial %d: max |aan-ref| = %g", trial, d)
		}
	}
}

func TestInverseAANMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		b := randBlock(rng)
		ref := b
		InverseAAN(&b)
		InverseReference(&ref)
		if d := maxAbsDiff(&b, &ref); d > 1e-9 {
			t.Fatalf("trial %d: max |aan-ref| = %g", trial, d)
		}
	}
}

func TestAANRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		orig := randBlock(rng)
		b := orig
		ForwardAAN(&b)
		InverseAAN(&b)
		return maxAbsDiff(&b, &orig) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestAANCrossCompatible: forward with one implementation, inverse with
// the other — both directions must land back on the original samples.
func TestAANCrossCompatible(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	orig := randBlock(rng)
	b := orig
	ForwardAAN(&b)
	Inverse(&b)
	if d := maxAbsDiff(&b, &orig); d > 1e-9 {
		t.Fatalf("AAN forward + separable inverse: %g", d)
	}
	b = orig
	Forward(&b)
	InverseAAN(&b)
	if d := maxAbsDiff(&b, &orig); d > 1e-9 {
		t.Fatalf("separable forward + AAN inverse: %g", d)
	}
}

// TestAANRawScaleContract pins the decomposition the scaled-table codec
// path is built on: the raw butterflies plus an explicit per-band scale
// multiply must reproduce the orthonormal transform, in both directions.
// A drift in either the butterflies or the exported factors breaks the
// folded quantization tables silently — this is the test that catches it
// at the dct layer.
func TestAANRawScaleContract(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		orig := randBlock(rng)

		// Forward: raw output × descale == orthonormal reference.
		fwd := orig
		ForwardAANRaw(&fwd)
		for i := range fwd {
			fwd[i] *= AANForwardDescale(i)
		}
		ref := orig
		ForwardReference(&ref)
		if d := maxAbsDiff(&fwd, &ref); d > 1e-9 {
			t.Fatalf("trial %d: raw forward + descale vs reference: %g", trial, d)
		}

		// Inverse: prescale × raw butterflies == orthonormal reference.
		inv := orig
		for i := range inv {
			inv[i] *= AANInversePrescale(i)
		}
		InverseAANRaw(&inv)
		ref = orig
		InverseReference(&ref)
		if d := maxAbsDiff(&inv, &ref); d > 1e-9 {
			t.Fatalf("trial %d: prescale + raw inverse vs reference: %g", trial, d)
		}
	}
}

// TestAANScaleFactorsPositive guards the divisors' sanity: folding a
// zero or negative factor into a quantization table would flip or zero
// coefficients.
func TestAANScaleFactorsPositive(t *testing.T) {
	for i := 0; i < BlockSize*BlockSize; i++ {
		if AANForwardDescale(i) <= 0 {
			t.Fatalf("descale[%d] = %g, want > 0", i, AANForwardDescale(i))
		}
		if AANInversePrescale(i) <= 0 {
			t.Fatalf("prescale[%d] = %g, want > 0", i, AANInversePrescale(i))
		}
	}
}

func TestAANDCOfConstantBlock(t *testing.T) {
	var b Block
	for i := range b {
		b[i] = 100
	}
	ForwardAAN(&b)
	if d := b[0] - 800; d > 1e-9 || d < -1e-9 {
		t.Fatalf("DC = %g, want 800", b[0])
	}
}

func BenchmarkForwardAAN(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	blk := randBlock(rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		work := blk
		ForwardAAN(&work)
	}
}

func BenchmarkInverseAAN(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	blk := randBlock(rng)
	ForwardAAN(&blk)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		work := blk
		InverseAAN(&work)
	}
}

// The raw variants are what the fused-table codec paths run per block;
// the delta against ForwardAAN/InverseAAN is the descale/prescale pass
// the folded quantization tables eliminate.
func BenchmarkForwardAANRaw(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	blk := randBlock(rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		work := blk
		ForwardAANRaw(&work)
	}
}

func BenchmarkInverseAANRaw(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	blk := randBlock(rng)
	ForwardAANRaw(&blk)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		work := blk
		InverseAANRaw(&work)
	}
}
