package dct

// This file implements the Arai–Agui–Nakajima (AAN) fast DCT, the
// algorithm inside libjpeg's "fast" paths. A 1-D AAN pass needs only 5
// multiplications and 29 additions but produces *scaled* outputs: the 2-D
// result equals the orthonormal DCT multiplied by a fixed per-band factor.
// ForwardAAN/InverseAAN fold that factor back in, so they are drop-in
// replacements for Forward/Inverse.
//
// Codecs that quantize anyway never need that extra multiply pass:
// ForwardAANRaw/InverseAANRaw expose the bare butterflies, and
// AANForwardDescale/AANInversePrescale expose the per-band factors so the
// quantization table can absorb them (qtable.Table.FwdScaled/InvScaled) —
// libjpeg's scaled-table trick, which the codec's hot loops use.

import "math"

// aanDescale[u] converts one dimension of raw AAN butterfly output to the
// orthonormal basis; the 2-D factor is aanDescale[u]·aanDescale[v]. The
// factors are calibrated once at init against the closed-form 1-D DCT of
// each basis vector, which keeps them exact for this butterfly regardless
// of which of the (several) published AAN scalings the code matches.
var aanDescale [BlockSize]float64

// aanPrescale[u] converts one dimension of orthonormal coefficients to
// the scaled convention idctAAN1D expects; the 2-D factor is
// aanPrescale[u]·aanPrescale[v]. Like aanDescale it is calibrated at
// init, so the tables stay correct for this exact butterfly.
var aanPrescale [BlockSize]float64

// aanDescale2D and aanPrescale2D hold the separable 2-D factors in
// natural (row-major) order: index v*8+u carries the product of the two
// 1-D factors. They are what scaled quantization tables fold in.
var aanDescale2D, aanPrescale2D [BlockSize * BlockSize]float64

func init() {
	for u := 0; u < BlockSize; u++ {
		// Forward: input = the u-th cosine basis vector (computed locally:
		// package init order must not depend on dct.go's tables). Its
		// orthonormal 1-D DCT is a single nonzero coefficient:
		// c(u)·Σₓcos², with c(0)=1/√8 and c(u>0)=1/2, Σcos² = 8 for u=0
		// and 4 otherwise.
		var d [BlockSize]float64
		for x := 0; x < BlockSize; x++ {
			d[x] = math.Cos(float64(2*x+1) * float64(u) * math.Pi / 16)
		}
		want := 2.0 // 1/2·4 for u > 0
		if u == 0 {
			want = 8 / math.Sqrt(8)
		}
		fdctAAN1D(d[:], 0, 1)
		aanDescale[u] = want / d[u]

		// Inverse: a coefficient delta maps to k(u)·cos basis; the
		// unnormalized inverse DCT needs weight w(u) (1/8 for DC, 1/4
		// otherwise) on the unnormalized coefficient D(u) = ortho/c(u),
		// so the pre-multiplier is w(u)/(k(u)·c(u)).
		var e [BlockSize]float64
		e[u] = 1
		idctAAN1D(e[:], 0, 1)
		k := e[0] / math.Cos(float64(u)*math.Pi/16)
		w, c := 0.25, 0.5
		if u == 0 {
			w, c = 0.125, 1/math.Sqrt(8)
		}
		aanPrescale[u] = w / (k * c)
	}
	for v := 0; v < BlockSize; v++ {
		for u := 0; u < BlockSize; u++ {
			aanDescale2D[v*BlockSize+u] = aanDescale[u] * aanDescale[v]
			aanPrescale2D[v*BlockSize+u] = aanPrescale[u] * aanPrescale[v]
		}
	}
}

// AANForwardDescale returns the factor that maps ForwardAANRaw's output
// at natural index i (v*8+u) to the orthonormal basis: ortho = raw ·
// AANForwardDescale(i). A quantizer folds it into its divisors as
// q[i]/AANForwardDescale(i), after which raw butterfly output quantizes
// directly.
func AANForwardDescale(i int) float64 { return aanDescale2D[i] }

// AANInversePrescale returns the factor that maps orthonormal
// coefficients at natural index i to the scaled convention InverseAANRaw
// expects: scaled = ortho · AANInversePrescale(i). A dequantizer folds it
// into its multipliers as q[i]·AANInversePrescale(i).
func AANInversePrescale(i int) float64 { return aanPrescale2D[i] }

// AAN butterfly constants.
const (
	aanC2 = 0.541196100146197 // √2·cos(3π/8) = c2−c6 rotation constant
	aanC4 = 0.707106781186548 // cos(π/4)
	aanC6 = 1.306562964876377 // c2+c6
	aanC5 = 0.382683432365090 // cos(3π/8)
)

// fdctAAN1D runs the scaled forward AAN butterfly on 8 samples with the
// given stride, in place.
func fdctAAN1D(d []float64, off, stride int) {
	i := func(k int) int { return off + k*stride }
	tmp0 := d[i(0)] + d[i(7)]
	tmp7 := d[i(0)] - d[i(7)]
	tmp1 := d[i(1)] + d[i(6)]
	tmp6 := d[i(1)] - d[i(6)]
	tmp2 := d[i(2)] + d[i(5)]
	tmp5 := d[i(2)] - d[i(5)]
	tmp3 := d[i(3)] + d[i(4)]
	tmp4 := d[i(3)] - d[i(4)]

	// Even part.
	tmp10 := tmp0 + tmp3
	tmp13 := tmp0 - tmp3
	tmp11 := tmp1 + tmp2
	tmp12 := tmp1 - tmp2

	d[i(0)] = tmp10 + tmp11
	d[i(4)] = tmp10 - tmp11

	z1 := (tmp12 + tmp13) * aanC4
	d[i(2)] = tmp13 + z1
	d[i(6)] = tmp13 - z1

	// Odd part.
	tmp10 = tmp4 + tmp5
	tmp11 = tmp5 + tmp6
	tmp12 = tmp6 + tmp7

	z5 := (tmp10 - tmp12) * aanC5
	z2 := aanC2*tmp10 + z5
	z4 := aanC6*tmp12 + z5
	z3 := tmp11 * aanC4

	z11 := tmp7 + z3
	z13 := tmp7 - z3

	d[i(5)] = z13 + z2
	d[i(3)] = z13 - z2
	d[i(1)] = z11 + z4
	d[i(7)] = z11 - z4
}

// idctAAN1D runs the scaled inverse AAN butterfly on 8 samples with the
// given stride, in place. Input must carry the same scaling the forward
// pass produces.
func idctAAN1D(d []float64, off, stride int) {
	i := func(k int) int { return off + k*stride }
	// Even part.
	tmp0 := d[i(0)]
	tmp1 := d[i(2)]
	tmp2 := d[i(4)]
	tmp3 := d[i(6)]

	tmp10 := tmp0 + tmp2
	tmp11 := tmp0 - tmp2
	tmp13 := tmp1 + tmp3
	tmp12 := (tmp1-tmp3)*(2*aanC4) - tmp13

	tmp0 = tmp10 + tmp13
	tmp3 = tmp10 - tmp13
	tmp1 = tmp11 + tmp12
	tmp2 = tmp11 - tmp12

	// Odd part.
	tmp4 := d[i(1)]
	tmp5 := d[i(3)]
	tmp6 := d[i(5)]
	tmp7 := d[i(7)]

	z13 := tmp6 + tmp5
	z10 := tmp6 - tmp5
	z11 := tmp4 + tmp7
	z12 := tmp4 - tmp7

	tmp7 = z11 + z13
	tmp11 = (z11 - z13) * (2 * aanC4)

	z5 := (z10 + z12) * 1.847759065022573 // 2·cos(π/8)
	tmp10 = 1.082392200292394*z12 - z5    // 2·(cos(π/8)−cos(3π/8))
	tmp12 = -2.613125929752753*z10 + z5   // −2·(cos(π/8)+cos(3π/8))

	tmp6 = tmp12 - tmp7
	tmp5 = tmp11 - tmp6
	tmp4 = tmp10 + tmp5

	d[i(0)] = tmp0 + tmp7
	d[i(7)] = tmp0 - tmp7
	d[i(1)] = tmp1 + tmp6
	d[i(6)] = tmp1 - tmp6
	d[i(2)] = tmp2 + tmp5
	d[i(5)] = tmp2 - tmp5
	d[i(4)] = tmp3 + tmp4
	d[i(3)] = tmp3 - tmp4
}

// ForwardAANRaw runs only the forward AAN butterflies: the result is the
// orthonormal 2-D DCT divided by AANForwardDescale per band. Callers that
// quantize fold the factor into their divisors instead of descaling here.
func ForwardAANRaw(b *Block) {
	for y := 0; y < BlockSize; y++ {
		fdctAAN1D(b[:], y*BlockSize, 1)
	}
	for x := 0; x < BlockSize; x++ {
		fdctAAN1D(b[:], x, BlockSize)
	}
}

// InverseAANRaw runs only the inverse AAN butterflies. Input must carry
// the scaled convention: orthonormal coefficients multiplied by
// AANInversePrescale per band (which dequantizers fold into their
// multipliers).
func InverseAANRaw(b *Block) {
	for x := 0; x < BlockSize; x++ {
		idctAAN1D(b[:], x, BlockSize)
	}
	for y := 0; y < BlockSize; y++ {
		idctAAN1D(b[:], y*BlockSize, 1)
	}
}

// ForwardAAN computes the same orthonormal 2-D DCT as Forward using the
// AAN fast algorithm plus a descaling pass.
func ForwardAAN(b *Block) {
	ForwardAANRaw(b)
	for i := range b {
		b[i] *= aanDescale2D[i]
	}
}

// InverseAAN inverts ForwardAAN (and Forward).
func InverseAAN(b *Block) {
	for i := range b {
		b[i] *= aanPrescale2D[i]
	}
	InverseAANRaw(b)
}
