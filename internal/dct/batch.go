package dct

// Batch-of-blocks transforms: the same butterflies as the per-block API,
// restructured over a contiguous run of 64-float blocks ("flat plane")
// so the hot loops compile to straight-line code the hardware can
// pipeline. The per-block kernels (fdctAAN1D/idctAAN1D) index through a
// closure with a runtime stride, which costs a bounds check per element
// access and defeats instruction scheduling; the batch kernels below are
// stride-free — the row pass walks eight-float rows with constant
// indices, the column pass walks the 8 column lanes of one block with
// constant row offsets — so every bounds check is provably dead and each
// lane iteration is an independent dependency chain.
//
// The arithmetic is the per-block arithmetic, expression for expression,
// in the same order. That is a contract, not an accident: the codec
// requires batch and per-block pipelines to emit byte-identical streams,
// which for float64 means bit-identical intermediate values, which means
// the same IEEE operations in the same order (see batch_test.go, which
// pins bit equality, and the jpegcodec equivalence suites downstream).
//
// Layout: a plane is a []float64 whose length is a multiple of 64; block
// k occupies p[64k : 64k+64] in row-major order, exactly a *Block laid
// end to end. Callers gather whole runs (a block row of a component, a
// restart segment) into a pooled plane, run one batch call, and fuse the
// quantizer pass over the same run — no per-block dispatch remains.

// Blocks returns the number of 64-float blocks in p, panicking if p is
// not block-aligned. Every batch entry point funnels through it.
func Blocks(p []float64) int {
	if len(p)%BlockSize2 != 0 {
		panic("dct: batch plane length is not a multiple of 64")
	}
	return len(p) / BlockSize2
}

// BlockSize2 is the flat length of one block (BlockSize²).
const BlockSize2 = BlockSize * BlockSize

// fdctAANRowsFlat runs the forward AAN butterfly over the 8 rows of one
// block. It mirrors fdctAAN1D with off = 8y, stride = 1; the (*[8])
// re-slice pins the row length so the body indexes with constants.
func fdctAANRowsFlat(b *Block) {
	for o := 0; o <= 56; o += 8 {
		r := (*[8]float64)(b[o:])
		tmp0 := r[0] + r[7]
		tmp7 := r[0] - r[7]
		tmp1 := r[1] + r[6]
		tmp6 := r[1] - r[6]
		tmp2 := r[2] + r[5]
		tmp5 := r[2] - r[5]
		tmp3 := r[3] + r[4]
		tmp4 := r[3] - r[4]

		tmp10 := tmp0 + tmp3
		tmp13 := tmp0 - tmp3
		tmp11 := tmp1 + tmp2
		tmp12 := tmp1 - tmp2

		r[0] = tmp10 + tmp11
		r[4] = tmp10 - tmp11

		z1 := (tmp12 + tmp13) * aanC4
		r[2] = tmp13 + z1
		r[6] = tmp13 - z1

		tmp10 = tmp4 + tmp5
		tmp11 = tmp5 + tmp6
		tmp12 = tmp6 + tmp7

		z5 := (tmp10 - tmp12) * aanC5
		z2 := aanC2*tmp10 + z5
		z4 := aanC6*tmp12 + z5
		z3 := tmp11 * aanC4

		z11 := tmp7 + z3
		z13 := tmp7 - z3

		r[5] = z13 + z2
		r[3] = z13 - z2
		r[1] = z11 + z4
		r[7] = z11 - z4
	}
}

// fdctAANColsFlat runs the forward AAN butterfly down the 8 columns of
// one block: lane x of the loop is fdctAAN1D with off = x, stride = 8,
// written with constant row offsets so each lane is branch- and
// bounds-check-free and independent of its neighbours.
func fdctAANColsFlat(b *Block) {
	for x := 0; x < 8; x++ {
		tmp0 := b[x] + b[x+56]
		tmp7 := b[x] - b[x+56]
		tmp1 := b[x+8] + b[x+48]
		tmp6 := b[x+8] - b[x+48]
		tmp2 := b[x+16] + b[x+40]
		tmp5 := b[x+16] - b[x+40]
		tmp3 := b[x+24] + b[x+32]
		tmp4 := b[x+24] - b[x+32]

		tmp10 := tmp0 + tmp3
		tmp13 := tmp0 - tmp3
		tmp11 := tmp1 + tmp2
		tmp12 := tmp1 - tmp2

		b[x] = tmp10 + tmp11
		b[x+32] = tmp10 - tmp11

		z1 := (tmp12 + tmp13) * aanC4
		b[x+16] = tmp13 + z1
		b[x+48] = tmp13 - z1

		tmp10 = tmp4 + tmp5
		tmp11 = tmp5 + tmp6
		tmp12 = tmp6 + tmp7

		z5 := (tmp10 - tmp12) * aanC5
		z2 := aanC2*tmp10 + z5
		z4 := aanC6*tmp12 + z5
		z3 := tmp11 * aanC4

		z11 := tmp7 + z3
		z13 := tmp7 - z3

		b[x+40] = z13 + z2
		b[x+24] = z13 - z2
		b[x+8] = z11 + z4
		b[x+56] = z11 - z4
	}
}

// idctAANColsFlat runs the inverse AAN butterfly down the 8 columns of
// one block (idctAAN1D with off = x, stride = 8).
func idctAANColsFlat(b *Block) {
	for x := 0; x < 8; x++ {
		tmp0 := b[x]
		tmp1 := b[x+16]
		tmp2 := b[x+32]
		tmp3 := b[x+48]

		tmp10 := tmp0 + tmp2
		tmp11 := tmp0 - tmp2
		tmp13 := tmp1 + tmp3
		tmp12 := (tmp1-tmp3)*(2*aanC4) - tmp13

		tmp0 = tmp10 + tmp13
		tmp3 = tmp10 - tmp13
		tmp1 = tmp11 + tmp12
		tmp2 = tmp11 - tmp12

		tmp4 := b[x+8]
		tmp5 := b[x+24]
		tmp6 := b[x+40]
		tmp7 := b[x+56]

		z13 := tmp6 + tmp5
		z10 := tmp6 - tmp5
		z11 := tmp4 + tmp7
		z12 := tmp4 - tmp7

		tmp7 = z11 + z13
		tmp11 = (z11 - z13) * (2 * aanC4)

		z5 := (z10 + z12) * 1.847759065022573
		tmp10 = 1.082392200292394*z12 - z5
		tmp12 = -2.613125929752753*z10 + z5

		tmp6 = tmp12 - tmp7
		tmp5 = tmp11 - tmp6
		tmp4 = tmp10 + tmp5

		b[x] = tmp0 + tmp7
		b[x+56] = tmp0 - tmp7
		b[x+8] = tmp1 + tmp6
		b[x+48] = tmp1 - tmp6
		b[x+16] = tmp2 + tmp5
		b[x+40] = tmp2 - tmp5
		b[x+32] = tmp3 + tmp4
		b[x+24] = tmp3 - tmp4
	}
}

// idctAANRowsFlat runs the inverse AAN butterfly over the 8 rows of one
// block (idctAAN1D with off = 8y, stride = 1).
func idctAANRowsFlat(b *Block) {
	for o := 0; o <= 56; o += 8 {
		r := (*[8]float64)(b[o:])
		tmp0 := r[0]
		tmp1 := r[2]
		tmp2 := r[4]
		tmp3 := r[6]

		tmp10 := tmp0 + tmp2
		tmp11 := tmp0 - tmp2
		tmp13 := tmp1 + tmp3
		tmp12 := (tmp1-tmp3)*(2*aanC4) - tmp13

		tmp0 = tmp10 + tmp13
		tmp3 = tmp10 - tmp13
		tmp1 = tmp11 + tmp12
		tmp2 = tmp11 - tmp12

		tmp4 := r[1]
		tmp5 := r[3]
		tmp6 := r[5]
		tmp7 := r[7]

		z13 := tmp6 + tmp5
		z10 := tmp6 - tmp5
		z11 := tmp4 + tmp7
		z12 := tmp4 - tmp7

		tmp7 = z11 + z13
		tmp11 = (z11 - z13) * (2 * aanC4)

		z5 := (z10 + z12) * 1.847759065022573
		tmp10 = 1.082392200292394*z12 - z5
		tmp12 = -2.613125929752753*z10 + z5

		tmp6 = tmp12 - tmp7
		tmp5 = tmp11 - tmp6
		tmp4 = tmp10 + tmp5

		r[0] = tmp0 + tmp7
		r[7] = tmp0 - tmp7
		r[1] = tmp1 + tmp6
		r[6] = tmp1 - tmp6
		r[2] = tmp2 + tmp5
		r[5] = tmp2 - tmp5
		r[4] = tmp3 + tmp4
		r[3] = tmp3 - tmp4
	}
}

// ForwardAANRawBatch runs the raw forward AAN butterflies over every
// block of p: each block ends up as its orthonormal 2-D DCT divided by
// AANForwardDescale per band, exactly as ForwardAANRaw leaves a single
// block. Callers that quantize fold the factor into their divisors.
func ForwardAANRawBatch(p []float64) {
	n := Blocks(p)
	for k := 0; k < n; k++ {
		b := (*Block)(p[k*BlockSize2:])
		fdctAANRowsFlat(b)
		fdctAANColsFlat(b)
	}
}

// InverseAANRawBatch runs the raw inverse AAN butterflies over every
// block of p. Input blocks must carry the scaled convention
// (orthonormal × AANInversePrescale per band), as for InverseAANRaw.
func InverseAANRawBatch(p []float64) {
	n := Blocks(p)
	for k := 0; k < n; k++ {
		b := (*Block)(p[k*BlockSize2:])
		idctAANColsFlat(b)
		idctAANRowsFlat(b)
	}
}

// ForwardAANBatch computes the orthonormal 2-D DCT of every block of p
// using the AAN fast algorithm plus the flat descaling pass — the batch
// form of ForwardAAN.
func ForwardAANBatch(p []float64) {
	ForwardAANRawBatch(p)
	for o := 0; o < len(p); o += BlockSize2 {
		b := (*Block)(p[o:])
		for i := 0; i < BlockSize2; i++ {
			b[i] *= aanDescale2D[i]
		}
	}
}

// InverseAANBatch inverts ForwardAANBatch (and ForwardBatch): the batch
// form of InverseAAN.
func InverseAANBatch(p []float64) {
	for o := 0; o < len(p); o += BlockSize2 {
		b := (*Block)(p[o:])
		for i := 0; i < BlockSize2; i++ {
			b[i] *= aanPrescale2D[i]
		}
	}
	InverseAANRawBatch(p)
}

// ForwardBatch runs the naive separable forward transform over every
// block of p — the batch form of Forward, sharing its kernel so the two
// are bit-identical by construction.
func ForwardBatch(p []float64) {
	n := Blocks(p)
	for k := 0; k < n; k++ {
		Forward((*Block)(p[k*BlockSize2:]))
	}
}

// InverseBatch runs the naive separable inverse transform over every
// block of p — the batch form of Inverse.
func InverseBatch(p []float64) {
	n := Blocks(p)
	for k := 0; k < n; k++ {
		Inverse((*Block)(p[k*BlockSize2:]))
	}
}

// ForwardScaledBatch is the batch form of Transform.ForwardScaled: the
// forward transform of every block of p in the engine's native scaled
// basis. Pair with divisors built for the same engine
// (qtable.Table.FwdScaled), exactly as for the per-block call.
func (t Transform) ForwardScaledBatch(p []float64) {
	if t == TransformAAN {
		ForwardAANRawBatch(p)
		return
	}
	ForwardBatch(p)
}

// InverseScaledBatch is the batch form of Transform.InverseScaled: input
// blocks must be dequantized with multipliers built for the same engine
// (qtable.Table.InvScaled).
func (t Transform) InverseScaledBatch(p []float64) {
	if t == TransformAAN {
		InverseAANRawBatch(p)
		return
	}
	InverseBatch(p)
}

// ForwardBatchOf runs the orthonormal forward transform of the selected
// engine over every block of p — the batch form of Transform.Forward.
func (t Transform) ForwardBatchOf(p []float64) {
	if t == TransformAAN {
		ForwardAANBatch(p)
		return
	}
	ForwardBatch(p)
}

// InverseBatchOf runs the orthonormal inverse transform of the selected
// engine over every block of p — the batch form of Transform.Inverse.
func (t Transform) InverseBatchOf(p []float64) {
	if t == TransformAAN {
		InverseAANBatch(p)
		return
	}
	InverseBatch(p)
}
