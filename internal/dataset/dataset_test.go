package dataset

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"repro/internal/freqstat"
	"repro/internal/imgutil"
)

func TestValidate(t *testing.T) {
	bad := []Config{
		{Classes: 1, Size: 32, TrainPerClass: 1, TestPerClass: 1},
		{Classes: 4, Size: 12, TrainPerClass: 1, TestPerClass: 1},
		{Classes: 4, Size: 32, TrainPerClass: 0, TestPerClass: 1},
		{Classes: 4, Size: 32, TrainPerClass: 1, TestPerClass: 1, NoiseStd: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
	if err := Quick().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Paper().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateShapes(t *testing.T) {
	cfg := Config{Classes: 4, Size: 32, TrainPerClass: 5, TestPerClass: 3, Seed: 7, NoiseStd: 4}
	train, test, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 20 || test.Len() != 12 {
		t.Fatalf("sizes %d/%d", train.Len(), test.Len())
	}
	counts := map[int]int{}
	for _, l := range train.Labels {
		counts[l]++
	}
	for c := 0; c < 4; c++ {
		if counts[c] != 5 {
			t.Fatalf("class %d has %d train images", c, counts[c])
		}
	}
	for _, im := range train.Images {
		if im.W != 32 || im.H != 32 {
			t.Fatalf("image %dx%d", im.W, im.H)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Quick()
	cfg.TrainPerClass, cfg.TestPerClass = 3, 2
	a1, b1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a2, b2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a1.Images {
		if !bytes.Equal(a1.Images[i].Pix, a2.Images[i].Pix) {
			t.Fatal("train split not deterministic")
		}
	}
	for i := range b1.Images {
		if !bytes.Equal(b1.Images[i].Pix, b2.Images[i].Pix) {
			t.Fatal("test split not deterministic")
		}
	}
}

func TestTrainTestDisjoint(t *testing.T) {
	cfg := Quick()
	cfg.TrainPerClass, cfg.TestPerClass = 4, 4
	train, test, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range train.Images {
		for j := range test.Images {
			if bytes.Equal(train.Images[i].Pix, test.Images[j].Pix) {
				t.Fatalf("train image %d equals test image %d", i, j)
			}
		}
	}
}

func TestSeedChangesData(t *testing.T) {
	cfg := Quick()
	cfg.TrainPerClass, cfg.TestPerClass = 2, 1
	a, _, _ := Generate(cfg)
	cfg.Seed = 99
	b, _, _ := Generate(cfg)
	same := true
	for i := range a.Images {
		if !bytes.Equal(a.Images[i].Pix, b.Images[i].Pix) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

// TestSignatureBandCarriesEnergy: the class signature band must dominate
// the per-class DCT spectrum relative to other non-DC bands.
func TestSignatureBandCarriesEnergy(t *testing.T) {
	cfg := Config{Classes: 6, Size: 32, TrainPerClass: 12, TestPerClass: 1, Seed: 3, NoiseStd: 3}
	train, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for class := 0; class < cfg.Classes; class++ {
		acc := freqstat.NewAccumulator()
		for i, im := range train.Images {
			if train.Labels[i] == class {
				acc.AddRGBLuma(im)
			}
		}
		stats, err := acc.Stats()
		if err != nil {
			t.Fatal(err)
		}
		sig := SignatureBand(class)
		// Measure band energy as mean² + σ² (total second moment).
		energy := func(b int) float64 {
			return stats.Mean[b]*stats.Mean[b] + stats.Std[b]*stats.Std[b]
		}
		sigE := energy(sig)
		// The signature band must carry at least 3× the median non-DC band
		// energy.
		var others []float64
		for b := 1; b < 64; b++ {
			if b != sig {
				others = append(others, energy(b))
			}
		}
		// Median via partial sort.
		med := median(others)
		if sigE < 3*med {
			t.Fatalf("class %d: signature band %d energy %.1f < 3×median %.1f", class, sig, sigE, med)
		}
	}
}

func median(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	for i := range cp {
		for j := i + 1; j < len(cp); j++ {
			if cp[j] < cp[i] {
				cp[i], cp[j] = cp[j], cp[i]
			}
		}
	}
	return cp[len(cp)/2]
}

// TestPairedClassesShareShape: pair members differ only in the signature
// band, so their low-frequency content must be statistically similar.
func TestPairedClassesShareShape(t *testing.T) {
	s0, s1 := specFor(0), specFor(1)
	if s0.cx != s1.cx || s0.cy != s1.cy || s0.radius != s1.radius {
		t.Fatal("pair members 0/1 have different shapes")
	}
	if s0.sigU == s1.sigU && s0.sigV == s1.sigV {
		t.Fatal("pair members 0/1 share the signature band")
	}
	if !IsHFClass(1) || IsHFClass(0) {
		t.Fatal("pair member 1 must be the HF class")
	}
	// HF member's band must rank later in zig-zag order than MF member's.
	z0 := zigzagOf(SignatureBand(0))
	z1 := zigzagOf(SignatureBand(1))
	if z1 <= z0 {
		t.Fatalf("HF class band zig-zag %d not beyond MF class %d", z1, z0)
	}
}

func zigzagOf(natural int) int {
	order := [64]int{
		0, 1, 8, 16, 9, 2, 3, 10,
		17, 24, 32, 25, 18, 11, 4, 5,
		12, 19, 26, 33, 40, 48, 41, 34,
		27, 20, 13, 6, 7, 14, 21, 28,
		35, 42, 49, 56, 57, 50, 43, 36,
		29, 22, 15, 23, 30, 37, 44, 51,
		58, 59, 52, 45, 38, 31, 39, 46,
		53, 60, 61, 54, 47, 55, 62, 63,
	}
	for z, n := range order {
		if n == natural {
			return z
		}
	}
	return -1
}

func TestTensorsGray(t *testing.T) {
	cfg := Config{Classes: 2, Size: 16, TrainPerClass: 3, TestPerClass: 1, Seed: 1}
	train, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := train.Tensors(false)
	if ds.X.Dim(0) != 6 || ds.X.Dim(1) != 1 || ds.X.Dim(2) != 16 {
		t.Fatalf("tensor shape %v", ds.X.Shape)
	}
	if len(ds.Y) != 6 {
		t.Fatalf("labels %d", len(ds.Y))
	}
	// Normalization keeps values in a sane range.
	for _, v := range ds.X.Data {
		if math.Abs(float64(v)) > 3 {
			t.Fatalf("normalized value %g out of range", v)
		}
	}
}

func TestTensorsColor(t *testing.T) {
	cfg := Config{Classes: 2, Size: 16, TrainPerClass: 2, TestPerClass: 1, Seed: 1, Color: true}
	train, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := train.Tensors(true)
	if ds.X.Dim(1) != 3 {
		t.Fatalf("color tensor has %d channels", ds.X.Dim(1))
	}
}

func TestMap(t *testing.T) {
	cfg := Config{Classes: 2, Size: 16, TrainPerClass: 2, TestPerClass: 1, Seed: 1}
	train, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inverted, err := train.Map(func(im *imgutil.RGB) (*imgutil.RGB, error) {
		out := im.Clone()
		for i := range out.Pix {
			out.Pix[i] = 255 - out.Pix[i]
		}
		return out, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if inverted.Images[0].Pix[0] != 255-train.Images[0].Pix[0] {
		t.Fatal("Map did not transform")
	}
	if train.Images[0].Pix[0] == inverted.Images[0].Pix[0] && train.Images[0].Pix[0] != 128 {
		t.Fatal("Map mutated the source")
	}
	// Error propagation.
	if _, err := train.Map(func(im *imgutil.RGB) (*imgutil.RGB, error) {
		return nil, errSentinel
	}); err == nil {
		t.Fatal("Map swallowed the error")
	}
}

var errSentinel = fmt.Errorf("sentinel")

func TestSubset(t *testing.T) {
	cfg := Config{Classes: 2, Size: 16, TrainPerClass: 3, TestPerClass: 1, Seed: 1}
	train, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sub := train.Subset([]int{0, 5})
	if sub.Len() != 2 || sub.Labels[0] != train.Labels[0] || sub.Labels[1] != train.Labels[5] {
		t.Fatalf("subset %+v", sub.Labels)
	}
}
