// Package dataset generates SynthNet, the synthetic labeled image dataset
// this reproduction uses in place of ImageNet (which cannot be shipped or
// trained on a CPU-only Go substrate). Classes are constructed directly in
// the frequency domain so that the paper's central premise holds by
// design: discriminative information lives in specific DCT bands, and
// classes come in pairs that share their low-frequency "shape" and differ
// only in a mid- or high-frequency signature band — the synthetic analogue
// of the paper's junco/robin pair (Fig. 3), which human-visual-system
// quantization confuses but a data-calibrated table preserves.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/imgutil"
	"repro/internal/nn"
)

// Config controls generation. The zero value is invalid; use Quick or
// Paper for ready-made profiles.
type Config struct {
	Classes       int
	Size          int // square image size, multiple of 8
	TrainPerClass int
	TestPerClass  int
	Color         bool
	NoiseStd      float64 // per-pixel Gaussian noise
	Seed          int64
}

// Quick is the profile used by tests and benchmarks: small enough to
// train CNNs in seconds.
func Quick() Config {
	return Config{Classes: 8, Size: 32, TrainPerClass: 80, TestPerClass: 40, Color: false, NoiseStd: 5, Seed: 1}
}

// Paper is the profile used to produce EXPERIMENTS.md numbers: more
// classes and samples, color images.
func Paper() Config {
	return Config{Classes: 12, Size: 32, TrainPerClass: 150, TestPerClass: 60, Color: true, NoiseStd: 5, Seed: 1}
}

// Validate rejects impossible configurations.
func (c Config) Validate() error {
	if c.Classes < 2 {
		return fmt.Errorf("dataset: need ≥2 classes, got %d", c.Classes)
	}
	if c.Size < 16 || c.Size%8 != 0 {
		return fmt.Errorf("dataset: size must be a multiple of 8 and ≥16, got %d", c.Size)
	}
	if c.TrainPerClass < 1 || c.TestPerClass < 1 {
		return fmt.Errorf("dataset: per-class counts must be positive")
	}
	if c.NoiseStd < 0 {
		return fmt.Errorf("dataset: negative noise std")
	}
	return nil
}

// Dataset is a labeled image collection.
type Dataset struct {
	Images  []*imgutil.RGB
	Labels  []int
	Classes int
	Size    int
}

// Len returns the number of images.
func (d *Dataset) Len() int { return len(d.Images) }

// classSpec describes the frequency-domain construction of one class.
type classSpec struct {
	// Low-frequency shape: Gaussian blob center (relative) and radius.
	cx, cy, radius float64
	shapeAmp       float64
	// Signature grating: a DCT-band-aligned sinusoid. Band indices are in
	// units of the 8×8 DCT grid (u horizontal, v vertical, 0..7).
	sigU, sigV int
	sigAmp     float64
	// Common background grating shared by all classes (non-discriminative
	// MF energy so the calibrated table sees realistic spectra).
	bgU, bgV int
	bgAmp    float64
	// Channel tint weights for color datasets.
	tint [3]float64
}

// mfBands and hfBands are signature band menus. MF bands sit in zig-zag
// positions 7–28; HF bands in the tail the default JPEG table crushes.
var mfBands = [][2]int{{3, 0}, {0, 3}, {2, 2}, {3, 1}, {1, 3}, {4, 0}}
var hfBands = [][2]int{{6, 1}, {1, 6}, {5, 4}, {4, 5}, {6, 5}, {7, 3}}

// specFor derives the deterministic class construction. Classes pair up:
// pair members share the shape and background; member 0 carries an MF
// signature band, member 1 an HF signature band, so the pair is separable
// only through that band.
func specFor(class int) classSpec {
	pair := class / 2
	member := class % 2
	spec := classSpec{
		cx:       0.25 + 0.5*float64((pair*37)%17)/17,
		cy:       0.25 + 0.5*float64((pair*53)%13)/13,
		radius:   0.18 + 0.10*float64((pair*7)%5)/5,
		shapeAmp: 55,
		sigAmp:   32,
		bgU:      2, bgV: 1,
		bgAmp: 12,
	}
	if member == 0 {
		b := mfBands[pair%len(mfBands)]
		spec.sigU, spec.sigV = b[0], b[1]
	} else {
		b := hfBands[pair%len(hfBands)]
		spec.sigU, spec.sigV = b[0], b[1]
	}
	// Deterministic tint per PAIR (not per class): color must not leak the
	// within-pair label, otherwise a classifier can sidestep the signature
	// band and the junco/robin phenomenon disappears.
	spec.tint = [3]float64{
		0.8 + 0.2*float64((pair*3)%5)/5,
		0.8 + 0.2*float64((pair*5)%7)/7,
		0.8 + 0.2*float64((pair*11)%3)/3,
	}
	return spec
}

// SignatureBand exposes the discriminative DCT band of a class in natural
// 8×8 index form (v*8+u), used by experiments that reason about which
// bands matter.
func SignatureBand(class int) int {
	s := specFor(class)
	return s.sigV*8 + s.sigU
}

// IsHFClass reports whether a class carries its signature in a
// high-frequency band (pair member 1).
func IsHFClass(class int) bool { return class%2 == 1 }

// renderSample draws one image of a class.
func renderSample(spec classSpec, size int, color bool, noiseStd float64, rng *rand.Rand) *imgutil.RGB {
	im := imgutil.NewRGB(size, size)
	// Per-sample jitter: blob offset, grating phase and amplitude wobble.
	dx := (rng.Float64() - 0.5) * 0.2
	dy := (rng.Float64() - 0.5) * 0.2
	phase := rng.Float64() * 2 * math.Pi
	bgPhase := rng.Float64() * 2 * math.Pi
	// Wide amplitude jitter: weak-signature samples sit near the decision
	// boundary, which is what makes quantization of the signature band
	// measurably costly (without it every sweep saturates at 100%).
	ampScale := 0.65 + 0.55*rng.Float64()
	base := 105 + rng.Float64()*30

	cx := (spec.cx + dx) * float64(size)
	cy := (spec.cy + dy) * float64(size)
	r2 := spec.radius * float64(size) * spec.radius * float64(size)

	// DCT basis frequency: band u corresponds to cos((2x+1)·u·π/16),
	// i.e. u/16 cycles per pixel — rendering the grating at exactly that
	// rate concentrates its energy in band (u, v) of every 8×8 block.
	fu := float64(spec.sigU) * math.Pi / 8
	fv := float64(spec.sigV) * math.Pi / 8
	bu := float64(spec.bgU) * math.Pi / 8
	bv := float64(spec.bgV) * math.Pi / 8

	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			fx, fy := float64(x), float64(y)
			v := base
			// Low-frequency shape: smooth Gaussian blob.
			d2 := (fx-cx)*(fx-cx) + (fy-cy)*(fy-cy)
			v += spec.shapeAmp * math.Exp(-d2/(2*r2))
			// Signature grating at the class band.
			v += spec.sigAmp * ampScale * math.Cos(fu*fx+fv*fy+phase)
			// Common background grating.
			v += spec.bgAmp * math.Cos(bu*fx+bv*fy+bgPhase)
			// Sensor noise.
			if noiseStd > 0 {
				v += rng.NormFloat64() * noiseStd
			}
			if color {
				im.Set(x, y, clamp8f(v*spec.tint[0]), clamp8f(v*spec.tint[1]), clamp8f(v*spec.tint[2]))
			} else {
				g := clamp8f(v)
				im.Set(x, y, g, g, g)
			}
		}
	}
	return im
}

func clamp8f(v float64) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 255 {
		return 255
	}
	return uint8(v + 0.5)
}

// Generate produces deterministic train and test splits. Sample RNG
// streams are derived from (seed, split, class, index) so splits are
// disjoint and reproducible regardless of generation order.
func Generate(cfg Config) (train, test *Dataset, err error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	gen := func(split int64, perClass int) *Dataset {
		ds := &Dataset{Classes: cfg.Classes, Size: cfg.Size}
		for class := 0; class < cfg.Classes; class++ {
			spec := specFor(class)
			for i := 0; i < perClass; i++ {
				h := cfg.Seed*1_000_003 + split*101_159 + int64(class)*10_007 + int64(i)
				rng := rand.New(rand.NewSource(h))
				ds.Images = append(ds.Images, renderSample(spec, cfg.Size, cfg.Color, cfg.NoiseStd, rng))
				ds.Labels = append(ds.Labels, class)
			}
		}
		return ds
	}
	return gen(1, cfg.TrainPerClass), gen(2, cfg.TestPerClass), nil
}

// Tensors converts the dataset to an nn.Dataset. Grayscale mode uses the
// luma plane as a single channel; color mode uses three channels. Pixels
// are normalized to roughly zero-mean unit-range ((v−128)/64).
func (d *Dataset) Tensors(color bool) *nn.Dataset {
	channels := 1
	if color {
		channels = 3
	}
	n := d.Len()
	x := nn.NewTensor(n, channels, d.Size, d.Size)
	plane := d.Size * d.Size
	for i, im := range d.Images {
		if color {
			for p := 0; p < plane; p++ {
				x.Data[i*3*plane+0*plane+p] = (float32(im.Pix[3*p]) - 128) / 64
				x.Data[i*3*plane+1*plane+p] = (float32(im.Pix[3*p+1]) - 128) / 64
				x.Data[i*3*plane+2*plane+p] = (float32(im.Pix[3*p+2]) - 128) / 64
			}
		} else {
			g := im.ToGray()
			for p := 0; p < plane; p++ {
				x.Data[i*plane+p] = (float32(g.Pix[p]) - 128) / 64
			}
		}
	}
	return &nn.Dataset{X: x, Y: append([]int(nil), d.Labels...)}
}

// Map applies a transform to every image (e.g. a compress–decompress
// round trip), producing a new dataset with the same labels. A transform
// error aborts the mapping.
func (d *Dataset) Map(fn func(*imgutil.RGB) (*imgutil.RGB, error)) (*Dataset, error) {
	out := &Dataset{Classes: d.Classes, Size: d.Size, Labels: append([]int(nil), d.Labels...)}
	out.Images = make([]*imgutil.RGB, d.Len())
	for i, im := range d.Images {
		t, err := fn(im)
		if err != nil {
			return nil, fmt.Errorf("dataset: transforming image %d: %w", i, err)
		}
		out.Images[i] = t
	}
	return out, nil
}

// Subset returns the images whose indices are listed, preserving order.
func (d *Dataset) Subset(indices []int) *Dataset {
	out := &Dataset{Classes: d.Classes, Size: d.Size}
	for _, i := range indices {
		out.Images = append(out.Images, d.Images[i])
		out.Labels = append(out.Labels, d.Labels[i])
	}
	return out
}
