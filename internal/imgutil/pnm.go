package imgutil

import (
	"bufio"
	"fmt"
	"io"
)

// WritePPM serializes an RGB image in binary PPM (P6) format.
func WritePPM(w io.Writer, im *RGB) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", im.W, im.H); err != nil {
		return err
	}
	if _, err := bw.Write(im.Pix); err != nil {
		return err
	}
	return bw.Flush()
}

// WritePGM serializes a grayscale image in binary PGM (P5) format.
func WritePGM(w io.Writer, g *Gray) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", g.W, g.H); err != nil {
		return err
	}
	if _, err := bw.Write(g.Pix); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadPPM parses a binary PPM (P6) image.
func ReadPPM(r io.Reader) (*RGB, error) {
	br := bufio.NewReader(r)
	w, h, err := readPNMHeader(br, "P6")
	if err != nil {
		return nil, err
	}
	im := NewRGB(w, h)
	if _, err := io.ReadFull(br, im.Pix); err != nil {
		return nil, fmt.Errorf("imgutil: short PPM pixel data: %w", err)
	}
	return im, nil
}

// ReadPGM parses a binary PGM (P5) image.
func ReadPGM(r io.Reader) (*Gray, error) {
	br := bufio.NewReader(r)
	w, h, err := readPNMHeader(br, "P5")
	if err != nil {
		return nil, err
	}
	g := NewGray(w, h)
	if _, err := io.ReadFull(br, g.Pix); err != nil {
		return nil, fmt.Errorf("imgutil: short PGM pixel data: %w", err)
	}
	return g, nil
}

// readPNMHeader parses "<magic> <w> <h> <maxval>" skipping whitespace and
// '#' comments, and validates maxval == 255.
func readPNMHeader(br *bufio.Reader, magic string) (w, h int, err error) {
	tok, err := pnmToken(br)
	if err != nil {
		return 0, 0, err
	}
	if tok != magic {
		return 0, 0, fmt.Errorf("imgutil: bad PNM magic %q, want %q", tok, magic)
	}
	var dims [3]int
	for i := range dims {
		tok, err := pnmToken(br)
		if err != nil {
			return 0, 0, err
		}
		if _, err := fmt.Sscanf(tok, "%d", &dims[i]); err != nil {
			return 0, 0, fmt.Errorf("imgutil: bad PNM header field %q", tok)
		}
	}
	if dims[0] <= 0 || dims[1] <= 0 {
		return 0, 0, fmt.Errorf("imgutil: invalid PNM dimensions %dx%d", dims[0], dims[1])
	}
	if dims[2] != 255 {
		return 0, 0, fmt.Errorf("imgutil: unsupported PNM maxval %d", dims[2])
	}
	return dims[0], dims[1], nil
}

// pnmToken reads the next whitespace-delimited token, skipping comments.
// It consumes exactly one trailing whitespace byte, as PNM requires.
func pnmToken(br *bufio.Reader) (string, error) {
	var tok []byte
	for {
		b, err := br.ReadByte()
		if err != nil {
			return "", err
		}
		switch {
		case b == '#':
			if _, err := br.ReadString('\n'); err != nil {
				return "", err
			}
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			if len(tok) > 0 {
				return string(tok), nil
			}
		default:
			tok = append(tok, b)
		}
	}
}
