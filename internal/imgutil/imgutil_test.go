package imgutil

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randRGB(rng *rand.Rand, w, h int) *RGB {
	im := NewRGB(w, h)
	rng.Read(im.Pix)
	return im
}

func randGray(rng *rand.Rand, w, h int) *Gray {
	g := NewGray(w, h)
	rng.Read(g.Pix)
	return g
}

func TestSetAt(t *testing.T) {
	im := NewRGB(4, 3)
	im.Set(2, 1, 10, 20, 30)
	r, g, b := im.At(2, 1)
	if r != 10 || g != 20 || b != 30 {
		t.Fatalf("got (%d,%d,%d)", r, g, b)
	}
	gr := NewGray(4, 3)
	gr.Set(3, 2, 99)
	if gr.At(3, 2) != 99 {
		t.Fatalf("gray At = %d", gr.At(3, 2))
	}
}

// TestYCbCrRoundTrip verifies RGB→YCbCr→RGB is near-lossless (8-bit
// quantization allows a couple of counts of error).
func TestYCbCrRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	im := randRGB(rng, 16, 16)
	back := ToYCbCr(im).ToRGB()
	maxErr := 0
	for i := range im.Pix {
		d := int(im.Pix[i]) - int(back.Pix[i])
		if d < 0 {
			d = -d
		}
		if d > maxErr {
			maxErr = d
		}
	}
	if maxErr > 3 {
		t.Fatalf("YCbCr round trip max error %d > 3", maxErr)
	}
}

// TestYCbCrKnownValues checks primary colors against the JFIF matrix.
func TestYCbCrKnownValues(t *testing.T) {
	cases := []struct {
		r, g, b   uint8
		y, cb, cr uint8
		name      string
	}{
		{255, 255, 255, 255, 128, 128, "white"},
		{0, 0, 0, 0, 128, 128, "black"},
		{128, 128, 128, 128, 128, 128, "gray"},
		{255, 0, 0, 76, 85, 255, "red"},
	}
	for _, c := range cases {
		im := NewRGB(1, 1)
		im.Set(0, 0, c.r, c.g, c.b)
		p := ToYCbCr(im)
		if p.Y[0] != c.y || p.Cb[0] != c.cb || p.Cr[0] != c.cr {
			t.Errorf("%s: got Y=%d Cb=%d Cr=%d, want %d/%d/%d",
				c.name, p.Y[0], p.Cb[0], p.Cr[0], c.y, c.cb, c.cr)
		}
	}
}

func TestGrayPlanesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randGray(rng, 9, 7)
	p := GrayPlanes(g)
	if !p.Grayscale {
		t.Fatal("expected grayscale plane set")
	}
	back := p.ToRGB()
	for i, v := range g.Pix {
		if back.Pix[3*i] != v || back.Pix[3*i+1] != v || back.Pix[3*i+2] != v {
			t.Fatalf("pixel %d: luma %d not replicated", i, v)
		}
	}
	if got := p.ToGray(); !bytes.Equal(got.Pix, g.Pix) {
		t.Fatal("ToGray did not return original plane")
	}
}

func TestDownsampleUpsampleShapes(t *testing.T) {
	for _, dims := range [][2]int{{8, 8}, {9, 7}, {1, 1}, {16, 2}, {3, 3}} {
		w, h := dims[0], dims[1]
		pix := make([]uint8, w*h)
		down, dw, dh := Downsample2x2(pix, w, h)
		if dw != (w+1)/2 || dh != (h+1)/2 {
			t.Fatalf("%dx%d: downsampled to %dx%d", w, h, dw, dh)
		}
		up := Upsample2x2(down, dw, dh, w, h)
		if len(up) != w*h {
			t.Fatalf("%dx%d: upsampled length %d", w, h, len(up))
		}
	}
}

func TestDownsampleAveragesBox(t *testing.T) {
	// 2x2 plane with values 10,20,30,40 → single sample (10+20+30+40+2)/4 = 25.
	pix := []uint8{10, 20, 30, 40}
	out, w, h := Downsample2x2(pix, 2, 2)
	if w != 1 || h != 1 || out[0] != 25 {
		t.Fatalf("got %v (%dx%d), want [25] 1x1", out, w, h)
	}
}

func TestDownsampleConstantIsIdentity(t *testing.T) {
	f := func(v uint8) bool {
		pix := make([]uint8, 16*16)
		for i := range pix {
			pix[i] = v
		}
		out, _, _ := Downsample2x2(pix, 16, 16)
		for _, o := range out {
			if o != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGridFor(t *testing.T) {
	cases := []struct{ w, h, bx, by int }{
		{8, 8, 1, 1}, {9, 8, 2, 1}, {32, 32, 4, 4}, {1, 1, 1, 1}, {17, 25, 3, 4},
	}
	for _, c := range cases {
		g := GridFor(c.w, c.h)
		if g.BlocksX != c.bx || g.BlocksY != c.by {
			t.Errorf("GridFor(%d,%d) = %+v, want %dx%d", c.w, c.h, g, c.bx, c.by)
		}
		if g.Blocks() != c.bx*c.by {
			t.Errorf("Blocks() = %d", g.Blocks())
		}
	}
}

func TestExtractStoreBlockRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randGray(rng, 16, 16)
	var blk [64]uint8
	ExtractBlock(g.Pix, 16, 16, 1, 1, &blk)
	out := NewGray(16, 16)
	copy(out.Pix, g.Pix)
	StoreBlock(out.Pix, 16, 16, 1, 1, &blk)
	if !bytes.Equal(out.Pix, g.Pix) {
		t.Fatal("extract/store round trip altered plane")
	}
}

func TestExtractBlockEdgeReplication(t *testing.T) {
	// 10x10 plane: block (1,1) covers x,y in [8,16), outside replicates the
	// last row/column.
	g := NewGray(10, 10)
	for y := 0; y < 10; y++ {
		for x := 0; x < 10; x++ {
			g.Set(x, y, uint8(10*y+x))
		}
	}
	var blk [64]uint8
	ExtractBlock(g.Pix, 10, 10, 1, 1, &blk)
	// In-bounds corner.
	if blk[0] != g.At(8, 8) {
		t.Fatalf("blk[0] = %d, want %d", blk[0], g.At(8, 8))
	}
	// x beyond width replicates column 9.
	if blk[3] != g.At(9, 8) {
		t.Fatalf("blk[3] = %d, want %d", blk[3], g.At(9, 8))
	}
	// y beyond height replicates row 9.
	if blk[5*8+0] != g.At(8, 9) {
		t.Fatalf("blk[40] = %d, want %d", blk[40], g.At(8, 9))
	}
	// Far corner replicates (9,9).
	if blk[63] != g.At(9, 9) {
		t.Fatalf("blk[63] = %d, want %d", blk[63], g.At(9, 9))
	}
}

func TestStoreBlockDiscardsOutOfBounds(t *testing.T) {
	g := NewGray(10, 10)
	var blk [64]uint8
	for i := range blk {
		blk[i] = 255
	}
	StoreBlock(g.Pix, 10, 10, 1, 1, &blk) // covers [8,16) — only 2x2 lands
	count := 0
	for _, v := range g.Pix {
		if v == 255 {
			count++
		}
	}
	if count != 4 {
		t.Fatalf("stored %d samples, want 4", count)
	}
}

func TestMSEPSNR(t *testing.T) {
	a := []uint8{0, 0, 0, 0}
	b := []uint8{10, 10, 10, 10}
	mse, err := MSE(a, b)
	if err != nil || mse != 100 {
		t.Fatalf("MSE = %v, %v", mse, err)
	}
	psnr, err := PSNR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := 10 * math.Log10(255*255/100.0)
	if math.Abs(psnr-want) > 1e-9 {
		t.Fatalf("PSNR = %g, want %g", psnr, want)
	}
	if p, _ := PSNR(a, a); !math.IsInf(p, 1) {
		t.Fatalf("identical PSNR = %g, want +Inf", p)
	}
	if _, err := MSE(a, b[:2]); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestGrayRGBConversions(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randGray(rng, 8, 8)
	rgb := g.ToRGB()
	back := rgb.ToGray()
	if !bytes.Equal(back.Pix, g.Pix) {
		t.Fatal("gray→rgb→gray should be the identity")
	}
}

func TestFromToImage(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	im := randRGB(rng, 7, 5)
	back := FromImage(im.ToImage())
	if !bytes.Equal(back.Pix, im.Pix) {
		t.Fatal("image.Image round trip altered pixels")
	}
}

func TestPPMRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	im := randRGB(rng, 13, 9)
	var buf bytes.Buffer
	if err := WritePPM(&buf, im); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPPM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.W != im.W || back.H != im.H || !bytes.Equal(back.Pix, im.Pix) {
		t.Fatal("PPM round trip mismatch")
	}
}

func TestPGMRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randGray(rng, 5, 11)
	var buf bytes.Buffer
	if err := WritePGM(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.W != g.W || back.H != g.H || !bytes.Equal(back.Pix, g.Pix) {
		t.Fatal("PGM round trip mismatch")
	}
}

func TestPNMHeaderComments(t *testing.T) {
	data := "P5\n# a comment\n2 2\n# another\n255\n\x01\x02\x03\x04"
	g, err := ReadPGM(bytes.NewReader([]byte(data)))
	if err != nil {
		t.Fatal(err)
	}
	if g.W != 2 || g.H != 2 || g.Pix[3] != 4 {
		t.Fatalf("parsed %+v", g)
	}
}

func TestPNMBadInputs(t *testing.T) {
	bad := []string{
		"P5\n0 2\n255\n",         // zero width
		"P5\n2 2\n65535\n",       // wrong maxval
		"P6\n2 2\n255\nxx",       // short pixels
		"P7\n2 2\n255\n\x00\x00", // bad magic
	}
	for i, s := range bad {
		if _, err := ReadPGM(bytes.NewReader([]byte(s))); err == nil {
			if _, err2 := ReadPPM(bytes.NewReader([]byte(s))); err2 == nil {
				t.Errorf("case %d: expected parse error", i)
			}
		}
	}
}
