// Package imgutil provides the 8-bit image representations used throughout
// the DeepN-JPEG pipeline: interleaved RGB and single-plane grayscale
// images, JFIF YCbCr color conversion, chroma subsampling, block
// partitioning with edge replication, and quality metrics (MSE/PSNR).
package imgutil

import (
	"fmt"
	"image"
	"image/color"
	"math"
)

// Gray is a single-plane 8-bit image in row-major order.
type Gray struct {
	W, H int
	Pix  []uint8 // len == W*H
}

// RGB is an interleaved 8-bit color image (R,G,B triplets, row-major).
type RGB struct {
	W, H int
	Pix  []uint8 // len == 3*W*H
}

// NewGray allocates a zeroed w×h grayscale image.
func NewGray(w, h int) *Gray { return &Gray{W: w, H: h, Pix: make([]uint8, w*h)} }

// NewRGB allocates a zeroed w×h color image.
func NewRGB(w, h int) *RGB { return &RGB{W: w, H: h, Pix: make([]uint8, 3*w*h)} }

// At returns the sample at (x, y).
func (g *Gray) At(x, y int) uint8 { return g.Pix[y*g.W+x] }

// Set stores a sample at (x, y).
func (g *Gray) Set(x, y int, v uint8) { g.Pix[y*g.W+x] = v }

// At returns the (r, g, b) triplet at (x, y).
func (im *RGB) At(x, y int) (r, g, b uint8) {
	i := 3 * (y*im.W + x)
	return im.Pix[i], im.Pix[i+1], im.Pix[i+2]
}

// Set stores an (r, g, b) triplet at (x, y).
func (im *RGB) Set(x, y int, r, g, b uint8) {
	i := 3 * (y*im.W + x)
	im.Pix[i], im.Pix[i+1], im.Pix[i+2] = r, g, b
}

// Clone returns a deep copy.
func (g *Gray) Clone() *Gray {
	out := NewGray(g.W, g.H)
	copy(out.Pix, g.Pix)
	return out
}

// Clone returns a deep copy.
func (im *RGB) Clone() *RGB {
	out := NewRGB(im.W, im.H)
	copy(out.Pix, im.Pix)
	return out
}

// clamp8 rounds and clamps a float to [0, 255].
func clamp8(v float64) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 255 {
		return 255
	}
	return uint8(v + 0.5)
}

// Planes holds the three JFIF YCbCr planes of an image at full resolution.
type Planes struct {
	W, H      int
	Y, Cb, Cr []uint8
	Grayscale bool // true when the source had no chroma (Cb, Cr == nil)
}

// ToYCbCr converts an RGB image to full-resolution JFIF YCbCr planes using
// the BT.601 matrix (the one mandated by JFIF 1.02).
func ToYCbCr(im *RGB) *Planes {
	p := &Planes{}
	p.FromRGB(im)
	return p
}

// FromRGB converts im into p, reusing p's plane buffers when their
// capacity suffices — the allocation-free path pooled encoders rely on.
func (p *Planes) FromRGB(im *RGB) {
	n := im.W * im.H
	p.W, p.H, p.Grayscale = im.W, im.H, false
	p.Y = GrowBytes(p.Y, n)
	p.Cb = GrowBytes(p.Cb, n)
	p.Cr = GrowBytes(p.Cr, n)
	for i := 0; i < n; i++ {
		r := float64(im.Pix[3*i])
		g := float64(im.Pix[3*i+1])
		b := float64(im.Pix[3*i+2])
		p.Y[i] = clamp8(0.299*r + 0.587*g + 0.114*b)
		p.Cb[i] = clamp8(-0.168736*r - 0.331264*g + 0.5*b + 128)
		p.Cr[i] = clamp8(0.5*r - 0.418688*g - 0.081312*b + 128)
	}
}

// GrowBytes returns a slice of length n, reusing b's backing array when
// it is large enough. The contents are unspecified; callers overwrite.
func GrowBytes(b []uint8, n int) []uint8 {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]uint8, n)
}

// GrayPlanes wraps a grayscale image as a luma-only plane set.
func GrayPlanes(g *Gray) *Planes {
	return &Planes{W: g.W, H: g.H, Y: g.Pix, Grayscale: true}
}

// ToRGB converts YCbCr planes back to interleaved RGB. Grayscale plane sets
// replicate luma into all three channels.
func (p *Planes) ToRGB() *RGB {
	return p.ToRGBInto(nil)
}

// ToRGBInto is ToRGB writing into dst, reusing dst's pixel buffer when
// its capacity suffices. A nil dst allocates a fresh image; the written
// image is returned either way.
func (p *Planes) ToRGBInto(dst *RGB) *RGB {
	im := dst
	if im == nil {
		im = &RGB{}
	}
	im.W, im.H = p.W, p.H
	im.Pix = GrowBytes(im.Pix, 3*p.W*p.H)
	n := p.W * p.H
	for i := 0; i < n; i++ {
		y := float64(p.Y[i])
		if p.Grayscale {
			v := clamp8(y)
			im.Pix[3*i], im.Pix[3*i+1], im.Pix[3*i+2] = v, v, v
			continue
		}
		cb := float64(p.Cb[i]) - 128
		cr := float64(p.Cr[i]) - 128
		im.Pix[3*i] = clamp8(y + 1.402*cr)
		im.Pix[3*i+1] = clamp8(y - 0.344136*cb - 0.714136*cr)
		im.Pix[3*i+2] = clamp8(y + 1.772*cb)
	}
	return im
}

// ToGray extracts the luma plane as a grayscale image.
func (p *Planes) ToGray() *Gray {
	g := NewGray(p.W, p.H)
	copy(g.Pix, p.Y)
	return g
}

// Downsample2x2 reduces a plane by 2 in each dimension by box averaging,
// the subsampling JPEG uses for 4:2:0 chroma. Odd dimensions replicate the
// final row/column.
func Downsample2x2(pix []uint8, w, h int) (out []uint8, ow, oh int) {
	return DownsampleInto(nil, pix, w, h, 2, 2)
}

// Downsample2x2Into is Downsample2x2 writing into dst, reusing its
// backing array when the capacity suffices.
func Downsample2x2Into(dst, pix []uint8, w, h int) (out []uint8, ow, oh int) {
	return DownsampleInto(dst, pix, w, h, 2, 2)
}

// DownsampleInto reduces a w×h plane by integer factors rx×ry with box
// averaging (rounding half up), the subsampling JPEG uses for chroma.
// The output is ceil(w/rx)×ceil(h/ry); boxes that hang past the plane
// replicate the final row/column, matching the 8×8 block edge-extension
// policy. dst's backing array is reused when its capacity suffices.
func DownsampleInto(dst, pix []uint8, w, h, rx, ry int) (out []uint8, ow, oh int) {
	ow, oh = (w+rx-1)/rx, (h+ry-1)/ry
	out = GrowBytes(dst, ow*oh)
	n := rx * ry
	for y := 0; y < oh; y++ {
		for x := 0; x < ow; x++ {
			s := 0
			for dy := 0; dy < ry; dy++ {
				row := pix[min(y*ry+dy, h-1)*w:]
				for dx := 0; dx < rx; dx++ {
					s += int(row[min(x*rx+dx, w-1)])
				}
			}
			out[y*ow+x] = uint8((s + n/2) / n)
		}
	}
	return out, ow, oh
}

// Upsample2x2 expands a plane by 2 in each dimension using sample
// replication (the baseline JPEG "box" upsampler).
func Upsample2x2(pix []uint8, w, h, ow, oh int) []uint8 {
	return UpsampleInto(nil, pix, w, h, ow, oh, 1, 2, 1, 2)
}

// Upsample2x2Into is Upsample2x2 writing into dst, reusing its backing
// array when the capacity suffices.
func Upsample2x2Into(dst, pix []uint8, w, h, ow, oh int) []uint8 {
	return UpsampleInto(dst, pix, w, h, ow, oh, 1, 2, 1, 2)
}

// UpsampleInto expands a subsampled w×h plane to ow×oh by nearest-sample
// replication, the box upsampler baseline JPEG assumes. hs/maxH and
// vs/maxV are the per-axis sampling ratios — the plane's JPEG sampling
// factor over the frame maximum — so output pixel (x, y) reads source
// sample (x*hs/maxH, y*vs/maxV). For integer ratios (4:2:0, 4:2:2,
// 4:4:0, 4:1:1) that is plain per-axis replication; fractional ratios
// (legal factor pairs like 2-of-3) floor to the covering sample. Either
// way the coordinate is clamped to the plane, which covers the
// ceil-division plane sizes of odd frame dimensions. dst's backing array
// is reused when its capacity suffices.
func UpsampleInto(dst, pix []uint8, w, h, ow, oh, hs, maxH, vs, maxV int) []uint8 {
	out := GrowBytes(dst, ow*oh)
	for y := 0; y < oh; y++ {
		sy := min(y*vs/maxV, h-1)
		srow := pix[sy*w : sy*w+w]
		drow := out[y*ow : y*ow+ow]
		if hs == maxH && w == ow {
			copy(drow, srow)
			continue
		}
		for x := 0; x < ow; x++ {
			drow[x] = srow[min(x*hs/maxH, w-1)]
		}
	}
	return out
}

// BlockGrid describes how a plane tiles into 8×8 blocks.
type BlockGrid struct {
	BlocksX, BlocksY int
}

// Blocks returns the total number of blocks.
func (g BlockGrid) Blocks() int { return g.BlocksX * g.BlocksY }

// GridFor computes the 8×8 block tiling of a w×h plane (ceil division).
func GridFor(w, h int) BlockGrid {
	return BlockGrid{BlocksX: (w + 7) / 8, BlocksY: (h + 7) / 8}
}

// ExtractBlock copies the 8×8 tile at block coordinates (bx, by) from a
// plane into dst, replicating edge samples when the plane does not divide
// evenly (the standard JPEG edge-extension policy).
func ExtractBlock(pix []uint8, w, h, bx, by int, dst *[64]uint8) {
	for y := 0; y < 8; y++ {
		sy := by*8 + y
		if sy >= h {
			sy = h - 1
		}
		row := pix[sy*w:]
		for x := 0; x < 8; x++ {
			sx := bx*8 + x
			if sx >= w {
				sx = w - 1
			}
			dst[y*8+x] = row[sx]
		}
	}
}

// StoreBlock writes an 8×8 tile back into a plane, discarding samples that
// fall outside the plane bounds.
func StoreBlock(pix []uint8, w, h, bx, by int, src *[64]uint8) {
	for y := 0; y < 8; y++ {
		sy := by*8 + y
		if sy >= h {
			break
		}
		for x := 0; x < 8; x++ {
			sx := bx*8 + x
			if sx >= w {
				break
			}
			pix[sy*w+sx] = src[y*8+x]
		}
	}
}

// MSE returns the mean squared error between two equally sized pixel
// buffers.
func MSE(a, b []uint8) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("imgutil: MSE length mismatch %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, nil
	}
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return s / float64(len(a)), nil
}

// PSNR returns the peak signal-to-noise ratio in dB between two equally
// sized pixel buffers. Identical buffers return +Inf.
func PSNR(a, b []uint8) (float64, error) {
	mse, err := MSE(a, b)
	if err != nil {
		return 0, err
	}
	if mse == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(255*255/mse), nil
}

// FromImage converts any image.Image to an interleaved RGB image.
func FromImage(src image.Image) *RGB {
	b := src.Bounds()
	out := NewRGB(b.Dx(), b.Dy())
	for y := 0; y < b.Dy(); y++ {
		for x := 0; x < b.Dx(); x++ {
			r, g, bl, _ := src.At(b.Min.X+x, b.Min.Y+y).RGBA()
			out.Set(x, y, uint8(r>>8), uint8(g>>8), uint8(bl>>8))
		}
	}
	return out
}

// ToImage converts an RGB image to a stdlib *image.RGBA.
func (im *RGB) ToImage() *image.RGBA {
	out := image.NewRGBA(image.Rect(0, 0, im.W, im.H))
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			r, g, b := im.At(x, y)
			out.SetRGBA(x, y, color.RGBA{R: r, G: g, B: b, A: 255})
		}
	}
	return out
}

// ToGray converts an RGB image to grayscale via the BT.601 luma weights.
func (im *RGB) ToGray() *Gray {
	g := NewGray(im.W, im.H)
	n := im.W * im.H
	for i := 0; i < n; i++ {
		r := float64(im.Pix[3*i])
		gg := float64(im.Pix[3*i+1])
		b := float64(im.Pix[3*i+2])
		g.Pix[i] = clamp8(0.299*r + 0.587*gg + 0.114*b)
	}
	return g
}

// ToRGB replicates a grayscale image into three channels.
func (g *Gray) ToRGB() *RGB {
	im := NewRGB(g.W, g.H)
	for i, v := range g.Pix {
		im.Pix[3*i], im.Pix[3*i+1], im.Pix[3*i+2] = v, v, v
	}
	return im
}
