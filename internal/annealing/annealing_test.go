package annealing

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/imgutil"
	"repro/internal/qtable"
)

func testObjective(t *testing.T, lambda float64) *Objective {
	t.Helper()
	cfg := dataset.Quick()
	cfg.TrainPerClass, cfg.TestPerClass = 6, 1
	train, _, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var grays []*imgutil.Gray
	for _, im := range train.Images {
		grays = append(grays, im.ToGray())
	}
	blocks := CollectBlocks(grays, 2)
	if len(blocks) == 0 {
		t.Fatal("no blocks collected")
	}
	return &Objective{Blocks: blocks, Lambda: lambda}
}

func TestCollectBlocksSampling(t *testing.T) {
	g := imgutil.NewGray(32, 32) // 16 blocks
	all := CollectBlocks([]*imgutil.Gray{g}, 1)
	half := CollectBlocks([]*imgutil.Gray{g}, 2)
	if len(all) != 16 || len(half) != 8 {
		t.Fatalf("collected %d / %d, want 16 / 8", len(all), len(half))
	}
	if got := CollectBlocks([]*imgutil.Gray{g}, 0); len(got) != 16 {
		t.Fatalf("every=0 collected %d", len(got))
	}
}

func TestCostMonotonicInSteps(t *testing.T) {
	o := testObjective(t, 0.001)
	coarse := o.Cost(qtable.Uniform(64))
	fine := o.Cost(qtable.Uniform(2))
	// Fine steps cost more rate; with tiny λ rate dominates.
	if fine <= coarse {
		t.Fatalf("fine table cost %.2f not above coarse %.2f under rate-dominant λ", fine, coarse)
	}
	// With huge λ distortion dominates and the ordering flips.
	o.Lambda = 100
	coarse = o.Cost(qtable.Uniform(64))
	fine = o.Cost(qtable.Uniform(2))
	if fine >= coarse {
		t.Fatalf("fine table cost %.2f not below coarse %.2f under distortion-dominant λ", fine, coarse)
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[int32]float64{0: 0, 1: 2, -1: 2, 3: 3, 4: 4, -255: 9}
	for v, want := range cases {
		if got := bitsFor(v); got != want {
			t.Errorf("bitsFor(%d) = %g, want %g", v, got, want)
		}
	}
}

func TestOptimizeImprovesCost(t *testing.T) {
	o := testObjective(t, 0.01)
	cfg := DefaultConfig()
	cfg.Iterations = 1200
	res, err := Optimize(o, qtable.Uniform(16), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost >= res.InitialCost {
		t.Fatalf("no improvement: %.3f → %.3f", res.InitialCost, res.Cost)
	}
	if err := res.Table.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != cfg.Iterations+1 {
		t.Fatalf("evaluations %d", res.Evaluations)
	}
	if res.Accepted == 0 {
		t.Fatal("no moves accepted")
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	o := testObjective(t, 0.01)
	cfg := DefaultConfig()
	cfg.Iterations = 300
	a, err := Optimize(o, qtable.StdLuminance, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Optimize(o, qtable.StdLuminance, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Table != b.Table || a.Cost != b.Cost {
		t.Fatal("annealing not deterministic under fixed seed")
	}
}

func TestOptimizeValidation(t *testing.T) {
	o := testObjective(t, 0.01)
	bad := DefaultConfig()
	bad.Iterations = 0
	if _, err := Optimize(o, qtable.StdLuminance, bad); err == nil {
		t.Error("zero iterations accepted")
	}
	bad = DefaultConfig()
	bad.Cooling = 1.5
	if _, err := Optimize(o, qtable.StdLuminance, bad); err == nil {
		t.Error("cooling ≥ 1 accepted")
	}
	var invalid qtable.Table
	if _, err := Optimize(o, invalid, DefaultConfig()); err == nil {
		t.Error("invalid initial table accepted")
	}
	empty := &Objective{Lambda: 1}
	if _, err := Optimize(empty, qtable.StdLuminance, DefaultConfig()); err == nil {
		t.Error("empty objective accepted")
	}
}

// TestLambdaShapesResult: higher λ (quality-hungry) must end with finer
// average steps than a rate-hungry search.
func TestLambdaShapesResult(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Iterations = 1500
	oRate := testObjective(t, 0.0005)
	rateRes, err := Optimize(oRate, qtable.Uniform(32), cfg)
	if err != nil {
		t.Fatal(err)
	}
	oQual := testObjective(t, 1.0)
	qualRes, err := Optimize(oQual, qtable.Uniform(32), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if qualRes.Table.Mean() >= rateRes.Table.Mean() {
		t.Fatalf("quality-hungry mean step %.1f not finer than rate-hungry %.1f",
			qualRes.Table.Mean(), rateRes.Table.Mean())
	}
}

func BenchmarkObjectiveCost(b *testing.B) {
	cfg := dataset.Quick()
	cfg.TrainPerClass, cfg.TestPerClass = 4, 1
	train, _, err := dataset.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var grays []*imgutil.Gray
	for _, im := range train.Images {
		grays = append(grays, im.ToGray())
	}
	o := &Objective{Blocks: CollectBlocks(grays, 1), Lambda: 0.01}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Cost(qtable.StdLuminance)
	}
}
