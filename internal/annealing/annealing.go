// Package annealing implements a simulated-annealing search over JPEG
// quantization tables, the approach the paper cites (Hopkins et al.,
// "Simulated annealing for JPEG quantization") as the search-based
// alternative to DeepN-JPEG's closed-form heuristic and dismisses as an
// intractable optimization for this setting. Having it in-tree lets the
// benchmarks quantify that claim: the annealer needs thousands of
// objective evaluations to approach the quality a single calibrated
// piece-wise linear mapping delivers.
//
// The objective is a rate–distortion Lagrangian measured on sampled DCT
// blocks: J(T) = rate(T) + λ·distortion(T), where rate is approximated by
// the total magnitude-category bits the entropy coder would emit and
// distortion is the (optionally band-weighted) quantization MSE.
package annealing

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dct"
	"repro/internal/imgutil"
	"repro/internal/qtable"
)

// Objective scores candidate tables against sampled coefficient blocks.
type Objective struct {
	// Blocks holds un-quantized DCT coefficient blocks sampled from the
	// dataset.
	Blocks []dct.Block
	// Lambda trades rate against distortion; larger λ favors quality.
	Lambda float64
	// Weights optionally emphasizes distortion in important bands (e.g.
	// the δ ranking); nil weights every band equally.
	Weights *[64]float64
}

// CollectBlocks samples the luma DCT blocks of a set of images into
// objective form. every selects each k-th block (≤1 keeps all).
func CollectBlocks(images []*imgutil.Gray, every int) []dct.Block {
	if every < 1 {
		every = 1
	}
	var out []dct.Block
	count := 0
	var tile [64]uint8
	for _, img := range images {
		grid := imgutil.GridFor(img.W, img.H)
		for by := 0; by < grid.BlocksY; by++ {
			for bx := 0; bx < grid.BlocksX; bx++ {
				count++
				if count%every != 0 {
					continue
				}
				imgutil.ExtractBlock(img.Pix, img.W, img.H, bx, by, &tile)
				var blk dct.Block
				dct.LevelShift(tile[:], &blk)
				dct.ForwardAAN(&blk)
				out = append(out, blk)
			}
		}
	}
	return out
}

// bitsFor approximates the entropy-coded cost of a quantized value as its
// JPEG magnitude category plus one structural bit (run/size symbol
// amortization); zeros are free, matching run-length coding's behavior.
func bitsFor(v int32) float64 {
	if v == 0 {
		return 0
	}
	if v < 0 {
		v = -v
	}
	n := 1.0
	for v > 0 {
		n++
		v >>= 1
	}
	return n
}

// Cost evaluates the Lagrangian for a table.
func (o *Objective) Cost(t qtable.Table) float64 {
	var rate, distortion float64
	for bi := range o.Blocks {
		blk := &o.Blocks[bi]
		for n := 0; n < 64; n++ {
			q := float64(t[n])
			v := math.Round(blk[n] / q)
			rate += bitsFor(int32(v))
			d := blk[n] - v*q
			if o.Weights != nil {
				d *= o.Weights[n]
			}
			distortion += d * d
		}
	}
	norm := float64(len(o.Blocks))
	if norm == 0 {
		return 0
	}
	return (rate + o.Lambda*distortion) / norm
}

// Config controls the annealing schedule.
type Config struct {
	// Iterations is the number of proposed moves.
	Iterations int
	// InitTemp is the starting Metropolis temperature.
	InitTemp float64
	// Cooling is the geometric decay per iteration (0 < Cooling < 1).
	Cooling float64
	// MaxStepDelta bounds a single move's change to one band's step.
	MaxStepDelta int
	// Seed makes runs reproducible.
	Seed int64
}

// DefaultConfig is a schedule that converges on small block samples in a
// few thousand moves.
func DefaultConfig() Config {
	return Config{Iterations: 4000, InitTemp: 5, Cooling: 0.999, MaxStepDelta: 24, Seed: 1}
}

// Validate rejects unusable schedules.
func (c Config) Validate() error {
	if c.Iterations < 1 {
		return fmt.Errorf("annealing: iterations %d < 1", c.Iterations)
	}
	if c.InitTemp <= 0 {
		return fmt.Errorf("annealing: initial temperature %g must be positive", c.InitTemp)
	}
	if c.Cooling <= 0 || c.Cooling >= 1 {
		return fmt.Errorf("annealing: cooling %g outside (0,1)", c.Cooling)
	}
	if c.MaxStepDelta < 1 {
		return fmt.Errorf("annealing: max step delta %d < 1", c.MaxStepDelta)
	}
	return nil
}

// Result reports the search outcome.
type Result struct {
	Table       qtable.Table
	Cost        float64
	InitialCost float64
	Accepted    int
	Evaluations int
}

// Optimize anneals from the initial table toward a lower-cost one.
func Optimize(o *Objective, init qtable.Table, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := init.Validate(); err != nil {
		return Result{}, fmt.Errorf("annealing: initial table: %w", err)
	}
	if len(o.Blocks) == 0 {
		return Result{}, fmt.Errorf("annealing: no sample blocks")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cur := init
	curCost := o.Cost(cur)
	best := cur
	bestCost := curCost
	res := Result{InitialCost: curCost, Evaluations: 1}
	temp := cfg.InitTemp
	for it := 0; it < cfg.Iterations; it++ {
		// Propose: nudge one band's step.
		band := rng.Intn(64)
		delta := rng.Intn(2*cfg.MaxStepDelta+1) - cfg.MaxStepDelta
		if delta == 0 {
			delta = 1
		}
		next := cur
		step := int(next[band]) + delta
		if step < 1 {
			step = 1
		}
		if step > 255 {
			step = 255
		}
		next[band] = uint16(step)
		nextCost := o.Cost(next)
		res.Evaluations++
		if accept(nextCost-curCost, temp, rng) {
			cur, curCost = next, nextCost
			res.Accepted++
			if curCost < bestCost {
				best, bestCost = cur, curCost
			}
		}
		temp *= cfg.Cooling
	}
	res.Table = best
	res.Cost = bestCost
	return res, nil
}

// accept applies the Metropolis criterion.
func accept(deltaCost, temp float64, rng *rand.Rand) bool {
	if deltaCost <= 0 {
		return true
	}
	if temp <= 0 {
		return false
	}
	return rng.Float64() < math.Exp(-deltaCost/temp)
}
