package profile

import (
	"bytes"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dct"
	"repro/internal/freqstat"
	"repro/internal/plm"
	"repro/internal/qtable"
)

// syntheticProfile builds a fully deterministic profile from handcrafted
// numbers — no calibration pass, no floating-point paths that could vary
// across platforms — so golden bytes are stable everywhere.
func syntheticProfile(chroma bool) *Profile {
	stats := func(seed float64) *freqstat.Stats {
		s := &freqstat.Stats{Blocks: 4096}
		for i := 0; i < 64; i++ {
			f := float64(i)
			s.Mean[i] = seed + f/8
			s.Std[i] = 80 - f + seed/10
			s.Min[i] = -(seed + 2*f)
			s.Max[i] = seed + 2*f
		}
		return s
	}
	p := &Profile{
		Name:         "synthetic",
		Version:      3,
		CreatedUnix:  1700000000,
		Comment:      "handcrafted golden fixture",
		Transform:    dct.TransformAAN,
		SampledCount: 512,
		Params: plm.Params{
			A: 255, B: 80, C: 240,
			K1: 9.75, K2: 1, K3: 3,
			T1: 20, T2: 60,
			QMin: 5, QMax: 255,
		},
		LumaStats: stats(1),
	}
	for i := range p.Luma {
		p.Luma[i] = uint16(1 + (i*3)%255)
		p.Chroma[i] = uint16(1 + (i*7)%255)
	}
	if chroma {
		p.ChromaCalibrated = true
		p.ChromaStats = stats(2)
	}
	return p
}

// calibratedProfile runs the real design flow on SynthNet and captures it,
// for tests that need a profile whose framework actually restores the
// calibrated state.
func calibratedProfile(tb testing.TB, chroma bool) (*Profile, *core.Framework) {
	tb.Helper()
	cfg := dataset.Quick()
	cfg.TrainPerClass, cfg.TestPerClass = 8, 1
	cfg.Color = chroma
	train, _, err := dataset.Generate(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	fw, err := core.Calibrate(train, core.CalibrateOptions{Chroma: chroma})
	if err != nil {
		tb.Fatal(err)
	}
	p, err := FromFramework(fw, Meta{Name: "synthnet", Version: 1, CreatedUnix: 42})
	if err != nil {
		tb.Fatal(err)
	}
	return p, fw
}

func encodeOK(tb testing.TB, p *Profile) []byte {
	tb.Helper()
	data, err := p.Encode()
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

func TestRoundTrip(t *testing.T) {
	for _, chroma := range []bool{false, true} {
		p := syntheticProfile(chroma)
		data := encodeOK(t, p)
		back, err := Decode(data)
		if err != nil {
			t.Fatalf("chroma=%v: %v", chroma, err)
		}
		again := encodeOK(t, back)
		if !bytes.Equal(data, again) {
			t.Fatalf("chroma=%v: decode→encode is not byte-identical", chroma)
		}
		if back.Ref() != "synthetic@3" || back.Transform != dct.TransformAAN ||
			back.SampledCount != 512 || back.CreatedUnix != 1700000000 {
			t.Fatalf("chroma=%v: fields did not survive: %+v", chroma, back)
		}
		if back.LumaStats.Blocks != 4096 || back.LumaStats.Std[0] != p.LumaStats.Std[0] {
			t.Fatalf("chroma=%v: statistics did not survive", chroma)
		}
	}
}

func TestCalibratedRoundTripRestoresFramework(t *testing.T) {
	p, fw := calibratedProfile(t, true)
	back, err := Decode(encodeOK(t, p))
	if err != nil {
		t.Fatal(err)
	}
	fw2, err := back.Framework()
	if err != nil {
		t.Fatal(err)
	}
	if fw2.LumaTable != fw.LumaTable || fw2.ChromaTable != fw.ChromaTable {
		t.Fatal("restored tables differ from calibrated ones")
	}
	if fw2.Transform != fw.Transform || fw2.SampledCount != fw.SampledCount {
		t.Fatal("restored metadata differs")
	}
	if *fw2.Stats != *fw.Stats {
		t.Fatal("restored statistics differ")
	}
	if fw2.Seg.ByRank != fw.Seg.ByRank {
		t.Fatal("recomputed segmentation ranks differ")
	}
}

// TestGolden pins the canonical bytes: the checked-in golden file must
// decode to the synthetic fixture and the fixture must encode to exactly
// the golden bytes. Regenerate with UPDATE_GOLDEN=1 after a deliberate
// format change (which must also bump FormatVersion).
func TestGolden(t *testing.T) {
	path := filepath.Join("testdata", "golden.dnp")
	want := encodeOK(t, syntheticProfile(true))
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, want, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("golden bytes drifted: the canonical encoding changed without a format-version bump")
	}
	p, err := Decode(got)
	if err != nil {
		t.Fatal(err)
	}
	if again := encodeOK(t, p); !bytes.Equal(again, got) {
		t.Fatal("golden re-encode is not byte-identical")
	}
}

// patchCRC recomputes the trailing checksum after a deliberate mutation,
// so corruption tests reach the validation they target instead of
// stopping at ErrChecksum.
func patchCRC(data []byte) []byte {
	sum := crc32.ChecksumIEEE(data[:len(data)-4])
	data[len(data)-4] = byte(sum >> 24)
	data[len(data)-3] = byte(sum >> 16)
	data[len(data)-2] = byte(sum >> 8)
	data[len(data)-1] = byte(sum)
	return data
}

func TestDecodeRejectsCorruption(t *testing.T) {
	valid := encodeOK(t, syntheticProfile(true))
	// Offsets inside the fixed header: magic(4) format(2) flags(2)
	// nameLen(2) name(9 = len "synthetic")...
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error
	}{
		{"empty", func(b []byte) []byte { return nil }, ErrBadMagic},
		{"not a profile", func(b []byte) []byte { return []byte("PNG\x89 definitely not") }, ErrBadMagic},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }, ErrBadMagic},
		{"future format version", func(b []byte) []byte { b[5] = 99; return patchCRC(b) }, ErrFormatVersion},
		{"unknown flag bits", func(b []byte) []byte { b[6] = 0x80; return patchCRC(b) }, ErrCorrupt},
		{"truncated header", func(b []byte) []byte { return b[:7] }, ErrCorrupt},
		{"truncated body", func(b []byte) []byte { return b[:len(b)/2] }, ErrCorrupt},
		{"truncated crc", func(b []byte) []byte { return b[:len(b)-2] }, ErrCorrupt},
		{"flipped payload byte", func(b []byte) []byte { b[len(b)/2] ^= 0x01; return b }, ErrChecksum},
		{"flipped crc byte", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }, ErrChecksum},
		{"trailing bytes", func(b []byte) []byte { return append(b, 0) }, ErrCorrupt},
		{"oversized name length", func(b []byte) []byte { b[8], b[9] = 0xFF, 0xFF; return patchCRC(b) }, ErrCorrupt},
		{"illegal name character", func(b []byte) []byte { b[10] = '@'; return patchCRC(b) }, ErrCorrupt},
		{"uppercase name", func(b []byte) []byte { b[10] = 'S'; return patchCRC(b) }, ErrCorrupt},
		{"version zero", func(b []byte) []byte {
			off := 10 + len("synthetic") // version uint32 follows the name
			for i := 0; i < 4; i++ {
				b[off+i] = 0
			}
			return patchCRC(b)
		}, ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(bytes.Clone(valid))
			p, err := Decode(data)
			if err == nil {
				t.Fatalf("corrupt input decoded: %+v", p)
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("error %v, want %v", err, tc.wantErr)
			}
		})
	}
	// Every truncation of the valid encoding must fail cleanly (and
	// never panic): the CRC is last, so no prefix can be valid.
	for n := 0; n < len(valid); n++ {
		if _, err := Decode(valid[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		}
	}
}

func TestEncodeValidation(t *testing.T) {
	base := func() *Profile { return syntheticProfile(true) }
	cases := []struct {
		name   string
		mutate func(*Profile)
		want   string
	}{
		{"empty name", func(p *Profile) { p.Name = "" }, "name"},
		{"illegal name", func(p *Profile) { p.Name = "No/Slash" }, "name"},
		{"version zero", func(p *Profile) { p.Version = 0 }, "version"},
		{"bad transform", func(p *Profile) { p.Transform = 99 }, "transform"},
		{"zero table step", func(p *Profile) { p.Luma[0] = 0 }, "luma table"},
		{"nil stats", func(p *Profile) { p.LumaStats = nil }, "statistics"},
		{"chroma mismatch", func(p *Profile) { p.ChromaStats = nil }, "chroma"},
		{"stats NaN", func(p *Profile) { p.LumaStats.Std[5] = nan() }, "non-finite"},
		{"params inf", func(p *Profile) { p.Params.K2 = inf() }, "non-finite"},
		{"oversized comment", func(p *Profile) { p.Comment = strings.Repeat("x", MaxCommentLen+1) }, "comment"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := base()
			tc.mutate(p)
			if _, err := p.Encode(); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want mention of %q", err, tc.want)
			}
		})
	}
}

func nan() float64 { z := 0.0; return z / z }
func inf() float64 { z := 0.0; return 1 / z }

func TestWriteReadAtomic(t *testing.T) {
	dir := t.TempDir()
	p := syntheticProfile(false)
	path := filepath.Join(dir, p.FileName())
	if err := p.Write(path); err != nil {
		t.Fatal(err)
	}
	back, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Ref() != p.Ref() {
		t.Fatalf("read back %s, want %s", back.Ref(), p.Ref())
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries after an atomic write, want 1", len(entries))
	}
}

func TestParseRef(t *testing.T) {
	if name, v, has, err := ParseRef("imagenet@12"); err != nil || name != "imagenet" || v != 12 || !has {
		t.Fatalf("got %q %d %v %v", name, v, has, err)
	}
	if name, _, has, err := ParseRef("imagenet"); err != nil || name != "imagenet" || has {
		t.Fatalf("got %q %v %v", name, has, err)
	}
	for _, bad := range []string{"", "UPPER", "a@0", "a@x", "a@", "a b", "a@1@2", "-lead"} {
		if _, _, _, err := ParseRef(bad); err == nil {
			t.Fatalf("ParseRef(%q) accepted", bad)
		}
	}
}

// TestTableBinaryRoundTrip pins the qtable helper the format builds on.
func TestTableBinaryRoundTrip(t *testing.T) {
	var tbl qtable.Table
	for i := range tbl {
		tbl[i] = uint16(i*401 + 1)
	}
	buf := tbl.AppendBinary(nil)
	if len(buf) != qtable.BinarySize {
		t.Fatalf("encoded %d bytes, want %d", len(buf), qtable.BinarySize)
	}
	back, err := qtable.TableFromBinary(buf)
	if err != nil || back != tbl {
		t.Fatalf("round trip: %v", err)
	}
}

// TestStatsBinaryRoundTrip pins the freqstat helper the format builds on,
// including exact bit patterns for awkward floats.
func TestStatsBinaryRoundTrip(t *testing.T) {
	s := &freqstat.Stats{Blocks: 1 << 40}
	for i := 0; i < 64; i++ {
		s.Mean[i] = 1.0 / float64(i+3)
		s.Std[i] = 3.25 * float64(i)
		s.Min[i] = -1e-300
		s.Max[i] = 1e300
	}
	buf := s.AppendBinary(nil)
	if len(buf) != freqstat.StatsBinarySize {
		t.Fatalf("encoded %d bytes, want %d", len(buf), freqstat.StatsBinarySize)
	}
	back, err := freqstat.StatsFromBinary(buf)
	if err != nil {
		t.Fatal(err)
	}
	if *back != *s {
		t.Fatal("round trip drifted")
	}
	if _, err := freqstat.StatsFromBinary(buf[:10]); err == nil {
		t.Fatal("truncated stats accepted")
	}
}
