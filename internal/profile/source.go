package profile

// A Source feeds a Registry with profiles it does not have locally — the
// abstraction a profile hub client plugs into. The registry stays a
// plain directory of .dnp files (everything downstream of it — hot
// reload, framework caching, fingerprint polling — is unchanged); a
// source only gets consulted on a resolve miss (lazy pull) and on Watch
// ticks (periodic sync), and every byte it returns is fully decoded and
// validated before it is materialized into the directory.

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"time"
)

// SourceRef names one profile a source can provide.
type SourceRef struct {
	Name    string
	Version uint32
}

// Source is a remote provider of encoded profiles.
//
// Implementations must be safe for concurrent use; the registry calls
// them from request goroutines (lazy pulls) and the Watch goroutine
// (periodic sync).
type Source interface {
	// Fetch returns the canonical encoded bytes of name@version;
	// version 0 requests the highest published version. The returned
	// bytes must decode to a profile whose Name matches name (and whose
	// Version matches, when one was requested) — the registry re-checks.
	Fetch(ctx context.Context, name string, version uint32) ([]byte, error)
	// List enumerates every profile the source currently publishes.
	List(ctx context.Context) ([]SourceRef, error)
}

// defaultFetchTimeout bounds a lazy pull triggered from a resolve miss,
// where no caller context exists: a hub origin that stops answering must
// fail the one request that missed, not wedge it.
const defaultFetchTimeout = 30 * time.Second

// AttachSource connects a remote source to the registry. After this,
// a Resolve/ResolveFramework miss triggers a synchronous fetch (bounded
// by fetchTimeout; ≤ 0 selects a 30s default) and Watch ticks sync newly
// published profiles into the directory. Attach before serving; the
// field is not synchronized against concurrent resolves.
func (r *Registry) AttachSource(src Source, fetchTimeout time.Duration) {
	if fetchTimeout <= 0 {
		fetchTimeout = defaultFetchTimeout
	}
	r.source = src
	r.fetchTimeout = fetchTimeout
}

// fetchMiss pulls one missing reference from the source, materializes it
// into the registry directory and reloads. The single flight mutex
// collapses a stampede of concurrent misses for the same cold profile
// into one origin fetch: later waiters re-resolve locally and return.
func (r *Registry) fetchMiss(ref string, name string, version uint32) (*entry, error) {
	r.fetchMu.Lock()
	defer r.fetchMu.Unlock()
	// A concurrent fetch may have landed the profile while this caller
	// waited on the mutex.
	if e, err := r.resolveLocal(ref); err == nil {
		return e, nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), r.fetchTimeout)
	defer cancel()
	if _, err := r.materialize(ctx, name, version); err != nil {
		return nil, fmt.Errorf("%w: %q not in %s and hub fetch failed: %v", ErrNotFound, ref, r.dir, err)
	}
	if _, err := r.Reload(); err != nil {
		// Another file in the directory may be corrupt; the fetched
		// profile still swapped in, so only a failed resolve below is
		// fatal for this request.
		_ = err
	}
	return r.resolveLocal(ref)
}

// materialize fetches name@version (0 = latest) from the source,
// validates it end to end, and writes it into the registry directory
// under its canonical file name. It does not reload.
func (r *Registry) materialize(ctx context.Context, name string, version uint32) (*Profile, error) {
	data, err := r.source.Fetch(ctx, name, version)
	if err != nil {
		return nil, err
	}
	p, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("fetched %s@%d: %w", name, version, err)
	}
	// The source answers for the bytes; the registry answers for the
	// identity. A blob that decodes fine but names a different profile
	// (a hub index mix-up, a malicious origin) must not land under the
	// requested name.
	if p.Name != name {
		return nil, fmt.Errorf("fetched %s@%d but blob declares name %q", name, version, p.Name)
	}
	if version != 0 && p.Version != version {
		return nil, fmt.Errorf("fetched %s@%d but blob declares version %d", name, version, p.Version)
	}
	if err := WriteFileAtomic(filepath.Join(r.dir, p.FileName()), data); err != nil {
		return nil, err
	}
	return p, nil
}

// SyncSource pulls every profile the source publishes that is not in the
// local snapshot yet, materializing them into the directory. It returns
// how many files were written. It does NOT reload: callers either reload
// explicitly or — the Watch path — let the directory fingerprint change
// trigger the normal reload machinery, so one code path publishes
// snapshots no matter where a file came from. With no source attached it
// is a no-op.
func (r *Registry) SyncSource(ctx context.Context) (int, error) {
	if r.source == nil {
		return 0, nil
	}
	refs, err := r.source.List(ctx)
	if err != nil {
		return 0, err
	}
	r.mu.RLock()
	have := make(map[SourceRef]bool)
	for name, byVersion := range r.entries {
		for v := range byVersion {
			have[SourceRef{name, v}] = true
		}
	}
	r.mu.RUnlock()
	added := 0
	var errs []error
	for _, ref := range refs {
		if have[ref] {
			continue
		}
		if err := ValidateName(ref.Name); err != nil || ref.Version == 0 {
			errs = append(errs, fmt.Errorf("source lists invalid ref %s@%d", ref.Name, ref.Version))
			continue
		}
		if _, err := r.materialize(ctx, ref.Name, ref.Version); err != nil {
			errs = append(errs, err)
			continue
		}
		added++
	}
	return added, errors.Join(errs...)
}
