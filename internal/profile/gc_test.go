package profile

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// writeGCProfile persists one fixture and pins its mtime so LRU ordering
// is deterministic.
func writeGCProfile(tb testing.TB, dir, name string, version uint32, age time.Duration) string {
	tb.Helper()
	p := syntheticProfile(false)
	p.Name, p.Version = name, version
	path := filepath.Join(dir, p.FileName())
	if err := p.Write(path); err != nil {
		tb.Fatal(err)
	}
	when := time.Now().Add(-age)
	if err := os.Chtimes(path, when, when); err != nil {
		tb.Fatal(err)
	}
	return path
}

func TestGCVersionCap(t *testing.T) {
	dir := t.TempDir()
	for v := uint32(1); v <= 5; v++ {
		writeGCProfile(t, dir, "tenant", v, 0)
	}
	writeGCProfile(t, dir, "other", 1, 0)
	res, err := GCDir(dir, GCPolicy{MaxVersionsPerName: 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removed) != 3 {
		t.Fatalf("removed %v, want tenant@1..3", res.Removed)
	}
	for _, ref := range []string{"tenant@4", "tenant@5", "other@1"} {
		if _, err := os.Stat(filepath.Join(dir, ref+Ext)); err != nil {
			t.Fatalf("%s should survive: %v", ref, err)
		}
	}
	for _, ref := range []string{"tenant@1", "tenant@2", "tenant@3"} {
		if _, err := os.Stat(filepath.Join(dir, ref+Ext)); !os.IsNotExist(err) {
			t.Fatalf("%s should be gone", ref)
		}
	}
}

func TestGCByteCapEvictsLRUButNeverNewest(t *testing.T) {
	dir := t.TempDir()
	// Oldest first: a@1 (oldest), a@2, b@1 (newest access).
	oldPath := writeGCProfile(t, dir, "a", 1, 3*time.Hour)
	writeGCProfile(t, dir, "a", 2, 2*time.Hour)
	writeGCProfile(t, dir, "b", 1, time.Hour)
	st, err := os.Stat(oldPath)
	if err != nil {
		t.Fatal(err)
	}
	size := st.Size()

	// Budget for two files: the LRU non-newest version (a@1) goes first.
	res, err := GCDir(dir, GCPolicy{MaxBytes: 2 * size}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removed) != 1 || res.Removed[0] != oldPath {
		t.Fatalf("removed %v, want just %s", res.Removed, oldPath)
	}
	if res.OverBudget {
		t.Fatal("within budget after evicting a@1")
	}

	// Budget for one file cannot be met: a@2 and b@1 are both their
	// name's newest version, so the pass stops over budget rather than
	// cause an outage.
	res, err = GCDir(dir, GCPolicy{MaxBytes: size}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removed) != 0 || !res.OverBudget {
		t.Fatalf("newest versions were evicted: %+v", res)
	}
}

func TestGCDryRunAndSidecars(t *testing.T) {
	dir := t.TempDir()
	doomed := writeGCProfile(t, dir, "x", 1, time.Hour)
	writeGCProfile(t, dir, "x", 2, 0)
	if err := os.WriteFile(doomed+SigExt, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := GCDir(dir, GCPolicy{MaxVersionsPerName: 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removed) != 1 || res.Removed[0] != doomed {
		t.Fatalf("dry run planned %v", res.Removed)
	}
	if _, err := os.Stat(doomed); err != nil {
		t.Fatal("dry run deleted a file")
	}

	if _, err := GCDir(dir, GCPolicy{MaxVersionsPerName: 1}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(doomed); !os.IsNotExist(err) {
		t.Fatal("x@1 should be gone")
	}
	if _, err := os.Stat(doomed + SigExt); !os.IsNotExist(err) {
		t.Fatal("sidecar should be gone with its profile")
	}
}

func TestGCSkipsUndecodableFiles(t *testing.T) {
	dir := t.TempDir()
	writeGCProfile(t, dir, "y", 1, time.Hour)
	writeGCProfile(t, dir, "y", 2, 0)
	junk := filepath.Join(dir, "broken@1.dnp")
	if err := os.WriteFile(junk, []byte("not a profile"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := GCDir(dir, GCPolicy{MaxVersionsPerName: 1}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removed) != 1 {
		t.Fatalf("removed %v", res.Removed)
	}
	if _, err := os.Stat(junk); err != nil {
		t.Fatal("GC deleted an undecodable file — corruption evidence must survive")
	}
}
