package profile

// Profile diffing, the lifecycle tool behind `deepn-jpeg profiles diff`:
// two calibrations of the same dataset should differ only where the
// underlying statistics moved, and an operator deciding whether to roll
// a fleet from v1 to v2 wants exactly that delta — per-band quantization
// steps and the frequency statistics they were derived from — not a
// byte-level "files differ".

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/freqstat"
	"repro/internal/qtable"
)

// TableDelta is one quantization band whose step differs.
type TableDelta struct {
	Band int // natural (row-major) index, 0..63
	A, B uint16
}

// StatDelta is one per-band statistic that differs between two profiles.
type StatDelta struct {
	Band  int
	Field string // "mean", "std", "min", "max"
	A, B  float64
}

// Diff is the structured comparison of two profiles.
type Diff struct {
	// Fields lists metadata-level differences (transform engine, sampled
	// count, chroma calibration, PLM parameters) as rendered lines.
	Fields []string
	// Luma and Chroma list the quantization bands whose steps differ.
	Luma, Chroma []TableDelta
	// LumaStats and ChromaStats list per-band statistic differences.
	// Statistics are stored bit-exact, so comparison is exact equality.
	LumaStats, ChromaStats []StatDelta
}

// Identical reports whether the two profiles' calibration content is the
// same. Identity fields (name, version, creation time, comment) are
// deliberately outside the comparison: diff answers "would these two
// profiles encode differently / were they fit from the same statistics",
// not "are these the same file".
func (d *Diff) Identical() bool {
	return len(d.Fields) == 0 && len(d.Luma) == 0 && len(d.Chroma) == 0 &&
		len(d.LumaStats) == 0 && len(d.ChromaStats) == 0
}

// Compare diffs two profiles' calibration content: tables, statistics,
// and the calibration metadata that changes encoded output.
func Compare(a, b *Profile) *Diff {
	d := &Diff{}
	if a.Transform != b.Transform {
		d.Fields = append(d.Fields, fmt.Sprintf("transform: %s → %s", a.Transform, b.Transform))
	}
	if a.SampledCount != b.SampledCount {
		d.Fields = append(d.Fields, fmt.Sprintf("sampled: %d → %d images", a.SampledCount, b.SampledCount))
	}
	if a.ChromaCalibrated != b.ChromaCalibrated {
		d.Fields = append(d.Fields, fmt.Sprintf("chroma calibrated: %v → %v", a.ChromaCalibrated, b.ChromaCalibrated))
	}
	pa, pb := a.Params, b.Params
	for _, f := range [...]struct {
		name string
		a, b float64
	}{
		{"a", pa.A, pb.A}, {"b", pa.B, pb.B}, {"c", pa.C, pb.C},
		{"k1", pa.K1, pb.K1}, {"k2", pa.K2, pb.K2}, {"k3", pa.K3, pb.K3},
		{"T1", pa.T1, pb.T1}, {"T2", pa.T2, pb.T2},
		{"Qmin", pa.QMin, pb.QMin}, {"Qmax", pa.QMax, pb.QMax},
	} {
		if math.Float64bits(f.a) != math.Float64bits(f.b) {
			d.Fields = append(d.Fields, fmt.Sprintf("PLM %s: %g → %g", f.name, f.a, f.b))
		}
	}
	d.Luma = diffTables(&a.Luma, &b.Luma)
	d.Chroma = diffTables(&a.Chroma, &b.Chroma)
	d.LumaStats = diffStats(a.LumaStats, b.LumaStats)
	d.ChromaStats = diffStats(a.ChromaStats, b.ChromaStats)
	return d
}

func diffTables(a, b *qtable.Table) []TableDelta {
	var out []TableDelta
	for i := range a {
		if a[i] != b[i] {
			out = append(out, TableDelta{Band: i, A: a[i], B: b[i]})
		}
	}
	return out
}

func diffStats(a, b *freqstat.Stats) []StatDelta {
	switch {
	case a == nil && b == nil:
		return nil
	case a == nil:
		a = &freqstat.Stats{}
	case b == nil:
		b = &freqstat.Stats{}
	}
	var out []StatDelta
	if a.Blocks != b.Blocks {
		out = append(out, StatDelta{Band: -1, Field: "blocks", A: float64(a.Blocks), B: float64(b.Blocks)})
	}
	for _, f := range [...]struct {
		name string
		a, b *[64]float64
	}{
		{"mean", &a.Mean, &b.Mean}, {"std", &a.Std, &b.Std},
		{"min", &a.Min, &b.Min}, {"max", &a.Max, &b.Max},
	} {
		for i := 0; i < 64; i++ {
			if math.Float64bits(f.a[i]) != math.Float64bits(f.b[i]) {
				out = append(out, StatDelta{Band: i, Field: f.name, A: f.a[i], B: f.b[i]})
			}
		}
	}
	return out
}

// String renders the diff for terminals: one line per metadata change,
// per-band table deltas as signed step changes, and a compact summary of
// statistic movement. Empty output means identical calibration content.
func (d *Diff) String() string {
	if d.Identical() {
		return ""
	}
	var sb strings.Builder
	for _, f := range d.Fields {
		fmt.Fprintf(&sb, "%s\n", f)
	}
	writeTableDeltas(&sb, "luma", d.Luma)
	writeTableDeltas(&sb, "chroma", d.Chroma)
	writeStatDeltas(&sb, "luma stats", d.LumaStats)
	writeStatDeltas(&sb, "chroma stats", d.ChromaStats)
	return sb.String()
}

func writeTableDeltas(sb *strings.Builder, label string, deltas []TableDelta) {
	if len(deltas) == 0 {
		return
	}
	fmt.Fprintf(sb, "%s table: %d of 64 bands differ\n", label, len(deltas))
	for _, td := range deltas {
		fmt.Fprintf(sb, "  band[%d,%d]: %d → %d (%+d)\n",
			td.Band/8, td.Band%8, td.A, td.B, int(td.B)-int(td.A))
	}
}

func writeStatDeltas(sb *strings.Builder, label string, deltas []StatDelta) {
	if len(deltas) == 0 {
		return
	}
	// Per-band float listings get long; summarize per field with the
	// largest absolute movement, which is what a reviewer scans for.
	byField := map[string]struct {
		n        int
		maxDelta float64
		maxBand  int
	}{}
	for _, sd := range deltas {
		if sd.Field == "blocks" {
			fmt.Fprintf(sb, "%s: blocks %d → %d\n", label, int64(sd.A), int64(sd.B))
			continue
		}
		e := byField[sd.Field]
		e.n++
		if diff := math.Abs(sd.B - sd.A); diff >= e.maxDelta {
			e.maxDelta, e.maxBand = diff, sd.Band
		}
		byField[sd.Field] = e
	}
	for _, field := range [...]string{"mean", "std", "min", "max"} {
		if e, ok := byField[field]; ok {
			fmt.Fprintf(sb, "%s: %s differs in %d band(s), max |Δ|=%.4g at band[%d,%d]\n",
				label, field, e.n, e.maxDelta, e.maxBand/8, e.maxBand%8)
		}
	}
}
