package profile

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Registry serves the profiles of one directory, resolved by name or
// name@version references. It is safe for concurrent use: lookups take a
// read lock over an immutable snapshot, and Reload swaps a freshly
// scanned snapshot in atomically, so requests holding frameworks from
// the previous snapshot keep serving with them — a hot reload never
// disturbs in-flight work.
type Registry struct {
	dir string

	mu          sync.RWMutex
	entries     map[string]map[uint32]*entry // name → version → entry
	fingerprint string

	loads atomic.Int64 // successful scan passes (initial load counts)
}

// entry pairs a loaded profile with its source file and a lazily built,
// cached framework, so per-request profile selection does not pay the
// restore cost on every request.
type entry struct {
	profile *Profile
	path    string
	modTime time.Time
	size    int64

	once  sync.Once
	fw    *core.Framework
	fwErr error
}

func (e *entry) framework() (*core.Framework, error) {
	e.once.Do(func() { e.fw, e.fwErr = e.profile.Framework() })
	return e.fw, e.fwErr
}

// OpenRegistry scans dir for profile files (*.dnp) and returns the
// registry serving them. The directory must exist; an empty directory is
// a valid (empty) registry. Files that fail to decode are skipped and
// reported through the returned error while every readable profile still
// loads — a single corrupt artifact must not take down serving.
func OpenRegistry(dir string) (*Registry, error) {
	r := &Registry{dir: dir}
	if _, err := r.Reload(); err != nil {
		return r, err
	}
	return r, nil
}

// Dir returns the directory the registry scans.
func (r *Registry) Dir() string { return r.dir }

// Loads reports how many successful scan passes the registry has run —
// the profile-(re)load counter surfaced by the serving layer.
func (r *Registry) Loads() int64 { return r.loads.Load() }

// Reload rescans the directory and atomically swaps the served snapshot.
// It returns the number of profiles now served. Per-file decode failures
// and duplicate name@version pairs are joined into the error while the
// healthy remainder is still swapped in; the error is nil only when every
// file loaded cleanly. Entries whose file is unchanged (same path, size,
// mtime) carry their cached framework over, so a reload is cheap and
// in-flight requests see either the old or the new snapshot, never a mix.
func (r *Registry) Reload() (int, error) {
	names, fingerprint, err := r.scanDir()
	if err != nil {
		return 0, err
	}

	r.mu.RLock()
	prev := r.entries
	r.mu.RUnlock()

	next := make(map[string]map[uint32]*entry)
	var errs []error
	n := 0
	for _, name := range names {
		path := filepath.Join(r.dir, name)
		st, err := os.Stat(path)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		e := reuseEntry(prev, path, st.Size(), st.ModTime())
		if e == nil {
			p, err := Read(path)
			if err != nil {
				errs = append(errs, err)
				continue
			}
			e = &entry{profile: p, path: path, modTime: st.ModTime(), size: st.Size()}
		}
		byVersion := next[e.profile.Name]
		if byVersion == nil {
			byVersion = make(map[uint32]*entry)
			next[e.profile.Name] = byVersion
		}
		if dup, ok := byVersion[e.profile.Version]; ok {
			errs = append(errs, fmt.Errorf("profile: %s and %s both declare %s",
				dup.path, path, e.profile.Ref()))
			continue
		}
		byVersion[e.profile.Version] = e
		n++
	}

	r.mu.Lock()
	r.entries = next
	r.fingerprint = fingerprint
	r.mu.Unlock()
	r.loads.Add(1)
	return n, errors.Join(errs...)
}

// scanDir lists the profile files of the directory in sorted order plus
// a fingerprint of their (name, size, mtime) triples for change polling.
func (r *Registry) scanDir() ([]string, string, error) {
	dirents, err := os.ReadDir(r.dir)
	if err != nil {
		return nil, "", err
	}
	var names []string
	var fp strings.Builder
	for _, de := range dirents {
		if de.IsDir() || !strings.HasSuffix(de.Name(), Ext) {
			continue
		}
		names = append(names, de.Name())
		if info, err := de.Info(); err == nil {
			fmt.Fprintf(&fp, "%s|%d|%d\n", de.Name(), info.Size(), info.ModTime().UnixNano())
		}
	}
	sort.Strings(names)
	return names, fp.String(), nil
}

// reuseEntry returns the previous snapshot's entry for path when the file
// is unchanged, preserving its cached framework.
func reuseEntry(prev map[string]map[uint32]*entry, path string, size int64, modTime time.Time) *entry {
	for _, byVersion := range prev {
		for _, e := range byVersion {
			if e.path == path && e.size == size && e.modTime.Equal(modTime) {
				return e
			}
		}
	}
	return nil
}

// resolve finds the entry a reference names: an explicit name@version, or
// the highest version under a bare name.
func (r *Registry) resolve(ref string) (*entry, error) {
	name, version, hasVersion, err := ParseRef(ref)
	if err != nil {
		return nil, err
	}
	r.mu.RLock()
	byVersion := r.entries[name]
	r.mu.RUnlock()
	if len(byVersion) == 0 {
		return nil, fmt.Errorf("%w: %q in %s", ErrNotFound, ref, r.dir)
	}
	if hasVersion {
		e, ok := byVersion[version]
		if !ok {
			return nil, fmt.Errorf("%w: %q in %s", ErrNotFound, ref, r.dir)
		}
		return e, nil
	}
	var best *entry
	for _, e := range byVersion {
		if best == nil || e.profile.Version > best.profile.Version {
			best = e
		}
	}
	return best, nil
}

// Resolve returns the profile a reference names ("name" resolves to the
// highest version, "name@N" to that exact version). Unknown references
// return an error wrapping ErrNotFound.
func (r *Registry) Resolve(ref string) (*Profile, error) {
	e, err := r.resolve(ref)
	if err != nil {
		return nil, err
	}
	return e.profile, nil
}

// ResolveFramework resolves a reference and returns the ready-to-serve
// framework restored from it, cached per loaded profile.
func (r *Registry) ResolveFramework(ref string) (*core.Framework, *Profile, error) {
	e, err := r.resolve(ref)
	if err != nil {
		return nil, nil, err
	}
	fw, err := e.framework()
	if err != nil {
		return nil, nil, err
	}
	return fw, e.profile, nil
}

// List returns every served profile ordered by name, then version.
func (r *Registry) List() []*Profile {
	r.mu.RLock()
	var out []*Profile
	for _, byVersion := range r.entries {
		for _, e := range byVersion {
			out = append(out, e.profile)
		}
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Version < out[j].Version
	})
	return out
}

// Watch polls the directory every interval and reloads when the file set
// changes (names, sizes or mtimes), calling onReload — which may be nil —
// after each triggered reload with Reload's results. It blocks until ctx
// is done, so callers run it in a goroutine; a failed poll or reload
// leaves the current snapshot serving and retries next tick.
func (r *Registry) Watch(ctx context.Context, interval time.Duration, onReload func(int, error)) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			_, fingerprint, err := r.scanDir()
			if err != nil {
				continue
			}
			r.mu.RLock()
			changed := fingerprint != r.fingerprint
			r.mu.RUnlock()
			if !changed {
				continue
			}
			n, err := r.Reload()
			if onReload != nil {
				onReload(n, err)
			}
		}
	}
}
