package profile

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Registry serves the profiles of one directory, resolved by name or
// name@version references. It is safe for concurrent use: lookups take a
// read lock over an immutable snapshot, and Reload swaps a freshly
// scanned snapshot in atomically, so requests holding frameworks from
// the previous snapshot keep serving with them — a hot reload never
// disturbs in-flight work.
type Registry struct {
	dir string

	mu          sync.RWMutex
	entries     map[string]map[uint32]*entry // name → version → entry
	fingerprint string

	loads atomic.Int64 // successful scan passes (initial load counts)

	// source, when attached, backfills resolve misses and Watch-tick
	// syncs from a remote hub; fetchMu single-flights miss fetches.
	source       Source
	fetchTimeout time.Duration
	fetchMu      sync.Mutex
}

// entry pairs a loaded profile with its source file and a lazily built,
// cached framework, so per-request profile selection does not pay the
// restore cost on every request.
type entry struct {
	profile *Profile
	path    string
	modTime time.Time
	size    int64
	crc     uint32 // stored trailing CRC32 at load time

	once  sync.Once
	fw    *core.Framework
	fwErr error
}

func (e *entry) framework() (*core.Framework, error) {
	e.once.Do(func() { e.fw, e.fwErr = e.profile.Framework() })
	return e.fw, e.fwErr
}

// OpenRegistry scans dir for profile files (*.dnp) and returns the
// registry serving them. The directory must exist; an empty directory is
// a valid (empty) registry. Files that fail to decode are skipped and
// reported through the returned error while every readable profile still
// loads — a single corrupt artifact must not take down serving.
func OpenRegistry(dir string) (*Registry, error) {
	r := &Registry{dir: dir}
	if _, err := r.Reload(); err != nil {
		return r, err
	}
	return r, nil
}

// Dir returns the directory the registry scans.
func (r *Registry) Dir() string { return r.dir }

// Loads reports how many successful scan passes the registry has run —
// the profile-(re)load counter surfaced by the serving layer.
func (r *Registry) Loads() int64 { return r.loads.Load() }

// Reload rescans the directory and atomically swaps the served snapshot.
// It returns the number of profiles now served. Per-file decode failures
// and duplicate name@version pairs are joined into the error while the
// healthy remainder is still swapped in; the error is nil only when every
// file loaded cleanly. Entries whose file is unchanged (same path, size,
// mtime and stored CRC32) carry their cached framework over, so a reload
// is cheap and in-flight requests see either the old or the new snapshot,
// never a mix.
func (r *Registry) Reload() (int, error) {
	files, fingerprint, err := r.scanDir()
	if err != nil {
		return 0, err
	}
	return r.reloadScanned(files, fingerprint)
}

// reloadScanned swaps in a snapshot built from an already-completed
// directory scan. Watch feeds its change-detection scan straight in
// here, so a triggered reload costs one scan (and one CRC read per
// file), not two.
func (r *Registry) reloadScanned(files []scannedFile, fingerprint string) (int, error) {
	r.mu.RLock()
	prev := r.entries
	r.mu.RUnlock()

	next := make(map[string]map[uint32]*entry)
	var errs []error
	n := 0
	for _, f := range files {
		path := filepath.Join(r.dir, f.name)
		e := reuseEntry(prev, path, f)
		if e == nil {
			p, err := Read(path)
			if err != nil {
				errs = append(errs, err)
				continue
			}
			e = &entry{profile: p, path: path, modTime: f.modTime, size: f.size, crc: f.crc}
		}
		byVersion := next[e.profile.Name]
		if byVersion == nil {
			byVersion = make(map[uint32]*entry)
			next[e.profile.Name] = byVersion
		}
		if dup, ok := byVersion[e.profile.Version]; ok {
			errs = append(errs, fmt.Errorf("profile: %s and %s both declare %s",
				dup.path, path, e.profile.Ref()))
			continue
		}
		byVersion[e.profile.Version] = e
		n++
	}

	r.mu.Lock()
	r.entries = next
	r.fingerprint = fingerprint
	r.mu.Unlock()
	r.loads.Add(1)
	return n, errors.Join(errs...)
}

// scannedFile is one profile file as observed by a directory scan.
type scannedFile struct {
	name    string
	size    int64
	modTime time.Time
	crc     uint32
}

// scanDir lists the profile files of the directory in sorted order plus
// a fingerprint of their (name, size, mtime, stored CRC32) tuples for
// change polling. The CRC — the trailing four bytes every profile file
// carries — is what catches a same-size rewrite landing within the file
// system's mtime granularity, which size and mtime alone cannot see.
func (r *Registry) scanDir() ([]scannedFile, string, error) {
	dirents, err := os.ReadDir(r.dir)
	if err != nil {
		return nil, "", err
	}
	var files []scannedFile
	for _, de := range dirents {
		if de.IsDir() || !strings.HasSuffix(de.Name(), Ext) {
			continue
		}
		f := scannedFile{name: de.Name()}
		if info, err := de.Info(); err == nil {
			f.size, f.modTime = info.Size(), info.ModTime()
		}
		f.crc = storedCRC(filepath.Join(r.dir, de.Name()))
		files = append(files, f)
	}
	sort.Slice(files, func(i, j int) bool { return files[i].name < files[j].name })
	var fp strings.Builder
	for _, f := range files {
		fmt.Fprintf(&fp, "%s|%d|%d|%08x\n", f.name, f.size, f.modTime.UnixNano(), f.crc)
	}
	return files, fp.String(), nil
}

// storedCRC reads the trailing CRC32 of one profile file. Unreadable or
// too-short files report 0 — their real problem surfaces with a precise
// error when Reload decodes them.
func storedCRC(path string) uint32 {
	f, err := os.Open(path)
	if err != nil {
		return 0
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil || st.Size() < 4 {
		return 0
	}
	var buf [4]byte
	if _, err := f.ReadAt(buf[:], st.Size()-4); err != nil {
		return 0
	}
	return binary.BigEndian.Uint32(buf[:])
}

// reuseEntry returns the previous snapshot's entry for path when the file
// is unchanged (size, mtime and stored CRC32 all match), preserving its
// cached framework.
func reuseEntry(prev map[string]map[uint32]*entry, path string, f scannedFile) *entry {
	for _, byVersion := range prev {
		for _, e := range byVersion {
			if e.path == path && e.size == f.size && e.modTime.Equal(f.modTime) && e.crc == f.crc {
				return e
			}
		}
	}
	return nil
}

// resolve finds the entry a reference names, consulting the attached
// source (lazy pull) when the reference misses locally. A bare name that
// resolves to some local version never fetches — periodic sync is what
// brings newer versions in — so the hot path stays local.
func (r *Registry) resolve(ref string) (*entry, error) {
	e, err := r.resolveLocal(ref)
	if err != nil && errors.Is(err, ErrNotFound) && r.source != nil {
		name, version, _, perr := ParseRef(ref)
		if perr != nil {
			return nil, perr
		}
		return r.fetchMiss(ref, name, version)
	}
	return e, err
}

// resolveLocal finds the entry a reference names in the current local
// snapshot: an explicit name@version, or the highest version under a
// bare name.
func (r *Registry) resolveLocal(ref string) (*entry, error) {
	name, version, hasVersion, err := ParseRef(ref)
	if err != nil {
		return nil, err
	}
	r.mu.RLock()
	byVersion := r.entries[name]
	r.mu.RUnlock()
	if len(byVersion) == 0 {
		return nil, fmt.Errorf("%w: %q in %s", ErrNotFound, ref, r.dir)
	}
	if hasVersion {
		e, ok := byVersion[version]
		if !ok {
			return nil, fmt.Errorf("%w: %q in %s", ErrNotFound, ref, r.dir)
		}
		return e, nil
	}
	var best *entry
	for _, e := range byVersion {
		if best == nil || e.profile.Version > best.profile.Version {
			best = e
		}
	}
	return best, nil
}

// Resolve returns the profile a reference names ("name" resolves to the
// highest version, "name@N" to that exact version). Unknown references
// return an error wrapping ErrNotFound.
func (r *Registry) Resolve(ref string) (*Profile, error) {
	e, err := r.resolve(ref)
	if err != nil {
		return nil, err
	}
	return e.profile, nil
}

// ResolveFramework resolves a reference and returns the ready-to-serve
// framework restored from it, cached per loaded profile.
func (r *Registry) ResolveFramework(ref string) (*core.Framework, *Profile, error) {
	e, err := r.resolve(ref)
	if err != nil {
		return nil, nil, err
	}
	fw, err := e.framework()
	if err != nil {
		return nil, nil, err
	}
	return fw, e.profile, nil
}

// List returns every served profile ordered by name, then version.
func (r *Registry) List() []*Profile {
	r.mu.RLock()
	var out []*Profile
	for _, byVersion := range r.entries {
		for _, e := range byVersion {
			out = append(out, e.profile)
		}
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Version < out[j].Version
	})
	return out
}

// watchFailureThreshold is how many consecutive failed polls Watch
// tolerates silently before surfacing the problem through onReload. One
// failure is routinely transient (a directory mid-swap); a run of them
// means the watcher is effectively blind and the operator should know.
const watchFailureThreshold = 3

// Watch polls the directory every interval and reloads when the file set
// changes (names, sizes, mtimes or stored CRCs), calling onReload —
// which may be nil — after each triggered reload with Reload's results.
// It blocks until ctx is done, so callers run it in a goroutine; a
// failed poll or reload leaves the current snapshot serving and retries
// next tick. Scan failures are not silently retried forever: after
// watchFailureThreshold consecutive failures, onReload is called once
// per streak with a nil-count error describing the condition, so a
// persistently unreadable directory surfaces instead of the registry
// quietly serving stale profiles.
//
// With a source attached, every tick first syncs newly published
// profiles from it into the directory; the files it writes change the
// fingerprint and flow through the same reload path as local edits. A
// sync failure (origin down) leaves the materialized snapshot serving —
// graceful degradation — and surfaces through onReload only after
// watchFailureThreshold consecutive failures, like scan failures.
func (r *Registry) Watch(ctx context.Context, interval time.Duration, onReload func(int, error)) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	failures := 0
	syncFailures := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			if r.source != nil {
				if _, err := r.SyncSource(ctx); err != nil {
					syncFailures++
					if syncFailures == watchFailureThreshold && onReload != nil {
						onReload(0, fmt.Errorf("profile: hub sync into %s failing for %d consecutive polls: %w",
							r.dir, syncFailures, err))
					}
				} else {
					syncFailures = 0
				}
			}
			files, fingerprint, err := r.scanDir()
			if err != nil {
				failures++
				if failures == watchFailureThreshold && onReload != nil {
					onReload(0, fmt.Errorf("profile: watch of %s failing for %d consecutive polls: %w",
						r.dir, failures, err))
				}
				continue
			}
			failures = 0
			r.mu.RLock()
			changed := fingerprint != r.fingerprint
			r.mu.RUnlock()
			if !changed {
				continue
			}
			// Reuse the scan that detected the change instead of
			// rescanning: one directory walk and one CRC read per file
			// per triggered reload.
			n, err := r.reloadScanned(files, fingerprint)
			if onReload != nil {
				onReload(n, err)
			}
		}
	}
}
