package profile

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomicLeavesNoTempDebris(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.dnp")
	if err := WriteFileAtomic(path, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "payload" {
		t.Fatalf("read back %q, %v", got, err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode().Perm() != 0o644 {
		t.Fatalf("published mode %v, want 0644", st.Mode().Perm())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp debris left behind: %v", entries)
	}
	// Overwrite goes through the same temp+rename path.
	if err := WriteFileAtomic(path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v2" {
		t.Fatalf("overwrite read back %q", got)
	}
}

func TestWriteFileAtomicMissingDir(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no-such-dir", "out.dnp")
	if err := WriteFileAtomic(path, []byte("x")); err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
}

func TestReadChecksumErrorNamesFile(t *testing.T) {
	dir := t.TempDir()
	p := syntheticProfile(false)
	path := filepath.Join(dir, p.FileName())
	if err := p.Write(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Read(path)
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("want ErrChecksum, got %v", err)
	}
	if !strings.Contains(err.Error(), path) {
		t.Fatalf("checksum error should name the damaged file, got %v", err)
	}
}
