package profile

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// writeVersions persists the synthetic fixture under several
// name/version identities into dir.
func writeVersions(tb testing.TB, dir string, refs ...Meta) {
	tb.Helper()
	for _, m := range refs {
		p := syntheticProfile(false)
		p.Name, p.Version = m.Name, m.Version
		// Distinguish versions observably: bump the DC step.
		p.Luma[0] = uint16(1 + m.Version)
		if err := p.Write(filepath.Join(dir, p.FileName())); err != nil {
			tb.Fatal(err)
		}
	}
}

func TestRegistryResolve(t *testing.T) {
	dir := t.TempDir()
	writeVersions(t, dir,
		Meta{Name: "alpha", Version: 1}, Meta{Name: "alpha", Version: 3},
		Meta{Name: "alpha", Version: 2}, Meta{Name: "beta", Version: 1})
	reg, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(reg.List()); got != 4 {
		t.Fatalf("serving %d profiles, want 4", got)
	}
	if p, err := reg.Resolve("alpha"); err != nil || p.Version != 3 {
		t.Fatalf("bare name resolved to %+v, %v (want highest version 3)", p, err)
	}
	if p, err := reg.Resolve("alpha@2"); err != nil || p.Version != 2 {
		t.Fatalf("alpha@2 resolved to %+v, %v", p, err)
	}
	if _, err := reg.Resolve("alpha@9"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("alpha@9: %v, want ErrNotFound", err)
	}
	if _, err := reg.Resolve("gamma"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("gamma: %v, want ErrNotFound", err)
	}
	if _, err := reg.Resolve("Not A Name"); err == nil || errors.Is(err, ErrNotFound) {
		t.Fatalf("malformed ref: %v, want a parse error", err)
	}
	// List is ordered by name then version.
	var order []string
	for _, p := range reg.List() {
		order = append(order, p.Ref())
	}
	want := "alpha@1,alpha@2,alpha@3,beta@1"
	if got := strings.Join(order, ","); got != want {
		t.Fatalf("List order %s, want %s", got, want)
	}
}

func TestRegistryFrameworkCachedAndDistinct(t *testing.T) {
	dir := t.TempDir()
	writeVersions(t, dir, Meta{Name: "alpha", Version: 1}, Meta{Name: "alpha", Version: 2})
	reg, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	fw1, p1, err := reg.ResolveFramework("alpha@1")
	if err != nil {
		t.Fatal(err)
	}
	fw2, _, err := reg.ResolveFramework("alpha@2")
	if err != nil {
		t.Fatal(err)
	}
	if fw1.LumaTable[0] != 2 || fw2.LumaTable[0] != 3 {
		t.Fatalf("versions served wrong tables: %d, %d", fw1.LumaTable[0], fw2.LumaTable[0])
	}
	again, p1again, err := reg.ResolveFramework("alpha@1")
	if err != nil {
		t.Fatal(err)
	}
	if again != fw1 || p1again != p1 {
		t.Fatal("repeated resolution rebuilt the framework instead of serving the cache")
	}
}

func TestRegistryReload(t *testing.T) {
	dir := t.TempDir()
	writeVersions(t, dir, Meta{Name: "alpha", Version: 1})
	reg, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Loads() != 1 {
		t.Fatalf("loads %d after open, want 1", reg.Loads())
	}
	fwOld, _, err := reg.ResolveFramework("alpha")
	if err != nil {
		t.Fatal(err)
	}

	writeVersions(t, dir, Meta{Name: "alpha", Version: 2})
	n, err := reg.Reload()
	if err != nil || n != 2 {
		t.Fatalf("reload: %d profiles, %v", n, err)
	}
	if reg.Loads() != 2 {
		t.Fatalf("loads %d after reload, want 2", reg.Loads())
	}
	if p, err := reg.Resolve("alpha"); err != nil || p.Version != 2 {
		t.Fatalf("post-reload alpha resolved to %+v, %v", p, err)
	}
	// The unchanged file's cached framework must survive the reload.
	fwSame, _, err := reg.ResolveFramework("alpha@1")
	if err != nil {
		t.Fatal(err)
	}
	if fwSame != fwOld {
		t.Fatal("reload dropped the cached framework of an unchanged file")
	}
}

func TestRegistryToleratesCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	writeVersions(t, dir, Meta{Name: "alpha", Version: 1})
	if err := os.WriteFile(filepath.Join(dir, "junk.dnp"), []byte("not a profile"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg, err := OpenRegistry(dir)
	if err == nil {
		t.Fatal("corrupt file went unreported")
	}
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("error %v, want ErrBadMagic", err)
	}
	// The healthy profile still serves.
	if _, rerr := reg.Resolve("alpha"); rerr != nil {
		t.Fatalf("healthy profile lost: %v", rerr)
	}
}

func TestRegistryRejectsDuplicateRefs(t *testing.T) {
	dir := t.TempDir()
	writeVersions(t, dir, Meta{Name: "alpha", Version: 1})
	// Same name@version under a different file name.
	p := syntheticProfile(false)
	p.Name, p.Version = "alpha", 1
	if err := p.Write(filepath.Join(dir, "copy.dnp")); err != nil {
		t.Fatal(err)
	}
	reg, err := OpenRegistry(dir)
	if err == nil || !strings.Contains(err.Error(), "both declare alpha@1") {
		t.Fatalf("duplicate declaration not reported: %v", err)
	}
	if _, rerr := reg.Resolve("alpha@1"); rerr != nil {
		t.Fatalf("first copy should still serve: %v", rerr)
	}
}

// TestRegistryReloadDetectsSameSizeSameMtimeRewrite pins the CRC leg of
// entry reuse: a rewrite that changes only table bytes keeps the file
// size identical, and forcing the old mtime back simulates a rewrite
// landing within the file system's timestamp granularity. Size+mtime
// matching alone would wrongly carry the stale cached profile over.
func TestRegistryReloadDetectsSameSizeSameMtimeRewrite(t *testing.T) {
	dir := t.TempDir()
	writeVersions(t, dir, Meta{Name: "alpha", Version: 1})
	path := filepath.Join(dir, "alpha@1.dnp")
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	before, _, err := reg.ResolveFramework("alpha@1")
	if err != nil {
		t.Fatal(err)
	}

	// Same name, version and structure — only a table step differs, so
	// the encoded file is byte-for-byte the same length.
	p := syntheticProfile(false)
	p.Name, p.Version = "alpha", 1
	p.Luma[0] = 77
	if err := p.Write(path); err != nil {
		t.Fatal(err)
	}
	if st2, err := os.Stat(path); err != nil || st2.Size() != st.Size() {
		t.Fatalf("fixture must rewrite at identical size (%d vs %d, %v)", st2.Size(), st.Size(), err)
	}
	if err := os.Chtimes(path, st.ModTime(), st.ModTime()); err != nil {
		t.Fatal(err)
	}

	if _, err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	after, _, err := reg.ResolveFramework("alpha@1")
	if err != nil {
		t.Fatal(err)
	}
	if after == before {
		t.Fatal("reload reused the stale entry for a same-size, same-mtime rewrite")
	}
	if after.LumaTable[0] != 77 {
		t.Fatalf("reload serves luma DC step %d, want the rewritten 77", after.LumaTable[0])
	}
}

// TestRegistryWatchDetectsCRCOnlyChange drives the same rewrite through
// the polling watcher, whose fingerprint must fold the stored CRC in.
func TestRegistryWatchDetectsCRCOnlyChange(t *testing.T) {
	dir := t.TempDir()
	writeVersions(t, dir, Meta{Name: "alpha", Version: 1})
	path := filepath.Join(dir, "alpha@1.dnp")
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	reloaded := make(chan int, 8)
	go reg.Watch(ctx, 5*time.Millisecond, func(n int, err error) {
		if err != nil {
			t.Errorf("watch reload: %v", err)
		}
		reloaded <- n
	})

	p := syntheticProfile(false)
	p.Name, p.Version = "alpha", 1
	p.Luma[0] = 55
	if err := p.Write(path); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, st.ModTime(), st.ModTime()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-reloaded:
	case <-time.After(10 * time.Second):
		t.Fatal("watcher never noticed a rewrite that changed only the content CRC")
	}
	if fw, _, err := reg.ResolveFramework("alpha@1"); err != nil || fw.LumaTable[0] != 55 {
		t.Fatalf("post-watch table step %d, %v (want 55)", fw.LumaTable[0], err)
	}
}

// TestRegistryWatchSurfacesScanFailures pins the failure path: a
// directory that stops being scannable must be reported through onReload
// after a few consecutive failed polls instead of being retried in
// silence forever.
func TestRegistryWatchSurfacesScanFailures(t *testing.T) {
	dir := t.TempDir()
	writeVersions(t, dir, Meta{Name: "alpha", Version: 1})
	reg, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errs := make(chan error, 8)
	go reg.Watch(ctx, 5*time.Millisecond, func(n int, err error) {
		if err != nil {
			errs <- err
		}
	})

	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errs:
		if !strings.Contains(err.Error(), "consecutive polls") {
			t.Fatalf("surfaced error %v does not describe the failing watch", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("persistent scan failures were never surfaced through onReload")
	}
	// The pre-failure snapshot must keep serving.
	if _, err := reg.Resolve("alpha@1"); err != nil {
		t.Fatalf("failure surfacing must not drop the serving snapshot: %v", err)
	}
}

func TestRegistryWatch(t *testing.T) {
	dir := t.TempDir()
	writeVersions(t, dir, Meta{Name: "alpha", Version: 1})
	reg, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	reloaded := make(chan int, 8)
	go reg.Watch(ctx, 5*time.Millisecond, func(n int, err error) {
		if err != nil {
			t.Errorf("watch reload: %v", err)
		}
		reloaded <- n
	})

	writeVersions(t, dir, Meta{Name: "alpha", Version: 2})
	select {
	case n := <-reloaded:
		if n != 2 {
			t.Fatalf("watch reloaded %d profiles, want 2", n)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("watcher never noticed the new profile")
	}
	if p, err := reg.Resolve("alpha"); err != nil || p.Version != 2 {
		t.Fatalf("post-watch alpha resolved to %+v, %v", p, err)
	}
}
