package profile

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeSource serves profiles from memory and counts fetches, standing in
// for a hub client.
type fakeSource struct {
	mu       sync.Mutex
	profiles map[SourceRef][]byte // version 0 keys are not allowed
	fetches  atomic.Int64
	fail     error // when set, every call fails with this
}

func newFakeSource() *fakeSource {
	return &fakeSource{profiles: make(map[SourceRef][]byte)}
}

func (f *fakeSource) add(tb testing.TB, name string, version uint32, mutate func(*Profile)) []byte {
	tb.Helper()
	p := syntheticProfile(false)
	p.Name, p.Version = name, version
	p.Luma[0] = uint16(1 + version)
	if mutate != nil {
		mutate(p)
	}
	data, err := p.Encode()
	if err != nil {
		tb.Fatal(err)
	}
	f.mu.Lock()
	f.profiles[SourceRef{name, version}] = data
	f.mu.Unlock()
	return data
}

func (f *fakeSource) Fetch(ctx context.Context, name string, version uint32) ([]byte, error) {
	f.fetches.Add(1)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail != nil {
		return nil, f.fail
	}
	if version == 0 {
		for ref := range f.profiles {
			if ref.Name == name && ref.Version > version {
				version = ref.Version
			}
		}
	}
	data, ok := f.profiles[SourceRef{name, version}]
	if !ok {
		return nil, fmt.Errorf("fake source: no %s@%d", name, version)
	}
	return data, nil
}

func (f *fakeSource) List(ctx context.Context) ([]SourceRef, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail != nil {
		return nil, f.fail
	}
	refs := make([]SourceRef, 0, len(f.profiles))
	for ref := range f.profiles {
		refs = append(refs, ref)
	}
	return refs, nil
}

func TestRegistryLazyFetchOnMiss(t *testing.T) {
	dir := t.TempDir()
	reg, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	src := newFakeSource()
	src.add(t, "remote", 2, nil)
	reg.AttachSource(src, time.Second)

	// Explicit version miss → fetched, materialized, resolvable.
	p, err := reg.Resolve("remote@2")
	if err != nil {
		t.Fatalf("lazy fetch: %v", err)
	}
	if p.Ref() != "remote@2" {
		t.Fatalf("resolved %s, want remote@2", p.Ref())
	}
	if _, err := os.Stat(filepath.Join(dir, "remote@2.dnp")); err != nil {
		t.Fatalf("fetched profile not materialized: %v", err)
	}
	// Second resolve is local: no new fetch.
	before := src.fetches.Load()
	if _, err := reg.Resolve("remote@2"); err != nil {
		t.Fatal(err)
	}
	if got := src.fetches.Load(); got != before {
		t.Fatalf("local re-resolve hit the source (%d → %d fetches)", before, got)
	}
	// Bare name resolves locally too now.
	if _, err := reg.Resolve("remote"); err != nil {
		t.Fatal(err)
	}
	if got := src.fetches.Load(); got != before {
		t.Fatalf("bare-name resolve with a local version hit the source")
	}
}

func TestRegistryLazyFetchBareNameLatest(t *testing.T) {
	dir := t.TempDir()
	reg, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	src := newFakeSource()
	src.add(t, "edge", 1, nil)
	src.add(t, "edge", 3, nil)
	reg.AttachSource(src, time.Second)
	p, err := reg.Resolve("edge")
	if err != nil {
		t.Fatal(err)
	}
	if p.Ref() != "edge@3" {
		t.Fatalf("bare-name lazy fetch resolved %s, want edge@3 (latest)", p.Ref())
	}
	fw, rp, err := reg.ResolveFramework("edge@3")
	if err != nil || fw == nil || rp.Version != 3 {
		t.Fatalf("ResolveFramework after lazy fetch: %v", err)
	}
}

func TestRegistryLazyFetchRejectsMisnamedBlob(t *testing.T) {
	dir := t.TempDir()
	reg, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	src := newFakeSource()
	// The source lies: asked for "wanted", it returns a blob declaring a
	// different identity.
	lie := src.add(t, "other", 1, nil)
	src.mu.Lock()
	src.profiles[SourceRef{"wanted", 1}] = lie
	src.mu.Unlock()
	reg.AttachSource(src, time.Second)
	if _, err := reg.Resolve("wanted@1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("misnamed blob resolved: err=%v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "wanted@1.dnp")); !os.IsNotExist(err) {
		t.Fatal("misnamed blob was materialized")
	}
}

func TestRegistryResolveWithoutSourceStillMisses(t *testing.T) {
	dir := t.TempDir()
	reg, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Resolve("absent@1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestRegistrySourceFailureWrapsNotFound(t *testing.T) {
	dir := t.TempDir()
	reg, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	src := newFakeSource()
	src.fail = errors.New("origin down")
	reg.AttachSource(src, time.Second)
	_, err = reg.Resolve("gone@1")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound wrap, got %v", err)
	}
	if err == nil || !strings.Contains(err.Error(), "origin down") {
		t.Fatalf("error should carry the source failure, got %v", err)
	}
}

func TestSyncSourcePullsMissingWithoutReload(t *testing.T) {
	dir := t.TempDir()
	writeVersions(t, dir, Meta{Name: "local", Version: 1})
	reg, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	src := newFakeSource()
	src.add(t, "local", 1, nil) // already present: not re-fetched
	src.add(t, "new", 1, nil)
	reg.AttachSource(src, time.Second)

	added, err := reg.SyncSource(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 {
		t.Fatalf("SyncSource added %d, want 1", added)
	}
	if _, err := os.Stat(filepath.Join(dir, "new@1.dnp")); err != nil {
		t.Fatalf("synced profile not on disk: %v", err)
	}
	// Sync does not publish a snapshot by itself; a reload does.
	if _, err := reg.resolveLocal("new@1"); err == nil {
		t.Fatal("SyncSource should not reload the snapshot")
	}
	if _, err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Resolve("new@1"); err != nil {
		t.Fatalf("after reload: %v", err)
	}
}

func TestWatchSyncsSourceAndPublishes(t *testing.T) {
	dir := t.TempDir()
	writeVersions(t, dir, Meta{Name: "tenant", Version: 1})
	reg, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	src := newFakeSource()
	reg.AttachSource(src, time.Second)

	reloaded := make(chan int, 16)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go reg.Watch(ctx, 5*time.Millisecond, func(n int, err error) {
		if err == nil {
			reloaded <- n
		}
	})
	// Publish a new version at the source mid-watch; the next tick must
	// sync it down and the fingerprint change must drive a reload.
	src.add(t, "tenant", 2, nil)
	deadline := time.After(5 * time.Second)
	for {
		select {
		case <-reloaded:
			if p, err := reg.Resolve("tenant"); err == nil && p.Version == 2 {
				return
			}
		case <-deadline:
			t.Fatal("watch never synced and published tenant@2")
		}
	}
}

func TestLazyFetchSingleFlight(t *testing.T) {
	dir := t.TempDir()
	reg, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	src := newFakeSource()
	src.add(t, "hot", 1, nil)
	reg.AttachSource(src, time.Second)

	const callers = 16
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = reg.Resolve("hot@1")
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	// The mutex collapses the stampede: one fetch (the map write is
	// atomic under the fake's own mutex, so an exact count is reliable).
	if got := src.fetches.Load(); got != 1 {
		t.Fatalf("stampede made %d fetches, want 1", got)
	}
}
