// Package profile persists calibrated DeepN-JPEG state as named,
// versioned on-disk artifacts. The paper's contribution — a quantization
// table derived from dataset frequency statistics — is expensive to
// produce (a full statistics pass over the training set) and worth
// managing like any other model artifact: per dataset, per task,
// versioned, verifiable. A profile captures everything calibration
// produced: the luma/chroma quantization tables, the piece-wise linear
// mapping parameters, and the per-band coefficient statistics they were
// derived from, so a restored codec is indistinguishable from the one
// that was saved (encoded streams are byte-identical) and the statistics
// remain available for audits and re-fits.
//
// # On-disk format
//
// A profile file is a single self-describing binary blob (extension
// .dnp), all integers and IEEE-754 bit patterns big-endian, in this
// exact order:
//
//	magic "DNJP" | format uint16 | flags uint16
//	name (uint16 len + bytes) | version uint32 | created int64
//	comment (uint16 len + bytes) | transform uint8 | sampled uint32
//	luma table (64×uint16) | chroma table (64×uint16)
//	PLM params (10×float64 bits)
//	luma stats (int64 blocks + 4×64 float64 bits)
//	[chroma stats, when flag bit 0 is set]
//	crc32 (IEEE, over every preceding byte)
//
// The encoding is canonical: a Profile always serializes to the same
// bytes, and Decode accepts exactly what Encode emits — no trailing
// data, no unknown flags, bit-exact floats — so decode→encode round
// trips are byte-identical and the CRC pins the whole artifact.
package profile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/dct"
	"repro/internal/freqstat"
	"repro/internal/plm"
	"repro/internal/qtable"
)

const (
	// Magic opens every profile file.
	Magic = "DNJP"
	// FormatVersion is the on-disk format revision this package writes.
	FormatVersion = 1
	// Ext is the conventional file extension registries scan for.
	Ext = ".dnp"

	// MaxNameLen and MaxCommentLen bound the variable-length fields so a
	// hostile header cannot demand unbounded allocation.
	MaxNameLen    = 64
	MaxCommentLen = 4096

	flagChromaCalibrated = 1 << 0
	knownFlags           = flagChromaCalibrated
)

// Sentinel errors, matched with errors.Is by callers that need to
// distinguish "not a profile" from "a damaged profile".
var (
	// ErrBadMagic marks data that is not a profile file at all.
	ErrBadMagic = errors.New("profile: bad magic (not a profile file)")
	// ErrFormatVersion marks a profile written by a newer format revision.
	ErrFormatVersion = errors.New("profile: unsupported format version")
	// ErrChecksum marks a structurally plausible profile whose CRC does
	// not cover its bytes — truncation or corruption in storage.
	ErrChecksum = errors.New("profile: checksum mismatch")
	// ErrCorrupt marks every other structural or semantic defect:
	// truncated fields, illegal names, invalid tables, non-finite
	// statistics, trailing bytes.
	ErrCorrupt = errors.New("profile: corrupt")
	// ErrNotFound marks a registry lookup that matched no profile.
	ErrNotFound = errors.New("profile: not found")
)

// Profile is one persisted calibration artifact.
type Profile struct {
	// Name identifies the calibration (typically the dataset or task);
	// see ValidateName for the accepted charset.
	Name string
	// Version distinguishes successive calibrations under one name;
	// registries resolve a bare name to the highest version. Must be ≥ 1.
	Version uint32
	// CreatedUnix is the creation time in Unix seconds, carried verbatim
	// (it participates in the canonical bytes but never in comparisons).
	CreatedUnix int64
	// Comment is free-form provenance (source dataset, trainer, ticket).
	Comment string
	// Transform is the block-transform engine the profile's codec runs.
	Transform dct.Transform
	// SampledCount is how many images the calibration pass consumed.
	SampledCount int
	// Luma and Chroma are the derived quantization tables.
	Luma, Chroma qtable.Table
	// ChromaCalibrated records whether Chroma was calibrated from chroma
	// statistics (true, ChromaStats present) or is the Annex-K fallback.
	ChromaCalibrated bool
	// Params is the fitted piece-wise linear mapping.
	Params plm.Params
	// LumaStats (always) and ChromaStats (when ChromaCalibrated) are the
	// per-band coefficient statistics the tables were derived from.
	LumaStats   *freqstat.Stats
	ChromaStats *freqstat.Stats
}

// ValidateName checks a profile name: 1..MaxNameLen characters, lower-case
// letters, digits, '.', '_' and '-', starting with a letter or digit. The
// charset keeps names safe as file-name stems and unambiguous inside
// name@version references.
func ValidateName(name string) error {
	if len(name) == 0 || len(name) > MaxNameLen {
		return fmt.Errorf("profile: name must be 1..%d characters, got %d", MaxNameLen, len(name))
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
		case i > 0 && (c == '.' || c == '_' || c == '-'):
		default:
			return fmt.Errorf("profile: name %q: character %q at %d (want [a-z0-9][a-z0-9._-]*)", name, c, i)
		}
	}
	return nil
}

// Ref renders the profile's canonical name@version reference.
func (p *Profile) Ref() string {
	return fmt.Sprintf("%s@%d", p.Name, p.Version)
}

// FileName is the conventional file name a registry stores the profile
// under: <name>@<version>.dnp.
func (p *Profile) FileName() string { return p.Ref() + Ext }

// ParseRef splits a "name" or "name@version" reference. hasVersion
// reports whether an explicit version was given.
func ParseRef(ref string) (name string, version uint32, hasVersion bool, err error) {
	name, verStr, hasVersion := strings.Cut(ref, "@")
	if err := ValidateName(name); err != nil {
		return "", 0, false, err
	}
	if !hasVersion {
		return name, 0, false, nil
	}
	v, perr := strconv.ParseUint(verStr, 10, 32)
	if perr != nil || v == 0 {
		return "", 0, false, fmt.Errorf("profile: bad version in reference %q", ref)
	}
	return name, uint32(v), true, nil
}

// Validate checks every invariant the on-disk format guarantees. Encode
// refuses profiles that fail it; Decode rejects byte streams whose
// decoded fields would.
func (p *Profile) Validate() error {
	if err := ValidateName(p.Name); err != nil {
		return err
	}
	if p.Version == 0 {
		return fmt.Errorf("profile: version must be ≥ 1")
	}
	if len(p.Comment) > MaxCommentLen {
		return fmt.Errorf("profile: comment exceeds %d bytes", MaxCommentLen)
	}
	if !p.Transform.Valid() {
		return fmt.Errorf("profile: unknown transform engine %d", p.Transform)
	}
	// Bound by int32 (not uint32) so the count round-trips identically on
	// 32-bit platforms, where int cannot hold the upper uint32 range.
	if p.SampledCount < 0 || p.SampledCount > math.MaxInt32 {
		return fmt.Errorf("profile: sampled count %d out of range", p.SampledCount)
	}
	if err := p.Luma.Validate(); err != nil {
		return fmt.Errorf("profile: luma table: %w", err)
	}
	if err := p.Chroma.Validate(); err != nil {
		return fmt.Errorf("profile: chroma table: %w", err)
	}
	for _, v := range [...]float64{p.Params.A, p.Params.B, p.Params.C, p.Params.K1,
		p.Params.K2, p.Params.K3, p.Params.T1, p.Params.T2, p.Params.QMin, p.Params.QMax} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("profile: non-finite PLM parameter %g", v)
		}
	}
	if p.LumaStats == nil {
		return fmt.Errorf("profile: luma statistics missing")
	}
	if err := validateStats(p.LumaStats); err != nil {
		return fmt.Errorf("profile: luma statistics: %w", err)
	}
	if p.ChromaCalibrated {
		if p.ChromaStats == nil {
			return fmt.Errorf("profile: chroma marked calibrated but statistics missing")
		}
		if err := validateStats(p.ChromaStats); err != nil {
			return fmt.Errorf("profile: chroma statistics: %w", err)
		}
	} else if p.ChromaStats != nil {
		return fmt.Errorf("profile: chroma statistics present but not marked calibrated")
	}
	return nil
}

func validateStats(s *freqstat.Stats) error {
	if s.Blocks < 0 {
		return fmt.Errorf("negative block count %d", s.Blocks)
	}
	for _, arr := range [...]*[64]float64{&s.Mean, &s.Std, &s.Min, &s.Max} {
		for _, v := range arr {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("non-finite value %g", v)
			}
		}
	}
	return nil
}

// Encode serializes the profile into its canonical bytes.
func (p *Profile) Encode() ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	size := len(Magic) + 2 + 2 + // magic, format, flags
		2 + len(p.Name) + 4 + 8 + 2 + len(p.Comment) + 1 + 4 +
		2*qtable.BinarySize + 10*8 + freqstat.StatsBinarySize + 4
	if p.ChromaCalibrated {
		size += freqstat.StatsBinarySize
	}
	b := make([]byte, 0, size)
	b = append(b, Magic...)
	b = binary.BigEndian.AppendUint16(b, FormatVersion)
	var flags uint16
	if p.ChromaCalibrated {
		flags |= flagChromaCalibrated
	}
	b = binary.BigEndian.AppendUint16(b, flags)
	b = binary.BigEndian.AppendUint16(b, uint16(len(p.Name)))
	b = append(b, p.Name...)
	b = binary.BigEndian.AppendUint32(b, p.Version)
	b = binary.BigEndian.AppendUint64(b, uint64(p.CreatedUnix))
	b = binary.BigEndian.AppendUint16(b, uint16(len(p.Comment)))
	b = append(b, p.Comment...)
	b = append(b, byte(p.Transform))
	b = binary.BigEndian.AppendUint32(b, uint32(p.SampledCount))
	b = p.Luma.AppendBinary(b)
	b = p.Chroma.AppendBinary(b)
	for _, v := range [...]float64{p.Params.A, p.Params.B, p.Params.C, p.Params.K1,
		p.Params.K2, p.Params.K3, p.Params.T1, p.Params.T2, p.Params.QMin, p.Params.QMax} {
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(v))
	}
	b = p.LumaStats.AppendBinary(b)
	if p.ChromaCalibrated {
		b = p.ChromaStats.AppendBinary(b)
	}
	b = binary.BigEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	return b, nil
}

// Decode parses canonical profile bytes, rejecting anything Encode would
// not have produced. The returned profile re-encodes to exactly data.
func Decode(data []byte) (*Profile, error) {
	r := &reader{b: data}
	if string(r.take(len(Magic))) != Magic {
		return nil, ErrBadMagic
	}
	if format := r.uint16(); r.err == nil && format != FormatVersion {
		return nil, fmt.Errorf("%w: %d (this build reads %d)", ErrFormatVersion, format, FormatVersion)
	}
	flags := r.uint16()
	if r.err == nil && flags&^knownFlags != 0 {
		return nil, fmt.Errorf("%w: unknown flag bits %#x", ErrCorrupt, flags&^knownFlags)
	}
	p := &Profile{ChromaCalibrated: flags&flagChromaCalibrated != 0}
	p.Name = string(r.varBytes(MaxNameLen))
	p.Version = r.uint32()
	p.CreatedUnix = int64(r.uint64())
	p.Comment = string(r.varBytes(MaxCommentLen))
	p.Transform = dct.Transform(r.byte())
	p.SampledCount = int(r.uint32())
	p.Luma = r.table()
	p.Chroma = r.table()
	for _, dst := range [...]*float64{&p.Params.A, &p.Params.B, &p.Params.C, &p.Params.K1,
		&p.Params.K2, &p.Params.K3, &p.Params.T1, &p.Params.T2, &p.Params.QMin, &p.Params.QMax} {
		*dst = math.Float64frombits(r.uint64())
	}
	p.LumaStats = r.stats()
	if p.ChromaCalibrated {
		p.ChromaStats = r.stats()
	}
	payload := len(data) - len(r.b) // bytes consumed so far = CRC coverage
	sum := r.uint32()
	if r.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, r.err)
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(r.b))
	}
	if want := crc32.ChecksumIEEE(data[:payload]); sum != want {
		return nil, fmt.Errorf("%w: stored %08x, computed %08x", ErrChecksum, sum, want)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return p, nil
}

// Read loads and decodes a profile file.
func Read(path string) (*Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// Write encodes the profile and writes it atomically (temp file + fsync
// + rename in the destination directory), so a registry scanning the
// directory never observes a half-written profile and a crash mid-write
// can never tear one.
func (p *Profile) Write(path string) error {
	data, err := p.Encode()
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, data)
}

// WriteFileAtomic writes data to path crash-safely: a temp file in the
// same directory (rename across file systems is not atomic), fsynced
// before the rename so a power loss cannot publish a file whose bytes
// never reached disk, then renamed over path. Every profile artifact —
// .dnp blobs, .sig sidecars, hub-materialized pulls — goes through this
// one helper.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".dnp-tmp-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	if werr == nil {
		// CreateTemp opens 0600; published profiles are world-readable
		// artifacts like any other codec output.
		werr = tmp.Chmod(0o644)
	}
	if werr == nil {
		werr = tmp.Sync()
	}
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Meta carries the identity fields a caller chooses when persisting a
// calibrated framework.
type Meta struct {
	Name        string
	Version     uint32
	Comment     string
	CreatedUnix int64
}

// FromFramework captures a calibrated framework as a profile.
func FromFramework(fw *core.Framework, m Meta) (*Profile, error) {
	p := &Profile{
		Name:             m.Name,
		Version:          m.Version,
		CreatedUnix:      m.CreatedUnix,
		Comment:          m.Comment,
		Transform:        fw.Transform,
		SampledCount:     fw.SampledCount,
		Luma:             fw.LumaTable,
		Chroma:           fw.ChromaTable,
		ChromaCalibrated: fw.ChromaStats != nil,
		Params:           fw.Params,
		LumaStats:        fw.Stats,
		ChromaStats:      fw.ChromaStats,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Framework rebuilds the codec state the profile was saved from. The
// restored framework encodes byte-identical streams to the original.
func (p *Profile) Framework() (*core.Framework, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return core.Restore(p.Params, p.LumaStats, p.ChromaStats, p.Luma, p.Chroma, p.SampledCount, p.Transform)
}

// reader consumes the profile byte stream with sticky error state, so
// the decode path reads linearly and checks once.
type reader struct {
	b   []byte
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.fail("truncated: need %d bytes, have %d", n, len(r.b))
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *reader) byte() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) uint16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *reader) uint32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *reader) uint64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// varBytes reads a uint16-length-prefixed field bounded by max.
func (r *reader) varBytes(max int) []byte {
	n := int(r.uint16())
	if r.err != nil {
		return nil
	}
	if n > max {
		r.fail("field length %d exceeds limit %d", n, max)
		return nil
	}
	return r.take(n)
}

func (r *reader) table() qtable.Table {
	b := r.take(qtable.BinarySize)
	if b == nil {
		return qtable.Table{}
	}
	t, err := qtable.TableFromBinary(b)
	if err != nil {
		r.fail("%v", err)
	}
	return t
}

func (r *reader) stats() *freqstat.Stats {
	b := r.take(freqstat.StatsBinarySize)
	if b == nil {
		return nil
	}
	s, err := freqstat.StatsFromBinary(b)
	if err != nil {
		r.fail("%v", err)
		return nil
	}
	return s
}
