package profile

import (
	"crypto/ed25519"
	"crypto/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testKeyPair(tb testing.TB) (ed25519.PublicKey, ed25519.PrivateKey) {
	tb.Helper()
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		tb.Fatal(err)
	}
	return pub, priv
}

func TestSignatureRoundTrip(t *testing.T) {
	pub, priv := testKeyPair(t)
	p := syntheticProfile(false)
	data := encodeOK(t, p)
	rec := Sign(priv, p.Ref(), data)
	if rec.KeyID != KeyID(pub) {
		t.Fatalf("key id %s, want %s", rec.KeyID, KeyID(pub))
	}
	if err := rec.Verify(pub, p.Ref(), data); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if err := rec.VerifyDigest(pub, p.Ref(), BlobSHA256(data)); err != nil {
		t.Fatalf("verify digest: %v", err)
	}
}

func TestSignatureRejectsTamperAndWrongKey(t *testing.T) {
	pub, priv := testKeyPair(t)
	otherPub, _ := testKeyPair(t)
	p := syntheticProfile(false)
	data := encodeOK(t, p)
	rec := Sign(priv, p.Ref(), data)

	tampered := append([]byte(nil), data...)
	tampered[40] ^= 1
	if err := rec.Verify(pub, p.Ref(), tampered); err == nil {
		t.Fatal("tampered bytes verified")
	}
	if err := rec.Verify(pub, "other@9", data); err == nil {
		t.Fatal("wrong ref verified")
	}
	if err := rec.Verify(otherPub, p.Ref(), data); err == nil {
		t.Fatal("wrong key verified")
	}
}

func TestSignatureFileRoundTrip(t *testing.T) {
	pub, priv := testKeyPair(t)
	p := syntheticProfile(false)
	data := encodeOK(t, p)
	rec := Sign(priv, p.Ref(), data)

	path := filepath.Join(t.TempDir(), p.FileName()+SigExt)
	if err := rec.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSignature(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Verify(pub, p.Ref(), data); err != nil {
		t.Fatalf("verify after file round trip: %v", err)
	}
}

func TestReadSignatureRejectsMalformed(t *testing.T) {
	dir := t.TempDir()
	for name, body := range map[string]string{
		"not-json":  "garbage",
		"bad-ref":   `{"ref":"no-version","sha256":"` + strings.Repeat("a", 64) + `","sig":"` + strings.Repeat("A", 86) + `=="}`,
		"short-sha": `{"ref":"x@1","sha256":"abcd","sig":"` + strings.Repeat("A", 86) + `=="}`,
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadSignature(path); err == nil {
			t.Fatalf("%s: malformed signature file parsed", name)
		}
	}
}
