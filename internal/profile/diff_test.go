package profile

import (
	"strings"
	"testing"
)

func TestCompareIdentical(t *testing.T) {
	a := syntheticProfile(true)
	b := syntheticProfile(true)
	// Identity metadata is outside the comparison.
	b.Name, b.Version, b.CreatedUnix, b.Comment = "renamed", 9, 1, "different provenance"
	d := Compare(a, b)
	if !d.Identical() {
		t.Fatalf("identical calibrations diff non-empty: %q", d.String())
	}
	if d.String() != "" {
		t.Fatalf("identical diff renders %q, want empty", d.String())
	}
}

func TestCompareTableDelta(t *testing.T) {
	a := syntheticProfile(false)
	b := syntheticProfile(false)
	b.Luma[0] = a.Luma[0] + 4
	b.Chroma[63] = a.Chroma[63] - 2
	d := Compare(a, b)
	if d.Identical() {
		t.Fatal("table change not detected")
	}
	if len(d.Luma) != 1 || d.Luma[0].Band != 0 || d.Luma[0].B != a.Luma[0]+4 {
		t.Fatalf("luma deltas = %+v", d.Luma)
	}
	if len(d.Chroma) != 1 || d.Chroma[0].Band != 63 {
		t.Fatalf("chroma deltas = %+v", d.Chroma)
	}
	out := d.String()
	for _, want := range []string{"luma table: 1 of 64 bands differ", "band[0,0]", "(+4)", "band[7,7]", "(-2)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered diff missing %q:\n%s", want, out)
		}
	}
}

func TestCompareStatsAndFields(t *testing.T) {
	a := syntheticProfile(true)
	b := syntheticProfile(true)
	b.SampledCount = a.SampledCount * 2
	b.Params.K1 += 0.5
	b.LumaStats.Std[10] += 3.25
	b.LumaStats.Blocks += 100
	d := Compare(a, b)
	if d.Identical() {
		t.Fatal("stat/field changes not detected")
	}
	if len(d.Fields) != 2 {
		t.Fatalf("fields = %v, want sampled + PLM k1", d.Fields)
	}
	var sawStd, sawBlocks bool
	for _, sd := range d.LumaStats {
		switch sd.Field {
		case "std":
			sawStd = sawStd || sd.Band == 10
		case "blocks":
			sawBlocks = true
		}
	}
	if !sawStd || !sawBlocks {
		t.Fatalf("luma stat deltas = %+v", d.LumaStats)
	}
	out := d.String()
	for _, want := range []string{"sampled:", "PLM k1:", "blocks", "std differs in 1 band(s)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered diff missing %q:\n%s", want, out)
		}
	}
}

func TestCompareChromaCalibrationPresence(t *testing.T) {
	a := syntheticProfile(true)
	b := syntheticProfile(false)
	d := Compare(a, b)
	if d.Identical() {
		t.Fatal("chroma-calibration presence change not detected")
	}
	var found bool
	for _, f := range d.Fields {
		found = found || strings.Contains(f, "chroma calibrated")
	}
	if !found {
		t.Fatalf("fields = %v, want chroma-calibrated change", d.Fields)
	}
}
