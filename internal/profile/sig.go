package profile

// Signature records extend a profile's CRC32 integrity check with
// Ed25519 authenticity: the CRC catches storage corruption, the
// signature proves the artifact was published by whoever holds the
// signing key. A record is a small JSON sidecar (<file>.dnp.sig) next to
// the profile it covers, and the same record travels inline in a profile
// hub's index, so "verify before load" works identically for a local
// directory and a remote origin.

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
)

// SigExt is the conventional sidecar suffix: <name>@<version>.dnp.sig.
const SigExt = ".sig"

// sigMagic versions the byte string signatures cover, so a future format
// change cannot make old signatures validate new messages.
const sigMagic = "deepn-profile-sig-v1"

// SignatureRecord binds one profile blob (by SHA-256) and its
// name@version reference to an Ed25519 signature.
type SignatureRecord struct {
	// Ref is the canonical name@version reference of the signed profile.
	Ref string `json:"ref"`
	// SHA256 is the lower-case hex SHA-256 of the profile's bytes.
	SHA256 string `json:"sha256"`
	// KeyID identifies the signing key (see KeyID); it routes key lookup
	// and shows up in error messages, but carries no authority itself.
	KeyID string `json:"key_id"`
	// Sig is the Ed25519 signature over SignatureMessage(Ref, SHA256).
	Sig []byte `json:"sig"`
}

// KeyID renders the short stable identifier of a public key: the first
// eight bytes of its SHA-256, in hex.
func KeyID(pub ed25519.PublicKey) string {
	sum := sha256.Sum256(pub)
	return hex.EncodeToString(sum[:8])
}

// BlobSHA256 is the lower-case hex SHA-256 of a profile's bytes — the
// content address hubs and signature records key on.
func BlobSHA256(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// SignatureMessage is the exact byte string a signature record signs:
// a versioned header, the reference, and the blob hash. Signing a digest
// of the blob (rather than the blob) keeps records verifiable from an
// index alone, before any blob bytes are fetched.
func SignatureMessage(ref, shaHex string) []byte {
	return []byte(sigMagic + "\nref " + ref + "\nsha256 " + shaHex + "\n")
}

// Sign produces the signature record of one profile blob.
func Sign(priv ed25519.PrivateKey, ref string, data []byte) *SignatureRecord {
	shaHex := BlobSHA256(data)
	return &SignatureRecord{
		Ref:    ref,
		SHA256: shaHex,
		KeyID:  KeyID(priv.Public().(ed25519.PublicKey)),
		Sig:    ed25519.Sign(priv, SignatureMessage(ref, shaHex)),
	}
}

// Verify checks the record against a trusted public key and the actual
// blob bytes: the hash must match the data, the reference must match the
// record, and the signature must verify. A nil error means "this exact
// blob, under this exact name, was signed by the holder of pub".
func (r *SignatureRecord) Verify(pub ed25519.PublicKey, ref string, data []byte) error {
	if r.Ref != ref {
		return fmt.Errorf("profile: signature record is for %q, not %q", r.Ref, ref)
	}
	if got := BlobSHA256(data); got != r.SHA256 {
		return fmt.Errorf("profile: signature record covers sha256 %s, blob is %s", r.SHA256, got)
	}
	return r.VerifyDigest(pub, ref, r.SHA256)
}

// VerifyDigest checks the signature against an expected reference and
// blob hash without the blob itself — the form a hub client uses to
// vet an index entry before fetching its blob.
func (r *SignatureRecord) VerifyDigest(pub ed25519.PublicKey, ref, shaHex string) error {
	if r.Ref != ref {
		return fmt.Errorf("profile: signature record is for %q, not %q", r.Ref, ref)
	}
	if r.SHA256 != shaHex {
		return fmt.Errorf("profile: signature record covers sha256 %s, want %s", r.SHA256, shaHex)
	}
	if len(r.Sig) != ed25519.SignatureSize {
		return fmt.Errorf("profile: signature is %d bytes, want %d", len(r.Sig), ed25519.SignatureSize)
	}
	if !ed25519.Verify(pub, SignatureMessage(r.Ref, r.SHA256), r.Sig) {
		return fmt.Errorf("profile: signature of %s does not verify against key %s (record claims key %s)",
			r.Ref, KeyID(pub), r.KeyID)
	}
	return nil
}

// WriteFile persists the record as a JSON sidecar, atomically like every
// other artifact write.
func (r *SignatureRecord) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, append(data, '\n'))
}

// ReadSignature loads and structurally validates one sidecar file.
func ReadSignature(path string) (*SignatureRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r SignatureRecord
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if _, _, hasVersion, err := ParseRef(r.Ref); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	} else if !hasVersion {
		return nil, fmt.Errorf("%s: ref %q is not a canonical name@version reference", path, r.Ref)
	}
	if len(r.SHA256) != sha256.Size*2 {
		return nil, fmt.Errorf("%s: sha256 field is %d chars, want %d", path, len(r.SHA256), sha256.Size*2)
	}
	if _, err := hex.DecodeString(r.SHA256); err != nil {
		return nil, fmt.Errorf("%s: sha256 field is not hex: %v", path, err)
	}
	if len(r.Sig) != ed25519.SignatureSize {
		return nil, fmt.Errorf("%s: signature is %d bytes, want %d", path, len(r.Sig), ed25519.SignatureSize)
	}
	return &r, nil
}
