package profile

import (
	"path/filepath"
	"testing"
)

func BenchmarkProfileEncode(b *testing.B) {
	p := syntheticProfile(true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProfileDecode(b *testing.B) {
	data := encodeOK(b, syntheticProfile(true))
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegistryResolve measures the per-request cost of profile
// selection — the hot path every ?profile= request pays. The framework
// cache must make this a map lookup, not a restore.
func BenchmarkRegistryResolve(b *testing.B) {
	dir := b.TempDir()
	p := syntheticProfile(false)
	if err := p.Write(filepath.Join(dir, p.FileName())); err != nil {
		b.Fatal(err)
	}
	reg, err := OpenRegistry(dir)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := reg.ResolveFramework("synthetic"); err != nil {
			b.Fatal(err)
		}
	}
}
