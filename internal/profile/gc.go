package profile

// Retention for plain profile directories: the same max-bytes /
// max-versions-per-name policy the hub cache applies, usable against any
// directory a registry serves (`deepn-jpeg profiles gc`). Published
// versions are immutable, so "garbage" means old versions, never live
// bytes: the newest version of every name always survives.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// GCPolicy bounds a profile store.
type GCPolicy struct {
	// MaxBytes caps the total size of retained profile files; 0 means
	// unbounded. Eviction is LRU (oldest modification time first).
	MaxBytes int64
	// MaxVersionsPerName caps how many versions of one name survive
	// (highest version numbers win); 0 means unbounded.
	MaxVersionsPerName int
}

// GCResult reports what a collection pass did.
type GCResult struct {
	// Removed lists the deleted profile files (not their sidecars).
	Removed []string
	// RetainedBytes is the byte total of surviving profile files.
	RetainedBytes int64
	// OverBudget is true when MaxBytes could not be met without deleting
	// a name's newest version — the pass stops rather than remove it.
	OverBudget bool
}

// gcFile is one profile file under retention consideration.
type gcFile struct {
	path    string
	name    string
	version uint32
	size    int64
	modTime time.Time
}

// GCDir applies a retention policy to a directory of .dnp files. Files
// that fail to decode are left untouched (a GC must never destroy the
// evidence of a corruption bug); each removed profile also drops its
// .sig sidecar. A dry run lists what would be removed without deleting.
func GCDir(dir string, policy GCPolicy, dryRun bool) (*GCResult, error) {
	dirents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []gcFile
	for _, de := range dirents {
		if de.IsDir() || filepath.Ext(de.Name()) != Ext {
			continue
		}
		path := filepath.Join(dir, de.Name())
		p, err := Read(path)
		if err != nil {
			continue // damaged or foreign file: not GC's to judge
		}
		f := gcFile{path: path, name: p.Name, version: p.Version}
		if info, err := de.Info(); err == nil {
			f.size, f.modTime = info.Size(), info.ModTime()
		}
		files = append(files, f)
	}

	res := &GCResult{}
	drop := make(map[string]bool)

	// Pass 1: version cap. Per name, keep the MaxVersionsPerName highest
	// versions.
	if policy.MaxVersionsPerName > 0 {
		byName := make(map[string][]gcFile)
		for _, f := range files {
			byName[f.name] = append(byName[f.name], f)
		}
		for _, group := range byName {
			sort.Slice(group, func(i, j int) bool { return group[i].version > group[j].version })
			for _, f := range group[min(policy.MaxVersionsPerName, len(group)):] {
				drop[f.path] = true
			}
		}
	}

	// Pass 2: byte cap over the survivors, LRU by modification time —
	// but a name's newest version is never evicted for space (removing
	// it would turn a retention pass into an outage for that tenant).
	if policy.MaxBytes > 0 {
		newest := make(map[string]uint32)
		var total int64
		var survivors []gcFile
		for _, f := range files {
			if drop[f.path] {
				continue
			}
			survivors = append(survivors, f)
			total += f.size
			if f.version > newest[f.name] {
				newest[f.name] = f.version
			}
		}
		sort.Slice(survivors, func(i, j int) bool { return survivors[i].modTime.Before(survivors[j].modTime) })
		for _, f := range survivors {
			if total <= policy.MaxBytes {
				break
			}
			if f.version == newest[f.name] {
				continue
			}
			drop[f.path] = true
			total -= f.size
		}
		res.OverBudget = total > policy.MaxBytes
	}

	for _, f := range files {
		if !drop[f.path] {
			res.RetainedBytes += f.size
			continue
		}
		res.Removed = append(res.Removed, f.path)
		if dryRun {
			continue
		}
		if err := os.Remove(f.path); err != nil {
			return res, fmt.Errorf("profile: gc: %w", err)
		}
		os.Remove(f.path + SigExt) // best-effort sidecar cleanup
	}
	sort.Strings(res.Removed)
	return res, nil
}
