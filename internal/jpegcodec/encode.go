package jpegcodec

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/bitio"
	"repro/internal/imgutil"
	"repro/internal/qtable"
)

// EncodeRGB writes img as a baseline JFIF stream. A nil opts uses defaults
// (4:2:0, Annex-K tables, standard Huffman).
func EncodeRGB(w io.Writer, img *imgutil.RGB, opts *Options) error {
	if img.W <= 0 || img.H <= 0 {
		return fmt.Errorf("jpegcodec: empty image %dx%d", img.W, img.H)
	}
	if img.W > 0xFFFF || img.H > 0xFFFF {
		return fmt.Errorf("jpegcodec: image %dx%d exceeds 65535 limit", img.W, img.H)
	}
	var o Options
	if opts != nil {
		o = *opts
	}
	o = o.withDefaults()
	if err := o.LumaTable.Validate(); err != nil {
		return err
	}
	if err := o.ChromaTable.Validate(); err != nil {
		return err
	}

	s := getEncScratch()
	defer putEncScratch(s)
	s.planes.FromRGB(img)
	// The luma sampling factors double as the chroma box-downsample
	// ratios: 4:2:0 → 2×2 luma and 2×2 chroma reduction, 4:2:2 → 2×1,
	// 4:4:0 → 1×2, 4:1:1 → 4×1, 4:4:4 → no reduction.
	h, v, ok := o.Subsampling.factors()
	if !ok {
		return fmt.Errorf("jpegcodec: subsampling %v is not an encode option", o.Subsampling)
	}
	s.comps[0] = component{id: 1, h: h, v: v, tq: 0, td: 0, ta: 0, w: img.W, hgt: img.H, pix: s.planes.Y}
	cw, ch := img.W, img.H
	cb, cr := s.planes.Cb, s.planes.Cr
	if h > 1 || v > 1 {
		s.cb, cw, ch = imgutil.DownsampleInto(s.cb, s.planes.Cb, img.W, img.H, h, v)
		s.cr, _, _ = imgutil.DownsampleInto(s.cr, s.planes.Cr, img.W, img.H, h, v)
		cb, cr = s.cb, s.cr
	}
	s.comps[1] = component{id: 2, h: 1, v: 1, tq: 1, td: 1, ta: 1, w: cw, hgt: ch, pix: cb}
	s.comps[2] = component{id: 3, h: 1, v: 1, tq: 1, td: 1, ta: 1, w: cw, hgt: ch, pix: cr}
	return encode(w, img.W, img.H, s.components(3), &o, s)
}

// EncodeGray writes img as a single-component baseline JFIF stream. Only
// the luma quantization table is used.
func EncodeGray(w io.Writer, img *imgutil.Gray, opts *Options) error {
	if img.W <= 0 || img.H <= 0 {
		return fmt.Errorf("jpegcodec: empty image %dx%d", img.W, img.H)
	}
	if img.W > 0xFFFF || img.H > 0xFFFF {
		return fmt.Errorf("jpegcodec: image %dx%d exceeds 65535 limit", img.W, img.H)
	}
	var o Options
	if opts != nil {
		o = *opts
	}
	o = o.withDefaults()
	if err := o.LumaTable.Validate(); err != nil {
		return err
	}
	s := getEncScratch()
	defer putEncScratch(s)
	s.comps[0] = component{id: 1, h: 1, v: 1, tq: 0, td: 0, ta: 0, w: img.W, hgt: img.H, pix: img.Pix}
	return encode(w, img.W, img.H, s.components(1), &o, s)
}

// encode runs the shared encoding pipeline: coefficient computation,
// optional Huffman optimization, then marker and scan emission. scratch
// donates reusable coefficient grids and may be nil.
func encode(w io.Writer, width, height int, comps []*component, o *Options, scratch *encScratch) error {
	if !o.Transform.Valid() {
		return fmt.Errorf("jpegcodec: unknown transform engine %d", o.Transform)
	}
	if err := validateRestartInterval(o.RestartInterval); err != nil {
		return err
	}
	maxH, maxV := 1, 1
	for _, c := range comps {
		maxH = max(maxH, c.h)
		maxV = max(maxV, c.v)
	}
	mcusX := (width + 8*maxH - 1) / (8 * maxH)
	mcusY := (height + 8*maxV - 1) / (8 * maxV)

	// Resolve the fused forward divisors: the caller's cache when it
	// matches this exact table set and engine (one build per Framework),
	// otherwise derived into the pooled scratch — never per block.
	var fwdLuma, fwdChroma *qtable.FwdScaled
	if o.Scaled.matches(&o.LumaTable, &o.ChromaTable, o.Transform) {
		fwdLuma, fwdChroma = &o.Scaled.fwdLuma, &o.Scaled.fwdChroma
	} else {
		var localFwd [2]qtable.FwdScaled
		fwd := &localFwd
		if scratch != nil {
			fwd = &scratch.fwd
		}
		o.LumaTable.FwdScaledInto(&fwd[0], o.Transform)
		o.ChromaTable.FwdScaledInto(&fwd[1], o.Transform)
		fwdLuma, fwdChroma = &fwd[0], &fwd[1]
	}

	// Forward-transform every block in the MCU-padded grid, one whole
	// block row at a time: fused gather into the flat plane, one batch
	// transform, one fused quantize pass into the coefficient grid.
	var plane []float64
	if scratch != nil {
		plane = scratch.plane
	}
	for ci, c := range comps {
		tbl := fwdLuma
		if c.tq == 1 {
			tbl = fwdChroma
		}
		c.blocksX = mcusX * c.h
		c.blocksY = mcusY * c.v
		if scratch != nil {
			c.coefs = growCoefs(scratch.coefs[ci], c.blocksX*c.blocksY)
			scratch.coefs[ci] = c.coefs
		} else {
			c.coefs = make([][64]int32, c.blocksX*c.blocksY)
		}
		plane = growFloats(plane, c.blocksX*64)
		transformComponent(c, tbl, o.ZeroMask, o.Transform, plane)
	}
	if scratch != nil {
		scratch.plane = plane
	}
	return encodeTail(w, width, height, comps, mcusX, mcusY, o)
}

// encodeTail chooses Huffman tables and emits the complete stream for
// already-transformed components; Requantize shares it with encode.
func encodeTail(w io.Writer, width, height int, comps []*component, mcusX, mcusY int, o *Options) error {
	specs := [4]*HuffmanSpec{&StdDCLuminance, &StdACLuminance, &StdDCChrominance, &StdACChrominance}
	var enc [4]*encTable
	if o.OptimizeHuffman {
		opt, err := optimizeHuffman(comps, mcusX, mcusY, o.RestartInterval, o.ShardWorkers)
		if err != nil {
			return err
		}
		specs = opt
		for i, s := range specs {
			if s == nil {
				continue
			}
			t, err := buildEncTable(s)
			if err != nil {
				return err
			}
			enc[i] = t
		}
	} else {
		std, err := stdEncoderTables()
		if err != nil {
			return err
		}
		enc = std
	}
	if len(comps) == 1 {
		specs[2], specs[3] = nil, nil // no chroma tables needed
		enc[2], enc[3] = nil, nil
	}

	bw := bufwPool.Get().(*bufio.Writer)
	bw.Reset(w)
	defer func() {
		bw.Reset(io.Discard) // drop the caller's writer before pooling
		bufwPool.Put(bw)
	}()
	if err := writeMarkers(bw, width, height, comps, specs, o); err != nil {
		return err
	}
	if nw := shardWorkersFor(o.ShardWorkers, o.RestartInterval, mcusX*mcusY); nw > 1 {
		if err := writeScanSharded(bw, comps, enc, mcusX, mcusY, o.RestartInterval, nw); err != nil {
			return err
		}
	} else if err := writeScan(bw, comps, enc, mcusX, mcusY, o.RestartInterval); err != nil {
		return err
	}
	if err := writeMarker(bw, mEOI); err != nil {
		return err
	}
	return bw.Flush()
}

// tableIDs maps a component to its (DC, AC) indices in the 4-entry table
// arrays: 0/1 for luma, 2/3 for chroma.
func tableIDs(c *component) (dc, ac int) {
	if c.td == 0 {
		return 0, 1
	}
	return 2, 3
}

// countMCUSymbols tallies the symbols the mcu-th MCU (scan order) would
// emit, advancing the caller's DC predictors — the statistics unit shared
// by the sequential and sharded gather paths.
func countMCUSymbols(comps []*component, mcusX, mcu int, prevDC *[4]int32, freqs *[4][256]int64) {
	my, mx := mcu/mcusX, mcu%mcusX
	for ci, c := range comps {
		dcID, acID := tableIDs(c)
		for vy := 0; vy < c.v; vy++ {
			for vx := 0; vx < c.h; vx++ {
				coefs := &c.coefs[(my*c.v+vy)*c.blocksX+mx*c.h+vx]
				countBlockSymbols(coefs, prevDC[ci], &freqs[dcID], &freqs[acID])
				prevDC[ci] = coefs[0]
			}
		}
	}
}

// optimizeHuffman gathers symbol statistics over the exact emission
// sequence and builds per-image tables. With a restart interval and a
// multi-worker budget the gather fans out per restart segment; symbol
// counts are per-segment sums, so the merged statistics are exact.
func optimizeHuffman(comps []*component, mcusX, mcusY, restart, workers int) ([4]*HuffmanSpec, error) {
	var freqs [4][256]int64
	total := mcusX * mcusY
	if nw := shardWorkersFor(workers, restart, total); nw > 1 {
		gatherStatsSharded(comps, mcusX, total, restart, nw, &freqs)
	} else {
		var prevDC [4]int32 // indexed by component position in comps
		for mcu := 0; mcu < total; mcu++ {
			if restart > 0 && mcu > 0 && mcu%restart == 0 {
				prevDC = [4]int32{}
			}
			countMCUSymbols(comps, mcusX, mcu, &prevDC, &freqs)
		}
	}

	var out [4]*HuffmanSpec
	for i := range freqs {
		if i >= 2 && len(comps) == 1 {
			out[i] = nil
			continue
		}
		spec, err := BuildOptimizedSpec(&freqs[i])
		if err != nil {
			return out, fmt.Errorf("jpegcodec: optimizing table %d: %w", i, err)
		}
		out[i] = spec
	}
	return out, nil
}

// countBlockSymbols tallies the DC size category and AC run/size symbols
// one block would emit.
func countBlockSymbols(coefs *[64]int32, prevDC int32, dcFreq, acFreq *[256]int64) {
	diff := coefs[0] - prevDC
	dcFreq[bitCategory(diff)]++
	run := 0
	for z := 1; z < 64; z++ {
		v := coefs[qtable.ZigZagOrder[z]]
		if v == 0 {
			run++
			continue
		}
		for run >= 16 {
			acFreq[0xF0]++ // ZRL
			run -= 16
		}
		acFreq[uint8(run<<4)|uint8(bitCategory(v))]++
		run = 0
	}
	if run > 0 {
		acFreq[0x00]++ // EOB
	}
}

// writeScan emits the entropy-coded segment.
func writeScan(w *bufio.Writer, comps []*component, enc [4]*encTable, mcusX, mcusY, restart int) error {
	bw := bitwPool.Get().(*bitio.Writer)
	bw.Reset(w)
	defer func() {
		bw.Reset(io.Discard) // drop the caller's writer before pooling
		bitwPool.Put(bw)
	}()
	var prevDC [4]int32 // indexed by component position in comps
	rstIndex := 0
	total := mcusX * mcusY
	for mcu := 0; mcu < total; mcu++ {
		if restart > 0 && mcu > 0 && mcu%restart == 0 {
			if err := bw.Flush(); err != nil {
				return err
			}
			if err := writeMarker(w, byte(mRST0+rstIndex)); err != nil {
				return err
			}
			rstIndex = (rstIndex + 1) % 8
			prevDC = [4]int32{}
		}
		if err := encodeMCU(bw, comps, enc, mcusX, mcu, &prevDC); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// encodeMCU entropy-codes the mcu-th MCU (scan order), advancing the
// caller's DC predictors — the emission unit shared by the sequential
// and sharded scan writers.
func encodeMCU(bw *bitio.Writer, comps []*component, enc [4]*encTable, mcusX, mcu int, prevDC *[4]int32) error {
	my, mx := mcu/mcusX, mcu%mcusX
	for ci, c := range comps {
		dcID, acID := tableIDs(c)
		for vy := 0; vy < c.v; vy++ {
			for vx := 0; vx < c.h; vx++ {
				coefs := &c.coefs[(my*c.v+vy)*c.blocksX+mx*c.h+vx]
				if err := encodeBlock(bw, coefs, prevDC[ci], enc[dcID], enc[acID]); err != nil {
					return err
				}
				prevDC[ci] = coefs[0]
			}
		}
	}
	return nil
}

// encodeBlock entropy-codes one block of natural-order coefficients.
func encodeBlock(bw *bitio.Writer, coefs *[64]int32, prevDC int32, dcTab, acTab *encTable) error {
	// DC: DPCM against the previous block of the same component.
	diff := coefs[0] - prevDC
	s := bitCategory(diff)
	if err := dcTab.emit(bw, uint8(s)); err != nil {
		return err
	}
	if s > 0 {
		v := diff
		if v < 0 {
			v += (1 << s) - 1 // one's-complement representation of negatives
		}
		if err := bw.WriteBits(uint32(v), uint(s)); err != nil {
			return err
		}
	}
	// AC: run-length of zeros + size category, in zig-zag order.
	run := 0
	for z := 1; z < 64; z++ {
		v := coefs[qtable.ZigZagOrder[z]]
		if v == 0 {
			run++
			continue
		}
		for run >= 16 {
			if err := acTab.emit(bw, 0xF0); err != nil { // ZRL
				return err
			}
			run -= 16
		}
		s := bitCategory(v)
		if err := acTab.emit(bw, uint8(run<<4)|uint8(s)); err != nil {
			return err
		}
		bits := v
		if bits < 0 {
			bits += (1 << s) - 1
		}
		if err := bw.WriteBits(uint32(bits), uint(s)); err != nil {
			return err
		}
		run = 0
	}
	if run > 0 {
		if err := acTab.emit(bw, 0x00); err != nil { // EOB
			return err
		}
	}
	return nil
}

// --- marker emission ---

func writeMarker(w *bufio.Writer, code byte) error {
	_, err := w.Write([]byte{0xFF, code})
	return err
}

func writeSegment(w *bufio.Writer, code byte, payload []byte) error {
	if err := writeMarker(w, code); err != nil {
		return err
	}
	n := len(payload) + 2
	if _, err := w.Write([]byte{byte(n >> 8), byte(n)}); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func writeMarkers(w *bufio.Writer, width, height int, comps []*component, specs [4]*HuffmanSpec, o *Options) error {
	if err := writeMarker(w, mSOI); err != nil {
		return err
	}
	// APP0 JFIF v1.1, 1:1 aspect, no thumbnail — suppressed when the
	// caller's metadata already carries a JFIF APP0 (the requantize
	// passthrough case), so the output holds exactly one.
	hasJFIF := false
	for _, seg := range o.Metadata {
		if isJFIFAPP0(seg) {
			hasJFIF = true
			break
		}
	}
	if !hasJFIF {
		app0 := []byte{'J', 'F', 'I', 'F', 0, 1, 1, 0, 0, 1, 0, 1, 0, 0}
		if err := writeSegment(w, mAPP0, app0); err != nil {
			return err
		}
	}
	for _, seg := range o.Metadata {
		if (seg.Marker < mAPP0 || seg.Marker > mAPP0+0x0F) && seg.Marker != mCOM {
			return fmt.Errorf("jpegcodec: metadata marker %#02x is not APPn or COM", seg.Marker)
		}
		if len(seg.Payload) > maxSegmentPayload {
			return fmt.Errorf("jpegcodec: metadata segment %#02x payload %d exceeds %d bytes",
				seg.Marker, len(seg.Payload), maxSegmentPayload)
		}
		if err := writeSegment(w, seg.Marker, seg.Payload); err != nil {
			return err
		}
	}
	// DQT: luma always; chroma only for color images.
	if err := writeDQT(w, 0, o.LumaTable); err != nil {
		return err
	}
	if len(comps) > 1 {
		if err := writeDQT(w, 1, o.ChromaTable); err != nil {
			return err
		}
	}
	// SOF0.
	sof := []byte{8, byte(height >> 8), byte(height), byte(width >> 8), byte(width), byte(len(comps))}
	for _, c := range comps {
		sof = append(sof, c.id, byte(c.h<<4|c.v), byte(c.tq))
	}
	if err := writeSegment(w, mSOF0, sof); err != nil {
		return err
	}
	// DHT: one segment per table, classes 0 (DC) and 1 (AC).
	classes := [4]byte{0x00, 0x10, 0x01, 0x11} // Tc<<4 | Th
	for i, spec := range specs {
		if spec == nil {
			continue
		}
		payload := []byte{classes[i]}
		payload = append(payload, spec.Counts[:]...)
		payload = append(payload, spec.Values...)
		if err := writeSegment(w, mDHT, payload); err != nil {
			return err
		}
	}
	if o.RestartInterval > 0 {
		ri := o.RestartInterval
		if err := writeSegment(w, mDRI, []byte{byte(ri >> 8), byte(ri)}); err != nil {
			return err
		}
	}
	// SOS.
	sos := []byte{byte(len(comps))}
	for _, c := range comps {
		sos = append(sos, c.id, byte(c.td<<4|c.ta))
	}
	sos = append(sos, 0, 63, 0) // Ss, Se, AhAl: full spectral, no approx
	return writeSegment(w, mSOS, sos)
}

func writeDQT(w *bufio.Writer, id int, t qtable.Table) error {
	zz := t.InZigZag()
	payload := make([]byte, 0, 65)
	payload = append(payload, byte(id)) // Pq=0 (8-bit), Tq=id
	for _, q := range zz {
		payload = append(payload, byte(q))
	}
	return writeSegment(w, mDQT, payload)
}
