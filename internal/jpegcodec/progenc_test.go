package jpegcodec

// Progressive JPEG *encoder*, test-only. The decoder under test needs
// progressive streams and no tool in the build environment produces
// them, so the fixtures are generated here: a scan-script encoder that
// re-emits a baseline decode's coefficient planes as an SOF2 stream.
// The emission logic mirrors the reference encoder (libjpeg's
// jcphuff.c): DC scans arithmetic-shift by the point transform and run
// DPCM; AC scans divide magnitudes by 2^Al toward zero, accumulate EOB
// runs across blocks, and refinement scans buffer correction bits so
// they land after the next emitted symbol. Each scan gets its own
// Huffman table optimized over a counting pass — the Annex K tables
// have no EOBn symbols, so optimized tables are not optional here.
//
// encodeNonInterleaved lives here too: a baseline (SOF0) writer that
// emits one single-component scan per component, the layout the old
// single-scan decoder rejected outright.

import (
	"bufio"
	"bytes"
	"testing"

	"repro/internal/bitio"
	"repro/internal/qtable"
)

// progScan describes one scan of a progressive scan script: which
// component indices it carries, its spectral band, and its successive
// approximation bits.
type progScan struct {
	comps          []int
	ss, se, ah, al int
}

// progSink receives the symbol/bit stream of one scan. The counting
// pass and the emission pass run the identical encoder over the same
// coefficients, so the optimized table built from the counts covers
// exactly the symbols later emitted.
type progSink interface {
	sym(s uint8) error
	bits(v uint32, n uint) error
}

type countSink struct{ freq *[256]int64 }

func (c countSink) sym(s uint8) error           { c.freq[s]++; return nil }
func (c countSink) bits(v uint32, n uint) error { return nil }

type emitSink struct {
	bw  *bitio.Writer
	tab *encTable
}

func (e emitSink) sym(s uint8) error           { return e.tab.emit(e.bw, s) }
func (e emitSink) bits(v uint32, n uint) error { return e.bw.WriteBits(v, n) }

// progBlock is one block of a scan walk with its component's position
// in the scan (the DC predictor index).
type progBlock struct {
	coefs *[64]int32
	ci    int
}

// progMCUs builds the scan's MCU sequence in decoder walk order:
// interleaved scans tile the frame MCU grid with h×v blocks per
// component, single-component scans take one block per MCU over the
// component's unpadded block grid.
func progMCUs(d *Decoded, comps []int) [][]progBlock {
	if len(comps) > 1 {
		// Every plane's grid is mcus×factor, so any member recovers the
		// frame MCU dimensions.
		i0 := comps[0]
		mcusX := d.blocksX[i0] / d.planes[i0].hs
		mcusY := d.blocksY[i0] / d.planes[i0].vs
		mcus := make([][]progBlock, 0, mcusX*mcusY)
		for my := 0; my < mcusY; my++ {
			for mx := 0; mx < mcusX; mx++ {
				var blk []progBlock
				for ci, i := range comps {
					h, v := d.planes[i].hs, d.planes[i].vs
					for vy := 0; vy < v; vy++ {
						for vx := 0; vx < h; vx++ {
							blk = append(blk, progBlock{&d.coefs[i][(my*v+vy)*d.blocksX[i]+mx*h+vx], ci})
						}
					}
				}
				mcus = append(mcus, blk)
			}
		}
		return mcus
	}
	i := comps[0]
	sbw := (d.planes[i].w + 7) / 8
	sbh := (d.planes[i].h + 7) / 8
	mcus := make([][]progBlock, 0, sbw*sbh)
	for by := 0; by < sbh; by++ {
		for bx := 0; bx < sbw; bx++ {
			mcus = append(mcus, []progBlock{{&d.coefs[i][by*d.blocksX[i]+bx], 0}})
		}
	}
	return mcus
}

// progScanEnc encodes one scan's entropy data into a sink. eobRun and
// corrBits carry the pending end-of-band run and the correction bits
// accumulated inside it (emitted when the run flushes).
type progScanEnc struct {
	sink     progSink
	eobRun   int32
	corrBits []uint8
}

func (e *progScanEnc) emitBuffered(bits []uint8) error {
	for _, b := range bits {
		if err := e.sink.bits(uint32(b), 1); err != nil {
			return err
		}
	}
	return nil
}

// flushEOBRun emits the pending EOBn symbol — category n = floor(log2
// run) plus the low n bits of the run — followed by the correction bits
// of the blocks inside the run.
func (e *progScanEnc) flushEOBRun() error {
	if e.eobRun > 0 {
		n := 0
		for v := e.eobRun; v > 1; v >>= 1 {
			n++
		}
		if err := e.sink.sym(uint8(n << 4)); err != nil {
			return err
		}
		if n > 0 {
			if err := e.sink.bits(uint32(e.eobRun), uint(n)); err != nil {
				return err
			}
		}
		e.eobRun = 0
		if err := e.emitBuffered(e.corrBits); err != nil {
			return err
		}
		e.corrBits = e.corrBits[:0]
	}
	return nil
}

// dcFirst encodes one block of a DC first scan: DPCM over the
// arithmetically shifted values, baseline category coding.
func (e *progScanEnc) dcFirst(coefs *[64]int32, al int, pred *int32) error {
	v := coefs[0] >> uint(al)
	diff := v - *pred
	*pred = v
	s := bitCategory(diff)
	if err := e.sink.sym(uint8(s)); err != nil {
		return err
	}
	if s == 0 {
		return nil
	}
	if diff < 0 {
		diff += (1 << uint(s)) - 1
	}
	return e.sink.bits(uint32(diff), uint(s))
}

// dcRefine emits the Al-th magnitude bit of coefficient 0; the
// arithmetic shift makes the bit correct for both signs, matching the
// decoder's OR.
func (e *progScanEnc) dcRefine(coefs *[64]int32, al int) error {
	return e.sink.bits(uint32((coefs[0]>>uint(al))&1), 1)
}

// acFirst encodes one block of an AC first scan: run/size symbols over
// the band with the point transform applied as a magnitude division
// (T.81 G.1.2.2 — NOT an arithmetic shift), and EOB runs accumulated
// across blocks.
func (e *progScanEnc) acFirst(coefs *[64]int32, ss, se, al int) error {
	r := 0
	for z := ss; z <= se; z++ {
		v := coefs[qtable.ZigZagOrder[z]]
		neg := v < 0
		if neg {
			v = -v
		}
		v >>= uint(al)
		if v == 0 {
			r++
			continue
		}
		if err := e.flushEOBRun(); err != nil {
			return err
		}
		for r > 15 {
			if err := e.sink.sym(0xF0); err != nil {
				return err
			}
			r -= 16
		}
		s := bitCategory(v)
		bits := v
		if neg {
			bits = -v + (1 << uint(s)) - 1
		}
		if err := e.sink.sym(uint8(r<<4 | s)); err != nil {
			return err
		}
		if err := e.sink.bits(uint32(bits), uint(s)); err != nil {
			return err
		}
		r = 0
	}
	if r > 0 {
		e.eobRun++
		if e.eobRun == 0x7FFF {
			return e.flushEOBRun()
		}
	}
	return nil
}

// acRefine encodes one block of an AC refinement scan, following
// libjpeg's encode_mcu_AC_refine: runs count zero-history positions
// only, already-nonzero coefficients contribute buffered correction
// bits, and the index of the last newly significant coefficient bounds
// where ZRL symbols may still be needed — beyond it, trailing zeros
// fold into the EOB run.
func (e *progScanEnc) acRefine(coefs *[64]int32, ss, se, al int) error {
	var abs [64]int32
	eobIdx := ss - 1
	for z := ss; z <= se; z++ {
		v := coefs[qtable.ZigZagOrder[z]]
		if v < 0 {
			v = -v
		}
		v >>= uint(al)
		abs[z] = v
		if v == 1 {
			eobIdx = z
		}
	}
	r := 0
	var br []uint8 // this block's correction bits pending the next symbol
	for z := ss; z <= se; z++ {
		v := abs[z]
		if v == 0 {
			r++
			continue
		}
		for r > 15 && z <= eobIdx {
			if err := e.flushEOBRun(); err != nil {
				return err
			}
			if err := e.sink.sym(0xF0); err != nil {
				return err
			}
			r -= 16
			if err := e.emitBuffered(br); err != nil {
				return err
			}
			br = br[:0]
		}
		if v > 1 {
			br = append(br, uint8(v&1))
			continue
		}
		if err := e.flushEOBRun(); err != nil {
			return err
		}
		if err := e.sink.sym(uint8(r<<4 | 1)); err != nil {
			return err
		}
		sign := uint32(1)
		if coefs[qtable.ZigZagOrder[z]] < 0 {
			sign = 0
		}
		if err := e.sink.bits(sign, 1); err != nil {
			return err
		}
		if err := e.emitBuffered(br); err != nil {
			return err
		}
		br = br[:0]
		r = 0
	}
	if r > 0 || len(br) > 0 {
		e.eobRun++
		e.corrBits = append(e.corrBits, br...)
		if e.eobRun == 0x7FFF {
			return e.flushEOBRun()
		}
	}
	return nil
}

// encodeScan runs one scan over the coefficient planes, chunked by the
// restart interval: DC predictors reset and the EOB run flushes at each
// segment boundary, and markers (nil in the counting pass) emits the
// RSTn between segments.
func (e *progScanEnc) encodeScan(d *Decoded, sc progScan, ri int, markers func() error) error {
	mcus := progMCUs(d, sc.comps)
	seg := len(mcus)
	if ri > 0 {
		seg = ri
	}
	for start := 0; start < len(mcus); start += seg {
		if start > 0 && markers != nil {
			if err := markers(); err != nil {
				return err
			}
		}
		var prevDC [4]int32
		end := min(start+seg, len(mcus))
		for _, mcu := range mcus[start:end] {
			for _, b := range mcu {
				var err error
				switch {
				case sc.ss == 0 && sc.ah == 0:
					err = e.dcFirst(b.coefs, sc.al, &prevDC[b.ci])
				case sc.ss == 0:
					err = e.dcRefine(b.coefs, sc.al)
				case sc.ah == 0:
					err = e.acFirst(b.coefs, sc.ss, sc.se, sc.al)
				default:
					err = e.acRefine(b.coefs, sc.ss, sc.se, sc.al)
				}
				if err != nil {
					return err
				}
			}
		}
		if err := e.flushEOBRun(); err != nil {
			return err
		}
	}
	return nil
}

// progEncode re-emits a decode's coefficient planes as a progressive
// (SOF2) stream following the given scan script. Every scan carries its
// own optimized Huffman table as id 0 of the class it uses; DC
// refinement scans code no symbols and get no table.
func progEncode(t testing.TB, d *Decoded, script []progScan, ri int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	check := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("progEncode: %v", err)
		}
	}
	check(writeMarker(w, mSOI))
	check(writeSegment(w, mAPP0, []byte{'J', 'F', 'I', 'F', 0, 1, 1, 0, 0, 1, 0, 1, 0, 0}))
	seen := map[int]bool{}
	for i := 0; i < d.Components; i++ {
		tq := d.planes[i].tq
		if seen[tq] {
			continue
		}
		seen[tq] = true
		tbl, ok := d.QuantTables[tq]
		if !ok {
			t.Fatalf("progEncode: source decode lacks quant table %d", tq)
		}
		check(writeDQT(w, tq, tbl))
	}
	sof := []byte{8, byte(d.H >> 8), byte(d.H), byte(d.W >> 8), byte(d.W), byte(d.Components)}
	for i := 0; i < d.Components; i++ {
		sof = append(sof, byte(i+1), byte(d.planes[i].hs<<4|d.planes[i].vs), byte(d.planes[i].tq))
	}
	check(writeSegment(w, mSOF2, sof))
	if ri > 0 {
		check(writeSegment(w, mDRI, []byte{byte(ri >> 8), byte(ri)}))
	}
	for si, sc := range script {
		var tab *encTable
		if !(sc.ss == 0 && sc.ah != 0) {
			var freq [256]int64
			cnt := &progScanEnc{sink: countSink{&freq}}
			if err := cnt.encodeScan(d, sc, ri, nil); err != nil {
				t.Fatalf("progEncode: scan %d count pass: %v", si, err)
			}
			spec, err := BuildOptimizedSpec(&freq)
			if err != nil {
				t.Fatalf("progEncode: scan %d table: %v", si, err)
			}
			class := byte(0)
			if sc.ss > 0 {
				class = 1
			}
			payload := make([]byte, 0, 17+len(spec.Values))
			payload = append(payload, class<<4)
			payload = append(payload, spec.Counts[:]...)
			payload = append(payload, spec.Values...)
			check(writeSegment(w, mDHT, payload))
			if tab, err = buildEncTable(spec); err != nil {
				t.Fatalf("progEncode: scan %d enc table: %v", si, err)
			}
		}
		sos := []byte{byte(len(sc.comps))}
		for _, i := range sc.comps {
			sos = append(sos, byte(i+1), 0)
		}
		sos = append(sos, byte(sc.ss), byte(sc.se), byte(sc.ah<<4|sc.al))
		check(writeSegment(w, mSOS, sos))
		bw := bitio.NewWriter(w)
		rstIdx := 0
		enc := &progScanEnc{sink: emitSink{bw, tab}}
		err := enc.encodeScan(d, sc, ri, func() error {
			if err := bw.Flush(); err != nil {
				return err
			}
			err := writeMarker(w, byte(mRST0+rstIdx))
			rstIdx = (rstIdx + 1) % 8
			return err
		})
		if err != nil {
			t.Fatalf("progEncode: scan %d emit pass: %v", si, err)
		}
		check(bw.Flush())
	}
	check(writeMarker(w, mEOI))
	check(w.Flush())
	return buf.Bytes()
}

// encodeNonInterleaved re-emits a decode as a baseline (SOF0) stream of
// one single-component scan per component — the non-interleaved layout
// — using the standard Annex K tables. The restart interval counts
// blocks of each scan's unpadded grid, per T.81 §B.2.3.
func encodeNonInterleaved(t testing.TB, d *Decoded, ri int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	check := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("encodeNonInterleaved: %v", err)
		}
	}
	enc, err := stdEncoderTables()
	check(err)
	check(writeMarker(w, mSOI))
	check(writeSegment(w, mAPP0, []byte{'J', 'F', 'I', 'F', 0, 1, 1, 0, 0, 1, 0, 1, 0, 0}))
	seen := map[int]bool{}
	for i := 0; i < d.Components; i++ {
		tq := d.planes[i].tq
		if seen[tq] {
			continue
		}
		seen[tq] = true
		tbl, ok := d.QuantTables[tq]
		if !ok {
			t.Fatalf("encodeNonInterleaved: source decode lacks quant table %d", tq)
		}
		check(writeDQT(w, tq, tbl))
	}
	sof := []byte{8, byte(d.H >> 8), byte(d.H), byte(d.W >> 8), byte(d.W), byte(d.Components)}
	for i := 0; i < d.Components; i++ {
		sof = append(sof, byte(i+1), byte(d.planes[i].hs<<4|d.planes[i].vs), byte(d.planes[i].tq))
	}
	check(writeSegment(w, mSOF0, sof))
	specs := [][2]*HuffmanSpec{
		{&StdDCLuminance, &StdACLuminance},
		{&StdDCChrominance, &StdACChrominance},
	}
	for id, pair := range specs {
		if id == 1 && d.Components == 1 {
			break
		}
		for class, spec := range pair {
			payload := make([]byte, 0, 17+len(spec.Values))
			payload = append(payload, byte(class<<4|id))
			payload = append(payload, spec.Counts[:]...)
			payload = append(payload, spec.Values...)
			check(writeSegment(w, mDHT, payload))
		}
	}
	if ri > 0 {
		check(writeSegment(w, mDRI, []byte{byte(ri >> 8), byte(ri)}))
	}
	for i := 0; i < d.Components; i++ {
		tid := 0
		if i > 0 {
			tid = 1
		}
		check(writeSegment(w, mSOS, []byte{1, byte(i + 1), byte(tid<<4 | tid), 0, 63, 0}))
		dcTab, acTab := enc[tid*2], enc[tid*2+1]
		bw := bitio.NewWriter(w)
		sbw := (d.planes[i].w + 7) / 8
		sbh := (d.planes[i].h + 7) / 8
		var prevDC int32
		n, rstIdx := 0, 0
		for by := 0; by < sbh; by++ {
			for bx := 0; bx < sbw; bx++ {
				if ri > 0 && n > 0 && n%ri == 0 {
					check(bw.Flush())
					check(writeMarker(w, byte(mRST0+rstIdx)))
					rstIdx = (rstIdx + 1) % 8
					prevDC = 0
				}
				coefs := &d.coefs[i][by*d.blocksX[i]+bx]
				check(encodeBlock(bw, coefs, prevDC, dcTab, acTab))
				prevDC = coefs[0]
				n++
			}
		}
		check(bw.Flush())
	}
	check(writeMarker(w, mEOI))
	check(w.Flush())
	return buf.Bytes()
}
