package jpegcodec

// Batch-vs-block equivalence: every batch-stage helper in batch.go is
// pinned bit for bit against the per-block reference it replaced
// (ExtractBlock+LevelShift, blockCoefficients' quantize, reconstructBlock
// +StoreBlock). The dimensions deliberately include partial edge blocks —
// right/bottom replication padding — and the fully out-of-range padding
// columns/rows a subsampled MCU grid adds (e.g. 4:2:0 luma at width 17
// carries a block column entirely past the pixel plane). On top of the
// helper pins, whole odd-dimension streams are exercised across both
// subsampling layouts and both engines.

import (
	"bytes"
	"image/jpeg"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dct"
	"repro/internal/imgutil"
	"repro/internal/qtable"
)

// edgeDims are pixel-plane dimensions chosen to produce every gather
// shape: exact multiples of 8, single-pixel planes, partial right and
// bottom blocks, and (once MCU-padded) fully out-of-range block columns.
var edgeDims = []struct{ w, h int }{
	{1, 1}, {8, 8}, {9, 9}, {7, 3}, {16, 16}, {17, 23}, {24, 17}, {31, 32}, {65, 40},
}

func randPixPlane(rng *rand.Rand, w, h int) []uint8 {
	pix := make([]uint8, w*h)
	for i := range pix {
		pix[i] = uint8(rng.Intn(256))
	}
	return pix
}

// paddedGrid returns block-grid dimensions that include the MCU padding
// a 2×2-sampled component can carry: up to one whole block of pure
// replication past ceil(dim/8).
func paddedGrid(w, h int) (blocksX, blocksY int) {
	return 2 * ((w + 15) / 16), 2 * ((h + 15) / 16)
}

func TestGatherBlockRowMatchesExtractBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, dim := range edgeDims {
		pix := randPixPlane(rng, dim.w, dim.h)
		blocksX, blocksY := paddedGrid(dim.w, dim.h)
		plane := make([]float64, blocksX*64)
		for by := 0; by < blocksY; by++ {
			gatherBlockRow(plane, pix, dim.w, dim.h, by, blocksX)
			for bx := 0; bx < blocksX; bx++ {
				var tile [64]uint8
				var want dct.Block
				imgutil.ExtractBlock(pix, dim.w, dim.h, bx, by, &tile)
				dct.LevelShift(tile[:], &want)
				got := (*dct.Block)(plane[bx*64:])
				for i := range want {
					if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
						t.Fatalf("%dx%d block (%d,%d) sample %d: gather %v vs ExtractBlock+LevelShift %v",
							dim.w, dim.h, bx, by, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestQuantizeRunMatchesPerBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	var tbl qtable.FwdScaled
	qtable.StdLuminance.FwdScaledInto(&tbl, dct.TransformAAN)
	mask := &qtable.ZeroMask{}
	for i := 32; i < 64; i++ {
		mask[i] = true
	}
	for _, m := range []*qtable.ZeroMask{nil, mask} {
		const blocks = 7
		plane := make([]float64, blocks*64)
		for i := range plane {
			switch rng.Intn(8) {
			case 0:
				// Exact rounding-boundary products: c/q lands on n+0.5.
				plane[i] = (float64(rng.Intn(40)-20) + 0.5) * tbl[i%64]
			case 1:
				plane[i] = 0
			default:
				plane[i] = float64(rng.Intn(4094)-2047) * rng.Float64()
			}
		}
		orig := make([]float64, len(plane))
		copy(orig, plane)
		got := make([][64]int32, blocks)
		for bi := range got {
			for i := range got[bi] {
				got[bi][i] = -99 // stale pooled data must be overwritten
			}
		}
		quantizeRunInto(got, plane, &tbl, m)
		for bi := 0; bi < blocks; bi++ {
			for i := 0; i < 64; i++ {
				want := int32(0)
				if m == nil || !m[i] {
					want = quantize(orig[bi*64+i], tbl[i])
				}
				if got[bi][i] != want {
					t.Fatalf("mask=%v block %d band %d: quantizeRunInto %d vs quantize %d (c=%v q=%v)",
						m != nil, bi, i, got[bi][i], want, orig[bi*64+i], tbl[i])
				}
			}
		}
	}
}

func TestStoreBlockRowMatchesStoreBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for _, dim := range edgeDims {
		blocksX, blocksY := paddedGrid(dim.w, dim.h)
		plane := make([]float64, blocksX*64)
		got := randPixPlane(rng, dim.w, dim.h)
		want := make([]uint8, len(got))
		copy(want, got)
		for by := 0; by < blocksY; by++ {
			for i := range plane {
				// Reconstruction range including values that clamp.
				plane[i] = float64(rng.Intn(701)-350) + rng.Float64()
			}
			storeBlockRow(got, dim.w, dim.h, by, blocksX, plane)
			for bx := 0; bx < blocksX; bx++ {
				var tile [64]uint8
				dct.LevelUnshift((*dct.Block)(plane[bx*64:]), tile[:])
				imgutil.StoreBlock(want, dim.w, dim.h, bx, by, &tile)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%dx%d row %d: batched store diverges from LevelUnshift+StoreBlock", dim.w, dim.h, by)
			}
		}
	}
}

// TestTransformComponentMatchesPerBlock pins the whole batched forward
// stage — gather, batch transform, fused quantize — against the
// per-block reference pipeline, across engines, masks and edge shapes.
func TestTransformComponentMatchesPerBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	var mask qtable.ZeroMask
	for i := 20; i < 64; i++ {
		mask[i] = true
	}
	for _, xf := range bothEngines {
		var tbl qtable.FwdScaled
		qtable.StdLuminance.FwdScaledInto(&tbl, xf)
		for _, m := range []*qtable.ZeroMask{nil, &mask} {
			for _, dim := range edgeDims {
				c := &component{w: dim.w, hgt: dim.h, pix: randPixPlane(rng, dim.w, dim.h)}
				c.blocksX, c.blocksY = paddedGrid(dim.w, dim.h)
				c.coefs = make([][64]int32, c.blocksX*c.blocksY)
				transformComponent(c, &tbl, m, xf, make([]float64, c.blocksX*64))
				for by := 0; by < c.blocksY; by++ {
					for bx := 0; bx < c.blocksX; bx++ {
						var tile [64]uint8
						imgutil.ExtractBlock(c.pix, c.w, c.hgt, bx, by, &tile)
						want := blockCoefficients(&tile, &tbl, m, xf)
						if c.coefs[by*c.blocksX+bx] != want {
							t.Fatalf("%v mask=%v %dx%d block (%d,%d): batch stage %v vs per-block %v",
								xf, m != nil, dim.w, dim.h, bx, by, c.coefs[by*c.blocksX+bx], want)
						}
					}
				}
			}
		}
	}
}

// TestReconstructRowMatchesPerBlock pins the batched inverse stage —
// dequantize broadcast, batch inverse transform, fused store — against
// reconstructBlock+StoreBlock.
func TestReconstructRowMatchesPerBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for _, xf := range bothEngines {
		var inv qtable.InvScaled
		qtable.StdChrominance.InvScaledInto(&inv, xf)
		for _, dim := range edgeDims {
			blocksX, blocksY := paddedGrid(dim.w, dim.h)
			c := &component{w: dim.w, hgt: dim.h, inv: inv, blocksX: blocksX, blocksY: blocksY}
			c.coefs = make([][64]int32, blocksX*blocksY)
			for bi := range c.coefs {
				for i := 0; i < 64; i++ {
					if rng.Intn(3) == 0 {
						c.coefs[bi][i] = int32(rng.Intn(255) - 127)
					}
				}
			}
			c.pix = randPixPlane(rng, dim.w, dim.h)
			want := make([]uint8, len(c.pix))
			copy(want, c.pix)
			plane := make([]float64, blocksX*64)
			for by := 0; by < blocksY; by++ {
				reconstructBlockRow(c, by, plane, xf)
				for bx := 0; bx < blocksX; bx++ {
					var tile [64]uint8
					reconstructBlock(&c.coefs[by*blocksX+bx], &c.inv, &tile, xf)
					imgutil.StoreBlock(want, dim.w, dim.h, bx, by, &tile)
				}
			}
			if !bytes.Equal(c.pix, want) {
				t.Fatalf("%v %dx%d: batched reconstruction diverges from reconstructBlock+StoreBlock", xf, dim.w, dim.h)
			}
		}
	}
}

// TestEdgeDimsStreams drives whole odd-dimension images through both
// subsampling layouts and both engines: the encode must be deterministic
// across pooled-scratch reuse, decode back through this codec, and parse
// with the standard library (partial edge blocks land in real streams).
func TestEdgeDimsStreams(t *testing.T) {
	for _, dim := range edgeDims {
		img := testImageRGB(dim.w, dim.h, int64(dim.w*100+dim.h))
		for _, sub := range []Subsampling{Sub420, Sub444} {
			for _, xf := range bothEngines {
				opts := &Options{Subsampling: sub, Transform: xf}
				first := encodeToBytes(t, img, opts)
				second := encodeToBytes(t, img, opts)
				if !bytes.Equal(first, second) {
					t.Fatalf("%dx%d sub=%d %v: repeated encodes differ (scratch contamination)", dim.w, dim.h, sub, xf)
				}
				dec, err := Decode(bytes.NewReader(first))
				if err != nil {
					t.Fatalf("%dx%d sub=%d %v: decode: %v", dim.w, dim.h, sub, xf, err)
				}
				if dec.W != dim.w || dec.H != dim.h {
					t.Fatalf("%dx%d sub=%d %v: decoded as %dx%d", dim.w, dim.h, sub, xf, dec.W, dec.H)
				}
				if cfg, err := jpeg.DecodeConfig(bytes.NewReader(first)); err != nil || cfg.Width != dim.w || cfg.Height != dim.h {
					t.Fatalf("%dx%d sub=%d %v: stdlib config %+v err=%v", dim.w, dim.h, sub, xf, cfg, err)
				}
				if _, err := jpeg.Decode(bytes.NewReader(first)); err != nil {
					t.Fatalf("%dx%d sub=%d %v: stdlib decode: %v", dim.w, dim.h, sub, xf, err)
				}
			}
		}
	}
}
