package jpegcodec

import (
	"bytes"
	"errors"
	"testing"
)

// TestInspectProgressive checks the walker against a known scan script:
// every scan's spectral/approximation parameters and component-table
// bindings must surface, in order, along with the frame header and DRI.
func TestInspectProgressive(t *testing.T) {
	c := caseByName(t, "rgb420-dri")
	info, err := Inspect(bytes.NewReader(c.fixtureStream(t)))
	if err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if info.Frame == nil || !info.Frame.Progressive || !info.Frame.Supported {
		t.Fatalf("frame = %+v, want supported progressive", info.Frame)
	}
	if info.Frame.Width != c.w || info.Frame.Height != c.h || len(info.Frame.Components) != 3 {
		t.Fatalf("frame geometry %+v", info.Frame)
	}
	if y := info.Frame.Components[0]; y.ID != 1 || y.H != 2 || y.V != 2 {
		t.Fatalf("luma component %+v, want id 1 sampling 2x2", y)
	}
	if len(info.Scans) != len(c.script) {
		t.Fatalf("%d scans inspected, want %d", len(info.Scans), len(c.script))
	}
	for i, sc := range c.script {
		got := info.Scans[i]
		if got.Ss != sc.ss || got.Se != sc.se || got.Ah != sc.ah || got.Al != sc.al {
			t.Fatalf("scan %d: Ss/Se/Ah/Al = %d/%d/%d/%d, want %d/%d/%d/%d",
				i, got.Ss, got.Se, got.Ah, got.Al, sc.ss, sc.se, sc.ah, sc.al)
		}
		if len(got.Components) != len(sc.comps) {
			t.Fatalf("scan %d: %d components, want %d", i, len(got.Components), len(sc.comps))
		}
		for j, ci := range sc.comps {
			if got.Components[j].ID != byte(ci+1) {
				t.Fatalf("scan %d component %d: id %d, want %d", i, j, got.Components[j].ID, ci+1)
			}
		}
		if got.RestartInterval != c.ri {
			t.Fatalf("scan %d: restart interval %d, want %d", i, got.RestartInterval, c.ri)
		}
		if got.EntropyBytes <= 0 {
			t.Fatalf("scan %d: entropy bytes %d", i, got.EntropyBytes)
		}
	}
	last := info.Segments[len(info.Segments)-1]
	if last.Marker != mEOI {
		t.Fatalf("last segment %s, want EOI", last.Name)
	}
}

// TestInspectBaseline: a plain interleaved stream reports one
// full-band scan and a non-progressive frame.
func TestInspectBaseline(t *testing.T) {
	c := &progCase{name: "base", sub: Sub420, w: 32, h: 24, seed: 9}
	info, err := Inspect(bytes.NewReader(c.baselineStream(t)))
	if err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if info.Frame == nil || info.Frame.Progressive || !info.Frame.Supported {
		t.Fatalf("frame = %+v", info.Frame)
	}
	if len(info.Scans) != 1 {
		t.Fatalf("%d scans, want 1", len(info.Scans))
	}
	if sc := info.Scans[0]; sc.Ss != 0 || sc.Se != 63 || sc.Ah != 0 || sc.Al != 0 || len(sc.Components) != 3 {
		t.Fatalf("scan %+v, want interleaved 0..63", sc)
	}
}

// TestInspectUnsupportedFrame: the walker must finish streams the
// decoder rejects — that is its whole point. An arithmetic-coded
// frame (SOF9) inspects with Supported=false while Decode returns
// UnsupportedFormatError.
func TestInspectUnsupportedFrame(t *testing.T) {
	stream := []byte{
		0xFF, 0xD8, // SOI
		0xFF, 0xC9, 0x00, 0x0B, 8, 0, 16, 0, 16, 1, 1, 0x11, 0, // SOF9
		0xFF, 0xDA, 0x00, 0x08, 1, 1, 0x00, 0, 63, 0, // SOS
		0x12, 0x34, // entropy bytes
		0xFF, 0xD9, // EOI
	}
	info, err := Inspect(bytes.NewReader(stream))
	if err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if info.Frame == nil || info.Frame.Supported {
		t.Fatalf("frame = %+v, want unsupported", info.Frame)
	}
	if len(info.Scans) != 1 || info.Scans[0].EntropyBytes != 2 {
		t.Fatalf("scans = %+v", info.Scans)
	}
	var ufe *UnsupportedFormatError
	if _, err := Decode(bytes.NewReader(stream)); !errors.As(err, &ufe) {
		t.Fatalf("decode error %v, want UnsupportedFormatError", err)
	}
}

// TestInspectErrors: a missing SOI is fatal; a truncated stream
// returns its readable prefix alongside the error.
func TestInspectErrors(t *testing.T) {
	if _, err := Inspect(bytes.NewReader([]byte{0x00, 0x01, 0x02})); err == nil {
		t.Fatal("inspect accepted a non-JPEG stream")
	}
	c := &progCase{name: "trunc", sub: Sub444, w: 16, h: 16, seed: 1}
	full := c.baselineStream(t)
	info, err := Inspect(bytes.NewReader(full[:40])) // mid-APP0/DQT
	if err == nil {
		t.Fatal("inspect accepted a truncated segment")
	}
	if len(info.Segments) == 0 || info.Segments[0].Marker != mSOI {
		t.Fatalf("partial info lost the prefix: %+v", info.Segments)
	}
}
