package jpegcodec

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"repro/internal/bitio"
	"repro/internal/dct"
	"repro/internal/imgutil"
	"repro/internal/qtable"
)

// Decoded holds the result of decoding a JPEG stream together with the
// coding metadata the DeepN-JPEG tooling inspects. A Decoded can be
// reused across decodes through DecodeInto, which recycles its planes,
// coefficient grids and table map instead of reallocating them — the
// allocation-free steady state batch transcode loops rely on.
type Decoded struct {
	W, H       int
	Components int // 1 (grayscale) or 3 (YCbCr)

	// Per-component planes at their coded (possibly subsampled) size,
	// together with the component's sampling factors and quantization
	// table id from the SOF header — RGBInto needs the true factors to
	// upsample correctly (plane-size ratios are ambiguous for fractional
	// ceil-division sizes) and Requantize needs tq to find each
	// component's coded table.
	planes [3]struct {
		w, h   int
		hs, vs int // sampling factors (1..4)
		tq     int // quantization table id
		pix    []uint8
	}
	maxH, maxV int            // frame maximum sampling factors
	coefs      [3][][64]int32 // quantized coefficients in block-row order
	blocksX    [3]int
	blocksY    [3]int

	// upCb, upCr hold upsampled chroma scratch reused by RGBInto.
	upCb, upCr []uint8

	// QuantTables holds the dequantization tables by table id.
	QuantTables map[int]qtable.Table
	// Sampling describes the chroma layout of 3-component images.
	Sampling Subsampling
	// RestartInterval is the parsed DRI value in effect for the last
	// scan (0 when absent).
	RestartInterval int
	// Progressive records that the source was a progressive (SOF2)
	// frame assembled from multiple scans. The decoded coefficients and
	// pixels are in the same representation as a baseline decode —
	// Requantize on a progressive source emits baseline output.
	Progressive bool

	// Metadata holds the stream's APPn/COM segments in order of
	// appearance; Requantize re-emits them by default so EXIF/ICC
	// profiles and comments survive transcoding. Payload slices alias
	// metaBuf and stay valid until the next DecodeInto or Reset.
	Metadata []MetaSegment
	metaBuf  []byte // flat backing store for Metadata payloads
}

// Reset clears the decoded content while keeping every allocated buffer
// (planes, coefficient grids, table map, chroma scratch) for reuse by a
// subsequent DecodeInto.
func (d *Decoded) Reset() {
	d.W, d.H, d.Components = 0, 0, 0
	d.Sampling = 0
	d.RestartInterval = 0
	d.Progressive = false
	d.maxH, d.maxV = 0, 0
	d.Metadata = d.Metadata[:0]
	d.metaBuf = d.metaBuf[:0]
	for i := range d.planes {
		d.planes[i].w, d.planes[i].h = 0, 0
		d.planes[i].hs, d.planes[i].vs = 0, 0
		d.planes[i].tq = 0
		d.planes[i].pix = d.planes[i].pix[:0]
		d.coefs[i] = d.coefs[i][:0]
		d.blocksX[i], d.blocksY[i] = 0, 0
	}
	for k := range d.QuantTables {
		delete(d.QuantTables, k)
	}
}

// Gray returns the luma plane.
func (d *Decoded) Gray() *imgutil.Gray {
	return d.GrayInto(nil)
}

// GrayInto copies the luma plane into dst, reusing dst's buffer when its
// capacity suffices. A nil dst allocates a fresh image.
func (d *Decoded) GrayInto(dst *imgutil.Gray) *imgutil.Gray {
	g := dst
	if g == nil {
		g = &imgutil.Gray{}
	}
	g.W, g.H = d.planes[0].w, d.planes[0].h
	g.Pix = imgutil.GrowBytes(g.Pix, g.W*g.H)
	copy(g.Pix, d.planes[0].pix)
	return g
}

// Coefficients returns the quantized DCT coefficients of component i in
// natural order, along with the MCU-padded block-grid dimensions. Blocks
// are stored row-major (by*blocksX + bx).
func (d *Decoded) Coefficients(i int) (blocks [][64]int32, blocksX, blocksY int) {
	return d.coefs[i], d.blocksX[i], d.blocksY[i]
}

// RGB reconstructs a full-resolution color image, upsampling chroma when
// needed. Grayscale sources replicate luma.
func (d *Decoded) RGB() *imgutil.RGB {
	return d.RGBInto(nil)
}

// RGBInto is RGB writing into dst, reusing dst's pixel buffer when its
// capacity suffices; chroma upsampling scratch is cached on the Decoded.
// A nil dst allocates a fresh image; the result is returned either way
// and never aliases the Decoded's internal planes.
func (d *Decoded) RGBInto(dst *imgutil.RGB) *imgutil.RGB {
	if d.Components == 1 {
		p := imgutil.Planes{W: d.planes[0].w, H: d.planes[0].h, Y: d.planes[0].pix, Grayscale: true}
		return p.ToRGBInto(dst)
	}
	p := imgutil.Planes{W: d.W, H: d.H, Y: d.planes[0].pix}
	if d.planes[1].w == d.W && d.planes[1].h == d.H {
		p.Cb = d.planes[1].pix
		p.Cr = d.planes[2].pix
	} else {
		// Upsample with the components' true sampling ratios from the SOF
		// header: for ceil-division plane sizes the ratio cannot be
		// recovered from plane.w/h alone (e.g. a 9-wide 4:1:1 frame has a
		// 3-wide chroma plane, and 9/3 ≠ 4).
		cb, cr := &d.planes[1], &d.planes[2]
		d.upCb = imgutil.UpsampleInto(d.upCb, cb.pix, cb.w, cb.h, d.W, d.H, cb.hs, d.maxH, cb.vs, d.maxV)
		d.upCr = imgutil.UpsampleInto(d.upCr, cr.pix, cr.w, cr.h, d.W, d.H, cr.hs, d.maxH, cr.vs, d.maxV)
		p.Cb = d.upCb
		p.Cr = d.upCr
	}
	return p.ToRGBInto(dst)
}

// DecodeOptions configures Decode/DecodeInto.
type DecodeOptions struct {
	// Transform selects the inverse block-transform engine used to
	// reconstruct pixels. The zero value (dct.TransformNaive) keeps the
	// separable row–column path; dct.TransformAAN switches to the fast
	// AAN butterfly. Engines agree within one grey level (IDCT rounding).
	Transform dct.Transform
	// MaxPixels rejects frames whose declared width×height exceeds it
	// (0 = unlimited). The decoder sizes its planes and coefficient grids
	// from the SOF header before any entropy data is read, so a tiny
	// hostile stream can otherwise demand gigabytes; servers and fuzzers
	// feeding untrusted bytes should always set a bound.
	MaxPixels int
	// ShardWorkers controls restart-interval sharded decoding, the
	// single-image parallelism lever: when the stream declares a restart
	// interval the entropy data is byte-scanned into its restart
	// segments (markers are byte-aligned and cannot occur inside stuffed
	// entropy data) and the segments decode concurrently, each on its
	// own pooled bit reader with a fresh DC predictor. 0 selects auto
	// mode (shard across GOMAXPROCS when the frame is large enough to
	// pay for the fan-out); 1 or any negative value forces the
	// sequential path; values ≥ 2 force that many workers, capped at the
	// segment count. The set of accepted streams and the decoded output
	// are identical either way. Sharding applies only to baseline fully
	// interleaved scans; progressive and non-interleaved scans always
	// decode sequentially (see shard.go for the guard's rationale).
	ShardWorkers int
}

// frame is the per-image state that persists across scans: the geometry
// from the SOF header and the components whose full-image coefficient
// planes every scan accumulates into. Baseline frames complete in one
// (interleaved) scan or one scan per component; progressive frames
// spread the coefficient data over many DC/AC first/refinement scans.
// Either way reconstruction runs once, over the finished planes.
type frame struct {
	w, h         int
	progressive  bool
	maxH, maxV   int // frame maximum sampling factors
	mcusX, mcusY int // interleaved MCU grid
	comps        []*component
	nScans       int // completed scans (entropy data fully decoded)
}

// decoder carries parsing state. Decoders are pooled: every field either
// resets cheaply between streams (scalars, table pointers) or is a grown
// buffer deliberately retained across decodes (payload, huffStore values).
type decoder struct {
	br    *bufio.Reader
	bits  *bitio.Reader        // pooled entropy reader
	quant map[int]qtable.Table // aliases dst.QuantTables during a run
	dst   *Decoded
	xf    dct.Transform

	frame frame // per-image state shared by all scans

	huff      [8]*decTable // index: class<<2 | id; nil until defined
	huffStore [8]decTable  // backing storage, value buffers reused
	compArr   [3]component // backing for frame.comps via compRefs
	compRefs  [3]*component
	scanComps [4]*component // scratch for the current scan's component list
	payload   []byte        // reusable segment payload buffer
	ri        int           // restart interval in MCUs
	maxPixels int           // reject frames larger than this (0 = unlimited)
	shard     int           // ShardWorkers request for restart-sharded decoding

	// eobRun is the progressive AC decoders' pending end-of-band run:
	// the number of further blocks (beyond the current one) whose band
	// is already over. It never crosses a scan or restart boundary.
	eobRun int32
	// reconWorkers is > 1 when the scan's entropy data decoded sharded;
	// finishFrame then reconstructs with the same fan-out.
	reconWorkers int

	// Sharded-decode scratch, retained across decodes: the raw scan
	// bytes, the segment end offsets within them, and the derived
	// per-segment subslices.
	scanBuf   []byte
	segBounds []int
	segs      [][]byte

	// plane is the flat block-row scratch for the batched reconstruction
	// stage, retained across decodes (the parallel path checks extra
	// planes out of planePool instead).
	plane []float64

	// metaSpans records APPn/COM segments during the parse as offsets
	// into dst.metaBuf; finish materializes them into dst.Metadata.
	// Offsets rather than subslices because metaBuf may reallocate while
	// segments are still arriving.
	metaSpans []metaSpan
}

// metaSpan is one recorded APPn/COM segment: its marker byte and the
// payload's position inside the Decoded's flat metadata buffer.
type metaSpan struct {
	marker     byte
	start, end int
}

// release drops references to caller-owned memory and returns the
// decoder to the pool.
func (d *decoder) release() {
	d.br = nil
	d.bits.Reset(eofReader{})
	d.quant = nil
	d.dst = nil
	d.xf = 0
	d.frame = frame{}
	d.huff = [8]*decTable{}
	d.compArr = [3]component{}
	d.compRefs = [3]*component{}
	d.scanComps = [4]*component{}
	d.ri = 0
	d.maxPixels = 0
	d.shard = 0
	d.eobRun = 0
	d.reconWorkers = 0
	d.segs = d.segs[:0]
	d.metaSpans = d.metaSpans[:0]
	decoderPool.Put(d)
}

// Decode parses a baseline sequential (interleaved or not) or
// progressive JFIF/JPEG stream with default options. Arithmetic-coded,
// lossless and hierarchical streams are rejected with
// UnsupportedFormatError.
func Decode(r io.Reader) (*Decoded, error) {
	out := &Decoded{}
	if err := DecodeInto(r, out, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeInto parses a baseline or progressive JFIF/JPEG stream into dst,
// reusing dst's planes, coefficient grids and table map when their
// capacity suffices. It is the allocation-free steady-state decode path:
// a caller that decodes many streams through one (per-worker) Decoded
// pays for output buffers once. On error dst's contents are unspecified.
// A nil opts selects the defaults.
func DecodeInto(r io.Reader, dst *Decoded, opts *DecodeOptions) error {
	if dst == nil {
		return errors.New("jpegcodec: DecodeInto needs a non-nil destination")
	}
	var o DecodeOptions
	if opts != nil {
		o = *opts
	}
	if !o.Transform.Valid() {
		return fmt.Errorf("jpegcodec: unknown transform engine %d", o.Transform)
	}
	dst.Reset()
	if dst.QuantTables == nil {
		dst.QuantTables = map[int]qtable.Table{}
	}

	br := bufrPool.Get().(*bufio.Reader)
	br.Reset(r)
	d := decoderPool.Get().(*decoder)
	d.br = br
	d.quant = dst.QuantTables
	d.dst = dst
	d.xf = o.Transform
	d.maxPixels = o.MaxPixels
	d.shard = o.ShardWorkers
	err := d.run()
	d.release()
	br.Reset(eofReader{}) // drop the caller's reader before pooling
	bufrPool.Put(br)
	return err
}

// run is the marker loop. Scans hand back the marker that terminated
// their entropy data (pending), so a multi-scan stream — progressive or
// non-interleaved baseline — keeps parsing DHT/DQT/DRI/SOS segments
// between scans until EOI (or a clean end of input) triggers the single
// reconstruction pass.
func (d *decoder) run() error {
	m, err := d.readMarkerByte()
	if err != nil {
		return err
	}
	if m != mSOI {
		return fmt.Errorf("jpegcodec: missing SOI, found %#02x", m)
	}
	var pending byte // marker already consumed by a scan's entropy reader
	for {
		m := pending
		pending = 0
		if m == 0 {
			var err error
			m, err = d.readMarkerByte()
			if err != nil {
				// A stream that simply ends after a completed scan still
				// decodes — the historical tolerance for a missing EOI.
				if d.frame.nScans > 0 && errors.Is(err, io.EOF) {
					return d.finishFrame()
				}
				return err
			}
		}
		switch {
		case m == mSOF0 || m == mSOF1 || m == mSOF2:
			if err := d.parseSOF(m == mSOF2); err != nil {
				return err
			}
		case m >= 0xC3 && m <= 0xCF && m != mDHT:
			// Lossless, hierarchical/differential and arithmetic-coded
			// frame families (plus DAC and the reserved JPG marker).
			return &UnsupportedFormatError{Marker: m, Name: unsupportedFrameName(m)}
		case m == mDQT:
			if err := d.parseDQT(); err != nil {
				return err
			}
		case m == mDHT:
			if err := d.parseDHT(); err != nil {
				return err
			}
		case m == mDRI:
			if err := d.parseDRI(); err != nil {
				return err
			}
		case m == mSOS:
			next, err := d.decodeScan()
			if err != nil {
				return err
			}
			// A baseline frame whose components are all fully coded is
			// complete — return without inspecting the trailing bytes,
			// matching the single-scan decoder this loop generalizes. A
			// scan that ran out of input (next == 0) also ends the image.
			if d.frameDone() || next == 0 {
				return d.finishFrame()
			}
			pending = next
		case m == mEOI:
			if d.frame.nScans == 0 {
				return errors.New("jpegcodec: EOI before scan data")
			}
			return d.finishFrame()
		case m == mSOI:
			return errors.New("jpegcodec: unexpected second SOI")
		case (m >= mRST0 && m <= mRST0+7) || m == mTEM:
			// Bare markers carry no length field; a stray one between
			// segments is skipped rather than parsed as a segment.
		case (m >= mAPP0 && m <= mAPP0+0x0F) || m == mCOM:
			// Record application and comment segments so Requantize can
			// pass EXIF/ICC/comments through byte-identical.
			if err := d.recordMetaSegment(m); err != nil {
				return err
			}
		default:
			// Anything else with a length field: skip.
			if err := d.skipSegment(); err != nil {
				return err
			}
		}
	}
}

// frameDone reports that every component of a baseline frame has been
// coded, so no further scan can contribute. Progressive frames are only
// complete at EOI (or end of input): refinement scans may keep arriving.
func (d *decoder) frameDone() bool {
	f := &d.frame
	if f.progressive || f.nScans == 0 {
		return false
	}
	for _, c := range f.comps {
		if !c.scanned {
			return false
		}
	}
	return true
}

// readMarkerByte scans for the next 0xFF <code> pair, tolerating fill bytes.
func (d *decoder) readMarkerByte() (byte, error) {
	b, err := d.br.ReadByte()
	if err != nil {
		return 0, err
	}
	if b != 0xFF {
		return 0, fmt.Errorf("jpegcodec: expected marker, found %#02x", b)
	}
	for b == 0xFF {
		b, err = d.br.ReadByte()
		if err != nil {
			return 0, err
		}
	}
	return b, nil
}

// segmentPayload reads one marker segment body into the decoder's reused
// payload buffer. The returned slice is valid until the next call.
func (d *decoder) segmentPayload() ([]byte, error) {
	// Length bytes are read individually: a stack buffer would escape
	// into the io.ReadFull interface call and cost one allocation per
	// marker segment.
	b0, err := d.br.ReadByte()
	if err != nil {
		return nil, err
	}
	b1, err := d.br.ReadByte()
	if err != nil {
		return nil, err
	}
	n := int(b0)<<8 | int(b1)
	if n < 2 {
		return nil, fmt.Errorf("jpegcodec: segment length %d too small", n)
	}
	if cap(d.payload) < n-2 {
		d.payload = make([]byte, n-2)
	}
	payload := d.payload[:n-2]
	if _, err := io.ReadFull(d.br, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

func (d *decoder) skipSegment() error {
	_, err := d.segmentPayload()
	return err
}

// recordMetaSegment stores one APPn/COM payload in the destination's
// flat metadata buffer and notes its span for finish to materialize.
func (d *decoder) recordMetaSegment(m byte) error {
	p, err := d.segmentPayload()
	if err != nil {
		return err
	}
	buf := d.dst.metaBuf
	start := len(buf)
	buf = append(buf, p...)
	d.dst.metaBuf = buf
	d.metaSpans = append(d.metaSpans, metaSpan{marker: m, start: start, end: len(buf)})
	return nil
}

func (d *decoder) parseDQT() error {
	p, err := d.segmentPayload()
	if err != nil {
		return err
	}
	for len(p) > 0 {
		pq := int(p[0] >> 4)
		tq := int(p[0] & 0x0F)
		p = p[1:]
		var zz [64]uint16
		switch pq {
		case 0:
			if len(p) < 64 {
				return errors.New("jpegcodec: truncated 8-bit DQT")
			}
			for i := 0; i < 64; i++ {
				zz[i] = uint16(p[i])
			}
			p = p[64:]
		case 1:
			if len(p) < 128 {
				return errors.New("jpegcodec: truncated 16-bit DQT")
			}
			for i := 0; i < 64; i++ {
				zz[i] = uint16(p[2*i])<<8 | uint16(p[2*i+1])
			}
			p = p[128:]
		default:
			return fmt.Errorf("jpegcodec: bad DQT precision %d", pq)
		}
		d.quant[tq] = qtable.FromZigZag(zz)
	}
	return nil
}

func (d *decoder) parseDHT() error {
	p, err := d.segmentPayload()
	if err != nil {
		return err
	}
	for len(p) > 0 {
		if len(p) < 17 {
			return errors.New("jpegcodec: truncated DHT")
		}
		tc := int(p[0] >> 4)
		th := int(p[0] & 0x0F)
		if tc > 1 {
			return fmt.Errorf("jpegcodec: bad huffman class %d", tc)
		}
		if th > 3 {
			return fmt.Errorf("jpegcodec: huffman table id %d exceeds baseline limit 3", th)
		}
		var spec HuffmanSpec
		total := 0
		for i := 0; i < 16; i++ {
			spec.Counts[i] = p[1+i]
			total += int(p[1+i])
		}
		if len(p) < 17+total {
			return errors.New("jpegcodec: truncated DHT values")
		}
		// decTable.init copies the values out before the payload buffer is
		// reused, so the spec can reference it directly.
		spec.Values = p[17 : 17+total]
		p = p[17+total:]
		idx := tc<<2 | th
		if err := d.huffStore[idx].init(&spec); err != nil {
			return err
		}
		d.huff[idx] = &d.huffStore[idx]
	}
	return nil
}

func (d *decoder) parseDRI() error {
	p, err := d.segmentPayload()
	if err != nil {
		return err
	}
	if len(p) != 2 {
		return errors.New("jpegcodec: bad DRI length")
	}
	d.ri = int(p[0])<<8 | int(p[1])
	return nil
}

// parseSOF reads the frame header and establishes everything every scan
// shares: component geometry, the interleaved MCU grid, and the
// full-image pixel and coefficient planes (grown from the destination so
// repeated DecodeInto calls reuse them). Progressive frames zero their
// coefficient grids here — scans accumulate bits into them rather than
// overwriting whole blocks, so pooled leftovers must not shine through.
func (d *decoder) parseSOF(progressive bool) error {
	p, err := d.segmentPayload()
	if err != nil {
		return err
	}
	f := &d.frame
	if f.comps != nil {
		return errors.New("jpegcodec: multiple SOF segments")
	}
	if len(p) < 6 {
		return errors.New("jpegcodec: truncated SOF")
	}
	if p[0] != 8 {
		return fmt.Errorf("jpegcodec: unsupported sample precision %d", p[0])
	}
	f.h = int(p[1])<<8 | int(p[2])
	f.w = int(p[3])<<8 | int(p[4])
	f.progressive = progressive
	n := int(p[5])
	if n != 1 && n != 3 {
		return fmt.Errorf("jpegcodec: unsupported component count %d", n)
	}
	if f.w == 0 || f.h == 0 {
		return errors.New("jpegcodec: zero frame dimensions")
	}
	// Division form: both dimensions can be 65535, whose product
	// overflows int on 32-bit platforms and would wrap past the cap.
	if d.maxPixels > 0 && (f.h > d.maxPixels || f.w > d.maxPixels/f.h) {
		return fmt.Errorf("jpegcodec: frame %dx%d exceeds the %d-pixel decode limit", f.w, f.h, d.maxPixels)
	}
	if len(p) < 6+3*n {
		return errors.New("jpegcodec: truncated SOF components")
	}
	for i := 0; i < n; i++ {
		d.compArr[i] = component{
			id: p[6+3*i],
			h:  int(p[7+3*i] >> 4),
			v:  int(p[7+3*i] & 0x0F),
			tq: int(p[8+3*i]),
		}
		c := &d.compArr[i]
		if c.h < 1 || c.h > 4 || c.v < 1 || c.v > 4 {
			return fmt.Errorf("jpegcodec: bad sampling factors %dx%d", c.h, c.v)
		}
		d.compRefs[i] = c
	}
	if n == 1 {
		// A single-component scan is non-interleaved (T.81 A.2): its MCU
		// is one data unit and the declared sampling factors do not shape
		// the scan geometry. Normalize them to 1×1 — real files keep e.g.
		// 2×2 luma factors after grayscale conversion, and honoring them
		// would pad the plane and misplace blocks (stdlib normalizes too).
		d.compArr[0].h, d.compArr[0].v = 1, 1
	} else {
		// T.81 B.2.2: baseline interleaved MCUs carry at most 10 data
		// units. Hostile headers past the bound (up to 48 blocks/MCU with
		// three 4×4 components) are a CPU/memory amplification lever.
		blocks := 0
		for i := 0; i < n; i++ {
			blocks += d.compArr[i].h * d.compArr[i].v
		}
		if blocks > 10 {
			return fmt.Errorf("jpegcodec: %d blocks per MCU exceeds the baseline limit 10", blocks)
		}
	}
	f.comps = d.compRefs[:n]

	maxH, maxV := 1, 1
	for _, c := range f.comps {
		maxH = max(maxH, c.h)
		maxV = max(maxV, c.v)
	}
	// Every real encoder gives component 0 (luma) the maximum sampling
	// factors; the pixel-reconstruction paths assume its plane is
	// full-resolution, so reject the degenerate layouts where it is not.
	if f.comps[0].h != maxH || f.comps[0].v != maxV {
		return fmt.Errorf("jpegcodec: component 0 sampling %dx%d below frame maximum %dx%d",
			f.comps[0].h, f.comps[0].v, maxH, maxV)
	}
	f.maxH, f.maxV = maxH, maxV
	f.mcusX = (f.w + 8*maxH - 1) / (8 * maxH)
	f.mcusY = (f.h + 8*maxV - 1) / (8 * maxV)
	for i, c := range f.comps {
		c.w = (f.w*c.h + maxH - 1) / maxH
		c.hgt = (f.h*c.v + maxV - 1) / maxV
		c.blocksX = f.mcusX * c.h
		c.blocksY = f.mcusY * c.v
		// Output buffers come from the destination so repeated DecodeInto
		// calls reuse them.
		c.pix = imgutil.GrowBytes(d.dst.planes[i].pix, c.w*c.hgt)
		d.dst.planes[i].pix = c.pix
		c.coefs = growCoefs(d.dst.coefs[i], c.blocksX*c.blocksY)
		d.dst.coefs[i] = c.coefs
		if progressive {
			zeroCoefs(c.coefs)
			c.primed = true
		}
	}
	return nil
}

// receiveExtend implements the RECEIVE+EXTEND procedure (T.81 F.2.2.1):
// read s magnitude bits and sign-extend per the JPEG convention.
func receiveExtend(br *bitio.Reader, s int) (int32, error) {
	if s == 0 {
		return 0, nil
	}
	bits, err := br.ReadBits(uint(s))
	if err != nil {
		return 0, err
	}
	v := int32(bits)
	if v < 1<<(s-1) {
		v -= (1 << s) - 1
	}
	return v, nil
}

// decodeScan parses one SOS header, validates it against the frame type,
// and dispatches the entropy data to the matching scan decoder:
// baseline interleaved (the only shardable shape), baseline
// non-interleaved, or the progressive DC/AC first/refinement walks. It
// returns the marker that terminated the scan's entropy data (0 when the
// stream ended instead) so the marker loop can keep going on multi-scan
// streams.
func (d *decoder) decodeScan() (byte, error) {
	f := &d.frame
	if f.comps == nil {
		return 0, errors.New("jpegcodec: SOS before SOF")
	}
	p, err := d.segmentPayload()
	if err != nil {
		return 0, err
	}
	if len(p) < 1 {
		return 0, errors.New("jpegcodec: truncated SOS")
	}
	ns := int(p[0])
	if ns < 1 || ns > 4 {
		return 0, fmt.Errorf("jpegcodec: scan declares %d components", ns)
	}
	if ns > len(f.comps) {
		return 0, fmt.Errorf("jpegcodec: scan has %d components, frame has %d", ns, len(f.comps))
	}
	if len(p) < 1+2*ns+3 {
		return 0, errors.New("jpegcodec: truncated SOS payload")
	}
	scomps := d.scanComps[:0]
	for i := 0; i < ns; i++ {
		cs := p[1+2*i]
		var c *component
		for _, cand := range f.comps {
			if cand.id == cs {
				c = cand
				break
			}
		}
		if c == nil {
			return 0, fmt.Errorf("jpegcodec: scan references unknown component %d", cs)
		}
		for _, prev := range scomps {
			if prev == c {
				return 0, fmt.Errorf("jpegcodec: duplicate component %d in scan", cs)
			}
		}
		c.td = int(p[2+2*i] >> 4)
		c.ta = int(p[2+2*i] & 0x0F)
		if c.td > 3 || c.ta > 3 {
			return 0, fmt.Errorf("jpegcodec: huffman table ids %d/%d exceed baseline limit 3", c.td, c.ta)
		}
		scomps = append(scomps, c)
	}
	ss := int(p[1+2*ns])
	se := int(p[2+2*ns])
	ah := int(p[3+2*ns] >> 4)
	al := int(p[3+2*ns] & 0x0F)
	f.nScans++
	for _, c := range scomps {
		c.scanned = true
	}

	if !f.progressive {
		if ss != 0 || se != 63 || ah != 0 || al != 0 {
			return 0, fmt.Errorf("jpegcodec: baseline scan with Ss=%d Se=%d Ah=%d Al=%d (progressive scan parameters need a SOF2 frame)", ss, se, ah, al)
		}
		if ns == len(f.comps) {
			// The classic fully interleaved scan; every block of every
			// component is coded (and zeroed as it decodes), and this is
			// the only scan shape the restart-sharded entropy path
			// handles (see shard.go).
			for _, c := range scomps {
				c.primed = true
			}
			if nw := shardWorkersFor(d.shard, d.ri, f.mcusX*f.mcusY); nw > 1 {
				return d.scanSharded(scomps, nw)
			}
			return d.scanBaseline(scomps, true)
		}
		if ns == 1 {
			// Non-interleaved: the scan walks the component's unpadded
			// block grid, leaving MCU-padding blocks untouched — zero the
			// grid so pooled leftovers cannot leak into reconstruction.
			d.primeComponent(scomps[0])
			return d.scanBaseline(scomps, false)
		}
		// A partial interleave (a strict subset of the components, ns ≥ 2):
		// the MCU walk covers each member's full padded grid.
		for _, c := range scomps {
			c.primed = true
		}
		return d.scanBaseline(scomps, true)
	}

	// Progressive scan-header validation (T.81 G.1): a DC scan selects
	// exactly coefficient 0 and may interleave; an AC scan selects a
	// band 1..63 of a single component. A refinement scan narrows the
	// point transform by exactly one bit.
	switch {
	case ss == 0 && se != 0:
		return 0, fmt.Errorf("jpegcodec: progressive DC scan with Se=%d (want 0)", se)
	case ss > 0 && (se < ss || se > 63):
		return 0, fmt.Errorf("jpegcodec: bad spectral selection %d..%d", ss, se)
	case ss > 0 && ns != 1:
		return 0, fmt.Errorf("jpegcodec: progressive AC scan interleaves %d components", ns)
	case ah > 13 || al > 13:
		return 0, fmt.Errorf("jpegcodec: successive approximation %d/%d out of range", ah, al)
	case ah != 0 && ah != al+1:
		return 0, fmt.Errorf("jpegcodec: refinement scan Ah=%d does not extend Al=%d", ah, al)
	}
	return d.scanProgressive(scomps, ss, se, ah, al)
}

// primeComponent zeroes a component's pooled coefficient grid once per
// decode, before the first scan that does not overwrite every block.
func (d *decoder) primeComponent(c *component) {
	if c.primed {
		return
	}
	zeroCoefs(c.coefs)
	c.primed = true
}

// scanRestart consumes one restart marker, enforcing the D0..D7 cycle —
// a stream whose markers are out of sequence has lost or reordered
// segments, and decoding past the desync would silently produce garbage
// pixels — and resets the entropy state that must not cross a restart
// boundary: DC predictors and any pending EOB run.
func (d *decoder) scanRestart(rst *int, prevDC *[4]int32) error {
	m, err := d.bits.ReadMarker()
	if err != nil {
		return fmt.Errorf("jpegcodec: reading restart marker: %w", err)
	}
	if m != byte(mRST0+*rst) {
		return fmt.Errorf("jpegcodec: expected RST%d, found %#02x", *rst, m)
	}
	*rst = (*rst + 1) % 8
	*prevDC = [4]int32{}
	d.eobRun = 0
	return nil
}

// scanEnd reads the marker that terminated the scan's entropy data,
// returning 0 when the stream ends (or desyncs) there instead — a
// completed scan with a missing terminator still decodes, preserving the
// historical tolerance for streams truncated after the last MCU.
func (d *decoder) scanEnd() byte {
	m, err := d.bits.ReadMarker()
	if err != nil {
		return 0
	}
	return m
}

// scanBaseline entropy-decodes one baseline scan on the calling
// goroutine. An interleaved scan walks the frame MCU grid in the scan
// header's component order; a non-interleaved (single-component) scan
// walks the component's unpadded block grid, one block per MCU, with
// restart intervals counted in those units (T.81 A.2.2).
func (d *decoder) scanBaseline(scomps []*component, interleaved bool) (byte, error) {
	f := &d.frame
	for _, c := range scomps {
		if d.huff[0<<2|c.td] == nil || d.huff[1<<2|c.ta] == nil {
			return 0, fmt.Errorf("jpegcodec: missing huffman tables %d/%d", c.td, c.ta)
		}
	}
	br := d.bits
	br.Reset(d.br)
	var prevDC [4]int32 // indexed by component position in the scan
	rst := 0            // expected index of the next restart marker
	c0 := scomps[0]
	total, sbw := f.mcusX*f.mcusY, 0
	if !interleaved {
		sbw = (c0.w + 7) / 8
		total = sbw * ((c0.hgt + 7) / 8)
	}
	for mcu := 0; mcu < total; mcu++ {
		if d.ri > 0 && mcu > 0 && mcu%d.ri == 0 {
			if err := d.scanRestart(&rst, &prevDC); err != nil {
				return 0, err
			}
		}
		if interleaved {
			my, mx := mcu/f.mcusX, mcu%f.mcusX
			for ci, c := range scomps {
				dcTab := d.huff[0<<2|c.td]
				acTab := d.huff[1<<2|c.ta]
				for vy := 0; vy < c.v; vy++ {
					for vx := 0; vx < c.h; vx++ {
						bx, by := mx*c.h+vx, my*c.v+vy
						coefs := &c.coefs[by*c.blocksX+bx]
						if err := decodeBlockInto(br, dcTab, acTab, prevDC[ci], coefs); err != nil {
							return 0, err
						}
						prevDC[ci] = coefs[0]
					}
				}
			}
			continue
		}
		by, bx := mcu/sbw, mcu%sbw
		coefs := &c0.coefs[by*c0.blocksX+bx]
		if err := decodeBlockInto(br, d.huff[0<<2|c0.td], d.huff[1<<2|c0.ta], prevDC[0], coefs); err != nil {
			return 0, err
		}
		prevDC[0] = coefs[0]
	}
	return d.scanEnd(), nil
}

// reconstructSequential runs the batched inverse stage over every
// component on the calling goroutine, reusing the decoder's retained
// plane.
func (d *decoder) reconstructSequential() {
	for _, c := range d.frame.comps {
		d.plane = growFloats(d.plane, c.blocksX*64)
		for by := 0; by < c.blocksY; by++ {
			reconstructBlockRow(c, by, d.plane, d.xf)
		}
	}
}

// decodeBlockInto entropy-decodes one block into natural-order
// coefficients, writing straight into the caller's grid slot (which may
// hold stale pooled data — it is zeroed first). On error the slot's
// contents are unspecified.
func decodeBlockInto(br *bitio.Reader, dcTab, acTab *decTable, prevDC int32, coefs *[64]int32) error {
	*coefs = [64]int32{}
	s, err := dcTab.decode(br)
	if err != nil {
		return err
	}
	diff, err := receiveExtend(br, int(s))
	if err != nil {
		return err
	}
	coefs[0] = prevDC + diff
	for z := 1; z < 64; {
		sym, err := acTab.decode(br)
		if err != nil {
			return err
		}
		run, size := int(sym>>4), int(sym&0x0F)
		switch {
		case size == 0 && run == 0: // EOB
			return nil
		case size == 0 && run == 15: // ZRL
			z += 16
		case size == 0:
			return fmt.Errorf("jpegcodec: invalid AC symbol %#02x", sym)
		default:
			z += run
			if z > 63 {
				return errors.New("jpegcodec: AC run overflows block")
			}
			v, err := receiveExtend(br, size)
			if err != nil {
				return err
			}
			coefs[qtable.ZigZagOrder[z]] = v
			z++
		}
	}
	return nil
}

// finishFrame runs once per image, after the last scan: it zero-fills
// the grids of components no scan touched, binds the dequantization
// tables in effect at the end of the stream, reconstructs pixels with
// the batched inverse stage — sharded with the entropy decoder's
// fan-out when the scan decoded sharded — and publishes the result.
func (d *decoder) finishFrame() error {
	f := &d.frame
	for _, c := range f.comps {
		if !c.primed {
			// No scan carried this component; it reconstructs as a flat
			// mid-gray plane rather than pooled leftovers.
			zeroCoefs(c.coefs)
			c.primed = true
		}
		tbl, ok := d.quant[c.tq]
		if !ok {
			return fmt.Errorf("jpegcodec: missing quantization table %d", c.tq)
		}
		c.table = tbl
		// Fold the inverse engine's prescale into the dequantize
		// multipliers once per frame; reconstructBlockRow then runs one
		// multiply per coefficient with no prescale pass.
		tbl.InvScaledInto(&c.inv, d.xf)
	}
	if d.reconWorkers > 1 {
		d.reconstructSharded(d.reconWorkers)
	} else {
		d.reconstructSequential()
	}
	return d.finish()
}

// finish publishes the parsed state into the destination.
func (d *decoder) finish() error {
	out := d.dst
	f := &d.frame
	out.W = f.w
	out.H = f.h
	out.Components = len(f.comps)
	out.RestartInterval = d.ri
	out.Progressive = f.progressive
	out.maxH, out.maxV = f.maxH, f.maxV
	if len(f.comps) == 3 {
		out.Sampling = classifySampling(f.comps)
	}
	for i, c := range f.comps {
		out.planes[i].w = c.w
		out.planes[i].h = c.hgt
		out.planes[i].hs = c.h
		out.planes[i].vs = c.v
		out.planes[i].tq = c.tq
		out.planes[i].pix = c.pix
		out.coefs[i] = c.coefs
		out.blocksX[i] = c.blocksX
		out.blocksY[i] = c.blocksY
	}
	for _, s := range d.metaSpans {
		out.Metadata = append(out.Metadata, MetaSegment{
			Marker:  s.marker,
			Payload: out.metaBuf[s.start:s.end:s.end],
		})
	}
	return nil
}

// classifySampling maps a 3-component frame's sampling factors onto the
// named chroma layouts. Anything outside the common matrix — including
// layouts where the chroma components disagree — reports SubOther;
// decode and requantize handle those too, the label is informational.
func classifySampling(comps []*component) Subsampling {
	if comps[1].h != 1 || comps[1].v != 1 || comps[2].h != 1 || comps[2].v != 1 {
		return SubOther
	}
	switch [2]int{comps[0].h, comps[0].v} {
	case [2]int{1, 1}:
		return Sub444
	case [2]int{2, 2}:
		return Sub420
	case [2]int{2, 1}:
		return Sub422
	case [2]int{1, 2}:
		return Sub440
	case [2]int{4, 1}:
		return Sub411
	}
	return SubOther
}
