package jpegcodec

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"repro/internal/bitio"
	"repro/internal/imgutil"
	"repro/internal/qtable"
)

// Decoded holds the result of decoding a baseline JPEG stream together
// with the coding metadata the DeepN-JPEG tooling inspects.
type Decoded struct {
	W, H       int
	Components int // 1 (grayscale) or 3 (YCbCr)

	// Per-component planes at their coded (possibly subsampled) size.
	planes [3]struct {
		w, h int
		pix  []uint8
	}
	coefs   [3][][64]int32 // quantized coefficients in block-row order
	blocksX [3]int
	blocksY [3]int

	// QuantTables holds the dequantization tables by table id.
	QuantTables map[int]qtable.Table
	// Sampling describes the chroma layout of 3-component images.
	Sampling Subsampling
	// RestartInterval is the parsed DRI value (0 when absent).
	RestartInterval int
}

// Gray returns the luma plane.
func (d *Decoded) Gray() *imgutil.Gray {
	g := imgutil.NewGray(d.planes[0].w, d.planes[0].h)
	copy(g.Pix, d.planes[0].pix)
	return g
}

// Coefficients returns the quantized DCT coefficients of component i in
// natural order, along with the MCU-padded block-grid dimensions. Blocks
// are stored row-major (by*blocksX + bx).
func (d *Decoded) Coefficients(i int) (blocks [][64]int32, blocksX, blocksY int) {
	return d.coefs[i], d.blocksX[i], d.blocksY[i]
}

// RGB reconstructs a full-resolution color image, upsampling chroma when
// needed. Grayscale sources replicate luma.
func (d *Decoded) RGB() *imgutil.RGB {
	if d.Components == 1 {
		return d.Gray().ToRGB()
	}
	p := &imgutil.Planes{W: d.W, H: d.H, Y: d.planes[0].pix}
	if d.planes[1].w == d.W && d.planes[1].h == d.H {
		p.Cb = d.planes[1].pix
		p.Cr = d.planes[2].pix
	} else {
		p.Cb = imgutil.Upsample2x2(d.planes[1].pix, d.planes[1].w, d.planes[1].h, d.W, d.H)
		p.Cr = imgutil.Upsample2x2(d.planes[2].pix, d.planes[2].w, d.planes[2].h, d.W, d.H)
	}
	return p.ToRGB()
}

// decoder carries parsing state.
type decoder struct {
	br    *bufio.Reader
	quant map[int]qtable.Table
	huff  [8]*decTable // index: class<<2 | id (baseline allows ids 0–3)
	comps []*component
	w, h  int
	ri    int // restart interval in MCUs
}

// Decode parses a baseline sequential JFIF/JPEG stream. Progressive and
// arithmetic-coded streams are rejected with an error.
func Decode(r io.Reader) (*Decoded, error) {
	br := bufrPool.Get().(*bufio.Reader)
	br.Reset(r)
	defer func() {
		br.Reset(eofReader{}) // drop the caller's reader before pooling
		bufrPool.Put(br)
	}()
	d := &decoder{
		br:    br,
		quant: map[int]qtable.Table{},
	}
	return d.run()
}

func (d *decoder) run() (*Decoded, error) {
	m, err := d.readMarkerByte()
	if err != nil {
		return nil, err
	}
	if m != mSOI {
		return nil, fmt.Errorf("jpegcodec: missing SOI, found %#02x", m)
	}
	for {
		m, err := d.readMarkerByte()
		if err != nil {
			return nil, err
		}
		switch {
		case m == mSOF0 || m == mSOF1:
			if err := d.parseSOF(); err != nil {
				return nil, err
			}
		case m == mSOF2:
			return nil, errors.New("jpegcodec: progressive JPEG not supported")
		case m >= 0xC3 && m <= 0xCF && m != mDHT && m != 0xC8:
			return nil, fmt.Errorf("jpegcodec: unsupported frame type %#02x", m)
		case m == mDQT:
			if err := d.parseDQT(); err != nil {
				return nil, err
			}
		case m == mDHT:
			if err := d.parseDHT(); err != nil {
				return nil, err
			}
		case m == mDRI:
			if err := d.parseDRI(); err != nil {
				return nil, err
			}
		case m == mSOS:
			if err := d.parseSOSAndScan(); err != nil {
				return nil, err
			}
			return d.finish()
		case m == mEOI:
			return nil, errors.New("jpegcodec: EOI before scan data")
		case m == mSOI:
			return nil, errors.New("jpegcodec: unexpected second SOI")
		default:
			// APPn, COM and anything else with a length field: skip.
			if err := d.skipSegment(); err != nil {
				return nil, err
			}
		}
	}
}

// readMarkerByte scans for the next 0xFF <code> pair, tolerating fill bytes.
func (d *decoder) readMarkerByte() (byte, error) {
	b, err := d.br.ReadByte()
	if err != nil {
		return 0, err
	}
	if b != 0xFF {
		return 0, fmt.Errorf("jpegcodec: expected marker, found %#02x", b)
	}
	for b == 0xFF {
		b, err = d.br.ReadByte()
		if err != nil {
			return 0, err
		}
	}
	return b, nil
}

func (d *decoder) segmentPayload() ([]byte, error) {
	var lenBuf [2]byte
	if _, err := io.ReadFull(d.br, lenBuf[:]); err != nil {
		return nil, err
	}
	n := int(lenBuf[0])<<8 | int(lenBuf[1])
	if n < 2 {
		return nil, fmt.Errorf("jpegcodec: segment length %d too small", n)
	}
	payload := make([]byte, n-2)
	if _, err := io.ReadFull(d.br, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

func (d *decoder) skipSegment() error {
	_, err := d.segmentPayload()
	return err
}

func (d *decoder) parseDQT() error {
	p, err := d.segmentPayload()
	if err != nil {
		return err
	}
	for len(p) > 0 {
		pq := int(p[0] >> 4)
		tq := int(p[0] & 0x0F)
		p = p[1:]
		var zz [64]uint16
		switch pq {
		case 0:
			if len(p) < 64 {
				return errors.New("jpegcodec: truncated 8-bit DQT")
			}
			for i := 0; i < 64; i++ {
				zz[i] = uint16(p[i])
			}
			p = p[64:]
		case 1:
			if len(p) < 128 {
				return errors.New("jpegcodec: truncated 16-bit DQT")
			}
			for i := 0; i < 64; i++ {
				zz[i] = uint16(p[2*i])<<8 | uint16(p[2*i+1])
			}
			p = p[128:]
		default:
			return fmt.Errorf("jpegcodec: bad DQT precision %d", pq)
		}
		d.quant[tq] = qtable.FromZigZag(zz)
	}
	return nil
}

func (d *decoder) parseDHT() error {
	p, err := d.segmentPayload()
	if err != nil {
		return err
	}
	for len(p) > 0 {
		if len(p) < 17 {
			return errors.New("jpegcodec: truncated DHT")
		}
		tc := int(p[0] >> 4)
		th := int(p[0] & 0x0F)
		if tc > 1 {
			return fmt.Errorf("jpegcodec: bad huffman class %d", tc)
		}
		if th > 3 {
			return fmt.Errorf("jpegcodec: huffman table id %d exceeds baseline limit 3", th)
		}
		var spec HuffmanSpec
		total := 0
		for i := 0; i < 16; i++ {
			spec.Counts[i] = p[1+i]
			total += int(p[1+i])
		}
		if len(p) < 17+total {
			return errors.New("jpegcodec: truncated DHT values")
		}
		spec.Values = append([]uint8(nil), p[17:17+total]...)
		p = p[17+total:]
		tab, err := buildDecTable(&spec)
		if err != nil {
			return err
		}
		d.huff[tc<<2|th] = tab
	}
	return nil
}

func (d *decoder) parseDRI() error {
	p, err := d.segmentPayload()
	if err != nil {
		return err
	}
	if len(p) != 2 {
		return errors.New("jpegcodec: bad DRI length")
	}
	d.ri = int(p[0])<<8 | int(p[1])
	return nil
}

func (d *decoder) parseSOF() error {
	p, err := d.segmentPayload()
	if err != nil {
		return err
	}
	if len(p) < 6 {
		return errors.New("jpegcodec: truncated SOF")
	}
	if p[0] != 8 {
		return fmt.Errorf("jpegcodec: unsupported sample precision %d", p[0])
	}
	d.h = int(p[1])<<8 | int(p[2])
	d.w = int(p[3])<<8 | int(p[4])
	n := int(p[5])
	if n != 1 && n != 3 {
		return fmt.Errorf("jpegcodec: unsupported component count %d", n)
	}
	if d.w == 0 || d.h == 0 {
		return errors.New("jpegcodec: zero frame dimensions")
	}
	if len(p) < 6+3*n {
		return errors.New("jpegcodec: truncated SOF components")
	}
	for i := 0; i < n; i++ {
		c := &component{
			id: p[6+3*i],
			h:  int(p[7+3*i] >> 4),
			v:  int(p[7+3*i] & 0x0F),
			tq: int(p[8+3*i]),
		}
		if c.h < 1 || c.h > 4 || c.v < 1 || c.v > 4 {
			return fmt.Errorf("jpegcodec: bad sampling factors %dx%d", c.h, c.v)
		}
		d.comps = append(d.comps, c)
	}
	return nil
}

// receiveExtend implements the RECEIVE+EXTEND procedure (T.81 F.2.2.1):
// read s magnitude bits and sign-extend per the JPEG convention.
func receiveExtend(br *bitio.Reader, s int) (int32, error) {
	if s == 0 {
		return 0, nil
	}
	bits, err := br.ReadBits(uint(s))
	if err != nil {
		return 0, err
	}
	v := int32(bits)
	if v < 1<<(s-1) {
		v -= (1 << s) - 1
	}
	return v, nil
}

func (d *decoder) parseSOSAndScan() error {
	if d.comps == nil {
		return errors.New("jpegcodec: SOS before SOF")
	}
	p, err := d.segmentPayload()
	if err != nil {
		return err
	}
	if len(p) < 1 {
		return errors.New("jpegcodec: truncated SOS")
	}
	ns := int(p[0])
	if ns != len(d.comps) {
		return fmt.Errorf("jpegcodec: scan has %d components, frame has %d (partial scans unsupported)", ns, len(d.comps))
	}
	if len(p) < 1+2*ns+3 {
		return errors.New("jpegcodec: truncated SOS payload")
	}
	for i := 0; i < ns; i++ {
		cs := p[1+2*i]
		var c *component
		for _, cand := range d.comps {
			if cand.id == cs {
				c = cand
				break
			}
		}
		if c == nil {
			return fmt.Errorf("jpegcodec: scan references unknown component %d", cs)
		}
		c.td = int(p[2+2*i] >> 4)
		c.ta = int(p[2+2*i] & 0x0F)
		if c.td > 3 || c.ta > 3 {
			return fmt.Errorf("jpegcodec: huffman table ids %d/%d exceed baseline limit 3", c.td, c.ta)
		}
	}
	ss, se := p[1+2*ns], p[2+2*ns]
	if ss != 0 || se != 63 {
		return fmt.Errorf("jpegcodec: spectral selection %d..%d unsupported (baseline only)", ss, se)
	}

	maxH, maxV := 1, 1
	for _, c := range d.comps {
		maxH = max(maxH, c.h)
		maxV = max(maxV, c.v)
	}
	mcusX := (d.w + 8*maxH - 1) / (8 * maxH)
	mcusY := (d.h + 8*maxV - 1) / (8 * maxV)
	for _, c := range d.comps {
		c.w = (d.w*c.h + maxH - 1) / maxH
		c.hgt = (d.h*c.v + maxV - 1) / maxV
		c.pix = make([]uint8, c.w*c.hgt)
		c.blocksX = mcusX * c.h
		c.blocksY = mcusY * c.v
		c.coefs = make([][64]int32, c.blocksX*c.blocksY)
		tbl, ok := d.quant[c.tq]
		if !ok {
			return fmt.Errorf("jpegcodec: missing quantization table %d", c.tq)
		}
		c.table = tbl
	}

	br := bitio.NewReader(d.br)
	prevDC := map[*component]int32{}
	var tile [64]uint8
	mcu := 0
	for my := 0; my < mcusY; my++ {
		for mx := 0; mx < mcusX; mx++ {
			if d.ri > 0 && mcu > 0 && mcu%d.ri == 0 {
				m, err := br.ReadMarker()
				if err != nil {
					return fmt.Errorf("jpegcodec: reading restart marker: %w", err)
				}
				if m < mRST0 || m > mRST0+7 {
					return fmt.Errorf("jpegcodec: expected RSTn, found %#02x", m)
				}
				for _, c := range d.comps {
					prevDC[c] = 0
				}
			}
			for _, c := range d.comps {
				dcTab := d.huff[0<<2|c.td]
				acTab := d.huff[1<<2|c.ta]
				if dcTab == nil || acTab == nil {
					return fmt.Errorf("jpegcodec: missing huffman tables %d/%d", c.td, c.ta)
				}
				for vy := 0; vy < c.v; vy++ {
					for vx := 0; vx < c.h; vx++ {
						coefs, err := decodeBlock(br, dcTab, acTab, prevDC[c])
						if err != nil {
							return err
						}
						prevDC[c] = coefs[0]
						bx, by := mx*c.h+vx, my*c.v+vy
						c.coefs[by*c.blocksX+bx] = coefs
						reconstructBlock(&coefs, &c.table, &tile)
						imgutil.StoreBlock(c.pix, c.w, c.hgt, bx, by, &tile)
					}
				}
			}
			mcu++
		}
	}
	// Consume the trailing EOI (tolerate a missing one).
	if m, err := br.ReadMarker(); err == nil && m != mEOI {
		// DNL or other trailing markers are ignored.
		_ = m
	}
	return nil
}

// decodeBlock entropy-decodes one block into natural-order coefficients.
func decodeBlock(br *bitio.Reader, dcTab, acTab *decTable, prevDC int32) ([64]int32, error) {
	var coefs [64]int32
	s, err := dcTab.decode(br)
	if err != nil {
		return coefs, err
	}
	diff, err := receiveExtend(br, int(s))
	if err != nil {
		return coefs, err
	}
	coefs[0] = prevDC + diff
	for z := 1; z < 64; {
		sym, err := acTab.decode(br)
		if err != nil {
			return coefs, err
		}
		run, size := int(sym>>4), int(sym&0x0F)
		switch {
		case size == 0 && run == 0: // EOB
			return coefs, nil
		case size == 0 && run == 15: // ZRL
			z += 16
		case size == 0:
			return coefs, fmt.Errorf("jpegcodec: invalid AC symbol %#02x", sym)
		default:
			z += run
			if z > 63 {
				return coefs, errors.New("jpegcodec: AC run overflows block")
			}
			v, err := receiveExtend(br, size)
			if err != nil {
				return coefs, err
			}
			coefs[qtable.ZigZagOrder[z]] = v
			z++
		}
	}
	return coefs, nil
}

func (d *decoder) finish() (*Decoded, error) {
	out := &Decoded{
		W:               d.w,
		H:               d.h,
		Components:      len(d.comps),
		QuantTables:     d.quant,
		RestartInterval: d.ri,
	}
	if len(d.comps) == 3 {
		if d.comps[0].h == 2 && d.comps[0].v == 2 {
			out.Sampling = Sub420
		} else {
			out.Sampling = Sub444
		}
	}
	for i, c := range d.comps {
		out.planes[i].w = c.w
		out.planes[i].h = c.hgt
		out.planes[i].pix = c.pix
		out.coefs[i] = c.coefs
		out.blocksX[i] = c.blocksX
		out.blocksY[i] = c.blocksY
	}
	return out, nil
}
