package jpegcodec

// Restart-interval correctness and sharded-entropy-coding tests: the
// matrix round-trips, the sharded-vs-sequential equivalence properties,
// and regression tests for the three restart-marker bugs (requantize
// dropping DRI, DRI 16-bit truncation, unchecked RSTn sequence).

import (
	"bytes"
	"fmt"
	"image/jpeg"
	"strings"
	"testing"

	"repro/internal/qtable"
)

// parseDRIValue scans a JPEG stream's marker segments and returns the
// DRI interval (0 when no DRI segment is present). It walks the header
// only — entropy data never starts before SOS.
func parseDRIValue(t *testing.T, stream []byte) int {
	t.Helper()
	i := 2 // past SOI
	for i+4 <= len(stream) {
		if stream[i] != 0xFF {
			t.Fatalf("marker scan desynced at %d: %#02x", i, stream[i])
		}
		code := stream[i+1]
		if code == mSOS {
			return 0
		}
		n := int(stream[i+2])<<8 | int(stream[i+3])
		if code == mDRI {
			if n != 4 {
				t.Fatalf("DRI segment length %d", n)
			}
			return int(stream[i+4])<<8 | int(stream[i+5])
		}
		i += 2 + n
	}
	t.Fatalf("no SOS in stream")
	return 0
}

// restartMarkerOffsets returns the byte offsets of the RSTn codes (the
// byte after 0xFF) inside the stream's entropy-coded data, in order.
// Entropy data never contains a bare 0xFF (the coder stuffs 0x00), so
// every 0xFF RSTn pair inside the scan is a real restart marker.
func restartMarkerOffsets(t *testing.T, stream []byte) []int {
	t.Helper()
	// Skip the header segments to the start of entropy data.
	i := 2
	for {
		if i+4 > len(stream) {
			t.Fatalf("no SOS in stream")
		}
		code := stream[i+1]
		n := int(stream[i+2])<<8 | int(stream[i+3])
		i += 2 + n
		if code == mSOS {
			break
		}
	}
	var offs []int
	for ; i+1 < len(stream); i++ {
		if stream[i] != 0xFF {
			continue
		}
		b := stream[i+1]
		if b >= mRST0 && b <= mRST0+7 {
			offs = append(offs, i+1)
		}
	}
	return offs
}

// decodedEqual compares geometry, pixels (both output paths) and raw
// coefficients of two decodes.
func decodedEqual(t *testing.T, want, got *Decoded, label string) {
	t.Helper()
	if want.W != got.W || want.H != got.H || want.Components != got.Components ||
		want.RestartInterval != got.RestartInterval {
		t.Fatalf("%s: geometry (%d,%d,%d,ri=%d) vs (%d,%d,%d,ri=%d)", label,
			want.W, want.H, want.Components, want.RestartInterval,
			got.W, got.H, got.Components, got.RestartInterval)
	}
	if !bytes.Equal(want.RGB().Pix, got.RGB().Pix) {
		t.Fatalf("%s: RGB pixels differ", label)
	}
	for i := 0; i < want.Components; i++ {
		wc, wx, wy := want.Coefficients(i)
		gc, gx, gy := got.Coefficients(i)
		if wx != gx || wy != gy || len(wc) != len(gc) {
			t.Fatalf("%s: component %d grid %dx%d (%d) vs %dx%d (%d)", label, i, wx, wy, len(wc), gx, gy, len(gc))
		}
		for b := range wc {
			if wc[b] != gc[b] {
				t.Fatalf("%s: component %d block %d coefficients differ", label, i, b)
			}
		}
	}
}

// restartLayouts enumerates the stream shapes of the test matrix.
type restartLayout struct {
	name string
	enc  func(t *testing.T, opts *Options) []byte
}

func restartLayouts(w, h int) []restartLayout {
	return []restartLayout{
		{"gray", func(t *testing.T, opts *Options) []byte {
			var buf bytes.Buffer
			if err := EncodeGray(&buf, testImageGray(w, h, 7), opts); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}},
		{"rgb420", func(t *testing.T, opts *Options) []byte {
			o := *opts
			o.Subsampling = Sub420
			return encodeToBytes(t, testImageRGB(w, h, 7), &o)
		}},
		{"rgb444", func(t *testing.T, opts *Options) []byte {
			o := *opts
			o.Subsampling = Sub444
			return encodeToBytes(t, testImageRGB(w, h, 7), &o)
		}},
	}
}

func decodeAll(t *testing.T, stream []byte, opts *DecodeOptions) *Decoded {
	t.Helper()
	var dec Decoded
	if err := DecodeInto(bytes.NewReader(stream), &dec, opts); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return &dec
}

// TestRestartIntervalMatrix round-trips restart intervals across layout ×
// transform engine × Huffman mode: the restart stream must carry its DRI,
// decode to exactly the pixels and coefficients of the same encode
// without restarts, and stay readable by the stdlib decoder.
func TestRestartIntervalMatrix(t *testing.T) {
	const w, h = 64, 48 // 420: 12 MCUs, 444/gray: 48 MCUs
	for _, layout := range restartLayouts(w, h) {
		for _, xf := range bothEngines {
			for _, optimize := range []bool{false, true} {
				base := layout.enc(t, &Options{Transform: xf, OptimizeHuffman: optimize})
				ref := decodeAll(t, base, nil)
				for _, ri := range []int{1, 2, 5, 7, 100} {
					name := fmt.Sprintf("%s/%s/opt=%v/ri=%d", layout.name, xf, optimize, ri)
					stream := layout.enc(t, &Options{Transform: xf, OptimizeHuffman: optimize, RestartInterval: ri})
					if got := parseDRIValue(t, stream); got != ri {
						t.Fatalf("%s: DRI %d", name, got)
					}
					dec := decodeAll(t, stream, nil)
					if dec.RestartInterval != ri {
						t.Fatalf("%s: decoded RestartInterval %d", name, dec.RestartInterval)
					}
					// Restart markers change stream framing, never content.
					if !bytes.Equal(ref.RGB().Pix, dec.RGB().Pix) {
						t.Fatalf("%s: pixels differ from the ri=0 encode", name)
					}
					// Interop: the stdlib decoder must accept the stream.
					cfg, err := jpeg.DecodeConfig(bytes.NewReader(stream))
					if err != nil || cfg.Width != w || cfg.Height != h {
						t.Fatalf("%s: stdlib DecodeConfig %v %dx%d", name, err, cfg.Width, cfg.Height)
					}
					if _, err := jpeg.Decode(bytes.NewReader(stream)); err != nil {
						t.Fatalf("%s: stdlib decode: %v", name, err)
					}
				}
			}
		}
	}
}

// TestShardedEncodeByteIdentical is the encode-side equivalence
// property: for every layout, engine, Huffman mode and worker count, the
// sharded writer must emit exactly the sequential writer's bytes.
func TestShardedEncodeByteIdentical(t *testing.T) {
	const w, h = 120, 88 // 420: 8×6 = 48 MCUs
	for _, layout := range restartLayouts(w, h) {
		for _, xf := range bothEngines {
			for _, optimize := range []bool{false, true} {
				for _, ri := range []int{1, 3, 8} {
					seq := layout.enc(t, &Options{Transform: xf, OptimizeHuffman: optimize,
						RestartInterval: ri, ShardWorkers: 1})
					for _, workers := range []int{2, 3, 16} {
						sharded := layout.enc(t, &Options{Transform: xf, OptimizeHuffman: optimize,
							RestartInterval: ri, ShardWorkers: workers})
						if !bytes.Equal(seq, sharded) {
							t.Fatalf("%s/%s/opt=%v/ri=%d: %d-worker stream differs from sequential (%d vs %d bytes)",
								layout.name, xf, optimize, ri, workers, len(seq), len(sharded))
						}
					}
				}
			}
		}
	}
}

// TestShardedDecodeMatchesSequential is the decode-side equivalence
// property: the sharded decoder must produce identical pixels and
// coefficients for every stream the sequential decoder accepts.
func TestShardedDecodeMatchesSequential(t *testing.T) {
	const w, h = 120, 88
	for _, layout := range restartLayouts(w, h) {
		for _, ri := range []int{1, 3, 8} {
			stream := layout.enc(t, &Options{RestartInterval: ri})
			seq := decodeAll(t, stream, &DecodeOptions{ShardWorkers: 1})
			for _, workers := range []int{2, 3, 16} {
				sharded := decodeAll(t, stream, &DecodeOptions{ShardWorkers: workers})
				decodedEqual(t, seq, sharded, fmt.Sprintf("%s/ri=%d/workers=%d", layout.name, ri, workers))
			}
		}
	}
}

// TestShardedRequantizeByteIdentical closes the loop on the third
// encode entry point: requantization with sharding enabled emits the
// sequential bytes too.
func TestShardedRequantizeByteIdentical(t *testing.T) {
	stream := encodeToBytes(t, testImageRGB(96, 80, 11), &Options{RestartInterval: 2})
	dec := decodeAll(t, stream, nil)
	luma := qtable.MustScale(qtable.StdLuminance, 70)
	chroma := qtable.MustScale(qtable.StdChrominance, 70)
	var seq, sharded bytes.Buffer
	if err := Requantize(&seq, dec, luma, chroma, &Options{ShardWorkers: 1, OptimizeHuffman: true}); err != nil {
		t.Fatal(err)
	}
	if err := Requantize(&sharded, dec, luma, chroma, &Options{ShardWorkers: 4, OptimizeHuffman: true}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq.Bytes(), sharded.Bytes()) {
		t.Fatalf("sharded requantize differs from sequential (%d vs %d bytes)", seq.Len(), sharded.Len())
	}
}

// TestShardWorkersFor pins the knob semantics: auto thresholds, forced
// sequential, and the segment-count cap.
func TestShardWorkersFor(t *testing.T) {
	cases := []struct {
		requested, restart, total int
		want                      int
	}{
		{4, 0, 100000, 1},        // no restart interval: sequential
		{4, 100000, 100000, 1},   // single segment: sequential
		{1, 2, 100000, 1},        // explicit sequential
		{-3, 2, 100000, 1},       // negative: sequential
		{0, 2, 100, 1},           // auto on a small frame: sequential
		{4, 2, 100, 4},           // forced workers override the auto threshold
		{4, 2, 6, 3},             // capped at the segment count
		{2, 1 << 20, 1 << 21, 2}, // huge interval, two segments
	}
	for _, c := range cases {
		if got := shardWorkersFor(c.requested, c.restart, c.total); got != c.want {
			t.Errorf("shardWorkersFor(%d, %d, %d) = %d, want %d",
				c.requested, c.restart, c.total, got, c.want)
		}
	}
	// Auto on a large frame resolves to at least one worker and never
	// exceeds the segment count (the exact value is GOMAXPROCS-bound).
	if got := shardWorkersFor(0, 2, autoShardMinMCUs); got < 1 || got > autoShardMinMCUs/2 {
		t.Errorf("auto shardWorkersFor = %d out of range", got)
	}
}

// TestRequantizePreservesRestartInterval is the regression test for the
// transcoding bug: Requantize silently dropped the source stream's DRI.
func TestRequantizePreservesRestartInterval(t *testing.T) {
	luma := qtable.MustScale(qtable.StdLuminance, 70)
	chroma := qtable.MustScale(qtable.StdChrominance, 70)
	requant := func(dec *Decoded, opts *Options) []byte {
		t.Helper()
		var buf bytes.Buffer
		if err := Requantize(&buf, dec, luma, chroma, opts); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	src := encodeToBytes(t, testImageRGB(64, 48, 3), &Options{RestartInterval: 4})
	dec := decodeAll(t, src, nil)

	// Default: the source's interval survives the transcode, in the DRI
	// golden bytes and in a full re-decode.
	out := requant(dec, nil)
	if got := parseDRIValue(t, out); got != 4 {
		t.Fatalf("requantize dropped the restart interval: DRI %d, want 4", got)
	}
	if back := decodeAll(t, out, nil); back.RestartInterval != 4 {
		t.Fatalf("re-decoded RestartInterval %d, want 4", back.RestartInterval)
	}
	if got := len(restartMarkerOffsets(t, out)); got != 2 { // 12 MCUs / ri 4 → 3 segments
		t.Fatalf("requantized stream has %d restart markers, want 2", got)
	}

	// Positive override replaces the interval.
	if got := parseDRIValue(t, requant(dec, &Options{RestartInterval: 2})); got != 2 {
		t.Fatalf("override DRI %d, want 2", got)
	}
	// Negative strips restart markers entirely.
	stripped := requant(dec, &Options{RestartInterval: -1})
	if got := parseDRIValue(t, stripped); got != 0 {
		t.Fatalf("strip left DRI %d", got)
	}
	if got := len(restartMarkerOffsets(t, stripped)); got != 0 {
		t.Fatalf("strip left %d restart markers", got)
	}
	// A source without restarts stays without them.
	plain := decodeAll(t, encodeToBytes(t, testImageRGB(64, 48, 3), nil), nil)
	if got := parseDRIValue(t, requant(plain, nil)); got != 0 {
		t.Fatalf("restart-free source gained DRI %d", got)
	}
}

// TestRestartIntervalValidation is the regression test for the DRI
// truncation bug: intervals outside the 16-bit range used to emit a
// DRI header disagreeing with actual marker placement; now they error.
func TestRestartIntervalValidation(t *testing.T) {
	img := testImageRGB(32, 32, 5)
	for _, ri := range []int{-1, 0x10000, 1 << 20} {
		var buf bytes.Buffer
		err := EncodeRGB(&buf, img, &Options{RestartInterval: ri})
		if err == nil || !strings.Contains(err.Error(), "restart interval") {
			t.Fatalf("RestartInterval %d: err %v, want restart-interval validation error", ri, err)
		}
	}
	// Requantize validates the override the same way.
	dec := decodeAll(t, encodeToBytes(t, img, nil), nil)
	var buf bytes.Buffer
	err := Requantize(&buf, dec, qtable.StdLuminance, qtable.StdChrominance, &Options{RestartInterval: 0x10000})
	if err == nil || !strings.Contains(err.Error(), "restart interval") {
		t.Fatalf("requantize RestartInterval 65536: err %v", err)
	}
	// The boundary value 65535 is representable and round-trips; with
	// fewer MCUs than the interval no marker is ever emitted, but the
	// declared interval survives.
	buf.Reset()
	if err := EncodeRGB(&buf, img, &Options{RestartInterval: 0xFFFF}); err != nil {
		t.Fatal(err)
	}
	if got := parseDRIValue(t, buf.Bytes()); got != 0xFFFF {
		t.Fatalf("DRI %d, want 65535", got)
	}
	if dec := decodeAll(t, buf.Bytes(), nil); dec.RestartInterval != 0xFFFF {
		t.Fatalf("decoded RestartInterval %d, want 65535", dec.RestartInterval)
	}
}

// TestRestartMarkerSequenceValidation is the regression test for the
// unchecked-RSTn bug: a marker outside the D0..D7 cycle means the stream
// lost or reordered segments, and both decode paths must reject it
// instead of resynchronizing onto garbage.
func TestRestartMarkerSequenceValidation(t *testing.T) {
	stream := encodeToBytes(t, testImageRGB(96, 80, 9), &Options{RestartInterval: 1})
	offs := restartMarkerOffsets(t, stream)
	if len(offs) < 9 {
		t.Fatalf("test stream has only %d restart markers", len(offs))
	}
	// Sanity: the untampered stream decodes on both paths.
	decodeAll(t, stream, &DecodeOptions{ShardWorkers: 1})
	decodeAll(t, stream, &DecodeOptions{ShardWorkers: 4})

	for _, tamper := range []struct {
		name string
		at   int // marker position to corrupt
		code byte
	}{
		{"first-marker-wrong-index", 0, mRST0 + 5},
		{"mid-marker-repeats", 3, mRST0 + 2}, // position 3 expects RST3
		{"cycle-break-after-wrap", 8, mRST0}, // position 8 expects RST0 again — give RST1
	} {
		bad := bytes.Clone(stream)
		code := tamper.code
		if tamper.name == "cycle-break-after-wrap" {
			code = mRST0 + 1
		}
		bad[offs[tamper.at]] = code
		for _, workers := range []int{1, 4} {
			var dec Decoded
			err := DecodeInto(bytes.NewReader(bad), &dec, &DecodeOptions{ShardWorkers: workers})
			if err == nil || !strings.Contains(err.Error(), "expected RST") {
				t.Fatalf("%s (workers=%d): err %v, want RST-sequence error", tamper.name, workers, err)
			}
		}
	}
}

// TestShardedAcceptanceMatchesSequential feeds both decode paths a set
// of adversarial restart streams: whatever one path does (accept or
// reject), the other must do the same.
func TestShardedAcceptanceMatchesSequential(t *testing.T) {
	base := encodeToBytes(t, testImageRGB(96, 80, 13), &Options{RestartInterval: 2})
	offs := restartMarkerOffsets(t, base)
	if len(offs) < 3 {
		t.Fatalf("test stream has only %d restart markers", len(offs))
	}
	variants := map[string][]byte{"intact": base}
	// Truncate inside a middle segment.
	variants["truncated-segment"] = base[:offs[1]+(len(base)-offs[1])/2]
	// Swap two adjacent restart markers.
	swapped := bytes.Clone(base)
	swapped[offs[0]], swapped[offs[1]] = swapped[offs[1]], swapped[offs[0]]
	variants["swapped-markers"] = swapped
	// Overwrite a restart marker with a non-restart marker code.
	eoied := bytes.Clone(base)
	eoied[offs[1]] = mEOI
	variants["early-eoi"] = eoied
	// Garbage injected right before a restart marker (trailing bytes in
	// that segment).
	injected := append(bytes.Clone(base[:offs[2]-1]), 0x55, 0xAA)
	injected = append(injected, base[offs[2]-1:]...)
	variants["segment-trailing-garbage"] = injected
	// Bit flips in entropy data.
	for _, off := range []int{offs[0] + 5, offs[1] + 9} {
		flipped := bytes.Clone(base)
		flipped[off] ^= 0x10
		variants[fmt.Sprintf("bitflip@%d", off)] = flipped
	}

	for name, data := range variants {
		var seq, sharded Decoded
		seqErr := DecodeInto(bytes.NewReader(data), &seq, &DecodeOptions{ShardWorkers: 1})
		shardErr := DecodeInto(bytes.NewReader(data), &sharded, &DecodeOptions{ShardWorkers: 4})
		if (seqErr == nil) != (shardErr == nil) {
			t.Fatalf("%s: sequential err=%v, sharded err=%v", name, seqErr, shardErr)
		}
		if seqErr == nil {
			decodedEqual(t, &seq, &sharded, name)
		}
	}
}

// TestShardedDecodeGrayAndChromaPlanes exercises the sharded store paths
// on subsampled planes explicitly: every plane byte must match the
// sequential decode, not just the upsampled RGB view.
func TestShardedDecodeGrayAndChromaPlanes(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeGray(&buf, testImageGray(104, 72, 21), &Options{RestartInterval: 3}); err != nil {
		t.Fatal(err)
	}
	seq := decodeAll(t, buf.Bytes(), &DecodeOptions{ShardWorkers: 1})
	sharded := decodeAll(t, buf.Bytes(), &DecodeOptions{ShardWorkers: 8})
	if !bytes.Equal(seq.Gray().Pix, sharded.Gray().Pix) {
		t.Fatal("gray planes differ")
	}

	stream := encodeToBytes(t, testImageRGB(104, 72, 21), &Options{RestartInterval: 3, Subsampling: Sub420})
	s2 := decodeAll(t, stream, &DecodeOptions{ShardWorkers: 1})
	p2 := decodeAll(t, stream, &DecodeOptions{ShardWorkers: 8})
	decodedEqual(t, s2, p2, "rgb420-planes")
	if !bytes.Equal(s2.Gray().Pix, p2.Gray().Pix) {
		t.Fatal("luma planes differ")
	}
}

// TestShardedInteropStdlib cross-checks the sharded decoder against the
// stdlib on restart streams: identical acceptance and near-identical
// pixels (stdlib rounds its IDCT differently).
func TestShardedInteropStdlib(t *testing.T) {
	stream := encodeToBytes(t, testImageRGB(96, 80, 17), &Options{RestartInterval: 2})
	std, err := jpeg.Decode(bytes.NewReader(stream))
	if err != nil {
		t.Fatalf("stdlib: %v", err)
	}
	sharded := decodeAll(t, stream, &DecodeOptions{ShardWorkers: 4})
	b := std.Bounds()
	if b.Dx() != sharded.W || b.Dy() != sharded.H {
		t.Fatalf("stdlib %dx%d vs sharded %dx%d", b.Dx(), b.Dy(), sharded.W, sharded.H)
	}
	// And a stdlib-encoded restart stream must decode on the sharded path.
	ref := testImageRGB(96, 80, 17)
	var stdBuf bytes.Buffer
	if err := jpeg.Encode(&stdBuf, ref.ToImage(), &jpeg.Options{Quality: 80}); err != nil {
		t.Fatal(err)
	}
	// stdlib never emits restart markers, so splice in our own encode of
	// its decoded pixels instead: re-encode with restarts and compare the
	// two decode paths once more on that derived stream.
	derived := encodeToBytes(t, decodeAll(t, stdBuf.Bytes(), nil).RGB(), &Options{RestartInterval: 5})
	seq := decodeAll(t, derived, &DecodeOptions{ShardWorkers: 1})
	par := decodeAll(t, derived, &DecodeOptions{ShardWorkers: 4})
	decodedEqual(t, seq, par, "derived-stdlib-stream")
}
