// Package jpegcodec implements a complete baseline sequential JPEG
// (ITU-T T.81 / JFIF) encoder and decoder with full control over the
// quantization tables — the control DeepN-JPEG needs and that high-level
// libraries hide. It supports grayscale and YCbCr color images, the full
// baseline chroma-sampling matrix (4:4:4, 4:2:2, 4:2:0, 4:4:0 and 4:1:1
// on encode; any legal factor combination with full-resolution luma on
// decode and requantize), standard and per-image optimized Huffman
// tables, restart intervals, APPn/COM metadata recording and passthrough
// (EXIF, ICC, JFIF, comments), and the coefficient zero-masks used by
// the paper's RM-HF baseline.
//
// The decoder is built around a frame/scan split: a frame owns one
// full-image coefficient plane per component, each SOS accumulates
// coefficients into those planes — baseline interleaved, baseline
// non-interleaved, or progressive DC/AC first/refinement scans — and a
// single batched reconstruction stage turns the finished planes into
// pixels. Progressive (SOF2) streams therefore decode through the exact
// coefficient domain Requantize transcodes from, so progressive inputs
// re-emit as baseline output. Progressive encoding is not implemented;
// arithmetic-coded, lossless and hierarchical processes are rejected
// with UnsupportedFormatError.
package jpegcodec

import (
	"fmt"
	"math"

	"repro/internal/dct"
	"repro/internal/qtable"
)

// Marker codes (second byte, after 0xFF).
const (
	mSOI  = 0xD8 // start of image
	mEOI  = 0xD9 // end of image
	mSOF0 = 0xC0 // baseline DCT frame
	mSOF1 = 0xC1 // extended sequential DCT frame (Huffman)
	mSOF2 = 0xC2 // progressive DCT frame (Huffman)
	mDHT  = 0xC4 // define huffman table
	mDQT  = 0xDB // define quantization table
	mDRI  = 0xDD // define restart interval
	mSOS  = 0xDA // start of scan
	mAPP0 = 0xE0 // JFIF
	mCOM  = 0xFE // comment
	mRST0 = 0xD0 // restart markers D0..D7
	mTEM  = 0x01 // temporary private use (bare marker, no payload)
)

// UnsupportedFormatError reports a syntactically well-formed JPEG stream
// whose coding process this codec does not implement: the lossless,
// hierarchical/differential and arithmetic-coded frame families. The
// server maps it onto a distinct HTTP status (415) so clients can tell
// "valid JPEG we don't speak" apart from "corrupt input".
type UnsupportedFormatError struct {
	Marker byte   // the frame-family marker code (0xC3..0xCF)
	Name   string // human-readable marker name and coding process
}

func (e *UnsupportedFormatError) Error() string {
	return fmt.Sprintf("jpegcodec: unsupported coding process %s (marker %#02x)", e.Name, e.Marker)
}

// unsupportedFrameName names the frame-family markers the decoder
// recognizes but does not implement (T.81 table B.1).
func unsupportedFrameName(m byte) string {
	switch m {
	case 0xC3:
		return "SOF3 (lossless sequential, Huffman coding)"
	case 0xC5:
		return "SOF5 (differential sequential, Huffman coding)"
	case 0xC6:
		return "SOF6 (differential progressive, Huffman coding)"
	case 0xC7:
		return "SOF7 (differential lossless, Huffman coding)"
	case 0xC8:
		return "JPG (reserved for JPEG extensions)"
	case 0xC9:
		return "SOF9 (extended sequential, arithmetic coding)"
	case 0xCA:
		return "SOF10 (progressive, arithmetic coding)"
	case 0xCB:
		return "SOF11 (lossless, arithmetic coding)"
	case 0xCC:
		return "DAC (arithmetic conditioning)"
	case 0xCD:
		return "SOF13 (differential sequential, arithmetic coding)"
	case 0xCE:
		return "SOF14 (differential progressive, arithmetic coding)"
	case 0xCF:
		return "SOF15 (differential lossless, arithmetic coding)"
	}
	return fmt.Sprintf("marker %#02x", m)
}

// Subsampling selects the chroma layout of color images.
type Subsampling int

const (
	// Sub420 halves chroma in both dimensions (2×2 luma factors), the
	// layout used by virtually all consumer JPEGs and the zero-value
	// default of Options.
	Sub420 Subsampling = iota
	// Sub444 keeps chroma at full resolution (1×1 sampling factors).
	Sub444
	// Sub422 halves chroma horizontally only (2×1 luma factors), the
	// layout video-derived JPEGs and many cameras emit.
	Sub422
	// Sub440 halves chroma vertically only (1×2 luma factors), 4:2:2
	// rotated a quarter turn.
	Sub440
	// Sub411 quarters chroma horizontally (4×1 luma factors), the DV/
	// NTSC-heritage layout.
	Sub411
	// SubOther marks a decoded stream whose (legal) sampling factors fall
	// outside the named matrix above — for example non-1×1 chroma
	// factors. It is a decode-side classification only, not an encode
	// option; Requantize handles such streams through their recorded
	// per-component factors.
	SubOther
)

func (s Subsampling) String() string {
	switch s {
	case Sub444:
		return "4:4:4"
	case Sub420:
		return "4:2:0"
	case Sub422:
		return "4:2:2"
	case Sub440:
		return "4:4:0"
	case Sub411:
		return "4:1:1"
	case SubOther:
		return "other"
	default:
		return "unknown"
	}
}

// factors returns the luma sampling factors a Subsampling encodes with
// (chroma is always 1×1); ok is false for values that are not encode
// options (SubOther and out-of-range).
func (s Subsampling) factors() (h, v int, ok bool) {
	switch s {
	case Sub444:
		return 1, 1, true
	case Sub420:
		return 2, 2, true
	case Sub422:
		return 2, 1, true
	case Sub440:
		return 1, 2, true
	case Sub411:
		return 4, 1, true
	}
	return 0, 0, false
}

// ParseSubsampling maps the conventional J:a:b digit notation onto a
// Subsampling value — the parser behind every `-subsampling`/
// `?subsampling=` surface.
func ParseSubsampling(v string) (Subsampling, error) {
	switch v {
	case "444":
		return Sub444, nil
	case "422":
		return Sub422, nil
	case "420":
		return Sub420, nil
	case "440":
		return Sub440, nil
	case "411":
		return Sub411, nil
	}
	return 0, fmt.Errorf("jpegcodec: unknown subsampling %q (want 444, 422, 420, 440 or 411)", v)
}

// MetaSegment is one APPn or COM marker segment: the marker code and the
// segment body (without the two length bytes). The decoder records them
// in stream order on Decoded.Metadata; the encoder re-emits them after
// SOI via Options.Metadata, preserving the payload bytes exactly.
type MetaSegment struct {
	Marker  byte // mAPP0..mAPP0+15 (0xE0–0xEF) or mCOM (0xFE)
	Payload []byte
}

// maxSegmentPayload is the largest body a marker segment can carry: the
// length field is 16-bit and counts itself.
const maxSegmentPayload = 0xFFFF - 2

// isJFIFAPP0 reports whether a segment is a JFIF APP0 — the segment the
// encoder otherwise writes itself, and the one metadata passthrough must
// not duplicate.
func isJFIFAPP0(seg MetaSegment) bool {
	return seg.Marker == mAPP0 && len(seg.Payload) >= 5 && string(seg.Payload[:5]) == "JFIF\x00"
}

// Options configures the encoder. The zero value encodes 4:2:0 color with
// the Annex-K tables at QF 50 and standard Huffman tables.
type Options struct {
	// LumaTable and ChromaTable are the quantization tables. Zero-valued
	// tables default to the Annex-K references.
	LumaTable   qtable.Table
	ChromaTable qtable.Table
	// Subsampling selects the chroma layout for color input: Sub420
	// (default), Sub444, Sub422, Sub440 or Sub411.
	Subsampling Subsampling
	// Metadata carries APPn/COM segments to emit after SOI, in order.
	// Requantize fills it with the source stream's recorded segments so
	// EXIF/ICC/comments survive transcoding byte-identical; encode
	// callers may attach their own. When none of the segments is a JFIF
	// APP0 the encoder also writes its canonical one (first, as JFIF
	// requires); when one is, the canonical segment is suppressed so the
	// output carries exactly one APP0.
	Metadata []MetaSegment
	// StripMetadata opts Requantize out of metadata passthrough: the
	// output carries only the canonical JFIF APP0, as encode does. It
	// does not suppress explicitly attached Metadata.
	StripMetadata bool
	// OptimizeHuffman derives per-image Huffman tables (two-pass encode),
	// matching libjpeg's -optimize flag.
	OptimizeHuffman bool
	// ZeroMask forces the marked coefficients to zero before entropy
	// coding (the RM-HF scheme). Applies to all components.
	ZeroMask *qtable.ZeroMask
	// RestartInterval inserts RSTn markers every n MCUs when > 0. The
	// valid range is [0, 65535]: the DRI payload is a 16-bit MCU count,
	// so larger values cannot be represented and are rejected. In
	// Requantize, 0 inherits the source stream's interval and a negative
	// value strips restart markers from the output.
	RestartInterval int
	// ShardWorkers controls restart-interval sharded entropy coding, the
	// single-image parallelism lever. When RestartInterval > 0 every
	// restart segment is independently codable (the DC predictor resets
	// at each RSTn and segments start byte-aligned), so Huffman
	// statistics gathering and scan emission fan out across a worker
	// pool and the segment buffers are stitched back in order — the
	// output is byte-identical to the sequential path. 0 selects auto
	// mode (shard across GOMAXPROCS when the frame is large enough to
	// pay for the fan-out); 1 or any negative value forces sequential;
	// values ≥ 2 force that many workers, capped at the segment count.
	ShardWorkers int
	// Transform selects the block-transform engine for the forward DCT.
	// The zero value (dct.TransformNaive) keeps the separable row–column
	// path; dct.TransformAAN switches to the fast AAN butterfly. Both
	// engines produce identical streams after quantization (see the
	// transform equivalence tests).
	Transform dct.Transform
	// Scaled optionally carries precomputed transform-folded forward
	// divisors (PrecomputeScaled). Callers that encode many images with
	// one table set — core.Framework, the server, the batch pipeline —
	// build them once and attach them to every encode. The encoder uses
	// the cache only when it matches this Options' tables and engine and
	// derives fresh divisors into pooled scratch otherwise, so a stale
	// cache degrades to a 128-division setup cost, never to different
	// streams.
	Scaled *ScaledTables
}

// ScaledTables is an immutable cache of fused forward quantization
// divisors — the luma and chroma tables with the transform engine's
// scale factors folded in — together with the inputs they were derived
// from, so the encoder can verify the cache still applies.
type ScaledTables struct {
	luma, chroma qtable.Table
	xf           dct.Transform
	fwdLuma      qtable.FwdScaled
	fwdChroma    qtable.FwdScaled
}

// PrecomputeScaled folds the transform's scale factors into the given
// quantization tables once, for reuse across many encodes via
// Options.Scaled.
func PrecomputeScaled(luma, chroma qtable.Table, xf dct.Transform) *ScaledTables {
	st := &ScaledTables{luma: luma, chroma: chroma, xf: xf}
	luma.FwdScaledInto(&st.fwdLuma, xf)
	chroma.FwdScaledInto(&st.fwdChroma, xf)
	return st
}

// matches reports whether the cache was derived from exactly this table
// set and engine.
func (st *ScaledTables) matches(luma, chroma *qtable.Table, xf dct.Transform) bool {
	return st != nil && st.xf == xf && st.luma == *luma && st.chroma == *chroma
}

// validateRestartInterval rejects intervals the DRI segment cannot
// represent: its payload is a 16-bit big-endian MCU count, so anything
// outside [0, 65535] would truncate silently (65536 would emit DRI=0)
// and produce a stream whose declared interval disagrees with the actual
// marker placement.
func validateRestartInterval(ri int) error {
	if ri < 0 || ri > 0xFFFF {
		return fmt.Errorf("jpegcodec: restart interval %d outside [0, 65535]", ri)
	}
	return nil
}

// withDefaults fills in zero-valued tables.
func (o Options) withDefaults() Options {
	var zero qtable.Table
	if o.LumaTable == zero {
		o.LumaTable = qtable.StdLuminance
	}
	if o.ChromaTable == zero {
		o.ChromaTable = qtable.StdChrominance
	}
	return o
}

// component describes one frame component during encoding or decoding.
type component struct {
	id     uint8 // component identifier as stored in SOF/SOS
	h, v   int   // sampling factors
	tq     int   // quantization table id
	td, ta int   // huffman table ids (DC, AC)

	w, hgt int     // plane dimensions in samples
	pix    []uint8 // plane samples (decoder) or source samples (encoder)

	blocksX, blocksY int          // MCU-padded block grid
	coefs            [][64]int32  // quantized coefficients per block, natural order
	table            qtable.Table // dequantization table (decoder)
	// inv is table with the inverse engine's prescale factors folded in,
	// built once per frame (decoder) so the per-block dequantize loop is a
	// single multiply per coefficient.
	inv qtable.InvScaled

	// Decoder per-frame scan state. scanned marks components that took
	// part in at least one scan; primed marks coefficient grids that hold
	// only this decode's data (pooled grids retain the previous image's
	// coefficients, so any scan that does not overwrite every block —
	// non-interleaved walks skip the MCU padding, progressive scans
	// accumulate — must zero the grid first).
	scanned bool
	primed  bool
}

// quantizeTieEps is the half-width of the rounding-boundary snap band in
// quantize. The transform engines agree to ~1e-12 per coefficient, so any
// value within 1e-9 of a rounding boundary is treated as sitting exactly
// on it; without the snap, a coefficient whose exact value lands on a
// boundary (possible for the rational bands u,v ∈ {0,4}) could round
// differently under the two engines and break stream equivalence.
const quantizeTieEps = 1e-9

// quantize rounds coef/step half away from zero, the quantizer in T.81 and
// Eq. (1) of the paper's JPEG description. q is a fused divisor — the
// quantization step with any transform scale factor already folded in —
// so every engine funnels through this one division. Ties within
// quantizeTieEps of the boundary round deterministically away from zero
// regardless of which transform engine (or folding) produced c and q.
func quantize(c float64, q float64) int32 {
	v := c / q
	neg := v < 0
	if neg {
		v = -v
	}
	r := v + 0.5
	m := math.Floor(r)
	if r-m > 1-quantizeTieEps {
		m++
	}
	out := int32(m)
	if neg {
		out = -out
	}
	return out
}

// blockCoefficients runs the forward path for one 8×8 tile: level shift,
// DCT in the engine's scaled basis, fused quantization, and optional
// zero-masking. tbl carries the engine's scale factors folded into its
// divisors, so the loop is one divide per coefficient — no descale pass.
// samples is the tile in row-major order; the result is in natural order.
func blockCoefficients(samples *[64]uint8, tbl *qtable.FwdScaled, mask *qtable.ZeroMask, xf dct.Transform) [64]int32 {
	var blk dct.Block
	dct.LevelShift(samples[:], &blk)
	xf.ForwardScaled(&blk)
	var out [64]int32
	for i := 0; i < 64; i++ {
		if mask != nil && mask[i] {
			continue
		}
		out[i] = quantize(blk[i], tbl[i])
	}
	return out
}

// reconstructBlock runs the inverse path: fused dequantize (the engine's
// prescale factors live in tbl's multipliers — one multiply per
// coefficient), IDCT in the scaled basis, level unshift.
func reconstructBlock(coefs *[64]int32, tbl *qtable.InvScaled, dst *[64]uint8, xf dct.Transform) {
	var blk dct.Block
	for i := 0; i < 64; i++ {
		blk[i] = float64(coefs[i]) * tbl[i]
	}
	xf.InverseScaled(&blk)
	dct.LevelUnshift(&blk, dst[:])
}

// bitCategory returns the JPEG magnitude category of v: the number of bits
// needed to represent |v| (0 for v == 0).
func bitCategory(v int32) int {
	if v < 0 {
		v = -v
	}
	n := 0
	for v > 0 {
		n++
		v >>= 1
	}
	return n
}
