package jpegcodec

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitio"
)

func TestStdSpecsValid(t *testing.T) {
	for name, spec := range map[string]*HuffmanSpec{
		"DC-luma": &StdDCLuminance, "DC-chroma": &StdDCChrominance,
		"AC-luma": &StdACLuminance, "AC-chroma": &StdACChrominance,
	} {
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if len(StdACLuminance.Values) != 162 || len(StdACChrominance.Values) != 162 {
		t.Fatal("AC tables must have 162 symbols")
	}
}

func TestSpecValidationRejectsBadSpecs(t *testing.T) {
	// Count/value mismatch.
	bad := HuffmanSpec{Counts: [16]uint8{0, 2}, Values: []uint8{1}}
	if err := bad.Validate(); err == nil {
		t.Error("count/value mismatch accepted")
	}
	// Over-subscribed code space: 3 codes of length 1.
	bad = HuffmanSpec{Counts: [16]uint8{3}, Values: []uint8{1, 2, 3}}
	if err := bad.Validate(); err == nil {
		t.Error("over-subscribed code space accepted")
	}
	// Empty.
	bad = HuffmanSpec{}
	if err := bad.Validate(); err == nil {
		t.Error("empty spec accepted")
	}
}

func TestEncTableRejectsDuplicateSymbols(t *testing.T) {
	spec := HuffmanSpec{Counts: [16]uint8{0, 2}, Values: []uint8{7, 7}}
	if _, err := buildEncTable(&spec); err == nil {
		t.Fatal("duplicate symbol accepted")
	}
}

func TestEncTableCanonicalCodes(t *testing.T) {
	// DC luminance: first code (symbol 0) has length 2, code 00.
	enc, err := buildEncTable(&StdDCLuminance)
	if err != nil {
		t.Fatal(err)
	}
	if enc.size[0] != 2 || enc.code[0] != 0 {
		t.Fatalf("symbol 0: code %b size %d, want 00", enc.code[0], enc.size[0])
	}
	// Symbols 1..5 have length 3 with consecutive codes 010..110.
	for i, want := range []uint32{0b010, 0b011, 0b100, 0b101, 0b110} {
		sym := uint8(i + 1)
		if enc.size[sym] != 3 || enc.code[sym] != want {
			t.Fatalf("symbol %d: code %03b size %d, want %03b size 3", sym, enc.code[sym], enc.size[sym], want)
		}
	}
}

// encodeDecodeSymbols pushes a symbol sequence through an encoder and
// decoder pair built from the same spec.
func encodeDecodeSymbols(t *testing.T, spec *HuffmanSpec, syms []uint8) {
	t.Helper()
	enc, err := buildEncTable(spec)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := buildDecTable(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	bw := bitio.NewWriter(&buf)
	for _, s := range syms {
		if err := enc.emit(bw, s); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	br := bitio.NewReader(bytes.NewReader(buf.Bytes()))
	for i, want := range syms {
		got, err := dec.decode(br)
		if err != nil {
			t.Fatalf("symbol %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("symbol %d: got %#x want %#x", i, got, want)
		}
	}
}

func TestHuffmanRoundTripStdTables(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, spec := range []*HuffmanSpec{&StdDCLuminance, &StdACLuminance, &StdDCChrominance, &StdACChrominance} {
		syms := make([]uint8, 500)
		for i := range syms {
			syms[i] = spec.Values[rng.Intn(len(spec.Values))]
		}
		encodeDecodeSymbols(t, spec, syms)
	}
}

func TestBuildOptimizedSpecSingleSymbol(t *testing.T) {
	var freq [256]int64
	freq[42] = 100
	spec, err := BuildOptimizedSpec(&freq)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Values) != 1 || spec.Values[0] != 42 {
		t.Fatalf("values = %v, want [42]", spec.Values)
	}
	encodeDecodeSymbols(t, spec, []uint8{42, 42, 42})
}

func TestBuildOptimizedSpecEmptyFails(t *testing.T) {
	var freq [256]int64
	if _, err := BuildOptimizedSpec(&freq); err == nil {
		t.Fatal("empty frequency table accepted")
	}
	freq[3] = -1
	if _, err := BuildOptimizedSpec(&freq); err == nil {
		t.Fatal("negative frequency accepted")
	}
}

func TestBuildOptimizedSpecSkewed(t *testing.T) {
	// Highly skewed distribution: frequent symbols must get short codes.
	var freq [256]int64
	freq[0] = 1_000_000
	freq[1] = 1000
	freq[2] = 10
	freq[3] = 1
	spec, err := BuildOptimizedSpec(&freq)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := buildEncTable(spec)
	if err != nil {
		t.Fatal(err)
	}
	if enc.size[0] > enc.size[1] || enc.size[1] > enc.size[2] {
		t.Fatalf("code lengths not monotone in frequency: %d %d %d %d",
			enc.size[0], enc.size[1], enc.size[2], enc.size[3])
	}
}

func TestBuildOptimizedSpecAllSymbols(t *testing.T) {
	// All 256 symbols used forces the length-limiting path.
	var freq [256]int64
	rng := rand.New(rand.NewSource(2))
	for i := range freq {
		freq[i] = int64(rng.Intn(1_000_000) + 1)
	}
	spec, err := BuildOptimizedSpec(&freq)
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.totalCodes(); got != 256 {
		t.Fatalf("spec has %d codes, want 256", got)
	}
	syms := make([]uint8, 2000)
	for i := range syms {
		syms[i] = uint8(rng.Intn(256))
	}
	encodeDecodeSymbols(t, spec, syms)
}

// Property: optimized tables from arbitrary frequency profiles always
// produce decodable prefix codes no longer than 16 bits.
func TestPropertyOptimizedSpecRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n)%64 + 1
		var freq [256]int64
		var present []uint8
		for i := 0; i < count; i++ {
			s := uint8(rng.Intn(256))
			freq[s] += int64(rng.Intn(10000) + 1)
			present = append(present, s)
		}
		spec, err := BuildOptimizedSpec(&freq)
		if err != nil {
			return false
		}
		for _, c := range spec.Counts {
			_ = c // lengths implicitly ≤16 by construction of the array
		}
		enc, err := buildEncTable(spec)
		if err != nil {
			return false
		}
		dec, err := buildDecTable(spec)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		bw := bitio.NewWriter(&buf)
		for _, s := range present {
			if err := enc.emit(bw, s); err != nil {
				return false
			}
		}
		if err := bw.Flush(); err != nil {
			return false
		}
		br := bitio.NewReader(bytes.NewReader(buf.Bytes()))
		for _, want := range present {
			got, err := dec.decode(br)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBitCategory(t *testing.T) {
	cases := []struct {
		v    int32
		want int
	}{
		{0, 0}, {1, 1}, {-1, 1}, {2, 2}, {3, 2}, {-3, 2}, {4, 3}, {7, 3},
		{8, 4}, {255, 8}, {-255, 8}, {256, 9}, {1023, 10}, {-1024, 11},
	}
	for _, c := range cases {
		if got := bitCategory(c.v); got != c.want {
			t.Errorf("bitCategory(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestDecodeInvalidCode(t *testing.T) {
	// A spec with a single 1-bit code "0": reading a stream of 1s must fail
	// within 16 bits rather than loop.
	spec := HuffmanSpec{Counts: [16]uint8{1}, Values: []uint8{5}}
	dec, err := buildDecTable(&spec)
	if err != nil {
		t.Fatal(err)
	}
	br := bitio.NewReader(bytes.NewReader([]byte{0xFF, 0x00, 0xFF, 0x00, 0xFF, 0x00}))
	if _, err := dec.decode(br); err == nil {
		t.Fatal("expected invalid-code error")
	}
}
