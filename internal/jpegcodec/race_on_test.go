//go:build race

package jpegcodec

const raceEnabled = true
