package jpegcodec

// Restart-interval sharded entropy coding — parallelism *inside* a
// single image. A restart interval makes every segment of the scan
// independently codable: segments start byte-aligned (the coder pads to
// a byte boundary before each RSTn) and the DC predictor resets at each
// marker, so no state crosses a segment boundary in either direction.
// That turns the one serial stage of the codec — entropy coding — into a
// fan-out over pipeline's worker pool, the same lever libjpeg-turbo
// pulls for multi-core single-image throughput:
//
//   - encode: each worker entropy-codes its segments into a pooled
//     bitio.Writer; the finished buffers are stitched together with RSTn
//     markers in segment order, producing a stream byte-identical to the
//     sequential writer's (which also pads and emits a marker at every
//     boundary).
//   - decode: the entropy data is byte-scanned into its restart segments
//     first — markers are byte-aligned and can never occur inside
//     entropy data, because the coder stuffs a 0x00 after every 0xFF it
//     emits — then the segments decode concurrently, each on a pooled
//     segment-bounded bitio.Reader with a fresh DC predictor. Block
//     outputs land in disjoint regions of the coefficient grids and
//     pixel planes, so workers share them without synchronization.
//
// Acceptance behavior is kept identical to the sequential paths: the
// byte scan validates the RSTn sequence exactly like the sequential
// decoder, non-final segments must consume their bytes exactly (the
// sequential reader would otherwise trip over leftovers at the next
// marker), and trailing data after the final segment is tolerated just
// as the sequential path ignores everything after the last MCU.
//
// Sharded entropy decoding is BASELINE-FULLY-INTERLEAVED ONLY, by
// construction: decodeScan routes only that scan shape here. The guard
// is structural, not an optimization choice. The equivalence argument
// above leans on two properties that only hold for a baseline
// interleaved scan: (1) the scan is the frame's entire entropy payload,
// so "everything after the final segment's MCU quota" is ignorable —
// in a progressive or non-interleaved stream the bytes after one scan
// are the next scan's markers and entropy data, and a byte scan that
// swallowed them would desynchronize the marker loop; (2) the only
// coder state crossing block boundaries is the DC predictor, which
// resets at every RSTn. Progressive AC scans carry a second piece of
// inter-block state, the EOB run; it also resets at restart markers, so
// segments remain independently decodable in principle, but property
// (1) already rules sharding out, and the batched reconstruction stage
// (shared with the sequential path) is where progressive decode spends
// its time anyway.

import (
	"context"
	"errors"
	"fmt"
	"io"

	"repro/internal/bitio"
	"repro/internal/pipeline"
)

// autoShardMinMCUs is the frame size below which auto mode keeps the
// sequential path: small frames finish before the fan-out pays for its
// goroutine handoffs and per-segment buffer copies.
const autoShardMinMCUs = 1 << 10

// shardWorkersFor resolves a ShardWorkers request against the stream
// geometry: 0 is auto (GOMAXPROCS on frames of at least autoShardMinMCUs
// MCUs), 1 and negative force sequential, larger values are capped at
// the segment count. A result of 1 means "use the sequential path".
func shardWorkersFor(requested, restart, totalMCUs int) int {
	if restart <= 0 {
		return 1
	}
	segs := (totalMCUs + restart - 1) / restart
	if segs < 2 {
		return 1
	}
	w := requested
	switch {
	case w < 0 || w == 1:
		return 1
	case w == 0:
		if totalMCUs < autoShardMinMCUs {
			return 1
		}
	}
	return pipeline.Workers(w, segs)
}

// firstShardError unwraps a pipeline batch error to its first per-item
// error so shard failures read like their sequential counterparts.
func firstShardError(err error) error {
	var be *pipeline.BatchError
	if errors.As(err, &be) && len(be.Items) > 0 {
		return be.Items[0].Err
	}
	return err
}

// segmentBounds returns the MCU range [lo, hi) of restart segment seg.
func segmentBounds(seg, restart, total int) (lo, hi int) {
	lo = seg * restart
	hi = min(lo+restart, total)
	return lo, hi
}

// gatherStatsSharded is the fan-out half of optimizeHuffman: each worker
// tallies symbol frequencies for its segments into a private table and
// the tables are summed afterwards. Addition commutes, so the merged
// counts match the sequential gather exactly regardless of scheduling.
func gatherStatsSharded(comps []*component, mcusX, total, restart, workers int, freqs *[4][256]int64) {
	segs := (total + restart - 1) / restart
	parts := make([][4][256]int64, pipeline.Workers(workers, segs))
	// The callback cannot fail and the context is never canceled.
	_ = pipeline.RunWorker(context.Background(), segs, workers, func(_ context.Context, w, seg int) error {
		var prevDC [4]int32
		lo, hi := segmentBounds(seg, restart, total)
		for mcu := lo; mcu < hi; mcu++ {
			countMCUSymbols(comps, mcusX, mcu, &prevDC, &parts[w])
		}
		return nil
	})
	for w := range parts {
		for t := range freqs {
			for s := range freqs[t] {
				freqs[t][s] += parts[w][t][s]
			}
		}
	}
}

// writeScanSharded emits the entropy-coded segment with per-segment
// parallelism, byte-identical to writeScan: each restart segment is
// coded into a worker-local pooled bitio.Writer starting byte-aligned
// with a fresh DC predictor (exactly the state the sequential writer has
// after Flush + RSTn), then the buffers are stitched in order with the
// same (seg-1) mod 8 marker indices.
func writeScanSharded(w io.Writer, comps []*component, enc [4]*encTable, mcusX, mcusY, restart, workers int) error {
	total := mcusX * mcusY
	segs := (total + restart - 1) / restart
	segBufs := make([][]byte, segs)
	bws := make([]*bitio.Writer, pipeline.Workers(workers, segs))
	for i := range bws {
		bws[i] = bitwPool.Get().(*bitio.Writer)
	}
	defer func() {
		for _, bw := range bws {
			bw.Reset(io.Discard)
			bitwPool.Put(bw)
		}
	}()
	err := pipeline.RunWorker(context.Background(), segs, workers, func(_ context.Context, wk, seg int) error {
		bw := bws[wk]
		bw.Reset(io.Discard)
		var prevDC [4]int32
		lo, hi := segmentBounds(seg, restart, total)
		for mcu := lo; mcu < hi; mcu++ {
			if err := encodeMCU(bw, comps, enc, mcusX, mcu, &prevDC); err != nil {
				return err
			}
		}
		bw.Pad()
		segBufs[seg] = append(segBufs[seg][:0], bw.Bytes()...)
		return nil
	})
	if err != nil {
		return firstShardError(err)
	}
	for seg, b := range segBufs {
		if seg > 0 {
			if _, err := w.Write([]byte{0xFF, byte(mRST0 + (seg-1)%8)}); err != nil {
				return err
			}
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// entropySegments reads the current scan's entropy-coded data into the
// decoder's reused scan buffer and splits it at restart boundaries with
// a plain byte scan: markers are byte-aligned and cannot occur inside
// entropy data (every coder-emitted 0xFF carries a stuffed 0x00), so the
// byte-level boundaries are exactly where the bit-level reader would
// stop. Stuffed bytes — including fill-then-stuffed runs — stay in their
// segment because they decode as data; fill 0xFF runs before a marker
// are dropped, mirroring bitio.Reader.ReadMarker. The scan validates the
// RSTn sequence (expected index mod 8, the same check the sequential
// path applies) and stops collecting boundaries once expected-1 have
// been seen: any later marker ends the scan, matching the sequential
// decoder, which ignores everything after the final MCU. The marker
// that ended the scan is returned alongside (0 at end of input), like
// the sequential decoder's scanEnd.
func (d *decoder) entropySegments(expected int) ([][]byte, byte, error) {
	buf := d.scanBuf[:0]
	bounds := d.segBounds[:0] // end offset in buf of each segment
	rst := 0                  // expected index of the next restart marker
	next := byte(0)           // marker that terminated the scan data
scan:
	for {
		b, err := d.br.ReadByte()
		if err != nil {
			if err == io.EOF {
				break // truncated segments surface as EOF in their worker
			}
			return nil, 0, err
		}
		if b != 0xFF {
			buf = append(buf, b)
			continue
		}
		b2, err := d.br.ReadByte()
		if err != nil {
			if err == io.EOF {
				break // dangling 0xFF: the sequential reader EOFs here too
			}
			return nil, 0, err
		}
		for b2 == 0xFF {
			b2, err = d.br.ReadByte()
			if err != nil {
				if err == io.EOF {
					break scan
				}
				return nil, 0, err
			}
		}
		if b2 == 0x00 {
			buf = append(buf, 0xFF, 0x00)
			continue
		}
		// A real marker.
		if len(bounds)+1 < expected && b2 >= mRST0 && b2 <= mRST0+7 {
			if b2 != byte(mRST0+rst) {
				return nil, 0, fmt.Errorf("jpegcodec: expected RST%d, found %#02x", rst, b2)
			}
			rst = (rst + 1) % 8
			bounds = append(bounds, len(buf))
			continue
		}
		next = b2
		break // EOI, DNL, an out-of-quota RSTn, …: end of scan
	}
	bounds = append(bounds, len(buf))
	d.scanBuf = buf
	d.segBounds = bounds
	if len(bounds) != expected {
		return nil, 0, fmt.Errorf("jpegcodec: scan holds %d restart segments, frame geometry implies %d", len(bounds), expected)
	}
	segs := d.segs[:0]
	lo := 0
	for _, hi := range bounds {
		segs = append(segs, buf[lo:hi:hi])
		lo = hi
	}
	d.segs = segs
	return segs, next, nil
}

// scanSharded decodes a baseline fully interleaved scan with per-segment
// parallelism, accepting exactly the streams scanBaseline accepts and
// producing identical output: the byte scan enforces the same RSTn
// sequencing, each segment decodes with a fresh DC predictor on a pooled
// segment-bounded reader, and every non-final segment must consume its
// bytes exactly (leftovers are what the sequential reader would reject
// at the next marker; data after the final MCU is ignored on both
// paths). Reconstruction is deferred to finishFrame like every other
// scan shape; reconWorkers records the fan-out it should reuse.
func (d *decoder) scanSharded(scomps []*component, workers int) (byte, error) {
	f := &d.frame
	for _, c := range scomps {
		if d.huff[0<<2|c.td] == nil || d.huff[1<<2|c.ta] == nil {
			return 0, fmt.Errorf("jpegcodec: missing huffman tables %d/%d", c.td, c.ta)
		}
	}
	total := f.mcusX * f.mcusY
	ri := d.ri
	expected := (total + ri - 1) / ri
	segs, next, err := d.entropySegments(expected)
	if err != nil {
		return 0, err
	}
	brs := make([]*bitio.Reader, pipeline.Workers(workers, len(segs)))
	for i := range brs {
		brs[i] = bitrPool.Get().(*bitio.Reader)
	}
	defer func() {
		for _, br := range brs {
			br.Reset(eofReader{})
			bitrPool.Put(br)
		}
	}()
	err = pipeline.RunWorker(context.Background(), len(segs), workers, func(_ context.Context, w, seg int) error {
		br := brs[w]
		br.ResetBytes(segs[seg])
		var prevDC [4]int32
		lo, hi := segmentBounds(seg, ri, total)
		for mcu := lo; mcu < hi; mcu++ {
			my, mx := mcu/f.mcusX, mcu%f.mcusX
			for ci, c := range scomps {
				dcTab := d.huff[0<<2|c.td]
				acTab := d.huff[1<<2|c.ta]
				for vy := 0; vy < c.v; vy++ {
					for vx := 0; vx < c.h; vx++ {
						bx, by := mx*c.h+vx, my*c.v+vy
						coefs := &c.coefs[by*c.blocksX+bx]
						if err := decodeBlockInto(br, dcTab, acTab, prevDC[ci], coefs); err != nil {
							return err
						}
						prevDC[ci] = coefs[0]
					}
				}
			}
		}
		if seg < len(segs)-1 && !br.Exhausted() {
			return fmt.Errorf("jpegcodec: trailing entropy data in restart segment %d", seg)
		}
		return nil
	})
	if err != nil {
		return 0, firstShardError(err)
	}
	d.reconWorkers = workers
	return next, nil
}

// reconstructSharded runs the batched inverse stage with block-row
// parallelism: rows are disjoint pixel regions over read-only
// coefficients, so workers share the planes without synchronization.
// Each worker checks a flat scratch plane out of planePool (the
// sequential path reuses the decoder's retained plane instead).
func (d *decoder) reconstructSharded(workers int) {
	comps := d.frame.comps
	rows := 0
	var rowStart [3]int
	for i, c := range comps {
		rowStart[i] = rows
		rows += c.blocksY
	}
	planes := make([]*[]float64, pipeline.Workers(workers, rows))
	for i := range planes {
		planes[i] = planePool.Get().(*[]float64)
	}
	defer func() {
		for _, p := range planes {
			planePool.Put(p)
		}
	}()
	// The callback cannot fail and the context is never canceled.
	_ = pipeline.RunWorker(context.Background(), rows, workers, func(_ context.Context, w, i int) error {
		ci := len(comps) - 1
		for ci > 0 && i < rowStart[ci] {
			ci--
		}
		c := comps[ci]
		p := growFloats(*planes[w], c.blocksX*64)
		*planes[w] = p
		reconstructBlockRow(c, i-rowStart[ci], p, d.xf)
		return nil
	})
}
