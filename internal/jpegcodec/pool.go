package jpegcodec

import (
	"bufio"
	"io"
	"sync"

	"repro/internal/bitio"
	"repro/internal/imgutil"
	"repro/internal/qtable"
)

// This file holds the pooled per-call working set of the codec. Encoding
// an image needs three YCbCr planes, subsampled chroma planes, one
// coefficient array per component, a marker writer, and an entropy bit
// writer; decoding needs a buffered reader, an entropy bit reader,
// segment payload and Huffman-table scratch — all of it state that dies
// with the call. Re-allocating it per image dominates the allocation
// profile once the codec sits in a batch pipeline's inner loop, so every
// piece is recycled through sync.Pools, which also makes both directions
// naturally worker-friendly: each concurrent encode or decode checks out
// its own scratch. Decoder *output* (planes, coefficient grids) is the
// caller's property and is recycled through DecodeInto instead.

// encScratch is the reusable working set of one encode call.
type encScratch struct {
	planes imgutil.Planes      // full-resolution YCbCr conversion buffers
	cb, cr []uint8             // 4:2:0 subsampled chroma buffers
	coefs  [3][][64]int32      // per-component quantized coefficient grids
	comps  [3]component        // component descriptors
	refs   [3]*component       // backing array for the []*component slice
	fwd    [2]qtable.FwdScaled // fused forward divisors (luma, chroma) when the caller caches none
	inv    [2]qtable.InvScaled // fused dequantize multipliers (requantize source tables)
	plane  []float64           // flat block-row plane for the batch transform stage
}

var encScratchPool = sync.Pool{New: func() any { return new(encScratch) }}

func getEncScratch() *encScratch {
	s := encScratchPool.Get().(*encScratch)
	for i := range s.refs {
		s.refs[i] = &s.comps[i]
	}
	return s
}

// putEncScratch returns s to the pool, dropping references to caller
// memory (source pixels) while keeping the recyclable buffers.
func putEncScratch(s *encScratch) {
	s.comps = [3]component{}
	encScratchPool.Put(s)
}

// components hands out the scratch-backed descriptor slice for n
// components; the caller fills s.comps[:n] first.
func (s *encScratch) components(n int) []*component {
	return s.refs[:n]
}

// growCoefs returns a coefficient grid of n blocks, reusing b's backing
// array when it is large enough. Contents are unspecified: the forward
// transform and interleaved scans overwrite every block, while scan
// shapes that don't (non-interleaved, progressive) zero the grid first
// via zeroCoefs.
func growCoefs(b [][64]int32, n int) [][64]int32 {
	if cap(b) >= n {
		return b[:n]
	}
	return make([][64]int32, n)
}

// zeroCoefs clears a recycled coefficient grid. Scans that do not
// overwrite every block slot — non-interleaved walks skip the MCU
// padding; progressive scans accumulate bits across scans — must start
// from zeroed grids instead of the previous decode's leftovers.
func zeroCoefs(b [][64]int32) {
	for i := range b {
		b[i] = [64]int32{}
	}
}

// growFloats returns a flat plane of n floats, reusing b's backing
// array when it is large enough. Contents are unspecified; the batch
// stages fully overwrite the plane before reading it.
func growFloats(b []float64, n int) []float64 {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]float64, n)
}

// planePool recycles flat block-row planes for the parallel batch
// reconstruction workers (the sequential paths retain a plane on their
// scratch/decoder instead).
var planePool = sync.Pool{New: func() any { return new([]float64) }}

// bufwPool recycles the buffered marker/scan writers.
var bufwPool = sync.Pool{New: func() any { return bufio.NewWriterSize(io.Discard, 1<<12) }}

// bitwPool recycles entropy bit writers; each retains its grown output
// buffer across encodes.
var bitwPool = sync.Pool{New: func() any { return bitio.NewWriter(io.Discard) }}

// eofReader is the parking target for pooled readers so they do not pin
// caller streams while idle.
type eofReader struct{}

func (eofReader) Read([]byte) (int, error) { return 0, io.EOF }

func (eofReader) ReadByte() (byte, error) { return 0, io.EOF }

// bufrPool recycles the decoder's buffered readers.
var bufrPool = sync.Pool{New: func() any { return bufio.NewReaderSize(eofReader{}, 1<<12) }}

// bitrPool recycles segment-bounded entropy bit readers for the sharded
// decode workers; the decoder's own bits reader serves the sequential
// path.
var bitrPool = sync.Pool{New: func() any { return bitio.NewReader(eofReader{}) }}

// decoderPool recycles the decoder parse state: the entropy bit reader,
// segment payload buffer, Huffman decode tables and component
// descriptors. Output buffers are NOT pooled here — they belong to the
// destination Decoded, which callers reuse through DecodeInto.
var decoderPool = sync.Pool{New: func() any {
	return &decoder{bits: bitio.NewReader(eofReader{})}
}}

// Standard Annex-K Huffman specs never change, so their derived encoder
// tables are built once and shared by every non-optimized encode.
var (
	stdEncOnce   sync.Once
	stdEncTables [4]*encTable
	stdEncErr    error
)

func stdEncoderTables() ([4]*encTable, error) {
	stdEncOnce.Do(func() {
		specs := [4]*HuffmanSpec{&StdDCLuminance, &StdACLuminance, &StdDCChrominance, &StdACChrominance}
		for i, s := range specs {
			stdEncTables[i], stdEncErr = buildEncTable(s)
			if stdEncErr != nil {
				return
			}
		}
	})
	return stdEncTables, stdEncErr
}
