package jpegcodec

// Metadata passthrough tests: the decoder records APPn/COM segments,
// Requantize re-emits them byte-identical by default (EXIF, ICC
// profiles, comments survive archive re-targeting), StripMetadata opts
// out, and the re-emitted JFIF APP0 never duplicates the canonical one
// the encoder writes itself.

import (
	"bytes"
	"image/jpeg"
	"testing"

	"repro/internal/qtable"
)

var testMetaSegments = []MetaSegment{
	{Marker: mAPP0 + 1, Payload: []byte("Exif\x00\x00MM\x00\x2a\x00\x00\x00\x08fake-ifd")},
	{Marker: mAPP0 + 2, Payload: append([]byte("ICC_PROFILE\x00\x01\x01"), bytes.Repeat([]byte{0xAB}, 64)...)},
	{Marker: mCOM, Payload: []byte("shot on a test pattern generator")},
	{Marker: mAPP0 + 13, Payload: []byte("<x:xmpmeta/>")},
}

// encodeWithMeta emits a color stream carrying the test segments.
func encodeWithMeta(t *testing.T, sub Subsampling) []byte {
	t.Helper()
	return encodeToBytes(t, testImageRGB(48, 40, 41), &Options{
		LumaTable:   qtable.MustScale(qtable.StdLuminance, 90),
		ChromaTable: qtable.MustScale(qtable.StdChrominance, 90),
		Subsampling: sub,
		Metadata:    testMetaSegments,
	})
}

// countAPP0 walks the marker segments before the scan and counts APP0s,
// returning also whether each carried the JFIF signature.
func countAPP0(t *testing.T, data []byte) (app0s, jfifs int) {
	t.Helper()
	i := 2 // past SOI
	for i+4 <= len(data) {
		if data[i] != 0xFF {
			t.Fatalf("expected marker at offset %d, found %#02x", i, data[i])
		}
		m := data[i+1]
		if m == mSOS {
			return app0s, jfifs
		}
		n := int(data[i+2])<<8 | int(data[i+3])
		if m == mAPP0 {
			app0s++
			if n >= 7 && string(data[i+4:i+9]) == "JFIF\x00" {
				jfifs++
			}
		}
		i += 2 + n
	}
	t.Fatal("no SOS before end of stream")
	return 0, 0
}

func TestDecodeRecordsMetadata(t *testing.T) {
	data := encodeWithMeta(t, Sub420)
	if _, err := jpeg.Decode(bytes.NewReader(data)); err != nil {
		t.Fatalf("stdlib rejects the metadata-laden stream: %v", err)
	}
	dec, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	// The canonical JFIF APP0 the encoder writes is itself recorded,
	// followed by the attached segments in order.
	if len(dec.Metadata) != 1+len(testMetaSegments) {
		t.Fatalf("recorded %d segments, want %d", len(dec.Metadata), 1+len(testMetaSegments))
	}
	if !isJFIFAPP0(dec.Metadata[0]) {
		t.Fatalf("first recorded segment is %#02x, want the JFIF APP0", dec.Metadata[0].Marker)
	}
	for i, want := range testMetaSegments {
		got := dec.Metadata[i+1]
		if got.Marker != want.Marker || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("segment %d: marker %#02x payload %d bytes, want %#02x / %d bytes",
				i, got.Marker, len(got.Payload), want.Marker, len(want.Payload))
		}
	}
}

func TestRequantizeMetadataPassthrough(t *testing.T) {
	for _, sub := range []Subsampling{Sub420, Sub422} {
		data := encodeWithMeta(t, sub)
		dec, err := Decode(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		luma := qtable.MustScale(qtable.StdLuminance, 60)
		chroma := qtable.MustScale(qtable.StdChrominance, 60)
		var buf bytes.Buffer
		if err := Requantize(&buf, dec, luma, chroma, nil); err != nil {
			t.Fatal(err)
		}
		out := buf.Bytes()
		// Exactly one APP0 — the source's JFIF segment passed through, the
		// canonical one suppressed (the duplicate-APP0 regression).
		if app0s, jfifs := countAPP0(t, out); app0s != 1 || jfifs != 1 {
			t.Fatalf("%v: requantized stream has %d APP0s (%d JFIF), want exactly 1", sub, app0s, jfifs)
		}
		back, err := Decode(bytes.NewReader(out))
		if err != nil {
			t.Fatal(err)
		}
		if len(back.Metadata) != len(dec.Metadata) {
			t.Fatalf("%v: %d segments after requantize, want %d", sub, len(back.Metadata), len(dec.Metadata))
		}
		for i := range dec.Metadata {
			if back.Metadata[i].Marker != dec.Metadata[i].Marker ||
				!bytes.Equal(back.Metadata[i].Payload, dec.Metadata[i].Payload) {
				t.Fatalf("%v: segment %d not byte-identical through requantize", sub, i)
			}
		}
		// Passthrough must not break byte-stability: requantizing the
		// requantized stream reproduces it exactly.
		var again bytes.Buffer
		if err := Requantize(&again, back, luma, chroma, nil); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, again.Bytes()) {
			t.Fatalf("%v: requantize with metadata is not byte-stable", sub)
		}
	}
}

func TestRequantizeStripMetadata(t *testing.T) {
	dec, err := Decode(bytes.NewReader(encodeWithMeta(t, Sub420)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = Requantize(&buf, dec, qtable.MustScale(qtable.StdLuminance, 60),
		qtable.MustScale(qtable.StdChrominance, 60), &Options{StripMetadata: true})
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Only the canonical JFIF APP0 survives.
	if len(back.Metadata) != 1 || !isJFIFAPP0(back.Metadata[0]) {
		t.Fatalf("stripped stream carries %d segments, want only the canonical JFIF APP0", len(back.Metadata))
	}
}

func TestEncodeRejectsBadMetadata(t *testing.T) {
	img := testImageRGB(16, 16, 43)
	for name, segs := range map[string][]MetaSegment{
		"non-APPn marker": {{Marker: mDQT, Payload: []byte("x")}},
		"oversized payload": {{Marker: mAPP0 + 1,
			Payload: make([]byte, maxSegmentPayload+1)}},
	} {
		var buf bytes.Buffer
		if err := EncodeRGB(&buf, img, &Options{Metadata: segs}); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestDecodeIntoReusesMetadataBuffers pins the steady-state allocation
// contract: repeated DecodeInto of metadata-laden streams reuses the
// Decoded's segment slice and flat payload buffer.
func TestDecodeIntoReusesMetadataBuffers(t *testing.T) {
	data := encodeWithMeta(t, Sub422)
	var dec Decoded
	if err := DecodeInto(bytes.NewReader(data), &dec, nil); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := DecodeInto(bytes.NewReader(data), &dec, nil); err != nil {
			t.Fatal(err)
		}
	})
	// The same bound the plain steady-state decode holds; metadata
	// recording must not add per-call allocations.
	if allocs > 4 {
		t.Fatalf("steady-state DecodeInto with metadata allocates %.1f/op, want ≤ 4", allocs)
	}
}
