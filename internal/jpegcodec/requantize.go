package jpegcodec

import (
	"fmt"
	"io"

	"repro/internal/dct"
	"repro/internal/qtable"
)

// Requantize re-encodes a decoded stream under new quantization tables
// entirely in the coefficient domain: each quantized coefficient is
// dequantized with the table it was coded with and requantized with the
// new one, skipping the IDCT→pixels→DCT round trip and its second
// generation loss. This is how a storage system retrofits DeepN-JPEG
// tables onto an existing JPEG archive.
//
// The source may be any stream the decoder accepts — baseline
// (interleaved or not) or progressive. Decoding normalizes them all to
// the same representation, full-image coefficient planes, and
// Requantize transcodes from those planes; the output is always a
// baseline sequential interleaved stream, so requantizing a progressive
// web JPEG also migrates it to the layout the fast sharded decode path
// handles.
//
// The optional mask zeroes bands before recoding (the RM-HF transform).
// Huffman optimization is honored via opts; subsampling always matches
// the source stream — any legal baseline factor combination with
// full-resolution luma (4:4:4, 4:2:2, 4:2:0, 4:4:0, 4:1:1, …) recodes
// through the same per-component h×v block walk the decoder used. The
// restart interval is preserved by default — a zero
// opts.RestartInterval inherits d.RestartInterval, so transcoding
// keeps the stream's RSTn structure (and with it the sharded-decode
// lever); a negative value strips restart markers and a positive one
// replaces the interval. The source's APPn/COM segments (EXIF, ICC,
// comments) are re-emitted in order unless opts.StripMetadata is set or
// opts.Metadata supplies replacements. Because no pixels are touched,
// the output is independent of Options.Transform — the engine choice
// only matters on paths that run a DCT — but the option is still
// validated so a bad configuration fails here exactly as it would on
// encode.
func Requantize(w io.Writer, d *Decoded, luma, chroma qtable.Table, opts *Options) error {
	if err := luma.Validate(); err != nil {
		return fmt.Errorf("jpegcodec: requantize luma: %w", err)
	}
	if d.Components == 3 {
		if err := chroma.Validate(); err != nil {
			return fmt.Errorf("jpegcodec: requantize chroma: %w", err)
		}
	}
	var o Options
	if opts != nil {
		o = *opts
	}
	if !o.Transform.Valid() {
		return fmt.Errorf("jpegcodec: unknown transform engine %d", o.Transform)
	}
	if o.RestartInterval == 0 {
		o.RestartInterval = d.RestartInterval
	} else if o.RestartInterval < 0 {
		o.RestartInterval = 0
	}
	if err := validateRestartInterval(o.RestartInterval); err != nil {
		return err
	}
	o.LumaTable = luma
	o.ChromaTable = chroma
	if o.StripMetadata {
		o.Metadata = nil
	} else if o.Metadata == nil {
		// Default passthrough: re-emit the source stream's APPn/COM
		// segments byte-identical, in their original order.
		o.Metadata = d.Metadata
	}

	// Rebuild encoder components from the decoded coefficient planes,
	// drawing descriptors and coefficient grids from the pooled encoder
	// scratch: requantization sits in the same batch loops as encode.
	// The tables convert to float form once per component — dequantize
	// multipliers for the coded table, quantize divisors for the new one
	// (naive/identity scaling: no DCT runs here) — so the per-block loop
	// is one multiply and one divide per coefficient.
	s := getEncScratch()
	defer putEncScratch(s)
	for i := 0; i < d.Components; i++ {
		newTbl := &luma
		s.comps[i] = component{id: uint8(i + 1), h: 1, v: 1, tq: 0, td: 0, ta: 0}
		c := &s.comps[i]
		if i > 0 {
			newTbl = &chroma
			c.tq, c.td, c.ta = 1, 1, 1
		}
		// The source table is whichever the component was coded with (its
		// SOF tq, any id 0–3), not necessarily the 0=luma/1=chroma
		// convention this encoder writes.
		oldTbl, ok := d.QuantTables[d.planes[i].tq]
		if !ok {
			return fmt.Errorf("jpegcodec: source stream lacks quantization table %d", d.planes[i].tq)
		}
		// Carry the source sampling factors so the MCU interleave below
		// reproduces the decoder's per-component h×v block walk. Zero
		// factors (a hand-built Decoded) mean an unsubsampled plane.
		if d.planes[i].hs > 0 {
			c.h, c.v = d.planes[i].hs, d.planes[i].vs
		}
		src, bx, by := d.Coefficients(i)
		if len(src) == 0 {
			return fmt.Errorf("jpegcodec: component %d has no coefficients", i)
		}
		dequant := &s.inv[c.tq]
		requant := &s.fwd[c.tq]
		oldTbl.InvScaledInto(dequant, dct.TransformNaive)
		newTbl.FwdScaledInto(requant, dct.TransformNaive)
		c.blocksX, c.blocksY = bx, by
		c.coefs = growCoefs(s.coefs[i], len(src))
		s.coefs[i] = c.coefs
		// Recode one block row at a time through the batch helpers: one
		// dequantize broadcast into the flat plane, one fused requantize
		// pass into the destination grid — the same bits the per-block
		// dequantize+quantize chain produces.
		s.plane = growFloats(s.plane, bx*64)
		for lo := 0; lo < len(src); lo += bx {
			hi := min(lo+bx, len(src))
			run := src[lo:hi]
			dequant.DequantizeBlocks(s.plane, run)
			quantizeRunInto(c.coefs[lo:hi], s.plane[:len(run)*64], requant, o.ZeroMask)
		}
	}
	comps := s.components(d.Components)

	mcusX := comps[0].blocksX / comps[0].h
	mcusY := comps[0].blocksY / comps[0].v
	// The decoder sizes every block grid as mcus×factor and guarantees
	// component 0 carries the frame-maximum factors, so these grids tile
	// by construction; the check defends against a hand-built Decoded
	// whose grids would otherwise index out of bounds in encodeTail.
	for i, c := range comps {
		if c.blocksX != mcusX*c.h || c.blocksY != mcusY*c.v {
			return fmt.Errorf("jpegcodec: requantize: unsupported sampling geometry (component %d grid %d×%d does not tile %d×%d MCUs)",
				i, c.blocksX, c.blocksY, mcusX, mcusY)
		}
	}

	return encodeTail(w, d.W, d.H, comps, mcusX, mcusY, &o)
}
