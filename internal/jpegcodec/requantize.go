package jpegcodec

import (
	"fmt"
	"io"

	"repro/internal/dct"
	"repro/internal/qtable"
)

// Requantize re-encodes a decoded stream under new quantization tables
// entirely in the coefficient domain: each quantized coefficient is
// dequantized with the table it was coded with and requantized with the
// new one, skipping the IDCT→pixels→DCT round trip and its second
// generation loss. This is how a storage system retrofits DeepN-JPEG
// tables onto an existing JPEG archive.
//
// The optional mask zeroes bands before recoding (the RM-HF transform).
// Huffman optimization is honored via opts; subsampling always matches
// the source stream. The restart interval is preserved by default — a
// zero opts.RestartInterval inherits d.RestartInterval, so transcoding
// keeps the stream's RSTn structure (and with it the sharded-decode
// lever); a negative value strips restart markers and a positive one
// replaces the interval. Because no pixels are touched, the output is
// independent of Options.Transform — the engine choice only matters on
// paths that run a DCT — but the option is still validated so a bad
// configuration fails here exactly as it would on encode.
func Requantize(w io.Writer, d *Decoded, luma, chroma qtable.Table, opts *Options) error {
	if err := luma.Validate(); err != nil {
		return fmt.Errorf("jpegcodec: requantize luma: %w", err)
	}
	if d.Components == 3 {
		if err := chroma.Validate(); err != nil {
			return fmt.Errorf("jpegcodec: requantize chroma: %w", err)
		}
	}
	var o Options
	if opts != nil {
		o = *opts
	}
	if !o.Transform.Valid() {
		return fmt.Errorf("jpegcodec: unknown transform engine %d", o.Transform)
	}
	if o.RestartInterval == 0 {
		o.RestartInterval = d.RestartInterval
	} else if o.RestartInterval < 0 {
		o.RestartInterval = 0
	}
	if err := validateRestartInterval(o.RestartInterval); err != nil {
		return err
	}
	o.LumaTable = luma
	o.ChromaTable = chroma

	// Rebuild encoder components from the decoded coefficient planes,
	// drawing descriptors and coefficient grids from the pooled encoder
	// scratch: requantization sits in the same batch loops as encode.
	// The tables convert to float form once per component — dequantize
	// multipliers for the coded table, quantize divisors for the new one
	// (naive/identity scaling: no DCT runs here) — so the per-block loop
	// is one multiply and one divide per coefficient.
	s := getEncScratch()
	defer putEncScratch(s)
	for i := 0; i < d.Components; i++ {
		oldTbl, ok := d.QuantTables[0]
		newTbl := &luma
		s.comps[i] = component{id: uint8(i + 1), h: 1, v: 1, tq: 0, td: 0, ta: 0}
		c := &s.comps[i]
		if i > 0 {
			oldTbl, ok = d.QuantTables[1]
			newTbl = &chroma
			c.tq, c.td, c.ta = 1, 1, 1
		}
		if !ok {
			return fmt.Errorf("jpegcodec: source stream lacks quantization table %d", c.tq)
		}
		if i == 0 && d.Components == 3 && d.Sampling == Sub420 {
			c.h, c.v = 2, 2
		}
		src, bx, by := d.Coefficients(i)
		if len(src) == 0 {
			return fmt.Errorf("jpegcodec: component %d has no coefficients", i)
		}
		dequant := &s.inv[c.tq]
		requant := &s.fwd[c.tq]
		oldTbl.InvScaledInto(dequant, dct.TransformNaive)
		newTbl.FwdScaledInto(requant, dct.TransformNaive)
		c.blocksX, c.blocksY = bx, by
		c.coefs = growCoefs(s.coefs[i], len(src))
		s.coefs[i] = c.coefs
		// Recode one block row at a time through the batch helpers: one
		// dequantize broadcast into the flat plane, one fused requantize
		// pass into the destination grid — the same bits the per-block
		// dequantize+quantize chain produces.
		s.plane = growFloats(s.plane, bx*64)
		for lo := 0; lo < len(src); lo += bx {
			hi := min(lo+bx, len(src))
			run := src[lo:hi]
			dequant.DequantizeBlocks(s.plane, run)
			quantizeRunInto(c.coefs[lo:hi], s.plane[:len(run)*64], requant, o.ZeroMask)
		}
	}
	comps := s.components(d.Components)

	mcusX := comps[0].blocksX / comps[0].h
	mcusY := comps[0].blocksY / comps[0].v
	// The re-encoder only models 4:4:4, 4:2:0 and single-component
	// layouts. A stream with other sampling factors (4:2:2, 4:1:1, …)
	// decodes fine but its block grids would not tile the MCU geometry
	// assumed above — reject it rather than index out of its grids.
	for i, c := range comps {
		if c.blocksX != mcusX*c.h || c.blocksY != mcusY*c.v {
			return fmt.Errorf("jpegcodec: requantize: unsupported sampling geometry (component %d grid %d×%d does not tile %d×%d MCUs)",
				i, c.blocksX, c.blocksY, mcusX, mcusY)
		}
	}

	return encodeTail(w, d.W, d.H, comps, mcusX, mcusY, &o)
}
