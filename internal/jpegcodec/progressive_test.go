package jpegcodec

// Progressive-decode interop suite. Every case starts from a baseline
// encode of a deterministic test image, re-emits its coefficient planes
// as either a progressive (SOF2) stream or a non-interleaved baseline
// stream (progenc_test.go), and then pins the decoder three ways:
// coefficient-identical to the baseline decode, within the usual
// ≤2-level IDCT/color envelope of stdlib image/jpeg on the same bytes,
// and byte-identical through Requantize — transcoding a progressive
// source must produce exactly the bytes the baseline source produces,
// because by the time Requantize runs the two decodes are the same
// coefficient planes. The generated streams are also checked in under
// testdata/progressive (regenerate with UPDATE_PROGRESSIVE_FIXTURES=1)
// so the corpus survives as real files.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/qtable"
)

// progCase is one interop fixture: a baseline source stream and the
// re-emission that must decode identically to it. A nil script selects
// the non-interleaved baseline writer instead of the progressive one.
//
// skipStdlib marks DRI cases with subsampled luma: T.81 counts the
// restart interval of a non-interleaved scan in that scan's data units
// (as libjpeg and this decoder do), but Go's image/jpeg counts frame
// MCUs for every scan shape, so the two decoders place RSTn at
// different offsets whenever luma h×v > 1. Those fixtures are pinned
// ours-vs-ours; the 4:4:4 DRI cases, where the cadences coincide,
// carry the stdlib pin.
type progCase struct {
	name       string
	gray       bool
	sub        Subsampling
	w, h       int
	seed       int64
	ri         int
	skipStdlib bool
	script     []progScan
}

// stdProgressionScript is libjpeg's jpeg_simple_progression layout for
// 3-component images: a reduced-precision DC scan, spectral AC bands,
// then one refinement pass per band plus a DC refinement — the
// "refinement-heavy" shape real encoders emit.
var stdProgressionScript = []progScan{
	{comps: []int{0, 1, 2}, ss: 0, se: 0, ah: 0, al: 1},
	{comps: []int{0}, ss: 1, se: 5, ah: 0, al: 2},
	{comps: []int{1}, ss: 1, se: 63, ah: 0, al: 1},
	{comps: []int{2}, ss: 1, se: 63, ah: 0, al: 1},
	{comps: []int{0}, ss: 6, se: 63, ah: 0, al: 2},
	{comps: []int{0}, ss: 1, se: 63, ah: 2, al: 1},
	{comps: []int{0, 1, 2}, ss: 0, se: 0, ah: 1, al: 0},
	{comps: []int{1}, ss: 1, se: 63, ah: 1, al: 0},
	{comps: []int{2}, ss: 1, se: 63, ah: 1, al: 0},
	{comps: []int{0}, ss: 1, se: 63, ah: 1, al: 0},
}

var progCases = []progCase{
	{name: "rgb444-spectral", sub: Sub444, w: 48, h: 32, seed: 11, script: []progScan{
		{comps: []int{0, 1, 2}, ss: 0, se: 0},
		{comps: []int{0}, ss: 1, se: 5},
		{comps: []int{1}, ss: 1, se: 5},
		{comps: []int{2}, ss: 1, se: 5},
		{comps: []int{0}, ss: 6, se: 63},
		{comps: []int{1}, ss: 6, se: 63},
		{comps: []int{2}, ss: 6, se: 63},
	}},
	{name: "rgb420-standard", sub: Sub420, w: 67, h: 45, seed: 23, script: stdProgressionScript},
	{name: "rgb420-dri", sub: Sub420, w: 64, h: 48, seed: 31, ri: 3, skipStdlib: true, script: stdProgressionScript},
	{name: "rgb444-dri", sub: Sub444, w: 41, h: 30, seed: 37, ri: 2, script: stdProgressionScript},
	{name: "rgb422-splitdc", sub: Sub422, w: 41, h: 27, seed: 47, script: []progScan{
		// DC coded in two partial-interleave scans, refined in two more.
		{comps: []int{0}, ss: 0, se: 0, ah: 0, al: 2},
		{comps: []int{1, 2}, ss: 0, se: 0, ah: 0, al: 2},
		{comps: []int{0}, ss: 0, se: 0, ah: 2, al: 1},
		{comps: []int{1, 2}, ss: 0, se: 0, ah: 2, al: 1},
		{comps: []int{0, 1, 2}, ss: 0, se: 0, ah: 1, al: 0},
		{comps: []int{0}, ss: 1, se: 63, ah: 0, al: 1},
		{comps: []int{1}, ss: 1, se: 63, ah: 0, al: 1},
		{comps: []int{2}, ss: 1, se: 63, ah: 0, al: 1},
		{comps: []int{0}, ss: 1, se: 63, ah: 1, al: 0},
		{comps: []int{1}, ss: 1, se: 63, ah: 1, al: 0},
		{comps: []int{2}, ss: 1, se: 63, ah: 1, al: 0},
	}},
	{name: "gray-refine", gray: true, w: 35, h: 29, seed: 7, script: []progScan{
		{comps: []int{0}, ss: 0, se: 0, ah: 0, al: 1},
		{comps: []int{0}, ss: 1, se: 63, ah: 0, al: 1},
		{comps: []int{0}, ss: 0, se: 0, ah: 1, al: 0},
		{comps: []int{0}, ss: 1, se: 63, ah: 1, al: 0},
	}},
	{name: "nonint-rgb444", sub: Sub444, w: 21, h: 17, seed: 13},
	{name: "nonint-rgb420-pad", sub: Sub420, w: 67, h: 45, seed: 29},
	{name: "nonint-rgb420-dri", sub: Sub420, w: 64, h: 48, seed: 17, ri: 4, skipStdlib: true},
	{name: "nonint-rgb444-dri", sub: Sub444, w: 41, h: 30, seed: 19, ri: 5},
	{name: "nonint-gray-dri", gray: true, w: 33, h: 26, seed: 3, ri: 5},
}

// padFree reports whether every component's block grid equals its
// unpadded (ceil of the sample dimensions) grid. Interleaved baseline
// scans code the MCU-padding blocks; progressive and non-interleaved
// scans never visit them, so on padded geometry the two decodes agree
// on every pixel and every in-image block but not on pad-block AC
// coefficients.
func padFree(d *Decoded) bool {
	for i := 0; i < d.Components; i++ {
		if d.blocksX[i] != (d.planes[i].w+7)/8 || d.blocksY[i] != (d.planes[i].h+7)/8 {
			return false
		}
	}
	return true
}

// progDecodedEqual is decodedEqual minus the pad blocks: geometry and
// pixels must match exactly, coefficients only over each component's
// unpadded block region.
func progDecodedEqual(t *testing.T, want, got *Decoded, label string) {
	t.Helper()
	if padFree(want) {
		decodedEqual(t, want, got, label)
		return
	}
	if want.W != got.W || want.H != got.H || want.Components != got.Components ||
		want.RestartInterval != got.RestartInterval {
		t.Fatalf("%s: decode geometry differs", label)
	}
	if !bytes.Equal(want.RGB().Pix, got.RGB().Pix) {
		t.Fatalf("%s: RGB pixels differ", label)
	}
	for i := 0; i < want.Components; i++ {
		wc, wx, _ := want.Coefficients(i)
		gc, gx, _ := got.Coefficients(i)
		if wx != gx || len(wc) != len(gc) {
			t.Fatalf("%s: component %d grids differ", label, i)
		}
		sbw := (want.planes[i].w + 7) / 8
		sbh := (want.planes[i].h + 7) / 8
		for by := 0; by < sbh; by++ {
			for bx := 0; bx < sbw; bx++ {
				if wc[by*wx+bx] != gc[by*wx+bx] {
					t.Fatalf("%s: component %d block (%d,%d) coefficients differ", label, i, bx, by)
				}
			}
		}
	}
}

func caseByName(t testing.TB, name string) *progCase {
	t.Helper()
	for i := range progCases {
		if progCases[i].name == name {
			return &progCases[i]
		}
	}
	t.Fatalf("no progressive case named %q", name)
	return nil
}

// baselineStream encodes the case's deterministic test image as an
// ordinary interleaved baseline stream — the coefficient reference.
// The restart interval matches the fixture's so the decodes agree on
// every Decoded field, not just planes.
func (c *progCase) baselineStream(t testing.TB) []byte {
	opts := &Options{
		LumaTable:       qtable.MustScale(qtable.StdLuminance, 85),
		ChromaTable:     qtable.MustScale(qtable.StdChrominance, 85),
		Subsampling:     c.sub,
		RestartInterval: c.ri,
	}
	var buf bytes.Buffer
	var err error
	if c.gray {
		err = EncodeGray(&buf, testImageGray(c.w, c.h, c.seed), opts)
	} else {
		err = EncodeRGB(&buf, testImageRGB(c.w, c.h, c.seed), opts)
	}
	if err != nil {
		t.Fatalf("%s: baseline encode: %v", c.name, err)
	}
	return buf.Bytes()
}

// fixtureStream builds the case's progressive or non-interleaved
// re-emission of the baseline coefficients.
func (c *progCase) fixtureStream(t testing.TB) []byte {
	base, err := Decode(bytes.NewReader(c.baselineStream(t)))
	if err != nil {
		t.Fatalf("%s: baseline decode: %v", c.name, err)
	}
	if c.script == nil {
		return encodeNonInterleaved(t, base, c.ri)
	}
	return progEncode(t, base, c.script, c.ri)
}

// TestProgressiveMatchesBaseline pins the refactor's core contract:
// decoding the re-emitted stream yields the same Decoded — geometry,
// pixels through both output paths, and every raw coefficient — as
// decoding the interleaved baseline stream it was built from.
func TestProgressiveMatchesBaseline(t *testing.T) {
	for i := range progCases {
		c := &progCases[i]
		t.Run(c.name, func(t *testing.T) {
			base := decodeAll(t, c.baselineStream(t), nil)
			got := decodeAll(t, c.fixtureStream(t), nil)
			if wantProg := c.script != nil; got.Progressive != wantProg {
				t.Fatalf("Progressive = %v, want %v", got.Progressive, wantProg)
			}
			if base.Progressive {
				t.Fatal("baseline decode reports Progressive")
			}
			progDecodedEqual(t, base, got, c.name)
		})
	}
}

// TestProgressiveVsStdlib pins the same streams against image/jpeg:
// identical coefficients leave only IDCT and color-conversion rounding,
// the ≤2-level envelope every interop test in this package uses.
func TestProgressiveVsStdlib(t *testing.T) {
	for i := range progCases {
		c := &progCases[i]
		t.Run(c.name, func(t *testing.T) {
			if c.skipStdlib {
				t.Skip("stdlib counts non-interleaved restart intervals in frame MCUs; see progCase doc")
			}
			fix := c.fixtureStream(t)
			dec := decodeAll(t, fix, nil)
			if worst := maxPixelDelta(t, stdlibPix(t, fix), dec.RGB().Pix); worst > 2 {
				t.Fatalf("decoders disagree by up to %d levels, want ≤ 2", worst)
			}
		})
	}
}

// TestRequantizeProgressive is the transcoding payoff: requantizing a
// progressive (or non-interleaved) source emits the stream that
// requantizing the baseline source emits — byte-for-byte on pad-free
// geometry, pixel-for-pixel otherwise (pad blocks carry AC only in the
// interleaved source) — and stdlib decodes the result, so progressive
// inputs migrate losslessly into the baseline interleaved layout.
func TestRequantizeProgressive(t *testing.T) {
	luma := qtable.MustScale(qtable.StdLuminance, 60)
	chroma := qtable.MustScale(qtable.StdChrominance, 60)
	for i := range progCases {
		c := &progCases[i]
		t.Run(c.name, func(t *testing.T) {
			base := decodeAll(t, c.baselineStream(t), nil)
			prog := decodeAll(t, c.fixtureStream(t), nil)
			var fromBase, fromProg bytes.Buffer
			if err := Requantize(&fromBase, base, luma, chroma, nil); err != nil {
				t.Fatalf("requantize baseline: %v", err)
			}
			if err := Requantize(&fromProg, prog, luma, chroma, nil); err != nil {
				t.Fatalf("requantize fixture: %v", err)
			}
			out := decodeAll(t, fromProg.Bytes(), nil)
			if out.Progressive {
				t.Fatal("requantized output reports Progressive")
			}
			if padFree(base) {
				if !bytes.Equal(fromBase.Bytes(), fromProg.Bytes()) {
					t.Fatal("requantized bytes differ between baseline and re-emitted source")
				}
			} else if !bytes.Equal(decodeAll(t, fromBase.Bytes(), nil).RGB().Pix, out.RGB().Pix) {
				t.Fatal("requantized outputs decode to different pixels")
			}
			// stdlib must accept the transcode (it is plain baseline now).
			stdlibPix(t, fromProg.Bytes())
		})
	}
}

// TestProgressiveDecodeIntoReuse drives the pooled-grid zeroing policy:
// a large progressive decode leaves a populated coefficient grid in the
// destination, and a smaller sparse (non-interleaved) decode into the
// same Decoded must not inherit any of it.
func TestProgressiveDecodeIntoReuse(t *testing.T) {
	big := caseByName(t, "rgb420-standard").fixtureStream(t) // 67×45 color
	small := caseByName(t, "nonint-gray-dri").fixtureStream(t)
	want := decodeAll(t, small, nil) // fresh destination
	var dst Decoded
	if err := DecodeInto(bytes.NewReader(big), &dst, nil); err != nil {
		t.Fatalf("big decode: %v", err)
	}
	if err := DecodeInto(bytes.NewReader(small), &dst, nil); err != nil {
		t.Fatalf("small decode into reused dst: %v", err)
	}
	decodedEqual(t, want, &dst, "reused destination")
}

// TestProgressiveTruncatedRefinement cuts a refinement-heavy stream
// inside its last scan: the decoder must fail loudly, not return a
// silently skewed image.
func TestProgressiveTruncatedRefinement(t *testing.T) {
	fix := caseByName(t, "rgb420-standard").fixtureStream(t) // ends in AC refinement
	if _, err := Decode(bytes.NewReader(fix[:len(fix)-40])); err == nil {
		t.Fatal("decoder accepted a truncated refinement scan")
	}
}

// TestProgressiveFixturesCheckedIn keeps the generated corpus on disk
// current: every case's bytes must match testdata/progressive/<name>.jpg
// exactly. Run with UPDATE_PROGRESSIVE_FIXTURES=1 to regenerate.
func TestProgressiveFixturesCheckedIn(t *testing.T) {
	dir := filepath.Join("testdata", "progressive")
	update := os.Getenv("UPDATE_PROGRESSIVE_FIXTURES") != ""
	if update {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for i := range progCases {
		c := &progCases[i]
		t.Run(c.name, func(t *testing.T) {
			want := c.fixtureStream(t)
			path := filepath.Join(dir, c.name+".jpg")
			if update {
				if err := os.WriteFile(path, want, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture (run with UPDATE_PROGRESSIVE_FIXTURES=1): %v", err)
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("%s is stale (run with UPDATE_PROGRESSIVE_FIXTURES=1)", path)
			}
			// The checked-in bytes themselves must decode on both decoders
			// (ours only for the skipStdlib restart cadences).
			dec := decodeAll(t, got, nil)
			if c.skipStdlib {
				return
			}
			if worst := maxPixelDelta(t, stdlibPix(t, got), dec.RGB().Pix); worst > 2 {
				t.Fatalf("checked-in fixture disagrees with stdlib by %d levels", worst)
			}
		})
	}
}

// BenchmarkDecodeProgressive measures the multi-scan decode path on a
// standard-script 4:2:0 stream.
func BenchmarkDecodeProgressive(b *testing.B) {
	c := progCase{name: "bench", sub: Sub420, w: 256, h: 192, seed: 5, script: stdProgressionScript}
	fix := c.fixtureStream(b)
	var dst Decoded
	b.SetBytes(int64(len(fix)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodeInto(bytes.NewReader(fix), &dst, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRequantizeProgressive measures the full progressive →
// baseline transcode: multi-scan decode plus coefficient-domain
// recode.
func BenchmarkRequantizeProgressive(b *testing.B) {
	c := progCase{name: "bench", sub: Sub420, w: 256, h: 192, seed: 5, script: stdProgressionScript}
	fix := c.fixtureStream(b)
	luma := qtable.MustScale(qtable.StdLuminance, 60)
	chroma := qtable.MustScale(qtable.StdChrominance, 60)
	var dst Decoded
	var out bytes.Buffer
	b.SetBytes(int64(len(fix)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodeInto(bytes.NewReader(fix), &dst, nil); err != nil {
			b.Fatal(err)
		}
		out.Reset()
		if err := Requantize(&out, &dst, luma, chroma, nil); err != nil {
			b.Fatal(err)
		}
	}
}
