package jpegcodec

// Benchmarks for restart-sharded entropy coding inside a single image —
// the single-image parallelism lever ISSUE 6 adds on top of the batch
// pipeline. Run with a CPU sweep to see the scaling:
//
//	go test ./internal/jpegcodec -run XXX -bench Sharded -benchmem -cpu 1,4,8
//
// "seq" forces ShardWorkers:1 (the pre-sharding code path); "shard"
// uses ShardWorkers:0, which auto-selects GOMAXPROCS workers, so the
// -cpu sweep is what varies the worker count. The frame is 1024×1024
// 4:2:0 with RestartInterval 64 → 4096 MCUs in 64 restart segments.
// On a single-CPU host the two modes measure the same work plus the
// sharding overhead; the ≥2× separation only appears at -cpu 4+ on
// multi-core hardware.

import (
	"bytes"
	"runtime"
	"testing"
)

const (
	benchShardDim = 1024
	benchShardRI  = 64
)

// skipOversubscribedSweep skips a -cpu sweep leg whose GOMAXPROCS
// exceeds the host's CPU count. On such a leg (e.g. -cpu 4,8 on a
// single-core CI runner) the parallel speedup cannot physically appear
// and the measured rows are scheduler-contention noise; skipping emits
// an annotation instead, which bench2json ignores, so the checked-in
// JSON carries only rows the host could meaningfully produce.
func skipOversubscribedSweep(b *testing.B) {
	b.Helper()
	if p, n := runtime.GOMAXPROCS(0), runtime.NumCPU(); p > n {
		b.Skipf("GOMAXPROCS %d exceeds the host's %d CPU(s); sweep leg would be noise", p, n)
	}
}

var benchShardModes = []struct {
	name    string
	workers int
}{
	{"seq", 1},
	{"shard", 0}, // auto: GOMAXPROCS workers, capped at segment count
}

func BenchmarkEncodeSharded(b *testing.B) {
	skipOversubscribedSweep(b)
	img := testImageRGB(benchShardDim, benchShardDim, 31)
	for _, mode := range benchShardModes {
		b.Run(mode.name, func(b *testing.B) {
			opts := &Options{RestartInterval: benchShardRI, ShardWorkers: mode.workers}
			var buf bytes.Buffer
			b.ReportAllocs()
			b.SetBytes(int64(len(img.Pix)))
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if err := EncodeRGB(&buf, img, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEncodeShardedOptimized adds two-pass Huffman optimization,
// where sharding parallelizes both the statistics pass and the scan.
func BenchmarkEncodeShardedOptimized(b *testing.B) {
	skipOversubscribedSweep(b)
	img := testImageRGB(benchShardDim, benchShardDim, 31)
	for _, mode := range benchShardModes {
		b.Run(mode.name, func(b *testing.B) {
			opts := &Options{
				RestartInterval: benchShardRI,
				ShardWorkers:    mode.workers,
				OptimizeHuffman: true,
			}
			var buf bytes.Buffer
			b.ReportAllocs()
			b.SetBytes(int64(len(img.Pix)))
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if err := EncodeRGB(&buf, img, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDecodeSharded(b *testing.B) {
	skipOversubscribedSweep(b)
	img := testImageRGB(benchShardDim, benchShardDim, 31)
	var stream bytes.Buffer
	if err := EncodeRGB(&stream, img, &Options{RestartInterval: benchShardRI}); err != nil {
		b.Fatal(err)
	}
	data := stream.Bytes()
	for _, mode := range benchShardModes {
		b.Run(mode.name, func(b *testing.B) {
			opts := &DecodeOptions{ShardWorkers: mode.workers}
			var dec Decoded
			r := bytes.NewReader(data)
			b.ReportAllocs()
			b.SetBytes(int64(3 * benchShardDim * benchShardDim))
			for i := 0; i < b.N; i++ {
				r.Reset(data)
				if err := DecodeInto(r, &dec, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
