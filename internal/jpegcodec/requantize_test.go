package jpegcodec

import (
	"bytes"
	"image/jpeg"
	"testing"

	"repro/internal/imgutil"
	"repro/internal/qtable"
)

func TestRequantizeBasics(t *testing.T) {
	img := testImageRGB(64, 48, 30)
	src := encodeToBytes(t, img, &Options{
		LumaTable:   qtable.MustScale(qtable.StdLuminance, 95),
		ChromaTable: qtable.MustScale(qtable.StdChrominance, 95),
	})
	dec, err := Decode(bytes.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	newLuma := qtable.MustScale(qtable.StdLuminance, 60)
	newChroma := qtable.MustScale(qtable.StdChrominance, 60)
	if err := Requantize(&out, dec, newLuma, newChroma, nil); err != nil {
		t.Fatal(err)
	}
	if out.Len() >= len(src) {
		t.Fatalf("requantized %d bytes not smaller than source %d", out.Len(), len(src))
	}
	dec2, err := Decode(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("cannot decode requantized stream: %v", err)
	}
	if dec2.QuantTables[0] != newLuma {
		t.Fatal("new luma table not embedded")
	}
	if dec2.W != 64 || dec2.H != 48 || dec2.Sampling != dec.Sampling {
		t.Fatalf("geometry changed: %dx%d %v", dec2.W, dec2.H, dec2.Sampling)
	}
	// The result is standard JFIF.
	if _, err := jpeg.Decode(bytes.NewReader(out.Bytes())); err != nil {
		t.Fatalf("stdlib rejects requantized stream: %v", err)
	}
	// Quality stays reasonable.
	psnr, err := imgutil.PSNR(img.Pix, dec2.RGB().Pix)
	if err != nil {
		t.Fatal(err)
	}
	if psnr < 20 {
		t.Fatalf("requantized PSNR %.1f too low", psnr)
	}
}

// TestRequantizeIdentityIsLossless: requantizing with the same tables must
// reproduce the exact coefficients (and therefore identical pixels).
func TestRequantizeIdentityIsLossless(t *testing.T) {
	img := testImageRGB(48, 40, 31)
	luma := qtable.MustScale(qtable.StdLuminance, 80)
	chroma := qtable.MustScale(qtable.StdChrominance, 80)
	src := encodeToBytes(t, img, &Options{LumaTable: luma, ChromaTable: chroma})
	dec, err := Decode(bytes.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := Requantize(&out, dec, luma, chroma, nil); err != nil {
		t.Fatal(err)
	}
	dec2, err := Decode(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec.RGB().Pix, dec2.RGB().Pix) {
		t.Fatal("identity requantization changed pixels")
	}
}

// TestRequantizeBeatsPixelTranscode: coefficient-domain transcoding must
// not lose more quality than decode→re-encode through pixels.
func TestRequantizeBeatsPixelTranscode(t *testing.T) {
	img := testImageRGB(64, 64, 32)
	srcOpts := &Options{
		LumaTable:   qtable.MustScale(qtable.StdLuminance, 90),
		ChromaTable: qtable.MustScale(qtable.StdChrominance, 90),
	}
	src := encodeToBytes(t, img, srcOpts)
	dec, err := Decode(bytes.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	newLuma := qtable.MustScale(qtable.StdLuminance, 70)
	newChroma := qtable.MustScale(qtable.StdChrominance, 70)

	var coefDomain bytes.Buffer
	if err := Requantize(&coefDomain, dec, newLuma, newChroma, nil); err != nil {
		t.Fatal(err)
	}
	pixDomain := encodeToBytes(t, dec.RGB(), &Options{LumaTable: newLuma, ChromaTable: newChroma})

	decCoef, err := Decode(bytes.NewReader(coefDomain.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	decPix, err := Decode(bytes.NewReader(pixDomain))
	if err != nil {
		t.Fatal(err)
	}
	psnrCoef, err := imgutil.PSNR(img.Pix, decCoef.RGB().Pix)
	if err != nil {
		t.Fatal(err)
	}
	psnrPix, err := imgutil.PSNR(img.Pix, decPix.RGB().Pix)
	if err != nil {
		t.Fatal(err)
	}
	// Allow a hair of slack: the comparison is statistical, but coefficient
	// domain must not be clearly worse.
	if psnrCoef < psnrPix-0.3 {
		t.Fatalf("coefficient-domain %.2f dB below pixel-domain %.2f dB", psnrCoef, psnrPix)
	}
}

func TestRequantizeWithMaskAndOptimize(t *testing.T) {
	img := testImageGray(56, 56, 33)
	var src bytes.Buffer
	if err := EncodeGray(&src, img, &Options{LumaTable: qtable.MustScale(qtable.StdLuminance, 95)}); err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(bytes.NewReader(src.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	mask := qtable.TopZigZag(9)
	var out bytes.Buffer
	opts := &Options{ZeroMask: &mask, OptimizeHuffman: true}
	if err := Requantize(&out, dec, qtable.MustScale(qtable.StdLuminance, 95), qtable.StdChrominance, opts); err != nil {
		t.Fatal(err)
	}
	dec2, err := Decode(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	blocks, _, _ := dec2.Coefficients(0)
	for _, blk := range blocks {
		for n := 0; n < 64; n++ {
			if mask[n] && blk[n] != 0 {
				t.Fatalf("masked band %d nonzero after requantize", n)
			}
		}
	}
	if out.Len() >= src.Len() {
		t.Fatalf("masked+optimized %d not smaller than source %d", out.Len(), src.Len())
	}
}

func TestRequantizeRejectsBadTables(t *testing.T) {
	img := testImageGray(16, 16, 34)
	var src bytes.Buffer
	if err := EncodeGray(&src, img, nil); err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(bytes.NewReader(src.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var bad qtable.Table // all zeros
	if err := Requantize(&bytes.Buffer{}, dec, bad, qtable.StdChrominance, nil); err == nil {
		t.Fatal("invalid table accepted")
	}
}

func BenchmarkRequantize(b *testing.B) {
	img := testImageRGB(128, 128, 35)
	var src bytes.Buffer
	if err := EncodeRGB(&src, img, nil); err != nil {
		b.Fatal(err)
	}
	dec, err := Decode(bytes.NewReader(src.Bytes()))
	if err != nil {
		b.Fatal(err)
	}
	luma := qtable.MustScale(qtable.StdLuminance, 60)
	chroma := qtable.MustScale(qtable.StdChrominance, 60)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out bytes.Buffer
		if err := Requantize(&out, dec, luma, chroma, nil); err != nil {
			b.Fatal(err)
		}
	}
}
