package jpegcodec

import (
	"fmt"
	"sort"

	"repro/internal/bitio"
)

// HuffmanSpec is the wire-format description of a Huffman table: Counts[i]
// is the number of codes of length i+1 (1..16), Values lists the symbols in
// code order (ITU-T T.81 Annex C).
type HuffmanSpec struct {
	Counts [16]uint8
	Values []uint8
}

// totalCodes returns the number of symbols described by the spec.
func (s *HuffmanSpec) totalCodes() int {
	n := 0
	for _, c := range s.Counts {
		n += int(c)
	}
	return n
}

// Validate checks structural invariants: value count matches Counts, and
// the code space is not over-subscribed at any length (Kraft inequality).
func (s *HuffmanSpec) Validate() error {
	if s.totalCodes() != len(s.Values) {
		return fmt.Errorf("jpegcodec: huffman spec has %d counts but %d values", s.totalCodes(), len(s.Values))
	}
	if len(s.Values) == 0 {
		return fmt.Errorf("jpegcodec: empty huffman spec")
	}
	if len(s.Values) > 256 {
		return fmt.Errorf("jpegcodec: huffman spec has %d values (max 256)", len(s.Values))
	}
	code := 0
	for i, c := range s.Counts {
		code += int(c)
		if code > 1<<(i+1) {
			return fmt.Errorf("jpegcodec: huffman code space over-subscribed at length %d", i+1)
		}
		code <<= 1
	}
	return nil
}

// encTable maps a symbol to its canonical code and length for encoding.
type encTable struct {
	code [256]uint32
	size [256]uint8
}

// buildEncTable derives the canonical encoder table per Annex C.
func buildEncTable(spec *HuffmanSpec) (*encTable, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	t := &encTable{}
	code := uint32(0)
	k := 0
	for length := 1; length <= 16; length++ {
		for i := 0; i < int(spec.Counts[length-1]); i++ {
			v := spec.Values[k]
			if t.size[v] != 0 {
				return nil, fmt.Errorf("jpegcodec: symbol %#x appears twice in huffman spec", v)
			}
			t.code[v] = code
			t.size[v] = uint8(length)
			code++
			k++
		}
		code <<= 1
	}
	return t, nil
}

// emit writes the code for symbol v.
func (t *encTable) emit(bw *bitio.Writer, v uint8) error {
	s := t.size[v]
	if s == 0 {
		return fmt.Errorf("jpegcodec: symbol %#x has no huffman code", v)
	}
	return bw.WriteBits(t.code[v], uint(s))
}

// decTable decodes canonical codes with the MINCODE/MAXCODE/VALPTR scheme
// of T.81 Annex F.2.2.3.
type decTable struct {
	minCode [17]int32 // index = code length
	maxCode [17]int32 // -1 when no codes of that length
	valPtr  [17]int32
	values  []uint8
}

// buildDecTable derives decoder tables from a spec.
func buildDecTable(spec *HuffmanSpec) (*decTable, error) {
	t := &decTable{}
	if err := t.init(spec); err != nil {
		return nil, err
	}
	return t, nil
}

// init (re)derives the decoder tables from a spec in place, reusing t's
// values buffer — the allocation-free path the pooled decoder relies on.
func (t *decTable) init(spec *HuffmanSpec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	t.values = append(t.values[:0], spec.Values...)
	code := int32(0)
	k := int32(0)
	for length := 1; length <= 16; length++ {
		n := int32(spec.Counts[length-1])
		if n == 0 {
			t.maxCode[length] = -1
			t.minCode[length] = 0
			t.valPtr[length] = 0
		} else {
			t.valPtr[length] = k
			t.minCode[length] = code
			code += n
			k += n
			t.maxCode[length] = code - 1
		}
		code <<= 1
	}
	return nil
}

// decode reads one symbol from the bit stream.
func (t *decTable) decode(br *bitio.Reader) (uint8, error) {
	code := int32(0)
	for length := 1; length <= 16; length++ {
		bit, err := br.ReadBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | int32(bit)
		if t.maxCode[length] >= 0 && code <= t.maxCode[length] {
			if code >= t.minCode[length] {
				return t.values[t.valPtr[length]+code-t.minCode[length]], nil
			}
		}
	}
	return 0, fmt.Errorf("jpegcodec: invalid huffman code (no symbol within 16 bits)")
}

// BuildOptimizedSpec constructs a length-limited (≤16 bit) Huffman table
// from symbol frequencies, following the IJG/Annex-K.2 procedure: a
// reserved pseudo-symbol guarantees no real symbol is assigned the all-ones
// code, and over-long codes are shortened by the standard BITS adjustment.
func BuildOptimizedSpec(freq *[256]int64) (*HuffmanSpec, error) {
	// freq2 includes the reserved symbol 256 with frequency 1.
	var freq2 [257]int64
	used := 0
	for i, f := range freq {
		if f < 0 {
			return nil, fmt.Errorf("jpegcodec: negative frequency for symbol %d", i)
		}
		freq2[i] = f
		if f > 0 {
			used++
		}
	}
	if used == 0 {
		return nil, fmt.Errorf("jpegcodec: no symbols to code")
	}
	freq2[256] = 1

	codesize := make([]int, 257)
	others := make([]int, 257)
	for i := range others {
		others[i] = -1
	}

	// Iteratively merge the two least-frequent "trees".
	for {
		// c1: least frequent symbol with nonzero freq; ties broken by the
		// larger symbol value (IJG convention, keeps symbol 256 longest).
		c1 := -1
		var v int64 = 1 << 62
		for i := 0; i <= 256; i++ {
			if freq2[i] > 0 && freq2[i] <= v {
				v = freq2[i]
				c1 = i
			}
		}
		// c2: next least frequent, distinct from c1.
		c2 := -1
		v = 1 << 62
		for i := 0; i <= 256; i++ {
			if i != c1 && freq2[i] > 0 && freq2[i] <= v {
				v = freq2[i]
				c2 = i
			}
		}
		if c2 < 0 {
			break // one tree left: done
		}
		freq2[c1] += freq2[c2]
		freq2[c2] = 0
		codesize[c1]++
		for others[c1] >= 0 {
			c1 = others[c1]
			codesize[c1]++
		}
		others[c1] = c2
		codesize[c2]++
		for others[c2] >= 0 {
			c2 = others[c2]
			codesize[c2]++
		}
	}

	// Count codes per length; lengths may exceed 16 at this point.
	var bits [60]int // generous upper bound on code length
	maxLen := 0
	for i := 0; i <= 256; i++ {
		if codesize[i] > 0 {
			if codesize[i] >= len(bits) {
				return nil, fmt.Errorf("jpegcodec: huffman code length %d out of range", codesize[i])
			}
			bits[codesize[i]]++
			if codesize[i] > maxLen {
				maxLen = codesize[i]
			}
		}
	}

	// Limit code lengths to 16 (Annex K.2 adjustment): repeatedly take a
	// pair of over-long codes and re-root them under a shorter prefix.
	for l := maxLen; l > 16; l-- {
		for bits[l] > 0 {
			// Find the longest length < l with at least one code.
			j := l - 2
			for bits[j] == 0 {
				j--
			}
			bits[l] -= 2
			bits[l-1]++
			bits[j+1] += 2
			bits[j]--
		}
	}

	// Remove the reserved symbol: it holds the longest code.
	for l := 16; l >= 1; l-- {
		if bits[l] > 0 {
			bits[l]--
			break
		}
	}

	// Emit symbols sorted by (codesize, symbol value).
	type sym struct {
		v    int
		size int
	}
	var syms []sym
	for i := 0; i < 256; i++ {
		if codesize[i] > 0 {
			syms = append(syms, sym{v: i, size: codesize[i]})
		}
	}
	sort.Slice(syms, func(a, b int) bool {
		if syms[a].size != syms[b].size {
			return syms[a].size < syms[b].size
		}
		return syms[a].v < syms[b].v
	})

	spec := &HuffmanSpec{}
	total := 0
	for l := 1; l <= 16; l++ {
		spec.Counts[l-1] = uint8(bits[l])
		total += bits[l]
	}
	if total != len(syms) {
		return nil, fmt.Errorf("jpegcodec: internal: bits total %d != symbol count %d", total, len(syms))
	}
	for _, s := range syms {
		spec.Values = append(spec.Values, uint8(s.v))
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("jpegcodec: optimized spec invalid: %w", err)
	}
	return spec, nil
}
