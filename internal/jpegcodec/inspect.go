package jpegcodec

// Stream inspection: a lightweight marker walker that reports a JPEG's
// structure — every marker segment with offset and length, the frame
// header, and each scan's spectral-selection/successive-approximation
// parameters and component→table bindings — without entropy-decoding
// anything. Unlike Decode it is deliberately tolerant: frames this
// decoder rejects (arithmetic coding, lossless, hierarchical) still
// inspect fine, which is exactly when a structure dump is most useful.

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// SegmentInfo is one marker in stream order.
type SegmentInfo struct {
	Offset int64 // byte offset of the marker's 0xFF
	Marker byte
	Name   string // e.g. "SOF2 (progressive DCT)", "APP0", "RST3"
	Length int    // payload bytes after the 2 length bytes; -1 for bare markers
	Detail string // human-readable payload summary ("" when there is none)
}

// FrameComponent is one SOF component entry.
type FrameComponent struct {
	ID   byte
	H, V int // sampling factors
	Tq   int // quantization table id
}

// FrameInfo is the parsed SOF header.
type FrameInfo struct {
	Marker      byte
	Name        string
	Precision   int
	Width       int
	Height      int
	Progressive bool
	Supported   bool // true for the coding processes Decode handles (SOF0/1/2)
	Components  []FrameComponent
}

// ScanComponent is one SOS component entry: the component id and its
// DC/AC Huffman table selectors.
type ScanComponent struct {
	ID     byte
	Td, Ta int
}

// ScanInfo is one SOS header plus the restart interval in effect for
// that scan and the size of its entropy-coded payload.
type ScanInfo struct {
	Offset          int64
	Components      []ScanComponent
	Ss, Se, Ah, Al  int
	RestartInterval int
	EntropyBytes    int64 // entropy-coded data incl. RSTn markers
}

// StreamInfo is the result of Inspect.
type StreamInfo struct {
	Segments []SegmentInfo
	Frame    *FrameInfo // nil if the walk ended before a SOF
	Scans    []ScanInfo
}

// markerName names every T.81 marker, folding the frame types this
// decoder rejects through the same descriptions UnsupportedFormatError
// uses.
func markerName(m byte) string {
	switch {
	case m == mSOI:
		return "SOI"
	case m == mEOI:
		return "EOI"
	case m == mSOS:
		return "SOS"
	case m == mDHT:
		return "DHT"
	case m == mDQT:
		return "DQT"
	case m == mDRI:
		return "DRI"
	case m == mCOM:
		return "COM"
	case m == mTEM:
		return "TEM"
	case m == 0xDC:
		return "DNL"
	case m == mSOF0:
		return "SOF0 (baseline DCT)"
	case m == mSOF1:
		return "SOF1 (extended sequential DCT)"
	case m == mSOF2:
		return "SOF2 (progressive DCT)"
	case m >= 0xC3 && m <= 0xCF:
		return unsupportedFrameName(m)
	case m >= mAPP0 && m <= mAPP0+15:
		return fmt.Sprintf("APP%d", m-mAPP0)
	case m >= mRST0 && m <= mRST0+7:
		return fmt.Sprintf("RST%d", m-mRST0)
	default:
		return fmt.Sprintf("marker %#02x", m)
	}
}

// inspectReader tracks the byte offset of a buffered stream.
type inspectReader struct {
	br  *bufio.Reader
	off int64
}

func (r *inspectReader) readByte() (byte, error) {
	b, err := r.br.ReadByte()
	if err == nil {
		r.off++
	}
	return b, err
}

// Inspect walks r's marker structure. It returns whatever was parsed
// even on error, so a truncated or partially unsupported stream still
// yields its readable prefix; only a missing SOI is fatal from the
// start. Entropy-coded data is skipped byte-wise (never decoded), so
// streams whose coding process Decode rejects inspect completely.
func Inspect(r io.Reader) (*StreamInfo, error) {
	ir := &inspectReader{br: bufio.NewReader(r)}
	info := &StreamInfo{}
	b0, err := ir.readByte()
	if err != nil {
		return info, fmt.Errorf("jpegcodec: inspect: %w", err)
	}
	b1, err := ir.readByte()
	if err != nil {
		return info, fmt.Errorf("jpegcodec: inspect: %w", err)
	}
	if b0 != 0xFF || b1 != mSOI {
		return info, fmt.Errorf("jpegcodec: inspect: missing SOI marker")
	}
	info.Segments = append(info.Segments, SegmentInfo{Offset: 0, Marker: mSOI, Name: "SOI", Length: -1})
	ri := 0
	var pending byte // marker terminating the last entropy skip
	var pendingOff int64
	for {
		var m byte
		off := ir.off
		if pending != 0 {
			m, off = pending, pendingOff
			pending = 0
		} else {
			var err error
			if m, err = ir.readMarker(); err != nil {
				if err == io.EOF {
					return info, nil
				}
				return info, fmt.Errorf("jpegcodec: inspect: %w", err)
			}
		}
		seg := SegmentInfo{Offset: off, Marker: m, Name: markerName(m), Length: -1}
		switch {
		case m == mEOI:
			info.Segments = append(info.Segments, seg)
			return info, nil
		case m == mTEM || (m >= mRST0 && m <= mRST0+7):
			// Bare markers carry no length.
			info.Segments = append(info.Segments, seg)
			continue
		}
		payload, err := ir.segment()
		if err != nil {
			info.Segments = append(info.Segments, seg)
			return info, fmt.Errorf("jpegcodec: inspect: %s segment: %w", seg.Name, err)
		}
		seg.Length = len(payload)
		switch {
		case m >= 0xC0 && m <= 0xCF && m != mDHT && m != 0xC8:
			seg.Detail = info.parseFrame(m, payload)
		case m == mSOS:
			detail, scan, perr := parseScanHeader(off, payload, ri)
			seg.Detail = detail
			if perr != nil {
				info.Segments = append(info.Segments, seg)
				return info, fmt.Errorf("jpegcodec: inspect: %w", perr)
			}
			n, next, err := ir.skipEntropy()
			scan.EntropyBytes = n
			info.Scans = append(info.Scans, scan)
			info.Segments = append(info.Segments, seg)
			if err != nil {
				if err == io.EOF {
					return info, nil
				}
				return info, fmt.Errorf("jpegcodec: inspect: %w", err)
			}
			pending, pendingOff = next, ir.off-2
			continue
		case m == mDRI:
			if len(payload) >= 2 {
				ri = int(payload[0])<<8 | int(payload[1])
				seg.Detail = fmt.Sprintf("interval %d", ri)
			}
		case m == mDQT:
			seg.Detail = dqtDetail(payload)
		case m == mDHT:
			seg.Detail = dhtDetail(payload)
		case (m >= mAPP0 && m <= mAPP0+15) || m == mCOM:
			seg.Detail = metaDetail(payload)
		}
		info.Segments = append(info.Segments, seg)
	}
}

// readMarker consumes the 0xFF (plus any fill bytes) and returns the
// marker code.
func (r *inspectReader) readMarker() (byte, error) {
	b, err := r.readByte()
	if err != nil {
		return 0, err
	}
	if b != 0xFF {
		return 0, fmt.Errorf("expected marker at offset %d, found %#02x", r.off-1, b)
	}
	for b == 0xFF {
		if b, err = r.readByte(); err != nil {
			return 0, err
		}
	}
	return b, nil
}

// segment reads one length-prefixed payload.
func (r *inspectReader) segment() ([]byte, error) {
	hi, err := r.readByte()
	if err != nil {
		return nil, err
	}
	lo, err := r.readByte()
	if err != nil {
		return nil, err
	}
	n := int(hi)<<8 | int(lo)
	if n < 2 {
		return nil, fmt.Errorf("segment length %d below the 2 length bytes", n)
	}
	p := make([]byte, n-2)
	for i := range p {
		if p[i], err = r.readByte(); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// skipEntropy scans past entropy-coded data, counting the bytes it
// passes, and returns the marker code that terminated it. Stuffed
// 0xFF00 pairs and RSTn markers belong to the entropy stream: restarts
// are counted toward EntropyBytes rather than reported as segments, so
// a heavily restarted scan stays one line in the dump.
func (r *inspectReader) skipEntropy() (int64, byte, error) {
	start := r.off
	for {
		b, err := r.readByte()
		if err != nil {
			return r.off - start, 0, err
		}
		if b != 0xFF {
			continue
		}
		m, err := r.readByte()
		for m == 0xFF && err == nil { // fill bytes
			m, err = r.readByte()
		}
		if err != nil {
			return r.off - start, 0, err
		}
		if m == 0x00 || (m >= mRST0 && m <= mRST0+7) {
			continue
		}
		return r.off - start - 2, m, nil
	}
}

// parseFrame records the SOF header and returns its one-line summary.
func (info *StreamInfo) parseFrame(m byte, p []byte) string {
	if len(p) < 6 {
		return "truncated frame header"
	}
	f := &FrameInfo{
		Marker:      m,
		Name:        markerName(m),
		Precision:   int(p[0]),
		Height:      int(p[1])<<8 | int(p[2]),
		Width:       int(p[3])<<8 | int(p[4]),
		Progressive: m == mSOF2,
		Supported:   m == mSOF0 || m == mSOF1 || m == mSOF2,
	}
	n := int(p[5])
	for i := 0; i < n && 6+3*i+2 < len(p); i++ {
		f.Components = append(f.Components, FrameComponent{
			ID: p[6+3*i],
			H:  int(p[7+3*i] >> 4),
			V:  int(p[7+3*i] & 0x0F),
			Tq: int(p[8+3*i]),
		})
	}
	if info.Frame == nil {
		info.Frame = f
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d-bit %dx%d,", f.Precision, f.Width, f.Height)
	for _, c := range f.Components {
		fmt.Fprintf(&sb, " C%d %dx%d Q%d", c.ID, c.H, c.V, c.Tq)
	}
	return sb.String()
}

// parseScanHeader decodes an SOS payload into a ScanInfo and its
// one-line summary.
func parseScanHeader(off int64, p []byte, ri int) (string, ScanInfo, error) {
	scan := ScanInfo{Offset: off, RestartInterval: ri}
	if len(p) < 1 {
		return "", scan, fmt.Errorf("empty SOS payload")
	}
	ns := int(p[0])
	if len(p) < 1+2*ns+3 {
		return "", scan, fmt.Errorf("SOS payload too short for %d components", ns)
	}
	for i := 0; i < ns; i++ {
		scan.Components = append(scan.Components, ScanComponent{
			ID: p[1+2*i],
			Td: int(p[2+2*i] >> 4),
			Ta: int(p[2+2*i] & 0x0F),
		})
	}
	scan.Ss = int(p[1+2*ns])
	scan.Se = int(p[2+2*ns])
	scan.Ah = int(p[3+2*ns] >> 4)
	scan.Al = int(p[3+2*ns] & 0x0F)
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ss=%d Se=%d Ah=%d Al=%d,", scan.Ss, scan.Se, scan.Ah, scan.Al)
	for _, c := range scan.Components {
		fmt.Fprintf(&sb, " C%d DC%d/AC%d", c.ID, c.Td, c.Ta)
	}
	if ri > 0 {
		fmt.Fprintf(&sb, ", restart %d", ri)
	}
	return sb.String(), scan, nil
}

// dqtDetail summarizes a DQT payload's table ids and precisions.
func dqtDetail(p []byte) string {
	var parts []string
	for len(p) > 0 {
		pq, id := int(p[0]>>4), int(p[0]&0x0F)
		size := 65
		label := fmt.Sprintf("Q%d (8-bit)", id)
		if pq == 1 {
			size = 129
			label = fmt.Sprintf("Q%d (16-bit)", id)
		}
		if len(p) < size {
			parts = append(parts, label+" truncated")
			break
		}
		parts = append(parts, label)
		p = p[size:]
	}
	return strings.Join(parts, ", ")
}

// dhtDetail summarizes a DHT payload's table classes and ids.
func dhtDetail(p []byte) string {
	var parts []string
	for len(p) >= 17 {
		class, id := int(p[0]>>4), int(p[0]&0x0F)
		n := 0
		for _, c := range p[1:17] {
			n += int(c)
		}
		kind := "DC"
		if class == 1 {
			kind = "AC"
		}
		parts = append(parts, fmt.Sprintf("%s%d (%d codes)", kind, id, n))
		if len(p) < 17+n {
			parts[len(parts)-1] += " truncated"
			break
		}
		p = p[17+n:]
	}
	return strings.Join(parts, ", ")
}

// metaDetail labels an APPn/COM payload with its printable tag prefix
// (JFIF, Exif, ICC_PROFILE, a comment's text, …).
func metaDetail(p []byte) string {
	n := 0
	for n < len(p) && n < 24 && p[n] >= 0x20 && p[n] < 0x7F {
		n++
	}
	if n == 0 {
		return ""
	}
	tag := string(p[:n])
	if n < len(p) && n < 24 {
		return fmt.Sprintf("%q", tag)
	}
	return fmt.Sprintf("%q…", tag)
}
