package jpegcodec

// Transform-engine equivalence: the AAN fast DCT and the naive separable
// DCT must be interchangeable without changing a single emitted byte.
// Their floating-point outputs differ by ~1e-12 per coefficient, and the
// tie-snapping quantizer rounds both sides of that difference to the same
// integer, so streams — not just pixels — are required to be identical
// for encode and requantize. Decode paths reconstruct pixels (no
// quantizer downstream), so engines there may differ by one grey level
// from IDCT rounding.

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/dct"
	"repro/internal/qtable"
)

var bothEngines = []dct.Transform{dct.TransformNaive, dct.TransformAAN}

// randTile fills an 8×8 sample tile with uniform noise — the worst case
// for knife-edge quantizer ties, since integer-valued inputs make the
// rational DCT bands (u,v ∈ {0,4}) land on exact multiples of 1/8.
func randTile(rng *rand.Rand) [64]uint8 {
	var tile [64]uint8
	for i := range tile {
		tile[i] = uint8(rng.Intn(256))
	}
	return tile
}

func TestBlockCoefficientsEngineEquivalence(t *testing.T) {
	tables := []qtable.Table{
		qtable.StdLuminance,
		qtable.StdChrominance,
		qtable.MustScale(qtable.StdLuminance, 100), // all-ones: maximal tie exposure
		qtable.Uniform(16),
	}
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 2000; trial++ {
		tile := randTile(rng)
		tbl := tables[trial%len(tables)]
		// Each engine quantizes through its own folded divisors — the
		// production pairing, where the AAN scale lives in the table.
		naive := blockCoefficients(&tile, tbl.FwdScaled(dct.TransformNaive), nil, dct.TransformNaive)
		aan := blockCoefficients(&tile, tbl.FwdScaled(dct.TransformAAN), nil, dct.TransformAAN)
		if naive != aan {
			for i := range naive {
				if naive[i] != aan[i] {
					t.Fatalf("trial %d: band %d quantizes to %d (naive) vs %d (aan)",
						trial, i, naive[i], aan[i])
				}
			}
		}
	}
}

func TestEncodeEngineStreamEquivalence(t *testing.T) {
	cases := []struct {
		name string
		opts Options
	}{
		{"defaults-420", Options{}},
		{"444", Options{Subsampling: Sub444}},
		{"optimized-huffman", Options{OptimizeHuffman: true}},
		{"restart", Options{RestartInterval: 2}},
		{"qf100", Options{
			LumaTable:   qtable.MustScale(qtable.StdLuminance, 100),
			ChromaTable: qtable.MustScale(qtable.StdChrominance, 100),
		}},
	}
	sizes := []struct{ w, h int }{{64, 64}, {17, 9}, {8, 8}, {33, 40}}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for si, sz := range sizes {
				img := testImageRGB(sz.w, sz.h, int64(100+si))
				optsNaive := tc.opts
				optsNaive.Transform = dct.TransformNaive
				optsAAN := tc.opts
				optsAAN.Transform = dct.TransformAAN
				a := encodeToBytes(t, img, &optsNaive)
				b := encodeToBytes(t, img, &optsAAN)
				if !bytes.Equal(a, b) {
					t.Fatalf("%dx%d: engines emit different streams (%d vs %d bytes)",
						sz.w, sz.h, len(a), len(b))
				}
			}
		})
	}
}

func TestEncodeGrayEngineStreamEquivalence(t *testing.T) {
	img := testImageGray(48, 31, 7)
	var a, b bytes.Buffer
	if err := EncodeGray(&a, img, &Options{Transform: dct.TransformNaive}); err != nil {
		t.Fatal(err)
	}
	if err := EncodeGray(&b, img, &Options{Transform: dct.TransformAAN}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("gray engines emit different streams (%d vs %d bytes)", a.Len(), b.Len())
	}
}

func TestRequantizeEngineStreamEquivalence(t *testing.T) {
	img := testImageRGB(40, 40, 9)
	stream := encodeToBytes(t, img, &Options{})
	newLuma := qtable.MustScale(qtable.StdLuminance, 40)
	newChroma := qtable.MustScale(qtable.StdChrominance, 40)
	var outs [2][]byte
	for i, xf := range bothEngines {
		dec, err := Decode(bytes.NewReader(stream))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		opts := &Options{OptimizeHuffman: true, Transform: xf}
		if err := Requantize(&buf, dec, newLuma, newChroma, opts); err != nil {
			t.Fatal(err)
		}
		outs[i] = buf.Bytes()
	}
	if !bytes.Equal(outs[0], outs[1]) {
		t.Fatalf("requantize engines emit different streams (%d vs %d bytes)",
			len(outs[0]), len(outs[1]))
	}
}

// TestDecodeEngineAgreement bounds the decode-side engine difference: the
// same stream reconstructed under both IDCTs may differ only by the one
// grey level that rounding can move.
func TestDecodeEngineAgreement(t *testing.T) {
	img := testImageRGB(56, 35, 13)
	stream := encodeToBytes(t, img, &Options{})
	var rgb [2][]uint8
	for i, xf := range bothEngines {
		var dec Decoded
		if err := DecodeInto(bytes.NewReader(stream), &dec, &DecodeOptions{Transform: xf}); err != nil {
			t.Fatal(err)
		}
		rgb[i] = dec.RGB().Pix
	}
	worst := 0
	for i := range rgb[0] {
		d := int(rgb[0][i]) - int(rgb[1][i])
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	if worst > 1 {
		t.Fatalf("decode engines disagree by up to %d grey levels", worst)
	}
}

// TestDecodeIntoReuseMatchesFreshDecode drives one Decoded through a
// sequence of different streams (shrinking and growing, color and gray)
// and checks every reused decode against a fresh one.
func TestDecodeIntoReuseMatchesFreshDecode(t *testing.T) {
	streams := [][]byte{
		encodeToBytes(t, testImageRGB(64, 48, 1), &Options{}),
		encodeToBytes(t, testImageRGB(16, 16, 2), &Options{Subsampling: Sub444}),
		encodeToBytes(t, testImageRGB(80, 24, 3), &Options{OptimizeHuffman: true}),
	}
	{
		var buf bytes.Buffer
		if err := EncodeGray(&buf, testImageGray(33, 57, 4), nil); err != nil {
			t.Fatal(err)
		}
		streams = append(streams, buf.Bytes())
	}

	var reused Decoded
	for round := 0; round < 2; round++ {
		for si, stream := range streams {
			if err := DecodeInto(bytes.NewReader(stream), &reused, nil); err != nil {
				t.Fatalf("round %d stream %d: %v", round, si, err)
			}
			fresh, err := Decode(bytes.NewReader(stream))
			if err != nil {
				t.Fatal(err)
			}
			if reused.W != fresh.W || reused.H != fresh.H || reused.Components != fresh.Components {
				t.Fatalf("round %d stream %d: metadata %dx%d/%d, want %dx%d/%d",
					round, si, reused.W, reused.H, reused.Components, fresh.W, fresh.H, fresh.Components)
			}
			if !bytes.Equal(reused.RGB().Pix, fresh.RGB().Pix) {
				t.Fatalf("round %d stream %d: reused decode diverges from fresh decode", round, si)
			}
			for ci := 0; ci < fresh.Components; ci++ {
				rc, rx, ry := reused.Coefficients(ci)
				fc, fx, fy := fresh.Coefficients(ci)
				if rx != fx || ry != fy || len(rc) != len(fc) {
					t.Fatalf("round %d stream %d comp %d: grid %dx%d/%d, want %dx%d/%d",
						round, si, ci, rx, ry, len(rc), fx, fy, len(fc))
				}
				for bi := range fc {
					if rc[bi] != fc[bi] {
						t.Fatalf("round %d stream %d comp %d block %d: coefficients diverge", round, si, ci, bi)
					}
				}
			}
		}
	}
}

// TestDecodeIntoRejectsBadInput covers the new API's argument checks.
func TestDecodeIntoRejectsBadInput(t *testing.T) {
	stream := encodeToBytes(t, testImageRGB(8, 8, 5), nil)
	if err := DecodeInto(bytes.NewReader(stream), nil, nil); err == nil {
		t.Fatal("nil destination must be rejected")
	}
	var dec Decoded
	if err := DecodeInto(bytes.NewReader(stream), &dec, &DecodeOptions{Transform: dct.Transform(9)}); err == nil {
		t.Fatal("invalid transform must be rejected")
	}
	if err := EncodeRGB(&bytes.Buffer{}, testImageRGB(8, 8, 6), &Options{Transform: dct.Transform(9)}); err == nil {
		t.Fatal("encode must reject an invalid transform")
	}
	d2, err := Decode(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if err := Requantize(&bytes.Buffer{}, d2, qtable.StdLuminance, qtable.StdChrominance,
		&Options{Transform: dct.Transform(9)}); err == nil {
		t.Fatal("requantize must reject an invalid transform")
	}
}

// TestDecodedReset verifies Reset clears content but keeps capacity.
func TestDecodedReset(t *testing.T) {
	stream := encodeToBytes(t, testImageRGB(32, 32, 8), nil)
	var dec Decoded
	if err := DecodeInto(bytes.NewReader(stream), &dec, nil); err != nil {
		t.Fatal(err)
	}
	pixCap := cap(dec.planes[0].pix)
	dec.Reset()
	if dec.W != 0 || dec.H != 0 || dec.Components != 0 || len(dec.QuantTables) != 0 {
		t.Fatalf("Reset left metadata behind: %+v", dec)
	}
	if len(dec.planes[0].pix) != 0 || cap(dec.planes[0].pix) != pixCap {
		t.Fatalf("Reset must keep buffer capacity (len=%d cap=%d, want 0/%d)",
			len(dec.planes[0].pix), cap(dec.planes[0].pix), pixCap)
	}
}
