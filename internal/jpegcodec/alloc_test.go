package jpegcodec

// Allocation-regression tests for the pooled encode path. Before the
// sync.Pool scratch landed, every encode allocated its YCbCr planes,
// subsampled chroma, per-component coefficient grids and entropy
// buffers — hundreds of allocations and ~100 KB per 64×64 image. The
// pooled steady state must stay down to the handful of small marker
// slices the stream emission makes. Bounds are deliberately loose
// (~2× observed) so they catch a lost pool, not allocator noise.

import (
	"bytes"
	"testing"

	"repro/internal/imgutil"
)

func allocTestImage() *imgutil.RGB {
	im := imgutil.NewRGB(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			im.Set(x, y, uint8(x*4), uint8(y*4), uint8((x+y)*2))
		}
	}
	return im
}

func TestEncodeRGBAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under -race")
	}
	img := allocTestImage()
	var buf bytes.Buffer
	encode := func() {
		buf.Reset()
		if err := EncodeRGB(&buf, img, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		encode() // warm the scratch pools and the cached Huffman tables
	}
	allocs := testing.AllocsPerRun(100, encode)
	t.Logf("pooled EncodeRGB: %.1f allocs/op", allocs)
	if allocs > 64 {
		t.Fatalf("steady-state EncodeRGB makes %.1f allocs/op, want ≤ 64 (pooling regressed)", allocs)
	}
}

func TestEncodeGrayAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under -race")
	}
	img := allocTestImage().ToGray()
	var buf bytes.Buffer
	encode := func() {
		buf.Reset()
		if err := EncodeGray(&buf, img, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		encode()
	}
	allocs := testing.AllocsPerRun(100, encode)
	t.Logf("pooled EncodeGray: %.1f allocs/op", allocs)
	if allocs > 44 {
		t.Fatalf("steady-state EncodeGray makes %.1f allocs/op, want ≤ 44 (pooling regressed)", allocs)
	}
}

// TestDecodeAllocsBounded keeps the decoder honest too: its output
// (planes, coefficient grids) must be allocated fresh — it escapes to
// the caller — but the per-call overhead beyond that should stay small
// and, above all, must not scale with repeated use.
func TestDecodeAllocsBounded(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under -race")
	}
	var buf bytes.Buffer
	if err := EncodeRGB(&buf, allocTestImage(), nil); err != nil {
		t.Fatal(err)
	}
	stream := buf.Bytes()
	decode := func() {
		if _, err := Decode(bytes.NewReader(stream)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		decode()
	}
	allocs := testing.AllocsPerRun(50, decode)
	t.Logf("Decode: %.1f allocs/op", allocs)
	if allocs > 120 {
		t.Fatalf("Decode makes %.1f allocs/op, want ≤ 120", allocs)
	}
}
