package jpegcodec

// Allocation-regression tests for the pooled encode and decode paths.
// Before the sync.Pool scratch landed, every encode allocated its YCbCr
// planes, subsampled chroma, per-component coefficient grids and entropy
// buffers — hundreds of allocations and ~100 KB per 64×64 image — and
// every decode re-allocated its parse state and output working set. The
// pooled steady states must stay down to the handful of small slices
// that genuinely escape. Bounds are deliberately loose (~2–4× observed)
// so they catch a lost pool, not allocator noise.

import (
	"bytes"
	"testing"

	"repro/internal/imgutil"
)

func allocTestImage() *imgutil.RGB {
	im := imgutil.NewRGB(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			im.Set(x, y, uint8(x*4), uint8(y*4), uint8((x+y)*2))
		}
	}
	return im
}

func TestEncodeRGBAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under -race")
	}
	img := allocTestImage()
	var buf bytes.Buffer
	encode := func() {
		buf.Reset()
		if err := EncodeRGB(&buf, img, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		encode() // warm the scratch pools and the cached Huffman tables
	}
	allocs := testing.AllocsPerRun(100, encode)
	t.Logf("pooled EncodeRGB: %.1f allocs/op", allocs)
	if allocs > 64 {
		t.Fatalf("steady-state EncodeRGB makes %.1f allocs/op, want ≤ 64 (pooling regressed)", allocs)
	}
}

func TestEncodeGrayAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under -race")
	}
	img := allocTestImage().ToGray()
	var buf bytes.Buffer
	encode := func() {
		buf.Reset()
		if err := EncodeGray(&buf, img, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		encode()
	}
	allocs := testing.AllocsPerRun(100, encode)
	t.Logf("pooled EncodeGray: %.1f allocs/op", allocs)
	if allocs > 44 {
		t.Fatalf("steady-state EncodeGray makes %.1f allocs/op, want ≤ 44 (pooling regressed)", allocs)
	}
}

// TestDecodeAllocsBounded keeps the fresh-decode path honest: its output
// (planes, coefficient grids, the Decoded itself) must be allocated
// fresh — it escapes to the caller — but with the decoder parse state
// pooled, that output is all that remains. Before the pooled decoder the
// same loop made ~100 allocs/op; it now makes ~10.
func TestDecodeAllocsBounded(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under -race")
	}
	var buf bytes.Buffer
	if err := EncodeRGB(&buf, allocTestImage(), nil); err != nil {
		t.Fatal(err)
	}
	stream := buf.Bytes()
	decode := func() {
		if _, err := Decode(bytes.NewReader(stream)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		decode()
	}
	allocs := testing.AllocsPerRun(50, decode)
	t.Logf("Decode: %.1f allocs/op", allocs)
	if allocs > 24 {
		t.Fatalf("Decode makes %.1f allocs/op, want ≤ 24 (decoder pooling regressed)", allocs)
	}
}

// TestDecodeIntoAllocsSteadyState mirrors the encode bounds for the
// pooled decode path: with the destination's planes, coefficient grids
// and table map reused and the decoder parse state drawn from the pool,
// a steady-state DecodeInto must make no allocations at all (observed
// 0.0; the bound leaves room for allocator noise only).
func TestDecodeIntoAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under -race")
	}
	var buf bytes.Buffer
	if err := EncodeRGB(&buf, allocTestImage(), nil); err != nil {
		t.Fatal(err)
	}
	stream := buf.Bytes()
	var dec Decoded
	r := bytes.NewReader(stream)
	decode := func() {
		r.Reset(stream)
		if err := DecodeInto(r, &dec, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		decode() // warm the destination buffers and the decoder pool
	}
	allocs := testing.AllocsPerRun(100, decode)
	t.Logf("pooled DecodeInto: %.1f allocs/op", allocs)
	if allocs > 4 {
		t.Fatalf("steady-state DecodeInto makes %.1f allocs/op, want ≤ 4 (decode pooling regressed)", allocs)
	}
}

// TestDecodeIntoRGBIntoAllocsSteadyState extends the bound across pixel
// reconstruction: reusing both the Decoded and the output image keeps
// the full stream→RGB loop allocation-free at steady state.
func TestDecodeIntoRGBIntoAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under -race")
	}
	var buf bytes.Buffer
	if err := EncodeRGB(&buf, allocTestImage(), nil); err != nil {
		t.Fatal(err)
	}
	stream := buf.Bytes()
	var dec Decoded
	img := &imgutil.RGB{}
	r := bytes.NewReader(stream)
	decode := func() {
		r.Reset(stream)
		if err := DecodeInto(r, &dec, nil); err != nil {
			t.Fatal(err)
		}
		img = dec.RGBInto(img)
	}
	for i := 0; i < 8; i++ {
		decode()
	}
	allocs := testing.AllocsPerRun(100, decode)
	t.Logf("pooled DecodeInto+RGBInto: %.1f allocs/op", allocs)
	if allocs > 4 {
		t.Fatalf("steady-state DecodeInto+RGBInto makes %.1f allocs/op, want ≤ 4", allocs)
	}
}
