package jpegcodec

// Regression test for the decoder's MaxPixels guard: both SOF dimensions
// can legally be 65535, whose product overflows int on 32-bit platforms;
// the guard must use overflow-safe arithmetic so a hostile header cannot
// wrap past the cap and reach the plane-sizing allocations.

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// hostileSOFStream hand-assembles SOI + a baseline SOF0 declaring the
// given dimensions — all the decoder parses before the guard runs.
func hostileSOFStream(w, h int) []byte {
	var b bytes.Buffer
	b.Write([]byte{0xFF, mSOI})
	sof := []byte{8, byte(h >> 8), byte(h), byte(w >> 8), byte(w), 1, 1, 0x11, 0}
	b.Write([]byte{0xFF, mSOF0, byte((len(sof) + 2) >> 8), byte(len(sof) + 2)})
	b.Write(sof)
	return b.Bytes()
}

func TestDecodeMaxPixelsGuardOverflowSafe(t *testing.T) {
	cases := []struct {
		name      string
		w, h      int
		maxPixels int
	}{
		// 46341² = 2147488281 wraps negative in 32-bit int, slipping
		// under any positive cap on a 32-bit build with naive w*h.
		{"wrap-negative", 46341, 46341, 1 << 24},
		// 65535×65535 ≈ 2^32 wraps to a small positive value.
		{"wrap-small", 65535, 65535, 1 << 24},
		{"single-huge-dim", 65535, 1, 1 << 10},
		{"just-over", 4097, 4096, 1 << 24},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var dec Decoded
			err := DecodeInto(bytes.NewReader(hostileSOFStream(tc.w, tc.h)), &dec,
				&DecodeOptions{MaxPixels: tc.maxPixels})
			if err == nil || !strings.Contains(err.Error(), "decode limit") {
				t.Fatalf("%dx%d against cap %d: err %v, want the pixel-limit rejection",
					tc.w, tc.h, tc.maxPixels, err)
			}
			want := fmt.Sprintf("%dx%d", tc.w, tc.h)
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("rejection %v does not name the declared dimensions %s", err, want)
			}
		})
	}

	// At-the-cap dimensions pass the guard and fail later (no scan data),
	// proving the rejections above came from the guard, not the parser.
	var dec Decoded
	err := DecodeInto(bytes.NewReader(hostileSOFStream(4096, 4096)), &dec,
		&DecodeOptions{MaxPixels: 1 << 24})
	if err == nil || strings.Contains(err.Error(), "decode limit") {
		t.Fatalf("in-bounds frame: err %v, want a non-guard parse failure", err)
	}
}
