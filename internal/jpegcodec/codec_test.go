package jpegcodec

import (
	"bytes"
	"image"
	"image/jpeg"
	"math"
	"math/rand"
	"testing"

	"repro/internal/imgutil"
	"repro/internal/qtable"
)

// testImageRGB builds a structured color image: smooth gradients plus a
// textured region, so that both low and high frequencies carry energy.
func testImageRGB(w, h int, seed int64) *imgutil.RGB {
	rng := rand.New(rand.NewSource(seed))
	im := imgutil.NewRGB(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r := uint8((x * 255) / max(w-1, 1))
			g := uint8((y * 255) / max(h-1, 1))
			b := uint8(128 + 100*math.Sin(float64(x)*0.9)*math.Cos(float64(y)*0.7))
			// Sprinkle noise to exercise high-frequency coding paths.
			if rng.Intn(4) == 0 {
				r = uint8(int(r) ^ 0x1F)
			}
			im.Set(x, y, r, g, b)
		}
	}
	return im
}

func testImageGray(w, h int, seed int64) *imgutil.Gray {
	return testImageRGB(w, h, seed).ToGray()
}

func encodeToBytes(t *testing.T, img *imgutil.RGB, opts *Options) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeRGB(&buf, img, opts); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func psnrRGB(t *testing.T, a, b *imgutil.RGB) float64 {
	t.Helper()
	v, err := imgutil.PSNR(a.Pix, b.Pix)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestGrayRoundTripHighQuality(t *testing.T) {
	img := testImageGray(64, 48, 1)
	var buf bytes.Buffer
	opts := &Options{LumaTable: qtable.MustScale(qtable.StdLuminance, 100)}
	if err := EncodeGray(&buf, img, opts); err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Components != 1 || dec.W != 64 || dec.H != 48 {
		t.Fatalf("decoded metadata %+v", dec)
	}
	got := dec.Gray()
	psnr, err := imgutil.PSNR(img.Pix, got.Pix)
	if err != nil {
		t.Fatal(err)
	}
	if psnr < 50 {
		t.Fatalf("QF100 gray PSNR = %.1f dB, want ≥ 50", psnr)
	}
}

func TestColorRoundTrip444(t *testing.T) {
	img := testImageRGB(64, 64, 2)
	data := encodeToBytes(t, img, &Options{
		LumaTable:   qtable.MustScale(qtable.StdLuminance, 95),
		ChromaTable: qtable.MustScale(qtable.StdChrominance, 95),
		Subsampling: Sub444,
	})
	dec, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Components != 3 || dec.Sampling != Sub444 {
		t.Fatalf("metadata %+v", dec)
	}
	if psnr := psnrRGB(t, img, dec.RGB()); psnr < 33 {
		t.Fatalf("444 PSNR = %.1f dB, want ≥ 33", psnr)
	}
}

func TestColorRoundTrip420(t *testing.T) {
	img := testImageRGB(64, 64, 3)
	data := encodeToBytes(t, img, &Options{
		LumaTable:   qtable.MustScale(qtable.StdLuminance, 95),
		ChromaTable: qtable.MustScale(qtable.StdChrominance, 95),
		Subsampling: Sub420,
	})
	dec, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Sampling != Sub420 {
		t.Fatalf("sampling = %v, want 4:2:0", dec.Sampling)
	}
	// The test image carries per-pixel chroma noise, which 4:2:0 is
	// designed to discard; ~24 dB is what libjpeg produces here too.
	if psnr := psnrRGB(t, img, dec.RGB()); psnr < 22 {
		t.Fatalf("420 PSNR = %.1f dB, want ≥ 22", psnr)
	}
}

func TestOddDimensions(t *testing.T) {
	for _, dims := range [][2]int{{1, 1}, {7, 5}, {8, 8}, {9, 9}, {17, 23}, {16, 17}, {33, 31}} {
		w, h := dims[0], dims[1]
		img := testImageRGB(w, h, 4)
		for _, sub := range []Subsampling{Sub444, Sub420} {
			data := encodeToBytes(t, img, &Options{Subsampling: sub})
			dec, err := Decode(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("%dx%d %v: %v", w, h, sub, err)
			}
			if dec.W != w || dec.H != h {
				t.Fatalf("%dx%d %v: decoded %dx%d", w, h, sub, dec.W, dec.H)
			}
			out := dec.RGB()
			if out.W != w || out.H != h {
				t.Fatalf("%dx%d %v: RGB() %dx%d", w, h, sub, out.W, out.H)
			}
		}
	}
}

func TestQualityMonotonicity(t *testing.T) {
	img := testImageRGB(96, 96, 5)
	var prevSize int
	var prevPSNR float64
	for i, qf := range []int{10, 30, 50, 75, 95} {
		data := encodeToBytes(t, img, &Options{
			LumaTable:   qtable.MustScale(qtable.StdLuminance, qf),
			ChromaTable: qtable.MustScale(qtable.StdChrominance, qf),
		})
		dec, err := Decode(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		psnr := psnrRGB(t, img, dec.RGB())
		if i > 0 {
			if len(data) <= prevSize {
				t.Fatalf("QF %d produced %d bytes, not larger than %d", qf, len(data), prevSize)
			}
			if psnr <= prevPSNR {
				t.Fatalf("QF %d PSNR %.2f not above %.2f", qf, psnr, prevPSNR)
			}
		}
		prevSize, prevPSNR = len(data), psnr
	}
}

// TestStdlibDecodesOurOutput is the key interoperability check: Go's
// image/jpeg must decode our streams to nearly the same pixels our decoder
// produces.
func TestStdlibDecodesOurOutput(t *testing.T) {
	img := testImageRGB(64, 48, 6)
	for _, sub := range []Subsampling{Sub444, Sub420} {
		for _, optimize := range []bool{false, true} {
			data := encodeToBytes(t, img, &Options{
				LumaTable:       qtable.MustScale(qtable.StdLuminance, 90),
				ChromaTable:     qtable.MustScale(qtable.StdChrominance, 90),
				Subsampling:     sub,
				OptimizeHuffman: optimize,
			})
			stdImg, err := jpeg.Decode(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("stdlib rejects our %v optimize=%v stream: %v", sub, optimize, err)
			}
			std := imgutil.FromImage(stdImg)
			ours, err := Decode(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			mse, err := imgutil.MSE(std.Pix, ours.RGB().Pix)
			if err != nil {
				t.Fatal(err)
			}
			// Different IDCT and upsampling implementations allow small
			// deviations, not structural ones.
			if mse > 12 {
				t.Fatalf("%v optimize=%v: stdlib and our decoder disagree, MSE %.2f", sub, optimize, mse)
			}
		}
	}
}

// TestWeDecodeStdlibOutput checks the reverse direction.
func TestWeDecodeStdlibOutput(t *testing.T) {
	img := testImageRGB(60, 44, 7)
	var buf bytes.Buffer
	if err := jpeg.Encode(&buf, img.ToImage(), &jpeg.Options{Quality: 90}); err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("cannot decode stdlib stream: %v", err)
	}
	stdImg, err := jpeg.Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	std := imgutil.FromImage(stdImg)
	mse, err := imgutil.MSE(std.Pix, dec.RGB().Pix)
	if err != nil {
		t.Fatal(err)
	}
	if mse > 12 {
		t.Fatalf("decoders disagree on stdlib stream, MSE %.2f", mse)
	}
}

func TestWeDecodeStdlibGray(t *testing.T) {
	gray := testImageGray(40, 40, 8)
	gimg := image.NewGray(image.Rect(0, 0, 40, 40))
	copy(gimg.Pix, gray.Pix)
	var buf bytes.Buffer
	if err := jpeg.Encode(&buf, gimg, &jpeg.Options{Quality: 92}); err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Components != 1 {
		t.Fatalf("components = %d, want 1", dec.Components)
	}
	psnr, err := imgutil.PSNR(gray.Pix, dec.Gray().Pix)
	if err != nil {
		t.Fatal(err)
	}
	if psnr < 30 {
		t.Fatalf("gray stdlib PSNR = %.1f", psnr)
	}
}

// TestOptimizedHuffmanLosslessAndSmaller: optimized entropy coding must
// not change decoded pixels and should not grow realistic files.
func TestOptimizedHuffmanLosslessAndSmaller(t *testing.T) {
	img := testImageRGB(96, 96, 9)
	opts := Options{
		LumaTable:   qtable.MustScale(qtable.StdLuminance, 80),
		ChromaTable: qtable.MustScale(qtable.StdChrominance, 80),
	}
	std := encodeToBytes(t, img, &opts)
	optsOpt := opts
	optsOpt.OptimizeHuffman = true
	opt := encodeToBytes(t, img, &optsOpt)
	if len(opt) >= len(std) {
		t.Fatalf("optimized %d bytes, standard %d bytes", len(opt), len(std))
	}
	d1, err := Decode(bytes.NewReader(std))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Decode(bytes.NewReader(opt))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1.RGB().Pix, d2.RGB().Pix) {
		t.Fatal("optimized Huffman changed decoded pixels")
	}
}

func TestZeroMaskDropsCoefficients(t *testing.T) {
	img := testImageGray(64, 64, 10)
	mask := qtable.TopZigZag(10)
	var buf bytes.Buffer
	opts := &Options{
		LumaTable: qtable.MustScale(qtable.StdLuminance, 100),
		ZeroMask:  &mask,
	}
	if err := EncodeGray(&buf, img, opts); err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	blocks, _, _ := dec.Coefficients(0)
	if len(blocks) == 0 {
		t.Fatal("no coefficients recorded")
	}
	for bi, blk := range blocks {
		for n := 0; n < 64; n++ {
			if mask[n] && blk[n] != 0 {
				t.Fatalf("block %d coefficient %d = %d, masked band must be zero", bi, n, blk[n])
			}
		}
	}
	// Also verify the mask actually shrinks the stream.
	var plain bytes.Buffer
	if err := EncodeGray(&plain, img, &Options{LumaTable: qtable.MustScale(qtable.StdLuminance, 100)}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() >= plain.Len() {
		t.Fatalf("masked stream %d bytes not smaller than plain %d", buf.Len(), plain.Len())
	}
}

func TestRestartIntervalRoundTrip(t *testing.T) {
	img := testImageRGB(80, 64, 11)
	for _, ri := range []int{1, 2, 5} {
		data := encodeToBytes(t, img, &Options{
			RestartInterval: ri,
			LumaTable:       qtable.MustScale(qtable.StdLuminance, 90),
			ChromaTable:     qtable.MustScale(qtable.StdChrominance, 90),
		})
		dec, err := Decode(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("ri=%d: %v", ri, err)
		}
		if dec.RestartInterval != ri {
			t.Fatalf("ri=%d: parsed %d", ri, dec.RestartInterval)
		}
		// Default 4:2:0 discards this image's per-pixel chroma noise, so
		// ~24 dB is the expected fidelity here.
		if psnr := psnrRGB(t, img, dec.RGB()); psnr < 22 {
			t.Fatalf("ri=%d: PSNR %.1f", ri, psnr)
		}
		// stdlib must also handle our restart markers.
		if _, err := jpeg.Decode(bytes.NewReader(data)); err != nil {
			t.Fatalf("ri=%d: stdlib rejects: %v", ri, err)
		}
	}
}

func TestDecodedCoefficientsMatchEncoderInput(t *testing.T) {
	// With QF=100 (all steps 1) and a DC-only image, coefficients decode to
	// exactly what the encoder computed.
	img := imgutil.NewGray(16, 16)
	for i := range img.Pix {
		img.Pix[i] = 200
	}
	var buf bytes.Buffer
	opts := &Options{LumaTable: qtable.MustScale(qtable.StdLuminance, 100)}
	if err := EncodeGray(&buf, img, opts); err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	blocks, bx, by := dec.Coefficients(0)
	if bx != 2 || by != 2 || len(blocks) != 4 {
		t.Fatalf("grid %dx%d len %d", bx, by, len(blocks))
	}
	for _, blk := range blocks {
		if blk[0] != 576 { // (200-128)*8 = 576 for a flat block
			t.Fatalf("DC = %d, want 576", blk[0])
		}
		for i := 1; i < 64; i++ {
			if blk[i] != 0 {
				t.Fatalf("AC[%d] = %d, want 0", i, blk[i])
			}
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	if err := EncodeRGB(&bytes.Buffer{}, imgutil.NewRGB(0, 5), nil); err == nil {
		t.Error("empty image accepted")
	}
	if err := EncodeGray(&bytes.Buffer{}, imgutil.NewGray(0, 0), nil); err == nil {
		t.Error("empty gray image accepted")
	}
	bad := Options{LumaTable: qtable.Table{}}
	bad.LumaTable[0] = 1 // rest zero → invalid
	if err := EncodeGray(&bytes.Buffer{}, imgutil.NewGray(8, 8), &bad); err == nil {
		t.Error("invalid table accepted")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"not a jpeg":  {0x00, 0x01, 0x02},
		"SOI only":    {0xFF, 0xD8},
		"EOI first":   {0xFF, 0xD8, 0xFF, 0xD9},
		"progressive": {0xFF, 0xD8, 0xFF, 0xC2, 0x00, 0x0B, 8, 0, 16, 0, 16, 1, 1, 0x11, 0},
	}
	for name, data := range cases {
		if _, err := Decode(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: decode succeeded unexpectedly", name)
		}
	}
}

func TestDecodeTruncatedScan(t *testing.T) {
	img := testImageGray(32, 32, 12)
	var buf bytes.Buffer
	if err := EncodeGray(&buf, img, nil); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := Decode(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Fatal("truncated stream decoded without error")
	}
}

func TestDQTRoundTripThroughStream(t *testing.T) {
	// The decoder must recover exactly the tables the encoder wrote.
	luma := qtable.MustScale(qtable.StdLuminance, 37)
	chroma := qtable.MustScale(qtable.StdChrominance, 37)
	img := testImageRGB(16, 16, 13)
	data := encodeToBytes(t, img, &Options{LumaTable: luma, ChromaTable: chroma})
	dec, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if dec.QuantTables[0] != luma {
		t.Fatal("luma table mismatch")
	}
	if dec.QuantTables[1] != chroma {
		t.Fatal("chroma table mismatch")
	}
}

func TestFlatImageCompressesTiny(t *testing.T) {
	img := imgutil.NewRGB(128, 128)
	for i := range img.Pix {
		img.Pix[i] = 77
	}
	data := encodeToBytes(t, img, nil)
	if len(data) > 2500 {
		t.Fatalf("flat 128x128 image took %d bytes", len(data))
	}
}

func BenchmarkEncodeRGB420(b *testing.B) {
	img := testImageRGB(256, 256, 20)
	opts := &Options{
		LumaTable:   qtable.MustScale(qtable.StdLuminance, 85),
		ChromaTable: qtable.MustScale(qtable.StdChrominance, 85),
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(img.Pix)))
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := EncodeRGB(&buf, img, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeRGB420(b *testing.B) {
	img := testImageRGB(256, 256, 21)
	var buf bytes.Buffer
	if err := EncodeRGB(&buf, img, nil); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.SetBytes(int64(len(img.Pix)))
	for i := 0; i < b.N; i++ {
		if _, err := Decode(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeOptimizedHuffman(b *testing.B) {
	img := testImageRGB(256, 256, 22)
	opts := &Options{OptimizeHuffman: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := EncodeRGB(&buf, img, opts); err != nil {
			b.Fatal(err)
		}
	}
}
