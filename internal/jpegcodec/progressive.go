package jpegcodec

// Progressive JPEG scan decoding (ITU-T T.81 Annex G, Huffman coding).
//
// A progressive frame splits its coefficient data across many scans
// along two axes. Spectral selection: each AC scan carries one zig-zag
// band Ss..Se of one component, while DC scans carry coefficient 0 only
// and may interleave components. Successive approximation: a "first"
// scan (Ah == 0) delivers coefficients at reduced precision — values
// shifted left by the point transform Al — and each refinement scan
// (Ah == Al+1) appends exactly one more magnitude bit. The frame's
// coefficient planes accumulate across scans and reconstruction runs
// once, after the last scan (decoder.finishFrame) — which is also what
// lets Requantize transcode progressive inputs: by then the planes are
// in exactly the representation a baseline decode produces.
//
// The AC decoders carry an end-of-band run between blocks: an EOBn
// symbol (RRRR = n < 15, SSSS = 0) encodes a run of 2^n plus n appended
// bits of blocks, the current one included, whose band holds no further
// newly significant coefficients. In refinement scans a block inside an
// EOB run still consumes one correction bit per already-nonzero band
// coefficient (refineNonZeroes), so a truncated refinement scan fails
// loudly instead of silently skewing the image.
//
// The refinement logic follows the structure of the reference decoders
// (libjpeg's jdphuff.c, Go's image/jpeg): ZRL symbols skip 16
// zero-history coefficients, a (r,1) symbol places ±1<<Al on the
// (r+1)-th zero-history coefficient, and correction bits interleave with
// both.

import (
	"errors"
	"fmt"

	"repro/internal/bitio"
	"repro/internal/qtable"
)

// scanProgressive routes one progressive scan over the frame's
// coefficient planes. DC scans (ss == 0) may interleave several
// components over the frame MCU grid; AC scans are always single-
// component and walk the component's unpadded block grid. Restart
// markers reset the DC predictors and the EOB run exactly as in
// baseline scans. Progressive entropy data always decodes sequentially
// (see shard.go for the baseline-only sharding guard).
func (d *decoder) scanProgressive(scomps []*component, ss, se, ah, al int) (byte, error) {
	f := &d.frame
	refine := ah != 0
	var dcTabs [4]*decTable
	var acTab *decTable
	if ss == 0 && !refine {
		for i, c := range scomps {
			if dcTabs[i] = d.huff[0<<2|c.td]; dcTabs[i] == nil {
				return 0, fmt.Errorf("jpegcodec: missing DC huffman table %d", c.td)
			}
		}
	}
	if ss > 0 {
		if acTab = d.huff[1<<2|scomps[0].ta]; acTab == nil {
			return 0, fmt.Errorf("jpegcodec: missing AC huffman table %d", scomps[0].ta)
		}
	}
	br := d.bits
	br.Reset(d.br)
	d.eobRun = 0
	var prevDC [4]int32
	rst := 0
	c0 := scomps[0]
	interleaved := len(scomps) > 1
	total, sbw := f.mcusX*f.mcusY, 0
	if !interleaved {
		// Single-component scans are non-interleaved regardless of frame
		// type: one block per MCU over the unpadded block grid.
		sbw = (c0.w + 7) / 8
		total = sbw * ((c0.hgt + 7) / 8)
	}
	for mcu := 0; mcu < total; mcu++ {
		if d.ri > 0 && mcu > 0 && mcu%d.ri == 0 {
			if err := d.scanRestart(&rst, &prevDC); err != nil {
				return 0, err
			}
		}
		if interleaved {
			// Interleaved scans are DC scans by construction (the header
			// validation rejects multi-component AC scans).
			my, mx := mcu/f.mcusX, mcu%f.mcusX
			for ci, c := range scomps {
				for vy := 0; vy < c.v; vy++ {
					for vx := 0; vx < c.h; vx++ {
						coefs := &c.coefs[(my*c.v+vy)*c.blocksX+mx*c.h+vx]
						var err error
						if refine {
							err = decodeDCRefine(br, coefs, al)
						} else {
							err = decodeDCFirst(br, dcTabs[ci], &prevDC[ci], al, coefs)
						}
						if err != nil {
							return 0, err
						}
					}
				}
			}
			continue
		}
		by, bx := mcu/sbw, mcu%sbw
		coefs := &c0.coefs[by*c0.blocksX+bx]
		var err error
		switch {
		case ss == 0 && !refine:
			err = decodeDCFirst(br, dcTabs[0], &prevDC[0], al, coefs)
		case ss == 0:
			err = decodeDCRefine(br, coefs, al)
		case !refine:
			err = d.decodeACFirst(br, acTab, ss, se, al, coefs)
		default:
			err = d.decodeACRefine(br, acTab, ss, se, al, coefs)
		}
		if err != nil {
			return 0, err
		}
	}
	return d.scanEnd(), nil
}

// decodeDCFirst decodes one block's worth of a DC first scan (G.1.2.1):
// ordinary DPCM on the point-transformed values, stored shifted left by
// Al so refinement scans can OR lower bits in.
func decodeDCFirst(br *bitio.Reader, tab *decTable, pred *int32, al int, coefs *[64]int32) error {
	s, err := tab.decode(br)
	if err != nil {
		return err
	}
	if s > 16 {
		return fmt.Errorf("jpegcodec: DC magnitude category %d out of range", s)
	}
	diff, err := receiveExtend(br, int(s))
	if err != nil {
		return err
	}
	*pred += diff
	coefs[0] = *pred << al
	return nil
}

// decodeDCRefine appends one precision bit to coefficient 0. OR-ing
// bit<<Al is correct for both signs: the first scan stored the
// arithmetically shifted value, and two's-complement negatives recover
// their low magnitude bits through OR exactly like positives.
func decodeDCRefine(br *bitio.Reader, coefs *[64]int32, al int) error {
	bit, err := br.ReadBit()
	if err != nil {
		return err
	}
	if bit != 0 {
		coefs[0] |= 1 << al
	}
	return nil
}

// readEOBRun decodes the length of an EOBn run — 2^r plus r appended
// bits — the count of consecutive blocks (the current one included)
// whose band carries no further newly significant coefficients.
func readEOBRun(br *bitio.Reader, r int) (int32, error) {
	run := int32(1) << r
	if r > 0 {
		bits, err := br.ReadBits(uint(r))
		if err != nil {
			return 0, err
		}
		run += int32(bits)
	}
	return run, nil
}

// decodeACFirst decodes one block of an AC first scan (G.1.2.2): the
// baseline run/size alphabet over the band ss..se, with EOBn symbols in
// place of plain EOB and values delivered at reduced precision (<<al).
func (d *decoder) decodeACFirst(br *bitio.Reader, tab *decTable, ss, se, al int, coefs *[64]int32) error {
	if d.eobRun > 0 {
		d.eobRun--
		return nil
	}
	for z := ss; z <= se; {
		sym, err := tab.decode(br)
		if err != nil {
			return err
		}
		r, s := int(sym>>4), int(sym&0x0F)
		if s == 0 {
			if r < 15 {
				run, err := readEOBRun(br, r)
				if err != nil {
					return err
				}
				d.eobRun = run - 1 // the run includes this block
				return nil
			}
			z += 16 // ZRL
			continue
		}
		z += r
		if z > se {
			return errors.New("jpegcodec: AC run overflows spectral band")
		}
		v, err := receiveExtend(br, s)
		if err != nil {
			return err
		}
		coefs[qtable.ZigZagOrder[z]] = v << al
		z++
	}
	return nil
}

// decodeACRefine decodes one block of an AC refinement scan (G.1.2.3):
// newly significant coefficients arrive as (run, ±1<<al) pairs measured
// in zero-history positions, and every already-nonzero coefficient the
// walk passes — including every one inside an EOB run — consumes a
// correction bit.
func (d *decoder) decodeACRefine(br *bitio.Reader, tab *decTable, ss, se, al int, coefs *[64]int32) error {
	delta := int32(1) << al
	z := ss
	if d.eobRun == 0 {
	loop:
		for ; z <= se; z++ {
			sym, err := tab.decode(br)
			if err != nil {
				return err
			}
			r, s := int(sym>>4), int(sym&0x0F)
			newVal := int32(0)
			switch s {
			case 0:
				if r < 15 {
					run, err := readEOBRun(br, r)
					if err != nil {
						return err
					}
					d.eobRun = run
					break loop // the tail below refines the rest of the band
				}
				// ZRL: r == 15 skips 16 zero-history coefficients (15 in
				// refineNonZeroes plus the one the loop increment passes).
			case 1:
				bit, err := br.ReadBit()
				if err != nil {
					return err
				}
				if bit != 0 {
					newVal = delta
				} else {
					newVal = -delta
				}
			default:
				return fmt.Errorf("jpegcodec: invalid AC refinement symbol %#02x", sym)
			}
			zn, err := refineNonZeroes(br, coefs, z, se, r, delta)
			if err != nil {
				return err
			}
			z = zn
			if z > se {
				return errors.New("jpegcodec: AC refinement run overflows spectral band")
			}
			if newVal != 0 {
				coefs[qtable.ZigZagOrder[z]] = newVal
			}
		}
	}
	if d.eobRun > 0 {
		d.eobRun--
		if _, err := refineNonZeroes(br, coefs, z, se, -1, delta); err != nil {
			return err
		}
	}
	return nil
}

// refineNonZeroes appends one correction bit to every already-nonzero
// coefficient of the zig-zag band [z, se], skipping nz zero-history
// entries (nz < 0 refines to the end of the band unconditionally). It
// returns the index it stopped at — the (nz+1)-th zero-history entry,
// where the caller places a newly significant coefficient.
func refineNonZeroes(br *bitio.Reader, coefs *[64]int32, z, se, nz int, delta int32) (int, error) {
	for ; z <= se; z++ {
		u := qtable.ZigZagOrder[z]
		if coefs[u] == 0 {
			if nz == 0 {
				break
			}
			nz--
			continue
		}
		bit, err := br.ReadBit()
		if err != nil {
			return 0, err
		}
		if bit == 0 {
			continue
		}
		if coefs[u] >= 0 {
			coefs[u] += delta
		} else {
			coefs[u] -= delta
		}
	}
	return z, nil
}
