package jpegcodec

// Batch-of-blocks hot path: the per-block stages (tile extraction +
// level shift, transform, quantize on encode; dequantize, inverse
// transform, level unshift + store on decode) restructured over whole
// block rows in a contiguous flat plane (dct batch layout: block k at
// plane[64k:64k+64]). The arithmetic is the per-block arithmetic —
// blockCoefficients and reconstructBlock in codec.go remain as the
// reference implementations, and the batch_equiv_test.go property suite
// pins every helper here against them bit for bit — but the loops are
// flat and fused:
//
//   - the gather clamps edge coordinates only for the partial blocks at
//     the right/bottom margins; interior blocks take an unconditional
//     eight-lane copy (ExtractBlock pays the clamp per pixel);
//   - quantization runs as two passes over the whole run — a pure
//     division pass whose independent divisions pipeline back to back,
//     then a branch-free rounding pass (abs/floor/copysign instead of
//     the sign branches the per-block quantizer takes per coefficient);
//   - dequantization broadcasts the 64 fused multipliers over the run,
//     and pixels are stored row-contiguously with the clamp hoisted off
//     the interior blocks.

import (
	"math"

	"repro/internal/dct"
	"repro/internal/qtable"
)

// gatherBlockRow fills plane with the blocksX consecutive level-shifted
// 8×8 tiles of block row by — the fused form of ExtractBlock+LevelShift
// over a whole row. Edge semantics match ExtractBlock: coordinates past
// the plane replicate the last row/column. plane must hold blocksX*64
// floats.
func gatherBlockRow(plane []float64, pix []uint8, w, h, by, blocksX int) {
	fullX := w >> 3
	if fullX > blocksX {
		fullX = blocksX
	}
	for y := 0; y < 8; y++ {
		sy := by*8 + y
		if sy >= h {
			sy = h - 1
		}
		row := pix[sy*w : sy*w+w]
		d := y * 8
		for bx := 0; bx < fullX; bx++ {
			src := (*[8]uint8)(row[bx*8:])
			dst := (*[8]float64)(plane[bx*64+d:])
			dst[0] = float64(src[0]) - 128
			dst[1] = float64(src[1]) - 128
			dst[2] = float64(src[2]) - 128
			dst[3] = float64(src[3]) - 128
			dst[4] = float64(src[4]) - 128
			dst[5] = float64(src[5]) - 128
			dst[6] = float64(src[6]) - 128
			dst[7] = float64(src[7]) - 128
		}
		// Partial block at the right margin: clamp per sample.
		for bx := fullX; bx < blocksX; bx++ {
			base := bx*64 + d
			for x := 0; x < 8; x++ {
				sx := bx*8 + x
				if sx >= w {
					sx = w - 1
				}
				plane[base+x] = float64(row[sx]) - 128
			}
		}
	}
}

// quantizeRunInto quantizes len(dst) consecutive blocks from plane
// through the fused divisors, the batch form of blockCoefficients'
// quantize loop. plane is consumed (overwritten by the division pass).
// Two passes instead of one chain per coefficient: the divisions are
// independent and saturate the divider, and the rounding pass replaces
// the per-coefficient sign branches with abs/floor/copysign — same
// bits out (quantize's tie snap included), no branch misprediction per
// negative coefficient.
func quantizeRunInto(dst [][64]int32, plane []float64, tbl *qtable.FwdScaled, mask *qtable.ZeroMask) {
	n := len(dst)
	for bi := 0; bi < n; bi++ {
		b := (*[64]float64)(plane[bi*64:])
		for i := 0; i < 64; i++ {
			b[i] /= tbl[i]
		}
	}
	for bi := 0; bi < n; bi++ {
		b := (*[64]float64)(plane[bi*64:])
		out := &dst[bi]
		if mask == nil {
			for i := 0; i < 64; i++ {
				out[i] = roundQuantized(b[i])
			}
			continue
		}
		for i := 0; i < 64; i++ {
			if mask[i] {
				out[i] = 0
				continue
			}
			out[i] = roundQuantized(b[i])
		}
	}
}

// roundQuantized rounds an already-divided coefficient half away from
// zero with quantize's tie snap. It must agree with quantize(c, q) for
// v = c/q on every input — pinned by TestQuantizeRunMatchesPerBlock —
// and differs only in shape: math.Abs/math.Copysign are branch-free
// intrinsics where quantize branches on the sign twice.
func roundQuantized(v float64) int32 {
	a := math.Abs(v)
	r := a + 0.5
	m := math.Floor(r)
	if r-m > 1-quantizeTieEps {
		m++
	}
	return int32(math.Copysign(m, v))
}

// storeBlockRow level-unshifts the blocksX consecutive reconstructed
// tiles in plane and stores them into pixel row by — the fused form of
// LevelUnshift+StoreBlock over a whole row. Edge semantics match
// StoreBlock: samples past the plane bounds are discarded.
func storeBlockRow(pix []uint8, w, h, by, blocksX int, plane []float64) {
	fullX := w >> 3
	if fullX > blocksX {
		fullX = blocksX
	}
	for y := 0; y < 8; y++ {
		sy := by*8 + y
		if sy >= h {
			return
		}
		row := pix[sy*w : sy*w+w]
		d := y * 8
		for bx := 0; bx < fullX; bx++ {
			src := (*[8]float64)(plane[bx*64+d:])
			dst := (*[8]uint8)(row[bx*8:])
			for x := 0; x < 8; x++ {
				v := math.Round(src[x] + 128)
				if v < 0 {
					v = 0
				} else if v > 255 {
					v = 255
				}
				dst[x] = uint8(v)
			}
		}
		for bx := fullX; bx < blocksX; bx++ {
			base := bx*64 + d
			for x := 0; x < 8; x++ {
				sx := bx*8 + x
				if sx >= w {
					break
				}
				v := math.Round(plane[base+x] + 128)
				if v < 0 {
					v = 0
				} else if v > 255 {
					v = 255
				}
				row[sx] = uint8(v)
			}
		}
	}
}

// transformComponent runs the whole forward stage for one encoder
// component: per block row, gather the level-shifted tiles into plane,
// one batch forward transform in the engine's scaled basis, one fused
// quantize pass into the coefficient grid.
func transformComponent(c *component, tbl *qtable.FwdScaled, mask *qtable.ZeroMask, xf dct.Transform, plane []float64) {
	run := c.blocksX * 64
	for by := 0; by < c.blocksY; by++ {
		gatherBlockRow(plane[:run], c.pix, c.w, c.hgt, by, c.blocksX)
		xf.ForwardScaledBatch(plane[:run])
		quantizeRunInto(c.coefs[by*c.blocksX:(by+1)*c.blocksX], plane[:run], tbl, mask)
	}
}

// reconstructBlockRow runs the inverse stage for one block row of a
// decoder component: broadcast the fused dequantize multipliers over
// the row's coefficients, one batch inverse transform, one fused
// unshift+store pass.
func reconstructBlockRow(c *component, by int, plane []float64, xf dct.Transform) {
	row := c.coefs[by*c.blocksX : (by+1)*c.blocksX]
	run := len(row) * 64
	c.inv.DequantizeBlocks(plane[:run], row)
	xf.InverseScaledBatch(plane[:run])
	storeBlockRow(c.pix, c.w, c.hgt, by, c.blocksX, plane[:run])
}
