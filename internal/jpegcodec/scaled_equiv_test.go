package jpegcodec

// Fused-vs-unfused equivalence: the scaled-table hot loops (one divide
// or multiply per coefficient, scale factors folded into the table) must
// produce exactly what the textbook two-pass formulation produces — the
// orthonormal transform followed by plain integer-step quantization.
// These property tests are the layer below the stream-equivalence tests
// in transform_equiv_test.go: they pin the arithmetic per block, so a
// folding bug is caught at the coefficient where it happens rather than
// as an opaque byte diff.

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/dct"
	"repro/internal/qtable"
)

// unfusedCoefficients is the reference forward path: full orthonormal
// DCT (descale pass included), then quantization by the raw integer
// steps through the same tie-snapping quantizer.
func unfusedCoefficients(samples *[64]uint8, tbl *qtable.Table, xf dct.Transform) [64]int32 {
	var blk dct.Block
	dct.LevelShift(samples[:], &blk)
	xf.Forward(&blk)
	var out [64]int32
	for i := 0; i < 64; i++ {
		out[i] = quantize(blk[i], float64(tbl[i]))
	}
	return out
}

func TestFusedQuantizationMatchesUnfused(t *testing.T) {
	tables := []qtable.Table{
		qtable.StdLuminance,
		qtable.StdChrominance,
		qtable.MustScale(qtable.StdLuminance, 100), // all-ones: maximal tie exposure
		qtable.Uniform(16),
		qtable.Uniform(255),
	}
	rng := rand.New(rand.NewSource(47))
	for _, xf := range bothEngines {
		for trial := 0; trial < 1500; trial++ {
			tile := randTile(rng)
			tbl := tables[trial%len(tables)]
			fused := blockCoefficients(&tile, tbl.FwdScaled(xf), nil, xf)
			unfused := unfusedCoefficients(&tile, &tbl, xf)
			if fused != unfused {
				for i := range fused {
					if fused[i] != unfused[i] {
						t.Fatalf("%v trial %d: band %d quantizes to %d fused vs %d unfused",
							xf, trial, i, fused[i], unfused[i])
					}
				}
			}
		}
	}
}

// randCoefs draws plausible quantized coefficients: mostly small values
// with the DC allowed the full baseline range.
func randCoefs(rng *rand.Rand) [64]int32 {
	var c [64]int32
	c[0] = int32(rng.Intn(2047) - 1023)
	for i := 1; i < 64; i++ {
		if rng.Intn(4) == 0 { // sparse, like real AC bands
			c[i] = int32(rng.Intn(255) - 127)
		}
	}
	return c
}

func TestFusedDequantizationMatchesUnfused(t *testing.T) {
	tables := []qtable.Table{qtable.StdLuminance, qtable.Uniform(3), qtable.MustScale(qtable.StdLuminance, 90)}
	rng := rand.New(rand.NewSource(53))
	for _, xf := range bothEngines {
		for trial := 0; trial < 800; trial++ {
			coefs := randCoefs(rng)
			tbl := tables[trial%len(tables)]

			var fused [64]uint8
			reconstructBlock(&coefs, tbl.InvScaled(xf), &fused, xf)

			// Unfused reference: dequantize by the raw steps, full
			// orthonormal inverse (prescale pass included).
			var blk dct.Block
			for i := 0; i < 64; i++ {
				blk[i] = float64(coefs[i]) * float64(tbl[i])
			}
			xf.Inverse(&blk)
			var unfused [64]uint8
			dct.LevelUnshift(&blk, unfused[:])

			// The folded path reassociates one multiplication per
			// coefficient ((c·q)·p vs c·(q·p)), so pixels may straddle a
			// rounding boundary by at most one grey level; the naive
			// engine folds nothing and must match exactly.
			worst := 0
			for i := range fused {
				d := int(fused[i]) - int(unfused[i])
				if d < 0 {
					d = -d
				}
				if d > worst {
					worst = d
				}
			}
			limit := 0
			if xf == dct.TransformAAN {
				limit = 1
			}
			if worst > limit {
				t.Fatalf("%v trial %d: fused reconstruction differs by %d grey levels (limit %d)",
					xf, trial, worst, limit)
			}
		}
	}
}

// TestEncodeHonorsPrecomputedScaled pins the cache fast path end to end:
// attaching a matching precomputed cache must not change a single output
// byte, and a stale cache (tables or engine swapped after precompute)
// must degrade to fresh derivation — same bytes again — rather than
// encode through the wrong divisors.
func TestEncodeHonorsPrecomputedScaled(t *testing.T) {
	img := testImageRGB(48, 40, 21)
	luma := qtable.MustScale(qtable.StdLuminance, 60)
	chroma := qtable.MustScale(qtable.StdChrominance, 60)
	base := Options{LumaTable: luma, ChromaTable: chroma, Transform: dct.TransformAAN}
	want := encodeToBytes(t, img, &base)

	t.Run("matching-cache", func(t *testing.T) {
		opts := base
		opts.Scaled = PrecomputeScaled(luma, chroma, dct.TransformAAN)
		if got := encodeToBytes(t, img, &opts); !bytes.Equal(got, want) {
			t.Fatal("a matching precomputed cache changed the emitted stream")
		}
	})
	t.Run("stale-tables", func(t *testing.T) {
		opts := base
		opts.Scaled = PrecomputeScaled(qtable.StdLuminance, qtable.StdChrominance, dct.TransformAAN)
		if got := encodeToBytes(t, img, &opts); !bytes.Equal(got, want) {
			t.Fatal("a stale cache must be ignored, not trusted")
		}
	})
	t.Run("stale-engine", func(t *testing.T) {
		opts := base
		opts.Scaled = PrecomputeScaled(luma, chroma, dct.TransformNaive)
		if got := encodeToBytes(t, img, &opts); !bytes.Equal(got, want) {
			t.Fatal("a cache built for another engine must be ignored")
		}
	})
}
