package jpegcodec

// Chroma-sampling matrix tests: every supported layout must round-trip
// through encode → decode → requantize with the same guarantees the
// 4:2:0/4:4:4 paths always had — stdlib-agreeing pixels, byte-stable
// requantization, sharded ≡ sequential — plus the SOF-level guards the
// full matrix makes reachable (the T.81 blocks-per-MCU bound, single
// component factor normalization).

import (
	"bytes"
	"image"
	"image/jpeg"
	"strings"
	"testing"

	"repro/internal/dct"
	"repro/internal/qtable"
)

// samplingLayouts is the encode-side chroma matrix under test.
var samplingLayouts = []Subsampling{Sub444, Sub420, Sub422, Sub440, Sub411}

// maxPixelDelta returns the largest per-channel difference between two
// equal-size pixel buffers.
func maxPixelDelta(t *testing.T, a, b []uint8) int {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("pixel buffers differ in size: %d vs %d", len(a), len(b))
	}
	worst := 0
	for i := range a {
		d := int(a[i]) - int(b[i])
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

// stdlibPix decodes a stream with image/jpeg and flattens it to
// interleaved RGB.
func stdlibPix(t *testing.T, data []byte) []uint8 {
	t.Helper()
	img, err := jpeg.Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("stdlib rejects the stream: %v", err)
	}
	b := img.Bounds()
	out := make([]uint8, 0, 3*b.Dx()*b.Dy())
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			r, g, bl, _ := img.At(x, y).RGBA()
			out = append(out, uint8(r>>8), uint8(g>>8), uint8(bl>>8))
		}
	}
	return out
}

// TestRGBIntoMatchesStdlibOn422Family is the regression the fixed 2×2
// upsampler fails: on 4:2:2, 4:4:0 and 4:1:1 streams the old replicator
// stretched the chroma planes with the wrong ratio, decoding without
// error but with grossly wrong colors (deltas of tens of grey levels).
// The generic upsampler must agree with stdlib image/jpeg within IDCT
// and color-conversion rounding on the same stream. Odd dimensions
// exercise the edge-clamped tails of the ceil-division plane sizes.
func TestRGBIntoMatchesStdlibOn422Family(t *testing.T) {
	for _, sub := range []Subsampling{Sub422, Sub440, Sub411} {
		for _, dims := range [][2]int{{64, 48}, {21, 13}, {9, 9}} {
			img := testImageRGB(dims[0], dims[1], 31)
			data := encodeToBytes(t, img, &Options{
				LumaTable:   qtable.MustScale(qtable.StdLuminance, 90),
				ChromaTable: qtable.MustScale(qtable.StdChrominance, 90),
				Subsampling: sub,
			})
			dec, err := Decode(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("%v %dx%d: %v", sub, dims[0], dims[1], err)
			}
			if dec.Sampling != sub {
				t.Fatalf("%v %dx%d: classified as %v", sub, dims[0], dims[1], dec.Sampling)
			}
			// Both decoders read identical quantized coefficients and use
			// nearest-sample chroma upsampling; they differ only in IDCT
			// rounding and fixed- vs floating-point color conversion, the
			// same ≤ 2-level envelope the gray interop test pins. The old
			// 2×2-only upsampler fails this by tens of levels.
			if worst := maxPixelDelta(t, stdlibPix(t, data), dec.RGB().Pix); worst > 2 {
				t.Fatalf("%v %dx%d: decoders disagree by up to %d levels, want ≤ 2",
					sub, dims[0], dims[1], worst)
			}
		}
	}
}

// TestSamplingMatrix drives every chroma layout through the full
// pipeline matrix — transform engine × restart structure × shard
// workers — and holds requantization to its contracts: sharded output
// bytes identical to sequential, a second requantize under the same
// tables byte-stable, and the result decodable at the source geometry.
func TestSamplingMatrix(t *testing.T) {
	img := testImageRGB(72, 56, 33)
	newLuma := qtable.MustScale(qtable.StdLuminance, 60)
	newChroma := qtable.MustScale(qtable.StdChrominance, 60)
	for _, sub := range samplingLayouts {
		for _, engine := range []dct.Transform{dct.TransformNaive, dct.TransformAAN} {
			for _, restart := range []int{0, 3} {
				name := sub.String() + "/" + map[dct.Transform]string{
					dct.TransformNaive: "naive", dct.TransformAAN: "aan"}[engine]
				if restart > 0 {
					name += "/restart"
				}
				t.Run(name, func(t *testing.T) {
					data := encodeToBytes(t, img, &Options{
						LumaTable:       qtable.MustScale(qtable.StdLuminance, 90),
						ChromaTable:     qtable.MustScale(qtable.StdChrominance, 90),
						Subsampling:     sub,
						Transform:       engine,
						RestartInterval: restart,
					})
					var seq, shard Decoded
					if err := DecodeInto(bytes.NewReader(data), &seq, &DecodeOptions{Transform: engine, ShardWorkers: 1}); err != nil {
						t.Fatal(err)
					}
					if err := DecodeInto(bytes.NewReader(data), &shard, &DecodeOptions{Transform: engine, ShardWorkers: 4}); err != nil {
						t.Fatal(err)
					}
					decodedEqual(t, &seq, &shard, "sharded decode")

					requant := func(opts *Options) []byte {
						var buf bytes.Buffer
						if err := Requantize(&buf, &seq, newLuma, newChroma, opts); err != nil {
							t.Fatalf("requantize: %v", err)
						}
						return buf.Bytes()
					}
					out := requant(nil)
					if shardOut := requant(&Options{ShardWorkers: 4}); !bytes.Equal(out, shardOut) {
						t.Fatal("sharded requantize bytes differ from sequential")
					}
					var mid Decoded
					if err := DecodeInto(bytes.NewReader(out), &mid, nil); err != nil {
						t.Fatalf("requantized stream does not decode: %v", err)
					}
					if mid.W != seq.W || mid.H != seq.H || mid.Sampling != seq.Sampling {
						t.Fatalf("requantized geometry %dx%d %v, source %dx%d %v",
							mid.W, mid.H, mid.Sampling, seq.W, seq.H, seq.Sampling)
					}
					var buf2 bytes.Buffer
					if err := Requantize(&buf2, &mid, newLuma, newChroma, nil); err != nil {
						t.Fatalf("second requantize: %v", err)
					}
					if !bytes.Equal(out, buf2.Bytes()) {
						t.Fatal("requantize is not byte-stable under the same tables")
					}
					// The emitted stream must stay plain baseline JFIF.
					if _, err := jpeg.Decode(bytes.NewReader(out)); err != nil {
						t.Fatalf("stdlib rejects the requantized stream: %v", err)
					}
				})
			}
		}
	}
}

// TestSOFBaselineBlocksPerMCULimit pins the T.81 B.2.2 bound: an
// interleaved baseline MCU carries at most 10 data units, so a hostile
// header declaring three 4×4 components (48 blocks/MCU — a 4.8×
// CPU/memory amplification per declared pixel) must be rejected at SOF
// parse time, before any buffer is sized from it.
func TestSOFBaselineBlocksPerMCULimit(t *testing.T) {
	stream := func(factors [3]byte) []byte {
		var b bytes.Buffer
		b.Write([]byte{0xFF, mSOI})
		sof := []byte{8, 0, 64, 0, 64, 3}
		for i, f := range factors {
			sof = append(sof, byte(i+1), f, 0)
		}
		b.Write([]byte{0xFF, mSOF0, byte((len(sof) + 2) >> 8), byte(len(sof) + 2)})
		b.Write(sof)
		return b.Bytes()
	}
	var dec Decoded
	err := DecodeInto(bytes.NewReader(stream([3]byte{0x44, 0x44, 0x44})), &dec, nil)
	if err == nil || !strings.Contains(err.Error(), "blocks per MCU") {
		t.Fatalf("48 blocks/MCU header: err %v, want the baseline-limit rejection", err)
	}
	// 4×2 + 1×1 + 1×1 = 10 blocks sits exactly at the bound: it must pass
	// the SOF check and fail later (no tables, no scan), proving the
	// rejection above came from the bound and not the parser.
	err = DecodeInto(bytes.NewReader(stream([3]byte{0x42, 0x11, 0x11})), &dec, nil)
	if err == nil || strings.Contains(err.Error(), "blocks per MCU") {
		t.Fatalf("10 blocks/MCU header: err %v, want a non-bound parse failure", err)
	}
}

// TestSingleComponentFactorsNormalized: a single-component scan is
// non-interleaved per T.81 A.2, so its declared sampling factors do not
// shape the scan. Real files keep 2×2 luma factors after grayscale
// conversion; honoring them would misplace every block. The decoder
// must produce identical pixels whatever the declared factors say, and
// the bound check must not fire on a single 4×4 component (16 blocks
// nominal, 1 block actual).
func TestSingleComponentFactorsNormalized(t *testing.T) {
	img := testImageGray(40, 24, 35)
	var buf bytes.Buffer
	if err := EncodeGray(&buf, img, nil); err != nil {
		t.Fatal(err)
	}
	base := buf.Bytes()
	want, err := Decode(bytes.NewReader(base))
	if err != nil {
		t.Fatal(err)
	}
	for _, factors := range []byte{0x22, 0x44} {
		patched := bytes.Clone(base)
		// SOF0 layout: marker(2) len(2) precision(1) dims(4) nf(1) then
		// per-component id, factors, tq — patch the factors byte.
		i := bytes.Index(patched, []byte{0xFF, mSOF0})
		if i < 0 {
			t.Fatal("no SOF0 in the encoded stream")
		}
		patched[i+11] = factors
		got, err := Decode(bytes.NewReader(patched))
		if err != nil {
			t.Fatalf("factors %#02x: %v", factors, err)
		}
		if !bytes.Equal(want.Gray().Pix, got.Gray().Pix) {
			t.Fatalf("factors %#02x changed decoded pixels", factors)
		}
		// stdlib normalizes the same way; both decoders must agree.
		stdImg, err := jpeg.Decode(bytes.NewReader(patched))
		if err != nil {
			t.Fatalf("stdlib rejects the %#02x-factor stream: %v", factors, err)
		}
		if _, ok := stdImg.(*image.Gray); !ok {
			t.Fatalf("stdlib decoded %T, want *image.Gray", stdImg)
		}
	}
}

func bench422Stream(b *testing.B) []byte {
	img := testImageRGB(256, 256, 37)
	var buf bytes.Buffer
	opts := &Options{
		LumaTable:   qtable.MustScale(qtable.StdLuminance, 85),
		ChromaTable: qtable.MustScale(qtable.StdChrominance, 85),
		Subsampling: Sub422,
	}
	if err := EncodeRGB(&buf, img, opts); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

func BenchmarkDecode422(b *testing.B) {
	data := bench422Stream(b)
	var dec Decoded
	b.ReportAllocs()
	b.SetBytes(int64(3 * 256 * 256))
	for i := 0; i < b.N; i++ {
		if err := DecodeInto(bytes.NewReader(data), &dec, nil); err != nil {
			b.Fatal(err)
		}
		_ = dec.RGBInto(nil)
	}
}

func BenchmarkRequantize422(b *testing.B) {
	data := bench422Stream(b)
	var dec Decoded
	if err := DecodeInto(bytes.NewReader(data), &dec, nil); err != nil {
		b.Fatal(err)
	}
	luma := qtable.MustScale(qtable.StdLuminance, 60)
	chroma := qtable.MustScale(qtable.StdChrominance, 60)
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	var buf bytes.Buffer
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := Requantize(&buf, &dec, luma, chroma, nil); err != nil {
			b.Fatal(err)
		}
	}
}
