package jpegcodec

// Benchmarks for the pluggable block-transform engine and the pooled
// decode path — the numbers behind the ROADMAP's throughput claims. Run
// with:
//
//	go test ./internal/jpegcodec -run XXX -bench 'Transform|DecodePooled' -benchmem
//
// EncodeTransform/DecodeTransform isolate the engine choice on otherwise
// identical pipelines (the streams are byte-identical, so byte counts
// cancel out); DecodePooled isolates output-buffer reuse.

import (
	"bytes"
	"testing"

	"repro/internal/dct"
)

func benchStream(b *testing.B, w, h int) []byte {
	b.Helper()
	var buf bytes.Buffer
	if err := EncodeRGB(&buf, testImageRGB(w, h, 23), nil); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// BenchmarkEncodeTransform compares the forward engines on the full
// encode pipeline (color conversion, DCT, quantization, entropy coding).
func BenchmarkEncodeTransform(b *testing.B) {
	img := testImageRGB(256, 256, 20)
	for _, xf := range bothEngines {
		b.Run(xf.String(), func(b *testing.B) {
			opts := &Options{Transform: xf}
			var buf bytes.Buffer
			b.ReportAllocs()
			b.SetBytes(int64(len(img.Pix)))
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if err := EncodeRGB(&buf, img, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecodeTransform compares the inverse engines on the full
// decode pipeline with pooled output, so the IDCT dominates.
func BenchmarkDecodeTransform(b *testing.B) {
	stream := benchStream(b, 256, 256)
	for _, xf := range bothEngines {
		b.Run(xf.String(), func(b *testing.B) {
			opts := &DecodeOptions{Transform: xf}
			var dec Decoded
			r := bytes.NewReader(stream)
			b.ReportAllocs()
			b.SetBytes(int64(3 * 256 * 256))
			for i := 0; i < b.N; i++ {
				r.Reset(stream)
				if err := DecodeInto(r, &dec, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecodePooled isolates the output-buffer strategy: a fresh
// Decoded per call (the escape-heavy path Decode takes) against one
// reused through DecodeInto.
func BenchmarkDecodePooled(b *testing.B) {
	stream := benchStream(b, 256, 256)
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(3 * 256 * 256))
		for i := 0; i < b.N; i++ {
			if _, err := Decode(bytes.NewReader(stream)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reuse", func(b *testing.B) {
		var dec Decoded
		r := bytes.NewReader(stream)
		b.ReportAllocs()
		b.SetBytes(int64(3 * 256 * 256))
		for i := 0; i < b.N; i++ {
			r.Reset(stream)
			if err := DecodeInto(r, &dec, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTransformAANFullLoop measures the paper-relevant training-loop
// shape: decode to pixels and re-encode, everything pooled, under each
// engine.
func BenchmarkTransformAANFullLoop(b *testing.B) {
	stream := benchStream(b, 128, 128)
	for _, xf := range []dct.Transform{dct.TransformNaive, dct.TransformAAN} {
		b.Run(xf.String(), func(b *testing.B) {
			dopts := &DecodeOptions{Transform: xf}
			eopts := &Options{Transform: xf}
			var dec Decoded
			r := bytes.NewReader(stream)
			var buf bytes.Buffer
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r.Reset(stream)
				if err := DecodeInto(r, &dec, dopts); err != nil {
					b.Fatal(err)
				}
				buf.Reset()
				if err := EncodeRGB(&buf, dec.RGB(), eopts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
