// Package plm implements the piece-wise linear mapping (Eq. 3 of
// DeepN-JPEG) that converts per-band coefficient standard deviations δ(i,j)
// into quantization steps:
//
//	Q(δ) = a − k1·δ   if δ ≤ T1          (HF: least important bands)
//	     = b − k2·δ   if T1 < δ ≤ T2     (MF)
//	     = c − k3·δ   if δ > T2          (LF: most important bands)
//	subject to Qmin ≤ Q ≤ Qmax
//
// The published ImageNet constants (a=255, b=80, c=240, T1=20, T2=60,
// k1=9.75, k2=1, k3=3, Qmin=5) satisfy the anchor identities
//
//	a  = Qmax                         (an empty band gets the coarsest step)
//	k1 = (Qmax − Q1)/T1               (HF line falls from Qmax to Q1 at T1)
//	k2 = (Q1 − Q2)/(T2 − T1)          (MF line continues from Q1 to Q2)
//	b  = Q1 + k2·T1
//	c  = Qmin + k3·δmax               (the most energetic band gets Qmin)
//
// where Q1 and Q2 are the largest accuracy-safe steps for the HF and MF
// bands measured by the Fig. 5 sensitivity sweep (60 and 20 for ImageNet),
// and δmax ≈ 78.3 for ImageNet. Fit derives parameters for any dataset
// from those anchors; PaperImageNet reproduces the published constants.
package plm

import (
	"fmt"
	"math"

	"repro/internal/freqstat"
	"repro/internal/qtable"
)

// Params holds the PLM coefficients of Eq. 3.
type Params struct {
	A, B, C    float64 // intercepts of the HF, MF, LF segments
	K1, K2, K3 float64 // slopes of the HF, MF, LF segments
	T1, T2     float64 // δ thresholds: HF/MF and MF/LF boundaries
	QMin       float64 // lower clamp — protects the most sensitive bands
	QMax       float64 // upper clamp — baseline JPEG caps steps at 255
}

// PaperImageNet returns the constants published in §5 for ImageNet,
// with the Qmin=5 floor from the Fig. 5 LF sensitivity sweep.
func PaperImageNet() Params {
	return Params{
		A: 255, B: 80, C: 240,
		K1: 9.75, K2: 1, K3: 3,
		T1: 20, T2: 60,
		QMin: 5, QMax: 255,
	}
}

// Validate rejects parameter sets that cannot produce a legal table.
func (p Params) Validate() error {
	if p.T1 < 0 || p.T2 <= p.T1 {
		return fmt.Errorf("plm: thresholds must satisfy 0 ≤ T1 < T2, got T1=%g T2=%g", p.T1, p.T2)
	}
	if p.QMin < 1 {
		return fmt.Errorf("plm: QMin %g below 1", p.QMin)
	}
	if p.QMax > 255 {
		return fmt.Errorf("plm: QMax %g above baseline limit 255", p.QMax)
	}
	if math.Ceil(p.QMin) > math.Floor(p.QMax) {
		return fmt.Errorf("plm: no integer step between QMin %g and QMax %g", p.QMin, p.QMax)
	}
	if p.K1 < 0 || p.K2 < 0 || p.K3 < 0 {
		return fmt.Errorf("plm: negative slope (k1=%g k2=%g k3=%g); Eq. 3 maps larger δ to finer steps", p.K1, p.K2, p.K3)
	}
	return nil
}

// Step evaluates Eq. 3 for one band's standard deviation, clamped to
// [QMin, QMax] and rounded to the nearest integer step.
func (p Params) Step(sigma float64) uint16 {
	var q float64
	switch {
	case sigma <= p.T1:
		q = p.A - p.K1*sigma
	case sigma <= p.T2:
		q = p.B - p.K2*sigma
	default:
		q = p.C - p.K3*sigma
	}
	// Round to an integer step, then clamp to the tightest integers inside
	// [QMin, QMax] so fractional clamp bounds cannot be violated by the
	// final integer conversion.
	q = math.Round(q)
	if lo := math.Ceil(p.QMin); q < lo {
		q = lo
	}
	if hi := math.Floor(p.QMax); q > hi {
		q = hi
	}
	return uint16(q)
}

// Table maps every band's δ through the PLM, producing a DeepN-JPEG
// quantization table.
func (p Params) Table(stats *freqstat.Stats) (qtable.Table, error) {
	if err := p.Validate(); err != nil {
		return qtable.Table{}, err
	}
	var t qtable.Table
	for i := 0; i < 64; i++ {
		t[i] = p.Step(stats.Std[i])
	}
	if err := t.Validate(); err != nil {
		return qtable.Table{}, fmt.Errorf("plm: derived table invalid: %w", err)
	}
	return t, nil
}

// TableFromSigmas is Table for callers that hold raw δ values.
func (p Params) TableFromSigmas(sigmas *[64]float64) (qtable.Table, error) {
	if err := p.Validate(); err != nil {
		return qtable.Table{}, err
	}
	var t qtable.Table
	for i := 0; i < 64; i++ {
		t[i] = p.Step(sigmas[i])
	}
	if err := t.Validate(); err != nil {
		return qtable.Table{}, fmt.Errorf("plm: derived table invalid: %w", err)
	}
	return t, nil
}

// Anchors are the measurable quantities that pin down the PLM: the largest
// accuracy-safe steps for the HF and MF bands (Q1, Q2 — the critical
// points of the Fig. 5 sweeps), the LF protection floor QMin, the baseline
// ceiling QMax, and the LF slope K3 chosen by the Fig. 6 trade-off sweep.
type Anchors struct {
	Q1, Q2     float64
	QMin, QMax float64
	K3         float64
}

// PaperAnchors returns the ImageNet anchor values from Figs. 5 and 6.
func PaperAnchors() Anchors {
	return Anchors{Q1: 60, Q2: 20, QMin: 5, QMax: 255, K3: 3}
}

// paperLFSpan is the δ width of the LF segment implied by the published
// constants: δmax − T2 = (240−5)/3 − 60 ≈ 18.33. The paper's k3 values
// are defined on this span; Fit rescales them to the target dataset's
// span so that "k3 = 3" means the same LF aggressiveness everywhere.
const paperLFSpan = (240.0-5.0)/3.0 - 60.0

// Fit derives PLM parameters from anchors plus the dataset-dependent
// quantities: the segmentation thresholds T1/T2 and the maximum band δ.
// The HF and MF segments are continuous at T1 by construction. The LF
// segment preserves the geometric invariant of the published constants —
// it starts at Q_LF(T2) = QMin + k3·18.33 (= 60 for k3 = 3, QMin = 5) and
// falls to exactly QMin at δmax — by rescaling k3 to the dataset's LF
// span. On ImageNet's own span the rescale is the identity and Fit
// reproduces the published a, b, c, k1, k2, k3.
func Fit(a Anchors, t1, t2, sigmaMax float64) (Params, error) {
	if t1 <= 0 || t2 <= t1 {
		return Params{}, fmt.Errorf("plm: Fit needs 0 < T1 < T2, got %g, %g", t1, t2)
	}
	if sigmaMax <= t2 {
		return Params{}, fmt.Errorf("plm: σmax %g must exceed T2 %g (no LF band beyond threshold)", sigmaMax, t2)
	}
	if a.Q1 <= a.Q2 || a.Q2 < a.QMin || a.QMax < a.Q1 {
		return Params{}, fmt.Errorf("plm: anchors must satisfy QMin ≤ Q2 < Q1 ≤ QMax, got %+v", a)
	}
	if a.K3 <= 0 {
		return Params{}, fmt.Errorf("plm: k3 must be positive, got %g", a.K3)
	}
	// Q_LF(T2) in paper units, then the slope that lands on QMin at the
	// dataset's actual δmax.
	qlf0 := a.QMin + a.K3*paperLFSpan
	k3 := (qlf0 - a.QMin) / (sigmaMax - t2)
	p := Params{
		A:    a.QMax,
		K1:   (a.QMax - a.Q1) / t1,
		K2:   (a.Q1 - a.Q2) / (t2 - t1),
		T1:   t1,
		T2:   t2,
		K3:   k3,
		C:    a.QMin + k3*sigmaMax,
		QMin: a.QMin,
		QMax: a.QMax,
	}
	p.B = a.Q1 + p.K2*t1
	if err := p.Validate(); err != nil {
		return Params{}, err
	}
	return p, nil
}

// FitFromStats runs magnitude-based segmentation on dataset statistics and
// fits the PLM to its thresholds — the full calibration step of the
// DeepN-JPEG design flow.
func FitFromStats(a Anchors, stats *freqstat.Stats) (Params, freqstat.Segmentation, error) {
	seg := freqstat.SegmentByMagnitude(stats)
	p, err := Fit(a, seg.T1, seg.T2, stats.MaxStd())
	if err != nil {
		return Params{}, seg, err
	}
	return p, seg, nil
}
