package plm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/freqstat"
)

func TestPaperConstantsAreSelfConsistent(t *testing.T) {
	p := PaperImageNet()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// The published constants satisfy the anchor identities: the HF line
	// hits Q1=60 at T1=20 and the MF line continues from there to Q2=20 at
	// T2=60.
	if got := p.A - p.K1*p.T1; got != 60 {
		t.Fatalf("HF line at T1 = %g, want 60", got)
	}
	if got := p.B - p.K2*p.T1; got != 60 {
		t.Fatalf("MF line at T1 = %g, want 60 (continuity)", got)
	}
	if got := p.B - p.K2*p.T2; got != 20 {
		t.Fatalf("MF line at T2 = %g, want 20", got)
	}
	// c = Qmin + k3·δmax ⇒ δmax = (240−5)/3 ≈ 78.3, the paper's ImageNet σ
	// range.
	if dmax := (p.C - p.QMin) / p.K3; math.Abs(dmax-78.333) > 0.01 {
		t.Fatalf("implied δmax = %g", dmax)
	}
}

func TestStepSegments(t *testing.T) {
	p := PaperImageNet()
	cases := []struct {
		sigma float64
		want  uint16
	}{
		{0, 255},   // empty band → coarsest step
		{10, 158},  // HF: 255 − 97.5 = 157.5 → 158
		{20, 60},   // boundary T1 (HF side): 255 − 195 = 60
		{30, 50},   // MF: 80 − 30
		{60, 20},   // boundary T2 (MF side): 80 − 60
		{70, 30},   // LF: 240 − 210
		{78.33, 5}, // LF at δmax → QMin
		{100, 5},   // beyond δmax clamps at QMin
	}
	for _, c := range cases {
		if got := p.Step(c.sigma); got != c.want {
			t.Errorf("Step(%g) = %d, want %d", c.sigma, got, c.want)
		}
	}
}

func TestStepClampsToQMax(t *testing.T) {
	p := PaperImageNet()
	p.A = 400 // would exceed the baseline limit at σ=0
	if got := p.Step(0); got != 255 {
		t.Fatalf("Step(0) = %d, want clamp to 255", got)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	bad := []Params{
		{T1: 10, T2: 5, QMin: 5, QMax: 255},          // T2 < T1
		{T1: 10, T2: 20, QMin: 0, QMax: 255},         // QMin < 1
		{T1: 10, T2: 20, QMin: 5, QMax: 300},         // QMax > 255
		{T1: 10, T2: 20, QMin: 99, QMax: 50},         // QMin > QMax
		{T1: 10, T2: 20, QMin: 5, QMax: 255, K1: -1}, // negative slope
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
}

func TestTableMonotoneInSigma(t *testing.T) {
	// Within each segment, a larger δ must never get a coarser step; across
	// the whole range the clamps keep the result in [QMin, QMax].
	p := PaperImageNet()
	var stats freqstat.Stats
	for i := range stats.Std {
		stats.Std[i] = float64(i) * 78.0 / 63.0
	}
	tbl, err := p.Table(&stats)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tbl {
		if tbl[i] < uint16(p.QMin) || tbl[i] > uint16(p.QMax) {
			t.Fatalf("step[%d] = %d outside clamps", i, tbl[i])
		}
	}
	// The most energetic band must get the finest step of the table.
	finest := tbl[0]
	for _, q := range tbl {
		if q < finest {
			finest = q
		}
	}
	if tbl[63] != finest {
		t.Fatalf("largest-σ band got %d, finest is %d", tbl[63], finest)
	}
}

func TestFitReproducesPaperParams(t *testing.T) {
	// Fitting with the paper's anchors and the ImageNet thresholds/δmax
	// must land on the published constants.
	p, err := Fit(PaperAnchors(), 20, 60, (240.0-5.0)/3.0)
	if err != nil {
		t.Fatal(err)
	}
	ref := PaperImageNet()
	if p.A != ref.A || p.B != ref.B || math.Abs(p.C-ref.C) > 1e-9 ||
		math.Abs(p.K1-ref.K1) > 1e-9 || p.K2 != ref.K2 || math.Abs(p.K3-ref.K3) > 1e-9 {
		t.Fatalf("fit %+v != paper %+v", p, ref)
	}
}

func TestFitRejectsBadInputs(t *testing.T) {
	a := PaperAnchors()
	if _, err := Fit(a, 0, 60, 80); err == nil {
		t.Error("T1=0 accepted")
	}
	if _, err := Fit(a, 60, 20, 80); err == nil {
		t.Error("T2<T1 accepted")
	}
	if _, err := Fit(a, 20, 60, 50); err == nil {
		t.Error("σmax<T2 accepted")
	}
	bad := a
	bad.Q1, bad.Q2 = 20, 60 // inverted
	if _, err := Fit(bad, 20, 60, 80); err == nil {
		t.Error("Q1<Q2 accepted")
	}
}

// Property: for any valid fit, the PLM is continuous at T1, assigns QMin at
// δmax, and never leaves [QMin, QMax].
func TestPropertyFitInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		t1 := 5 + rng.Float64()*20
		t2 := t1 + 5 + rng.Float64()*40
		sigmaMax := t2 + 5 + rng.Float64()*40
		a := Anchors{
			QMin: 1 + rng.Float64()*6,
			QMax: 200 + rng.Float64()*55,
			K3:   0.5 + rng.Float64()*5,
		}
		a.Q2 = a.QMin + 5 + rng.Float64()*20
		a.Q1 = a.Q2 + 10 + rng.Float64()*50
		if a.Q1 >= a.QMax {
			return true // skip degenerate draw
		}
		p, err := Fit(a, t1, t2, sigmaMax)
		if err != nil {
			return false
		}
		// Continuity at T1 (both lines meet at Q1).
		hf := p.A - p.K1*p.T1
		mf := p.B - p.K2*p.T1
		if math.Abs(hf-mf) > 1e-6 {
			return false
		}
		// δmax maps to QMin.
		if got := p.Step(sigmaMax); math.Abs(float64(got)-a.QMin) > 1 {
			return false
		}
		// Range check across a σ sweep.
		for s := 0.0; s < sigmaMax*1.5; s += sigmaMax / 97 {
			q := float64(p.Step(s))
			if q < p.QMin || q > p.QMax {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFitFromStats(t *testing.T) {
	// Synthetic stats: DC and a few low bands energetic, tail quiet.
	var stats freqstat.Stats
	for i := range stats.Std {
		stats.Std[i] = 80 * math.Exp(-float64(i)/10)
	}
	p, seg, err := FitFromStats(PaperAnchors(), &stats)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := p.Table(&stats)
	if err != nil {
		t.Fatal(err)
	}
	// LF bands must receive finer steps than HF bands on average.
	var lfSum, hfSum float64
	var lfN, hfN int
	for i := range tbl {
		switch seg.Class[i] {
		case freqstat.LF:
			lfSum += float64(tbl[i])
			lfN++
		case freqstat.HF:
			hfSum += float64(tbl[i])
			hfN++
		}
	}
	if lfSum/float64(lfN) >= hfSum/float64(hfN) {
		t.Fatalf("LF mean step %.1f not finer than HF %.1f", lfSum/float64(lfN), hfSum/float64(hfN))
	}
}

func TestFitFromStatsDegenerateFails(t *testing.T) {
	// All-equal σ gives T1 == T2 == σ, which cannot be fitted.
	var stats freqstat.Stats
	for i := range stats.Std {
		stats.Std[i] = 10
	}
	if _, _, err := FitFromStats(PaperAnchors(), &stats); err == nil {
		t.Fatal("degenerate stats accepted")
	}
}

func TestTableFromSigmas(t *testing.T) {
	p := PaperImageNet()
	var sig [64]float64
	for i := range sig {
		sig[i] = float64(i)
	}
	tbl, err := p.TableFromSigmas(&sig)
	if err != nil {
		t.Fatal(err)
	}
	if tbl[0] != 255 { // σ=0 → coarsest
		t.Fatalf("step for σ=0 is %d", tbl[0])
	}
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
}
