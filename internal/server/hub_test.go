package server

// Fleet distribution suite — the end-to-end story the profile hub
// exists for: N serving processes with EMPTY profile directories boot
// against one signed origin, lazily pull the same name@version, serve
// byte-identical encodes, keep serving from cache when the origin dies,
// and pick up a pushed new version on the next watch tick. Everything
// runs in-process over httptest; under -race this also exercises the
// hub client, registry sync, and snapshot swap concurrently.

import (
	"bytes"
	"crypto/ed25519"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/profile"
	"repro/internal/profilehub"
)

// startFleetOrigin publishes fleet@1 (the shared test framework) from a
// signed origin whose availability tests can toggle.
func startFleetOrigin(t *testing.T) (url string, down *atomic.Bool, pub ed25519.PublicKey) {
	t.Helper()
	pubKey, priv, err := profilehub.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	p, err := profile.FromFramework(testFramework(), profile.Meta{Name: "fleet", Version: 1, CreatedUnix: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Write(filepath.Join(dir, p.FileName())); err != nil {
		t.Fatal(err)
	}
	origin, err := profilehub.NewOrigin(profilehub.OriginOptions{Dir: dir, SigningKey: priv})
	if err != nil {
		t.Fatal(err)
	}
	down = &atomic.Bool{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			if conn, _, err := w.(http.Hijacker).Hijack(); err == nil {
				conn.Close()
			}
			return
		}
		origin.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts.URL, down, pubKey
}

func TestFleetPullsFromHub(t *testing.T) {
	originURL, down, pub := startFleetOrigin(t)

	// Two servers, zero local profiles, fast hub retry schedule is not
	// configurable per-server — the watch interval is what matters here.
	fleet := make([]*httptest.Server, 2)
	for i := range fleet {
		s, err := New(Options{
			ProfileDir:      t.TempDir(),
			DefaultProfile:  "fleet",
			ProfileWatch:    20 * time.Millisecond,
			HubOrigin:       originURL,
			HubTrustedKey:   pub,
			HubFetchTimeout: 5 * time.Second,
		})
		if err != nil {
			t.Fatalf("server %d failed to boot from an empty dir: %v", i, err)
		}
		fleet[i] = newHTTPServer(t, s)
	}

	body := ppmBody(t, testImages(t, 1)[0])
	encodeOn := func(ts *httptest.Server) []byte {
		t.Helper()
		resp, got := post(t, ts.URL+"/v1/encode", "image/x-portable-pixmap", body, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("encode status %d: %s", resp.StatusCode, got)
		}
		return got
	}

	// Both lazily pulled the same signed fleet@1 at boot and encode
	// byte-identically — to each other and to the direct codec call.
	want := encodeDirect(t, testFramework(), body)
	for i, ts := range fleet {
		if got := encodeOn(ts); !bytes.Equal(got, want) {
			t.Fatalf("server %d: hub-pulled profile encodes differently", i)
		}
	}

	// Healthz shows the hub block with real counters.
	hub := hubStatusFrom(t, fleet[0].URL+"/healthz")
	if hub["origin"] != originURL {
		t.Fatalf("healthz hub origin %v", hub["origin"])
	}
	if n, _ := hub["blob_fetches"].(float64); n < 1 {
		t.Fatalf("healthz hub block records no blob fetches: %v", hub)
	}

	// Publish fleet@2 through the push endpoint; every server's next
	// watch tick must sync it down and re-resolve the default.
	p2, err := profile.FromFramework(altFramework(), profile.Meta{Name: "fleet", Version: 2, CreatedUnix: 2})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := p2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(originURL+profilehub.PushPath, "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("push: %d, want 201", resp.StatusCode)
	}
	deadline := time.Now().Add(15 * time.Second)
	for _, ts := range fleet {
		for {
			st := profileStatusFrom(t, ts.URL+"/healthz", "profile")
			if st.Name == "fleet" && st.Version == 2 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("server never picked up pushed fleet@2 (at %s@%d)", st.Name, st.Version)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	want2 := encodeDirect(t, altFramework(), body)
	if bytes.Equal(want2, want) {
		t.Fatal("fixtures indistinguishable; version switch is unprovable")
	}
	for i, ts := range fleet {
		if got := encodeOn(ts); !bytes.Equal(got, want2) {
			t.Fatalf("server %d did not switch to fleet@2", i)
		}
	}

	// Kill the origin. The fleet keeps serving: profiles are local files
	// now and the hub client degrades to its cached index.
	down.Store(true)
	for i, ts := range fleet {
		if got := encodeOn(ts); !bytes.Equal(got, want2) {
			t.Fatalf("server %d stopped serving correctly with the origin down", i)
		}
	}
}

// TestServerHubRequiresProfileDir pins the config contract: a hub
// origin without a directory to materialize into is a boot error, not a
// latent runtime surprise.
func TestServerHubRequiresProfileDir(t *testing.T) {
	_, err := New(Options{Framework: testFramework(), HubOrigin: "http://localhost:1"})
	if err == nil {
		t.Fatal("HubOrigin without ProfileDir booted")
	}
}

// TestServerHubBootFailsOnUnreachableOriginWithEmptyDir pins the other
// edge: nothing local, nothing cached, origin unreachable — the default
// profile cannot resolve and the server must refuse to boot rather than
// serve nothing.
func TestServerHubBootFailsOnUnreachableOriginWithEmptyDir(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no", http.StatusNotFound)
	}))
	defer ts.Close()
	_, err := New(Options{
		ProfileDir:      t.TempDir(),
		DefaultProfile:  "fleet",
		HubOrigin:       ts.URL,
		HubFetchTimeout: time.Second,
	})
	if err == nil {
		t.Fatal("booted with no resolvable default profile")
	}
}

func hubStatusFrom(tb testing.TB, url string) map[string]any {
	tb.Helper()
	resp, err := http.Get(url)
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Profile struct {
			Hub map[string]any `json:"hub"`
		} `json:"profile"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		tb.Fatal(err)
	}
	if doc.Profile.Hub == nil {
		tb.Fatalf("no hub block inside the profile status at %s", url)
	}
	return doc.Profile.Hub
}
