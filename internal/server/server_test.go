package server

// httptest integration suite: every endpoint must round-trip against the
// jpegcodec goldens (server streams byte-identical to direct codec
// calls — the server adds transport, never transcoding), and every error
// path must answer the structured JSON envelope with the right status.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dct"
	"repro/internal/imgutil"
	"repro/internal/jpegcodec"
	"repro/internal/qtable"
)

// testFramework calibrates one shared framework for the whole package
// (calibration is the slow part; the framework is read-only after).
var testFramework = sync.OnceValue(func() *core.Framework {
	cfg := dataset.Quick()
	cfg.TrainPerClass, cfg.TestPerClass = 8, 1
	cfg.Color = true
	train, _, err := dataset.Generate(cfg)
	if err != nil {
		panic(err)
	}
	fw, err := core.Calibrate(train, core.CalibrateOptions{Chroma: true})
	if err != nil {
		panic(err)
	}
	return fw
})

// testImages returns a few deterministic color images.
func testImages(tb testing.TB, n int) []*imgutil.RGB {
	tb.Helper()
	cfg := dataset.Quick()
	cfg.TrainPerClass, cfg.TestPerClass = (n+7)/8+1, 1
	cfg.Color = true
	train, _, err := dataset.Generate(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	if len(train.Images) < n {
		tb.Fatalf("dataset yielded %d images, need %d", len(train.Images), n)
	}
	return train.Images[:n]
}

func newTestServer(tb testing.TB, opts Options) (*Server, *httptest.Server) {
	tb.Helper()
	if opts.Framework == nil {
		opts.Framework = testFramework()
	}
	s, err := New(opts)
	if err != nil {
		tb.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	tb.Cleanup(ts.Close)
	return s, ts
}

func ppmBody(tb testing.TB, img *imgutil.RGB) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := imgutil.WritePPM(&buf, img); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func post(tb testing.TB, url, contentType string, body []byte, hdr map[string]string) (*http.Response, []byte) {
	tb.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		tb.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		tb.Fatal(err)
	}
	return resp, data
}

// wantJSONError asserts the structured error envelope.
func wantJSONError(tb testing.TB, resp *http.Response, body []byte, status int, code string) {
	tb.Helper()
	if resp.StatusCode != status {
		tb.Fatalf("status %d, want %d (body %q)", resp.StatusCode, status, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		tb.Fatalf("error Content-Type %q, want application/json", ct)
	}
	var env struct {
		Status int `json:"status"`
		Error  struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		tb.Fatalf("error body is not JSON: %v (%q)", err, body)
	}
	if env.Status != status || env.Error.Code != code || env.Error.Message == "" {
		tb.Fatalf("error envelope {status:%d code:%q msg:%q}, want {%d %q non-empty}",
			env.Status, env.Error.Code, env.Error.Message, status, code)
	}
}

func TestEncodeEndpointMatchesCodec(t *testing.T) {
	fw := testFramework()
	_, ts := newTestServer(t, Options{})
	img := testImages(t, 1)[0]
	body := ppmBody(t, img)

	t.Run("calibrated-default", func(t *testing.T) {
		resp, got := post(t, ts.URL+"/v1/encode", "image/x-portable-pixmap", body, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, got)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "image/jpeg" {
			t.Fatalf("Content-Type %q", ct)
		}
		want, err := fw.Scheme().EncodeRGB(img)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("server stream (%d bytes) differs from Codec.Encode (%d bytes)", len(got), len(want))
		}
	})

	t.Run("quality-85", func(t *testing.T) {
		resp, got := post(t, ts.URL+"/v1/encode?quality=85", "", body, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, got)
		}
		var buf bytes.Buffer
		opts := jpegcodec.Options{
			LumaTable:   qtable.MustScale(qtable.StdLuminance, 85),
			ChromaTable: qtable.MustScale(qtable.StdChrominance, 85),
		}
		if err := jpegcodec.EncodeRGB(&buf, img, &opts); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, buf.Bytes()) {
			t.Fatal("server qf-85 stream differs from direct jpegcodec encode")
		}
	})

	t.Run("aan-identical", func(t *testing.T) {
		_, naive := post(t, ts.URL+"/v1/encode?transform=naive", "", body, nil)
		_, aan := post(t, ts.URL+"/v1/encode?transform=aan", "", body, nil)
		if !bytes.Equal(naive, aan) {
			t.Fatal("transform engines must emit byte-identical streams")
		}
	})

	t.Run("options-444-optimize", func(t *testing.T) {
		resp, got := post(t, ts.URL+"/v1/encode?subsampling=444&optimize=true", "", body, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, got)
		}
		opts := fw.Scheme().Opts
		opts.Subsampling = jpegcodec.Sub444
		opts.OptimizeHuffman = true
		var buf bytes.Buffer
		if err := jpegcodec.EncodeRGB(&buf, img, &opts); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, buf.Bytes()) {
			t.Fatal("server 444/optimize stream differs from direct encode")
		}
	})

	t.Run("restart-4", func(t *testing.T) {
		resp, got := post(t, ts.URL+"/v1/encode?restart=4", "", body, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, got)
		}
		opts := fw.Scheme().Opts
		opts.RestartInterval = 4
		var buf bytes.Buffer
		if err := jpegcodec.EncodeRGB(&buf, img, &opts); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, buf.Bytes()) {
			t.Fatal("server restart=4 stream differs from direct encode")
		}
		var dec jpegcodec.Decoded
		if err := jpegcodec.DecodeInto(bytes.NewReader(got), &dec, nil); err != nil {
			t.Fatal(err)
		}
		if dec.RestartInterval != 4 {
			t.Fatalf("served stream carries restart interval %d, want 4", dec.RestartInterval)
		}
	})

	t.Run("png-input", func(t *testing.T) {
		var pngBuf bytes.Buffer
		if err := writeImage(&pngBuf, img, outputFormat{"png", "image/png"}); err != nil {
			t.Fatal(err)
		}
		resp, got := post(t, ts.URL+"/v1/encode", "image/png", pngBuf.Bytes(), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, got)
		}
		want, err := fw.Scheme().EncodeRGB(img)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("PNG-fed encode differs from PPM-fed encode of the same pixels")
		}
	})
}

func TestDecodeEndpointMatchesCodec(t *testing.T) {
	fw := testFramework()
	_, ts := newTestServer(t, Options{})
	img := testImages(t, 1)[0]
	stream, err := fw.Scheme().EncodeRGB(img)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := jpegcodec.Decode(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	golden := dec.RGB()

	t.Run("ppm", func(t *testing.T) {
		resp, got := post(t, ts.URL+"/v1/decode?format=ppm", "image/jpeg", stream, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, got)
		}
		back, err := imgutil.ReadPPM(bytes.NewReader(got))
		if err != nil {
			t.Fatal(err)
		}
		if back.W != golden.W || back.H != golden.H || !bytes.Equal(back.Pix, golden.Pix) {
			t.Fatal("served pixels differ from jpegcodec.Decode golden")
		}
		if w := resp.Header.Get("X-Image-Width"); w != strconv.Itoa(golden.W) {
			t.Fatalf("X-Image-Width %q", w)
		}
	})

	t.Run("png", func(t *testing.T) {
		resp, got := post(t, ts.URL+"/v1/decode", "image/jpeg", stream, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, got)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "image/png" {
			t.Fatalf("Content-Type %q", ct)
		}
		var buf bytes.Buffer
		if err := writeImage(&buf, golden, outputFormat{"png", "image/png"}); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, buf.Bytes()) {
			t.Fatal("served PNG differs from golden encode")
		}
	})
}

func TestRequantizeEndpointMatchesCodec(t *testing.T) {
	fw := testFramework()
	_, ts := newTestServer(t, Options{})
	img := testImages(t, 1)[0]
	var srcBuf bytes.Buffer
	srcOpts := jpegcodec.Options{
		LumaTable:   qtable.MustScale(qtable.StdLuminance, 95),
		ChromaTable: qtable.MustScale(qtable.StdChrominance, 95),
	}
	if err := jpegcodec.EncodeRGB(&srcBuf, img, &srcOpts); err != nil {
		t.Fatal(err)
	}
	src := srcBuf.Bytes()

	golden := func(luma, chroma qtable.Table) []byte {
		dec, err := jpegcodec.Decode(bytes.NewReader(src))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := jpegcodec.Requantize(&buf, dec, luma, chroma,
			&jpegcodec.Options{OptimizeHuffman: true}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	t.Run("calibrated-default", func(t *testing.T) {
		resp, got := post(t, ts.URL+"/v1/requantize", "image/jpeg", src, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, got)
		}
		if want := golden(fw.LumaTable, fw.ChromaTable); !bytes.Equal(got, want) {
			t.Fatal("server requantize differs from direct jpegcodec.Requantize")
		}
	})

	t.Run("quality-60", func(t *testing.T) {
		resp, got := post(t, ts.URL+"/v1/requantize?quality=60", "image/jpeg", src, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, got)
		}
		want := golden(qtable.MustScale(qtable.StdLuminance, 60), qtable.MustScale(qtable.StdChrominance, 60))
		if !bytes.Equal(got, want) {
			t.Fatal("server qf-60 requantize differs from direct jpegcodec.Requantize")
		}
		if len(got) >= len(src) {
			t.Fatalf("qf-60 requantize grew the stream: %d → %d bytes", len(src), len(got))
		}
	})

	t.Run("restart-semantics", func(t *testing.T) {
		// A restart-carrying source keeps its interval through default
		// requantization; ?restart=-1 strips it, ?restart=n replaces it.
		var rBuf bytes.Buffer
		rOpts := srcOpts
		rOpts.RestartInterval = 2
		if err := jpegcodec.EncodeRGB(&rBuf, img, &rOpts); err != nil {
			t.Fatal(err)
		}
		rSrc := rBuf.Bytes()
		interval := func(stream []byte) int {
			var dec jpegcodec.Decoded
			if err := jpegcodec.DecodeInto(bytes.NewReader(stream), &dec, nil); err != nil {
				t.Fatal(err)
			}
			return dec.RestartInterval
		}
		for _, tc := range []struct {
			query string
			want  int
		}{
			{"", 2},
			{"?restart=5", 5},
			{"?restart=-1", 0},
		} {
			resp, got := post(t, ts.URL+"/v1/requantize"+tc.query, "image/jpeg", rSrc, nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%q: status %d: %s", tc.query, resp.StatusCode, got)
			}
			if ri := interval(got); ri != tc.want {
				t.Fatalf("%q: output restart interval %d, want %d", tc.query, ri, tc.want)
			}
		}
	})
}

// buildMultipart assembles a batch request body.
func buildMultipart(tb testing.TB, items [][]byte) ([]byte, string) {
	tb.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	for i, item := range items {
		pw, err := mw.CreateFormFile("items", fmt.Sprintf("item-%d", i))
		if err != nil {
			tb.Fatal(err)
		}
		if _, err := pw.Write(item); err != nil {
			tb.Fatal(err)
		}
	}
	if err := mw.Close(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes(), mw.FormDataContentType()
}

// readMultipart splits a multipart/mixed response into ordered parts.
type batchPart struct {
	index   int
	isError bool
	data    []byte
}

func readMultipart(tb testing.TB, resp *http.Response, body []byte) []batchPart {
	tb.Helper()
	_, params, err := mime.ParseMediaType(resp.Header.Get("Content-Type"))
	if err != nil {
		tb.Fatalf("response Content-Type: %v", err)
	}
	mr := multipart.NewReader(bytes.NewReader(body), params["boundary"])
	var parts []batchPart
	for {
		p, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			tb.Fatal(err)
		}
		data, err := io.ReadAll(p)
		if err != nil {
			tb.Fatal(err)
		}
		idx, err := strconv.Atoi(p.Header.Get("X-Batch-Index"))
		if err != nil {
			tb.Fatalf("part lacks X-Batch-Index: %v", err)
		}
		parts = append(parts, batchPart{
			index:   idx,
			isError: p.Header.Get("X-Batch-Error") == "true",
			data:    data,
		})
	}
	return parts
}

func TestBatchEncodeOrderAndGoldens(t *testing.T) {
	fw := testFramework()
	_, ts := newTestServer(t, Options{BatchWorkers: 4})
	imgs := testImages(t, 6)
	items := make([][]byte, len(imgs))
	goldens := make([][]byte, len(imgs))
	for i, img := range imgs {
		items[i] = ppmBody(t, img)
		want, err := fw.Scheme().EncodeRGB(img)
		if err != nil {
			t.Fatal(err)
		}
		goldens[i] = want
	}
	body, ct := buildMultipart(t, items)
	resp, respBody := post(t, ts.URL+"/v1/batch?op=encode", ct, body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, respBody)
	}
	if got := resp.Header.Get("X-Batch-Items"); got != strconv.Itoa(len(items)) {
		t.Fatalf("X-Batch-Items %q", got)
	}
	parts := readMultipart(t, resp, respBody)
	if len(parts) != len(items) {
		t.Fatalf("%d response parts for %d items", len(parts), len(items))
	}
	for i, p := range parts {
		if p.index != i {
			t.Fatalf("part %d carries index %d: order not preserved", i, p.index)
		}
		if p.isError {
			t.Fatalf("item %d failed: %s", i, p.data)
		}
		if !bytes.Equal(p.data, goldens[i]) {
			t.Fatalf("item %d differs from its sequential golden encode", i)
		}
	}
}

func TestBatchPartialFailure(t *testing.T) {
	_, ts := newTestServer(t, Options{BatchWorkers: 2})
	imgs := testImages(t, 3)
	items := [][]byte{
		ppmBody(t, imgs[0]),
		[]byte("this is not an image"),
		ppmBody(t, imgs[2]),
	}
	body, ct := buildMultipart(t, items)
	resp, respBody := post(t, ts.URL+"/v1/batch", ct, body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, respBody)
	}
	if got := resp.Header.Get("X-Batch-Failed"); got != "1" {
		t.Fatalf("X-Batch-Failed %q, want 1", got)
	}
	parts := readMultipart(t, resp, respBody)
	if len(parts) != 3 {
		t.Fatalf("%d parts", len(parts))
	}
	for i, p := range parts {
		if p.index != i {
			t.Fatalf("part order broken at %d", i)
		}
	}
	if parts[0].isError || parts[2].isError || !parts[1].isError {
		t.Fatalf("failure flags wrong: %v %v %v", parts[0].isError, parts[1].isError, parts[2].isError)
	}
	var env struct {
		Index int `json:"index"`
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(parts[1].data, &env); err != nil {
		t.Fatalf("error part is not JSON: %v", err)
	}
	if env.Index != 1 || env.Error.Code != "item_failed" {
		t.Fatalf("error part %+v", env)
	}
}

func TestBatchDecodeAndRequantizeOps(t *testing.T) {
	fw := testFramework()
	_, ts := newTestServer(t, Options{})
	imgs := testImages(t, 3)
	streams := make([][]byte, len(imgs))
	for i, img := range imgs {
		data, err := fw.Scheme().EncodeRGB(img)
		if err != nil {
			t.Fatal(err)
		}
		streams[i] = data
	}

	t.Run("decode", func(t *testing.T) {
		body, ct := buildMultipart(t, streams)
		resp, respBody := post(t, ts.URL+"/v1/batch?op=decode&format=ppm", ct, body, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, respBody)
		}
		parts := readMultipart(t, resp, respBody)
		for i, p := range parts {
			if p.isError {
				t.Fatalf("item %d: %s", i, p.data)
			}
			dec, err := jpegcodec.Decode(bytes.NewReader(streams[i]))
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := imgutil.WritePPM(&buf, dec.RGB()); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(p.data, buf.Bytes()) {
				t.Fatalf("decoded item %d differs from golden", i)
			}
		}
	})

	t.Run("requantize", func(t *testing.T) {
		body, ct := buildMultipart(t, streams)
		resp, respBody := post(t, ts.URL+"/v1/batch?op=requantize&quality=50", ct, body, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, respBody)
		}
		parts := readMultipart(t, resp, respBody)
		for i, p := range parts {
			if p.isError {
				t.Fatalf("item %d: %s", i, p.data)
			}
			dec, err := jpegcodec.Decode(bytes.NewReader(streams[i]))
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := jpegcodec.Requantize(&buf, dec,
				qtable.MustScale(qtable.StdLuminance, 50),
				qtable.MustScale(qtable.StdChrominance, 50),
				&jpegcodec.Options{OptimizeHuffman: true}); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(p.data, buf.Bytes()) {
				t.Fatalf("requantized item %d differs from golden", i)
			}
		}
	})
}

func TestErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxBodyBytes: 4 << 10, MaxPixels: 1 << 16})
	img := testImages(t, 1)[0]
	small := ppmBody(t, img)
	fw := testFramework()
	stream, err := fw.Scheme().EncodeRGB(img)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("bad-quality", func(t *testing.T) {
		resp, body := post(t, ts.URL+"/v1/encode?quality=101", "", small, nil)
		wantJSONError(t, resp, body, http.StatusBadRequest, "bad_quality")
	})
	t.Run("bad-transform", func(t *testing.T) {
		resp, body := post(t, ts.URL+"/v1/encode?transform=dft", "", small, nil)
		wantJSONError(t, resp, body, http.StatusBadRequest, "bad_transform")
	})
	t.Run("bad-subsampling", func(t *testing.T) {
		resp, body := post(t, ts.URL+"/v1/encode?subsampling=421", "", small, nil)
		wantJSONError(t, resp, body, http.StatusBadRequest, "bad_subsampling")
	})
	t.Run("bad-restart", func(t *testing.T) {
		resp, body := post(t, ts.URL+"/v1/encode?restart=65536", "", small, nil)
		wantJSONError(t, resp, body, http.StatusBadRequest, "bad_restart")
	})
	t.Run("bad-restart-negative-encode", func(t *testing.T) {
		// -1 means "strip" only on requantize; encode rejects it.
		resp, body := post(t, ts.URL+"/v1/encode?restart=-1", "", small, nil)
		wantJSONError(t, resp, body, http.StatusBadRequest, "bad_restart")
	})
	t.Run("bad-format", func(t *testing.T) {
		resp, body := post(t, ts.URL+"/v1/decode?format=webp", "", stream, nil)
		wantJSONError(t, resp, body, http.StatusBadRequest, "bad_format")
	})
	t.Run("truncated-jpeg", func(t *testing.T) {
		resp, body := post(t, ts.URL+"/v1/decode", "", stream[:len(stream)/3], nil)
		wantJSONError(t, resp, body, http.StatusBadRequest, "bad_input")
	})
	t.Run("not-an-image", func(t *testing.T) {
		resp, body := post(t, ts.URL+"/v1/encode", "", []byte("GIF89a nonsense"), nil)
		wantJSONError(t, resp, body, http.StatusUnsupportedMediaType, "unsupported_image")
	})
	t.Run("empty-body", func(t *testing.T) {
		resp, body := post(t, ts.URL+"/v1/encode", "", nil, nil)
		wantJSONError(t, resp, body, http.StatusBadRequest, "empty_body")
	})
	t.Run("oversized-body", func(t *testing.T) {
		big := make([]byte, 8<<10) // over the 4 KiB cap
		copy(big, small)
		resp, body := post(t, ts.URL+"/v1/encode", "", big, nil)
		wantJSONError(t, resp, body, http.StatusRequestEntityTooLarge, "body_too_large")
	})
	t.Run("allocation-bomb-ppm", func(t *testing.T) {
		resp, body := post(t, ts.URL+"/v1/encode", "",
			[]byte("P6\n60000 60000\n255\nxx"), nil)
		wantJSONError(t, resp, body, http.StatusBadRequest, "image_too_large")
	})
	t.Run("oversized-jpeg-dims", func(t *testing.T) {
		// 32×32 stream against a 16-pixel limit exercises the decoder's
		// MaxPixels guard through the server.
		_, tiny := newTestServer(t, Options{MaxPixels: 16})
		resp, body := post(t, tiny.URL+"/v1/decode", "", stream, nil)
		wantJSONError(t, resp, body, http.StatusBadRequest, "bad_input")
		if !strings.Contains(string(body), "pixel") {
			t.Fatalf("error should mention the pixel limit: %s", body)
		}
	})
	t.Run("method-not-allowed", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/encode")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		wantJSONError(t, resp, body, http.StatusMethodNotAllowed, "method_not_allowed")
	})
	t.Run("batch-bad-op", func(t *testing.T) {
		body, ct := buildMultipart(t, [][]byte{small})
		resp, respBody := post(t, ts.URL+"/v1/batch?op=transmogrify", ct, body, nil)
		wantJSONError(t, resp, respBody, http.StatusBadRequest, "bad_op")
	})
	t.Run("batch-not-multipart", func(t *testing.T) {
		resp, respBody := post(t, ts.URL+"/v1/batch", "application/json", []byte("{}"), nil)
		wantJSONError(t, resp, respBody, http.StatusBadRequest, "bad_content_type")
	})
	t.Run("batch-empty", func(t *testing.T) {
		body, ct := buildMultipart(t, nil)
		resp, respBody := post(t, ts.URL+"/v1/batch", ct, body, nil)
		wantJSONError(t, resp, respBody, http.StatusBadRequest, "empty_batch")
	})
	t.Run("batch-too-many-items", func(t *testing.T) {
		_, capped := newTestServer(t, Options{MaxBatchItems: 2})
		body, ct := buildMultipart(t, [][]byte{small, small, small})
		resp, respBody := post(t, capped.URL+"/v1/batch", ct, body, nil)
		wantJSONError(t, resp, respBody, http.StatusRequestEntityTooLarge, "batch_too_large")
	})
	t.Run("batch-oversized-body", func(t *testing.T) {
		// The body cap must classify as 413 on the multipart route too,
		// wherever inside the stream the limit happens to land.
		parts := make([][]byte, 8)
		for i := range parts {
			parts[i] = bytes.Repeat([]byte{byte(i)}, 1<<10)
		}
		body, ct := buildMultipart(t, parts) // ~8 KiB against the 4 KiB cap
		resp, respBody := post(t, ts.URL+"/v1/batch", ct, body, nil)
		wantJSONError(t, resp, respBody, http.StatusRequestEntityTooLarge, "body_too_large")
	})
}

// TestUnsupportedFormatMatrix pins the 415 unsupported_format contract:
// syntactically well-formed JPEG streams whose coding process the decoder
// does not implement (arithmetic, lossless, hierarchical) must come back
// as 415 with the marker named, on both the decode and requantize routes —
// distinct from the 400 bad_input used for corrupt streams.
func TestUnsupportedFormatMatrix(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	sofStream := func(marker byte) []byte {
		return []byte{
			0xFF, 0xD8, // SOI
			0xFF, marker, 0x00, 0x0B, 8, 0, 16, 0, 16, 1, 1, 0x11, 0, // SOFn 16x16 gray
			0xFF, 0xDA, 0x00, 0x08, 1, 1, 0x00, 0, 63, 0, // SOS
			0x12, 0x34, // entropy bytes
			0xFF, 0xD9, // EOI
		}
	}
	cases := []struct {
		name   string
		marker byte
		want   string // marker name the message must carry
	}{
		{"arithmetic-sequential", 0xC9, "SOF9"},
		{"arithmetic-progressive", 0xCA, "SOF10"},
		{"lossless", 0xC3, "SOF3"},
		{"hierarchical-differential", 0xC5, "SOF5"},
	}
	for _, route := range []string{"/v1/decode", "/v1/requantize"} {
		for _, tc := range cases {
			t.Run(strings.TrimPrefix(route, "/v1/")+"-"+tc.name, func(t *testing.T) {
				resp, body := post(t, ts.URL+route, "", sofStream(tc.marker), nil)
				wantJSONError(t, resp, body, http.StatusUnsupportedMediaType, "unsupported_format")
				if !strings.Contains(string(body), tc.want) {
					t.Fatalf("message should name %s: %s", tc.want, body)
				}
			})
		}
	}
}

// TestDecodeDefaultsToServerTransform pins the -fast-dct contract: a
// server configured with the AAN engine must decode with it by default,
// not just when every client passes ?transform=aan.
func TestDecodeDefaultsToServerTransform(t *testing.T) {
	fwAAN := *testFramework()
	fwAAN.Transform = dct.TransformAAN
	_, ts := newTestServer(t, Options{Framework: &fwAAN})
	img := testImages(t, 1)[0]
	stream, err := fwAAN.Scheme().EncodeRGB(img)
	if err != nil {
		t.Fatal(err)
	}
	var dec jpegcodec.Decoded
	if err := jpegcodec.DecodeInto(bytes.NewReader(stream), &dec,
		&jpegcodec.DecodeOptions{Transform: dct.TransformAAN}); err != nil {
		t.Fatal(err)
	}
	var golden bytes.Buffer
	if err := imgutil.WritePPM(&golden, dec.RGB()); err != nil {
		t.Fatal(err)
	}
	resp, got := post(t, ts.URL+"/v1/decode?format=ppm", "image/jpeg", stream, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, golden.Bytes()) {
		t.Fatal("default decode does not use the server's configured AAN engine")
	}
}

func TestTenantAuth(t *testing.T) {
	_, ts := newTestServer(t, Options{
		Tenants: map[string]TenantConfig{
			"sekrit": {Name: "edge-fleet", MaxInFlight: 4},
		},
	})
	img := testImages(t, 1)[0]
	body := ppmBody(t, img)

	t.Run("missing-key", func(t *testing.T) {
		resp, respBody := post(t, ts.URL+"/v1/encode", "", body, nil)
		wantJSONError(t, resp, respBody, http.StatusUnauthorized, "missing_api_key")
	})
	t.Run("unknown-key", func(t *testing.T) {
		resp, respBody := post(t, ts.URL+"/v1/encode", "", body,
			map[string]string{"X-API-Key": "wrong"})
		wantJSONError(t, resp, respBody, http.StatusUnauthorized, "unknown_api_key")
	})
	t.Run("header-key", func(t *testing.T) {
		resp, respBody := post(t, ts.URL+"/v1/encode", "", body,
			map[string]string{"X-API-Key": "sekrit"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, respBody)
		}
	})
	t.Run("bearer-key", func(t *testing.T) {
		resp, respBody := post(t, ts.URL+"/v1/encode", "", body,
			map[string]string{"Authorization": "Bearer sekrit"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, respBody)
		}
	})
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Options{
		Tenants: map[string]TenantConfig{"k1": {Name: "alice"}},
	})
	img := testImages(t, 1)[0]
	body := ppmBody(t, img)
	auth := map[string]string{"X-API-Key": "k1"}
	for i := 0; i < 3; i++ {
		resp, respBody := post(t, ts.URL+"/v1/encode", "", body, auth)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warm-up encode: %d %s", resp.StatusCode, respBody)
		}
	}
	// One rejected request for the failure counters.
	if resp, respBody := post(t, ts.URL+"/v1/encode?quality=0", "", body, auth); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad quality accepted: %d %s", resp.StatusCode, respBody)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var health struct {
		Status        string  `json:"status"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}
	if err := json.Unmarshal(hb, &health); err != nil || health.Status != "ok" {
		t.Fatalf("healthz %q: %v", hb, err)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var metrics struct {
		Requests int64 `json:"requests"`
		Failures int64 `json:"failures"`
		BytesIn  int64 `json:"bytes_in"`
		BytesOut int64 `json:"bytes_out"`
		Tenants  map[string]struct {
			Requests int64 `json:"requests"`
			Failed   int64 `json:"failed"`
			BytesIn  int64 `json:"bytes_in"`
		} `json:"tenants"`
	}
	if err := json.Unmarshal(mb, &metrics); err != nil {
		t.Fatalf("metrics is not JSON: %v (%s)", err, mb)
	}
	if metrics.Requests != 4 || metrics.Failures != 1 {
		t.Fatalf("requests=%d failures=%d, want 4/1 (%s)", metrics.Requests, metrics.Failures, mb)
	}
	alice, ok := metrics.Tenants["alice"]
	if !ok {
		t.Fatalf("tenant accounting missing: %s", mb)
	}
	if alice.Requests != 4 || alice.Failed != 1 || alice.BytesIn != int64(3*len(body)) {
		t.Fatalf("tenant counters %+v (body %d bytes): %s", alice, len(body), mb)
	}
	if metrics.BytesIn != int64(3*len(body)) || metrics.BytesOut == 0 {
		t.Fatalf("byte accounting bytes_in=%d bytes_out=%d", metrics.BytesIn, metrics.BytesOut)
	}
}
