package server

// Throughput benchmarks through the real HTTP stack: requests/sec and
// items/sec through the batch endpoint are the serving numbers the
// ROADMAP's "production-scale service" goal is tracked by. Run via
// `make serve-bench`.

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
)

// benchServer builds an open-access server and a ready-made batch body.
func benchServer(b *testing.B, nItems int) (*httptest.Server, []byte, string) {
	b.Helper()
	s, err := New(Options{Framework: testFramework()})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(ts.Close)
	imgs := testImages(b, nItems)
	items := make([][]byte, len(imgs))
	for i, img := range imgs {
		items[i] = ppmBody(b, img)
	}
	body, ct := buildMultipart(b, items)
	return ts, body, ct
}

func benchPost(b *testing.B, client *http.Client, url, ct string, body []byte) {
	b.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	req.Header.Set("Content-Type", ct)
	resp, err := client.Do(req)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d", resp.StatusCode)
	}
}

// BenchmarkServeBatchEncode pushes 8-image batches through /v1/batch
// from parallel clients and reports requests/sec and items/sec.
func BenchmarkServeBatchEncode(b *testing.B) {
	const itemsPerBatch = 8
	ts, body, ct := benchServer(b, itemsPerBatch)
	url := ts.URL + "/v1/batch?op=encode"
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConnsPerHost: 2 * runtime.GOMAXPROCS(0),
	}}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			benchPost(b, client, url, ct, body)
		}
	})
	b.StopTimer()
	rps := float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(rps, "req/s")
	b.ReportMetric(rps*itemsPerBatch, "items/s")
}

// BenchmarkServeEncodeSingle measures the single-image endpoint, the
// per-request floor the batch path amortizes.
func BenchmarkServeEncodeSingle(b *testing.B) {
	s, err := New(Options{Framework: testFramework()})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(ts.Close)
	body := ppmBody(b, testImages(b, 1)[0])
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConnsPerHost: 2 * runtime.GOMAXPROCS(0),
	}}
	url := ts.URL + "/v1/encode"
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			benchPost(b, client, url, "image/x-portable-pixmap", body)
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}
