package server

// Race-mode load test: several tenants hammer /v1/batch through real TCP
// connections while the server shuts down gracefully underneath them.
// Afterwards the process must be back to its goroutine baseline (the
// goleak idiom, without the dependency) and every 200 response must have
// carried order-preserving, golden-identical parts.

import (
	"bytes"
	"context"
	"io"
	"net"
	"net/http"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitForGoroutineBaseline polls until the goroutine count returns to
// baseline (plus slack for runtime helpers), dumping stacks on timeout.
func waitForGoroutineBaseline(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			var buf bytes.Buffer
			pprof.Lookup("goroutine").WriteTo(&buf, 1)
			t.Fatalf("goroutines leaked: %d running, baseline %d\n%s", n, baseline, buf.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestBatchLoadWithGracefulShutdown(t *testing.T) {
	baseline := runtime.NumGoroutine()

	fw := testFramework()
	keys := []string{"key-a", "key-b", "key-c"}
	tenants := make(map[string]TenantConfig, len(keys))
	for _, k := range keys {
		tenants[k] = TenantConfig{Name: "tenant-" + k, MaxInFlight: 3}
	}
	s, err := New(Options{Framework: fw, BatchWorkers: 2, Tenants: tenants})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(l) }()
	baseURL := "http://" + l.Addr().String()

	imgs := testImages(t, 4)
	goldens := make([][]byte, len(imgs))
	items := make([][]byte, len(imgs))
	for i, img := range imgs {
		items[i] = ppmBody(t, img)
		want, err := fw.Scheme().EncodeRGB(img)
		if err != nil {
			t.Fatal(err)
		}
		goldens[i] = want
	}
	reqBody, reqCT := buildMultipart(t, items)

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 32}}
	var (
		wg             sync.WaitGroup
		completed      atomic.Int64 // 200s, parts verified
		rejected       atomic.Int64 // 429s at the tenant gate
		shutdownSeen   atomic.Int64 // transport/5xx errors once draining
		shuttingDown   atomic.Bool
		perTenantOK    sync.Map // key → *atomic.Int64
		goroutinesPerT = 4
		requestsPerG   = 6
	)
	for _, key := range keys {
		counter := new(atomic.Int64)
		perTenantOK.Store(key, counter)
		for g := 0; g < goroutinesPerT; g++ {
			wg.Add(1)
			go func(key string, counter *atomic.Int64) {
				defer wg.Done()
				for r := 0; r < requestsPerG; r++ {
					req, err := http.NewRequest(http.MethodPost, baseURL+"/v1/batch?op=encode",
						bytes.NewReader(reqBody))
					if err != nil {
						t.Error(err)
						return
					}
					req.Header.Set("Content-Type", reqCT)
					req.Header.Set("X-API-Key", key)
					resp, err := client.Do(req)
					if err != nil {
						// Once the listener is closed, refused/reset
						// connections are the expected way to lose.
						if shuttingDown.Load() {
							shutdownSeen.Add(1)
							return
						}
						t.Errorf("tenant %s: request failed before shutdown: %v", key, err)
						return
					}
					data, err := io.ReadAll(resp.Body)
					resp.Body.Close()
					if err != nil {
						if shuttingDown.Load() {
							shutdownSeen.Add(1)
							return
						}
						t.Errorf("tenant %s: reading response: %v", key, err)
						return
					}
					switch resp.StatusCode {
					case http.StatusOK:
						parts := readMultipart(t, resp, data)
						if len(parts) != len(items) {
							t.Errorf("tenant %s: %d parts for %d items", key, len(parts), len(items))
							return
						}
						for i, p := range parts {
							if p.index != i {
								t.Errorf("tenant %s: part %d carries index %d — order lost under load",
									key, i, p.index)
								return
							}
							if p.isError {
								t.Errorf("tenant %s: item %d failed under load: %s", key, i, p.data)
								return
							}
							if !bytes.Equal(p.data, goldens[i]) {
								t.Errorf("tenant %s: item %d bytes differ from golden under load", key, i)
								return
							}
						}
						completed.Add(1)
						counter.Add(1)
					case http.StatusTooManyRequests:
						rejected.Add(1)
					default:
						if !shuttingDown.Load() {
							t.Errorf("tenant %s: unexpected status %d: %s", key, resp.StatusCode, data)
							return
						}
						shutdownSeen.Add(1)
					}
				}
			}(key, counter)
		}
	}

	// Let the pools saturate, then pull the rug gracefully: in-flight
	// requests must complete, later ones must fail fast, nothing hangs.
	time.Sleep(100 * time.Millisecond)
	shuttingDown.Store(true)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	wg.Wait()
	if err := <-serveDone; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v, want http.ErrServerClosed", err)
	}
	if completed.Load() == 0 {
		t.Fatal("no batch request completed before shutdown — the load phase never ran")
	}
	t.Logf("load summary: %d completed, %d rejected (429), %d cut by shutdown",
		completed.Load(), rejected.Load(), shutdownSeen.Load())

	client.CloseIdleConnections()
	waitForGoroutineBaseline(t, baseline)
}

// TestTenantGateRejectsDeterministically saturates a tenant's semaphore
// white-box and proves the next request bounces with 429 and the JSON
// envelope, without relying on load-test timing.
func TestTenantGateRejectsDeterministically(t *testing.T) {
	s, ts := newTestServer(t, Options{
		Tenants: map[string]TenantConfig{"k": {Name: "small", MaxInFlight: 2}},
	})
	tn := s.tenants["k"]
	if !tn.tryAcquire() || !tn.tryAcquire() {
		t.Fatal("could not saturate the tenant gate")
	}
	defer tn.release()
	defer tn.release()
	if tn.tryAcquire() {
		t.Fatal("gate admitted past its cap")
	}
	img := testImages(t, 1)[0]
	resp, body := post(t, ts.URL+"/v1/encode", "", ppmBody(t, img),
		map[string]string{"X-API-Key": "k"})
	wantJSONError(t, resp, body, http.StatusTooManyRequests, "tenant_over_limit")
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
	if got := tn.rejected.Value(); got != 2 {
		t.Fatalf("rejected counter %d, want 2 (one white-box, one HTTP)", got)
	}
}
