package server

import "expvar"

// TenantConfig describes the limits of one API key.
type TenantConfig struct {
	// Name labels the tenant in /metrics and log output; it defaults to
	// the API key itself.
	Name string
	// MaxInFlight caps the tenant's concurrent requests; a request
	// arriving with every slot taken is rejected with 429 instead of
	// queued, so one tenant cannot absorb the whole worker pool. ≤ 0
	// falls back to Options.MaxInFlight.
	MaxInFlight int
	// Profile pins the tenant to a calibration profile ("name" or
	// "name@version") resolved against Options.ProfileDir; the tenant's
	// requests default to its tables instead of the server default. A
	// per-request ?profile= still overrides it. Empty uses the server
	// default.
	Profile string
}

// tenant is the runtime state behind one API key (or behind the single
// anonymous tenant of a server configured without keys): a non-blocking
// concurrency gate plus request accounting, all exported through the
// /metrics document.
type tenant struct {
	name string
	sem  chan struct{} // buffered to the tenant's in-flight cap
	// profileRef is the tenant's pinned calibration profile reference;
	// empty means the server default. It is resolved per request, so a
	// hot reload retargets the tenant without reconstruction.
	profileRef string

	requests expvar.Int // requests admitted past the gate
	rejected expvar.Int // requests refused with 429 at the gate
	failed   expvar.Int // admitted requests answered with a non-2xx status
	items    expvar.Int // batch items processed on the tenant's behalf
	bytesIn  expvar.Int // request body bytes read
	bytesOut expvar.Int // response body bytes written
	inFlight expvar.Int // gauge: requests currently holding a slot

	vars *expvar.Map // the tenant's /metrics subtree
}

func newTenant(name string, maxInFlight int, profileRef string) *tenant {
	t := &tenant{name: name, sem: make(chan struct{}, maxInFlight), profileRef: profileRef}
	m := new(expvar.Map).Init()
	m.Set("requests", &t.requests)
	m.Set("rejected", &t.rejected)
	m.Set("failed", &t.failed)
	m.Set("batch_items", &t.items)
	m.Set("bytes_in", &t.bytesIn)
	m.Set("bytes_out", &t.bytesOut)
	m.Set("in_flight", &t.inFlight)
	t.vars = m
	return t
}

// tryAcquire claims an in-flight slot without blocking; callers that get
// false must answer 429 and stop.
func (t *tenant) tryAcquire() bool {
	select {
	case t.sem <- struct{}{}:
		t.inFlight.Add(1)
		t.requests.Add(1)
		return true
	default:
		t.rejected.Add(1)
		return false
	}
}

// release returns the slot claimed by tryAcquire.
func (t *tenant) release() {
	<-t.sem
	t.inFlight.Add(-1)
}
