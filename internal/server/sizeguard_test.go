package server

// Regression tests for the image-size guards that stand between hostile
// request bodies and header-sized allocations. Both guards had real
// bugs: the PNG check computed width×height in int (overflowing on
// 32-bit platforms for dimensions a PNG header can legally declare),
// and the PNM digit loop stopped mid-token once the running value
// passed the cap, handing the remaining digits of the SAME number to
// the next field — and, with a cap near MaxInt, silently wrapped on
// overflow so a 20-digit width could masquerade as a tiny in-bounds
// one. The tests below pin the fixed behavior at the guard-function
// level, where the parse outcome (not just the HTTP status) is visible.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"testing"
)

func guardServer(tb testing.TB, maxPixels int) *Server {
	tb.Helper()
	s, err := New(Options{Framework: testFramework(), MaxPixels: maxPixels})
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// wantGuardError asserts an apiError with the given machine code (empty
// code means "no error").
func wantGuardError(tb testing.TB, err error, code string) {
	tb.Helper()
	if code == "" {
		if err != nil {
			tb.Fatalf("unexpected error: %v", err)
		}
		return
	}
	var ae *apiError
	if !errors.As(err, &ae) {
		tb.Fatalf("error %v (%T), want *apiError %q", err, err, code)
	}
	if ae.code != code {
		tb.Fatalf("error code %q (%v), want %q", ae.code, err, code)
	}
}

// pngHeader builds the 8-byte signature plus a CRC-valid IHDR chunk
// declaring the given dimensions — enough for png.DecodeConfig, which is
// all the guard reads. The body is deliberately truncated after IHDR: if
// the guard ever let these dimensions through to png.Decode, the error
// would classify as bad_image instead of image_too_large.
func pngHeader(width, height uint32) []byte {
	var b bytes.Buffer
	b.Write([]byte{0x89, 'P', 'N', 'G', '\r', '\n', 0x1A, '\n'})
	ihdr := make([]byte, 0, 17)
	ihdr = append(ihdr, 'I', 'H', 'D', 'R')
	ihdr = binary.BigEndian.AppendUint32(ihdr, width)
	ihdr = binary.BigEndian.AppendUint32(ihdr, height)
	ihdr = append(ihdr, 8, 2, 0, 0, 0) // 8-bit RGB, default methods
	binary.Write(&b, binary.BigEndian, uint32(13))
	b.Write(ihdr)
	binary.Write(&b, binary.BigEndian, crc32.ChecksumIEEE(ihdr))
	return b.Bytes()
}

func TestPNGPixelCapAdversarialHeaders(t *testing.T) {
	s := guardServer(t, 1<<24)
	cases := []struct {
		name          string
		width, height uint32
		code          string
	}{
		// 2^16 × 2^16 pixels: the product is exactly 2^32, which wraps
		// to 0 in 32-bit int arithmetic — the overflow that let a tiny
		// body through the old w*h > MaxPixels comparison on 32-bit
		// platforms.
		{"wrap-2pow32", 1 << 16, 1 << 16, "image_too_large"},
		// 92682² = 8589953124, which wraps to 18532 in 32-bit int — a
		// value comfortably under the cap, so the old comparison would
		// have accepted ~8.6 gigapixels on a 32-bit platform.
		{"wrap-to-small", 92682, 92682, "image_too_large"},
		// A single hostile dimension with the other at 1: caught by the
		// per-dimension bound before any product is formed.
		{"huge-width", 1<<31 - 1, 1, "image_too_large"},
		{"huge-height", 1, 1<<31 - 1, "image_too_large"},
		// One pixel over the cap through a skinny layout.
		{"just-over", 1<<24 + 1, 1, "image_too_large"},
		// In-bounds dimensions sail past the guard and fail later, on
		// the truncated pixel data — proving the guard, not a parse
		// error, produced the rejections above.
		{"in-bounds", 64, 64, "bad_image"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := s.parseImage(pngHeader(tc.width, tc.height))
			wantGuardError(t, err, tc.code)
		})
	}
}

func TestExceedsPixelCapOverflowSafe(t *testing.T) {
	// The division form must be exact at the boundary and immune to
	// overflow even when both dimensions and the cap are at the int
	// range's edge.
	cases := []struct {
		w, h, cap int
		want      bool
	}{
		{100, 100, 10000, false},
		{100, 101, 10000, true},
		{1, 10000, 10000, false},
		{0, 5, 10000, true},
		{5, -1, 10000, true},
		{math.MaxInt, math.MaxInt, math.MaxInt, true},
		{math.MaxInt, 1, math.MaxInt, false},
		{1 << 16, 1 << 16, 1 << 24, true},
	}
	for _, tc := range cases {
		if got := exceedsPixelCap(tc.w, tc.h, tc.cap); got != tc.want {
			t.Errorf("exceedsPixelCap(%d, %d, %d) = %v, want %v", tc.w, tc.h, tc.cap, got, tc.want)
		}
	}
}

func TestCheckPNMDimsTokenParsing(t *testing.T) {
	cases := []struct {
		name      string
		maxPixels int
		header    string
		code      string // "" = accept
	}{
		// The original bug: the digit loop broke as soon as the running
		// value passed the cap, so the tail of the width token was
		// re-parsed as the height and the real height was never read.
		// The whole token must be consumed and the header rejected for
		// its size.
		{"oversized-width-token", 100, "P6\n4294967296 2\n255\n", "image_too_large"},
		{"oversized-height-token", 100, "P6\n2 4294967296\n255\n", "image_too_large"},
		// With the cap at MaxInt the old loop never hit its early break,
		// so v*10 wrapped: 2^64+4 parsed as width 4 and the guard
		// accepted 4×4 for a 20-digit dimension. Saturation keeps the
		// rejection.
		{"overflow-wraps-to-small", math.MaxInt, "P6\n18446744073709551620 4\n255\n", "image_too_large"},
		{"overflow-wraps-to-zero", math.MaxInt, "P6\n18446744073709551616 4\n255\n", "image_too_large"},
		// Comments may interleave the tokens arbitrarily.
		{"comment-laden", 10000, "P6\n# a comment\n63 # split\n# more\n63\n255\n", ""},
		{"comment-before-magic-space", 10000, "P6 # c\n8 8\n255\n", ""},
		// Oversized-by-product with individually sane tokens.
		{"product-over-cap", 1000, "P6\n100 11\n255\n", "image_too_large"},
		{"boundary-exact", 1000, "P6\n100 10\n255\n", ""},
		{"zero-width", 1000, "P6\n0 5\n255\n", "image_too_large"},
		// Truncation and garbage still classify as malformed, not as a
		// size rejection.
		{"truncated-one-field", 1000, "P6\n16", "bad_image"},
		{"truncated-empty", 1000, "P6\n", "bad_image"},
		{"garbage", 1000, "P6\nxy 16\n255\n", "bad_image"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := guardServer(t, tc.maxPixels)
			wantGuardError(t, s.checkPNMDims([]byte(tc.header)), tc.code)
		})
	}
}
