package server

// Profile-serving suite: a server booted from a profile directory must
// answer without any startup calibration, serve per-request and
// per-tenant profile selections byte-identically to direct codec calls,
// answer 404 JSON for unknown profiles, surface the loaded profile in
// /healthz and /metrics, and hot-reload the registry without disturbing
// in-flight requests (run under -race, this also proves the swap is a
// clean atomic publication).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/imgutil"
	"repro/internal/jpegcodec"
	"repro/internal/profile"
)

// altFramework is a second calibration with observably different tables
// (a different SynthNet seed and class count), so tests can tell which
// profile actually served a request.
var altFramework = sync.OnceValue(func() *core.Framework {
	cfg := dataset.Quick()
	cfg.TrainPerClass, cfg.TestPerClass = 6, 1
	cfg.Classes, cfg.Seed = 3, 99
	cfg.Color = true
	train, _, err := dataset.Generate(cfg)
	if err != nil {
		panic(err)
	}
	fw, err := core.Calibrate(train, core.CalibrateOptions{Chroma: true})
	if err != nil {
		panic(err)
	}
	return fw
})

// writeProfileDir persists frameworks under name@version into a fresh
// directory.
func writeProfileDir(tb testing.TB, entries map[string]*core.Framework) string {
	tb.Helper()
	dir := tb.TempDir()
	for ref, fw := range entries {
		name, version, _, err := profile.ParseRef(ref)
		if err != nil {
			tb.Fatal(err)
		}
		p, err := profile.FromFramework(fw, profile.Meta{Name: name, Version: version, CreatedUnix: 1})
		if err != nil {
			tb.Fatal(err)
		}
		if err := p.Write(filepath.Join(dir, p.FileName())); err != nil {
			tb.Fatal(err)
		}
	}
	return dir
}

// encodeDirect is the golden: what the framework's own scheme emits for
// a PPM request body.
func encodeDirect(tb testing.TB, fw *core.Framework, body []byte) []byte {
	tb.Helper()
	img, err := imgutil.ReadPPM(bytes.NewReader(body))
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	opts := fw.Scheme().Opts
	if err := jpegcodec.EncodeRGB(&buf, img, &opts); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// newHTTPServer mounts an already-constructed Server (the shared
// newTestServer helper builds its own from Options with a Framework
// fallback, which profile tests must avoid).
func newHTTPServer(tb testing.TB, s *Server) *httptest.Server {
	tb.Helper()
	ts := httptest.NewServer(s.Handler())
	tb.Cleanup(ts.Close)
	return ts
}

// plainPost is post without tb.Fatal, safe to call from worker
// goroutines.
func plainPost(url, contentType string, body []byte) (int, []byte, error) {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return resp.StatusCode, data, err
}

func TestServeFromProfileDir(t *testing.T) {
	mainFW, altFW := testFramework(), altFramework()
	if mainFW.LumaTable == altFW.LumaTable {
		t.Fatal("fixtures share a luma table; the test cannot distinguish them")
	}
	dir := writeProfileDir(t, map[string]*core.Framework{
		"main@1": mainFW,
		"main@2": mainFW,
		"alt@1":  altFW,
	})
	// No Framework at all: the default profile is the only table source.
	s, err := New(Options{ProfileDir: dir, DefaultProfile: "main"})
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, s)
	body := ppmBody(t, testImages(t, 1)[0])

	t.Run("default profile serves without calibration", func(t *testing.T) {
		resp, got := post(t, ts.URL+"/v1/encode", "image/x-portable-pixmap", body, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, got)
		}
		if want := encodeDirect(t, mainFW, body); !bytes.Equal(got, want) {
			t.Fatal("profile-served stream differs from direct encode")
		}
	})

	t.Run("per-request selection", func(t *testing.T) {
		resp, got := post(t, ts.URL+"/v1/encode?profile=alt", "image/x-portable-pixmap", body, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, got)
		}
		if want := encodeDirect(t, altFW, body); !bytes.Equal(got, want) {
			t.Fatal("?profile=alt did not serve the alt tables")
		}
		// Exact-version reference works too.
		resp, got = post(t, ts.URL+"/v1/encode?profile=main@1", "image/x-portable-pixmap", body, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, got)
		}
		if want := encodeDirect(t, mainFW, body); !bytes.Equal(got, want) {
			t.Fatal("?profile=main@1 did not serve the main tables")
		}
	})

	t.Run("unknown profile is 404 JSON", func(t *testing.T) {
		resp, got := post(t, ts.URL+"/v1/encode?profile=ghost", "image/x-portable-pixmap", body, nil)
		wantJSONError(t, resp, got, http.StatusNotFound, "unknown_profile")
		resp, got = post(t, ts.URL+"/v1/requantize?profile=main@9", "image/jpeg", encodeDirect(t, mainFW, body), nil)
		wantJSONError(t, resp, got, http.StatusNotFound, "unknown_profile")
	})

	t.Run("malformed profile ref is 400 JSON", func(t *testing.T) {
		resp, got := post(t, ts.URL+"/v1/encode?profile=No%20Such", "image/x-portable-pixmap", body, nil)
		wantJSONError(t, resp, got, http.StatusBadRequest, "bad_profile")
	})

	t.Run("healthz and metrics report the profile", func(t *testing.T) {
		st := profileStatusFrom(t, ts.URL+"/healthz", "profile")
		if st.Name != "main" || st.Version != 2 {
			t.Fatalf("healthz serving %s@%d, want main@2 (bare name resolves highest)", st.Name, st.Version)
		}
		if st.Loads < 1 {
			t.Fatalf("healthz load counter %d, want ≥ 1", st.Loads)
		}
		mt := profileStatusFrom(t, ts.URL+"/metrics", "profile")
		if mt.Name != "main" || mt.Version != 2 || mt.Loads < 1 {
			t.Fatalf("metrics profile block %+v", mt)
		}
	})
}

type profileStatus struct {
	Name           string `json:"name"`
	Version        int    `json:"version"`
	Loads          int64  `json:"loads"`
	WatchErrors    int64  `json:"watch_errors"`
	LastWatchError string `json:"last_watch_error"`
}

func profileStatusFrom(tb testing.TB, url, key string) profileStatus {
	tb.Helper()
	resp, err := http.Get(url)
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		tb.Fatal(err)
	}
	var st profileStatus
	if err := json.Unmarshal(doc[key], &st); err != nil {
		tb.Fatalf("no %q block in %s: %v", key, url, err)
	}
	return st
}

// TestServerSurfacesWatchFailures closes the loop on the registry's
// scan-failure reporting: when the profile directory stops being
// scannable, the condition must reach the operator through the profile
// block of /healthz — not die inside the watch callback — while the
// last-good snapshot keeps serving.
func TestServerSurfacesWatchFailures(t *testing.T) {
	dir := writeProfileDir(t, map[string]*core.Framework{"main@1": testFramework()})
	s, err := New(Options{ProfileDir: dir, DefaultProfile: "main", ProfileWatch: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, s)
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	var st profileStatus
	for {
		st = profileStatusFrom(t, ts.URL+"/healthz", "profile")
		if st.WatchErrors > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.WatchErrors == 0 {
		t.Fatal("persistent watch failures never surfaced on /healthz")
	}
	if st.LastWatchError == "" {
		t.Fatal("watch error surfaced without its message")
	}
	// The pre-failure snapshot must keep serving requests.
	body := ppmBody(t, testImages(t, 1)[0])
	resp, got := post(t, ts.URL+"/v1/encode", "image/x-portable-pixmap", body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("serving stopped after watch failures: status %d: %s", resp.StatusCode, got)
	}
}

func TestPerTenantProfiles(t *testing.T) {
	mainFW, altFW := testFramework(), altFramework()
	dir := writeProfileDir(t, map[string]*core.Framework{"main@1": mainFW, "alt@1": altFW})
	s, err := New(Options{
		ProfileDir:     dir,
		DefaultProfile: "main",
		Tenants: map[string]TenantConfig{
			"key-alt":  {Name: "edge", Profile: "alt"},
			"key-main": {Name: "dc"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, s)
	body := ppmBody(t, testImages(t, 1)[0])

	resp, got := post(t, ts.URL+"/v1/encode", "image/x-portable-pixmap", body,
		map[string]string{"X-API-Key": "key-alt"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if want := encodeDirect(t, altFW, body); !bytes.Equal(got, want) {
		t.Fatal("pinned tenant did not get its profile's tables")
	}
	// The unpinned tenant gets the server default.
	resp, got = post(t, ts.URL+"/v1/encode", "image/x-portable-pixmap", body,
		map[string]string{"X-API-Key": "key-main"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if want := encodeDirect(t, mainFW, body); !bytes.Equal(got, want) {
		t.Fatal("unpinned tenant did not get the default tables")
	}
	// A per-request override beats the tenant pin.
	resp, got = post(t, ts.URL+"/v1/encode?profile=main", "image/x-portable-pixmap", body,
		map[string]string{"X-API-Key": "key-alt"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if want := encodeDirect(t, mainFW, body); !bytes.Equal(got, want) {
		t.Fatal("?profile= did not override the tenant pin")
	}
}

func TestTenantProfileValidatedAtConstruction(t *testing.T) {
	dir := writeProfileDir(t, map[string]*core.Framework{"main@1": testFramework()})
	if _, err := New(Options{
		ProfileDir:     dir,
		DefaultProfile: "main",
		Tenants:        map[string]TenantConfig{"k": {Profile: "ghost"}},
	}); err == nil {
		t.Fatal("tenant pinned to an unknown profile accepted")
	}
	if _, err := New(Options{
		Framework: testFramework(),
		Tenants:   map[string]TenantConfig{"k": {Profile: "main"}},
	}); err == nil {
		t.Fatal("tenant profile without a ProfileDir accepted")
	}
}

func TestAdminKeyGatesReload(t *testing.T) {
	dir := writeProfileDir(t, map[string]*core.Framework{"main@1": testFramework()})
	s, err := New(Options{
		ProfileDir:     dir,
		DefaultProfile: "main",
		AdminKey:       "root-key",
		Tenants:        map[string]TenantConfig{"tenant-key": {Name: "t"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, s)

	// A codec tenant cannot reload.
	resp, got := post(t, ts.URL+"/admin/profiles/reload", "", nil,
		map[string]string{"X-API-Key": "tenant-key"})
	wantJSONError(t, resp, got, http.StatusForbidden, "admin_key_required")
	// The admin key can — and needs no codec tenancy.
	resp, got = post(t, ts.URL+"/admin/profiles/reload", "", nil,
		map[string]string{"X-API-Key": "root-key"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin reload status %d: %s", resp.StatusCode, got)
	}
	// The admin key is not a codec backdoor check: it may use codec
	// endpoints (it is a tenant like any other), but an AdminKey equal to
	// a tenant key is rejected at construction.
	if _, err := New(Options{
		ProfileDir:     dir,
		DefaultProfile: "main",
		AdminKey:       "tenant-key",
		Tenants:        map[string]TenantConfig{"tenant-key": {}},
	}); err == nil {
		t.Fatal("AdminKey colliding with a tenant key accepted")
	}
}

func TestProfileServerConstruction(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("no Framework and no DefaultProfile accepted")
	}
	if _, err := New(Options{DefaultProfile: "main"}); err == nil {
		t.Fatal("DefaultProfile without ProfileDir accepted")
	}
	if _, err := New(Options{ProfileDir: t.TempDir(), DefaultProfile: "ghost"}); err == nil {
		t.Fatal("unresolvable default profile accepted")
	}
	// A corrupt file fails construction loudly.
	dir := writeProfileDir(t, map[string]*core.Framework{"main@1": testFramework()})
	if err := os.WriteFile(filepath.Join(dir, "junk.dnp"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{ProfileDir: dir, DefaultProfile: "main"}); err == nil {
		t.Fatal("corrupt profile directory accepted at construction")
	}
}

// TestHotReloadUnderLoad hammers the encode endpoint from several
// goroutines while the admin endpoint reloads the registry and the
// default profile flips between two versions on disk. Every request must
// succeed and return one of the two valid streams — never an error, a
// torn table set, or (under -race) a data race.
func TestHotReloadUnderLoad(t *testing.T) {
	mainFW, altFW := testFramework(), altFramework()
	dir := writeProfileDir(t, map[string]*core.Framework{"serving@1": mainFW})
	s, err := New(Options{ProfileDir: dir, DefaultProfile: "serving"})
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, s)
	body := ppmBody(t, testImages(t, 1)[0])
	want1 := encodeDirect(t, mainFW, body)
	want2 := encodeDirect(t, altFW, body)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				status, got, err := plainPost(ts.URL+"/v1/encode", "image/x-portable-pixmap", body)
				if err != nil {
					errc <- err
					return
				}
				if status != http.StatusOK {
					errc <- fmt.Errorf("status %d: %s", status, got)
					return
				}
				if !bytes.Equal(got, want1) && !bytes.Equal(got, want2) {
					errc <- fmt.Errorf("response matches neither profile version")
					return
				}
			}
		}()
	}

	// Flip the on-disk profile between versions and reload, repeatedly.
	p2, err := profile.FromFramework(altFW, profile.Meta{Name: "serving", Version: 2, CreatedUnix: 2})
	if err != nil {
		t.Fatal(err)
	}
	path2 := filepath.Join(dir, p2.FileName())
	for i := 0; i < 10; i++ {
		if i%2 == 0 {
			if err := p2.Write(path2); err != nil {
				t.Fatal(err)
			}
		} else if err := os.Remove(path2); err != nil {
			t.Fatal(err)
		}
		resp, got := post(t, ts.URL+"/admin/profiles/reload", "", []byte{}, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reload status %d: %s", resp.StatusCode, got)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	// After the final reload (version 2 present: the loop's last write
	// was on iteration 8, removed on 9... the parity leaves it absent),
	// the default must still resolve and the counter must have advanced.
	st := profileStatusFrom(t, ts.URL+"/healthz", "profile")
	if st.Name != "serving" {
		t.Fatalf("serving %q after reload storm", st.Name)
	}
	if st.Loads < 11 {
		t.Fatalf("load counter %d after 10 reloads, want ≥ 11", st.Loads)
	}
}
