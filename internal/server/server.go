// Package server implements the multi-tenant HTTP front end of the
// DeepN-JPEG codec. The paper pitches the framework for large-scale
// image transmission and storage between edge sensors and cloud DNN
// inference; this package is the network boundary of that story: a
// small JSON/HTTP service that dispatches every request through the
// same pooled codec hot paths the batch API uses, with per-tenant
// concurrency limits and request accounting so one caller cannot
// starve the rest.
//
// Endpoints:
//
//	POST /v1/encode      raw image (PNG/PPM/PGM) → DeepN-JPEG stream
//	POST /v1/decode      JPEG → PNG/PPM/PGM pixels
//	POST /v1/requantize  JPEG → JPEG re-targeted in the coefficient domain
//	POST /v1/batch       multipart: many items through the worker pool
//	GET  /healthz        liveness + uptime
//	GET  /metrics        expvar-style JSON counters
//
// Request options travel as query parameters (?quality=, ?transform=,
// ?subsampling=, ?optimize=, ?format=, ?strip_metadata=); errors come
// back as structured
// JSON ({"error":{"code","message"},"status"}). Authentication is a
// static API-key table (X-API-Key or Authorization: Bearer); a server
// constructed without keys runs open with a single anonymous tenant.
package server

import (
	"bytes"
	"context"
	"crypto/ed25519"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"image/png"
	"io"
	"math"
	"mime"
	"mime/multipart"
	"net"
	"net/http"
	"net/textproto"
	"net/url"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dct"
	"repro/internal/imgutil"
	"repro/internal/jpegcodec"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/profilehub"
	"repro/internal/qtable"
)

// servingProfile is the immutable default-serving state one atomic
// pointer swap publishes: the restored framework plus the identity
// /healthz and /metrics report. Name is empty when the server runs on an
// in-memory Framework rather than a persisted profile.
type servingProfile struct {
	fw      *core.Framework
	name    string
	version uint32
}

// Options configures a Server. Either Framework or a ProfileDir with a
// DefaultProfile is required; every other field has a serving-safe
// default.
type Options struct {
	// Framework supplies the calibrated tables and default transform
	// engine the unqualified encode/requantize paths use. Optional when
	// DefaultProfile names a profile to serve instead.
	Framework *core.Framework
	// ProfileDir, when set, loads a registry of persisted calibration
	// profiles (*.dnp) the server resolves ?profile= references and
	// per-tenant defaults against. Construction fails if any file in the
	// directory is corrupt — a server must not boot over a damaged
	// artifact store — while runtime reloads are lenient and keep
	// serving the healthy remainder.
	ProfileDir string
	// DefaultProfile selects the profile ("name" or "name@version") the
	// server boots with instead of Framework; requires ProfileDir. A
	// reload re-resolves it, hot-swapping the default tables without
	// disturbing in-flight requests.
	DefaultProfile string
	// ProfileWatch, when positive, polls ProfileDir at this interval and
	// hot-reloads the registry when files change. The watcher stops at
	// Shutdown.
	ProfileWatch time.Duration
	// HubOrigin, when set, attaches a profile-hub client to the registry:
	// a profile reference that misses locally is pulled from this origin
	// on first use (including the boot-time DefaultProfile resolution, so
	// a server can start against an empty ProfileDir), and each
	// ProfileWatch tick syncs newly published profiles down before the
	// normal directory rescan. Requires ProfileDir.
	HubOrigin string
	// HubCacheDir is the hub client's local content-addressed cache
	// (default: <ProfileDir>/.hub-cache). Cached blobs keep the server
	// booting and serving through origin outages.
	HubCacheDir string
	// HubTrustedKey, when set, requires the hub index and every pulled
	// profile to carry a valid Ed25519 signature under this key.
	HubTrustedKey ed25519.PublicKey
	// HubFetchTimeout bounds one lazy miss-triggered hub fetch
	// (default 30s).
	HubFetchTimeout time.Duration
	// AdminKey, when set, is required (as X-API-Key or Bearer token) by
	// the /admin/* endpoints in addition to normal tenant admission, so
	// ordinary codec tenants cannot trigger reloads. Empty leaves admin
	// endpoints behind the ordinary tenant gate only — acceptable for
	// development, not for multi-tenant production.
	AdminKey string
	// MaxBodyBytes caps request bodies (default 32 MiB); larger bodies
	// answer 413.
	MaxBodyBytes int64
	// MaxPixels caps the declared dimensions of any image the server
	// decodes or parses (default 1<<24). A tiny hostile body can declare
	// a multi-gigabyte frame; this bound rejects it before allocation.
	MaxPixels int
	// BatchWorkers sizes the worker pool of one /v1/batch request;
	// ≤ 0 selects GOMAXPROCS.
	BatchWorkers int
	// MaxBatchItems caps the part count of a /v1/batch request
	// (default 256).
	MaxBatchItems int
	// Tenants maps API keys to per-tenant limits. Empty means the server
	// runs open: every request shares one anonymous tenant.
	Tenants map[string]TenantConfig
	// MaxInFlight is the per-tenant concurrent-request cap applied when
	// a TenantConfig doesn't set its own (default 16).
	MaxInFlight int
}

func (o Options) withDefaults() Options {
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 32 << 20
	}
	if o.MaxPixels <= 0 {
		o.MaxPixels = 1 << 24
	}
	if o.MaxBatchItems <= 0 {
		o.MaxBatchItems = 256
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 16
	}
	return o
}

// Server is the HTTP codec service. Construct with New, mount Handler
// (or call Serve/ListenAndServe), stop with Shutdown.
type Server struct {
	opts Options
	mux  *http.ServeMux

	tenants map[string]*tenant // keyed by API key
	anon    *tenant            // the open-access tenant when no keys are set
	admin   *tenant            // implicit tenant behind Options.AdminKey

	// registry serves persisted calibration profiles when ProfileDir is
	// set; serving holds the current default table set. Handlers load the
	// pointer once per request, so a concurrent hot reload swaps what
	// later requests see while in-flight ones finish on the snapshot they
	// started with.
	registry   *profile.Registry
	hub        *profilehub.Client
	defaultRef string
	serving    atomic.Pointer[servingProfile]
	stopWatch  context.CancelFunc

	mu      sync.Mutex
	httpSrv *http.Server

	start time.Time

	// Process-wide counters; per-tenant counts live on each tenant.
	requests expvar.Int
	rejected expvar.Int
	failures expvar.Int
	bytesIn  expvar.Int
	bytesOut expvar.Int
	inFlight expvar.Int
	metrics  *expvar.Map // the whole /metrics document

	// Profile-watcher health, fed by the registry's onReload callback and
	// surfaced in the profile block of /healthz and /metrics: reload
	// errors and persistent scan failures land here, so a watcher gone
	// blind is an operator-visible condition rather than a silent retry
	// loop.
	watchErrs    expvar.Int
	lastWatchErr atomic.Value // string

	// bufPool recycles response-sized scratch buffers across requests so
	// the pooled, allocation-light codec paths survive the network
	// boundary instead of drowning in per-request buffers.
	bufPool sync.Pool
	// decPool recycles decoder working sets for /v1/decode and
	// /v1/requantize.
	decPool sync.Pool
	// imgPool recycles decoded RGB images; pixels are written to the
	// response before the image returns to the pool.
	imgPool sync.Pool
}

// New validates opts, fills defaults and builds the route table.
func New(opts Options) (*Server, error) {
	if opts.Framework == nil && opts.DefaultProfile == "" {
		return nil, errors.New("server: Options.Framework or Options.DefaultProfile is required")
	}
	if opts.DefaultProfile != "" && opts.ProfileDir == "" {
		return nil, errors.New("server: Options.DefaultProfile requires Options.ProfileDir")
	}
	opts = opts.withDefaults()
	s := &Server{
		opts:    opts,
		mux:     http.NewServeMux(),
		tenants: make(map[string]*tenant, len(opts.Tenants)),
		start:   time.Now(),
	}
	if opts.ProfileDir != "" {
		reg, err := profile.OpenRegistry(opts.ProfileDir)
		if err != nil {
			return nil, fmt.Errorf("server: loading profile directory: %w", err)
		}
		s.registry = reg
	}
	if opts.HubOrigin != "" {
		if s.registry == nil {
			return nil, errors.New("server: Options.HubOrigin requires Options.ProfileDir")
		}
		cacheDir := opts.HubCacheDir
		if cacheDir == "" {
			cacheDir = filepath.Join(opts.ProfileDir, ".hub-cache")
		}
		hub, err := profilehub.NewClient(profilehub.ClientOptions{
			Origin:         opts.HubOrigin,
			CacheDir:       cacheDir,
			TrustedKey:     opts.HubTrustedKey,
			RequestTimeout: opts.HubFetchTimeout,
		})
		if err != nil {
			return nil, fmt.Errorf("server: hub client: %w", err)
		}
		s.hub = hub
		// Attached before the DefaultProfile resolution below, so a fleet
		// node with an empty profile directory lazily pulls its serving
		// profile at boot.
		s.registry.AttachSource(hub, opts.HubFetchTimeout)
	}
	s.defaultRef = opts.DefaultProfile
	if s.defaultRef != "" {
		fw, p, err := s.registry.ResolveFramework(s.defaultRef)
		if err != nil {
			return nil, fmt.Errorf("server: resolving default profile: %w", err)
		}
		s.serving.Store(&servingProfile{fw: fw, name: p.Name, version: p.Version})
	} else {
		s.serving.Store(&servingProfile{fw: opts.Framework})
	}
	s.bufPool.New = func() any { return new(bytes.Buffer) }
	s.decPool.New = func() any { return new(jpegcodec.Decoded) }
	s.imgPool.New = func() any { return new(imgutil.RGB) }

	tenantVars := new(expvar.Map).Init()
	for key, cfg := range opts.Tenants {
		name := cfg.Name
		if name == "" {
			name = key
		}
		limit := cfg.MaxInFlight
		if limit <= 0 {
			limit = opts.MaxInFlight
		}
		if cfg.Profile != "" {
			if s.registry == nil {
				return nil, fmt.Errorf("server: tenant %q pins profile %q but no ProfileDir is configured", name, cfg.Profile)
			}
			if _, err := s.registry.Resolve(cfg.Profile); err != nil {
				return nil, fmt.Errorf("server: tenant %q: %w", name, err)
			}
		}
		t := newTenant(name, limit, cfg.Profile)
		s.tenants[key] = t
		tenantVars.Set(name, t.vars)
	}
	if len(s.tenants) == 0 {
		s.anon = newTenant("anonymous", opts.MaxInFlight, "")
		tenantVars.Set("anonymous", s.anon.vars)
	}
	if opts.AdminKey != "" {
		if _, clash := s.tenants[opts.AdminKey]; clash {
			return nil, errors.New("server: Options.AdminKey collides with a tenant API key")
		}
		s.admin = newTenant("admin", opts.MaxInFlight, "")
		tenantVars.Set("admin", s.admin.vars)
	}

	m := new(expvar.Map).Init()
	m.Set("uptime_seconds", expvar.Func(func() any {
		return time.Since(s.start).Seconds()
	}))
	m.Set("requests", &s.requests)
	m.Set("rejected", &s.rejected)
	m.Set("failures", &s.failures)
	m.Set("bytes_in", &s.bytesIn)
	m.Set("bytes_out", &s.bytesOut)
	m.Set("in_flight", &s.inFlight)
	m.Set("tenants", tenantVars)
	m.Set("profile", expvar.Func(func() any { return s.profileStatus() }))
	s.metrics = m

	s.mux.HandleFunc("/v1/encode", s.endpoint(s.handleEncode))
	s.mux.HandleFunc("/v1/decode", s.endpoint(s.handleDecode))
	s.mux.HandleFunc("/v1/requantize", s.endpoint(s.handleRequantize))
	s.mux.HandleFunc("/v1/batch", s.endpoint(s.handleBatch))
	s.mux.HandleFunc("/admin/profiles/reload", s.endpoint(s.handleProfileReload))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)

	// The watcher starts only once every validation above has passed, so
	// a failed New never leaks a polling goroutine.
	if s.registry != nil && opts.ProfileWatch > 0 {
		ctx, cancel := context.WithCancel(context.Background())
		s.stopWatch = cancel
		go s.registry.Watch(ctx, opts.ProfileWatch, func(_ int, err error) {
			if err != nil {
				s.watchErrs.Add(1)
				s.lastWatchErr.Store(err.Error())
			}
			s.reresolveDefault()
		})
	}
	return s, nil
}

// ServingProfile reports the default table set currently being served:
// the profile's name and version (empty/0 when the server runs on an
// in-memory calibration) plus the restored framework's transform engine
// and calibration size.
func (s *Server) ServingProfile() (name string, version uint32, transform dct.Transform, sampled int) {
	sp := s.serving.Load()
	return sp.name, sp.version, sp.fw.Transform, sp.fw.SampledCount
}

// profileStatus is the profile block /healthz and /metrics share: which
// default table set is serving and how many registry (re)loads have run.
// An empty name means the server runs on an in-memory calibration rather
// than a persisted profile.
func (s *Server) profileStatus() map[string]any {
	sp := s.serving.Load()
	var loads int64
	if s.registry != nil {
		loads = s.registry.Loads()
	}
	status := map[string]any{
		"name":    sp.name,
		"version": sp.version,
		"loads":   loads,
	}
	if n := s.watchErrs.Value(); n > 0 {
		status["watch_errors"] = n
		if msg, _ := s.lastWatchErr.Load().(string); msg != "" {
			status["last_watch_error"] = msg
		}
	}
	if s.hub != nil {
		hs := s.hub.Stats()
		status["hub"] = map[string]any{
			"origin":             s.opts.HubOrigin,
			"index_fetches":      hs.IndexFetches,
			"index_not_modified": hs.IndexNotModified,
			"index_fallbacks":    hs.IndexFallbacks,
			"blob_fetches":       hs.BlobFetches,
			"blob_cache_hits":    hs.BlobCacheHits,
			"retries":            hs.Retries,
			"verify_failures":    hs.VerifyFailures,
		}
	}
	return status
}

// HubStats exposes the hub client counters (zero value when the server
// runs without a hub origin).
func (s *Server) HubStats() profilehub.ClientStats {
	if s.hub == nil {
		return profilehub.ClientStats{}
	}
	return s.hub.Stats()
}

// reresolveDefault re-resolves the default profile reference after a
// registry reload and publishes the fresh framework with one atomic
// swap. In-flight requests keep the snapshot they loaded; if the default
// no longer resolves (its file was removed), the previous snapshot keeps
// serving, so a bad deploy degrades to "stale tables", never to downtime.
func (s *Server) reresolveDefault() error {
	if s.defaultRef == "" || s.registry == nil {
		return nil
	}
	fw, p, err := s.registry.ResolveFramework(s.defaultRef)
	if err != nil {
		return err
	}
	s.serving.Store(&servingProfile{fw: fw, name: p.Name, version: p.Version})
	return nil
}

// frameworkFor selects the table set one request runs against, in
// precedence order: the ?profile= query parameter, the tenant's pinned
// profile, the server default. Unknown references answer 404 with the
// JSON error envelope; malformed ones 400.
func (s *Server) frameworkFor(q url.Values, t *tenant) (*core.Framework, error) {
	ref := q.Get("profile")
	if ref == "" {
		ref = t.profileRef
	}
	if ref == "" {
		return s.serving.Load().fw, nil
	}
	if s.registry == nil {
		return nil, errf(http.StatusNotFound, "unknown_profile",
			"profile %q requested but the server has no profile directory", ref)
	}
	fw, _, err := s.registry.ResolveFramework(ref)
	if err != nil {
		if errors.Is(err, profile.ErrNotFound) {
			return nil, errf(http.StatusNotFound, "unknown_profile", "%v", err)
		}
		return nil, errf(http.StatusBadRequest, "bad_profile", "%v", err)
	}
	return fw, nil
}

// handleProfileReload is the admin endpoint behind hot reloads: rescan
// the profile directory, re-resolve the default, and report what is now
// serving. Per-file failures are reported but do not abort the reload —
// the healthy profiles still swap in.
func (s *Server) handleProfileReload(w http.ResponseWriter, r *http.Request, t *tenant) error {
	if s.opts.AdminKey != "" && requestKey(r) != s.opts.AdminKey {
		return errf(http.StatusForbidden, "admin_key_required",
			"admin endpoints require the configured admin key")
	}
	if s.registry == nil {
		return errf(http.StatusNotFound, "no_profile_registry",
			"the server was started without a profile directory")
	}
	n, reloadErr := s.registry.Reload()
	resolveErr := s.reresolveDefault()
	resp := map[string]any{
		"profiles": n,
		"loads":    s.registry.Loads(),
		"profile":  s.profileStatus(),
	}
	var problems []string
	if reloadErr != nil {
		problems = append(problems, reloadErr.Error())
	}
	if resolveErr != nil {
		problems = append(problems, fmt.Sprintf("default profile %q: %v", s.defaultRef, resolveErr))
	}
	if len(problems) > 0 {
		resp["errors"] = problems
	}
	w.Header().Set("Content-Type", "application/json")
	return json.NewEncoder(w).Encode(resp)
}

// Handler returns the route table for mounting under an external
// http.Server (httptest, custom TLS, shared mux).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on l until Shutdown. It returns
// http.ErrServerClosed after a clean shutdown, like net/http.
func (s *Server) Serve(l net.Listener) error {
	srv := &http.Server{Handler: s.mux, ReadHeaderTimeout: 10 * time.Second}
	s.mu.Lock()
	s.httpSrv = srv
	s.mu.Unlock()
	return srv.Serve(l)
}

// ListenAndServe binds addr and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Shutdown gracefully stops a Serve/ListenAndServe server: the listener
// closes immediately, in-flight requests run to completion (or until ctx
// expires), and idle keep-alive connections are closed. A server that
// never served is a no-op.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.stopWatch != nil {
		s.stopWatch()
	}
	s.mu.Lock()
	srv := s.httpSrv
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Shutdown(ctx)
}

// apiError is an error with an HTTP status and a stable machine code.
type apiError struct {
	status int
	code   string
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func errf(status int, code, format string, args ...any) *apiError {
	return &apiError{status: status, code: code, msg: fmt.Sprintf(format, args...)}
}

// writeError emits the structured JSON error envelope every non-2xx
// response uses.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{
		"status": status,
		"error":  map[string]string{"code": code, "message": msg},
	})
}

// writeAPIError classifies err into the JSON envelope: apiErrors keep
// their status, body-limit errors become 413, recognized-but-unsupported
// JPEG coding processes (arithmetic, lossless, hierarchical) become 415,
// everything else 400 (the codec only fails on bad input).
func writeAPIError(w http.ResponseWriter, err error) {
	var ae *apiError
	if errors.As(err, &ae) {
		writeError(w, ae.status, ae.code, ae.msg)
		return
	}
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		writeError(w, http.StatusRequestEntityTooLarge, "body_too_large", err.Error())
		return
	}
	var ufe *jpegcodec.UnsupportedFormatError
	if errors.As(err, &ufe) {
		writeError(w, http.StatusUnsupportedMediaType, "unsupported_format", err.Error())
		return
	}
	writeError(w, http.StatusBadRequest, "bad_input", err.Error())
}

// statusWriter records the response status and body size for accounting.
type statusWriter struct {
	http.ResponseWriter
	status int
	n      int64
}

func (sw *statusWriter) WriteHeader(status int) {
	if sw.status == 0 {
		sw.status = status
	}
	sw.ResponseWriter.WriteHeader(status)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.n += int64(n)
	return n, err
}

// requestKey extracts the API key of a request (X-API-Key, or an
// Authorization: Bearer token).
func requestKey(r *http.Request) string {
	if key := r.Header.Get("X-API-Key"); key != "" {
		return key
	}
	if auth := r.Header.Get("Authorization"); strings.HasPrefix(auth, "Bearer ") {
		return strings.TrimPrefix(auth, "Bearer ")
	}
	return ""
}

// resolveTenant authenticates the request against the API-key table.
// The admin key (when configured) admits its own implicit tenant, so an
// operator does not need a codec tenancy to hit /admin endpoints.
func (s *Server) resolveTenant(r *http.Request) (*tenant, *apiError) {
	key := requestKey(r)
	if s.admin != nil && key == s.opts.AdminKey {
		return s.admin, nil
	}
	if s.anon != nil {
		return s.anon, nil
	}
	if key == "" {
		return nil, errf(http.StatusUnauthorized, "missing_api_key",
			"set X-API-Key or Authorization: Bearer <key>")
	}
	t, ok := s.tenants[key]
	if !ok {
		return nil, errf(http.StatusUnauthorized, "unknown_api_key", "API key not recognized")
	}
	return t, nil
}

// endpoint wraps a codec handler with the request lifecycle every /v1
// route shares: POST-only, authentication, the tenant concurrency gate,
// the body-size cap, and byte/status accounting.
func (s *Server) endpoint(fn func(http.ResponseWriter, *http.Request, *tenant) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
				fmt.Sprintf("%s only accepts POST", r.URL.Path))
			return
		}
		t, ae := s.resolveTenant(r)
		if ae != nil {
			writeError(w, ae.status, ae.code, ae.msg)
			return
		}
		if !t.tryAcquire() {
			s.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "tenant_over_limit",
				fmt.Sprintf("tenant %q has reached its in-flight request limit", t.name))
			return
		}
		defer t.release()
		s.requests.Add(1)
		s.inFlight.Add(1)
		defer s.inFlight.Add(-1)

		r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
		sw := &statusWriter{ResponseWriter: w}
		if err := fn(sw, r, t); err != nil {
			if sw.status == 0 { // nothing written yet: emit the envelope
				writeAPIError(sw, err)
			}
		}
		if sw.status >= 400 {
			s.failures.Add(1)
			t.failed.Add(1)
		}
		s.bytesOut.Add(sw.n)
		t.bytesOut.Add(sw.n)
	}
}

// readBody drains the (size-capped) request body and accounts it.
func (s *Server) readBody(r *http.Request, t *tenant) ([]byte, error) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return nil, err
	}
	s.bytesIn.Add(int64(len(body)))
	t.bytesIn.Add(int64(len(body)))
	if len(body) == 0 {
		return nil, errf(http.StatusBadRequest, "empty_body", "request body is empty")
	}
	return body, nil
}

// --- per-request option parsing -----------------------------------------

func parseBoolParam(q url.Values, name string, def bool) (bool, error) {
	v := q.Get(name)
	if v == "" {
		return def, nil
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return false, errf(http.StatusBadRequest, "bad_"+name, "%s=%q is not a boolean", name, v)
	}
	return b, nil
}

func parseTransform(q url.Values, def dct.Transform) (dct.Transform, error) {
	switch v := q.Get("transform"); v {
	case "":
		return def, nil
	case "naive":
		return dct.TransformNaive, nil
	case "aan":
		return dct.TransformAAN, nil
	default:
		return 0, errf(http.StatusBadRequest, "bad_transform",
			"transform=%q is not one of naive, aan", v)
	}
}

// parseQuality returns the quality factor and whether one was given at
// all; absent means "use the calibrated DeepN-JPEG tables".
func parseQuality(q url.Values) (int, bool, error) {
	v := q.Get("quality")
	if v == "" {
		return 0, false, nil
	}
	qf, err := strconv.Atoi(v)
	if err != nil || qf < 1 || qf > 100 {
		return 0, false, errf(http.StatusBadRequest, "bad_quality",
			"quality=%q must be an integer in [1,100]", v)
	}
	return qf, true, nil
}

// stdTablesFor scales the Annex-K reference tables to a quality factor,
// mapping scaling failures onto the request-level error envelope.
func stdTablesFor(qf int) (luma, chroma qtable.Table, err error) {
	luma, lerr := qtable.Scale(qtable.StdLuminance, qf)
	chroma, cerr := qtable.Scale(qtable.StdChrominance, qf)
	if lerr != nil || cerr != nil {
		return luma, chroma, errf(http.StatusBadRequest, "bad_quality", "cannot scale tables to quality %d", qf)
	}
	return luma, chroma, nil
}

// encodeOptions assembles the encoder configuration of one request
// against the resolved framework: its calibrated tables by default,
// Annex-K tables when ?quality= is given.
func (s *Server) encodeOptions(fw *core.Framework, q url.Values) (jpegcodec.Options, error) {
	opts := fw.Scheme().Opts
	if qf, ok, err := parseQuality(q); err != nil {
		return opts, err
	} else if ok {
		luma, chroma, terr := stdTablesFor(qf)
		if terr != nil {
			return opts, terr
		}
		opts.LumaTable, opts.ChromaTable = luma, chroma
	}
	var err error
	if opts.Transform, err = parseTransform(q, opts.Transform); err != nil {
		return opts, err
	}
	if v := q.Get("subsampling"); v == "" {
		opts.Subsampling = jpegcodec.Sub420
	} else if opts.Subsampling, err = jpegcodec.ParseSubsampling(v); err != nil {
		return opts, errf(http.StatusBadRequest, "bad_subsampling",
			"subsampling=%q is not one of 420, 444, 422, 440, 411", v)
	}
	if opts.OptimizeHuffman, err = parseBoolParam(q, "optimize", false); err != nil {
		return opts, err
	}
	if opts.RestartInterval, err = parseRestartParam(q, false); err != nil {
		return opts, err
	}
	// ShardWorkers stays 0 (auto): one request saturating every core is
	// fine when the box is idle, and under concurrent load the scheduler
	// time-slices the segment goroutines like any other work.
	return opts, nil
}

// parseRestartParam reads the ?restart= query parameter, the output
// restart interval in MCUs. Encode treats 0 (the default) as "no restart
// markers"; requantize (allowNegative) treats 0 as "preserve the
// source's interval" and -1 as "strip restart markers".
func parseRestartParam(q url.Values, allowNegative bool) (int, error) {
	v := q.Get("restart")
	if v == "" {
		return 0, nil
	}
	lo := 0
	if allowNegative {
		lo = -1
	}
	ri, err := strconv.Atoi(v)
	if err != nil || ri < lo || ri > 0xFFFF {
		return 0, errf(http.StatusBadRequest, "bad_restart",
			"restart=%q must be an integer in [%d,65535]", v, lo)
	}
	return ri, nil
}

// requantizeTables picks the target tables of a requantize request
// against the resolved framework.
func (s *Server) requantizeTables(fw *core.Framework, q url.Values) (luma, chroma qtable.Table, err error) {
	if qf, ok, qerr := parseQuality(q); qerr != nil {
		return luma, chroma, qerr
	} else if ok {
		return stdTablesFor(qf)
	}
	return fw.LumaTable, fw.ChromaTable, nil
}

type outputFormat struct {
	name        string // png, ppm, pgm
	contentType string
}

func parseFormat(q url.Values) (outputFormat, error) {
	switch v := q.Get("format"); v {
	case "", "png":
		return outputFormat{"png", "image/png"}, nil
	case "ppm":
		return outputFormat{"ppm", "image/x-portable-pixmap"}, nil
	case "pgm":
		return outputFormat{"pgm", "image/x-portable-graymap"}, nil
	default:
		return outputFormat{}, errf(http.StatusBadRequest, "bad_format",
			"format=%q is not one of png, ppm, pgm", v)
	}
}

// --- image parsing ------------------------------------------------------

var pngMagic = []byte{0x89, 'P', 'N', 'G'}

// parseImage sniffs and decodes a PNG/PPM/PGM body, enforcing the
// declared-dimension cap before any pixel buffer is allocated.
func (s *Server) parseImage(body []byte) (*imgutil.RGB, error) {
	switch {
	case bytes.HasPrefix(body, pngMagic):
		cfg, err := png.DecodeConfig(bytes.NewReader(body))
		if err != nil {
			return nil, errf(http.StatusBadRequest, "bad_image", "invalid PNG header: %v", err)
		}
		if exceedsPixelCap(cfg.Width, cfg.Height, s.opts.MaxPixels) {
			return nil, errf(http.StatusBadRequest, "image_too_large",
				"%dx%d exceeds the %d-pixel limit", cfg.Width, cfg.Height, s.opts.MaxPixels)
		}
		img, err := png.Decode(bytes.NewReader(body))
		if err != nil {
			return nil, errf(http.StatusBadRequest, "bad_image", "invalid PNG: %v", err)
		}
		return imgutil.FromImage(img), nil
	case bytes.HasPrefix(body, []byte("P6")):
		if err := s.checkPNMDims(body); err != nil {
			return nil, err
		}
		img, err := imgutil.ReadPPM(bytes.NewReader(body))
		if err != nil {
			return nil, errf(http.StatusBadRequest, "bad_image", "invalid PPM: %v", err)
		}
		return img, nil
	case bytes.HasPrefix(body, []byte("P5")):
		if err := s.checkPNMDims(body); err != nil {
			return nil, err
		}
		g, err := imgutil.ReadPGM(bytes.NewReader(body))
		if err != nil {
			return nil, errf(http.StatusBadRequest, "bad_image", "invalid PGM: %v", err)
		}
		return g.ToRGB(), nil
	default:
		return nil, errf(http.StatusUnsupportedMediaType, "unsupported_image",
			"body is not PNG, PPM (P6) or PGM (P5)")
	}
}

// exceedsPixelCap reports whether a declared w×h frame is out of bounds
// for the pixel cap. Hostile headers can declare dimensions near the int
// range (a PNG field holds up to 2³¹−1), where the naive w*h product
// overflows int on 32-bit platforms and can wrap below the cap — so each
// dimension is bounded first and the product test is phrased as a
// division, which cannot overflow for any input.
func exceedsPixelCap(w, h, maxPixels int) bool {
	if w <= 0 || h <= 0 {
		return true
	}
	return w > maxPixels || h > maxPixels || w > maxPixels/h
}

// checkPNMDims parses just the width/height tokens of a binary PNM
// header and applies the pixel cap, so a 30-byte body declaring a
// terabyte image is rejected before ReadPPM allocates for it.
func (s *Server) checkPNMDims(body []byte) error {
	// Bound the header scan generously: real headers fit well within a
	// few hundred bytes, but comment lines may legally push the
	// dimension tokens past that, so only truly unbounded headers fail.
	const maxHeaderScan = 4096
	fields := make([]int, 0, 2)
	i := 2 // past the magic
	for len(fields) < 2 && i < len(body) && i < maxHeaderScan {
		c := body[i]
		switch {
		case c == '#': // comment runs to end of line
			for i < len(body) && body[i] != '\n' {
				i++
			}
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c >= '0' && c <= '9':
			// Consume the WHOLE run of digits even once the value is
			// known to be out of bounds: stopping mid-token would hand
			// the remaining digits to the next field and misparse the
			// header (the real height token would never be read). Values
			// that would overflow int saturate instead.
			v, saturated := 0, false
			for i < len(body) && body[i] >= '0' && body[i] <= '9' {
				if d := int(body[i] - '0'); !saturated {
					if v > (math.MaxInt-d)/10 {
						saturated = true
					} else {
						v = v*10 + d
					}
				}
				i++
			}
			if saturated {
				v = math.MaxInt
			}
			fields = append(fields, v)
		default:
			return errf(http.StatusBadRequest, "bad_image", "malformed PNM header")
		}
	}
	if len(fields) < 2 {
		return errf(http.StatusBadRequest, "bad_image", "truncated PNM header")
	}
	if exceedsPixelCap(fields[0], fields[1], s.opts.MaxPixels) {
		return errf(http.StatusBadRequest, "image_too_large",
			"%dx%d exceeds the %d-pixel limit", fields[0], fields[1], s.opts.MaxPixels)
	}
	return nil
}

// --- the four codec endpoints -------------------------------------------

func (s *Server) handleEncode(w http.ResponseWriter, r *http.Request, t *tenant) error {
	fw, err := s.frameworkFor(r.URL.Query(), t)
	if err != nil {
		return err
	}
	opts, err := s.encodeOptions(fw, r.URL.Query())
	if err != nil {
		return err
	}
	body, err := s.readBody(r, t)
	if err != nil {
		return err
	}
	img, err := s.parseImage(body)
	if err != nil {
		return err
	}
	buf := s.bufPool.Get().(*bytes.Buffer)
	defer func() { buf.Reset(); s.bufPool.Put(buf) }()
	buf.Reset()
	if err := jpegcodec.EncodeRGB(buf, img, &opts); err != nil {
		return err
	}
	w.Header().Set("Content-Type", "image/jpeg")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	_, err = w.Write(buf.Bytes())
	return err
}

func (s *Server) handleDecode(w http.ResponseWriter, r *http.Request, t *tenant) error {
	q := r.URL.Query()
	fw, err := s.frameworkFor(q, t)
	if err != nil {
		return err
	}
	format, err := parseFormat(q)
	if err != nil {
		return err
	}
	// Default to the resolved profile's engine (-fast-dct accelerates
	// decode too), overridable per request.
	xf, err := parseTransform(q, fw.Transform)
	if err != nil {
		return err
	}
	body, err := s.readBody(r, t)
	if err != nil {
		return err
	}
	dec := s.decPool.Get().(*jpegcodec.Decoded)
	defer s.decPool.Put(dec)
	dopts := jpegcodec.DecodeOptions{Transform: xf, MaxPixels: s.opts.MaxPixels}
	if err := jpegcodec.DecodeInto(bytes.NewReader(body), dec, &dopts); err != nil {
		return err
	}
	img := s.imgPool.Get().(*imgutil.RGB)
	defer s.imgPool.Put(img)
	img = dec.RGBInto(img)
	buf := s.bufPool.Get().(*bytes.Buffer)
	defer func() { buf.Reset(); s.bufPool.Put(buf) }()
	buf.Reset()
	if err := writeImage(buf, img, format); err != nil {
		return err
	}
	w.Header().Set("Content-Type", format.contentType)
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.Header().Set("X-Image-Width", strconv.Itoa(img.W))
	w.Header().Set("X-Image-Height", strconv.Itoa(img.H))
	_, err = w.Write(buf.Bytes())
	return err
}

func writeImage(w io.Writer, img *imgutil.RGB, format outputFormat) error {
	switch format.name {
	case "png":
		return png.Encode(w, img.ToImage())
	case "ppm":
		return imgutil.WritePPM(w, img)
	case "pgm":
		return imgutil.WritePGM(w, img.ToGray())
	default:
		return fmt.Errorf("server: unknown output format %q", format.name)
	}
}

func (s *Server) handleRequantize(w http.ResponseWriter, r *http.Request, t *tenant) error {
	q := r.URL.Query()
	fw, err := s.frameworkFor(q, t)
	if err != nil {
		return err
	}
	luma, chroma, err := s.requantizeTables(fw, q)
	if err != nil {
		return err
	}
	optimize, err := parseBoolParam(q, "optimize", true)
	if err != nil {
		return err
	}
	restart, err := parseRestartParam(q, true)
	if err != nil {
		return err
	}
	stripMeta, err := parseBoolParam(q, "strip_metadata", false)
	if err != nil {
		return err
	}
	body, err := s.readBody(r, t)
	if err != nil {
		return err
	}
	dec := s.decPool.Get().(*jpegcodec.Decoded)
	defer s.decPool.Put(dec)
	dopts := jpegcodec.DecodeOptions{MaxPixels: s.opts.MaxPixels}
	if err := jpegcodec.DecodeInto(bytes.NewReader(body), dec, &dopts); err != nil {
		return err
	}
	buf := s.bufPool.Get().(*bytes.Buffer)
	defer func() { buf.Reset(); s.bufPool.Put(buf) }()
	buf.Reset()
	jopts := jpegcodec.Options{OptimizeHuffman: optimize, RestartInterval: restart, StripMetadata: stripMeta}
	if err := jpegcodec.Requantize(buf, dec, luma, chroma, &jopts); err != nil {
		return err
	}
	w.Header().Set("Content-Type", "image/jpeg")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.Header().Set("X-Source-Bytes", strconv.Itoa(len(body)))
	_, err = w.Write(buf.Bytes())
	return err
}

// --- batch --------------------------------------------------------------

// batchScratch is the per-worker reusable state of one /v1/batch
// request: decode working set, reader and output image survive across
// every item the worker claims.
type batchScratch struct {
	dec *jpegcodec.Decoded
	rd  bytes.Reader
	img *imgutil.RGB
}

// batchOp runs one item on a worker's scratch, returning the response
// payload (a fresh slice — results of all items coexist).
type batchOp struct {
	contentType string
	run         func(sc *batchScratch, item []byte) ([]byte, error)
}

// batchOpFor compiles the query parameters into the per-item runner of
// this request against the resolved framework; configuration errors
// surface once, before any part is read. The framework is captured once,
// so every item of a batch runs on the same profile snapshot even if a
// hot reload lands mid-request.
func (s *Server) batchOpFor(fw *core.Framework, q url.Values) (*batchOp, error) {
	switch op := q.Get("op"); op {
	case "", "encode":
		opts, err := s.encodeOptions(fw, q)
		if err != nil {
			return nil, err
		}
		return &batchOp{contentType: "image/jpeg", run: func(sc *batchScratch, item []byte) ([]byte, error) {
			img, err := s.parseImage(item)
			if err != nil {
				return nil, err
			}
			var buf bytes.Buffer
			o := opts
			if err := jpegcodec.EncodeRGB(&buf, img, &o); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		}}, nil
	case "decode":
		format, err := parseFormat(q)
		if err != nil {
			return nil, err
		}
		xf, err := parseTransform(q, fw.Transform)
		if err != nil {
			return nil, err
		}
		dopts := jpegcodec.DecodeOptions{Transform: xf, MaxPixels: s.opts.MaxPixels}
		return &batchOp{contentType: format.contentType, run: func(sc *batchScratch, item []byte) ([]byte, error) {
			sc.rd.Reset(item)
			if err := jpegcodec.DecodeInto(&sc.rd, sc.dec, &dopts); err != nil {
				return nil, err
			}
			sc.img = sc.dec.RGBInto(sc.img)
			var buf bytes.Buffer
			if err := writeImage(&buf, sc.img, format); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		}}, nil
	case "requantize":
		luma, chroma, err := s.requantizeTables(fw, q)
		if err != nil {
			return nil, err
		}
		optimize, err := parseBoolParam(q, "optimize", true)
		if err != nil {
			return nil, err
		}
		restart, err := parseRestartParam(q, true)
		if err != nil {
			return nil, err
		}
		stripMeta, err := parseBoolParam(q, "strip_metadata", false)
		if err != nil {
			return nil, err
		}
		dopts := jpegcodec.DecodeOptions{MaxPixels: s.opts.MaxPixels}
		jopts := jpegcodec.Options{OptimizeHuffman: optimize, RestartInterval: restart, StripMetadata: stripMeta}
		return &batchOp{contentType: "image/jpeg", run: func(sc *batchScratch, item []byte) ([]byte, error) {
			sc.rd.Reset(item)
			if err := jpegcodec.DecodeInto(&sc.rd, sc.dec, &dopts); err != nil {
				return nil, err
			}
			var buf bytes.Buffer
			o := jopts
			if err := jpegcodec.Requantize(&buf, sc.dec, luma, chroma, &o); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		}}, nil
	default:
		return nil, errf(http.StatusBadRequest, "bad_op",
			"op=%q is not one of encode, decode, requantize", q.Get("op"))
	}
}

// handleBatch reads a multipart request, fans the parts across the
// pipeline worker pool (order preserved), and answers multipart/mixed
// with one part per input in input order. Failed items come back as
// application/json error parts flagged X-Batch-Error: true; the request
// itself still answers 200 so partial progress survives.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request, t *tenant) error {
	fw, err := s.frameworkFor(r.URL.Query(), t)
	if err != nil {
		return err
	}
	op, err := s.batchOpFor(fw, r.URL.Query())
	if err != nil {
		return err
	}
	ct := r.Header.Get("Content-Type")
	mt, params, err := mime.ParseMediaType(ct)
	if err != nil || !strings.HasPrefix(mt, "multipart/") {
		return errf(http.StatusBadRequest, "bad_content_type",
			"Content-Type %q is not multipart", ct)
	}
	mr := multipart.NewReader(r.Body, params["boundary"])
	var items [][]byte
	total := 0
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			// A body-cap hit surfaces here when the limit lands between
			// parts; keep it classified as 413 like every other route.
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				return err
			}
			return errf(http.StatusBadRequest, "bad_multipart", "reading part %d: %v", len(items), err)
		}
		if len(items) >= s.opts.MaxBatchItems {
			part.Close()
			return errf(http.StatusRequestEntityTooLarge, "batch_too_large",
				"batch exceeds %d items", s.opts.MaxBatchItems)
		}
		data, err := io.ReadAll(part)
		part.Close()
		if err != nil {
			return fmt.Errorf("reading part %d: %w", len(items), err)
		}
		items = append(items, data)
		total += len(data)
	}
	if len(items) == 0 {
		return errf(http.StatusBadRequest, "empty_batch", "multipart body has no parts")
	}
	s.bytesIn.Add(int64(total))
	t.bytesIn.Add(int64(total))
	t.items.Add(int64(len(items)))

	nw := pipeline.Workers(s.opts.BatchWorkers, len(items))
	scratch := make([]*batchScratch, nw)
	for i := range scratch {
		scratch[i] = &batchScratch{
			dec: s.decPool.Get().(*jpegcodec.Decoded),
			img: s.imgPool.Get().(*imgutil.RGB),
		}
	}
	defer func() {
		for _, sc := range scratch {
			s.decPool.Put(sc.dec)
			s.imgPool.Put(sc.img)
		}
	}()
	results, runErr := pipeline.MapWorker(r.Context(), len(items), s.opts.BatchWorkers,
		func(_ context.Context, wk, i int) ([]byte, error) {
			return op.run(scratch[wk], items[i])
		})
	itemErrs := make(map[int]error)
	if runErr != nil {
		// Cancellation skips items without per-item errors; a partial
		// multipart answer would present them as empty successes, so the
		// whole request fails even if some items also carry errors.
		if ctxErr := r.Context().Err(); ctxErr != nil && errors.Is(runErr, ctxErr) {
			return runErr
		}
		var be *pipeline.BatchError
		if errors.As(runErr, &be) {
			for _, it := range be.Items {
				itemErrs[it.Index] = it.Err
			}
		} else {
			return runErr
		}
	}

	mw := multipart.NewWriter(w)
	defer mw.Close()
	w.Header().Set("Content-Type", "multipart/mixed; boundary="+mw.Boundary())
	w.Header().Set("X-Batch-Items", strconv.Itoa(len(items)))
	w.Header().Set("X-Batch-Failed", strconv.Itoa(len(itemErrs)))
	for i := range items {
		hdr := make(textproto.MIMEHeader, 3)
		hdr.Set("X-Batch-Index", strconv.Itoa(i))
		if err, failed := itemErrs[i]; failed {
			hdr.Set("Content-Type", "application/json")
			hdr.Set("X-Batch-Error", "true")
			pw, werr := mw.CreatePart(hdr)
			if werr != nil {
				return werr
			}
			json.NewEncoder(pw).Encode(map[string]any{
				"index": i,
				"error": map[string]string{"code": "item_failed", "message": err.Error()},
			})
			continue
		}
		hdr.Set("Content-Type", op.contentType)
		pw, werr := mw.CreatePart(hdr)
		if werr != nil {
			return werr
		}
		if _, werr := pw.Write(results[i]); werr != nil {
			return werr
		}
	}
	return nil
}

// --- observability ------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
		"in_flight":      s.inFlight.Value(),
		"profile":        s.profileStatus(),
	})
}

// handleMetrics serves the expvar document assembled in New. The maps
// render themselves as JSON, matching /debug/vars conventions without
// touching the process-global expvar registry (several Servers can
// coexist in one process).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	io.WriteString(w, s.metrics.String())
}
