package qtable

import (
	"testing"

	"repro/internal/dct"
)

// TestScaledNaiveIsPlainFloat pins the identity folding: the naive
// engine works in the orthonormal basis, so its scaled tables are the
// integer steps verbatim.
func TestScaledNaiveIsPlainFloat(t *testing.T) {
	tbl := StdLuminance
	fwd := tbl.FwdScaled(dct.TransformNaive)
	inv := tbl.InvScaled(dct.TransformNaive)
	for i, q := range tbl {
		if fwd[i] != float64(q) {
			t.Fatalf("fwd[%d] = %g, want %d verbatim", i, fwd[i], q)
		}
		if inv[i] != float64(q) {
			t.Fatalf("inv[%d] = %g, want %d verbatim", i, inv[i], q)
		}
	}
}

// TestScaledAANFoldsFactors checks the folded values band by band
// against the dct package's scale-factor accessors: forward divisors
// absorb the descale (q/descale), inverse multipliers absorb the
// prescale (q·prescale).
func TestScaledAANFoldsFactors(t *testing.T) {
	for _, tbl := range []Table{StdLuminance, StdChrominance, Uniform(1), Uniform(255)} {
		fwd := tbl.FwdScaled(dct.TransformAAN)
		inv := tbl.InvScaled(dct.TransformAAN)
		for i, q := range tbl {
			if want := float64(q) / dct.AANForwardDescale(i); fwd[i] != want {
				t.Fatalf("fwd[%d] = %g, want %g", i, fwd[i], want)
			}
			if want := float64(q) * dct.AANInversePrescale(i); inv[i] != want {
				t.Fatalf("inv[%d] = %g, want %g", i, inv[i], want)
			}
		}
	}
}

// TestScaledIntoMatchesAllocating keeps the pooled-scratch variants in
// lockstep with the allocating ones.
func TestScaledIntoMatchesAllocating(t *testing.T) {
	tbl := MustScale(StdLuminance, 75)
	for _, xf := range []dct.Transform{dct.TransformNaive, dct.TransformAAN} {
		var fwd FwdScaled
		var inv InvScaled
		tbl.FwdScaledInto(&fwd, xf)
		tbl.InvScaledInto(&inv, xf)
		if fwd != *tbl.FwdScaled(xf) {
			t.Fatalf("%v: FwdScaledInto diverges from FwdScaled", xf)
		}
		if inv != *tbl.InvScaled(xf) {
			t.Fatalf("%v: InvScaledInto diverges from InvScaled", xf)
		}
	}
}

// TestScaledRoundTripNeutral sanity-checks the algebra end to end inside
// qtable: dividing by the fused forward divisor and multiplying by the
// fused inverse multiplier must cancel the quantization step against
// itself, leaving exactly descale·prescale — the same net factor the
// unfolded AAN path applies between its butterfly passes.
func TestScaledRoundTripNeutral(t *testing.T) {
	tbl := MustScale(StdLuminance, 30)
	fwd := tbl.FwdScaled(dct.TransformAAN)
	inv := tbl.InvScaled(dct.TransformAAN)
	for i := range tbl {
		got := inv[i] / fwd[i]
		want := dct.AANForwardDescale(i) * dct.AANInversePrescale(i)
		if diff := got - want; diff > 1e-15 || diff < -1e-15 {
			t.Fatalf("band %d: inv/fwd = %g, want descale·prescale = %g", i, got, want)
		}
	}
}
