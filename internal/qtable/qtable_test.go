package qtable

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestZigZagIsPermutation(t *testing.T) {
	seen := [64]bool{}
	for _, n := range ZigZagOrder {
		if n < 0 || n > 63 {
			t.Fatalf("zig-zag entry %d out of range", n)
		}
		if seen[n] {
			t.Fatalf("zig-zag entry %d repeated", n)
		}
		seen[n] = true
	}
}

func TestZigZagInverse(t *testing.T) {
	for z, n := range ZigZagOrder {
		if NaturalToZigZag[n] != z {
			t.Fatalf("NaturalToZigZag[%d] = %d, want %d", n, NaturalToZigZag[n], z)
		}
	}
}

func TestZigZagKnownEntries(t *testing.T) {
	// T.81 Figure 5: the scan starts 0,1,8,16,9,2 and ends at 63.
	if ZigZagOrder[0] != 0 || ZigZagOrder[1] != 1 || ZigZagOrder[2] != 8 {
		t.Fatalf("zig-zag head wrong: %v", ZigZagOrder[:3])
	}
	if ZigZagOrder[63] != 63 {
		t.Fatalf("zig-zag tail = %d, want 63", ZigZagOrder[63])
	}
	// Anti-diagonal property: consecutive entries move along anti-diagonals,
	// so u+v is non-decreasing by at most 1 between neighbours.
	prev := 0
	for z, n := range ZigZagOrder {
		sum := n/8 + n%8
		if sum < prev-1 || sum > prev+1 {
			t.Fatalf("zig-zag entry %d jumps diagonals: %d → %d", z, prev, sum)
		}
		prev = sum
	}
}

func TestScaleQF50IsIdentity(t *testing.T) {
	got := MustScale(StdLuminance, 50)
	if got != StdLuminance {
		t.Fatalf("QF=50 should return the base table")
	}
}

func TestScaleQF100IsAllOnes(t *testing.T) {
	got := MustScale(StdLuminance, 100)
	for i, q := range got {
		if q != 1 {
			t.Fatalf("QF=100 step[%d] = %d, want 1", i, q)
		}
	}
}

func TestScaleMonotonic(t *testing.T) {
	// Larger QF must never produce larger steps.
	prev := MustScale(StdLuminance, 1)
	for qf := 2; qf <= 100; qf++ {
		cur := MustScale(StdLuminance, qf)
		for i := range cur {
			if cur[i] > prev[i] {
				t.Fatalf("QF %d step[%d]=%d exceeds QF %d step %d", qf, i, cur[i], qf-1, prev[i])
			}
		}
		prev = cur
	}
}

func TestScaleRejectsBadQF(t *testing.T) {
	for _, qf := range []int{0, -1, 101} {
		if _, err := Scale(StdLuminance, qf); err == nil {
			t.Errorf("Scale(qf=%d) should fail", qf)
		}
	}
}

func TestScaleClampsTo255(t *testing.T) {
	got := MustScale(StdLuminance, 1)
	for i, q := range got {
		if q < 1 || q > 255 {
			t.Fatalf("QF=1 step[%d] = %d out of range", i, q)
		}
	}
}

func TestUniform(t *testing.T) {
	u := Uniform(8)
	for _, q := range u {
		if q != 8 {
			t.Fatalf("Uniform(8) contains %d", q)
		}
	}
	if Uniform(0)[0] != 1 || Uniform(999)[0] != 255 {
		t.Fatal("Uniform should clamp to [1,255]")
	}
}

func TestTopZigZag(t *testing.T) {
	m := TopZigZag(6)
	if m.Count() != 6 {
		t.Fatalf("mask count = %d, want 6", m.Count())
	}
	// The six highest zig-zag positions are indices 58..63 of the scan.
	for z := 58; z < 64; z++ {
		if !m[ZigZagOrder[z]] {
			t.Fatalf("zig-zag position %d not masked", z)
		}
	}
	// DC must never be masked for reasonable n.
	if m[0] {
		t.Fatal("DC masked by TopZigZag(6)")
	}
	if TopZigZag(-1).Count() != 0 || TopZigZag(100).Count() != 64 {
		t.Fatal("TopZigZag should clamp n")
	}
}

func TestRMHF(t *testing.T) {
	tbl, mask := RMHF(3)
	if tbl != MustScale(StdLuminance, 100) {
		t.Fatal("RM-HF base table should be QF=100")
	}
	if mask.Count() != 3 {
		t.Fatalf("RM-HF mask count = %d", mask.Count())
	}
}

func TestValidate(t *testing.T) {
	if err := StdLuminance.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := StdLuminance
	bad[5] = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero step should be invalid")
	}
	bad[5] = 300
	if err := bad.Validate(); err == nil {
		t.Fatal("step 300 should be invalid")
	}
}

func TestZigZagRoundTrip(t *testing.T) {
	f := func(vals [64]uint16) bool {
		var tbl Table
		for i, v := range vals {
			tbl[i] = v%255 + 1
		}
		return FromZigZag(tbl.InZigZag()) == tbl
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if got := Uniform(7).Mean(); got != 7 {
		t.Fatalf("Mean = %g, want 7", got)
	}
}

func TestStringRendersGrid(t *testing.T) {
	s := StdLuminance.String()
	if lines := strings.Count(s, "\n"); lines != 8 {
		t.Fatalf("String has %d lines, want 8", lines)
	}
	if !strings.Contains(s, "16") {
		t.Fatal("String missing first entry")
	}
}

func TestStdTablesAreValid(t *testing.T) {
	if err := StdLuminance.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := StdChrominance.Validate(); err != nil {
		t.Fatal(err)
	}
	// Annex-K spot checks.
	if StdLuminance[0] != 16 || StdLuminance[63] != 99 {
		t.Fatal("luminance table corners wrong")
	}
	if StdChrominance[0] != 17 || StdChrominance[63] != 99 {
		t.Fatal("chrominance table corners wrong")
	}
}
