// Package qtable defines JPEG quantization tables and the table families
// the DeepN-JPEG paper compares against:
//
//   - the Annex-K luminance/chrominance reference tables with IJG
//     quality-factor scaling (the standard "JPEG QF=n" baseline),
//   - RM-HF: the paper's "remove top-N highest-frequency components"
//     extension of the QF=100 table, and
//   - SAME-Q: a uniform step for all 64 bands.
//
// Tables are stored in natural (row-major) order; ZigZag/DeZigZag convert to
// and from the scan order used in DQT segments and entropy coding.
package qtable

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Table is a 64-entry quantization table in natural (row-major) order.
// Valid baseline-JPEG steps are 1..255.
type Table [64]uint16

// ZigZagOrder maps zig-zag index → natural index (ITU-T T.81 Figure 5).
var ZigZagOrder = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// NaturalToZigZag maps natural index → zig-zag index (inverse of
// ZigZagOrder).
var NaturalToZigZag [64]int

func init() {
	for z, n := range ZigZagOrder {
		NaturalToZigZag[n] = z
	}
}

// StdLuminance is the Annex-K (Table K.1) luminance quantization table,
// natural order.
var StdLuminance = Table{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// StdChrominance is the Annex-K (Table K.2) chrominance quantization table,
// natural order.
var StdChrominance = Table{
	17, 18, 24, 47, 99, 99, 99, 99,
	18, 21, 26, 66, 99, 99, 99, 99,
	24, 26, 56, 99, 99, 99, 99, 99,
	47, 66, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
}

// Uniform returns a SAME-Q table with every step equal to q (clamped to
// 1..255).
func Uniform(q int) Table {
	var t Table
	v := uint16(clampStep(q))
	for i := range t {
		t[i] = v
	}
	return t
}

func clampStep(q int) int {
	if q < 1 {
		return 1
	}
	if q > 255 {
		return 255
	}
	return q
}

// Scale applies the IJG quality-factor mapping to a base table:
// qf in [1,100]; qf=50 returns the base table, larger is finer.
func Scale(base Table, qf int) (Table, error) {
	if qf < 1 || qf > 100 {
		return Table{}, fmt.Errorf("qtable: quality factor %d out of range [1,100]", qf)
	}
	var scale int
	if qf < 50 {
		scale = 5000 / qf
	} else {
		scale = 200 - 2*qf
	}
	var out Table
	for i, q := range base {
		v := (int(q)*scale + 50) / 100
		out[i] = uint16(clampStep(v))
	}
	return out, nil
}

// MustScale is Scale for known-good quality factors; it panics on error and
// exists for table literals in tests and examples.
func MustScale(base Table, qf int) Table {
	t, err := Scale(base, qf)
	if err != nil {
		panic(err)
	}
	return t
}

// ZeroMask marks coefficients that an encoder should force to zero before
// entropy coding (true = drop). It implements the RM-HF scheme, which the
// paper describes as removing components "from the quantization table":
// dropping a band entirely is the limiting case of an infinite step.
type ZeroMask [64]bool

// TopZigZag returns a mask covering the n highest-frequency bands in
// zig-zag order (the tail of the scan). n is clamped to [0, 64].
func TopZigZag(n int) ZeroMask {
	if n < 0 {
		n = 0
	}
	if n > 64 {
		n = 64
	}
	var m ZeroMask
	for z := 64 - n; z < 64; z++ {
		m[ZigZagOrder[z]] = true
	}
	return m
}

// Count returns the number of dropped bands.
func (m ZeroMask) Count() int {
	n := 0
	for _, b := range m {
		if b {
			n++
		}
	}
	return n
}

// RMHF builds the paper's RM-HF baseline: the QF=100 luminance table plus a
// mask that zeroes the top-n zig-zag bands.
func RMHF(n int) (Table, ZeroMask) {
	return MustScale(StdLuminance, 100), TopZigZag(n)
}

// Validate checks that every step is a legal baseline value.
func (t Table) Validate() error {
	for i, q := range t {
		if q < 1 || q > 255 {
			return fmt.Errorf("qtable: step %d at index %d out of range [1,255]", q, i)
		}
	}
	return nil
}

// InZigZag returns the table reordered into zig-zag order, as stored in DQT
// segments.
func (t Table) InZigZag() [64]uint16 {
	var out [64]uint16
	for z, n := range ZigZagOrder {
		out[z] = t[n]
	}
	return out
}

// FromZigZag reconstructs a natural-order table from zig-zag order.
func FromZigZag(z [64]uint16) Table {
	var t Table
	for zi, n := range ZigZagOrder {
		t[n] = z[zi]
	}
	return t
}

// BinarySize is the length of a table's canonical binary encoding:
// 64 big-endian uint16 steps in natural order.
const BinarySize = 128

// AppendBinary appends the canonical binary encoding of the table to b
// and returns the extended slice. The encoding is deterministic, so a
// table always serializes to the same bytes — the property the persistent
// profile format builds its byte-identical round trips on.
func (t Table) AppendBinary(b []byte) []byte {
	for _, q := range t {
		b = binary.BigEndian.AppendUint16(b, q)
	}
	return b
}

// TableFromBinary parses the first BinarySize bytes of b as a canonical
// table encoding. It is the exact inverse of AppendBinary; values outside
// the legal baseline range are reported by Validate, not here, so callers
// decide how strict to be.
func TableFromBinary(b []byte) (Table, error) {
	var t Table
	if len(b) < BinarySize {
		return t, fmt.Errorf("qtable: %d bytes for a %d-byte table encoding", len(b), BinarySize)
	}
	for i := range t {
		t[i] = binary.BigEndian.Uint16(b[2*i:])
	}
	return t, nil
}

// Mean returns the average step, a coarse aggressiveness measure.
func (t Table) Mean() float64 {
	s := 0.0
	for _, q := range t {
		s += float64(q)
	}
	return s / 64
}

// String renders the table as an 8×8 grid.
func (t Table) String() string {
	var b strings.Builder
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			fmt.Fprintf(&b, "%4d", t[y*8+x])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
