package qtable

// Scaled quantization tables: the libjpeg trick of folding a fast
// transform's per-band scale factors into the table so the codec's hot
// loop does exactly one multiply or divide per coefficient.
//
// The AAN butterflies emit the orthonormal DCT times a fixed per-band
// factor (dct.AANForwardDescale). Instead of descaling every block and
// then dividing by the quantization step — two passes over 64 floats —
// the step absorbs the factor once, at table-build time:
//
//	forward:  round(ortho/q) = round(raw·descale/q) = round(raw / (q/descale))
//	inverse:  ortho·q → scaled input = coef·q·prescale = coef·(q·prescale)
//
// FwdScaled holds the fused divisors q[i]/descale2D[i], InvScaled the
// fused multipliers q[i]·prescale2D[i]. For the naive engine both are
// simply float64(q[i]) — the orthonormal basis needs no folding — so one
// code path serves every engine. Tables are derived per (Table,
// Transform) pair and are cheap to build but worth caching: the codec
// builds them once per Framework (and once per decoded stream on the
// decode side), never per block.

import "repro/internal/dct"

// FwdScaled is a quantization table with the forward transform's scale
// factors folded in: 64 float divisors in natural order. A coefficient
// produced by Transform.ForwardScaled quantizes as round(c/FwdScaled[i])
// with no separate descale pass.
type FwdScaled [64]float64

// InvScaled is a dequantization table with the inverse transform's scale
// factors folded in: 64 float multipliers in natural order. A quantized
// coefficient dequantizes for Transform.InverseScaled as c·InvScaled[i].
type InvScaled [64]float64

// FwdScaledInto fills dst with the fused forward divisors of t under the
// given engine. The allocation-free form of FwdScaled for pooled scratch.
func (t Table) FwdScaledInto(dst *FwdScaled, xf dct.Transform) {
	if xf == dct.TransformAAN {
		for i, q := range t {
			dst[i] = float64(q) / dct.AANForwardDescale(i)
		}
		return
	}
	for i, q := range t {
		dst[i] = float64(q)
	}
}

// FwdScaled returns the fused forward divisors of t under the given
// engine.
func (t Table) FwdScaled(xf dct.Transform) *FwdScaled {
	dst := new(FwdScaled)
	t.FwdScaledInto(dst, xf)
	return dst
}

// InvScaledInto fills dst with the fused inverse multipliers of t under
// the given engine. The allocation-free form of InvScaled.
func (t Table) InvScaledInto(dst *InvScaled, xf dct.Transform) {
	if xf == dct.TransformAAN {
		for i, q := range t {
			dst[i] = float64(q) * dct.AANInversePrescale(i)
		}
		return
	}
	for i, q := range t {
		dst[i] = float64(q)
	}
}

// InvScaled returns the fused inverse multipliers of t under the given
// engine.
func (t Table) InvScaled(xf dct.Transform) *InvScaled {
	dst := new(InvScaled)
	t.InvScaledInto(dst, xf)
	return dst
}

// DequantizeBlocks broadcasts the fused multipliers over a run of
// quantized blocks, writing len(blocks) consecutive 64-float blocks
// into dst (dct batch layout). The per-coefficient product is exactly
// the one the per-block dequantize loop computes — float64(c)·t[i] —
// so a batch inverse transform over dst is bit-identical to per-block
// reconstruction.
func (t *InvScaled) DequantizeBlocks(dst []float64, blocks [][64]int32) {
	for bi := range blocks {
		src := &blocks[bi]
		d := (*[64]float64)(dst[bi*64:])
		for i := 0; i < 64; i++ {
			d[i] = float64(src[i]) * t[i]
		}
	}
}
