package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
)

// tinyProfile shrinks Quick far enough that every figure runs in a couple
// of seconds of test time.
func tinyProfile() Profile {
	p := Quick()
	p.Data.Classes = 6
	p.Data.TrainPerClass = 30
	p.Data.TestPerClass = 10
	p.Data.NoiseStd = 8
	p.Train.Epochs = 4
	p.ZooModels = []string{"minicnn"}
	return p
}

// sharedCtx is built once; figure runners memoize aggressively, so later
// tests reuse earlier trainings.
var sharedCtx *Context

func ctxForTest(t *testing.T) *Context {
	t.Helper()
	if sharedCtx != nil {
		return sharedCtx
	}
	ctx, err := NewContext(tinyProfile())
	if err != nil {
		t.Fatal(err)
	}
	sharedCtx = ctx
	return ctx
}

func TestNewContextCalibrates(t *testing.T) {
	ctx := ctxForTest(t)
	if ctx.Framework == nil || ctx.Framework.LumaTable.Validate() != nil {
		t.Fatal("context not calibrated")
	}
	if ctx.Train.Len() != 180 || ctx.Test.Len() != 60 {
		t.Fatalf("split sizes %d/%d", ctx.Train.Len(), ctx.Test.Len())
	}
}

func TestBaselineModelLearns(t *testing.T) {
	ctx := ctxForTest(t)
	m, err := ctx.BaselineModel()
	if err != nil {
		t.Fatal(err)
	}
	acc, err := ctx.AccuracyUnderScheme(m, core.SchemeOriginal())
	if err != nil {
		t.Fatal(err)
	}
	// 4 balanced classes: chance is 25%; the model must beat it soundly.
	if acc < 0.6 {
		t.Fatalf("baseline accuracy %.2f too low", acc)
	}
}

func parseCR(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("parsing CR %q: %v", cell, err)
	}
	return v
}

func parsePct(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatalf("parsing pct %q: %v", cell, err)
	}
	return v / 100
}

func TestFig2a(t *testing.T) {
	ctx := ctxForTest(t)
	tbl, err := Fig2a(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	// CR grows as QF falls.
	if !(parseCR(t, tbl.Rows[2][1]) > parseCR(t, tbl.Rows[0][1])) {
		t.Fatalf("CR not increasing: %v", tbl.Rows)
	}
	// CASE 1 accuracy at QF=20 must be below QF=100 (the paper's core
	// observation).
	if !(parsePct(t, tbl.Rows[2][2]) < parsePct(t, tbl.Rows[0][2])) {
		t.Fatalf("no CASE-1 degradation: %v", tbl.Rows)
	}
}

func TestFig2b(t *testing.T) {
	ctx := ctxForTest(t)
	tbl, err := Fig2b(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != ctx.Profile.Train.Epochs {
		t.Fatalf("%d rows, want %d epochs", len(tbl.Rows), ctx.Profile.Train.Epochs)
	}
}

func TestFig3(t *testing.T) {
	ctx := ctxForTest(t)
	tbl, err := Fig3(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 2 {
		t.Fatalf("rows: %v", tbl.Rows)
	}
	// Some HF-class predictions must flip when HF content is removed.
	if !strings.Contains(tbl.Rows[1][0], "flipped") {
		t.Fatalf("unexpected row: %v", tbl.Rows[1])
	}
}

func TestFig5(t *testing.T) {
	ctx := ctxForTest(t)
	tbl, err := Fig5(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 15 { // 3 bands × 5 steps
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	// All normalized accuracies lie in (0, 1.2] and Q=1 rows are exactly 1.
	for _, row := range tbl.Rows {
		for _, cell := range row[2:] {
			v := parseCR(t, cell)
			if v <= 0 || v > 1.2 {
				t.Fatalf("normalized accuracy %v out of range in %v", v, row)
			}
		}
		if row[1] == "1" && (row[2] != "1.000" || row[3] != "1.000") {
			t.Fatalf("Q=1 row not normalized to 1: %v", row)
		}
	}
}

func TestFig6(t *testing.T) {
	ctx := ctxForTest(t)
	tbl, err := Fig6(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	// Smaller k3 must compress at least as well as larger k3.
	if parseCR(t, tbl.Rows[0][1]) < parseCR(t, tbl.Rows[4][1]) {
		t.Fatalf("k3=1 CR below k3=5: %v", tbl.Rows)
	}
}

func TestFig7(t *testing.T) {
	ctx := ctxForTest(t)
	tbl, err := Fig7(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 8 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	crOf := map[string]float64{}
	accOf := map[string]float64{}
	for _, row := range tbl.Rows {
		crOf[row[0]] = parseCR(t, row[1])
		accOf[row[0]] = parsePct(t, row[2])
	}
	// The paper's headline: DeepN-JPEG has the best CR of all schemes...
	for name, cr := range crOf {
		if name != "deepn-jpeg" && cr > crOf["deepn-jpeg"] {
			t.Fatalf("%s CR %.2f exceeds deepn-jpeg %.2f", name, cr, crOf["deepn-jpeg"])
		}
	}
	// ...while staying near the original accuracy.
	if accOf["deepn-jpeg"] < accOf["original"]-0.08 {
		t.Fatalf("deepn accuracy %.2f far below original %.2f", accOf["deepn-jpeg"], accOf["original"])
	}
}

func TestFig8(t *testing.T) {
	ctx := ctxForTest(t)
	tbl, err := Fig8(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// 1 CR row + one row per zoo model.
	if len(tbl.Rows) != 1+len(ctx.Profile.ZooModels) {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
}

func TestFig9(t *testing.T) {
	ctx := ctxForTest(t)
	tbl, err := Fig9(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	norm := map[string]float64{}
	for _, row := range tbl.Rows {
		norm[row[0]] = parseCR(t, row[2])
	}
	if norm["original"] != 1 {
		t.Fatalf("original normalized power %v", norm["original"])
	}
	// DeepN-JPEG must consume the least offloading power.
	for name, v := range norm {
		if name != "deepn-jpeg" && v < norm["deepn-jpeg"] {
			t.Fatalf("%s power %.3f below deepn %.3f", name, v, norm["deepn-jpeg"])
		}
	}
}

func TestIntroLatency(t *testing.T) {
	ctx := ctxForTest(t)
	tbl, err := IntroLatency(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	// Reference row reproduces the paper's 870/180/95 ms.
	ref := tbl.Rows[0]
	if ref[2] != "870 ms" || ref[3] != "180 ms" || ref[4] != "95 ms" {
		t.Fatalf("reference latencies %v", ref)
	}
}

func TestRunDispatch(t *testing.T) {
	ctx := ctxForTest(t)
	for _, fig := range Figures() {
		if _, err := Run(fig, ctx); err != nil {
			t.Fatalf("Run(%q): %v", fig, err)
		}
	}
	if _, err := Run("nope", ctx); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:   "demo",
		Note:    "a note",
		Columns: []string{"a", "long-header"},
		Rows:    [][]string{{"x", "1"}, {"longer-cell", "2"}},
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== demo ==", "a note", "long-header", "longer-cell"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 6 {
		t.Fatalf("rendered %d lines:\n%s", lines, out)
	}
}
