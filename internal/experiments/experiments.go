// Package experiments reproduces every figure of the paper's evaluation.
// Each figure has a runner returning a Table whose rows mirror what the
// paper plots; cmd/deepn-experiments prints them and bench_test.go wraps
// them as benchmarks. A Profile selects the workload scale: Quick runs in
// seconds for tests and benches, PaperProfile produces the EXPERIMENTS.md
// numbers.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/nn/models"
)

// Profile scales an experiment run.
type Profile struct {
	Name string
	// Data configures SynthNet generation.
	Data dataset.Config
	// Model names the sweep architecture (Figs. 2, 3, 5, 6, 7).
	Model string
	// ZooModels names the Fig. 8 generality architectures.
	ZooModels []string
	// Train configures every training run.
	Train nn.TrainConfig
	// Gray transcodes and trains on luma only (roughly 3× faster).
	Gray bool
	// Retrain trains a fresh model on each scheme's transcoded training
	// set (the paper's storage semantics). When false, a single model
	// trained on the original data is evaluated on transcoded test sets
	// (CASE-1 semantics) — much cheaper, same ranking.
	Retrain bool
	// RetrainZoo applies the Retrain semantics to the Fig. 8 model zoo;
	// kept separate because zoo retraining multiplies the most expensive
	// trainings by the scheme count.
	RetrainZoo bool
}

// Quick is the seconds-scale profile used by tests and benchmarks.
func Quick() Profile {
	d := dataset.Quick()
	return Profile{
		Name:      "quick",
		Data:      d,
		Model:     "minicnn",
		ZooModels: []string{"mini-googlenet", "mini-resnet10"},
		Train: nn.TrainConfig{
			Epochs: 5, BatchSize: 32, LR: 0.04, Momentum: 0.9, ClipNorm: 5, Seed: 11,
		},
		Gray:    true,
		Retrain: false,
	}
}

// PaperProfile is the minutes-scale profile behind EXPERIMENTS.md: color
// images, more classes, scheme-retrained sweeps. The Fig. 8 zoo is
// evaluated CASE-1 style (RetrainZoo=false) to keep the full figure set
// under an hour on a laptop.
func PaperProfile() Profile {
	d := dataset.Paper()
	d.Classes = 10
	d.TrainPerClass = 70
	d.TestPerClass = 25
	return Profile{
		Name:      "paper",
		Data:      d,
		Model:     "minicnn",
		ZooModels: []string{"mini-alexnet", "mini-googlenet", "mini-vgg", "mini-resnet10", "mini-resnet18"},
		Train: nn.TrainConfig{
			Epochs: 8, BatchSize: 32, LR: 0.03, Momentum: 0.9, WeightDecay: 1e-4,
			LRDecayEvery: 4, ClipNorm: 5, Seed: 11,
		},
		Gray:       false,
		Retrain:    true,
		RetrainZoo: false,
	}
}

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
		return err
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Note); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// Context carries the shared state of an experiment session: the dataset
// splits, calibrated framework, and memoized trainings so that figure
// runners can reuse each other's work.
type Context struct {
	Profile   Profile
	Train     *dataset.Dataset
	Test      *dataset.Dataset
	Framework *core.Framework

	origTestBytes  int64
	origTrainBytes int64

	models         map[string]*nn.Model             // key: model name + training scheme
	transcodedTest map[string]*core.TranscodeResult // key: scheme name
	testTensors    map[string]*nn.Dataset
}

// NewContext generates data and calibrates DeepN-JPEG for a profile.
func NewContext(p Profile) (*Context, error) {
	train, test, err := dataset.Generate(p.Data)
	if err != nil {
		return nil, err
	}
	fw, err := core.Calibrate(train, core.CalibrateOptions{Chroma: !p.Gray && p.Data.Color})
	if err != nil {
		return nil, fmt.Errorf("experiments: calibrating: %w", err)
	}
	ctx := &Context{
		Profile:        p,
		Train:          train,
		Test:           test,
		Framework:      fw,
		models:         map[string]*nn.Model{},
		transcodedTest: map[string]*core.TranscodeResult{},
		testTensors:    map[string]*nn.Dataset{},
	}
	ctx.origTestBytes, err = core.CompressedSize(test, core.SchemeOriginal(), p.Gray)
	if err != nil {
		return nil, err
	}
	ctx.origTrainBytes, err = core.CompressedSize(train, core.SchemeOriginal(), p.Gray)
	if err != nil {
		return nil, err
	}
	return ctx, nil
}

// modelConfig derives the models.Config for this profile.
func (c *Context) modelConfig() models.Config {
	channels := 3
	if c.Profile.Gray {
		channels = 1
	}
	return models.Config{
		Channels: channels,
		Size:     c.Profile.Data.Size,
		Classes:  c.Profile.Data.Classes,
		Seed:     c.Profile.Train.Seed,
	}
}

// TranscodeTest pushes the test split through a scheme once and caches it.
func (c *Context) TranscodeTest(s core.Scheme) (*core.TranscodeResult, error) {
	if r, ok := c.transcodedTest[s.Name]; ok {
		return r, nil
	}
	r, err := core.Transcode(c.Test, s, c.Profile.Gray)
	if err != nil {
		return nil, err
	}
	c.transcodedTest[s.Name] = r
	return r, nil
}

// testTensorsFor converts a transcoded test set to tensors once.
func (c *Context) testTensorsFor(s core.Scheme) (*nn.Dataset, error) {
	if t, ok := c.testTensors[s.Name]; ok {
		return t, nil
	}
	r, err := c.TranscodeTest(s)
	if err != nil {
		return nil, err
	}
	t := r.Dataset.Tensors(!c.Profile.Gray)
	c.testTensors[s.Name] = t
	return t, nil
}

// TrainModelOn trains (and caches) the profile's sweep model on the
// training split transcoded by a scheme. An empty scheme name trains on
// the raw (untranscoded) data.
func (c *Context) TrainModelOn(modelName string, s core.Scheme) (*nn.Model, error) {
	key := modelName + "|" + s.Name
	if m, ok := c.models[key]; ok {
		return m, nil
	}
	m, err := models.Build(modelName, c.modelConfig())
	if err != nil {
		return nil, err
	}
	trainSet := c.Train
	if s.Name != "" {
		r, err := core.Transcode(c.Train, s, c.Profile.Gray)
		if err != nil {
			return nil, err
		}
		trainSet = r.Dataset
	}
	m.Train(trainSet.Tensors(!c.Profile.Gray), c.Profile.Train)
	c.models[key] = m
	return m, nil
}

// BaselineModel returns the sweep model trained on the original-quality
// training data (CASE-1 reference).
func (c *Context) BaselineModel() (*nn.Model, error) {
	return c.TrainModelOn(c.Profile.Model, core.SchemeOriginal())
}

// AccuracyUnderScheme evaluates a model on the test split transcoded by a
// scheme.
func (c *Context) AccuracyUnderScheme(m *nn.Model, s core.Scheme) (float64, error) {
	t, err := c.testTensorsFor(s)
	if err != nil {
		return 0, err
	}
	return m.Accuracy(t), nil
}

// SchemeAccuracy is the profile-dependent headline accuracy of a scheme:
// with Retrain, a model trained on scheme-compressed data is tested on
// scheme-compressed data (the paper's storage semantics); otherwise the
// original-trained model is tested on scheme-compressed data (CASE 1).
func (c *Context) SchemeAccuracy(s core.Scheme) (float64, error) {
	var m *nn.Model
	var err error
	if c.Profile.Retrain {
		m, err = c.TrainModelOn(c.Profile.Model, s)
	} else {
		m, err = c.BaselineModel()
	}
	if err != nil {
		return 0, err
	}
	return c.AccuracyUnderScheme(m, s)
}

// SchemeCR computes a scheme's compression ratio over the QF-100
// original on the test split.
func (c *Context) SchemeCR(s core.Scheme) (float64, error) {
	r, err := c.TranscodeTest(s)
	if err != nil {
		return 0, err
	}
	return core.CompressionRatio(c.origTestBytes, r.TotalBytes), nil
}

// Run dispatches a figure by identifier.
func Run(fig string, ctx *Context) (*Table, error) {
	switch strings.ToLower(fig) {
	case "2a", "fig2a":
		return Fig2a(ctx)
	case "2b", "fig2b":
		return Fig2b(ctx)
	case "3", "fig3":
		return Fig3(ctx)
	case "5", "fig5":
		return Fig5(ctx)
	case "6", "fig6":
		return Fig6(ctx)
	case "7", "fig7":
		return Fig7(ctx)
	case "8", "fig8":
		return Fig8(ctx)
	case "9", "fig9":
		return Fig9(ctx)
	case "latency", "intro":
		return IntroLatency(ctx)
	default:
		return nil, fmt.Errorf("experiments: unknown figure %q (have 2a 2b 3 5 6 7 8 9 latency)", fig)
	}
}

// Figures lists the available experiment identifiers.
func Figures() []string {
	return []string{"2a", "2b", "3", "5", "6", "7", "8", "9", "latency"}
}
