package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/freqstat"
	"repro/internal/imgutil"
	"repro/internal/jpegcodec"
	"repro/internal/nn"
	"repro/internal/nn/models"
	"repro/internal/plm"
	"repro/internal/qtable"
)

func pct(v float64) string  { return fmt.Sprintf("%.1f%%", 100*v) }
func f2(v float64) string   { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string   { return fmt.Sprintf("%.3f", v) }
func ms(sec float64) string { return fmt.Sprintf("%.0f ms", 1000*sec) }

// Fig2a reproduces "Accuracy vs JPEG CRs for CASE 1/2": CASE 1 trains on
// high-quality images and tests on compressed ones; CASE 2 trains on
// compressed images and tests on high-quality ones. Both degrade as QF
// falls, CASE 2 less so.
func Fig2a(ctx *Context) (*Table, error) {
	qfs := []int{100, 50, 20}
	base, err := ctx.BaselineModel()
	if err != nil {
		return nil, err
	}
	origScheme := core.SchemeOriginal()
	t := &Table{
		Title:   "Fig. 2a — accuracy vs JPEG compression (CASE 1 and CASE 2)",
		Note:    "CASE 1: train QF=100, test at QF. CASE 2: train at QF, test QF=100.",
		Columns: []string{"QF", "CR", "CASE 1 acc", "CASE 2 acc"},
	}
	for _, qf := range qfs {
		scheme := core.SchemeJPEG(qf)
		cr, err := ctx.SchemeCR(scheme)
		if err != nil {
			return nil, err
		}
		case1, err := ctx.AccuracyUnderScheme(base, scheme)
		if err != nil {
			return nil, err
		}
		trained, err := ctx.TrainModelOn(ctx.Profile.Model, scheme)
		if err != nil {
			return nil, err
		}
		case2, err := ctx.AccuracyUnderScheme(trained, origScheme)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", qf), f2(cr), pct(case1), pct(case2)})
	}
	return t, nil
}

// Fig2b reproduces "CASE 2 accuracy w.r.t. epoch number at various CRs":
// per-epoch test accuracy (on original-quality data) of models trained on
// increasingly compressed data. The gap widens with training.
func Fig2b(ctx *Context) (*Table, error) {
	qfs := []int{100, 50, 20}
	orig, err := ctx.testTensorsFor(core.SchemeOriginal())
	if err != nil {
		return nil, err
	}
	curves := make([][]float64, len(qfs))
	for qi, qf := range qfs {
		scheme := core.SchemeJPEG(qf)
		res, err := core.Transcode(ctx.Train, scheme, ctx.Profile.Gray)
		if err != nil {
			return nil, err
		}
		m, err := models.Build(ctx.Profile.Model, ctx.modelConfig())
		if err != nil {
			return nil, err
		}
		cfg := ctx.Profile.Train
		cfg.AfterEpoch = func(epoch int, loss float64) {
			curves[qi] = append(curves[qi], m.Accuracy(orig))
		}
		m.Train(res.Dataset.Tensors(!ctx.Profile.Gray), cfg)
	}
	t := &Table{
		Title:   "Fig. 2b — CASE 2 accuracy vs epoch at various QFs",
		Note:    "Columns are test accuracy on original-quality data.",
		Columns: []string{"epoch", "QF=100", "QF=50", "QF=20"},
	}
	for e := 0; e < len(curves[0]); e++ {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", e+1), pct(curves[0][e]), pct(curves[1][e]), pct(curves[2][e]),
		})
	}
	return t, nil
}

// Fig3 reproduces the junco/robin demonstration: removing the
// high-frequency components a class's signature lives in — a change that
// barely moves PSNR — flips predictions of HF-signature classes. The
// paper removes the top 6 zig-zag components because that is where
// junco's plumage texture sits on ImageNet; SynthNet's HF signature bands
// occupy zig-zag positions 29–36, so the equivalent manipulation removes
// the zig-zag HF tail (36 components) that covers them. PSNR stays high
// because those bands are empty in every other class.
func Fig3(ctx *Context) (*Table, error) {
	base, err := ctx.BaselineModel()
	if err != nil {
		return nil, err
	}
	const removed = 36
	flips, hfTotal := 0, 0
	var exLabel, exBefore, exAfter int
	var exPBefore, exPAfter, exPSNR float64
	haveExample := false

	tensorOf := func(im *imgutil.RGB) *nn.Tensor {
		d := &dataset.Dataset{Images: []*imgutil.RGB{im}, Labels: []int{0}, Classes: ctx.Test.Classes, Size: ctx.Test.Size}
		return d.Tensors(!ctx.Profile.Gray).X
	}
	for i, im := range ctx.Test.Images {
		label := ctx.Test.Labels[i]
		if !dataset.IsHFClass(label) {
			continue
		}
		hfTotal++
		filtered := core.RemoveHFComponentsRGB(im, removed)
		pb := base.Probabilities(tensorOf(im))
		pa := base.Probabilities(tensorOf(filtered))
		before, after := argmax(pb.Data), argmax(pa.Data)
		if before == label && after != label {
			flips++
			if !haveExample {
				haveExample = true
				exLabel, exBefore, exAfter = label, before, after
				exPBefore = float64(pb.Data[before])
				exPAfter = float64(pa.Data[after])
				psnr, err := imgutil.PSNR(im.Pix, filtered.Pix)
				if err != nil {
					return nil, err
				}
				exPSNR = psnr
			}
		}
	}
	t := &Table{
		Title:   "Fig. 3 — feature degradation by removing the HF zig-zag tail",
		Note:    "HF-signature classes are the synthetic junco/robin pairs.",
		Columns: []string{"metric", "value"},
	}
	t.Rows = append(t.Rows,
		[]string{"HF-class test images", fmt.Sprintf("%d", hfTotal)},
		[]string{"predictions flipped", fmt.Sprintf("%d (%.0f%%)", flips, 100*float64(flips)/math.Max(1, float64(hfTotal)))},
	)
	if haveExample {
		t.Rows = append(t.Rows,
			[]string{"example: true class", fmt.Sprintf("%d", exLabel)},
			[]string{"example: before", fmt.Sprintf("class %d (p=%.2f)", exBefore, exPBefore)},
			[]string{"example: after", fmt.Sprintf("class %d (p=%.2f)", exAfter, exPAfter)},
			[]string{"example: PSNR of filtered image", fmt.Sprintf("%.1f dB", exPSNR)},
		)
	}
	return t, nil
}

func argmax(xs []float32) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

// fig5Sweeps lists the quantization steps probed per band class. The
// paper sweeps LF to 40, MF to 60 and HF to 80 on ImageNet, whose δ
// scale tops out near 78; SynthNet's δmax is roughly twice that, so the
// sweeps extend to the baseline maximum of 255 to reach each band's
// breaking point.
var fig5Sweeps = map[freqstat.Band][]int{
	freqstat.LF: {1, 10, 40, 120, 255},
	freqstat.MF: {1, 20, 60, 150, 255},
	freqstat.HF: {1, 40, 90, 180, 255},
}

// Fig5 reproduces the band-sensitivity sweeps: quantize only one band
// class (all other steps = 1) and measure normalized accuracy, for the
// magnitude-based (paper) and position-based (baseline) segmentations.
func Fig5(ctx *Context) (*Table, error) {
	base, err := ctx.BaselineModel()
	if err != nil {
		return nil, err
	}
	magSeg := ctx.Framework.Seg
	posSeg := freqstat.SegmentByPosition()

	eval := func(method string, seg freqstat.Segmentation, band freqstat.Band, q int) (float64, error) {
		tbl := qtable.Uniform(1)
		for i := range tbl {
			if seg.Class[i] == band {
				tbl[i] = uint16(q)
			}
		}
		scheme := core.Scheme{Name: fmt.Sprintf("fig5-%s-%v-%d", method, band, q), Opts: ctxSchemeOpts(tbl)}
		return ctx.AccuracyUnderScheme(base, scheme)
	}

	t := &Table{
		Title:   "Fig. 5 — band sensitivity: normalized accuracy vs quantization step",
		Note:    "Only the listed band class is quantized; all other steps are 1.",
		Columns: []string{"band", "Q step", "magnitude-based", "position-based"},
	}
	for _, band := range []freqstat.Band{freqstat.LF, freqstat.MF, freqstat.HF} {
		var magBaseAcc, posBaseAcc float64
		for _, q := range fig5Sweeps[band] {
			mag, err := eval("mag", magSeg, band, q)
			if err != nil {
				return nil, err
			}
			pos, err := eval("pos", posSeg, band, q)
			if err != nil {
				return nil, err
			}
			if q == 1 {
				magBaseAcc, posBaseAcc = mag, pos
			}
			t.Rows = append(t.Rows, []string{
				band.String(), fmt.Sprintf("%d", q),
				f3(mag / math.Max(magBaseAcc, 1e-9)),
				f3(pos / math.Max(posBaseAcc, 1e-9)),
			})
		}
	}
	return t, nil
}

// ctxSchemeOpts builds encoder options with the same table on luma and
// chroma (the Fig. 5 probes quantize the whole spectrum uniformly).
func ctxSchemeOpts(tbl qtable.Table) (o jpegcodec.Options) {
	o.LumaTable = tbl
	o.ChromaTable = tbl
	return o
}

// Fig6 reproduces the k3 trade-off sweep. As in the paper, the LF
// intercept c stays at its calibrated value while k3 varies, so a smaller
// k3 flattens the LF line upward (coarser steps for the most energetic
// bands): better compression, slight accuracy cost. The paper picks
// k3 = 3, the calibration default.
func Fig6(ctx *Context) (*Table, error) {
	t := &Table{
		Title:   "Fig. 6 — optimization of k3 in the piece-wise linear mapping",
		Note:    "LF intercept c held at its calibrated value; k3 scaled around the k3=3 fit.",
		Columns: []string{"k3", "CR", "accuracy"},
	}
	base := ctx.Framework.Params // fitted with the paper's default k3 = 3
	for k3 := 1; k3 <= 5; k3++ {
		params := base
		params.K3 = base.K3 * float64(k3) / ctx.anchors().K3
		luma, err := params.Table(ctx.Framework.Stats)
		if err != nil {
			return nil, err
		}
		scheme := core.Scheme{
			Name: fmt.Sprintf("deepn-k3=%d", k3),
			Opts: jpegcodec.Options{LumaTable: luma, ChromaTable: ctx.Framework.ChromaTable},
		}
		if ctx.Framework.ChromaStats != nil {
			chroma, err := params.Table(ctx.Framework.ChromaStats)
			if err != nil {
				return nil, err
			}
			scheme.Opts.ChromaTable = chroma
		}
		cr, err := ctx.SchemeCR(scheme)
		if err != nil {
			return nil, err
		}
		acc, err := ctx.SchemeAccuracy(scheme)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", k3), f2(cr), pct(acc)})
	}
	return t, nil
}

// fig7Schemes are the Fig. 7 comparison points.
func fig7Schemes(ctx *Context) []core.Scheme {
	return []core.Scheme{
		core.SchemeOriginal(),
		core.SchemeRMHF(3), core.SchemeRMHF(6), core.SchemeRMHF(9),
		core.SchemeSameQ(4), core.SchemeSameQ(8), core.SchemeSameQ(12),
		ctx.Framework.Scheme(),
	}
}

// Fig7 reproduces the headline comparison: compression rate and accuracy
// for Original, RM-HF, SAME-Q and DeepN-JPEG. DeepN-JPEG must deliver the
// best CR at (near-)original accuracy.
func Fig7(ctx *Context) (*Table, error) {
	t := &Table{
		Title:   "Fig. 7 — compression rate and accuracy by scheme",
		Columns: []string{"scheme", "CR", "accuracy"},
	}
	for _, s := range fig7Schemes(ctx) {
		cr, err := ctx.SchemeCR(s)
		if err != nil {
			return nil, err
		}
		acc, err := ctx.SchemeAccuracy(s)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{s.Name, f2(cr), pct(acc)})
	}
	return t, nil
}

// Fig8 reproduces the generality study: accuracy of multiple DNN
// architectures under Original, DeepN-JPEG, QF 80 and QF 50.
func Fig8(ctx *Context) (*Table, error) {
	schemes := []core.Scheme{
		core.SchemeOriginal(),
		ctx.Framework.Scheme(),
		core.SchemeJPEG(80),
		core.SchemeJPEG(50),
	}
	t := &Table{
		Title:   "Fig. 8 — accuracy across DNN models and schemes",
		Columns: []string{"model", "original", "deepn-jpeg", "jpeg-qf80", "jpeg-qf50"},
	}
	crRow := []string{"(CR)"}
	for _, s := range schemes {
		cr, err := ctx.SchemeCR(s)
		if err != nil {
			return nil, err
		}
		crRow = append(crRow, f2(cr))
	}
	t.Rows = append(t.Rows, crRow)
	for _, name := range ctx.Profile.ZooModels {
		row := []string{name}
		for _, s := range schemes {
			var m *nn.Model
			var err error
			if ctx.Profile.RetrainZoo {
				m, err = ctx.TrainModelOn(name, s)
			} else {
				m, err = ctx.TrainModelOn(name, core.SchemeOriginal())
			}
			if err != nil {
				return nil, err
			}
			acc, err := ctx.AccuracyUnderScheme(m, s)
			if err != nil {
				return nil, err
			}
			row = append(row, pct(acc))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig9 reproduces the power comparison: normalized offloading power for
// Original, RM-HF3, SAME-Q4 and DeepN-JPEG. Power is proportional to
// bytes on the wire, so DeepN-JPEG lands near 1/CR ≈ 0.3.
func Fig9(ctx *Context) (*Table, error) {
	schemes := []core.Scheme{
		core.SchemeOriginal(),
		core.SchemeRMHF(3),
		core.SchemeSameQ(4),
		ctx.Framework.Scheme(),
	}
	var sizes []energy.SchemeBytes
	for _, s := range schemes {
		r, err := ctx.TranscodeTest(s)
		if err != nil {
			return nil, err
		}
		sizes = append(sizes, energy.SchemeBytes{Scheme: s.Name, Bytes: r.TotalBytes})
	}
	norm, err := energy.NormalizedPower(sizes, "original")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Fig. 9 — normalized data-offloading power consumption",
		Note:    "Transfer energy is linear in bytes; per-image J shown for each link.",
		Columns: []string{"scheme", "bytes", "normalized power", "3G J/img", "LTE J/img", "Wi-Fi J/img"},
	}
	n := int64(ctx.Test.Len())
	for _, s := range sizes {
		perImage := s.Bytes / n
		t.Rows = append(t.Rows, []string{
			s.Scheme,
			fmt.Sprintf("%d", s.Bytes),
			f3(norm[s.Scheme]),
			f3(energy.ThreeG.TransferEnergy(perImage)),
			f3(energy.LTE.TransferEnergy(perImage)),
			f3(energy.WiFi.TransferEnergy(perImage)),
		})
	}
	return t, nil
}

// IntroLatency reproduces the introduction's motivating numbers: upload
// latency of the 152 KB reference image and of this dataset's mean image
// under Original and DeepN-JPEG.
func IntroLatency(ctx *Context) (*Table, error) {
	t := &Table{
		Title:   "Intro — single-image upload latency per link",
		Columns: []string{"payload", "bytes", "3G", "LTE", "Wi-Fi"},
	}
	row := func(name string, bytes int64) {
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprintf("%d", bytes),
			ms(energy.ThreeG.TransferLatency(bytes).Seconds()),
			ms(energy.LTE.TransferLatency(bytes).Seconds()),
			ms(energy.WiFi.TransferLatency(bytes).Seconds()),
		})
	}
	row("paper reference (152 KB)", energy.ReferenceImageBytes)
	for _, s := range []core.Scheme{core.SchemeOriginal(), ctx.Framework.Scheme()} {
		r, err := ctx.TranscodeTest(s)
		if err != nil {
			return nil, err
		}
		row("mean image, "+s.Name, r.TotalBytes/int64(ctx.Test.Len()))
	}
	return t, nil
}

// anchors returns the anchor set the context's framework was calibrated
// with (currently always the paper anchors).
func (c *Context) anchors() plm.Anchors {
	return plm.PaperAnchors()
}
