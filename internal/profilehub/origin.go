package profilehub

// Origin mode: publish a directory of .dnp profiles over the hub wire
// protocol. `deepn-jpeg hub serve` wraps this handler so a fleet needs
// no external infrastructure — one process with a profile directory IS
// the hub — and the whole distribution loop stays httptest-coverable.

import (
	"bytes"
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/base64"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/profile"
)

// OriginOptions configures an Origin.
type OriginOptions struct {
	// Dir is the profile directory being published. It must exist; the
	// origin rescans it lazily whenever its fingerprint changes, so
	// files dropped in (or pushed) appear in the index without restarts.
	Dir string
	// SigningKey, when set, signs the index manifest and every entry
	// that does not already carry a valid sidecar signature record.
	SigningKey ed25519.PrivateKey
	// PushKey gates POST /hub/v1/push: requests must present it as
	// X-Hub-Push-Key. Empty leaves push open — fine on a workstation,
	// not on anything reachable.
	PushKey string
	// MaxBlobBytes caps a pushed profile (default MaxBlobBytes).
	MaxBlobBytes int64
	// Now stamps generated indexes; nil means time.Now. Tests pin it.
	Now func() time.Time
}

// Origin serves one profile directory over the hub protocol.
type Origin struct {
	opts OriginOptions

	mu    sync.Mutex
	built *builtIndex

	// Counters surfaced by Stats, mirroring the client's.
	indexRequests atomic.Int64
	blobRequests  atomic.Int64
	pushes        atomic.Int64
}

// builtIndex is one immutable index build: document bytes, parsed form,
// the directory fingerprint it was built from, and the blob route table.
type builtIndex struct {
	index       *Index
	encoded     []byte
	etag        string
	fingerprint string
	blobs       map[string]string // sha256 hex → file path
}

// NewOrigin validates the directory and runs the initial scan, so a
// serve command fails at boot — not at first request — on a bad dir.
func NewOrigin(opts OriginOptions) (*Origin, error) {
	if opts.MaxBlobBytes <= 0 {
		opts.MaxBlobBytes = MaxBlobBytes
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if st, err := os.Stat(opts.Dir); err != nil {
		return nil, err
	} else if !st.IsDir() {
		return nil, fmt.Errorf("profilehub: %s is not a directory", opts.Dir)
	}
	o := &Origin{opts: opts}
	if _, err := o.currentIndex(); err != nil {
		return nil, err
	}
	return o, nil
}

// Index returns the current parsed index (rebuilding if the directory
// changed since the last build).
func (o *Origin) Index() (*Index, error) {
	b, err := o.currentIndex()
	if err != nil {
		return nil, err
	}
	return b.index, nil
}

// OriginStats is the origin-side request accounting.
type OriginStats struct {
	IndexRequests, BlobRequests, Pushes int64
}

// Stats snapshots the request counters.
func (o *Origin) Stats() OriginStats {
	return OriginStats{
		IndexRequests: o.indexRequests.Load(),
		BlobRequests:  o.blobRequests.Load(),
		Pushes:        o.pushes.Load(),
	}
}

// currentIndex returns the cached build when the directory fingerprint
// still matches, rebuilding otherwise. Corrupt files are skipped (the
// healthy remainder still publishes), exactly like a registry scan.
func (o *Origin) currentIndex() (*builtIndex, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	fp, err := dirFingerprint(o.opts.Dir)
	if err != nil {
		return nil, err
	}
	if o.built != nil && o.built.fingerprint == fp {
		return o.built, nil
	}
	b, err := o.buildIndex(fp)
	if err != nil {
		return nil, err
	}
	o.built = b
	return b, nil
}

// dirFingerprint is the change-detection key: sorted (name, size, mtime)
// tuples of every .dnp and .sig file.
func dirFingerprint(dir string) (string, error) {
	dirents, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	var lines []string
	for _, de := range dirents {
		name := de.Name()
		if de.IsDir() || (!strings.HasSuffix(name, profile.Ext) && !strings.HasSuffix(name, profile.Ext+profile.SigExt)) {
			continue
		}
		var size, mtime int64
		if info, err := de.Info(); err == nil {
			size, mtime = info.Size(), info.ModTime().UnixNano()
		}
		lines = append(lines, fmt.Sprintf("%s|%d|%d", name, size, mtime))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n"), nil
}

// buildIndex scans the directory into a fresh signed index build.
func (o *Origin) buildIndex(fingerprint string) (*builtIndex, error) {
	dirents, err := os.ReadDir(o.opts.Dir)
	if err != nil {
		return nil, err
	}
	ix := &Index{Format: ProtocolVersion, GeneratedUnix: o.opts.Now().Unix()}
	blobs := make(map[string]string)
	seen := make(map[string]string) // ref → path, duplicate detection
	for _, de := range dirents {
		if de.IsDir() || !strings.HasSuffix(de.Name(), profile.Ext) {
			continue
		}
		path := filepath.Join(o.opts.Dir, de.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		p, err := profile.Decode(data)
		if err != nil {
			continue // skip damaged files; they are not publishable
		}
		ref := p.Ref()
		if prev, dup := seen[ref]; dup {
			return nil, fmt.Errorf("profilehub: %s and %s both declare %s", prev, path, ref)
		}
		seen[ref] = path
		e := Entry{
			Name:        p.Name,
			Version:     p.Version,
			SHA256:      profile.BlobSHA256(data),
			Size:        int64(len(data)),
			CRC32:       fmt.Sprintf("%08x", binary.BigEndian.Uint32(data[len(data)-4:])),
			CreatedUnix: p.CreatedUnix,
			Comment:     p.Comment,
		}
		// Signature precedence: a valid sidecar record (offline signing)
		// wins; otherwise the origin's own key signs; otherwise the
		// entry ships unsigned.
		if rec, err := profile.ReadSignature(path + profile.SigExt); err == nil &&
			rec.Ref == ref && rec.SHA256 == e.SHA256 {
			e.Sig, e.SigKeyID = rec.Sig, rec.KeyID
		} else if o.opts.SigningKey != nil {
			rec := profile.Sign(o.opts.SigningKey, ref, data)
			e.Sig, e.SigKeyID = rec.Sig, rec.KeyID
		}
		blobs[e.SHA256] = path
		ix.Profiles = append(ix.Profiles, e)
	}
	if o.opts.SigningKey != nil {
		ix.Sign(o.opts.SigningKey)
	}
	encoded, err := ix.Encode()
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(encoded)
	return &builtIndex{
		index:       ix,
		encoded:     encoded,
		etag:        `"` + hex.EncodeToString(sum[:16]) + `"`,
		fingerprint: fingerprint,
		blobs:       blobs,
	}, nil
}

// ServeHTTP routes the three protocol endpoints.
func (o *Origin) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == IndexPath:
		o.serveIndex(w, r)
	case strings.HasPrefix(r.URL.Path, BlobPathPrefix):
		o.serveBlob(w, r)
	case r.URL.Path == PushPath:
		o.servePush(w, r)
	default:
		httpError(w, http.StatusNotFound, "not_found", "unknown hub path %q", r.URL.Path)
	}
}

func (o *Origin) serveIndex(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		httpError(w, http.StatusMethodNotAllowed, "method_not_allowed", "index is GET only")
		return
	}
	o.indexRequests.Add(1)
	b, err := o.currentIndex()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "index_unavailable", "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("ETag", b.etag)
	// ServeContent handles If-None-Match → 304 and (irrelevantly small
	// here) range requests; the zero modtime disables time-based
	// validation so the ETag is the single source of truth.
	http.ServeContent(w, r, "index.json", time.Time{}, bytes.NewReader(b.encoded))
}

func (o *Origin) serveBlob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		httpError(w, http.StatusMethodNotAllowed, "method_not_allowed", "blobs are GET only")
		return
	}
	o.blobRequests.Add(1)
	sha := strings.TrimPrefix(r.URL.Path, BlobPathPrefix)
	if err := validateSHA256(sha); err != nil {
		httpError(w, http.StatusBadRequest, "bad_blob_ref", "%v", err)
		return
	}
	b, err := o.currentIndex()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "index_unavailable", "%v", err)
		return
	}
	path, ok := b.blobs[sha]
	if !ok {
		httpError(w, http.StatusNotFound, "unknown_blob", "no blob %s in index", sha)
		return
	}
	f, err := os.Open(path)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "blob_unavailable", "%v", err)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("ETag", `"`+sha+`"`)
	// Content-addressed blobs are immutable, so the zero modtime +
	// sha ETag give correct revalidation, and ServeContent's Range
	// support is what makes client pulls resumable.
	http.ServeContent(w, r, sha, time.Time{}, f)
}

// servePush accepts one encoded profile, validates it end to end, and
// publishes it into the directory. Versions are immutable: re-pushing
// identical bytes is an idempotent success, conflicting bytes under an
// existing name@version are a 409.
func (o *Origin) servePush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		httpError(w, http.StatusMethodNotAllowed, "method_not_allowed", "push is POST only")
		return
	}
	if o.opts.PushKey != "" && r.Header.Get("X-Hub-Push-Key") != o.opts.PushKey {
		httpError(w, http.StatusForbidden, "push_key_required", "push requires the origin's push key")
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, o.opts.MaxBlobBytes))
	if err != nil {
		httpError(w, http.StatusRequestEntityTooLarge, "blob_too_large", "%v", err)
		return
	}
	p, err := profile.Decode(data)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad_profile", "pushed bytes are not a valid profile: %v", err)
		return
	}
	path := filepath.Join(o.opts.Dir, p.FileName())
	if existing, err := os.ReadFile(path); err == nil {
		if bytes.Equal(existing, data) {
			o.pushes.Add(1)
			writePushResponse(w, http.StatusOK, p, data)
			return
		}
		httpError(w, http.StatusConflict, "version_conflict",
			"%s already published with different bytes; versions are immutable, push a new version", p.Ref())
		return
	}
	if err := profile.WriteFileAtomic(path, data); err != nil {
		httpError(w, http.StatusInternalServerError, "publish_failed", "%v", err)
		return
	}
	// An offline signature may ride along in headers; it lands as the
	// sidecar the next index build picks up (and prefers over origin
	// signing). A malformed one fails the push — publishing a blob while
	// dropping its signature would downgrade it to unsigned silently.
	if sig := r.Header.Get("X-Hub-Sig"); sig != "" {
		rec, err := parsePushSignature(r, p.Ref(), data)
		if err != nil {
			os.Remove(path)
			httpError(w, http.StatusBadRequest, "bad_signature", "%v", err)
			return
		}
		if err := rec.WriteFile(path + profile.SigExt); err != nil {
			os.Remove(path)
			httpError(w, http.StatusInternalServerError, "publish_failed", "%v", err)
			return
		}
	}
	o.pushes.Add(1)
	writePushResponse(w, http.StatusCreated, p, data)
}

// parsePushSignature reconstructs a signature record from the push
// headers (X-Hub-Sig: base64 signature, X-Hub-Sig-Key-Id: key id).
func parsePushSignature(r *http.Request, ref string, data []byte) (*profile.SignatureRecord, error) {
	raw, err := base64.StdEncoding.DecodeString(r.Header.Get("X-Hub-Sig"))
	if err != nil {
		return nil, fmt.Errorf("X-Hub-Sig: %w", err)
	}
	if len(raw) != ed25519.SignatureSize {
		return nil, fmt.Errorf("X-Hub-Sig is %d bytes, want %d", len(raw), ed25519.SignatureSize)
	}
	return &profile.SignatureRecord{
		Ref:    ref,
		SHA256: profile.BlobSHA256(data),
		KeyID:  r.Header.Get("X-Hub-Sig-Key-Id"),
		Sig:    raw,
	}, nil
}

func writePushResponse(w http.ResponseWriter, status int, p *profile.Profile, data []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{
		"ref":    p.Ref(),
		"sha256": profile.BlobSHA256(data),
		"size":   len(data),
	})
}

// httpError mirrors the serving layer's JSON error envelope so hub and
// codec endpoints read the same on the wire.
func httpError(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{
		"status": status,
		"error":  map[string]string{"code": code, "message": fmt.Sprintf(format, args...)},
	})
}
