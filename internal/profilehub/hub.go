// Package profilehub distributes calibration profiles to a fleet the
// way model hubs distribute weights. DeepN-JPEG's accuracy-vs-CR win
// lives entirely in its calibrated quantization tables, so a serving
// fleet needs exactly one published, verifiable profile set — not a
// re-calibration per process, not hand-copied .dnp directories.
//
// # Wire protocol
//
// The hub is plain HTTP(S), stdlib end to end, so an origin is anything
// from `deepn-jpeg hub serve` on a box to a bucket behind a CDN:
//
//	GET  /hub/v1/index.json     signed JSON index: name@version → sha256,
//	                            size, CRC32, metadata, signature record.
//	                            ETag + If-None-Match revalidation.
//	GET  /hub/v1/blobs/<sha256> content-addressed profile bytes. ETag is
//	                            the sha; Range requests resume partial
//	                            pulls.
//	POST /hub/v1/push           publish one .dnp blob (X-Hub-Push-Key
//	                            auth when the origin is keyed; versions
//	                            are immutable — a conflicting re-push of
//	                            an existing name@version is rejected).
//
// Content addressing makes every response trivially cacheable and every
// fetch verifiable: the client knows the sha256, size and CRC32 of a
// blob before it asks for it, so a truncated body, a corrupted cache
// file or a lying origin are all detected the same way.
//
// # Trust model
//
// Integrity (CRC32, sha256) is always enforced. Authenticity is Ed25519
// and opt-in: an origin holding a signing key signs the index manifest
// and embeds a per-profile signature record (see profile.SignatureRecord)
// in every entry; a client configured with the corresponding public key
// refuses unsigned or mis-signed indexes and blobs. A client without a
// trust key still gets integrity, like `go mod download` without a sum
// database. Keys are raw Ed25519; the key ID (first 8 bytes of the
// public key's SHA-256) routes lookups but carries no authority.
package profilehub

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/profile"
)

const (
	// ProtocolVersion is the wire format revision this package speaks.
	ProtocolVersion = 1

	// IndexPath, BlobPathPrefix and PushPath are the protocol routes,
	// relative to the origin base URL.
	IndexPath      = "/hub/v1/index.json"
	BlobPathPrefix = "/hub/v1/blobs/"
	PushPath       = "/hub/v1/push"

	// MaxIndexBytes bounds an index document; a hostile origin must not
	// be able to balloon a client's memory through the one unsized fetch.
	MaxIndexBytes = 8 << 20
	// MaxBlobBytes bounds one profile blob (real profiles are a few KiB;
	// the cap is generous headroom, not a target).
	MaxBlobBytes = 64 << 20
	// MaxIndexEntries bounds the profile count of one index.
	MaxIndexEntries = 65536

	// indexSigMagic versions the byte string index signatures cover.
	indexSigMagic = "deepn-hub-index-v1"
)

// Entry is one published profile in the index.
type Entry struct {
	// Name and Version identify the profile; together they are immutable
	// once published.
	Name    string `json:"name"`
	Version uint32 `json:"version"`
	// SHA256 is the content address of the blob: lower-case hex over the
	// full file bytes.
	SHA256 string `json:"sha256"`
	// Size is the exact blob size in bytes.
	Size int64 `json:"size"`
	// CRC32 is the profile's own trailing checksum (8 hex chars) — the
	// same value a registry directory scan fingerprints on, carried here
	// so a client can cross-check a blob against the index without
	// decoding it.
	CRC32 string `json:"crc32"`
	// CreatedUnix and Comment mirror the profile's metadata for listings
	// that should not require a blob fetch.
	CreatedUnix int64  `json:"created_unix,omitempty"`
	Comment     string `json:"comment,omitempty"`
	// Sig and SigKeyID form the per-profile signature record: an Ed25519
	// signature over profile.SignatureMessage(ref, sha256). Present only
	// on signed origins.
	Sig      []byte `json:"sig,omitempty"`
	SigKeyID string `json:"sig_key_id,omitempty"`
}

// Ref renders the entry's canonical name@version reference.
func (e *Entry) Ref() string { return fmt.Sprintf("%s@%d", e.Name, e.Version) }

// Record adapts the entry's inline signature fields to the sidecar
// record type the profile package verifies.
func (e *Entry) Record() *profile.SignatureRecord {
	return &profile.SignatureRecord{Ref: e.Ref(), SHA256: e.SHA256, KeyID: e.SigKeyID, Sig: e.Sig}
}

// Index is the hub's one discovery document: everything the origin
// publishes, plus an optional detached signature over the manifest.
type Index struct {
	Format        int     `json:"format"`
	GeneratedUnix int64   `json:"generated_unix"`
	Profiles      []Entry `json:"profiles"`
	// KeyID and Sig sign SigningBytes(); absent on unsigned origins.
	KeyID string `json:"key_id,omitempty"`
	Sig   []byte `json:"sig,omitempty"`
}

// Resolve finds the entry a reference names; version 0 selects the
// highest published version of the name.
func (ix *Index) Resolve(name string, version uint32) (*Entry, error) {
	var best *Entry
	for i := range ix.Profiles {
		e := &ix.Profiles[i]
		if e.Name != name {
			continue
		}
		if version != 0 {
			if e.Version == version {
				return e, nil
			}
			continue
		}
		if best == nil || e.Version > best.Version {
			best = e
		}
	}
	if best == nil {
		if version != 0 {
			return nil, fmt.Errorf("%w: %s@%d in hub index", profile.ErrNotFound, name, version)
		}
		return nil, fmt.Errorf("%w: %q in hub index", profile.ErrNotFound, name)
	}
	return best, nil
}

// SigningBytes renders the deterministic manifest an index signature
// covers: format, generation time, and every entry's identity, content
// address, size, CRC and inline signature, sorted by name then version.
// Signing a canonical manifest instead of the JSON bytes keeps the
// signature stable under re-marshaling and forces tampering with ANY
// covered field — including stripping a per-profile signature — to
// invalidate it.
func (ix *Index) SigningBytes() []byte {
	entries := make([]*Entry, len(ix.Profiles))
	for i := range ix.Profiles {
		entries[i] = &ix.Profiles[i]
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Name != entries[j].Name {
			return entries[i].Name < entries[j].Name
		}
		return entries[i].Version < entries[j].Version
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\nformat %d\ngenerated %d\n", indexSigMagic, ix.Format, ix.GeneratedUnix)
	for _, e := range entries {
		sig, keyID := "-", "-"
		if len(e.Sig) > 0 {
			sig = base64.StdEncoding.EncodeToString(e.Sig)
		}
		if e.SigKeyID != "" {
			keyID = e.SigKeyID
		}
		fmt.Fprintf(&sb, "%s %s %d %s %s %s\n", e.Ref(), e.SHA256, e.Size, e.CRC32, sig, keyID)
	}
	return []byte(sb.String())
}

// Sign attaches the manifest signature.
func (ix *Index) Sign(priv ed25519.PrivateKey) {
	ix.KeyID = profile.KeyID(priv.Public().(ed25519.PublicKey))
	ix.Sig = ed25519.Sign(priv, ix.SigningBytes())
}

// VerifySignature checks the manifest signature against a trusted public
// key. An unsigned index fails: a client that configures a trust key has
// opted out of trusting bare transport.
func (ix *Index) VerifySignature(pub ed25519.PublicKey) error {
	if len(ix.Sig) == 0 {
		return fmt.Errorf("profilehub: index is unsigned but a trust key is configured")
	}
	if len(ix.Sig) != ed25519.SignatureSize {
		return fmt.Errorf("profilehub: index signature is %d bytes, want %d", len(ix.Sig), ed25519.SignatureSize)
	}
	if !ed25519.Verify(pub, ix.SigningBytes(), ix.Sig) {
		return fmt.Errorf("profilehub: index signature does not verify against trusted key %s (index claims key %s)",
			profile.KeyID(pub), ix.KeyID)
	}
	return nil
}

// Encode marshals the index with entries in canonical (name, version)
// order.
func (ix *Index) Encode() ([]byte, error) {
	sort.Slice(ix.Profiles, func(i, j int) bool {
		if ix.Profiles[i].Name != ix.Profiles[j].Name {
			return ix.Profiles[i].Name < ix.Profiles[j].Name
		}
		return ix.Profiles[i].Version < ix.Profiles[j].Version
	})
	data, err := json.MarshalIndent(ix, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// ParseIndex decodes and structurally validates an index document. Every
// invariant a client later relies on — valid names, plausible sizes,
// well-formed hashes, no duplicate references — is enforced here, so the
// rest of the client never sees a half-trustworthy index.
func ParseIndex(data []byte) (*Index, error) {
	if len(data) > MaxIndexBytes {
		return nil, fmt.Errorf("profilehub: index is %d bytes, limit %d", len(data), MaxIndexBytes)
	}
	var ix Index
	if err := json.Unmarshal(data, &ix); err != nil {
		return nil, fmt.Errorf("profilehub: parsing index: %w", err)
	}
	if ix.Format != ProtocolVersion {
		return nil, fmt.Errorf("profilehub: index format %d (this build speaks %d)", ix.Format, ProtocolVersion)
	}
	if len(ix.Profiles) > MaxIndexEntries {
		return nil, fmt.Errorf("profilehub: index lists %d profiles, limit %d", len(ix.Profiles), MaxIndexEntries)
	}
	seen := make(map[string]bool, len(ix.Profiles))
	for i := range ix.Profiles {
		e := &ix.Profiles[i]
		if err := validateEntry(e); err != nil {
			return nil, fmt.Errorf("profilehub: index entry %d: %w", i, err)
		}
		if seen[e.Ref()] {
			return nil, fmt.Errorf("profilehub: index lists %s twice", e.Ref())
		}
		seen[e.Ref()] = true
	}
	if len(ix.Sig) != 0 && len(ix.Sig) != ed25519.SignatureSize {
		return nil, fmt.Errorf("profilehub: index signature is %d bytes, want %d", len(ix.Sig), ed25519.SignatureSize)
	}
	return &ix, nil
}

func validateEntry(e *Entry) error {
	if err := profile.ValidateName(e.Name); err != nil {
		return err
	}
	if e.Version == 0 {
		return fmt.Errorf("version must be ≥ 1")
	}
	if err := validateSHA256(e.SHA256); err != nil {
		return err
	}
	if e.Size <= 0 || e.Size > MaxBlobBytes {
		return fmt.Errorf("blob size %d out of range (0, %d]", e.Size, int64(MaxBlobBytes))
	}
	if len(e.CRC32) != 8 {
		return fmt.Errorf("crc32 field %q is not 8 hex chars", e.CRC32)
	}
	if _, err := hex.DecodeString(e.CRC32); err != nil {
		return fmt.Errorf("crc32 field %q is not hex", e.CRC32)
	}
	if len(e.Comment) > profile.MaxCommentLen {
		return fmt.Errorf("comment exceeds %d bytes", profile.MaxCommentLen)
	}
	if len(e.Sig) != 0 && len(e.Sig) != ed25519.SignatureSize {
		return fmt.Errorf("signature is %d bytes, want %d", len(e.Sig), ed25519.SignatureSize)
	}
	return nil
}

// validateSHA256 checks a lower-case hex content address.
func validateSHA256(s string) error {
	if len(s) != sha256.Size*2 {
		return fmt.Errorf("sha256 field is %d chars, want %d", len(s), sha256.Size*2)
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("sha256 field %q is not lower-case hex", s)
		}
	}
	return nil
}
